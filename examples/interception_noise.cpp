// Appendix E walkthrough: DNS interception middleboxes and the
// pair-resolver screen.
//
// A replicating interception middlebox answers every DNS query crossing its
// router with a response spoofed from the intended destination — including
// queries to "pair resolver" addresses that offer no DNS service at all.
// The paper screens vantage points by querying those pair addresses: any
// answer means the path is intercepted and the VP is dropped.
//
// This example runs the same campaign twice — screening on and off — and
// shows what the filter is protecting the results from.

#include <cstdio>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

namespace {

struct RunResult {
  int usable_vps = 0;
  int rejected_interception = 0;
  std::size_t unsolicited = 0;
  std::size_t located = 0;
};

RunResult run(bool screening_enabled) {
  core::TestbedConfig config;
  config.topology.seed = 99;
  config.topology.global_vps = 24;
  config.topology.cn_vps = 48;  // interceptors live in CN provinces
  config.topology.web_sites = 8;
  auto bed = core::Testbed::create(config);

  shadow::ShadowConfig shadow_config;
  shadow_config.fleet_size = 2;
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
  std::printf("  %zu interception middleboxes deployed\n", deployment.interceptors.size());

  core::CampaignConfig campaign_config;
  campaign_config.screening = screening_enabled;
  campaign_config.phase1_window = 4 * kHour;
  campaign_config.phase2_grace = 12 * kHour;
  campaign_config.total_duration = 6 * kDay;
  core::Campaign campaign(*bed, campaign_config);
  campaign.run();

  std::uint64_t intercepted_queries = 0;
  for (const auto& interceptor : deployment.interceptors) {
    intercepted_queries += interceptor->intercepted();
  }
  std::printf("  middleboxes intercepted %llu queries during the campaign\n",
              static_cast<unsigned long long>(intercepted_queries));

  RunResult result;
  result.usable_vps = campaign.screening().usable;
  result.rejected_interception = campaign.screening().rejected_interception;
  result.unsolicited = campaign.unsolicited().size();
  result.located = campaign.findings().size();
  return result;
}

}  // namespace

int main() {
  std::printf("with pair-resolver screening (the paper's method):\n");
  RunResult with = run(/*screening_enabled=*/true);
  std::printf("  usable VPs: %d (interception removed %d)\n\n", with.usable_vps,
              with.rejected_interception);

  std::printf("without screening (what the filter protects against):\n");
  RunResult without = run(/*screening_enabled=*/false);
  std::printf("  usable VPs: %d (no screen: intercepted VPs measure through "
              "middleboxes that answer from spoofed resolver addresses)\n\n",
              without.usable_vps);

  std::printf("summary:\n");
  std::printf("  screened run:   %d VPs, %zu unsolicited, %zu located paths\n",
              with.usable_vps, with.unsolicited, with.located);
  std::printf("  unscreened run: %d VPs, %zu unsolicited, %zu located paths\n",
              without.usable_vps, without.unsolicited, without.located);
  std::printf("\nunder interception, decoys are answered before reaching the real\n"
              "resolver, so responses no longer witness the destination and Phase II\n"
              "would mislocate observers at the destination (Appendix E's bias).\n");
  return 0;
}
