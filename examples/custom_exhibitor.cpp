// Using the library to study a hypothetical exhibitor: a FireEye-style
// security appliance that harvests URLs from HTTP traffic it fronts and
// schedules verification scans through cloud proxies minutes later (the
// behaviour reported in the paper's reference [43]).
//
// The example deploys the custom profile on one hosting network's border,
// runs the pipeline, and reports how the appliance shows up in each
// analysis: path ratios, observer location, temporal CDF, and payloads.

#include <cstdio>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/exhibitor.h"
#include "shadow/observers.h"
#include "shadow/prober.h"

using namespace shadowprobe;

int main() {
  core::TestbedConfig config;
  config.topology.global_vps = 24;
  config.topology.cn_vps = 8;
  config.topology.web_sites = 12;
  auto bed = core::Testbed::create(config);

  // The appliance profile: sees HTTP only, retains every URL host, scans
  // once within the hour through two cloud proxies.
  shadow::ExhibitorConfig appliance;
  appliance.name = "security-appliance";
  appliance.sees_dns = false;
  appliance.sees_tls = false;
  appliance.observe_probability = 1.0;
  appliance.waves.push_back({.probability = 1.0,
                             .delay_median = 20 * kMinute,
                             .delay_sigma = 0.8,
                             .requests_min = 1,
                             .requests_max = 1,
                             .dns_weight = 0.0,
                             .http_weight = 1.0,
                             .https_weight = 0.0,
                             .http_paths = 2});
  appliance.probe_resolver = net::Ipv4Addr(8, 8, 8, 8);
  shadow::Exhibitor exhibitor(appliance, bed->fork_rng("appliance"), bed->loop());

  std::vector<std::unique_ptr<shadow::ProberHost>> proxies;
  for (int i = 0; i < 2; ++i) {
    auto proxy = std::make_unique<shadow::ProberHost>(
        "scan-proxy-" + std::to_string(i), bed->fork_rng("proxy" + std::to_string(i)),
        bed->signatures());
    sim::NodeId node = bed->add_host_in_as(16509, proxy->name(), proxy.get());
    proxy->bind(bed->net(), node, bed->net().address(node));
    // Security scanners' proxies are exactly the addresses blocklists list.
    bed->note_blocklisted(proxy->addr());
    exhibitor.add_prober(proxy.get());
    proxies.push_back(std::move(proxy));
  }

  // The appliance fronts one US hosting network (protecting its sites).
  const topo::AsRecord* protected_as = bed->topology().as_by_number(14061);
  shadow::WireTap tap(exhibitor, {.dns = false, .http = true, .tls = false});
  bed->net().add_tap(protected_as->border, &tap);
  std::printf("deployed %s in front of %s (AS%u)\n\n", appliance.name.c_str(),
              protected_as->name.c_str(), protected_as->asn);

  core::CampaignConfig campaign_config;
  campaign_config.phase1_window = 3 * kHour;
  campaign_config.phase2_grace = 6 * kHour;
  campaign_config.total_duration = 4 * kDay;
  core::Campaign campaign(*bed, campaign_config);
  campaign.run();

  // 1. Which destinations became problematic? (only sites behind the AS)
  auto ratios = core::path_ratios(campaign.ledger(), campaign.unsolicited());
  std::printf("problematic HTTP destinations:\n");
  core::TextTable table({"dest country", "problematic", "paths"});
  for (const auto& dest : ratios.destinations_by_ratio(core::DecoyProtocol::kHttp)) {
    auto cell = ratios.total(core::DecoyProtocol::kHttp, dest);
    if (cell.problematic == 0) continue;
    table.add_row({dest, std::to_string(cell.problematic), std::to_string(cell.paths)});
  }
  std::printf("%s\n", table.str().c_str());

  // 2. Where does the pipeline place the appliance?
  auto locations = core::observer_locations(campaign.findings());
  if (locations.located_paths.count(core::DecoyProtocol::kHttp)) {
    std::printf("observer location (HTTP, normalized):");
    for (int hop = 1; hop <= 10; ++hop) {
      std::printf(" %d:%.0f%%", hop,
                  locations.shares[core::DecoyProtocol::kHttp][hop] * 100);
    }
    std::printf("\n");
  }

  // 3. How fast does it scan, and what does it fetch?
  Cdf intervals;
  for (const auto& request : campaign.unsolicited()) {
    intervals.add(to_seconds(request.interval));
  }
  auto incentives = core::incentive_stats(campaign.unsolicited(), bed->signatures(),
                                          bed->blocklist());
  std::printf("scan latency: median %s, p90 %s\n",
              format_duration(from_seconds(intervals.quantile(0.5))).c_str(),
              format_duration(from_seconds(intervals.quantile(0.9))).c_str());
  std::printf("scan origins blocklisted: %s (the proxies), exploit payloads: %s\n",
              core::percent(incentives.dns_decoy_http_origin_blocklisted +
                            incentives.web_decoy_http_origin_blocklisted).c_str(),
              incentives.exploits_found ? "yes" : "none");
  return 0;
}
