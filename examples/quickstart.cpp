// Quickstart: build a small synthetic Internet, deploy the ground-truth
// shadowing exhibitors, run the two-phase measurement campaign, and print
// what the pipeline discovered.
//
//   $ ./examples/quickstart            # ~20s at the default scale
//   $ SHADOWPROBE_SCALE=0.25 ./examples/quickstart   # smaller & faster

#include <cstdio>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/testbed.h"
#include "shadow/profiles.h"

using namespace shadowprobe;

int main() {
  // 1. The substrate: topology, resolvers, honeypots, web farm.
  core::TestbedConfig testbed_config;
  testbed_config.topology = topo::TopologyConfig::from_env();
  testbed_config.topology.apply_scale(0.5);  // quickstart runs small
  auto bed = core::Testbed::create(testbed_config);
  std::printf("substrate: %zu nodes, %zu VPs, %zu DNS targets, %zu web sites\n",
              bed->net().node_count(), bed->topology().vantage_points().size(),
              bed->topology().dns_target_hosts().size(),
              bed->topology().web_sites().size());

  // 2. The ground truth: who is shadowing, and where.
  shadow::ShadowConfig shadow_config;
  auto deployment = shadow::deploy_standard_exhibitors(*bed, shadow_config);
  std::printf("ground truth: %zu exhibitors deployed (hidden from the pipeline)\n\n",
              deployment.exhibitors.size());

  // 3. The measurement: screening, Phase I decoys, Phase II traceroute.
  core::CampaignConfig campaign_config;
  campaign_config.total_duration = 20 * kDay;
  core::Campaign campaign(*bed, campaign_config);
  campaign.run();

  const auto& screening = campaign.screening();
  std::printf("screening: %d candidate VPs -> %d usable "
              "(%d residential, %d TTL-mangling, %d intercepted removed)\n",
              screening.candidates, screening.usable, screening.rejected_residential,
              screening.rejected_ttl_mangling, screening.rejected_interception);
  std::printf("decoys sent: %zu   honeypot hits: %zu   unsolicited requests: %zu\n\n",
              campaign.ledger().decoy_count(), bed->logbook().size(),
              campaign.unsolicited().size());

  // 4. What the pipeline found.
  auto ratios = core::path_ratios(campaign.ledger(), campaign.unsolicited());
  auto top = core::top_shadowed_resolvers(ratios, 5);
  std::printf("most-shadowed DNS destinations (Resolver_h):\n");
  core::TextTable table({"resolver", "problematic paths", "ratio"});
  for (const auto& name : top) {
    auto cell = ratios.total(core::DecoyProtocol::kDns, name);
    table.add_row({name, std::to_string(cell.problematic) + "/" + std::to_string(cell.paths),
                   core::percent(cell.ratio())});
  }
  std::printf("%s\n", table.str().c_str());

  auto locations = core::observer_locations(campaign.findings());
  std::printf("observer location (normalized hop, 10 = destination):\n");
  for (const auto& [protocol, shares] : locations.shares) {
    std::printf("  %-4s:", core::decoy_protocol_name(protocol).c_str());
    for (int hop = 1; hop <= 10; ++hop) {
      std::printf(" %5.1f%%", shares.at(hop) * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\ndone. see bench/ for the full per-table reproductions.\n");
  return 0;
}
