// Phase-II walkthrough: plant a single on-wire DPI observer at a known
// router, run the hop-by-hop TTL sweep against one path, and show the
// locator pinpointing the device — hop index and ICMP-revealed address.
//
// This is Figure 2 of the paper as a runnable program.

#include <cstdio>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/testbed.h"
#include "shadow/exhibitor.h"
#include "shadow/observers.h"
#include "shadow/prober.h"

using namespace shadowprobe;

int main() {
  // A small substrate, no standard exhibitors — we deploy exactly one.
  core::TestbedConfig config;
  config.topology.global_vps = 8;
  config.topology.cn_vps = 8;
  config.topology.web_sites = 6;
  auto bed = core::Testbed::create(config);

  // Ground truth: an HTTP-sniffing device on the CN national gateway.
  sim::NodeId gateway = bed->topology().national_gateway("CN");
  net::Ipv4Addr device_addr = bed->net().address(gateway);
  std::printf("ground truth: observer device at %s (%s)\n\n", device_addr.str().c_str(),
              bed->net().name(gateway).c_str());

  shadow::ExhibitorConfig exhibitor_config;
  exhibitor_config.name = "demo-dpi";
  exhibitor_config.sees_dns = false;
  exhibitor_config.sees_tls = false;
  exhibitor_config.observe_probability = 1.0;
  exhibitor_config.waves.push_back({.probability = 1.0,
                                    .delay_median = 10 * kMinute,
                                    .delay_sigma = 0.5,
                                    .requests_min = 1,
                                    .requests_max = 2,
                                    .dns_weight = 0.3,
                                    .http_weight = 0.7,
                                    .http_paths = 3});
  exhibitor_config.probe_resolver = net::Ipv4Addr(8, 8, 8, 8);
  shadow::Exhibitor exhibitor(exhibitor_config, bed->fork_rng("demo-ex"), bed->loop());

  shadow::ProberHost prober("demo-prober", bed->fork_rng("demo-prober"),
                            bed->signatures());
  sim::NodeId prober_node =
      bed->add_host_in_as(4134, "demo-prober", &prober);
  prober.bind(bed->net(), prober_node, bed->net().address(prober_node));
  exhibitor.add_prober(&prober);

  shadow::WireTap tap(exhibitor, {.dns = false, .http = true, .tls = false});
  bed->net().add_tap(gateway, &tap);

  // Run the standard two-phase campaign; the pipeline knows nothing about
  // the tap we just planted.
  core::CampaignConfig campaign_config;
  campaign_config.phase1_window = 2 * kHour;
  campaign_config.phase2_grace = 4 * kHour;
  campaign_config.total_duration = 3 * kDay;
  core::Campaign campaign(*bed, campaign_config);
  campaign.run();

  std::printf("pipeline results: %zu unsolicited requests, %zu located paths\n\n",
              campaign.unsolicited().size(), campaign.findings().size());

  int correct = 0;
  int located = 0;
  for (const auto& finding : campaign.findings()) {
    if (finding.at_destination || !finding.observer_addr) continue;
    const auto& path = campaign.ledger().path(finding.path_id);
    ++located;
    bool match = *finding.observer_addr == device_addr;
    correct += match;
    if (located <= 8) {
      std::printf("  path %-28s -> observer at hop %d of %d (normalized %d), "
                  "ICMP says %s %s\n",
                  (path.vp->id + " -> " + path.dest_name).c_str(),
                  finding.min_trigger_ttl, finding.dest_ttl, finding.normalized_hop,
                  finding.observer_addr->str().c_str(), match ? "[correct]" : "[other]");
    }
  }
  std::printf("\nlocated %d on-wire observers; %d point at the planted device\n", located,
              correct);
  std::printf("AS attribution: %s (AS%u)\n",
              bed->topology().geo().as_name(device_addr).c_str(),
              bed->topology().geo().asn(device_addr));
  return 0;
}
