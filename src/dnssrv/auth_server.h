// Authoritative DNS server: a DatagramHandler serving one or more zones
// over UDP/53.
//
// Three roles in the reproduction: the 13 root servers (root zone), the two
// TLD servers (.com/.org), and the experiment's honeypot authoritative
// server — whose query log is the primary sensor: every recursive
// resolution of a decoy domain, and every later unsolicited re-query, lands
// here.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dnssrv/zone.h"
#include "sim/network.h"
#include "sim/udp_util.h"

namespace shadowprobe::dnssrv {

/// One observed query, as the honeypot logs it.
struct QueryLogEntry {
  SimTime time = 0;
  net::Ipv4Addr client;       // source address of the query
  net::Ipv4Addr server_addr;  // which of our addresses it hit
  net::DnsQuestion question;
};

class AuthoritativeServer : public sim::DatagramHandler {
 public:
  using QueryObserver = std::function<void(const QueryLogEntry&)>;

  /// Adds a zone this server is authoritative for. Zone contents are
  /// immutable once loaded, so servers hold them shared-const — one zone
  /// image can back every root-server instance on every campaign shard.
  void add_zone(Zone zone) {
    zones_.push_back(std::make_shared<const Zone>(std::move(zone)));
  }
  void add_zone(std::shared_ptr<const Zone> zone) { zones_.push_back(std::move(zone)); }

  /// Registers a log callback (honeypot sensor); multiple allowed.
  void add_query_observer(QueryObserver observer) {
    observers_.push_back(std::move(observer));
  }

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] std::uint64_t queries_served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t queries_refused() const noexcept { return refused_; }

 private:
  [[nodiscard]] const Zone* best_zone(const net::DnsName& qname) const;

  std::vector<std::shared_ptr<const Zone>> zones_;
  std::vector<QueryObserver> observers_;
  std::uint64_t served_ = 0;
  std::uint64_t refused_ = 0;
};

}  // namespace shadowprobe::dnssrv
