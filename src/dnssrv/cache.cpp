#include "dnssrv/cache.h"

namespace shadowprobe::dnssrv {

void DnsCache::put(const net::DnsName& name, net::DnsType type,
                   std::vector<net::DnsRecord> records, std::uint32_t ttl, SimTime now) {
  CacheEntry entry;
  entry.records = std::move(records);
  entry.expires = now + static_cast<SimDuration>(ttl) * kSecond;
  entries_[{name, static_cast<int>(type)}] = std::move(entry);
}

void DnsCache::put_negative(const net::DnsName& name, net::DnsType type, net::DnsRcode rcode,
                            std::uint32_t ttl, SimTime now) {
  CacheEntry entry;
  entry.negative = true;
  entry.rcode = rcode;
  entry.expires = now + static_cast<SimDuration>(ttl) * kSecond;
  entries_[{name, static_cast<int>(type)}] = std::move(entry);
}

std::optional<CacheEntry> DnsCache::get(const net::DnsName& name, net::DnsType type,
                                        SimTime now) {
  auto it = entries_.find({name, static_cast<int>(type)});
  if (it == entries_.end()) return std::nullopt;
  if (it->second.expires <= now) {
    entries_.erase(it);
    return std::nullopt;
  }
  return it->second;
}

}  // namespace shadowprobe::dnssrv
