// Resolver cache with simulated-time TTL expiry and optional negative
// caching (RFC 2308).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/time.h"
#include "net/dns.h"

namespace shadowprobe::dnssrv {

struct CacheEntry {
  std::vector<net::DnsRecord> records;  // empty for negative entries
  bool negative = false;
  net::DnsRcode rcode = net::DnsRcode::kNoError;
  SimTime expires = 0;
};

class DnsCache {
 public:
  void put(const net::DnsName& name, net::DnsType type, std::vector<net::DnsRecord> records,
           std::uint32_t ttl, SimTime now);
  void put_negative(const net::DnsName& name, net::DnsType type, net::DnsRcode rcode,
                    std::uint32_t ttl, SimTime now);

  /// Live entry or nullopt; expired entries are evicted on access.
  [[nodiscard]] std::optional<CacheEntry> get(const net::DnsName& name, net::DnsType type,
                                              SimTime now);

  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  using Key = std::pair<net::DnsName, int>;
  std::map<Key, CacheEntry> entries_;
};

}  // namespace shadowprobe::dnssrv
