// Oblivious DNS proxy (ODoH-style, RFC 9230 shape).
//
// The paper's closing recommendation: encryption alone does not stop the
// destination resolver from harvesting query data, so privacy needs
// "oblivious" relaying that splits who-is-asking from what-is-asked. This
// proxy implements that split: clients send an opaque envelope carrying the
// target resolver and an (opaque) DNS query; the proxy forwards the query
// to the target *from its own address* and relays the answer back. The
// resolver learns the content but attributes it to the proxy; the proxy
// knows the client but never reads the query.
#pragma once

#include <cstdint>
#include <map>

#include "common/bytes.h"
#include "common/rng.h"
#include "net/ipv4.h"
#include "sim/network.h"

namespace shadowprobe::dnssrv {

/// Port the proxy accepts client envelopes on.
constexpr std::uint16_t kObliviousPort = 8853;

/// Builds the client->proxy envelope: target resolver + opaque DNS query.
Bytes oblivious_envelope(net::Ipv4Addr target_resolver, BytesView dns_query);

class ObliviousProxy : public sim::DatagramHandler {
 public:
  explicit ObliviousProxy(Rng rng) : rng_(rng) {}

  void bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr);

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] net::Ipv4Addr addr() const noexcept { return addr_; }
  [[nodiscard]] std::uint64_t relayed() const noexcept { return relayed_; }

 private:
  struct Pending {
    net::Ipv4Addr client;
    std::uint16_t client_port = 0;
  };

  Rng rng_;
  sim::Network* net_ = nullptr;
  sim::NodeId node_ = sim::kInvalidNode;
  net::Ipv4Addr addr_;
  std::map<std::uint16_t, Pending> pending_;  // by upstream source port
  std::uint16_t next_port_ = 50000;
  std::uint64_t relayed_ = 0;
};

}  // namespace shadowprobe::dnssrv
