#include "dnssrv/oblivious.h"

#include "net/tls.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::dnssrv {

Bytes oblivious_envelope(net::Ipv4Addr target_resolver, BytesView dns_query) {
  ByteWriter w(dns_query.size() + 8);
  w.u32(target_resolver.value());
  w.raw(dns_query);
  return net::tls_opaque_record(BytesView(w.bytes()));
}

void ObliviousProxy::bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr) {
  net_ = &net;
  node_ = node;
  addr_ = addr;
  net.set_handler(node, this);
}

void ObliviousProxy::on_datagram(sim::Network& net, sim::NodeId self,
                                 const net::Ipv4Datagram& dgram) {
  (void)net;
  (void)self;
  if (dgram.header.protocol != net::IpProto::kUdp) return;
  auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                      dgram.header.dst);
  if (!udp.ok()) return;

  if (udp.value().dst_port == kObliviousPort) {
    // Client -> proxy envelope.
    auto opened = net::tls_opaque_unwrap(BytesView(udp.value().payload));
    if (!opened.ok()) return;
    ByteReader r{BytesView(opened.value())};
    net::Ipv4Addr target(r.u32());
    BytesView query = r.raw(r.remaining());
    if (!r.ok() || query.empty()) return;
    std::uint16_t relay_port = next_port_++;
    if (next_port_ < 50000) next_port_ = 50000;
    pending_[relay_port] = {dgram.header.src, udp.value().src_port};
    // Forward from the proxy's own address: the resolver never learns the
    // client. The query itself travels as plain DNS on this leg (the
    // resolver must read it); oblivious deployments combine this with
    // resolver-side encryption, which changes nothing observable here.
    sim::send_udp(*net_, node_, addr_, target, relay_port, 53, query);
    ++relayed_;
    // Reap the slot if the resolver never answers.
    net_->loop().schedule(10 * kSecond, [this, relay_port] { pending_.erase(relay_port); });
    return;
  }

  if (udp.value().src_port == 53) {
    // Resolver -> proxy answer: relay to the waiting client, sealed.
    auto it = pending_.find(udp.value().dst_port);
    if (it == pending_.end()) return;
    Pending client = it->second;
    pending_.erase(it);
    Bytes sealed = net::tls_opaque_record(BytesView(udp.value().payload));
    sim::send_udp(*net_, node_, addr_, client.client, kObliviousPort, client.client_port,
                  BytesView(sealed));
  }
}

}  // namespace shadowprobe::dnssrv
