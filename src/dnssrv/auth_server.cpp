#include "dnssrv/auth_server.h"

#include "common/log.h"

namespace shadowprobe::dnssrv {

const Zone* AuthoritativeServer::best_zone(const net::DnsName& qname) const {
  const Zone* best = nullptr;
  for (const auto& zone : zones_) {
    if (!qname.is_subdomain_of(zone->origin())) continue;
    if (best == nullptr || zone->origin().label_count() > best->origin().label_count()) {
      best = zone.get();
    }
  }
  return best;
}

void AuthoritativeServer::on_datagram(sim::Network& net, sim::NodeId self,
                                      const net::Ipv4Datagram& dgram) {
  if (dgram.header.protocol != net::IpProto::kUdp) return;
  auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                      dgram.header.dst);
  if (!udp.ok() || udp.value().dst_port != 53) return;
  auto query = net::DnsMessage::decode(BytesView(udp.value().payload));
  if (!query.ok() || query.value().header.qr || query.value().questions.empty()) return;
  const net::DnsMessage& q = query.value();
  const net::DnsQuestion& question = q.questions.front();

  QueryLogEntry entry{net.now(), dgram.header.src, dgram.header.dst, question};
  for (const auto& observer : observers_) observer(entry);

  net::DnsMessage response = net::DnsMessage::response_to(q, net::DnsRcode::kNoError);
  response.header.ra = false;  // authoritative-only service
  if (q.edns) response.edns = net::EdnsInfo{};  // RFC 6891: answer in kind
  const Zone* zone = best_zone(question.name);
  if (zone == nullptr) {
    ++refused_;
    response.header.rcode = net::DnsRcode::kRefused;
  } else {
    LookupResult result = zone->lookup(question.name, question.type);
    switch (result.kind) {
      case LookupKind::kAnswer:
        response.header.aa = true;
        response.answers = std::move(result.answers);
        break;
      case LookupKind::kDelegation:
        response.authorities = std::move(result.authority);
        response.additionals = std::move(result.additionals);
        break;
      case LookupKind::kNoData:
        response.header.aa = true;
        response.authorities = std::move(result.authority);
        break;
      case LookupKind::kNxDomain:
        response.header.aa = true;
        response.header.rcode = net::DnsRcode::kNxDomain;
        response.authorities = std::move(result.authority);
        break;
      case LookupKind::kNotInZone:
        response.header.rcode = net::DnsRcode::kRefused;
        break;
    }
    ++served_;
  }
  Bytes wire = response.encode();
  // Reply from the address the query was sent to (anycast instances answer
  // as the service address, not their unicast identity).
  sim::send_udp(net, self, dgram.header.dst, dgram.header.src, 53,
                udp.value().src_port, BytesView(wire));
}

}  // namespace shadowprobe::dnssrv
