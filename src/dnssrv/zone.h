// Authoritative DNS zone data with RFC 1034 lookup semantics: exact match,
// zone cuts (delegations with glue), wildcard synthesis, NXDOMAIN vs NODATA
// distinction.
//
// The experiment zone uses exactly the paper's trick: a wildcard under
// *.www.<experiment domain> whose A records point at the honeypots, so that
// any unsolicited probe of an observed decoy domain lands on infrastructure
// we control.
#pragma once

#include <map>
#include <vector>

#include "net/dns.h"

namespace shadowprobe::dnssrv {

enum class LookupKind { kAnswer, kDelegation, kNxDomain, kNoData, kNotInZone };

struct LookupResult {
  LookupKind kind = LookupKind::kNxDomain;
  std::vector<net::DnsRecord> answers;
  std::vector<net::DnsRecord> authority;
  std::vector<net::DnsRecord> additionals;
};

class Zone {
 public:
  explicit Zone(net::DnsName origin) : origin_(std::move(origin)) {}

  [[nodiscard]] const net::DnsName& origin() const noexcept { return origin_; }

  /// Adds a record; the record name must be at or under the origin.
  void add(net::DnsRecord record);

  /// Resolves (qname, qtype) inside this zone. Delegations win over
  /// authoritative data below the cut; wildcards synthesize answers for
  /// names with no exact match (the "*" label must be leftmost).
  [[nodiscard]] LookupResult lookup(const net::DnsName& qname, net::DnsType qtype) const;

  [[nodiscard]] std::size_t record_count() const noexcept { return count_; }

 private:
  [[nodiscard]] const std::vector<net::DnsRecord>* find(const net::DnsName& name,
                                                        net::DnsType type) const;
  [[nodiscard]] bool name_exists(const net::DnsName& name) const;
  void append_glue(const std::vector<net::DnsRecord>& ns_records,
                   LookupResult& result) const;

  net::DnsName origin_;
  std::map<net::DnsName, std::map<net::DnsType, std::vector<net::DnsRecord>>> records_;
  std::size_t count_ = 0;
};

}  // namespace shadowprobe::dnssrv
