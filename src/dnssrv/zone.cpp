#include "dnssrv/zone.h"

#include <stdexcept>

namespace shadowprobe::dnssrv {

void Zone::add(net::DnsRecord record) {
  if (!record.name.is_subdomain_of(origin_))
    throw std::invalid_argument("record " + record.name.str() + " outside zone " +
                                origin_.str());
  records_[record.name][record.type].push_back(std::move(record));
  ++count_;
}

const std::vector<net::DnsRecord>* Zone::find(const net::DnsName& name,
                                              net::DnsType type) const {
  auto node = records_.find(name);
  if (node == records_.end()) return nullptr;
  auto set = node->second.find(type);
  if (set == node->second.end()) return nullptr;
  return &set->second;
}

bool Zone::name_exists(const net::DnsName& name) const {
  // A name "exists" if it owns records or is an empty non-terminal (some
  // descendant owns records).
  if (records_.count(name) > 0) return true;
  for (const auto& [owner, sets] : records_) {
    (void)sets;
    if (owner.is_subdomain_of(name) && !(owner == name)) return true;
  }
  return false;
}

void Zone::append_glue(const std::vector<net::DnsRecord>& ns_records,
                       LookupResult& result) const {
  for (const auto& ns : ns_records) {
    const auto* target = std::get_if<net::DnsName>(&ns.rdata);
    if (target == nullptr) continue;
    if (const auto* glue = find(*target, net::DnsType::kA)) {
      result.additionals.insert(result.additionals.end(), glue->begin(), glue->end());
    }
  }
}

LookupResult Zone::lookup(const net::DnsName& qname, net::DnsType qtype) const {
  LookupResult result;
  if (!qname.is_subdomain_of(origin_)) {
    result.kind = LookupKind::kNotInZone;
    return result;
  }

  // Zone cut check: the closest enclosing delegation below the origin (but
  // not the origin itself) takes precedence over anything else.
  std::size_t depth = qname.label_count() - origin_.label_count();
  for (std::size_t up = depth == 0 ? 1 : 1; up < depth; ++up) {
    net::DnsName cut = qname.parent(up);
    if (cut == origin_) break;
    if (const auto* ns = find(cut, net::DnsType::kNs)) {
      result.kind = LookupKind::kDelegation;
      result.authority = *ns;
      append_glue(*ns, result);
      return result;
    }
  }
  // The qname itself may be a delegation point (unless it is the apex).
  if (!(qname == origin_) && qtype != net::DnsType::kNs) {
    if (const auto* ns = find(qname, net::DnsType::kNs)) {
      result.kind = LookupKind::kDelegation;
      result.authority = *ns;
      append_glue(*ns, result);
      return result;
    }
  }

  if (const auto* exact = find(qname, qtype)) {
    result.kind = LookupKind::kAnswer;
    result.answers = *exact;
    return result;
  }
  // CNAME at the name answers any qtype.
  if (const auto* cname = find(qname, net::DnsType::kCname)) {
    result.kind = LookupKind::kAnswer;
    result.answers = *cname;
    return result;
  }

  if (name_exists(qname)) {
    result.kind = LookupKind::kNoData;
    if (const auto* soa = find(origin_, net::DnsType::kSoa)) result.authority = *soa;
    return result;
  }

  // Wildcard synthesis: the source of synthesis is "*.<ancestor>" for the
  // closest ancestor that exists.
  for (std::size_t up = 1; up <= depth; ++up) {
    net::DnsName wildcard = qname.parent(up).child("*");
    if (const auto* match = find(wildcard, qtype)) {
      result.kind = LookupKind::kAnswer;
      for (net::DnsRecord rr : *match) {
        rr.name = qname;  // synthesized owner
        result.answers.push_back(std::move(rr));
      }
      return result;
    }
    if (name_exists(wildcard)) break;  // wildcard exists but lacks qtype: NODATA
  }

  result.kind = LookupKind::kNxDomain;
  if (const auto* soa = find(origin_, net::DnsType::kSoa)) result.authority = *soa;
  return result;
}

}  // namespace shadowprobe::dnssrv
