#include "dnssrv/resolver.h"

#include "common/log.h"
#include "net/tls.h"
#include "sim/udp_util.h"

namespace shadowprobe::dnssrv {

namespace {
constexpr int kMaxReferrals = 12;
constexpr std::uint32_t kNegativeTtl = 300;
}  // namespace

RecursiveResolver::RecursiveResolver(std::string name, std::vector<net::Ipv4Addr> roots,
                                     Rng rng)
    : name_(std::move(name)), roots_(std::move(roots)), rng_(rng),
      qid_rng_(rng_.fork("qid")) {}

void RecursiveResolver::bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr service_addr,
                             net::Ipv4Addr egress_addr) {
  net_ = &net;
  node_ = node;
  service_ = service_addr;
  egress_ = egress_addr;
  net.set_handler(node, this);
}

std::uint16_t RecursiveResolver::fresh_qid() {
  for (;;) {
    auto qid = static_cast<std::uint16_t>(qid_rng_.bits());
    if (tasks_.count(qid) == 0) return qid;
  }
}

void RecursiveResolver::on_datagram(sim::Network& net, sim::NodeId self,
                                    const net::Ipv4Datagram& dgram) {
  (void)net;
  (void)self;
  if (dgram.header.protocol != net::IpProto::kUdp) return;
  auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                      dgram.header.dst);
  if (!udp.ok()) return;
  if (udp.value().dst_port == kEncryptedDnsPort) {
    handle_encrypted_query(dgram, udp.value());
    return;
  }
  auto message = net::DnsMessage::decode(BytesView(udp.value().payload));
  if (!message.ok()) return;
  const net::DnsMessage& dns = message.value();
  if (!dns.header.qr && udp.value().dst_port == 53) {
    if (!dns.questions.empty()) handle_client_query(dgram, udp.value(), dns, false);
  } else if (dns.header.qr && udp.value().src_port == 53) {
    handle_upstream_response(udp.value(), dns);
  }
}

void RecursiveResolver::handle_encrypted_query(const net::Ipv4Datagram& dgram,
                                               const net::UdpDatagram& udp) {
  // Encrypted DNS: the payload is an opaque session record wrapping a plain
  // DNS message. On-path observers cannot read it — but this resolver, the
  // terminating party, sees everything (which is why encryption does not
  // blunt destination-side shadowing).
  auto inner = net::tls_opaque_unwrap(BytesView(udp.payload));
  if (!inner.ok()) return;
  auto message = net::DnsMessage::decode(BytesView(inner.value()));
  if (!message.ok() || message.value().header.qr || message.value().questions.empty())
    return;
  handle_client_query(dgram, udp, message.value(), true);
}

void RecursiveResolver::handle_client_query(const net::Ipv4Datagram& dgram,
                                            const net::UdpDatagram& udp,
                                            const net::DnsMessage& query, bool encrypted) {
  ++client_queries_;
  const net::DnsQuestion& question = query.questions.front();
  QueryLogEntry entry{net_->now(), dgram.header.src, dgram.header.dst, question};
  for (const auto& observer : observers_) observer(entry);

  Task task;
  task.encrypted = encrypted;
  task.refresh_budget = quirks_.refresh_on_expiry ? quirks_.refresh_chain_limit : 0;
  task.client = dgram.header.src;
  task.client_port = udp.src_port;
  task.client_qid = query.header.id;
  task.service_addr = dgram.header.dst;
  task.question = question;

  if (auto cached = cache_.get(question.name, question.type, net_->now())) {
    ++cache_hits_;
    respond_to_client(task, cached->negative ? cached->rcode : net::DnsRcode::kNoError,
                      cached->records);
    return;
  }
  start_task(std::move(task));
}

void RecursiveResolver::start_task(Task task) {
  if (task.behavior_seed == 0) {
    // Entity-keyed behaviour: every draw this task will ever make stems
    // from (question name, occurrence) — never from what else the replica
    // happens to be resolving concurrently.
    std::uint32_t use = name_uses_[task.question.name.str()]++;
    task.behavior_seed =
        rng_.derive("task:" + task.question.name.str() + "#" + std::to_string(use))
            .origin_seed();
  }
  Rng root_rng = Rng(task.behavior_seed).derive("root");
  task.current_server = roots_[static_cast<std::size_t>(root_rng.below(roots_.size()))];
  task.referrals = 0;
  task.attempts = 0;
  std::uint16_t qid = fresh_qid();
  task.sport = next_sport_++;
  if (next_sport_ < 40000) next_sport_ = 40000;
  tasks_[qid] = std::move(task);
  send_upstream(qid);
}

void RecursiveResolver::send_upstream(std::uint16_t qid) {
  auto it = tasks_.find(qid);
  if (it == tasks_.end()) return;
  Task& task = it->second;
  ++task.attempts;
  ++upstream_queries_;
  net::DnsMessage query = net::DnsMessage::query(qid, task.question.name,
                                                 task.question.type);
  query.header.rd = false;  // iterative
  query.edns = net::EdnsInfo{};  // advertise EDNS0 (1232-byte answers)
  Bytes wire = query.encode();
  sim::send_udp(*net_, node_, egress_, task.current_server, task.sport, 53,
                BytesView(wire));
  std::uint64_t token = next_token_++;
  task.timeout_token = token;
  net_->loop().schedule(quirks_.upstream_timeout, [this, qid, token] {
    auto timed = tasks_.find(qid);
    if (timed == tasks_.end() || timed->second.timeout_token != token) return;
    if (timed->second.attempts >= quirks_.upstream_attempts) {
      finish_servfail(qid);
    } else {
      send_upstream(qid);
    }
  });
}

void RecursiveResolver::handle_upstream_response(const net::UdpDatagram& udp,
                                                 const net::DnsMessage& response) {
  auto it = tasks_.find(response.header.id);
  if (it == tasks_.end()) return;
  Task& task = it->second;
  if (udp.dst_port != task.sport) return;  // stale or spoof with wrong port
  std::uint16_t qid = it->first;

  if (response.header.rcode == net::DnsRcode::kNxDomain) {
    std::uint32_t ttl = kNegativeTtl;
    for (const auto& rr : response.authorities) {
      if (rr.type == net::DnsType::kSoa) {
        if (const auto* soa = std::get_if<net::SoaData>(&rr.rdata)) {
          ttl = std::min(rr.ttl, soa->minimum);
        }
      }
    }
    cache_.put_negative(task.question.name, task.question.type, net::DnsRcode::kNxDomain,
                        ttl, net_->now());
    finish_answer(qid, response);
    return;
  }
  if (response.header.rcode != net::DnsRcode::kNoError) {
    finish_servfail(qid);
    return;
  }
  if (!response.answers.empty()) {
    std::uint32_t ttl = response.answers.front().ttl;
    cache_.put(task.question.name, task.question.type, response.answers, ttl, net_->now());
    if (quirks_.refresh_on_expiry && task.refresh_budget > 0) {
      net::DnsQuestion question = task.question;
      int budget = task.refresh_budget - 1;
      net_->loop().schedule(static_cast<SimDuration>(ttl) * kSecond,
                            [this, question, budget] {
                              Task refresh;
                              refresh.internal = true;
                              refresh.refresh_budget = budget;
                              refresh.question = question;
                              start_task(std::move(refresh));
                            });
    }
    finish_answer(qid, response);
    return;
  }
  // Referral: follow the first glued NS.
  net::Ipv4Addr next_server;
  bool found = false;
  for (const auto& glue : response.additionals) {
    if (glue.type != net::DnsType::kA) continue;
    if (const auto* addr = std::get_if<net::Ipv4Addr>(&glue.rdata)) {
      next_server = *addr;
      found = true;
      break;
    }
  }
  if (!found || ++task.referrals > kMaxReferrals) {
    // NODATA (authoritative empty answer) resolves to an empty success;
    // a glueless referral is a dead end for this resolver.
    if (response.authorities.size() == 1 &&
        response.authorities.front().type == net::DnsType::kSoa) {
      cache_.put_negative(task.question.name, task.question.type, net::DnsRcode::kNoError,
                          kNegativeTtl, net_->now());
      finish_answer(qid, response);
    } else {
      finish_servfail(qid);
    }
    return;
  }
  task.current_server = next_server;
  task.attempts = 0;
  send_upstream(qid);
}

void RecursiveResolver::finish_answer(std::uint16_t qid, const net::DnsMessage& response) {
  auto it = tasks_.find(qid);
  if (it == tasks_.end()) return;
  Task task = std::move(it->second);
  tasks_.erase(it);
  if (!task.internal) {
    respond_to_client(task, response.header.rcode, response.answers);
  }
  maybe_schedule_requeries(task);
}

void RecursiveResolver::finish_servfail(std::uint16_t qid) {
  auto it = tasks_.find(qid);
  if (it == tasks_.end()) return;
  Task task = std::move(it->second);
  tasks_.erase(it);
  ++servfails_;
  if (!task.internal) respond_to_client(task, net::DnsRcode::kServFail, {});
}

void RecursiveResolver::respond_to_client(const Task& task, net::DnsRcode rcode,
                                          const std::vector<net::DnsRecord>& answers) {
  net::DnsMessage response;
  response.header.id = task.client_qid;
  response.header.qr = true;
  response.header.rd = true;
  response.header.ra = true;
  response.header.rcode = rcode;
  response.questions.push_back(task.question);
  response.answers = answers;
  Bytes wire = response.encode();
  if (task.encrypted) {
    Bytes sealed = net::tls_opaque_record(BytesView(wire));
    sim::send_udp(*net_, node_, task.service_addr, task.client, kEncryptedDnsPort,
                  task.client_port, BytesView(sealed));
  } else {
    sim::send_udp(*net_, node_, task.service_addr, task.client, 53, task.client_port,
                  BytesView(wire));
  }
}

void RecursiveResolver::maybe_schedule_requeries(const Task& task) {
  if (task.internal) return;  // duplicates never spawn more duplicates
  Rng requery_rng = Rng(task.behavior_seed).derive("requery");
  if (quirks_.requery_probability <= 0 || !requery_rng.chance(quirks_.requery_probability))
    return;
  // Duplicate verification queries straight to the last authoritative
  // server — the benign "zombie" repetitions the honeypot sees within a
  // minute of the original resolution.
  for (int i = 0; i < quirks_.requery_count; ++i) {
    SimDuration delay =
        from_seconds(requery_rng.exponential(to_seconds(quirks_.requery_delay_mean)));
    net::DnsQuestion question = task.question;
    net::Ipv4Addr server = task.current_server;
    net_->loop().schedule(delay, [this, question, server] {
      std::uint16_t qid = fresh_qid();
      Task dup;
      dup.internal = true;
      dup.question = question;
      dup.current_server = server;
      dup.sport = next_sport_++;
      // Cap attempts at one: fire-and-forget verification.
      dup.attempts = quirks_.upstream_attempts;
      tasks_[qid] = std::move(dup);
      net::DnsMessage query = net::DnsMessage::query(qid, question.name, question.type);
      query.header.rd = false;
      ++upstream_queries_;
      Bytes wire = query.encode();
      sim::send_udp(*net_, node_, egress_, server, tasks_[qid].sport, 53, BytesView(wire));
      // The response (if any) completes the task; otherwise reap it so the
      // qid space never leaks.
      net_->loop().schedule(quirks_.upstream_timeout, [this, qid] { tasks_.erase(qid); });
    });
  }
}

}  // namespace shadowprobe::dnssrv
