// Recursive DNS resolver: a DatagramHandler implementing full iterative
// resolution (root -> TLD -> authoritative, following glued referrals) with
// a TTL cache, retry/timeout logic, and configurable behavior quirks.
//
// Every public resolver of paper Table 4 — and the paper's self-built
// control resolver — is an instance of this class. The quirks model the
// *benign* causes of repeated queries the paper had to separate from true
// shadowing: duplicate/verification re-queries arriving within a minute,
// and (off by default, as the paper observed no hourly spikes) active cache
// refresh at TTL expiry.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dnssrv/auth_server.h"
#include "dnssrv/cache.h"
#include "sim/network.h"

namespace shadowprobe::dnssrv {

struct ResolverQuirks {
  /// Probability that a completed resolution is followed by duplicate
  /// re-queries of the final authoritative server ("DNS zombies" of the
  /// benign kind — the paper's <1 min DNS-DNS cluster).
  double requery_probability = 0.0;
  /// Mean of the exponential delay before each re-query.
  SimDuration requery_delay_mean = 20 * kSecond;
  int requery_count = 1;
  /// Re-resolve names when their cache entry expires (ablation knob; the
  /// paper found no TTL-aligned spikes, so default off). Chains are capped:
  /// a name is refreshed at most refresh_chain_limit times, as real
  /// prefetchers only keep hot names warm.
  bool refresh_on_expiry = false;
  int refresh_chain_limit = 2;
  /// Upstream query timeout and attempts.
  SimDuration upstream_timeout = 2 * kSecond;
  int upstream_attempts = 3;
};

/// Well-known encrypted-DNS service port handled by RecursiveResolver
/// (stands in for DoT/DoH sessions; queries arrive as opaque records).
constexpr std::uint16_t kEncryptedDnsPort = 853;

class RecursiveResolver : public sim::DatagramHandler {
 public:
  /// `roots` are the root-server hint addresses the resolver iterates from.
  RecursiveResolver(std::string name, std::vector<net::Ipv4Addr> roots, Rng rng);

  /// Attaches the resolver to its node. `service_addr` is the address
  /// clients query; `egress_addr` is the unicast source of upstream queries
  /// (must also be local to `node`) — split exactly like production anycast
  /// resolvers split their service and egress addresses.
  void bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr service_addr,
            net::Ipv4Addr egress_addr);

  void set_quirks(ResolverQuirks quirks) { quirks_ = quirks; }
  [[nodiscard]] const ResolverQuirks& quirks() const noexcept { return quirks_; }

  /// Observer over *client* queries (attachment point for shadowing
  /// exhibitors that harvest resolver query streams).
  void add_client_query_observer(AuthoritativeServer::QueryObserver observer) {
    observers_.push_back(std::move(observer));
  }

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] net::Ipv4Addr egress_addr() const noexcept { return egress_; }
  [[nodiscard]] std::uint64_t client_queries() const noexcept { return client_queries_; }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] std::uint64_t upstream_queries() const noexcept { return upstream_queries_; }
  [[nodiscard]] std::uint64_t servfails() const noexcept { return servfails_; }

 private:
  struct Task {
    /// Seed of the task's behavioural stream, derived from the question
    /// name (plus a per-name occurrence counter). Keying behaviour by the
    /// *name* — not by global draw order — keeps a resolution's fate
    /// identical no matter which other queries this replica is serving,
    /// which is what lets sharded campaigns replay byte-identically.
    std::uint64_t behavior_seed = 0;
    // Client side (unset for internal tasks: quirk re-queries / refreshes).
    bool internal = false;
    bool encrypted = false;  // client spoke encrypted DNS: answer in kind
    int refresh_budget = 0;  // remaining TTL-expiry refreshes for this name
    net::Ipv4Addr client;
    std::uint16_t client_port = 0;
    std::uint16_t client_qid = 0;
    net::Ipv4Addr service_addr;  // address the client queried
    net::DnsQuestion question;
    // Upstream side.
    net::Ipv4Addr current_server;
    std::uint16_t sport = 0;
    int referrals = 0;
    int attempts = 0;
    std::uint64_t timeout_token = 0;
  };

  void handle_client_query(const net::Ipv4Datagram& dgram, const net::UdpDatagram& udp,
                           const net::DnsMessage& query, bool encrypted);
  void handle_encrypted_query(const net::Ipv4Datagram& dgram, const net::UdpDatagram& udp);
  void handle_upstream_response(const net::UdpDatagram& udp, const net::DnsMessage& response);
  void start_task(Task task);
  void send_upstream(std::uint16_t qid);
  void finish_answer(std::uint16_t qid, const net::DnsMessage& response);
  void finish_servfail(std::uint16_t qid);
  void respond_to_client(const Task& task, net::DnsRcode rcode,
                         const std::vector<net::DnsRecord>& answers);
  void maybe_schedule_requeries(const Task& task);
  std::uint16_t fresh_qid();

  std::string name_;
  std::vector<net::Ipv4Addr> roots_;
  Rng rng_;
  Rng qid_rng_;  // upstream qids: non-behavioural, stays a sequential stream
  std::map<std::string, std::uint32_t> name_uses_;  // per-name task counter
  ResolverQuirks quirks_;
  DnsCache cache_;
  sim::Network* net_ = nullptr;
  sim::NodeId node_ = sim::kInvalidNode;
  net::Ipv4Addr service_;
  net::Ipv4Addr egress_;
  std::map<std::uint16_t, Task> tasks_;  // keyed by upstream qid
  std::uint16_t next_sport_ = 40000;
  std::uint64_t next_token_ = 1;
  std::vector<AuthoritativeServer::QueryObserver> observers_;

  std::uint64_t client_queries_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t upstream_queries_ = 0;
  std::uint64_t servfails_ = 0;
};

}  // namespace shadowprobe::dnssrv
