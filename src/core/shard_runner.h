// ShardRunner: one shard of a partitioned campaign.
//
// Each shard owns a complete Testbed replica — topology, resolvers,
// honeypots, web farm, and (via the decorator) exhibitor ground truth —
// built from the same master seed, so every replica is structurally
// identical. What differs is only *which VPs emit*: a shard executes the
// plan emissions whose VP it owns (round-robin by topology index) on its
// private event loop, and records outcomes in its private ledger / logbook
// / hop log, which the engine merges afterwards.
//
// Replica equivalence relies on two properties of the substrate:
//   - construction is label-keyed (fork_rng with stable names, exhibitor
//     seeds derived from seed ^ hash(label)), so replicas deploy byte-alike;
//   - behavioural randomness downstream of an emission is keyed by stable
//     entity names (VP id, decoy domain, resolver question), never by draw
//     order, so a decoy's fate is independent of which other VPs share its
//     shard.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "core/campaign_config.h"
#include "core/campaign_plan.h"
#include "core/campaign_result.h"
#include "core/screening.h"
#include "core/testbed.h"
#include "core/vp_agent.h"
#include "core/vp_scheduler.h"
#include "sim/fault.h"

namespace shadowprobe::core {

class ShardRunner {
 public:
  /// Installs ground-truth shadowing (exhibitors etc.) on a freshly built
  /// replica; the returned handle keeps the deployment alive for the
  /// shard's lifetime. Type-erased so sp_core needs no sp_shadow dependency.
  using Decorator = std::function<std::shared_ptr<void>(Testbed&)>;

  /// Replica mode: builds a full private Testbed from `bed_config`.
  ShardRunner(std::uint32_t shard_index, std::uint32_t shard_count,
              const TestbedConfig& bed_config, const CampaignConfig& config,
              const Decorator& decorate);
  /// Shared-World mode: instantiates a frozen per-shard Testbed over the
  /// immutable `world`; the decorator replays its deployment against the
  /// frozen layout (add_host_in_as verifies the replay by node name).
  ShardRunner(std::uint32_t shard_index, std::uint32_t shard_count,
              std::shared_ptr<const World> world, const CampaignConfig& config,
              const Decorator& decorate);
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  [[nodiscard]] std::uint32_t shard_index() const noexcept { return shard_index_; }
  /// Ownership under the static schedule: the explicit deal when one was
  /// installed, round-robin by topology index otherwise. The stealing
  /// schedule ignores this predicate — execution follows the work queue.
  [[nodiscard]] bool owns_vp(std::size_t vp_index) const noexcept {
    if (vp_index < deal_.size()) return deal_[vp_index] == shard_index_;
    return vp_index % shard_count_ == shard_index_;
  }
  /// Installs an explicit vp->shard deal (same vector on every shard). The
  /// static scheduler executes it verbatim; the stealing scheduler seeds its
  /// deques with it. Entries past the vector fall back to round-robin.
  void set_deal(std::vector<std::uint32_t> deal) { deal_ = std::move(deal); }

  // -- phases (the engine runs these on worker threads; each touches only
  //    this shard's replica) ---------------------------------------------

  /// Emits screening probes for the owned, non-residential VPs and lets
  /// them settle (advances the shard clock by one hour, like the serial
  /// campaign does).
  void run_screening();
  /// Seeds the shard ledger with the plan's path table (rebound to this
  /// replica's VP storage).
  void adopt_plan(const CampaignPlan& plan);
  /// Schedules the owned subset of plan emissions [first, last).
  void schedule_owned(const CampaignPlan& plan, std::size_t first, std::size_t last);
  /// Runs this shard's event loop up to `deadline`.
  void run_until(SimTime deadline);

  // -- per-VP phase execution (the stealing scheduler's unit of work). A
  //    phase becomes: begin_phase(); then one run_*_vp() per claimed VP; then
  //    run_until(deadline) to drain stragglers and align the clock. Each
  //    per-VP pass rewinds the loop to the phase start before scheduling, so
  //    a stolen VP's events still run at their true simulated times and the
  //    exported records match the static schedule byte for byte. ------------

  /// Marks the current clock as the phase start every subsequent per-VP
  /// pass rewinds to.
  void begin_phase() { phase_start_ = bed_->loop().now(); }
  [[nodiscard]] SimTime phase_start() const noexcept { return phase_start_; }
  /// Screening pass for one claimed VP: probes (skipped for residential VPs,
  /// like run_screening) plus the one-hour settle window.
  void run_screening_vp(std::size_t vp_index);
  /// Plan pass for one claimed VP: schedules exactly `emissions` (indices
  /// into plan.emissions(), all belonging to the VP) and runs to `deadline`.
  void run_plan_vp(const CampaignPlan& plan,
                   const std::vector<std::uint32_t>& emissions, SimTime deadline);

  // -- cross-phase fault-state hand-off (stealing only) --------------------

  /// Snapshot of this shard's failure streak / quarantine state for a VP it
  /// executed, for adoption by the VP's next-phase executor.
  [[nodiscard]] VpCarry export_carry(std::size_t vp_index) const;
  /// Installs a carry exported by the VP's previous executor. Must run
  /// before the VP's first pass of the new phase. Idempotent when the
  /// executor did not change.
  void adopt_carry(const VpCarry& carry);

  // -- results -----------------------------------------------------------

  /// Screening verdict for an owned VP (valid after run_screening).
  [[nodiscard]] ScreeningVerdict verdict(std::size_t vp_index) const;
  [[nodiscard]] const DecoyLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const std::vector<HoneypotHit>& hits() const noexcept {
    return bed_->logbook().hits();
  }
  /// Per-seq first-hop observations. FlatMap iteration order is
  /// table-internal; the engine folds these into ordered containers before
  /// anything reaches output.
  [[nodiscard]] const FlatMap<std::uint32_t, net::Ipv4Addr>& hop_log() const noexcept {
    return hop_log_;
  }
  [[nodiscard]] const FlatSet<std::uint32_t>& replicated_seqs() const noexcept {
    return replicated_seqs_;
  }
  [[nodiscard]] sim::EventLoopStats stats() const noexcept { return bed_->loop().stats(); }
  [[nodiscard]] Testbed& testbed() noexcept { return *bed_; }
  [[nodiscard]] const Testbed& testbed() const noexcept { return *bed_; }

  // -- fault / resilience results (meaningful when config.faults.enabled()) --

  /// This shard's partial coverage accounting: event counters for owned VPs
  /// only, so the engine's absorb() over all shards counts each event once.
  [[nodiscard]] CoverageStats coverage() const;
  /// Owned VPs quarantined during Phase I: vp_index -> quarantine time.
  [[nodiscard]] const FlatMap<std::size_t, SimTime>& quarantined_vps() const noexcept {
    return quarantined_;
  }
  /// Seqs of owned emissions skipped at fire time because their VP was
  /// quarantined — the exact set the barrier re-plans, so reschedule and
  /// cancellation can never disagree on boundary emissions.
  [[nodiscard]] const FlatSet<std::uint32_t>& cancelled_seqs() const noexcept {
    return cancelled_seqs_;
  }
  /// This replica's network counters (NOT layout-invariant; report only).
  [[nodiscard]] sim::NetworkCounters net_counters() const noexcept {
    return bed_->net().counters();
  }

 private:
  /// Common body: both public ctors delegate here with a ready Testbed
  /// (authoring replica or frozen instance — the wiring is identical).
  ShardRunner(std::uint32_t shard_index, std::uint32_t shard_count,
              std::unique_ptr<Testbed> bed, const CampaignConfig& config,
              const Decorator& decorate);

  /// Agents are built in vantage_points() order, one per VP, so the agent
  /// for a VP is found by pointer arithmetic against the replica's VP array
  /// — no index map needed.
  VpAgent* agent_for(const topo::VantagePoint* vp) {
    return agents_[static_cast<std::size_t>(vp - vps_base_)].get();
  }

  /// Shared body of schedule_owned and run_plan_vp: schedules one plan
  /// emission (churn deferral, quarantine fire-time check, protocol fanout).
  void schedule_emission(const CampaignPlan& plan, std::size_t index);
  /// Fire-time quarantine predicate: locally quarantined or carried in.
  [[nodiscard]] bool vp_quarantined(std::size_t vp_index) const noexcept {
    return quarantined_.contains(vp_index) || carried_quarantined_.contains(vp_index);
  }

  std::uint32_t shard_index_;
  std::uint32_t shard_count_;
  std::vector<std::uint32_t> deal_;  // explicit vp->shard deal; empty = round-robin
  SimTime phase_start_ = 0;
  CampaignConfig config_;
  std::unique_ptr<Testbed> bed_;
  std::shared_ptr<void> deployment_;
  Rng rng_;
  DecoyLedger ledger_;
  std::vector<std::unique_ptr<VpAgent>> agents_;
  const topo::VantagePoint* vps_base_ = nullptr;  // agents_[i] serves vps_base_[i]
  FlatMap<std::uint32_t, net::Ipv4Addr> hop_log_;
  FlatMap<std::uint32_t, int> response_counts_;
  FlatSet<std::uint32_t> replicated_seqs_;
  FlatSet<const topo::VantagePoint*> intercepted_vps_;
  std::unique_ptr<ControlServer> control_server_;
  net::Ipv4Addr control_addr_;

  // Fault layer (null unless config.faults.enabled()). The injector must
  // outlive the Network that holds a raw pointer to it — both die with this
  // runner, injector declared after bed_ so it is destroyed first but the
  // Network never routes during destruction.
  std::unique_ptr<sim::FaultInjector> injector_;
  FlatMap<std::size_t, sim::OutageWindow> vp_outages_;  // churned owned+peer VPs
  FlatMap<std::size_t, int> failure_streaks_;           // consecutive decoy failures
  FlatMap<std::size_t, SimTime> quarantined_;           // quarantined *here* (counted once)
  // Quarantines adopted from a VP's previous executor. Kept apart from
  // quarantined_ so coverage() never counts a carried quarantine a second
  // time, while the fire-time predicate still honours it.
  FlatMap<std::size_t, SimTime> carried_quarantined_;
  FlatSet<std::uint32_t> cancelled_seqs_;
  std::uint64_t decoys_lost_ = 0;
  std::uint64_t decoys_retried_ = 0;
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t decoys_cancelled_ = 0;
  std::uint64_t phase2_deferred_ = 0;
};

}  // namespace shadowprobe::core
