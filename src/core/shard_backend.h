// ShardBackend: pluggable execution substrate for sharded campaigns.
//
// CampaignEngine is a pure controller — it plans, coordinates the
// screening/Phase-II barriers, merges shard results, and correlates. *How*
// the shards actually execute is a backend concern:
//
//   - InProcessBackend: the classic thread-per-shard path. Each shard is a
//     ShardRunner over a (usually shared-World) Testbed replica in this
//     process; phase results are views into the runners' own storage.
//   - MultiProcessBackend: fork/execs `shadowprobe_cli --shard-worker`
//     children and speaks the core/wire framed protocol with them. Each
//     worker process builds its own World from the serialized configs and
//     runs a subset of the shards; phase results are decoded into storage
//     owned by the backend.
//
// The contract both implement: for a fixed seed and configs, the phase
// results the controller sees are *identical* — same ledgers, same hit
// logs, same counters — regardless of backend, process count, or thread
// layout. That is what keeps exported campaign JSON byte-identical between
// `--shards N` in-process and `--shards N --shard-procs P`.
//
// Result structs hand out pointers into backend-owned storage; they stay
// valid until the next phase call on the backend (or its destruction).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign_config.h"
#include "core/campaign_plan.h"
#include "core/campaign_result.h"
#include "core/screening.h"
#include "core/shard_runner.h"
#include "core/testbed.h"
#include "core/wire.h"
#include "core/world.h"

namespace shadowprobe::core {

/// Outcome of the screening phase, merged across shards: one verdict per VP
/// in topology order, plus the (uniform) post-screening shard clock the
/// Phase-I schedule starts from.
struct ShardScreening {
  std::vector<ScreeningVerdict> verdicts;
  SimTime clock = 0;
};

/// One shard's interim results at the Phase-II barrier. Vectors are sorted
/// ascending (the wire's canonical order); the in-process backend sorts its
/// flat-table snapshots the same way.
struct ShardBarrier {
  const DecoyLedger* ledger = nullptr;
  const std::vector<HoneypotHit>* hits = nullptr;
  std::vector<std::uint32_t> replicated;
  std::vector<std::size_t> quarantined;  ///< owned VPs quarantined in Phase I
  std::vector<std::uint32_t> cancelled;  ///< owned seqs skipped at fire time
};

/// One shard's final results at the campaign horizon.
struct ShardFinal {
  const DecoyLedger* ledger = nullptr;
  const std::vector<HoneypotHit>* hits = nullptr;
  std::vector<std::uint32_t> replicated;
  std::vector<std::pair<std::uint32_t, net::Ipv4Addr>> hops;  ///< by seq, ascending
  sim::EventLoopStats stats;
  sim::NetworkCounters net;
  CoverageStats coverage;  ///< this shard's partials (owned VPs only)
  /// Work-stealing activity over all phases (zero under the static
  /// scheduler). Report only — never part of the exported JSON.
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_completed = 0;
};

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  [[nodiscard]] virtual int shard_count() const noexcept = 0;

  /// A Testbed usable as the engine's primary context (geo database,
  /// signatures, blocklist, topology storage for pointer rebinds), or
  /// nullptr when execution is out-of-process and the engine must
  /// instantiate its own context over the World.
  [[nodiscard]] virtual Testbed* context_testbed() noexcept { return nullptr; }

  /// Runs the screening phase on every shard and merges the verdicts in
  /// topology order (`vp_count` entries).
  virtual ShardScreening run_screening(std::size_t vp_count) = 0;
  /// Distributes `plan`, runs every shard to the Phase-II `barrier`, and
  /// returns the interim results in shard order.
  virtual std::vector<ShardBarrier> run_phase1(const CampaignPlan& plan, SimTime barrier) = 0;
  /// Distributes the plan extension (emissions from `schedule_from`), runs
  /// every shard to the campaign horizon `end`, and returns the final
  /// results in shard order.
  virtual std::vector<ShardFinal> run_phase2(const CampaignPlan& plan,
                                             std::size_t schedule_from, SimTime end) = 0;

  /// Simulator events processed across every shard (perf reporting). For
  /// out-of-process backends this is known only after run_phase2.
  [[nodiscard]] virtual std::uint64_t events_processed() = 0;
};

/// Thread-per-shard execution in this process (the pre-split engine path).
class InProcessBackend final : public ShardBackend {
 public:
  /// `shard_count` is pre-clamped by the engine. With a non-null `world`
  /// every shard is a thin frozen instance over it; otherwise each shard
  /// authors a full private replica (SubstrateMode::kReplicaPerShard).
  /// `initial_deal` overrides the round-robin vp->shard distribution (both
  /// schedulers honour it; the determinism suite uses a skewed deal to force
  /// steals). Entries past the vector fall back to round-robin.
  InProcessBackend(const TestbedConfig& bed_config, std::shared_ptr<const World> world,
                   int shard_count, const CampaignConfig& config,
                   const ShardRunner::Decorator& decorate,
                   SchedulerMode scheduler = SchedulerMode::kSteal,
                   std::vector<std::uint32_t> initial_deal = {});
  ~InProcessBackend() override;

  [[nodiscard]] int shard_count() const noexcept override {
    return static_cast<int>(runners_.size());
  }
  [[nodiscard]] Testbed* context_testbed() noexcept override {
    return &runners_.front()->testbed();
  }

  ShardScreening run_screening(std::size_t vp_count) override;
  std::vector<ShardBarrier> run_phase1(const CampaignPlan& plan, SimTime barrier) override;
  std::vector<ShardFinal> run_phase2(const CampaignPlan& plan, std::size_t schedule_from,
                                     SimTime end) override;
  [[nodiscard]] std::uint64_t events_processed() override;

 private:
  /// Runs `fn` once per shard on one worker thread per shard and joins them
  /// (the inter-phase barrier). Exceptions propagate to the caller.
  void for_each_shard(const std::function<void(ShardRunner&)>& fn);
  [[nodiscard]] ShardBarrier snapshot_barrier(const ShardRunner& runner) const;
  [[nodiscard]] ShardFinal snapshot_final(const ShardRunner& runner) const;
  /// The initial vp->shard deal for a phase: round-robin overlaid with the
  /// caller's initial_deal entries.
  [[nodiscard]] std::vector<std::uint32_t> full_deal(std::size_t vp_count) const;
  /// Steal-mode phase driver: every shard drains `queue` (begin_phase, one
  /// per-VP pass per claim via `run_vp`, then run_until(deadline) to drain
  /// leftovers and align clocks), then the per-shard steal counters fold
  /// into steal_totals_.
  void drain_queue(VpWorkQueue& queue,
                   const std::function<void(ShardRunner&, std::size_t)>& run_vp,
                   SimTime deadline);

  CampaignConfig config_;
  SchedulerMode scheduler_;
  std::vector<std::uint32_t> initial_deal_;
  std::vector<std::unique_ptr<ShardRunner>> runners_;
  /// vp -> shard that executed it in Phase I (steal mode; drives the
  /// barrier carry export).
  std::vector<std::uint32_t> phase1_executors_;
  /// Carries exported at the Phase-II barrier, adopted at claim time.
  std::vector<VpCarry> carries_;
  std::vector<VpWorkQueue::StealCounters> steal_totals_;
};

/// Out-of-process execution: fork/execs worker children and drives them
/// over the core/wire framed protocol. Shard s is owned by worker
/// s % proc_count; workers build their substrates from the serialized
/// configs, so nothing but wire frames crosses the process boundary.
class MultiProcessBackend final : public ShardBackend {
 public:
  /// Spawns the workers immediately (they build their Worlds concurrently
  /// with whatever the caller does next). `proc_count` is clamped to
  /// [1, shard_count]. `worker_exe` resolves the worker binary: explicit
  /// path, else $SHADOWPROBE_WORKER_BIN, else /proc/self/exe.
  /// Throws std::runtime_error when a worker cannot be spawned.
  MultiProcessBackend(const TestbedConfig& bed_config, const CampaignConfig& config,
                      int shard_count, int proc_count, std::string worker_exe = {},
                      SchedulerMode scheduler = SchedulerMode::kSteal);
  ~MultiProcessBackend() override;

  [[nodiscard]] int shard_count() const noexcept override { return shard_count_; }
  [[nodiscard]] int proc_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  ShardScreening run_screening(std::size_t vp_count) override;
  std::vector<ShardBarrier> run_phase1(const CampaignPlan& plan, SimTime barrier) override;
  std::vector<ShardFinal> run_phase2(const CampaignPlan& plan, std::size_t schedule_from,
                                     SimTime end) override;
  [[nodiscard]] std::uint64_t events_processed() override;

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;  ///< our socketpair end (worker's stdin+stdout)
    std::unique_ptr<wire::FrameChannel> channel;
    std::vector<int> owned;  ///< shard indices, ascending
  };

  void spawn(int proc_index, int proc_count, const TestbedConfig& bed_config);
  /// Broadcasts one frame to every worker.
  void broadcast(wire::MsgType type, BytesView payload);
  /// Receives the next frame from `worker`, requiring `expected`; on EOF or
  /// corruption reaps the child and throws a std::runtime_error naming the
  /// worker, its exit status, and the wire error — the no-hang guarantee.
  wire::Frame expect(Worker& worker, wire::MsgType expected);
  /// Reaps `worker` for the error message, then tears down *every* worker
  /// (closing fds and reaping children) before throwing, so a failed
  /// campaign leaves no zombies or leaked descriptors behind.
  [[noreturn]] void fail_worker(Worker& worker, const std::string& what);
  void shutdown() noexcept;
  /// The stealing scheduler's cross-process rebalance: a weight-balanced
  /// vp->shard deal over the phase's emissions (empty under kStatic, which
  /// keeps the wire bytes equivalent to round-robin ownership).
  [[nodiscard]] std::vector<std::uint32_t> phase_deal(const CampaignPlan& plan,
                                                      std::size_t first,
                                                      std::size_t last) const;

  int shard_count_ = 1;
  SchedulerMode scheduler_ = SchedulerMode::kSteal;
  std::string worker_exe_;
  std::vector<Worker> workers_;
  std::uint64_t events_processed_ = 0;
  /// Carries collected at the Phase-II barrier, broadcast with Phase2Msg.
  std::vector<VpCarry> carries_;

  // Decoded storage backing the pointers handed out in phase results;
  // indexed by shard, replaced wholesale at each collection.
  std::vector<DecoyLedger> ledgers_;
  std::vector<std::vector<HoneypotHit>> hits_;
};

}  // namespace shadowprobe::core
