// ShardBackend: pluggable execution substrate for sharded campaigns.
//
// CampaignEngine is a pure controller — it plans, coordinates the
// screening/Phase-II barriers, merges shard results, and correlates. *How*
// the shards actually execute is a backend concern:
//
//   - InProcessBackend: the classic thread-per-shard path. Each shard is a
//     ShardRunner over a (usually shared-World) Testbed replica in this
//     process; phase results are views into the runners' own storage.
//   - MultiProcessBackend: fork/execs `shadowprobe_cli --shard-worker`
//     children and speaks the core/wire framed protocol with them. Each
//     worker process builds its own World from the serialized configs and
//     runs a subset of the shards; phase results are decoded into storage
//     owned by the backend.
//
// The contract both implement: for a fixed seed and configs, the phase
// results the controller sees are *identical* — same ledgers, same hit
// logs, same counters — regardless of backend, process count, or thread
// layout. That is what keeps exported campaign JSON byte-identical between
// `--shards N` in-process and `--shards N --shard-procs P`.
//
// Result structs hand out pointers into backend-owned storage; they stay
// valid until the next phase call on the backend (or its destruction).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/campaign_config.h"
#include "core/campaign_plan.h"
#include "core/campaign_result.h"
#include "core/screening.h"
#include "core/shard_runner.h"
#include "core/testbed.h"
#include "core/wire.h"
#include "core/world.h"

namespace shadowprobe::core {

/// Outcome of the screening phase, merged across shards: one verdict per VP
/// in topology order, plus the (uniform) post-screening shard clock the
/// Phase-I schedule starts from.
struct ShardScreening {
  std::vector<ScreeningVerdict> verdicts;
  SimTime clock = 0;
};

/// One shard's interim results at the Phase-II barrier. Vectors are sorted
/// ascending (the wire's canonical order); the in-process backend sorts its
/// flat-table snapshots the same way.
struct ShardBarrier {
  const DecoyLedger* ledger = nullptr;
  const std::vector<HoneypotHit>* hits = nullptr;
  std::vector<std::uint32_t> replicated;
  std::vector<std::size_t> quarantined;  ///< owned VPs quarantined in Phase I
  std::vector<std::uint32_t> cancelled;  ///< owned seqs skipped at fire time
};

/// One shard's final results at the campaign horizon.
struct ShardFinal {
  const DecoyLedger* ledger = nullptr;
  const std::vector<HoneypotHit>* hits = nullptr;
  std::vector<std::uint32_t> replicated;
  std::vector<std::pair<std::uint32_t, net::Ipv4Addr>> hops;  ///< by seq, ascending
  sim::EventLoopStats stats;
  sim::NetworkCounters net;
  CoverageStats coverage;  ///< this shard's partials (owned VPs only)
  /// Work-stealing activity over all phases (zero under the static
  /// scheduler). Report only — never part of the exported JSON.
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_completed = 0;
};

/// Supervision knobs for out-of-process execution (ignored in-process).
struct SupervisionConfig {
  /// Respawn budget per worker slot before degrading to in-process
  /// execution. 0 = never respawn (degrade on first loss).
  int worker_retries = 2;
  /// Interval at which workers pulse kHeartbeat while computing. 0 disables
  /// the pulse AND stall detection (a wedged worker then hangs the
  /// controller, as before supervision).
  int heartbeat_ms = 200;
  /// Silence (no frame, no heartbeat) after which a worker counts as
  /// stalled. Must comfortably exceed heartbeat_ms.
  int stall_timeout_ms = 30000;
  /// First respawn backoff; doubles per retry of the same slot (capped).
  int backoff_base_ms = 50;
};

/// What the supervisor had to do during a campaign. All zero on a clean run
/// (and always for InProcessBackend). Report-only — never exported JSON.
struct SupervisionStats {
  std::uint64_t workers_lost = 0;       ///< death + stall + corruption events
  std::uint64_t workers_respawned = 0;  ///< replacement processes that came up
  std::uint64_t workers_degraded = 0;   ///< slots that fell back in-process
  std::uint64_t shards_retried = 0;     ///< owned shards re-dispatched
};

class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  [[nodiscard]] virtual int shard_count() const noexcept = 0;

  /// Recovery activity, if this backend supervises workers.
  [[nodiscard]] virtual SupervisionStats supervision_stats() const { return {}; }

  /// A Testbed usable as the engine's primary context (geo database,
  /// signatures, blocklist, topology storage for pointer rebinds), or
  /// nullptr when execution is out-of-process and the engine must
  /// instantiate its own context over the World.
  [[nodiscard]] virtual Testbed* context_testbed() noexcept { return nullptr; }

  /// Runs the screening phase on every shard and merges the verdicts in
  /// topology order (`vp_count` entries).
  virtual ShardScreening run_screening(std::size_t vp_count) = 0;
  /// Distributes `plan`, runs every shard to the Phase-II `barrier`, and
  /// returns the interim results in shard order.
  virtual std::vector<ShardBarrier> run_phase1(const CampaignPlan& plan, SimTime barrier) = 0;
  /// Distributes the plan extension (emissions from `schedule_from`), runs
  /// every shard to the campaign horizon `end`, and returns the final
  /// results in shard order.
  virtual std::vector<ShardFinal> run_phase2(const CampaignPlan& plan,
                                             std::size_t schedule_from, SimTime end) = 0;

  /// Simulator events processed across every shard (perf reporting). For
  /// out-of-process backends this is known only after run_phase2.
  [[nodiscard]] virtual std::uint64_t events_processed() = 0;
};

/// Thread-per-shard execution in this process (the pre-split engine path).
class InProcessBackend final : public ShardBackend {
 public:
  /// `shard_count` is pre-clamped by the engine. With a non-null `world`
  /// every shard is a thin frozen instance over it; otherwise each shard
  /// authors a full private replica (SubstrateMode::kReplicaPerShard).
  /// `initial_deal` overrides the round-robin vp->shard distribution (both
  /// schedulers honour it; the determinism suite uses a skewed deal to force
  /// steals). Entries past the vector fall back to round-robin.
  InProcessBackend(const TestbedConfig& bed_config, std::shared_ptr<const World> world,
                   int shard_count, const CampaignConfig& config,
                   const ShardRunner::Decorator& decorate,
                   SchedulerMode scheduler = SchedulerMode::kSteal,
                   std::vector<std::uint32_t> initial_deal = {});
  ~InProcessBackend() override;

  [[nodiscard]] int shard_count() const noexcept override {
    return static_cast<int>(runners_.size());
  }
  [[nodiscard]] Testbed* context_testbed() noexcept override {
    return &runners_.front()->testbed();
  }

  ShardScreening run_screening(std::size_t vp_count) override;
  std::vector<ShardBarrier> run_phase1(const CampaignPlan& plan, SimTime barrier) override;
  std::vector<ShardFinal> run_phase2(const CampaignPlan& plan, std::size_t schedule_from,
                                     SimTime end) override;
  [[nodiscard]] std::uint64_t events_processed() override;

 private:
  /// Runs `fn` once per shard on one worker thread per shard and joins them
  /// (the inter-phase barrier). Exceptions propagate to the caller.
  void for_each_shard(const std::function<void(ShardRunner&)>& fn);
  [[nodiscard]] ShardBarrier snapshot_barrier(const ShardRunner& runner) const;
  [[nodiscard]] ShardFinal snapshot_final(const ShardRunner& runner) const;
  /// The initial vp->shard deal for a phase: round-robin overlaid with the
  /// caller's initial_deal entries.
  [[nodiscard]] std::vector<std::uint32_t> full_deal(std::size_t vp_count) const;
  /// Steal-mode phase driver: every shard drains `queue` (begin_phase, one
  /// per-VP pass per claim via `run_vp`, then run_until(deadline) to drain
  /// leftovers and align clocks), then the per-shard steal counters fold
  /// into steal_totals_.
  void drain_queue(VpWorkQueue& queue,
                   const std::function<void(ShardRunner&, std::size_t)>& run_vp,
                   SimTime deadline);

  CampaignConfig config_;
  SchedulerMode scheduler_;
  std::vector<std::uint32_t> initial_deal_;
  std::vector<std::unique_ptr<ShardRunner>> runners_;
  /// vp -> shard that executed it in Phase I (steal mode; drives the
  /// barrier carry export).
  std::vector<std::uint32_t> phase1_executors_;
  /// Carries exported at the Phase-II barrier, adopted at claim time.
  std::vector<VpCarry> carries_;
  std::vector<VpWorkQueue::StealCounters> steal_totals_;
};

/// Out-of-process execution: fork/execs worker children and drives them
/// over the core/wire framed protocol. Shard s is owned by worker
/// s % proc_count; workers build their substrates from the serialized
/// configs, so nothing but wire frames crosses the process boundary.
///
/// Supervision: the controller collects phase results through a poll loop
/// that watches every pending worker at once. A worker that dies (EOF +
/// waitpid), stalls (heartbeat silence past the timeout), or corrupts the
/// stream (CRC/framing/decode failure) is *lost*, not fatal: the supervisor
/// reaps it and re-dispatches its owned shards — first to a respawned
/// replacement (exponential backoff, bounded by SupervisionConfig
/// worker_retries), then, budget exhausted, to an in-process degraded
/// worker thread speaking the same protocol. A replacement is caught up by
/// replaying the Init and every phase command issued so far; results for
/// already-merged phases are validated and discarded, results for the
/// in-flight phase replace the lost worker's. Because all identifiers are
/// plan-preassigned and RNG draws entity-keyed, the re-executed shards are
/// byte-identical to what the lost worker would have produced — recovery
/// never changes the exported JSON. Only cross-worker inconsistencies the
/// retry cannot fix (clock skew, duplicate/missing verdicts) and the
/// failure of a degraded worker remain fatal.
class MultiProcessBackend final : public ShardBackend {
 public:
  /// Spawns the workers immediately (they build their Worlds concurrently
  /// with whatever the caller does next). `proc_count` is clamped to
  /// [1, shard_count]. `worker_exe` resolves the worker binary: explicit
  /// path, else $SHADOWPROBE_WORKER_BIN, else /proc/self/exe.
  /// `decorate` must match the campaign's decorator — degraded in-process
  /// workers replay the deployment with it. Throws std::runtime_error when
  /// the worker binary cannot be resolved or the initial spawn fails
  /// outright (fork/socketpair exhaustion).
  MultiProcessBackend(const TestbedConfig& bed_config, const CampaignConfig& config,
                      int shard_count, int proc_count, std::string worker_exe = {},
                      SchedulerMode scheduler = SchedulerMode::kSteal,
                      ShardRunner::Decorator decorate = {},
                      SupervisionConfig supervision = {});
  ~MultiProcessBackend() override;

  [[nodiscard]] int shard_count() const noexcept override { return shard_count_; }
  [[nodiscard]] int proc_count() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] SupervisionStats supervision_stats() const override { return sup_stats_; }

  /// Prebuilt World for degraded in-process workers to instantiate against
  /// (saves a rebuild; the engine shares its own). Optional — without it a
  /// degraded worker builds a private World from the serialized config.
  void set_fallback_world(std::shared_ptr<const World> world) {
    fallback_world_ = std::move(world);
  }

  ShardScreening run_screening(std::size_t vp_count) override;
  std::vector<ShardBarrier> run_phase1(const CampaignPlan& plan, SimTime barrier) override;
  std::vector<ShardFinal> run_phase2(const CampaignPlan& plan, std::size_t schedule_from,
                                     SimTime end) override;
  [[nodiscard]] std::uint64_t events_processed() override;

 private:
  /// One result frame the collector still owes a worker. `record` is false
  /// while a replacement replays an already-merged phase.
  struct Expect {
    wire::MsgType type;
    std::uint32_t shard_id;
    bool record;
  };

  /// A worker *slot*: the slot (its proc_index and owned shards) is
  /// permanent, the process behind it is replaceable.
  struct Worker {
    int proc_index = 0;
    pid_t pid = -1;
    int fd = -1;  ///< our socketpair end (worker's stdin+stdout)
    std::unique_ptr<wire::FrameChannel> channel;
    std::vector<int> owned;  ///< shard indices, ascending
    int spawn_gen = 0;       ///< incarnation counter (0 = original spawn)
    int respawns_left = 0;
    bool degraded = false;   ///< running as an in-process thread
    std::thread thread;      ///< the degraded worker, when degraded
    std::deque<Expect> script;
    std::chrono::steady_clock::time_point last_heard;
  };

  /// Which phase commands have been issued (drives replacement replay).
  enum class Phase { kIdle, kScreening, kPhase1, kPhase2 };

  /// Forks/execs a fresh process into `w` (throws on failure).
  void spawn_process(Worker& w);
  /// Replaces `w` with an in-process worker thread over a socketpair.
  void spawn_degraded(Worker& w);
  void send_init(Worker& w);
  /// Sends the current phase command to every worker and fills its script.
  /// A send failure is a lost worker, not an error.
  void dispatch(wire::MsgType type, BytesView payload);
  /// Poll loop draining every worker's script; detects death, stalls, and
  /// corruption, recovering via lose_worker. Returns when all scripts empty.
  void collect();
  /// Decodes `frame` against the worker's script front; records per-phase
  /// storage when the expectation says so. Throws on any mismatch/decode
  /// failure (the caller loses the worker).
  void consume_expected(Worker& w, const wire::Frame& frame);
  /// Decodes + (optionally) records one result frame. Throws on failure.
  void record_result(Worker& w, const wire::Frame& frame, bool record);
  /// The recovery pivot: reaps the dead/stalled/corrupt process, then
  /// respawns (with backoff, bounded) or degrades, and synchronously
  /// catches the replacement up through every phase issued so far. On
  /// return the slot is live again with an empty script. Throws only when
  /// recovery itself is impossible (a degraded worker failed).
  void lose_worker(Worker& w, const std::string& why);
  /// Closes the channel and reaps the process (or joins the thread) behind
  /// `w`, returning a human-readable exit description.
  std::string reap(Worker& w) noexcept;
  /// Replays Init + issued phase commands to a fresh incarnation of `w`,
  /// consuming its result frames as they come (discarding merged phases,
  /// recording the in-flight one). Failure loses the worker again.
  void replay(Worker& w);
  /// Waits (bounded by the stall timeout when heartbeats are on) for the
  /// next non-heartbeat frame from `w`, requiring `type`/`shard_id`.
  wire::Frame await_frame(Worker& w, wire::MsgType type, std::uint32_t shard_id);
  /// Unrecoverable cross-worker inconsistency: tears everything down
  /// (no zombies, no leaked fds) and throws.
  [[noreturn]] void fatal(const std::string& what);
  void shutdown() noexcept;
  /// The stealing scheduler's cross-process rebalance: a weight-balanced
  /// vp->shard deal over the phase's emissions (empty under kStatic, which
  /// keeps the wire bytes equivalent to round-robin ownership).
  [[nodiscard]] std::vector<std::uint32_t> phase_deal(const CampaignPlan& plan,
                                                      std::size_t first,
                                                      std::size_t last) const;

  int shard_count_ = 1;
  SchedulerMode scheduler_ = SchedulerMode::kSteal;
  std::string worker_exe_;
  // Kept for replacement replay: a respawned worker needs the same Init.
  TestbedConfig bed_config_;
  CampaignConfig config_;
  ShardRunner::Decorator decorate_;
  SupervisionConfig sup_;
  SupervisionStats sup_stats_;
  std::shared_ptr<const World> fallback_world_;
  std::vector<Worker> workers_;
  std::uint64_t events_processed_ = 0;
  /// Carries collected at the Phase-II barrier, broadcast with Phase2Msg.
  std::vector<VpCarry> carries_;

  // Replay state: which commands have been issued, and their exact payloads.
  Phase current_ = Phase::kIdle;
  bool screening_sent_ = false;
  bool phase1_sent_ = false;
  bool phase2_sent_ = false;
  Bytes phase1_payload_;
  Bytes phase2_payload_;

  // Decoded per-phase storage backing the pointers handed out in phase
  // results; replaced wholesale at each phase (and per-slot when a
  // replacement re-reports the in-flight phase).
  std::vector<wire::VerdictsMsg> verdict_msgs_;  ///< by worker slot
  std::vector<bool> verdict_filled_;             ///< by worker slot
  std::vector<wire::BarrierMsg> barrier_msgs_;   ///< by shard
  std::vector<wire::FinalMsg> final_msgs_;       ///< by shard
};

}  // namespace shadowprobe::core
