// Campaign configuration and screening summary, shared by the serial
// Campaign, the CampaignPlan, and the sharded CampaignEngine.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "core/vp_agent.h"
#include "sim/fault.h"

namespace shadowprobe::core {

/// How the engine maps VPs onto shard workers at run time. Not part of
/// CampaignConfig: the schedule is an execution concern (EngineExec) and
/// must never influence campaign output or the exported JSON.
enum class SchedulerMode : std::uint8_t {
  /// Fixed ownership for the whole campaign (round-robin by VP index, or an
  /// explicit deal). The pre-stealing engine behaviour, kept as the
  /// reference the determinism suite compares against.
  kStatic = 0,
  /// Per-phase VP work queues with work stealing: each shard drains its own
  /// deque VP by VP and, once empty, steals whole VPs from the most loaded
  /// shard. Output is byte-identical to kStatic — VP placement is
  /// layout-free — but ragged phases finish together.
  kSteal = 1,
};

[[nodiscard]] constexpr const char* scheduler_mode_name(SchedulerMode mode) noexcept {
  return mode == SchedulerMode::kStatic ? "static" : "steal";
}

struct CampaignConfig {
  /// Emission window of one Phase-I round.
  SimDuration phase1_window = 12 * kHour;
  /// Number of Phase-I rounds: the paper emits "continuously in a
  /// round-robin fashion without stop" for two months; each round sends a
  /// fresh decoy over every path.
  int phase1_rounds = 1;
  /// Delay after Phase I before problematic paths are computed and swept
  /// (gives slow exhibitors time to reveal themselves).
  SimDuration phase2_grace = 36 * kHour;
  SimDuration phase2_window = 12 * kHour;
  /// Campaign horizon: how long honeypots keep capturing (the paper ran for
  /// two months; 30 simulated days cover the 10-day retention tail).
  SimDuration total_duration = 30 * kDay;
  /// TTL sweep ceiling (the paper sweeps to 64; synthetic paths are <= 12
  /// hops, so a lower ceiling saves events without losing coverage).
  int max_sweep_ttl = 16;
  bool screening = true;
  bool measure_dns = true;
  bool measure_http = true;
  bool measure_tls = true;
  /// Mitigation study knobs (paper Section 6): encrypted / oblivious DNS
  /// transports and TLS ECH for the decoys.
  DnsDecoyTransport dns_transport = DnsDecoyTransport::kPlain;
  bool tls_decoys_use_ech = false;
  /// Worker threads for the post-barrier pipeline (classification of the
  /// merged hit logbook and the analysis-table scans). Results are
  /// byte-identical for any value; 1 = fully serial.
  int analysis_workers = 1;
  /// Fault-injection profile (sim/fault.h). The default (null) profile keeps
  /// campaign output byte-identical to a fault-free build; any enabled
  /// profile stays byte-identical across shard counts and analysis-worker
  /// counts because every fault decision is entity-keyed.
  sim::FaultProfile faults;
};

struct ScreeningReport {
  int candidates = 0;
  int rejected_residential = 0;
  int rejected_ttl_mangling = 0;
  int rejected_interception = 0;
  int usable = 0;
};

}  // namespace shadowprobe::core
