// Plain-text table rendering plus the CLI campaign report printers.
//
// The printers consume a precomputed CampaignAnalysis bundle (see
// analyze_campaign), so a CLI run computes every table exactly once and the
// printers never re-derive tables the JSON export already has.
#pragma once

#include <string>
#include <vector>

#include "core/analysis.h"

namespace shadowprobe::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3%" formatting helper.
std::string percent(double fraction, int decimals = 1);

// -- Campaign report printers (stdout) ------------------------------------------

/// Figure 3: problematic DNS path ratios per destination (top 12).
void print_fig3(const CampaignAnalysis& analysis);
/// Table 2: observer locations as normalized-hop share rows.
void print_table2(const CampaignAnalysis& analysis);
/// Table 3: top observer ASes per decoy protocol.
void print_table3(const CampaignAnalysis& analysis);
/// Section 5.1 retention summary over Resolver_h decoys.
void print_retention(const CampaignAnalysis& analysis);

/// Campaign header (volumes, shard execution stats — including a note when
/// the requested shard count was clamped) followed by the reports selected
/// by `report` ("all" | "fig3" | "table2" | "table3" | "retention").
void print_reports(const std::string& report, const CampaignResult& result,
                   const CampaignAnalysis& analysis);

}  // namespace shadowprobe::core
