// Plain-text table rendering for benches and examples.
#pragma once

#include <string>
#include <vector>

namespace shadowprobe::core {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3%" formatting helper.
std::string percent(double fraction, int decimals = 1);

}  // namespace shadowprobe::core
