#include "core/portscan.h"

namespace shadowprobe::core {

std::uint16_t PortScanSummary::top_open_port() const {
  std::uint16_t best = 0;
  int best_count = 0;
  for (const auto& [port, count] : open_port_counts) {
    if (count > best_count) {
      best = port;
      best_count = count;
    }
  }
  return best;
}

const std::vector<std::uint16_t>& PortScanner::default_ports() {
  static const std::vector<std::uint16_t> kPorts = {21,  22,  23,  25,   53,   80,  110,
                                                    143, 179, 443, 3389, 8080};
  return kPorts;
}

void PortScanner::bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr) {
  net_ = &net;
  addr_ = addr;
  tcp_ = std::make_unique<sim::TcpStack>(net, node, rng_.fork("tcp"));
  tcp_->set_on_established([this](const sim::ConnKey& key) {
    verdict(key, PortState::kOpen);
    tcp_->close(key);
  });
  tcp_->set_on_reset([this](const sim::ConnKey& key, bool during_handshake) {
    if (during_handshake) verdict(key, PortState::kClosed);
  });
  net.set_handler(node, this);
}

void PortScanner::scan(const std::vector<net::Ipv4Addr>& targets,
                       const std::vector<std::uint16_t>& ports, SimDuration timeout) {
  for (net::Ipv4Addr target : targets) {
    std::size_t index = results_.size();
    PortScanResult result;
    result.target = target;
    for (std::uint16_t port : ports) {
      result.ports[port] = PortState::kFiltered;  // until proven otherwise
      sim::ConnKey key = tcp_->connect(addr_, target, port);
      probes_[key] = {index, port};
      net_->loop().schedule(timeout, [this, key] { probes_.erase(key); });
    }
    results_.push_back(std::move(result));
  }
}

void PortScanner::on_datagram(sim::Network& net, sim::NodeId self,
                              const net::Ipv4Datagram& dgram) {
  (void)net;
  (void)self;
  if (dgram.header.protocol == net::IpProto::kTcp) tcp_->on_segment(dgram);
}

void PortScanner::verdict(const sim::ConnKey& key, PortState state) {
  const std::pair<std::size_t, std::uint16_t>* probe = probes_.find(key);
  if (probe == nullptr) return;
  auto [index, port] = *probe;
  results_[index].ports[port] = state;
  probes_.erase(key);
}

PortScanSummary PortScanner::summarize() const {
  PortScanSummary summary;
  summary.targets = static_cast<int>(results_.size());
  for (const auto& result : results_) {
    if (result.any_open()) ++summary.with_open_ports;
    for (const auto& [port, state] : result.ports) {
      if (state == PortState::kOpen) ++summary.open_port_counts[port];
    }
  }
  return summary;
}

}  // namespace shadowprobe::core
