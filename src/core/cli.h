// CLI option parsing for the shadowprobe front-end, extracted into sp_core
// so the validation rules are unit-testable without spawning the binary.
//
// Parsing is strict: every numeric argument must consume its whole token and
// land in the option's valid range, and a malformed fault-profile spec is
// rejected with the profile parser's own message. Errors come back as
// Result values; the binary turns them into a usage message and exit 2.
#pragma once

#include <string>
#include <vector>

#include "common/error.h"
#include "core/campaign_config.h"
#include "sim/fault.h"

namespace shadowprobe::core {

struct CliOptions {
  double scale = 1.0;
  std::uint64_t seed = 20240301;
  int days = 25;
  int shards = 0;       // 0 = serial Campaign, >= 1 = CampaignEngine
  int shard_procs = 0;  // 0 = in-process threads, >= 1 = worker processes
  /// Respawn budget per lost worker slot before degrading to in-process
  /// execution (multi-process backend only). 0 = degrade on first loss.
  int worker_retries = 2;
  /// Worker heartbeat interval / stall timeout, in milliseconds. Env-only
  /// knobs (SHADOWPROBE_WORKER_HEARTBEAT_MS / SHADOWPROBE_WORKER_STALL_MS);
  /// heartbeat 0 disables stall detection.
  int worker_heartbeat_ms = 200;
  int worker_stall_ms = 30000;
  SchedulerMode scheduler = SchedulerMode::kSteal;
  int analysis_workers = 1;
  DnsDecoyTransport transport = DnsDecoyTransport::kPlain;
  bool ech = false;
  bool screening = true;
  std::string report = "all";
  std::string json_path;
  int trace = 0;
  sim::FaultProfile faults;
};

/// Environment fallbacks, injected so tests control them without setenv.
/// Empty string = unset. Consulted before the argument list, so explicit
/// flags always win.
struct CliEnvironment {
  std::string shards;             // SHADOWPROBE_SHARDS
  std::string shard_procs;        // SHADOWPROBE_SHARD_PROCS
  std::string worker_retries;     // SHADOWPROBE_WORKER_RETRIES
  std::string worker_heartbeat;   // SHADOWPROBE_WORKER_HEARTBEAT_MS
  std::string worker_stall;       // SHADOWPROBE_WORKER_STALL_MS
  std::string scheduler;          // SHADOWPROBE_SCHEDULER
  std::string analysis_workers;  // SHADOWPROBE_ANALYSIS_WORKERS
  std::string fault_profile;     // SHADOWPROBE_FAULT_PROFILE

  /// Snapshot of the real process environment.
  static CliEnvironment from_process();
};

/// Parses the options following `shadowprobe_cli run`. `args` excludes the
/// program name and the `run` verb.
[[nodiscard]] Result<CliOptions> parse_cli_options(const std::vector<std::string>& args,
                                                   const CliEnvironment& env = {});

}  // namespace shadowprobe::core
