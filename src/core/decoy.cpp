#include "core/decoy.h"

#include "common/base32.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/strutil.h"

namespace shadowprobe::core {

namespace {

std::uint8_t checksum(BytesView data) {
  // Low byte of FNV-1a over the payload: enough to reject mangled labels.
  std::uint64_t h = fnv1a(std::string_view(reinterpret_cast<const char*>(data.data()),
                                           data.size()));
  return static_cast<std::uint8_t>(h & 0xFF);
}

}  // namespace

std::string encode_decoy_label(const DecoyId& id) {
  ByteWriter w(16);
  w.u32(id.time_sec);
  w.u32(id.vp.value());
  w.u32(id.dst.value());
  w.u8(id.ttl);
  w.u8(static_cast<std::uint8_t>(id.protocol));
  Bytes payload = std::move(w).take();
  payload.push_back(checksum(BytesView(payload)));
  return base32_encode(BytesView(payload)) + "-" + std::to_string(id.seq);
}

std::optional<DecoyId> decode_decoy_label(std::string_view label) {
  std::size_t dash = label.rfind('-');
  if (dash == std::string_view::npos) return std::nullopt;
  long long seq = parse_uint(label.substr(dash + 1));
  if (seq < 0) return std::nullopt;
  auto payload = base32_decode(label.substr(0, dash));
  if (!payload || payload->size() != 15) return std::nullopt;
  BytesView body = BytesView(*payload).subspan(0, 14);
  if (checksum(body) != (*payload)[14]) return std::nullopt;
  ByteReader r(body);
  DecoyId id;
  id.time_sec = r.u32();
  id.vp = net::Ipv4Addr(r.u32());
  id.dst = net::Ipv4Addr(r.u32());
  id.ttl = r.u8();
  std::uint8_t proto = r.u8();
  if (proto > 2) return std::nullopt;
  id.protocol = static_cast<DecoyProtocol>(proto);
  id.seq = static_cast<std::uint32_t>(seq);
  return id;
}

net::DnsName decoy_domain(const DecoyId& id) {
  return experiment_suffix().child(encode_decoy_label(id));
}

std::optional<DecoyId> decoy_from_name(const net::DnsName& name) {
  const net::DnsName& suffix = experiment_suffix();
  if (!name.is_subdomain_of(suffix)) return std::nullopt;
  if (name.label_count() != suffix.label_count() + 1) return std::nullopt;
  return decode_decoy_label(name.label(0));
}

std::optional<DecoyId> decoy_from_host(std::string_view host) {
  auto name = net::DnsName::parse(host);
  if (!name) return std::nullopt;
  return decoy_from_name(*name);
}

}  // namespace shadowprobe::core
