// Vantage-point agent: the measurement client running "behind" one VPN VP.
//
// Emits the three decoy types with controllable initial TTL (the Phase-II
// instrument), performs the platform-screening probes (pair-resolver
// interception check, TTL-canary check), and reports what comes back:
// destination responses, ICMP Time-Exceeded hops, and interception hits.
//
// Providers that mangle outgoing TTLs are modeled here: when the underlying
// VP's provider resets TTLs, every packet leaves with TTL 64 regardless of
// what the scheduler asked for — precisely the defect the canary screen
// must catch (Appendix E).
#pragma once

#include <functional>
#include <memory>

#include "common/flat_map.h"
#include "common/rng.h"
#include "core/ledger.h"
#include "net/tls.h"
#include "sim/network.h"
#include "sim/tcp_stack.h"
#include "topo/topology.h"

namespace shadowprobe::core {

/// How DNS decoys travel to their destination resolver (the paper's
/// Section 6 mitigation spectrum).
enum class DnsDecoyTransport {
  kPlain,      // classic UDP/53, QNAME in the clear
  kEncrypted,  // DoT/DoH-style opaque session to port 853
  kOblivious,  // ODoH-style: sealed envelope via an oblivious proxy
};

/// Retry behaviour for Phase-I decoys under lossy fault profiles. Disabled
/// by default: no timers armed, no pending-decoy tracking — byte-identical
/// to the historical fire-and-forget agent.
struct DecoyRetryPolicy {
  bool enabled = false;
  int max_retries = 3;               ///< resends per UDP decoy
  SimDuration timeout = 5 * kSecond;  ///< initial per-attempt timeout; doubles
  SimDuration deadline = 30 * kSecond;  ///< overall budget for a TCP decoy
};

class VpAgent : public sim::DatagramHandler {
 public:
  struct Hooks {
    /// Destination answered decoy `seq` (DNS response / HTTP response / TLS
    /// ServerHello / TCP RST to a raw probe).
    std::function<void(std::uint32_t seq, SimTime when)> on_dest_response;
    /// ICMP Time-Exceeded for decoy `seq` from `hop_addr`.
    std::function<void(std::uint32_t seq, net::Ipv4Addr hop_addr, SimTime when)> on_hop;
    /// A pair-resolver probe was answered: DNS interception on this VP.
    std::function<void(const topo::VantagePoint& vp, net::Ipv4Addr pair_addr)>
        on_interception;
    /// Decoy `seq` was re-sent (attempt is 1-based) after a timeout.
    std::function<void(std::uint32_t seq, int attempt)> on_decoy_retry;
    /// Decoy `seq` exhausted its retry budget without a destination response.
    std::function<void(std::uint32_t seq)> on_decoy_failed;
  };

  VpAgent(const topo::VantagePoint& vp, Rng rng, Hooks hooks);

  void bind(sim::Network& net);

  /// Mitigation options (defaults reproduce the paper's plain-text decoys).
  void set_dns_transport(DnsDecoyTransport transport, net::Ipv4Addr oblivious_proxy = {}) {
    dns_transport_ = transport;
    oblivious_proxy_ = oblivious_proxy;
  }
  void set_tls_ech(bool use_ech) noexcept { tls_ech_ = use_ech; }

  /// Arms decoy retries (and the TCP stack's retransmission machinery, using
  /// the same budget). Call any time; applies to decoys sent afterwards.
  void set_retry_policy(const DecoyRetryPolicy& policy);
  /// TCP segments retransmitted by this agent's stack (coverage accounting).
  [[nodiscard]] std::uint64_t tcp_retransmissions() const noexcept {
    return tcp_ ? tcp_->retransmissions() : 0;
  }

  // -- decoys ----------------------------------------------------------------

  /// UDP DNS query for the decoy domain (Phase I and Phase II).
  void send_dns_decoy(const DecoyRecord& record);
  /// TCP handshake, then GET with the decoy domain as Host (Phase I).
  void send_http_decoy(const DecoyRecord& record);
  /// TCP handshake, then ClientHello with the decoy domain as SNI (Phase I).
  void send_tls_decoy(const DecoyRecord& record);
  /// Handshake-less data segment carrying the HTTP GET / ClientHello
  /// (Phase II traceroute — the paper skips handshakes there to avoid
  /// holding destination connections open across the TTL sweep).
  void send_raw_decoy(const DecoyRecord& record);

  // -- screening probes --------------------------------------------------------

  /// Queries the non-serving sibling address of a resolver ("pair
  /// resolver"); any answer flags on-path DNS interception.
  void send_pair_probe(net::Ipv4Addr pair_addr);
  /// Emits a canary datagram with the requested initial TTL towards the
  /// control server; the server-side TTL arithmetic exposes providers that
  /// rewrite TTLs.
  void send_ttl_canary(net::Ipv4Addr control_server, std::uint8_t initial_ttl,
                       std::uint32_t token);

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] const topo::VantagePoint& vp() const noexcept { return vp_; }

 private:
  std::uint8_t effective_ttl(std::uint8_t requested) const noexcept {
    return vp_.resets_ttl ? 64 : requested;
  }
  std::uint16_t next_ip_id(std::uint32_t seq);
  void handle_icmp(const net::Ipv4Datagram& dgram);
  void handle_udp(const net::Ipv4Datagram& dgram);
  void handle_tcp(const net::Ipv4Datagram& dgram);
  void emit_dns_query(const DecoyRecord& record, std::uint16_t qid);
  void track_dns_decoy(const DecoyRecord& record, std::uint16_t qid);
  void track_tcp_decoy(const DecoyRecord& record, const sim::ConnKey& key);
  void on_dns_retry_timer(std::uint32_t seq);
  void on_tcp_deadline(std::uint32_t seq);
  void resolve_pending(std::uint32_t seq);

  const topo::VantagePoint& vp_;
  Rng rng_;
  Hooks hooks_;
  sim::Network* net_ = nullptr;
  std::unique_ptr<sim::TcpStack> tcp_;

  // In-flight correlation tables: probed once per response/ICMP packet and
  // never iterated, so unordered flat maps are safe and allocation-free.
  FlatMap<std::uint16_t, std::uint32_t> qid_to_seq_;    // DNS decoys in flight
  FlatMap<std::uint16_t, std::uint32_t> ipid_to_seq_;   // ICMP correlation
  FlatMap<std::uint16_t, std::uint32_t> rawport_to_seq_;  // raw TCP decoys
  FlatMap<sim::ConnKey, std::uint32_t> conn_to_seq_;    // handshake decoys
  FlatMap<sim::ConnKey, Bytes> conn_payload_;           // payload queued on connect
  FlatMap<std::uint16_t, net::Ipv4Addr> pair_probes_;   // qid -> pair addr
  std::uint16_t next_qid_ = 1;
  std::uint16_t next_ipid_ = 1;
  std::uint16_t next_rawport_ = 20000;
  DnsDecoyTransport dns_transport_ = DnsDecoyTransport::kPlain;
  net::Ipv4Addr oblivious_proxy_;
  bool tls_ech_ = false;

  /// A Phase-I decoy awaiting its destination response under a retry policy.
  struct PendingDecoy {
    DecoyRecord record;     // copy, so a retry can re-emit the exact decoy
    std::uint16_t qid = 0;  // DNS decoys re-send under the original qid
    sim::ConnKey conn;      // TCP decoys: connection to tear down on deadline
    bool tcp = false;
    int attempts = 0;       // retries performed so far
    sim::TimerId timer = 0;
    bool armed = false;
  };
  DecoyRetryPolicy retry_;
  FlatMap<std::uint32_t, PendingDecoy> pending_;  // by decoy seq
};

/// Control server for the TTL-canary screen: records the arrival TTL of
/// every canary datagram, keyed by (VP address, token).
class ControlServer : public sim::DatagramHandler {
 public:
  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  /// Arrival TTL for (vp, token); -1 if the canary never arrived.
  [[nodiscard]] int arrival_ttl(net::Ipv4Addr vp, std::uint32_t token) const;

 private:
  FlatMap<std::pair<net::Ipv4Addr, std::uint32_t>, std::uint8_t> arrivals_;
};

}  // namespace shadowprobe::core
