#include "core/types.h"

namespace shadowprobe::core {

std::string decoy_protocol_name(DecoyProtocol p) {
  switch (p) {
    case DecoyProtocol::kDns: return "DNS";
    case DecoyProtocol::kHttp: return "HTTP";
    case DecoyProtocol::kTls: return "TLS";
  }
  return "?";
}

std::string request_protocol_name(RequestProtocol p) {
  switch (p) {
    case RequestProtocol::kDns: return "DNS";
    case RequestProtocol::kHttp: return "HTTP";
    case RequestProtocol::kHttps: return "HTTPS";
  }
  return "?";
}

std::string combo_label(DecoyProtocol decoy, RequestProtocol request) {
  return decoy_protocol_name(decoy) + "-" + request_protocol_name(request);
}

const net::DnsName& experiment_zone() {
  static const net::DnsName kZone = net::DnsName::must_parse("shadowprobe-exp.com");
  return kZone;
}

const net::DnsName& experiment_suffix() {
  static const net::DnsName kSuffix = experiment_zone().child("www");
  return kSuffix;
}

}  // namespace shadowprobe::core
