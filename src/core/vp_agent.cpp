#include "core/vp_agent.h"

#include "dnssrv/oblivious.h"
#include "dnssrv/resolver.h"
#include "net/dns.h"
#include "net/http.h"
#include "net/icmp.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::core {

namespace {

constexpr std::uint16_t kCanaryPort = 7777;

Bytes http_decoy_payload(const net::DnsName& domain) {
  net::HttpRequest request;
  request.method = "GET";
  request.target = "/";
  request.headers.add("Host", domain.str());
  request.headers.add("User-Agent", "shadowprobe-measurement/1.0");
  request.headers.add("Accept", "*/*");
  return request.encode();
}

Bytes tls_decoy_payload(const net::DnsName& domain, Rng& rng, bool use_ech) {
  net::TlsClientHello hello;
  for (auto& b : hello.random) b = static_cast<std::uint8_t>(rng.bits());
  hello.cipher_suites = {0x1301, 0x1302, 0x1303, 0xC02B, 0xC02F};
  if (use_ech) {
    // The true name rides encrypted; on-path parties see only the shared
    // provider front (TLS 1.3 ECH, the paper's Section 6 recommendation).
    hello.set_ech(domain.str(), "public.ech-shield.example");
  } else {
    hello.set_sni(domain.str());
  }
  hello.set_supported_versions({0x0304, 0x0303});
  hello.set_alpn({"h2", "http/1.1"});
  return hello.encode_record();
}

}  // namespace

VpAgent::VpAgent(const topo::VantagePoint& vp, Rng rng, Hooks hooks)
    : vp_(vp), rng_(rng), hooks_(std::move(hooks)) {}

void VpAgent::bind(sim::Network& net) {
  net_ = &net;
  tcp_ = std::make_unique<sim::TcpStack>(net, vp_.node, rng_.fork("tcp"));
  if (retry_.enabled) {
    tcp_->set_retransmit({true, retry_.timeout, retry_.max_retries});
  }
  tcp_->set_on_established([this](const sim::ConnKey& key) {
    if (!conn_to_seq_.contains(key)) return;
    const Bytes* payload = conn_payload_.find(key);
    if (payload == nullptr) return;
    tcp_->send_data(key, BytesView(*payload));
  });
  tcp_->set_on_data([this](const sim::ConnKey& key, BytesView) {
    const std::uint32_t* found = conn_to_seq_.find(key);
    if (found == nullptr) return;
    std::uint32_t seq = *found;
    if (hooks_.on_dest_response) hooks_.on_dest_response(seq, net_->now());
    resolve_pending(seq);
    conn_to_seq_.erase(key);
    conn_payload_.erase(key);
    tcp_->close(key);
  });
  tcp_->set_on_reset([this](const sim::ConnKey& key, bool) {
    if (const std::uint32_t* seq = conn_to_seq_.find(key)) resolve_pending(*seq);
    conn_to_seq_.erase(key);
    conn_payload_.erase(key);
  });
  tcp_->set_on_failed([this](const sim::ConnKey& key, bool) {
    const std::uint32_t* found = conn_to_seq_.find(key);
    if (found == nullptr) return;
    std::uint32_t seq = *found;
    conn_to_seq_.erase(key);
    conn_payload_.erase(key);
    resolve_pending(seq);
    if (hooks_.on_decoy_failed) hooks_.on_decoy_failed(seq);
  });
  net.set_handler(vp_.node, this);
}

void VpAgent::set_retry_policy(const DecoyRetryPolicy& policy) {
  retry_ = policy;
  if (tcp_ && retry_.enabled) {
    tcp_->set_retransmit({true, retry_.timeout, retry_.max_retries});
  }
}

void VpAgent::resolve_pending(std::uint32_t seq) {
  const PendingDecoy* pending = pending_.find(seq);
  if (pending == nullptr) return;
  if (pending->armed) net_->loop().cancel(pending->timer);
  pending_.erase(seq);
}

std::uint16_t VpAgent::next_ip_id(std::uint32_t seq) {
  std::uint16_t id = next_ipid_++;
  if (next_ipid_ == 0) next_ipid_ = 1;
  ipid_to_seq_[id] = seq;
  return id;
}

void VpAgent::send_dns_decoy(const DecoyRecord& record) {
  std::uint16_t qid = next_qid_++;
  if (next_qid_ == 0) next_qid_ = 1;
  qid_to_seq_[qid] = record.id.seq;
  emit_dns_query(record, qid);
  // Phase-II sweep probes are sent with deliberately short TTLs and are not
  // expected to reach the destination — retrying them would only distort the
  // sweep's timing, so the retry ledger tracks Phase-I decoys exclusively.
  if (retry_.enabled && !record.phase2) track_dns_decoy(record, qid);
}

void VpAgent::emit_dns_query(const DecoyRecord& record, std::uint16_t qid) {
  net::DnsMessage query = net::DnsMessage::query(qid, record.domain, net::DnsType::kA);
  Bytes wire = query.encode();
  switch (dns_transport_) {
    case DnsDecoyTransport::kPlain:
      sim::send_udp(*net_, vp_.node, vp_.addr, record.id.dst, 30000, 53, BytesView(wire),
                    effective_ttl(record.id.ttl), next_ip_id(record.id.seq));
      break;
    case DnsDecoyTransport::kEncrypted: {
      Bytes sealed = net::tls_opaque_record(BytesView(wire));
      sim::send_udp(*net_, vp_.node, vp_.addr, record.id.dst, 30000,
                    dnssrv::kEncryptedDnsPort, BytesView(sealed),
                    effective_ttl(record.id.ttl), next_ip_id(record.id.seq));
      break;
    }
    case DnsDecoyTransport::kOblivious: {
      Bytes envelope = dnssrv::oblivious_envelope(record.id.dst, BytesView(wire));
      sim::send_udp(*net_, vp_.node, vp_.addr, oblivious_proxy_, 30000,
                    dnssrv::kObliviousPort, BytesView(envelope),
                    effective_ttl(record.id.ttl), next_ip_id(record.id.seq));
      break;
    }
  }
}

void VpAgent::send_http_decoy(const DecoyRecord& record) {
  sim::ConnKey key = tcp_->connect(vp_.addr, record.id.dst, 80, effective_ttl(record.id.ttl));
  conn_to_seq_[key] = record.id.seq;
  conn_payload_[key] = http_decoy_payload(record.domain);
  if (retry_.enabled && !record.phase2) track_tcp_decoy(record, key);
}

void VpAgent::send_tls_decoy(const DecoyRecord& record) {
  sim::ConnKey key = tcp_->connect(vp_.addr, record.id.dst, 443,
                                   effective_ttl(record.id.ttl));
  conn_to_seq_[key] = record.id.seq;
  conn_payload_[key] = tls_decoy_payload(record.domain, rng_, tls_ech_);
  if (retry_.enabled && !record.phase2) track_tcp_decoy(record, key);
}

void VpAgent::track_dns_decoy(const DecoyRecord& record, std::uint16_t qid) {
  std::uint32_t seq = record.id.seq;
  PendingDecoy pending;
  pending.record = record;
  pending.qid = qid;
  pending.armed = true;
  pending.timer = net_->loop().schedule_cancellable(
      retry_.timeout, [this, seq] { on_dns_retry_timer(seq); });
  pending_[seq] = std::move(pending);
}

void VpAgent::track_tcp_decoy(const DecoyRecord& record, const sim::ConnKey& key) {
  // SYN/data retransmissions live in the TCP stack; the agent only holds an
  // overall deadline catching losses the client stack cannot see (e.g. the
  // server's response vanishing on the return path).
  std::uint32_t seq = record.id.seq;
  PendingDecoy pending;
  pending.record = record;
  pending.conn = key;
  pending.tcp = true;
  pending.armed = true;
  pending.timer = net_->loop().schedule_cancellable(
      retry_.deadline, [this, seq] { on_tcp_deadline(seq); });
  pending_[seq] = std::move(pending);
}

void VpAgent::on_dns_retry_timer(std::uint32_t seq) {
  PendingDecoy* found = pending_.find(seq);
  if (found == nullptr) return;
  PendingDecoy& pending = *found;
  pending.armed = false;
  if (pending.attempts >= retry_.max_retries) {
    pending_.erase(seq);
    if (hooks_.on_decoy_failed) hooks_.on_decoy_failed(seq);
    return;
  }
  ++pending.attempts;
  if (hooks_.on_decoy_retry) hooks_.on_decoy_retry(seq, pending.attempts);
  // Same qid (it still maps to this seq), fresh IP id for ICMP correlation.
  emit_dns_query(pending.record, pending.qid);
  SimDuration timeout = retry_.timeout * (SimDuration{1} << pending.attempts);
  pending.armed = true;
  pending.timer =
      net_->loop().schedule_cancellable(timeout, [this, seq] { on_dns_retry_timer(seq); });
}

void VpAgent::on_tcp_deadline(std::uint32_t seq) {
  const PendingDecoy* pending = pending_.find(seq);
  if (pending == nullptr) return;
  sim::ConnKey conn = pending->conn;
  pending_.erase(seq);
  conn_to_seq_.erase(conn);
  conn_payload_.erase(conn);
  tcp_->close(conn);
  if (hooks_.on_decoy_failed) hooks_.on_decoy_failed(seq);
}

void VpAgent::send_raw_decoy(const DecoyRecord& record) {
  // No handshake: a lone PSH|ACK data segment carries the decoy payload so
  // on-wire observers can read it; the destination answers with RST, which
  // doubles as the "decoy reached destination" signal.
  std::uint16_t local_port = next_rawport_++;
  if (next_rawport_ < 20000) next_rawport_ = 20000;
  rawport_to_seq_[local_port] = record.id.seq;
  net::TcpSegment segment;
  segment.src_port = local_port;
  segment.dst_port = record.id.protocol == DecoyProtocol::kTls ? 443 : 80;
  segment.seq = static_cast<std::uint32_t>(rng_.bits());
  segment.ack = static_cast<std::uint32_t>(rng_.bits());
  segment.flags = {.ack = true, .psh = true};
  segment.payload = record.id.protocol == DecoyProtocol::kTls
                        ? tls_decoy_payload(record.domain, rng_, tls_ech_)
                        : http_decoy_payload(record.domain);
  net::Ipv4Header header;
  header.src = vp_.addr;
  header.dst = record.id.dst;
  header.ttl = effective_ttl(record.id.ttl);
  header.protocol = net::IpProto::kTcp;
  header.identification = next_ip_id(record.id.seq);
  net_->send(vp_.node, header, segment.encode(vp_.addr, record.id.dst));
}

void VpAgent::send_pair_probe(net::Ipv4Addr pair_addr) {
  std::uint16_t qid = next_qid_++;
  if (next_qid_ == 0) next_qid_ = 1;
  pair_probes_[qid] = pair_addr;
  // A neutral name outside the decoy namespace; interceptors answer it,
  // real (non-)services do not.
  net::DnsName name = experiment_zone().child("check").child("pair-" + vp_.id);
  net::DnsMessage query = net::DnsMessage::query(qid, name, net::DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(*net_, vp_.node, vp_.addr, pair_addr, 30001, 53, BytesView(wire),
                effective_ttl(64));
}

void VpAgent::send_ttl_canary(net::Ipv4Addr control_server, std::uint8_t initial_ttl,
                              std::uint32_t token) {
  ByteWriter w(10);
  w.raw("canary");
  w.u32(token);
  sim::send_udp(*net_, vp_.node, vp_.addr, control_server, 30002, kCanaryPort,
                BytesView(w.bytes()), effective_ttl(initial_ttl));
}

void VpAgent::on_datagram(sim::Network& net, sim::NodeId self,
                          const net::Ipv4Datagram& dgram) {
  (void)net;
  (void)self;
  switch (dgram.header.protocol) {
    case net::IpProto::kIcmp:
      handle_icmp(dgram);
      break;
    case net::IpProto::kUdp:
      handle_udp(dgram);
      break;
    case net::IpProto::kTcp:
      handle_tcp(dgram);
      break;
  }
}

void VpAgent::handle_icmp(const net::Ipv4Datagram& dgram) {
  auto icmp = net::IcmpMessage::decode(BytesView(dgram.payload));
  if (!icmp.ok() || icmp.value().type != net::IcmpType::kTimeExceeded) return;
  auto quoted = icmp.value().quoted_datagram();
  if (!quoted.ok()) return;
  const std::uint32_t* seq = ipid_to_seq_.find(quoted.value().header.identification);
  if (seq == nullptr) return;
  if (hooks_.on_hop) hooks_.on_hop(*seq, dgram.header.src, net_->now());
}

void VpAgent::handle_udp(const net::Ipv4Datagram& dgram) {
  auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                      dgram.header.dst);
  if (!udp.ok()) return;
  Bytes opened;
  BytesView dns_bytes;
  if (udp.value().src_port == 53) {
    dns_bytes = BytesView(udp.value().payload);
  } else if (udp.value().src_port == dnssrv::kEncryptedDnsPort ||
             udp.value().src_port == dnssrv::kObliviousPort) {
    auto inner = net::tls_opaque_unwrap(BytesView(udp.value().payload));
    if (!inner.ok()) return;
    opened = std::move(inner).take();
    dns_bytes = BytesView(opened);
  } else {
    return;
  }
  auto dns = net::DnsMessage::decode(dns_bytes);
  if (!dns.ok() || !dns.value().header.qr) return;
  std::uint16_t qid = dns.value().header.id;
  if (const net::Ipv4Addr* pair = pair_probes_.find(qid)) {
    // A response from an address that offers no DNS service: interception.
    net::Ipv4Addr pair_addr = *pair;
    pair_probes_.erase(qid);
    if (hooks_.on_interception) hooks_.on_interception(vp_, pair_addr);
    return;
  }
  const std::uint32_t* seq = qid_to_seq_.find(qid);
  if (seq == nullptr) return;
  resolve_pending(*seq);
  if (hooks_.on_dest_response) hooks_.on_dest_response(*seq, net_->now());
  // Keep the mapping: interceptors may deliver a second (real) response,
  // and Phase II variants reuse response arrival as the path-length signal.
}

void VpAgent::handle_tcp(const net::Ipv4Datagram& dgram) {
  // Raw-probe RSTs: segments addressed to one of our raw source ports are
  // consumed here; everything else belongs to the handshake stack.
  auto seg = net::TcpSegment::decode(BytesView(dgram.payload), dgram.header.src,
                                     dgram.header.dst);
  if (seg.ok()) {
    const std::uint32_t* seq = rawport_to_seq_.find(seg.value().dst_port);
    if (seq != nullptr) {
      if (seg.value().flags.rst && hooks_.on_dest_response) {
        hooks_.on_dest_response(*seq, net_->now());
      }
      return;
    }
  }
  tcp_->on_segment(dgram);
}

void ControlServer::on_datagram(sim::Network& net, sim::NodeId self,
                                const net::Ipv4Datagram& dgram) {
  (void)net;
  (void)self;
  if (dgram.header.protocol != net::IpProto::kUdp) return;
  auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                      dgram.header.dst);
  if (!udp.ok() || udp.value().dst_port != kCanaryPort) return;
  ByteReader r{BytesView(udp.value().payload)};
  if (r.str(6) != "canary") return;
  std::uint32_t token = r.u32();
  if (!r.ok()) return;
  arrivals_[{dgram.header.src, token}] = dgram.header.ttl;
}

int ControlServer::arrival_ttl(net::Ipv4Addr vp, std::uint32_t token) const {
  const std::uint8_t* ttl = arrivals_.find({vp, token});
  return ttl == nullptr ? -1 : static_cast<int>(*ttl);
}

}  // namespace shadowprobe::core
