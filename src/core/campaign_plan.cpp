#include "core/campaign_plan.h"

#include <algorithm>

namespace shadowprobe::core {

namespace {
DestKind dest_kind_of(topo::DnsTargetKind kind) {
  switch (kind) {
    case topo::DnsTargetKind::kPublicResolver:
      return DestKind::kPublicResolver;
    case topo::DnsTargetKind::kSelfBuilt:
      return DestKind::kSelfBuilt;
    case topo::DnsTargetKind::kRoot:
      return DestKind::kRoot;
    case topo::DnsTargetKind::kTld:
      return DestKind::kTld;
  }
  return DestKind::kPublicResolver;
}
}  // namespace

std::uint32_t CampaignPlan::add_path(PathRecord path) {
  path.path_id = static_cast<std::uint32_t>(paths_.size());
  paths_.push_back(std::move(path));
  return paths_.back().path_id;
}

void CampaignPlan::plan_emission(std::uint32_t path_id, SimTime when, std::uint8_t ttl,
                                 bool phase2) {
  PlanEmission emission;
  emission.seq = next_seq_++;
  emission.path_id = path_id;
  emission.vp_index = paths_[path_id].vp_index;
  emission.when = when;
  emission.ttl = ttl;
  emission.phase2 = phase2;
  emissions_.push_back(emission);
}

CampaignPlan CampaignPlan::build_phase1(const topo::Topology& topo,
                                        const CampaignConfig& config,
                                        const std::vector<std::size_t>& active_vps,
                                        SimTime start) {
  CampaignPlan plan;
  const auto& vps = topo.vantage_points();
  int rounds = std::max(1, config.phase1_rounds);
  auto emission_time = [&](int round, std::size_t ordinal, std::size_t total) {
    // Round-robin over VPs, evenly spread across the window: this realizes
    // the paper's strict per-target rate limit (each destination sees the
    // whole VP fleet once per window, far below 2 packets/second).
    if (total == 0) total = 1;
    return start + static_cast<SimDuration>(round) * config.phase1_window +
           static_cast<SimDuration>(
               static_cast<double>(ordinal % total) / static_cast<double>(total) *
               static_cast<double>(config.phase1_window));
  };

  const std::size_t total_dns = active_vps.size() * topo.dns_target_hosts().size();
  const std::size_t total_web = active_vps.size() * topo.web_sites().size();

  if (config.measure_dns) {
    std::size_t ordinal = 0;
    for (std::size_t vp_index : active_vps) {
      const topo::VantagePoint& vp = vps.at(vp_index);
      for (const auto& target : topo.dns_target_hosts()) {
        PathRecord path;
        path.vp_index = static_cast<std::int32_t>(vp_index);
        path.vp = &vp;
        path.dest_kind = dest_kind_of(target.info.kind);
        path.dest_name = target.info.name;
        path.dest_addr = target.addr;
        path.dest_country = target.info.country;
        path.protocol = DecoyProtocol::kDns;
        std::uint32_t path_id = plan.add_path(std::move(path));
        for (int round = 0; round < rounds; ++round) {
          plan.plan_emission(path_id, emission_time(round, ordinal, total_dns), 64, false);
        }
        ++ordinal;
      }
    }
  }

  std::size_t ordinal = 0;
  for (std::size_t vp_index : active_vps) {
    const topo::VantagePoint& vp = vps.at(vp_index);
    for (const auto& site : topo.web_sites()) {
      for (DecoyProtocol protocol : {DecoyProtocol::kHttp, DecoyProtocol::kTls}) {
        if (protocol == DecoyProtocol::kHttp && !config.measure_http) continue;
        if (protocol == DecoyProtocol::kTls && !config.measure_tls) continue;
        PathRecord path;
        path.vp_index = static_cast<std::int32_t>(vp_index);
        path.vp = &vp;
        path.dest_kind = DestKind::kWebSite;
        path.dest_name = site.domain;
        path.dest_addr = site.addr;
        path.dest_country = site.country;
        path.protocol = protocol;
        std::uint32_t path_id = plan.add_path(std::move(path));
        for (int round = 0; round < rounds; ++round) {
          plan.plan_emission(path_id, emission_time(round, ordinal, total_web), 64, false);
        }
      }
      ++ordinal;
    }
  }

  plan.phase1_count_ = plan.emissions_.size();
  return plan;
}

CampaignPlan CampaignPlan::restore(std::vector<PathRecord> paths,
                                   std::vector<PlanEmission> emissions,
                                   std::size_t phase1_count) {
  CampaignPlan plan;
  plan.paths_ = std::move(paths);
  plan.emissions_ = std::move(emissions);
  plan.phase1_count_ = phase1_count;
  for (const PlanEmission& emission : plan.emissions_) {
    plan.next_seq_ = std::max(plan.next_seq_, emission.seq + 1);
  }
  return plan;
}

void CampaignPlan::append_emissions(const std::vector<PlanEmission>& tail) {
  emissions_.reserve(emissions_.size() + tail.size());
  for (const PlanEmission& emission : tail) {
    emissions_.push_back(emission);
    next_seq_ = std::max(next_seq_, emission.seq + 1);
  }
}

std::size_t CampaignPlan::reschedule_quarantined(
    const std::set<std::uint32_t>& cancelled_seqs,
    const std::set<std::size_t>& quarantined_vps,
    const std::vector<std::size_t>& active_vps, SimTime start, SimDuration window) {
  if (cancelled_seqs.empty() || active_vps.empty()) return 0;

  // The emissions to re-home, in plan order (deterministic).
  std::vector<const PlanEmission*> orphans;
  for (const PlanEmission& emission : emissions_) {
    if (cancelled_seqs.count(emission.seq) != 0) orphans.push_back(&emission);
  }
  if (orphans.empty()) return 0;

  // Replacement choice: the next non-quarantined VP after the orphan's owner
  // in active-VP order, wrapping around.
  auto replacement_for = [&](std::size_t vp_index) -> std::optional<std::size_t> {
    auto pos = std::find(active_vps.begin(), active_vps.end(), vp_index);
    std::size_t at = pos == active_vps.end()
                         ? 0
                         : static_cast<std::size_t>(pos - active_vps.begin());
    for (std::size_t step = 1; step <= active_vps.size(); ++step) {
      std::size_t candidate = active_vps[(at + step) % active_vps.size()];
      if (candidate != vp_index && quarantined_vps.count(candidate) == 0) {
        return candidate;
      }
    }
    return std::nullopt;  // every active VP is quarantined
  };

  // The replacement VP already has a path to every (destination, protocol)
  // the orphan targeted; index them for the re-homing lookup.
  std::map<std::tuple<std::int32_t, std::string, int>, std::uint32_t> path_index;
  for (const PathRecord& path : paths_) {
    path_index[{path.vp_index, path.dest_name, static_cast<int>(path.protocol)}] =
        path.path_id;
  }

  std::size_t appended = 0;
  // Snapshot: plan_emission() grows emissions_, which would invalidate the
  // orphan pointers into it.
  std::vector<std::pair<std::uint32_t, SimTime>> replanned;
  replanned.reserve(orphans.size());
  std::size_t ordinal = 0;
  for (const PlanEmission* orphan : orphans) {
    const PathRecord& old_path = paths_.at(orphan->path_id);
    auto replacement = replacement_for(static_cast<std::size_t>(old_path.vp_index));
    SimTime when = start + static_cast<SimDuration>(
                               static_cast<double>(ordinal++) /
                               static_cast<double>(orphans.size()) *
                               static_cast<double>(window));
    if (!replacement) continue;
    auto it = path_index.find({static_cast<std::int32_t>(*replacement),
                               old_path.dest_name, static_cast<int>(old_path.protocol)});
    if (it == path_index.end()) continue;  // replacement never planned this dest
    replanned.emplace_back(it->second, when);
  }
  for (const auto& [path_id, when] : replanned) {
    plan_emission(path_id, when, 64, /*phase2=*/false);
    ++appended;
  }
  return appended;
}

std::size_t CampaignPlan::extend_phase2(const std::set<std::uint32_t>& problematic,
                                        const CampaignConfig& config, SimTime start) {
  std::size_t first = emissions_.size();
  if (problematic.empty()) return first;  // nothing to sweep; avoids the
                                          // pacing division below too
  std::size_t index = 0;
  for (std::uint32_t path_id : problematic) {
    SimTime base = start + static_cast<SimDuration>(
                               static_cast<double>(index++) /
                               static_cast<double>(problematic.size()) *
                               static_cast<double>(config.phase2_window));
    // Consecutive decoys, one per initial TTL, 200 ms apart — each TTL value
    // yields a fresh identifier so the honeypot can attribute unsolicited
    // requests to the exact hop count.
    for (int ttl = 1; ttl <= config.max_sweep_ttl; ++ttl) {
      SimTime when = base + static_cast<SimDuration>(ttl) * 200 * kMillisecond;
      plan_emission(path_id, when, static_cast<std::uint8_t>(ttl), true);
    }
  }
  return first;
}

}  // namespace shadowprobe::core
