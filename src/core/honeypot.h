// Honeypot infrastructure: the sensors of the measurement.
//
// Each honeypot node (US, DE, SG) runs three services on one address:
//   - UDP/53:  authoritative DNS for the experiment zone (every recursive
//              resolution of a decoy domain, and every later unsolicited
//              re-query, is logged here),
//   - TCP/80:  the honey website (logs unsolicited HTTP requests; serves a
//              homepage documenting the experiment, per the ethics section),
//   - TCP/443: a TLS endpoint (logs ClientHello SNI of unsolicited HTTPS).
//
// All hits land in a shared HoneypotLogbook, the single input of the
// correlator.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/decoy.h"
#include "core/types.h"
#include "dnssrv/auth_server.h"
#include "sim/network.h"
#include "sim/tcp_stack.h"

namespace shadowprobe::core {

struct HoneypotHit {
  SimTime time = 0;
  RequestProtocol protocol = RequestProtocol::kDns;
  net::Ipv4Addr origin;         // source address of the request
  net::Ipv4Addr honeypot_addr;  // which honeypot service it hit
  std::string location;         // "US" / "DE" / "SG"
  net::DnsName domain;          // QNAME / Host header / SNI
  std::optional<DecoyId> decoy; // decoded identifier, when the domain is ours
  std::string http_method;      // HTTP only
  std::string http_target;      // HTTP only (path + query)
};

/// Strict total order over honeypot hits that does not depend on shard
/// layout: primarily by capture time, then by every recorded field. Used to
/// canonicalize merged logbooks before classification and export, and by the
/// correlator to restore canonical (time, seq) order when handed a logbook
/// that lost it (criterion (iii) depends on time order within a seq group).
[[nodiscard]] bool hit_canonical_less(const HoneypotHit& a, const HoneypotHit& b);

/// Append-only hit log shared by all honeypot instances.
class HoneypotLogbook {
 public:
  using Observer = std::function<void(const HoneypotHit&)>;

  void add(HoneypotHit hit);
  void add_observer(Observer observer) { observers_.push_back(std::move(observer)); }

  /// Pre-sizes the hit log (callers pass a plan-derived expectation, e.g.
  /// the scheduled emission count — a floor, since shadowed paths hit more
  /// than once).
  void reserve(std::size_t expected_hits) {
    hits_.reserve(hits_.size() + expected_hits);
  }

  [[nodiscard]] const std::vector<HoneypotHit>& hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t size() const noexcept { return hits_.size(); }

 private:
  std::vector<HoneypotHit> hits_;
  std::vector<Observer> observers_;
};

/// Builds the experiment zone served by every honeypot: SOA/NS, and the
/// wildcard "*.www.<zone>" A records (TTL 3600, as in the paper) resolving
/// all decoy domains to the honeypot addresses.
dnssrv::Zone build_experiment_zone(const std::vector<net::Ipv4Addr>& honeypot_addrs);

class HoneypotServer : public sim::DatagramHandler {
 public:
  HoneypotServer(std::string location, HoneypotLogbook& logbook, Rng rng);

  /// Attaches to a node and starts all three services. The zone must list
  /// this (and the sibling) honeypots' addresses; it is shared const so one
  /// zone image can serve every honeypot of every shard.
  void bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr,
            std::shared_ptr<const dnssrv::Zone> zone);
  /// Convenience for tests: wraps a by-value zone.
  void bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr, dnssrv::Zone zone) {
    bind(net, node, addr, std::make_shared<const dnssrv::Zone>(std::move(zone)));
  }

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] const std::string& location() const noexcept { return location_; }
  [[nodiscard]] net::Ipv4Addr addr() const noexcept { return addr_; }

 private:
  Bytes serve_http(const sim::ConnKey& key, BytesView data);
  Bytes serve_tls(const sim::ConnKey& key, BytesView data);

  std::string location_;
  HoneypotLogbook& logbook_;
  Rng rng_;
  dnssrv::AuthoritativeServer auth_;
  std::unique_ptr<sim::TcpStack> tcp_;
  sim::Network* net_ = nullptr;
  net::Ipv4Addr addr_;
};

}  // namespace shadowprobe::core
