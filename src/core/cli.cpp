#include "core/cli.h"

#include <charconv>
#include <cstdlib>

#include "common/log.h"
#include "common/strutil.h"

namespace shadowprobe::core {

namespace {

Error bad(const std::string& what) { return Error(what); }

Result<SchedulerMode> parse_scheduler(const std::string& option,
                                      const std::string& text) {
  if (text == "static") return SchedulerMode::kStatic;
  if (text == "steal") return SchedulerMode::kSteal;
  return bad(option + " expects static|steal, got '" + text + "'");
}

/// Whole-token integer parse; no trailing junk, no silent atoi zeroes.
bool parse_int(const std::string& text, long long& out) {
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

Result<int> positive_int(const std::string& option, const std::string& text) {
  long long value = 0;
  if (!parse_int(text, value)) {
    return bad(option + " expects an integer, got '" + text + "'");
  }
  if (value < 1) {
    return bad(option + " must be >= 1, got " + text);
  }
  if (value > 1'000'000) {
    return bad(option + " is implausibly large: " + text);
  }
  return static_cast<int>(value);
}

/// Like positive_int but admitting 0 (e.g. --worker-retries 0 = degrade on
/// first loss, heartbeat 0 = stall detection off).
Result<int> non_negative_int(const std::string& option, const std::string& text) {
  long long value = 0;
  if (!parse_int(text, value)) {
    return bad(option + " expects an integer, got '" + text + "'");
  }
  if (value < 0) {
    return bad(option + " must be >= 0, got " + text);
  }
  if (value > 1'000'000) {
    return bad(option + " is implausibly large: " + text);
  }
  return static_cast<int>(value);
}

}  // namespace

CliEnvironment CliEnvironment::from_process() {
  CliEnvironment env;
  if (const char* v = std::getenv("SHADOWPROBE_SHARDS")) env.shards = v;
  if (const char* v = std::getenv("SHADOWPROBE_SHARD_PROCS")) env.shard_procs = v;
  if (const char* v = std::getenv("SHADOWPROBE_WORKER_RETRIES")) env.worker_retries = v;
  if (const char* v = std::getenv("SHADOWPROBE_WORKER_HEARTBEAT_MS")) {
    env.worker_heartbeat = v;
  }
  if (const char* v = std::getenv("SHADOWPROBE_WORKER_STALL_MS")) env.worker_stall = v;
  if (const char* v = std::getenv("SHADOWPROBE_SCHEDULER")) env.scheduler = v;
  if (const char* v = std::getenv("SHADOWPROBE_ANALYSIS_WORKERS")) {
    env.analysis_workers = v;
  }
  if (const char* v = std::getenv("SHADOWPROBE_FAULT_PROFILE")) env.fault_profile = v;
  return env;
}

Result<CliOptions> parse_cli_options(const std::vector<std::string>& args,
                                     const CliEnvironment& env) {
  CliOptions options;

  if (!env.shards.empty()) {
    auto shards = positive_int("SHADOWPROBE_SHARDS", env.shards);
    if (!shards.ok()) return shards.error();
    options.shards = shards.value();
  }
  if (!env.shard_procs.empty()) {
    auto procs = positive_int("SHADOWPROBE_SHARD_PROCS", env.shard_procs);
    if (!procs.ok()) return procs.error();
    options.shard_procs = procs.value();
  }
  if (!env.worker_retries.empty()) {
    auto retries = non_negative_int("SHADOWPROBE_WORKER_RETRIES", env.worker_retries);
    if (!retries.ok()) return retries.error();
    options.worker_retries = retries.value();
  }
  if (!env.worker_heartbeat.empty()) {
    auto heartbeat =
        non_negative_int("SHADOWPROBE_WORKER_HEARTBEAT_MS", env.worker_heartbeat);
    if (!heartbeat.ok()) return heartbeat.error();
    options.worker_heartbeat_ms = heartbeat.value();
  }
  if (!env.worker_stall.empty()) {
    auto stall = positive_int("SHADOWPROBE_WORKER_STALL_MS", env.worker_stall);
    if (!stall.ok()) return stall.error();
    options.worker_stall_ms = stall.value();
  }
  if (!env.scheduler.empty()) {
    auto scheduler = parse_scheduler("SHADOWPROBE_SCHEDULER", env.scheduler);
    if (!scheduler.ok()) return scheduler.error();
    options.scheduler = scheduler.value();
  }
  if (!env.analysis_workers.empty()) {
    auto workers = positive_int("SHADOWPROBE_ANALYSIS_WORKERS", env.analysis_workers);
    if (!workers.ok()) return workers.error();
    options.analysis_workers = workers.value();
  }
  if (!env.fault_profile.empty()) {
    auto profile = sim::FaultProfile::parse(env.fault_profile);
    if (!profile.ok()) {
      return bad("SHADOWPROBE_FAULT_PROFILE: " + profile.error().message);
    }
    options.faults = profile.value();
  }

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const std::string* & out) -> bool {
      if (i + 1 >= args.size()) return false;
      out = &args[++i];
      return true;
    };
    const std::string* v = nullptr;
    if (arg == "--scale") {
      if (!next(v)) return bad("--scale expects a value");
      double scale = 0.0;
      if (!parse_double(*v, scale) || scale <= 0.0) {
        return bad("--scale expects a positive number, got '" + *v + "'");
      }
      options.scale = scale;
    } else if (arg == "--seed") {
      if (!next(v)) return bad("--seed expects a value");
      long long seed = 0;
      if (!parse_int(*v, seed) || seed < 0) {
        return bad("--seed expects a non-negative integer, got '" + *v + "'");
      }
      options.seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--days") {
      if (!next(v)) return bad("--days expects a value");
      auto days = positive_int("--days", *v);
      if (!days.ok()) return days.error();
      options.days = days.value();
    } else if (arg == "--shards") {
      if (!next(v)) return bad("--shards expects a value");
      auto shards = positive_int("--shards", *v);
      if (!shards.ok()) return shards.error();
      options.shards = shards.value();
    } else if (arg == "--shard-procs") {
      if (!next(v)) return bad("--shard-procs expects a value");
      auto procs = positive_int("--shard-procs", *v);
      if (!procs.ok()) return procs.error();
      options.shard_procs = procs.value();
    } else if (arg == "--worker-retries") {
      if (!next(v)) return bad("--worker-retries expects a value");
      auto retries = non_negative_int("--worker-retries", *v);
      if (!retries.ok()) return retries.error();
      options.worker_retries = retries.value();
    } else if (arg == "--scheduler") {
      if (!next(v)) return bad("--scheduler expects static|steal");
      auto scheduler = parse_scheduler("--scheduler", *v);
      if (!scheduler.ok()) return scheduler.error();
      options.scheduler = scheduler.value();
    } else if (arg == "--analysis-workers") {
      if (!next(v)) return bad("--analysis-workers expects a value");
      auto workers = positive_int("--analysis-workers", *v);
      if (!workers.ok()) return workers.error();
      options.analysis_workers = workers.value();
    } else if (arg == "--fault-profile") {
      if (!next(v)) return bad("--fault-profile expects a spec");
      auto profile = sim::FaultProfile::parse(*v);
      if (!profile.ok()) return bad("--fault-profile: " + profile.error().message);
      options.faults = profile.value();
    } else if (arg == "--transport") {
      if (!next(v)) return bad("--transport expects plain|dot|odoh");
      if (*v == "plain") {
        options.transport = DnsDecoyTransport::kPlain;
      } else if (*v == "dot") {
        options.transport = DnsDecoyTransport::kEncrypted;
      } else if (*v == "odoh") {
        options.transport = DnsDecoyTransport::kOblivious;
      } else {
        return bad("--transport expects plain|dot|odoh, got '" + *v + "'");
      }
    } else if (arg == "--ech") {
      options.ech = true;
    } else if (arg == "--no-screening") {
      options.screening = false;
    } else if (arg == "--report") {
      if (!next(v)) return bad("--report expects a value");
      if (*v != "all" && *v != "fig3" && *v != "table2" && *v != "table3" &&
          *v != "retention") {
        return bad("--report expects all|fig3|table2|table3|retention, got '" + *v + "'");
      }
      options.report = *v;
    } else if (arg == "--json") {
      if (!next(v)) return bad("--json expects a file path");
      options.json_path = *v;
    } else if (arg == "--trace") {
      if (!next(v)) return bad("--trace expects a value");
      auto trace = positive_int("--trace", *v);
      if (!trace.ok()) return trace.error();
      options.trace = trace.value();
    } else {
      return bad("unknown option: " + arg);
    }
  }

  // A fault profile runs on the engine (the serial Campaign has no fault
  // layer); an unsharded invocation gets a single-shard engine. Worker
  // processes likewise imply the engine.
  if (options.faults.enabled() && options.shards == 0) options.shards = 1;
  if (options.shard_procs >= 1 && options.shards == 0) options.shards = 1;
  // More workers than shards would leave the surplus idle at best (and shard
  // ownership assumes proc_count <= shard_count); clamp like the engine
  // clamps an oversized shard count.
  if (options.shard_procs > options.shards) {
    SP_LOG_WARN(strprintf("requested %d worker processes for %d shards, clamped to %d",
                          options.shard_procs, options.shards, options.shards));
    options.shard_procs = options.shards;
  }
  return options;
}

}  // namespace shadowprobe::core
