// Shared vocabulary of the measurement pipeline.
#pragma once

#include <string>

#include "net/dns.h"

namespace shadowprobe::core {

/// Protocol a decoy is sent over (the "Decoy" half of the paper's
/// Decoy-Request labels).
enum class DecoyProtocol : std::uint8_t { kDns = 0, kHttp = 1, kTls = 2 };

/// Protocol an incoming honeypot request arrives over (the "Request" half).
/// HTTPS is TLS-to-port-443 on the honeypot, matching the paper's labels.
enum class RequestProtocol : std::uint8_t { kDns = 0, kHttp = 1, kHttps = 2 };

std::string decoy_protocol_name(DecoyProtocol p);
std::string request_protocol_name(RequestProtocol p);

/// "DNS-HTTP"-style combination label.
std::string combo_label(DecoyProtocol decoy, RequestProtocol request);

/// The experiment zone registered exclusively for the campaign. Decoy
/// domains are "<identifier>.www.<zone>"; a wildcard resolves them to the
/// honeypots.
const net::DnsName& experiment_zone();
/// "www.<zone>" — the suffix every decoy domain hangs under.
const net::DnsName& experiment_suffix();

}  // namespace shadowprobe::core
