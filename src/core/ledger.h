// Decoy ledger: the campaign's ground record of what was sent where.
//
// Every decoy emission (Phase I and every Phase II TTL variant) gets a
// ledger entry keyed by its sequence number — the number embedded in the
// decoy identifier — so any honeypot hit whose identifier decodes is
// attributable to the exact emission. The ledger also maintains the path
// table: one row per (VP, destination) pair, the unit over which Figure 3's
// "ratio of problematic paths" is computed.
//
// Sharded campaigns (CampaignEngine) give every shard its own ledger and
// merge them afterwards. Two id regimes coexist:
//   - *preassigned* ids, computed once by the CampaignPlan and identical for
//     every shard layout — this is what keeps decoy domains (which embed the
//     seq) byte-identical across shard counts;
//   - *auto-allocated* ids, which carry the shard index in their high bits
//     (set_shard) so independently-allocating shards can never collide; any
//     residual collision at merge time is remapped to a fresh id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/time.h"
#include "core/decoy.h"
#include "topo/topology.h"

namespace shadowprobe::core {

/// What kind of destination a path points at.
enum class DestKind { kPublicResolver, kSelfBuilt, kRoot, kTld, kWebSite };

struct PathRecord {
  std::uint32_t path_id = 0;
  /// Index of the VP in its topology's vantage_points() — the stable,
  /// replica-independent identity used when ledgers cross shard boundaries.
  std::int32_t vp_index = -1;
  const topo::VantagePoint* vp = nullptr;
  DestKind dest_kind = DestKind::kPublicResolver;
  std::string dest_name;     // resolver name or site domain
  net::Ipv4Addr dest_addr;
  std::string dest_country;  // operator/hosting country of the destination
  DecoyProtocol protocol = DecoyProtocol::kDns;

  /// Same measurement path (ignores path_id and the replica-local pointer).
  [[nodiscard]] bool same_path(const PathRecord& other) const noexcept {
    return vp_index == other.vp_index && dest_addr == other.dest_addr &&
           dest_name == other.dest_name && protocol == other.protocol &&
           dest_kind == other.dest_kind;
  }
};

struct DecoyRecord {
  DecoyId id;                // id.seq is the ledger key
  net::DnsName domain;
  SimTime sent = 0;
  std::uint32_t path_id = 0;
  bool phase2 = false;       // TTL-sweep variant
  // Filled in as responses arrive at the VP:
  bool dest_responded = false;
  SimTime response_time = 0;
};

class DecoyLedger {
 public:
  /// Auto-allocated path/seq ids reserve their high bits for (shard index
  /// + 1); preassigned plan ids live in the untagged low range.
  static constexpr std::uint32_t kShardBits = 6;
  static constexpr std::uint32_t kShardShift = 32 - kShardBits;
  static constexpr std::uint32_t kLocalIdMask = (1u << kShardShift) - 1;
  static constexpr std::uint32_t kMaxShards = (1u << kShardBits) - 1;

  struct MergeStats {
    std::size_t merged_paths = 0;
    std::size_t merged_decoys = 0;
    std::size_t remapped_paths = 0;
    std::size_t remapped_seqs = 0;
  };

  /// Tags every subsequently auto-allocated path/seq id with the shard
  /// index (stored as shard+1 in the high bits, so shard 0 is distinct from
  /// the untagged preassigned range).
  void set_shard(std::uint32_t shard_index);

  /// Registers a path; allocates the id.
  std::uint32_t add_path(PathRecord path);
  /// Installs a plan-built path table whose path_ids are already assigned.
  void seed_paths(const std::vector<PathRecord>& paths);

  /// Pre-sizes the decoy store and its seq index for a plan-known number of
  /// upcoming emissions (avoids regrowth while records are being appended).
  void reserve_decoys(std::size_t additional) {
    decoys_.reserve(decoys_.size() + additional);
    seq_index_.reserve(decoys_.size() + additional);
  }

  /// Creates a decoy record; allocates the sequence number and builds the
  /// identifier/domain. The returned reference is stable until the next add.
  DecoyRecord& create(std::uint32_t path_id, SimTime now, net::Ipv4Addr vp_addr,
                      net::Ipv4Addr dst_addr, DecoyProtocol protocol, std::uint8_t ttl,
                      bool phase2);
  /// Creates a decoy record under a plan-preassigned sequence number (the
  /// shard-count-invariant id regime).
  DecoyRecord& create_preassigned(std::uint32_t seq, std::uint32_t path_id, SimTime now,
                                  net::Ipv4Addr vp_addr, net::Ipv4Addr dst_addr,
                                  DecoyProtocol protocol, std::uint8_t ttl, bool phase2);
  /// Appends a fully-formed record verbatim — nothing (domain included) is
  /// re-derived, so a wire-decoded ledger reproduces its source exactly.
  /// Returns false (appending nothing) if the record's seq is already
  /// present.
  bool restore_decoy(const DecoyRecord& record);

  [[nodiscard]] DecoyRecord* by_seq(std::uint32_t seq);
  [[nodiscard]] const DecoyRecord* by_seq(std::uint32_t seq) const;
  [[nodiscard]] const PathRecord& path(std::uint32_t path_id) const;
  [[nodiscard]] const std::vector<PathRecord>& paths() const noexcept { return paths_; }
  [[nodiscard]] const std::vector<DecoyRecord>& decoys() const noexcept { return decoys_; }
  [[nodiscard]] std::size_t decoy_count() const noexcept { return decoys_.size(); }

  void mark_response(std::uint32_t seq, SimTime when);

  /// Merges `other` into this ledger. Paths that describe the same
  /// measurement path (same_path) are deduplicated; a path or decoy whose id
  /// collides with a *different* entry already present is remapped to the
  /// smallest free id (deterministic in merge order). Remapped decoys keep
  /// their as-emitted domain — the label already left the wire — so remaps
  /// are only expected for foreign ledgers, never for plan-preassigned ids.
  MergeStats merge(const DecoyLedger& other);

  /// Re-points every path's vp pointer into `vps` via vp_index (after a
  /// merge across testbed replicas whose pointers are meaningless here).
  void rebind_vps(const std::vector<topo::VantagePoint>& vps);

  /// Canonical order: paths ascending by path_id, decoys ascending by seq.
  /// Run after the final merge so iteration order is shard-count-invariant.
  void finalize();

 private:
  std::uint32_t alloc_path_id();
  std::uint32_t alloc_seq();
  DecoyRecord& insert_decoy(std::uint32_t seq, std::uint32_t path_id, SimTime now,
                            net::Ipv4Addr vp_addr, net::Ipv4Addr dst_addr,
                            DecoyProtocol protocol, std::uint8_t ttl, bool phase2);

  std::vector<PathRecord> paths_;
  std::vector<DecoyRecord> decoys_;
  // Pure key-lookup indexes (never iterated — canonical order lives in the
  // sorted vectors): open-addressing maps, probed once per response packet.
  FlatMap<std::uint32_t, std::size_t> path_index_;  // path_id -> index in paths_
  FlatMap<std::uint32_t, std::size_t> seq_index_;   // seq -> index in decoys_
  std::uint32_t shard_tag_ = 0;  // (shard+1) << kShardShift, or 0 untagged
  std::uint32_t next_local_path_ = 0;
  std::uint32_t next_local_seq_ = 0;
};

}  // namespace shadowprobe::core
