// Decoy ledger: the campaign's ground record of what was sent where.
//
// Every decoy emission (Phase I and every Phase II TTL variant) gets a
// ledger entry keyed by its sequence number — the number embedded in the
// decoy identifier — so any honeypot hit whose identifier decodes is
// attributable to the exact emission. The ledger also maintains the path
// table: one row per (VP, destination) pair, the unit over which Figure 3's
// "ratio of problematic paths" is computed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/decoy.h"
#include "topo/topology.h"

namespace shadowprobe::core {

/// What kind of destination a path points at.
enum class DestKind { kPublicResolver, kSelfBuilt, kRoot, kTld, kWebSite };

struct PathRecord {
  std::uint32_t path_id = 0;
  const topo::VantagePoint* vp = nullptr;
  DestKind dest_kind = DestKind::kPublicResolver;
  std::string dest_name;     // resolver name or site domain
  net::Ipv4Addr dest_addr;
  std::string dest_country;  // operator/hosting country of the destination
  DecoyProtocol protocol = DecoyProtocol::kDns;
};

struct DecoyRecord {
  DecoyId id;                // id.seq is the ledger key
  net::DnsName domain;
  SimTime sent = 0;
  std::uint32_t path_id = 0;
  bool phase2 = false;       // TTL-sweep variant
  // Filled in as responses arrive at the VP:
  bool dest_responded = false;
  SimTime response_time = 0;
};

class DecoyLedger {
 public:
  /// Registers a path; returns its id (idempotent per (vp,dest,protocol)).
  std::uint32_t add_path(PathRecord path);

  /// Creates a decoy record; allocates the sequence number and builds the
  /// identifier/domain. The returned record is stable until the next add.
  DecoyRecord& create(std::uint32_t path_id, SimTime now, net::Ipv4Addr vp_addr,
                      net::Ipv4Addr dst_addr, DecoyProtocol protocol, std::uint8_t ttl,
                      bool phase2);

  [[nodiscard]] DecoyRecord* by_seq(std::uint32_t seq);
  [[nodiscard]] const DecoyRecord* by_seq(std::uint32_t seq) const;
  [[nodiscard]] const PathRecord& path(std::uint32_t path_id) const {
    return paths_.at(path_id);
  }
  [[nodiscard]] const std::vector<PathRecord>& paths() const noexcept { return paths_; }
  [[nodiscard]] const std::vector<DecoyRecord>& decoys() const noexcept { return decoys_; }
  [[nodiscard]] std::size_t decoy_count() const noexcept { return decoys_.size(); }

  void mark_response(std::uint32_t seq, SimTime when);

 private:
  std::vector<PathRecord> paths_;
  std::vector<DecoyRecord> decoys_;  // index == seq
};

}  // namespace shadowprobe::core
