// JSON export of campaign results, for downstream analysis/plotting.
//
// A dependency-free streaming JSON writer plus one function that serializes
// everything the analyzers produce: the platform summary, path-ratio table,
// observer locations and ASes, temporal quantiles, outcome breakdowns,
// retention and incentive statistics.
#pragma once

#include <string>
#include <vector>

#include "core/analysis.h"

namespace shadowprobe::core {

/// Minimal streaming JSON writer with correct escaping and comma placement.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(std::uint64_t number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  /// True when every container has been closed.
  [[nodiscard]] bool complete() const noexcept { return depth_ == 0 && !out_.empty(); }

 private:
  void separator();
  void escape_into(std::string_view text);

  std::string out_;
  std::vector<bool> needs_comma_;  // per open container
  int depth_ = 0;
  bool pending_key_ = false;
};

/// Serializes the full analysis of a completed campaign. `bed` provides the
/// substrate context (config, geo database, signatures, blocklist); for a
/// sharded run pass CampaignEngine::primary(). For a fixed master seed the
/// output is byte-identical for any shard count and any analysis worker
/// count. `analysis` must come from analyze_campaign() over `result`.
std::string export_campaign_json(Testbed& bed, const CampaignResult& result,
                                 const CampaignAnalysis& analysis);

/// Computes the analysis bundle internally with `workers` scan threads.
std::string export_campaign_json(Testbed& bed, const CampaignResult& result,
                                 int workers = 1);

/// Convenience overload for the serial campaign.
std::string export_campaign_json(Testbed& bed, const Campaign& campaign);

}  // namespace shadowprobe::core
