// VP scheduling for sharded campaign phases: deals and work-stealing queues.
//
// A *deal* maps every VP index to the shard whose deque it starts in. The
// static scheduler executes the deal verbatim; the stealing scheduler treats
// it only as the initial distribution — idle shards claim whole VPs from the
// most loaded deque once their own drains, so ragged phases finish together.
//
// Stealing is safe because VP->shard placement is layout-free: identifiers
// and seqs are plan-preassigned (core/campaign_plan.h) and behavioural RNG
// draws are entity-keyed (Rng::derive), so which shard replays a VP's event
// cone cannot change campaign output. Shadow ships the same policy for
// simulated hosts (shd-scheduler-policy-host-steal); here the unit of theft
// is a whole VP so all of a VP's per-phase work stays on one replica.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/time.h"
#include "core/campaign_config.h"
#include "core/campaign_plan.h"

namespace shadowprobe::core {

/// Sentinel executor value for VPs no shard ever claimed (no work).
inline constexpr std::uint32_t kVpUnassigned = UINT32_MAX;

/// Fault-layer state a VP's Phase-I executor hands to its Phase-II executor
/// when stealing moves the VP between shards (or worker processes). Exported
/// at the Phase-II barrier — which sits *after* the phase2_grace window, by
/// which time every Phase-I decoy's retry deadline has resolved, so the
/// streak/quarantine values are final for Phase I. Without the carry, a VP
/// quarantined on its Phase-I shard would emit again from a fresh Phase-II
/// shard and the output would diverge from the static schedule.
struct VpCarry {
  std::uint32_t vp_index = 0;
  std::int32_t failure_streak = 0;
  bool quarantined = false;
  SimTime quarantined_at = 0;
};

/// vp_index -> initial shard, round-robin (the pre-stealing static deal).
[[nodiscard]] std::vector<std::uint32_t> round_robin_deal(std::size_t vp_count,
                                                          std::uint32_t shard_count);

/// vp_index -> shard balanced by per-VP weight: longest-processing-time
/// greedy (heaviest VP first onto the lightest shard; ties break toward the
/// lower VP / shard index, so the deal is a pure function of the weights).
/// Zero-weight VPs land round-robin. Used by the multi-process backend,
/// where stealing cannot cross a worker-process boundary and the
/// cross-process balance must come from the deal itself.
[[nodiscard]] std::vector<std::uint32_t> balanced_deal(
    const std::vector<std::uint64_t>& weights, std::uint32_t shard_count);

/// Plan emissions [first, last) bucketed per VP: bucket[vp] holds ascending
/// emission indices. `vp_count` may underestimate; the result grows to the
/// largest vp_index seen.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> bucket_emissions_by_vp(
    const CampaignPlan& plan, std::size_t first, std::size_t last,
    std::size_t vp_count);

/// Per-VP weights for balanced_deal: the bucket sizes (one pending emission
/// is one unit of scheduled work).
[[nodiscard]] std::vector<std::uint64_t> bucket_weights(
    const std::vector<std::vector<std::uint32_t>>& buckets);

/// One phase's VP work queue: a deque per shard, seeded from a deal.
/// claim() pops the caller's own deque front; an empty deque turns the call
/// into a steal from the back of the heaviest remaining deque (Shadow's
/// host-steal discipline: owner takes the front, thieves take the tail).
/// All claims are serialized by one mutex — claims are per-VP, orders of
/// magnitude rarer than the events a claimed VP generates, so the lock is
/// never contended enough to matter.
class VpWorkQueue {
 public:
  struct StealCounters {
    std::uint64_t attempted = 0;  ///< claims that found the own deque empty
    std::uint64_t completed = 0;  ///< claims actually served from a victim
  };

  /// `deal[vp]` seeds the deques; only VPs with `include[vp]` true are
  /// enqueued (pass {} to enqueue every VP). `weights` orders victims by
  /// remaining load (pass {} for uniform weights). `allow_steal` false makes
  /// claim() strictly own-deque (the static scheduler expressed as a queue).
  VpWorkQueue(const std::vector<std::uint32_t>& deal, std::uint32_t shard_count,
              const std::vector<std::uint64_t>& weights,
              const std::vector<bool>& include, bool allow_steal);

  /// Claims the next VP for `shard`; -1 when no work is left (for the static
  /// queue: no *owned* work). Records the executor.
  [[nodiscard]] int claim(std::uint32_t shard);

  /// vp -> executing shard (kVpUnassigned where never claimed). Stable once
  /// every worker has drained the queue.
  [[nodiscard]] const std::vector<std::uint32_t>& executors() const noexcept {
    return executor_;
  }
  [[nodiscard]] StealCounters counters(std::uint32_t shard) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::deque<std::uint32_t>> deques_;   // per shard
  std::vector<std::uint64_t> remaining_;            // per shard, sum of weights
  std::vector<std::uint64_t> weights_;              // per vp
  std::vector<std::uint32_t> executor_;             // per vp
  std::vector<StealCounters> counters_;             // per shard
  bool allow_steal_;
};

}  // namespace shadowprobe::core
