// Shard worker: the child-process half of the multi-process campaign.
//
// `shadowprobe_cli --shard-worker` calls run_shard_worker with its
// stdin/stdout, which the controller (MultiProcessBackend) has connected to
// a socketpair. The worker receives an Init message naming the shard layout
// and both configs, builds its own World + ShardRunners for the shards it
// owns, and then executes phase commands — screening, Phase I to the
// barrier, Phase II to the horizon — returning per-shard results as framed
// wire messages. A clean EOF after the final results is the shutdown
// signal. While a phase computes, a pulse thread emits kHeartbeat frames at
// the interval the Init message requested so the controller's supervisor
// can tell "busy" from "wedged".
//
// Determinism: the worker never re-derives any plan state. Paths, seqs, the
// barrier time, and the Phase-II extension all arrive from the controller,
// so a worker shard computes bit-for-bit the same results as the same shard
// run on an in-process thread.
#pragma once

#include <memory>

#include "core/shard_runner.h"

namespace shadowprobe::core {

class World;

/// Knobs for run_shard_worker beyond the wire protocol itself.
struct ShardWorkerOptions {
  /// When true (real child processes), the SHADOWPROBE_TEST_WORKER_FAULT
  /// harness is honoured. The controller's in-process degradation fallback
  /// disables it — a degraded "worker" must never re-trigger the fault that
  /// exhausted the respawn budget.
  bool enable_test_faults = true;
  /// Respawn generation of this worker process (0 = original spawn). The
  /// fault harness uses it to target either only the first incarnation
  /// (default) or every incarnation (`:*`, driving degradation tests).
  int spawn_gen = 0;
  /// When set, runners instantiate against this prebuilt World instead of
  /// building their own (the degradation fallback reuses the controller's).
  std::shared_ptr<const World> world;
};

/// Runs the worker protocol over the given descriptors until EOF or a
/// protocol error. Returns a process exit status: 0 on orderly shutdown,
/// 1 on any protocol/decode failure (logged to stderr). `decorate` must be
/// the same decorator the controller's campaign uses — it replays the
/// ground-truth deployment against this process's World.
int run_shard_worker(int in_fd, int out_fd, const ShardRunner::Decorator& decorate,
                     const ShardWorkerOptions& options = {});

}  // namespace shadowprobe::core
