#include "core/campaign_engine.h"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/log.h"
#include "common/strutil.h"

namespace shadowprobe::core {

CampaignEngine::CampaignEngine(const TestbedConfig& bed_config, const CampaignConfig& config,
                               int shard_count, Decorator decorate, SubstrateMode mode)
    : config_(config), requested_shards_(shard_count) {
  if (mode == SubstrateMode::kSharedWorld) {
    world_ = World::build(bed_config, decorate);
  }
  build_runners(bed_config, shard_count, decorate);
}

CampaignEngine::CampaignEngine(std::shared_ptr<const World> world,
                               const CampaignConfig& config, int shard_count,
                               Decorator decorate)
    : config_(config), requested_shards_(shard_count), world_(std::move(world)) {
  build_runners(world_->config(), shard_count, decorate);
}

void CampaignEngine::build_runners(const TestbedConfig& bed_config, int shard_count,
                                   const Decorator& decorate) {
  int count = std::clamp(shard_count, 1, static_cast<int>(DecoyLedger::kMaxShards));
  if (count != shard_count) {
    SP_LOG_WARN(strprintf("requested %d shards, clamped to %d (valid range 1..%d)",
                          shard_count, count,
                          static_cast<int>(DecoyLedger::kMaxShards)));
  }
  auto make_runner = [&](int i) {
    if (world_ != nullptr) {
      return std::make_unique<ShardRunner>(static_cast<std::uint32_t>(i),
                                           static_cast<std::uint32_t>(count), world_,
                                           config_, decorate);
    }
    return std::make_unique<ShardRunner>(static_cast<std::uint32_t>(i),
                                         static_cast<std::uint32_t>(count), bed_config,
                                         config_, decorate);
  };
  runners_.resize(static_cast<std::size_t>(count));
  if (count == 1) {
    runners_[0] = make_runner(0);
    return;
  }
  // Shards are independent — frozen instances only read the shared World —
  // so build them concurrently (slot-assigned, keeping the vector order and
  // everything keyed off shard index deterministic).
  std::vector<std::thread> builders;
  std::vector<std::exception_ptr> errors(runners_.size());
  builders.reserve(runners_.size());
  for (int i = 0; i < count; ++i) {
    builders.emplace_back([&, i] {
      try {
        runners_[static_cast<std::size_t>(i)] = make_runner(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    });
  }
  for (std::thread& builder : builders) builder.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

CampaignEngine::~CampaignEngine() = default;

void CampaignEngine::for_each_shard(const std::function<void(ShardRunner&)>& fn) {
  if (runners_.size() == 1) {
    fn(*runners_.front());
    return;
  }
  std::vector<std::thread> workers;
  std::vector<std::exception_ptr> errors(runners_.size());
  workers.reserve(runners_.size());
  for (std::size_t i = 0; i < runners_.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        fn(*runners_[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

DecoyLedger CampaignEngine::merged_ledger() const {
  DecoyLedger merged;
  merged.seed_paths(plan_.paths());
  for (const auto& runner : runners_) merged.merge(runner->ledger());
  merged.finalize();
  merged.rebind_vps(runners_.front()->testbed().topology().vantage_points());
  return merged;
}

std::vector<HoneypotHit> CampaignEngine::merged_hits() const {
  std::vector<HoneypotHit> hits;
  for (const auto& runner : runners_) {
    const auto& shard_hits = runner->hits();
    hits.insert(hits.end(), shard_hits.begin(), shard_hits.end());
  }
  // Canonical order: within a shard hits are already time-ordered, and any
  // decoy domain only ever appears inside one shard, so the sort never
  // reorders the per-domain sequences the correlator's criteria depend on.
  std::stable_sort(hits.begin(), hits.end(), hit_canonical_less);
  return hits;
}

FlatSet<std::uint32_t> CampaignEngine::merged_replicated() const {
  // Membership-only downstream (the correlator's replication exclusion), so
  // the union can stay an unordered flat set.
  FlatSet<std::uint32_t> merged;
  for (const auto& runner : runners_) {
    runner->replicated_seqs().for_each([&merged](std::uint32_t seq) { merged.insert(seq); });
  }
  return merged;
}

CampaignResult CampaignEngine::run() {
  const auto& vps = primary().topology().vantage_points();
  ScreeningReport report;
  std::vector<std::size_t> active;

  if (config_.screening) {
    for_each_shard([](ShardRunner& shard) { shard.run_screening(); });
    report.candidates = static_cast<int>(vps.size());
    // Verdicts are merged in global topology order — the order the serial
    // campaign iterates — each read from the shard that owns the VP.
    for (std::size_t i = 0; i < vps.size(); ++i) {
      ShardRunner& owner = *runners_[i % runners_.size()];
      switch (owner.verdict(i)) {
        case ScreeningVerdict::kResidential:
          ++report.rejected_residential;
          break;
        case ScreeningVerdict::kTtlMangling:
          ++report.rejected_ttl_mangling;
          break;
        case ScreeningVerdict::kIntercepted:
          ++report.rejected_interception;
          break;
        case ScreeningVerdict::kUsable:
          active.push_back(i);
          break;
      }
    }
    report.usable = static_cast<int>(active.size());
    SP_LOG_INFO(strprintf("engine screening: %d candidates, %d usable across %zu shards",
                          report.candidates, report.usable, runners_.size()));
  } else {
    for (std::size_t i = 0; i < vps.size(); ++i) active.push_back(i);
    report.candidates = report.usable = static_cast<int>(vps.size());
  }

  // Phase I: plan once, execute the owned partitions in parallel.
  SimTime start = runners_.front()->testbed().loop().now();
  plan_ = CampaignPlan::build_phase1(primary().topology(), config_, active, start);
  for (auto& runner : runners_) {
    runner->adopt_plan(plan_);
    runner->schedule_owned(plan_, 0, plan_.phase1_count());
  }
  SimTime barrier = config_.phase1_window + config_.phase2_grace;
  for_each_shard([barrier](ShardRunner& shard) { shard.run_until(barrier); });

  // Phase-II barrier: merge what the honeypots have so far, classify, and
  // extend the plan — first re-homing the decoys quarantined VPs never sent,
  // then the TTL sweeps (seqs continue the global counter).
  std::size_t rescheduled = 0;
  std::set<std::size_t> quarantined;
  {
    std::size_t schedule_from = plan_.emissions().size();
    if (config_.faults.enabled()) {
      // Each owner shard recorded exactly which of its emissions were
      // skipped; the union is the re-plan work list.
      std::set<std::uint32_t> cancelled;
      for (const auto& runner : runners_) {
        runner->quarantined_vps().for_each(
            [&quarantined](std::size_t vp_index, SimTime) { quarantined.insert(vp_index); });
        runner->cancelled_seqs().for_each(
            [&cancelled](std::uint32_t seq) { cancelled.insert(seq); });
      }
      rescheduled = plan_.reschedule_quarantined(cancelled, quarantined, active, barrier,
                                                 config_.phase2_window);
      if (!quarantined.empty()) {
        SP_LOG_INFO(strprintf("engine barrier: %zu VPs quarantined, %zu decoys "
                              "re-homed onto replacement VPs",
                              quarantined.size(), rescheduled));
      }
    }
    DecoyLedger interim = merged_ledger();
    std::vector<HoneypotHit> hits = merged_hits();
    FlatSet<std::uint32_t> replicated = merged_replicated();
    auto so_far = classify_unsolicited(interim, hits, &replicated,
                                       config_.analysis_workers);
    auto problematic = Correlator::problematic_paths(so_far);
    if (!quarantined.empty()) {
      // A quarantined VP cannot run its sweep; drop its paths rather than
      // plan emissions that would only be cancelled again.
      for (auto it = problematic.begin(); it != problematic.end();) {
        std::int32_t vp_index = plan_.path(*it).vp_index;
        if (vp_index >= 0 && quarantined.count(static_cast<std::size_t>(vp_index)) != 0) {
          it = problematic.erase(it);
        } else {
          ++it;
        }
      }
    }
    SP_LOG_INFO(strprintf("engine phase II: sweeping %zu problematic paths",
                          problematic.size()));
    plan_.extend_phase2(problematic, config_, barrier);
    // schedule_from also covers the re-homed Phase-I emissions; with the
    // null profile it equals extend_phase2's first index exactly.
    for (auto& runner : runners_) {
      runner->schedule_owned(plan_, schedule_from, plan_.emissions().size());
    }
  }
  for_each_shard(
      [this](ShardRunner& shard) { shard.run_until(config_.total_duration); });

  // Final merge.
  CampaignResult out;
  out.config = config_;
  out.screening = report;
  out.ledger = merged_ledger();
  out.hits = merged_hits();
  out.replicated_seqs = merged_replicated();
  out.shard_stats.requested_shards = requested_shards_;
  out.shard_stats.effective_shards = static_cast<int>(runners_.size());
  out.shard_stats.clamped = requested_shards_ != static_cast<int>(runners_.size());
  for (const auto& runner : runners_) {
    // Each seq is owned by exactly one shard, so folding the shards' flat
    // hop tables into the ordered result map is order-insensitive.
    runner->hop_log().for_each([&out](std::uint32_t seq, net::Ipv4Addr hop) {
      out.hop_log.emplace(seq, hop);
    });
    out.shard_stats.per_shard.push_back(runner->stats());
    out.shard_stats.per_shard_net.push_back(runner->net_counters());
  }
  if (config_.faults.enabled()) {
    CoverageStats cov;
    cov.phase1_planned = plan_.phase1_count();
    for (const DecoyRecord& record : out.ledger.decoys()) {
      if (record.phase2) continue;
      ++cov.decoys_attempted;
      if (record.dest_responded) ++cov.decoys_delivered;
    }
    for (const auto& runner : runners_) cov.absorb(runner->coverage());
    cov.decoys_rescheduled = rescheduled;
    out.coverage = cov;
  }
  out.active_vps.reserve(active.size());
  for (std::size_t i : active) out.active_vps.push_back(&vps[i]);
  out.correlate(config_.analysis_workers);
  SP_LOG_INFO(strprintf("engine complete: %zu shards, %zu decoys, %zu hits, "
                        "%zu unsolicited, %zu located paths",
                        runners_.size(), out.ledger.decoy_count(), out.hits.size(),
                        out.unsolicited.size(), out.findings.size()));
  if (runners_.size() > 1) {
    SP_LOG_INFO(strprintf("engine balance: event imbalance %.3f (max/mean over %zu "
                          "shard loops)",
                          out.shard_stats.event_imbalance(), runners_.size()));
  }
  return out;
}

}  // namespace shadowprobe::core
