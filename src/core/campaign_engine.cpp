#include "core/campaign_engine.h"

#include <algorithm>
#include <set>

#include "common/log.h"
#include "common/strutil.h"

namespace shadowprobe::core {

namespace {

int clamp_shards(int shard_count) {
  int count = std::clamp(shard_count, 1, static_cast<int>(DecoyLedger::kMaxShards));
  if (count != shard_count) {
    SP_LOG_WARN(strprintf("requested %d shards, clamped to %d (valid range 1..%d)",
                          shard_count, count,
                          static_cast<int>(DecoyLedger::kMaxShards)));
  }
  return count;
}

template <typename Shard>
std::vector<const DecoyLedger*> ledgers_of(const std::vector<Shard>& shards) {
  std::vector<const DecoyLedger*> out;
  out.reserve(shards.size());
  for (const Shard& shard : shards) out.push_back(shard.ledger);
  return out;
}

template <typename Shard>
std::vector<const std::vector<HoneypotHit>*> hits_of(const std::vector<Shard>& shards) {
  std::vector<const std::vector<HoneypotHit>*> out;
  out.reserve(shards.size());
  for (const Shard& shard : shards) out.push_back(shard.hits);
  return out;
}

/// Membership-only downstream (the correlator's replication exclusion), so
/// the union can stay an unordered flat set.
template <typename Shard>
FlatSet<std::uint32_t> merged_replicated(const std::vector<Shard>& shards) {
  FlatSet<std::uint32_t> merged;
  for (const Shard& shard : shards) {
    for (std::uint32_t seq : shard.replicated) merged.insert(seq);
  }
  return merged;
}

}  // namespace

CampaignEngine::CampaignEngine(const TestbedConfig& bed_config, const CampaignConfig& config,
                               int shard_count, Decorator decorate, SubstrateMode mode)
    : CampaignEngine(bed_config, config, shard_count, std::move(decorate), EngineExec{},
                     mode) {}

CampaignEngine::CampaignEngine(std::shared_ptr<const World> world,
                               const CampaignConfig& config, int shard_count,
                               Decorator decorate)
    : config_(config), requested_shards_(shard_count), world_(std::move(world)) {
  int count = clamp_shards(shard_count);
  backend_ = std::make_unique<InProcessBackend>(world_->config(), world_, count, config_,
                                                decorate);
  primary_ = backend_->context_testbed();
}

CampaignEngine::CampaignEngine(const TestbedConfig& bed_config, const CampaignConfig& config,
                               int shard_count, Decorator decorate, const EngineExec& exec,
                               SubstrateMode mode)
    : config_(config), requested_shards_(shard_count) {
  build_backend(bed_config, shard_count, decorate, exec, mode);
}

void CampaignEngine::build_backend(const TestbedConfig& bed_config, int shard_count,
                                   const Decorator& decorate, const EngineExec& exec,
                                   SubstrateMode mode) {
  int count = clamp_shards(shard_count);
  scheduler_ = exec.scheduler;
  if (exec.shard_procs >= 1) {
    worker_procs_ = std::clamp(exec.shard_procs, 1, count);
    // Spawn first: the workers build their Worlds concurrently with ours.
    auto multiproc = std::make_unique<MultiProcessBackend>(
        bed_config, config_, count, worker_procs_, exec.worker_exe, exec.scheduler,
        decorate, exec.supervision);
    MultiProcessBackend* supervisor = multiproc.get();
    backend_ = std::move(multiproc);
    // The controller still needs a context replica (geo database,
    // signatures, blocklist, VP storage for the merged ledger's pointer
    // rebinds). No traffic ever runs on it — an undecorated frozen instance
    // is sufficient, since everything the consumers read is World-aliased.
    world_ = World::build(bed_config, decorate);
    context_bed_ = Testbed::instantiate(world_);
    primary_ = context_bed_.get();
    // Should a worker slot degrade to in-process execution, its runners
    // instantiate against our World instead of building another.
    supervisor->set_fallback_world(world_);
    SP_LOG_INFO(strprintf("engine: multi-process backend, %d shards across %d workers "
                          "(%s scheduler)",
                          count, worker_procs_, scheduler_mode_name(exec.scheduler)));
    return;
  }
  if (mode == SubstrateMode::kSharedWorld) {
    world_ = World::build(bed_config, decorate);
  }
  backend_ = std::make_unique<InProcessBackend>(bed_config, world_, count, config_,
                                                decorate, exec.scheduler,
                                                exec.initial_deal);
  primary_ = backend_->context_testbed();
}

CampaignEngine::~CampaignEngine() = default;

DecoyLedger CampaignEngine::merged_ledger(
    const std::vector<const DecoyLedger*>& ledgers) const {
  DecoyLedger merged;
  merged.seed_paths(plan_.paths());
  for (const DecoyLedger* ledger : ledgers) merged.merge(*ledger);
  merged.finalize();
  merged.rebind_vps(primary_->topology().vantage_points());
  return merged;
}

std::vector<HoneypotHit> CampaignEngine::merged_hits(
    const std::vector<const std::vector<HoneypotHit>*>& shard_hits) {
  std::vector<HoneypotHit> hits;
  for (const auto* shard : shard_hits) {
    hits.insert(hits.end(), shard->begin(), shard->end());
  }
  // Canonical order: within a shard hits are already time-ordered, and any
  // decoy domain only ever appears inside one shard, so the sort never
  // reorders the per-domain sequences the correlator's criteria depend on.
  std::stable_sort(hits.begin(), hits.end(), hit_canonical_less);
  return hits;
}

CampaignResult CampaignEngine::run() {
  const auto& vps = primary().topology().vantage_points();
  ScreeningReport report;
  std::vector<std::size_t> active;
  SimTime start = 0;

  if (config_.screening) {
    ShardScreening screening = backend_->run_screening(vps.size());
    report.candidates = static_cast<int>(vps.size());
    // Verdicts arrive merged in global topology order — the order the serial
    // campaign iterates.
    for (std::size_t i = 0; i < vps.size(); ++i) {
      switch (screening.verdicts[i]) {
        case ScreeningVerdict::kResidential:
          ++report.rejected_residential;
          break;
        case ScreeningVerdict::kTtlMangling:
          ++report.rejected_ttl_mangling;
          break;
        case ScreeningVerdict::kIntercepted:
          ++report.rejected_interception;
          break;
        case ScreeningVerdict::kUsable:
          active.push_back(i);
          break;
      }
    }
    report.usable = static_cast<int>(active.size());
    start = screening.clock;
    SP_LOG_INFO(strprintf("engine screening: %d candidates, %d usable across %d shards",
                          report.candidates, report.usable, backend_->shard_count()));
  } else {
    for (std::size_t i = 0; i < vps.size(); ++i) active.push_back(i);
    report.candidates = report.usable = static_cast<int>(vps.size());
  }

  // Phase I: plan once, let the backend execute the owned partitions.
  plan_ = CampaignPlan::build_phase1(primary().topology(), config_, active, start);
  SimTime barrier = config_.phase1_window + config_.phase2_grace;
  std::vector<ShardBarrier> barriers = backend_->run_phase1(plan_, barrier);

  // Phase-II barrier: merge what the honeypots have so far, classify, and
  // extend the plan — first re-homing the decoys quarantined VPs never sent,
  // then the TTL sweeps (seqs continue the global counter).
  std::size_t rescheduled = 0;
  std::set<std::size_t> quarantined;
  std::size_t schedule_from = plan_.emissions().size();
  {
    if (config_.faults.enabled()) {
      // Each owner shard recorded exactly which of its emissions were
      // skipped; the union is the re-plan work list.
      std::set<std::uint32_t> cancelled;
      for (const ShardBarrier& shard : barriers) {
        quarantined.insert(shard.quarantined.begin(), shard.quarantined.end());
        cancelled.insert(shard.cancelled.begin(), shard.cancelled.end());
      }
      rescheduled = plan_.reschedule_quarantined(cancelled, quarantined, active, barrier,
                                                 config_.phase2_window);
      if (!quarantined.empty()) {
        SP_LOG_INFO(strprintf("engine barrier: %zu VPs quarantined, %zu decoys "
                              "re-homed onto replacement VPs",
                              quarantined.size(), rescheduled));
      }
    }
    DecoyLedger interim = merged_ledger(ledgers_of(barriers));
    std::vector<HoneypotHit> hits = merged_hits(hits_of(barriers));
    FlatSet<std::uint32_t> replicated = merged_replicated(barriers);
    auto so_far = classify_unsolicited(interim, hits, &replicated,
                                       config_.analysis_workers);
    auto problematic = Correlator::problematic_paths(so_far);
    if (!quarantined.empty()) {
      // A quarantined VP cannot run its sweep; drop its paths rather than
      // plan emissions that would only be cancelled again.
      for (auto it = problematic.begin(); it != problematic.end();) {
        std::int32_t vp_index = plan_.path(*it).vp_index;
        if (vp_index >= 0 && quarantined.count(static_cast<std::size_t>(vp_index)) != 0) {
          it = problematic.erase(it);
        } else {
          ++it;
        }
      }
    }
    SP_LOG_INFO(strprintf("engine phase II: sweeping %zu problematic paths",
                          problematic.size()));
    plan_.extend_phase2(problematic, config_, barrier);
  }
  // schedule_from also covers the re-homed Phase-I emissions; with the
  // null profile it equals extend_phase2's first index exactly.
  std::vector<ShardFinal> finals =
      backend_->run_phase2(plan_, schedule_from, config_.total_duration);

  // Final merge.
  CampaignResult out;
  out.config = config_;
  out.screening = report;
  out.ledger = merged_ledger(ledgers_of(finals));
  out.hits = merged_hits(hits_of(finals));
  out.replicated_seqs = merged_replicated(finals);
  out.shard_stats.requested_shards = requested_shards_;
  out.shard_stats.effective_shards = backend_->shard_count();
  out.shard_stats.worker_procs = worker_procs_;
  out.shard_stats.clamped = requested_shards_ != backend_->shard_count();
  out.shard_stats.scheduler = scheduler_;
  const SupervisionStats sup = backend_->supervision_stats();
  out.shard_stats.workers_lost = sup.workers_lost;
  out.shard_stats.workers_respawned = sup.workers_respawned;
  out.shard_stats.workers_degraded = sup.workers_degraded;
  out.shard_stats.shards_retried = sup.shards_retried;
  for (const ShardFinal& shard : finals) {
    // Each seq is owned by exactly one shard, so folding the shards' hop
    // tables into the ordered result map is order-insensitive.
    for (const auto& [seq, hop] : shard.hops) out.hop_log.emplace(seq, hop);
    out.shard_stats.per_shard.push_back(shard.stats);
    out.shard_stats.per_shard_net.push_back(shard.net);
    out.shard_stats.steals_attempted += shard.steals_attempted;
    out.shard_stats.steals_completed += shard.steals_completed;
  }
  if (config_.faults.enabled()) {
    CoverageStats cov;
    cov.phase1_planned = plan_.phase1_count();
    for (const DecoyRecord& record : out.ledger.decoys()) {
      if (record.phase2) continue;
      ++cov.decoys_attempted;
      if (record.dest_responded) ++cov.decoys_delivered;
    }
    for (const ShardFinal& shard : finals) cov.absorb(shard.coverage);
    cov.decoys_rescheduled = rescheduled;
    out.coverage = cov;
  }
  out.active_vps.reserve(active.size());
  for (std::size_t i : active) out.active_vps.push_back(&vps[i]);
  out.correlate(config_.analysis_workers);
  SP_LOG_INFO(strprintf("engine complete: %d shards, %zu decoys, %zu hits, "
                        "%zu unsolicited, %zu located paths",
                        backend_->shard_count(), out.ledger.decoy_count(), out.hits.size(),
                        out.unsolicited.size(), out.findings.size()));
  if (backend_->shard_count() > 1) {
    SP_LOG_INFO(strprintf("engine balance: event imbalance %.3f (max/mean over %zu "
                          "shard loops), %s scheduler, %llu/%llu steals "
                          "completed/attempted",
                          out.shard_stats.event_imbalance(),
                          out.shard_stats.per_shard.size(),
                          scheduler_mode_name(scheduler_),
                          static_cast<unsigned long long>(out.shard_stats.steals_completed),
                          static_cast<unsigned long long>(out.shard_stats.steals_attempted)));
  }
  if (out.shard_stats.workers_lost > 0) {
    SP_LOG_WARN(strprintf("engine recovery: %llu worker(s) lost, %llu respawned, "
                          "%llu degraded in-process, %llu shard(s) re-dispatched "
                          "(output unaffected — re-execution is byte-identical)",
                          static_cast<unsigned long long>(out.shard_stats.workers_lost),
                          static_cast<unsigned long long>(out.shard_stats.workers_respawned),
                          static_cast<unsigned long long>(out.shard_stats.workers_degraded),
                          static_cast<unsigned long long>(out.shard_stats.shards_retried)));
  }
  return out;
}

}  // namespace shadowprobe::core
