// CampaignResult: the merged, analysis-ready outcome of a campaign.
//
// Both execution paths produce one of these — the serial Campaign via
// Campaign::result(), the sharded CampaignEngine by merging per-shard
// ledgers, logbooks, and hop logs — so every downstream consumer
// (Correlator, ObserverLocator, the analyzers, JSON export, the CLI report
// printers) is written once against this struct and never needs to know how
// the campaign was executed.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "core/campaign_config.h"
#include "core/correlator.h"
#include "core/honeypot.h"
#include "core/ledger.h"
#include "core/locate.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace shadowprobe::core {

/// Runs the correlator over `hits` — the single shared entry point for every
/// place that used to construct its own Correlator (Phase-II planning, the
/// final pass, and the engine barrier). `workers` > 1 classifies seq-group
/// partitions on a worker pool; the output is byte-identical to serial.
[[nodiscard]] std::vector<UnsolicitedRequest> classify_unsolicited(
    const DecoyLedger& ledger, const std::vector<HoneypotHit>& hits,
    const FlatSet<std::uint32_t>* replicated_seqs, int workers = 1);

/// How the campaign was actually executed: the shard count as requested,
/// the count that ran after clamping to [1, DecoyLedger::kMaxShards], and
/// one event-loop stats entry per executed shard (serial runs record one).
struct ShardExecutionStats {
  int requested_shards = 1;
  int effective_shards = 1;
  /// Worker processes the shards ran in: 0 = in-process threads, >= 1 =
  /// out-of-process workers (MultiProcessBackend), including `1` — a single
  /// worker child still exercises the full wire protocol.
  int worker_procs = 0;
  bool clamped = false;  ///< requested_shards fell outside the valid range
  /// Execution schedule the shards ran under. Report/log only — the
  /// schedule never influences campaign output, so it is absent from the
  /// exported JSON (which must stay byte-identical across schedulers).
  SchedulerMode scheduler = SchedulerMode::kStatic;
  std::uint64_t steals_attempted = 0;  ///< claims that found the own deque empty
  std::uint64_t steals_completed = 0;  ///< whole VPs actually stolen
  /// Supervision activity (multi-process backend only; all zero on a clean
  /// run). Recovery re-executes shards byte-identically, so these are
  /// report/log diagnostics, never part of the exported JSON.
  std::uint64_t workers_lost = 0;       ///< death/stall/corruption events
  std::uint64_t workers_respawned = 0;  ///< replacement processes brought up
  std::uint64_t workers_degraded = 0;   ///< slots degraded to in-process
  std::uint64_t shards_retried = 0;     ///< owned shards re-dispatched
  std::vector<sim::EventLoopStats> per_shard;
  /// One network-counter snapshot per executed shard (delivered/forwarded/
  /// drops by reason). Per-shard values are NOT layout-invariant — replica
  /// infrastructure traffic repeats on every shard — so they feed the text
  /// report, never the byte-identical JSON export.
  std::vector<sim::NetworkCounters> per_shard_net;

  /// Load imbalance across the executed shards: max over mean of per-shard
  /// processed-event counts. 1.0 means perfectly balanced (and is returned
  /// for serial runs); 2.0 means the busiest shard did twice the average.
  [[nodiscard]] double event_imbalance() const {
    if (per_shard.size() <= 1) return 1.0;
    std::uint64_t max = 0;
    std::uint64_t total = 0;
    for (const auto& stats : per_shard) {
      max = std::max(max, stats.processed);
      total += stats.processed;
    }
    if (total == 0) return 1.0;
    double mean = static_cast<double>(total) / static_cast<double>(per_shard.size());
    return static_cast<double>(max) / mean;
  }
};

/// How much of the planned measurement actually happened under a fault
/// profile. Every field is layout-invariant (a pure function of the master
/// seed and the profile, independent of shard / worker counts), so the whole
/// struct is exported in the campaign JSON next to the analysis tables it
/// qualifies. Populated only when the fault profile is enabled.
struct CoverageStats {
  std::uint64_t phase1_planned = 0;    ///< Phase-I emissions in the plan
  std::uint64_t decoys_attempted = 0;  ///< Phase-I decoys actually emitted
  std::uint64_t decoys_delivered = 0;  ///< ... whose destination responded
  std::uint64_t decoys_lost = 0;       ///< ... that exhausted their retries
  std::uint64_t decoys_retried = 0;    ///< distinct decoys re-sent >= once
  std::uint64_t retry_attempts = 0;    ///< UDP decoy re-send events
  std::uint64_t tcp_retransmissions = 0;  ///< segments re-sent by VP stacks
  std::uint64_t decoys_cancelled = 0;  ///< skipped: owner VP quarantined
  std::uint64_t decoys_rescheduled = 0;  ///< re-planned onto replacement VPs
  std::uint64_t phase2_deferred = 0;   ///< sweep probes shifted past a VP outage
  std::uint64_t vps_quarantined = 0;
  std::uint64_t honeypot_downtime_drops = 0;  ///< packets lost to collector outages
  /// Injected drops broken down by link, canonically ordered. Per-shard
  /// drop counts sum to a layout-invariant total (every fault draw is keyed
  /// by packet identity + time, and each packet traverses exactly one
  /// shard's replica), so the merged table is safe for the byte-identical
  /// JSON export.
  std::vector<sim::LinkDropCounters> link_drops;

  /// Merge step for per-shard partials (planned/attempted/delivered are
  /// computed once from the merged ledger, not summed).
  void absorb(const CoverageStats& other) {
    decoys_lost += other.decoys_lost;
    decoys_retried += other.decoys_retried;
    retry_attempts += other.retry_attempts;
    tcp_retransmissions += other.tcp_retransmissions;
    decoys_cancelled += other.decoys_cancelled;
    decoys_rescheduled += other.decoys_rescheduled;
    phase2_deferred += other.phase2_deferred;
    vps_quarantined += other.vps_quarantined;
    honeypot_downtime_drops += other.honeypot_downtime_drops;
    sim::merge_link_drops(link_drops, other.link_drops);
  }
};

struct CampaignResult {
  CampaignConfig config;
  ScreeningReport screening;
  DecoyLedger ledger;
  std::vector<const topo::VantagePoint*> active_vps;
  /// Merged honeypot hits in canonical order (serial runs keep capture
  /// order, which for one shard is already canonical up to ties).
  std::vector<HoneypotHit> hits;
  std::vector<UnsolicitedRequest> unsolicited;
  std::vector<ObserverFinding> findings;
  // Key-lookup tables (locator probes hop_log by seq; the correlator tests
  // replicated membership) — never iterated for output, so flat maps are
  // safe and an order of magnitude cheaper to build at merge time.
  FlatMap<std::uint32_t, net::Ipv4Addr> hop_log;
  FlatSet<std::uint32_t> replicated_seqs;
  ShardExecutionStats shard_stats;
  /// Present exactly when config.faults.enabled() — the null profile leaves
  /// result shape (and thus JSON) byte-identical to a fault-free build.
  std::optional<CoverageStats> coverage;

  /// Fills unsolicited + findings from ledger / hits / hop_log.
  /// `analysis_workers` sizes the classification worker pool (the result is
  /// byte-identical for any value).
  void correlate(int analysis_workers = 1);
};

}  // namespace shadowprobe::core
