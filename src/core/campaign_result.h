// CampaignResult: the merged, analysis-ready outcome of a campaign.
//
// Both execution paths produce one of these — the serial Campaign via
// Campaign::result(), the sharded CampaignEngine by merging per-shard
// ledgers, logbooks, and hop logs — so every downstream consumer
// (Correlator, ObserverLocator, the analyzers, JSON export, the CLI report
// printers) is written once against this struct and never needs to know how
// the campaign was executed.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/campaign_config.h"
#include "core/correlator.h"
#include "core/honeypot.h"
#include "core/ledger.h"
#include "core/locate.h"
#include "sim/event_loop.h"

namespace shadowprobe::core {

/// Strict total order over honeypot hits that does not depend on shard
/// layout: primarily by capture time, then by every recorded field. Used to
/// canonicalize merged logbooks before classification and export.
[[nodiscard]] bool hit_canonical_less(const HoneypotHit& a, const HoneypotHit& b);

/// Runs the correlator over `hits` — the single shared entry point for every
/// place that used to construct its own Correlator (Phase-II planning, the
/// final pass, and the engine barrier).
[[nodiscard]] std::vector<UnsolicitedRequest> classify_unsolicited(
    const DecoyLedger& ledger, const std::vector<HoneypotHit>& hits,
    const std::set<std::uint32_t>* replicated_seqs);

struct CampaignResult {
  CampaignConfig config;
  ScreeningReport screening;
  DecoyLedger ledger;
  std::vector<const topo::VantagePoint*> active_vps;
  /// Merged honeypot hits in canonical order (serial runs keep capture
  /// order, which for one shard is already canonical up to ties).
  std::vector<HoneypotHit> hits;
  std::vector<UnsolicitedRequest> unsolicited;
  std::vector<ObserverFinding> findings;
  std::map<std::uint32_t, net::Ipv4Addr> hop_log;
  std::set<std::uint32_t> replicated_seqs;
  /// One entry per shard (one entry for serial runs).
  std::vector<sim::EventLoopStats> shard_stats;

  /// Fills unsolicited + findings from ledger / hits / hop_log.
  void correlate();
};

}  // namespace shadowprobe::core
