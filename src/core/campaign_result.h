// CampaignResult: the merged, analysis-ready outcome of a campaign.
//
// Both execution paths produce one of these — the serial Campaign via
// Campaign::result(), the sharded CampaignEngine by merging per-shard
// ledgers, logbooks, and hop logs — so every downstream consumer
// (Correlator, ObserverLocator, the analyzers, JSON export, the CLI report
// printers) is written once against this struct and never needs to know how
// the campaign was executed.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/campaign_config.h"
#include "core/correlator.h"
#include "core/honeypot.h"
#include "core/ledger.h"
#include "core/locate.h"
#include "sim/event_loop.h"

namespace shadowprobe::core {

/// Runs the correlator over `hits` — the single shared entry point for every
/// place that used to construct its own Correlator (Phase-II planning, the
/// final pass, and the engine barrier). `workers` > 1 classifies seq-group
/// partitions on a worker pool; the output is byte-identical to serial.
[[nodiscard]] std::vector<UnsolicitedRequest> classify_unsolicited(
    const DecoyLedger& ledger, const std::vector<HoneypotHit>& hits,
    const std::set<std::uint32_t>* replicated_seqs, int workers = 1);

/// How the campaign was actually executed: the shard count as requested,
/// the count that ran after clamping to [1, DecoyLedger::kMaxShards], and
/// one event-loop stats entry per executed shard (serial runs record one).
struct ShardExecutionStats {
  int requested_shards = 1;
  int effective_shards = 1;
  bool clamped = false;  ///< requested_shards fell outside the valid range
  std::vector<sim::EventLoopStats> per_shard;
};

struct CampaignResult {
  CampaignConfig config;
  ScreeningReport screening;
  DecoyLedger ledger;
  std::vector<const topo::VantagePoint*> active_vps;
  /// Merged honeypot hits in canonical order (serial runs keep capture
  /// order, which for one shard is already canonical up to ties).
  std::vector<HoneypotHit> hits;
  std::vector<UnsolicitedRequest> unsolicited;
  std::vector<ObserverFinding> findings;
  std::map<std::uint32_t, net::Ipv4Addr> hop_log;
  std::set<std::uint32_t> replicated_seqs;
  ShardExecutionStats shard_stats;

  /// Fills unsolicited + findings from ledger / hits / hop_log.
  /// `analysis_workers` sizes the classification worker pool (the result is
  /// byte-identical for any value).
  void correlate(int analysis_workers = 1);
};

}  // namespace shadowprobe::core
