#include "core/campaign_result.h"

#include <tuple>

namespace shadowprobe::core {

bool hit_canonical_less(const HoneypotHit& a, const HoneypotHit& b) {
  auto key = [](const HoneypotHit& h) {
    return std::make_tuple(h.time, h.domain.str(), static_cast<int>(h.protocol),
                           h.origin.value(), h.honeypot_addr.value(), h.location,
                           h.http_method, h.http_target);
  };
  return key(a) < key(b);
}

std::vector<UnsolicitedRequest> classify_unsolicited(
    const DecoyLedger& ledger, const std::vector<HoneypotHit>& hits,
    const std::set<std::uint32_t>* replicated_seqs) {
  Correlator correlator(ledger);
  return correlator.classify(hits, replicated_seqs);
}

void CampaignResult::correlate() {
  unsolicited = classify_unsolicited(ledger, hits, &replicated_seqs);
  ObserverLocator locator(ledger, hop_log);
  findings = locator.locate(unsolicited);
}

}  // namespace shadowprobe::core
