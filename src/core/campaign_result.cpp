#include "core/campaign_result.h"

namespace shadowprobe::core {

std::vector<UnsolicitedRequest> classify_unsolicited(
    const DecoyLedger& ledger, const std::vector<HoneypotHit>& hits,
    const FlatSet<std::uint32_t>* replicated_seqs, int workers) {
  Correlator correlator(ledger);
  return correlator.classify(hits, replicated_seqs, workers);
}

void CampaignResult::correlate(int analysis_workers) {
  unsolicited = classify_unsolicited(ledger, hits, &replicated_seqs, analysis_workers);
  ObserverLocator locator(ledger, hop_log);
  findings = locator.locate(unsolicited);
}

}  // namespace shadowprobe::core
