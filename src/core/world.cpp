#include "core/world.h"

namespace shadowprobe::core {

std::shared_ptr<const World> World::build(const TestbedConfig& config,
                                          const Decorator& decorate) {
  // The prototype is a complete authoring-mode build: substrate, then the
  // deployment (prober fleets claim addresses and blocklist entries), then
  // the engine's control-server node — the full dynamic tail every shard
  // will replay, in creation order: oblivious-proxy, probers, control-server.
  std::unique_ptr<Testbed> proto = Testbed::create(config);
  {
    // The live deployment (exhibitors, taps) is per-shard state; only the
    // structural side effects outlive this scope. Destroyed while the
    // prototype is still alive so handler teardown stays well-ordered.
    std::shared_ptr<void> deployment;
    if (decorate) deployment = decorate(*proto);
  }
  proto->add_host_in_as(proto->topology().honeypots().front().asn, "control-server",
                        nullptr);

  auto world = std::shared_ptr<World>(new World());
  world->config_ = proto->config_;
  world->layout_ = proto->net_->freeze_layout();
  world->topology_ = std::move(proto->topology_);
  world->first_dynamic_node_ = proto->first_dynamic_node_;
  world->signatures_ = std::move(proto->signatures_);
  world->blocklist_ = std::move(proto->blocklist_own_);
  world->roots_ = std::move(proto->roots_);
  world->root_zone_ = std::move(proto->root_zone_);
  world->com_zone_ = std::move(proto->com_zone_);
  world->org_zone_ = std::move(proto->org_zone_);
  world->experiment_zone_ = std::move(proto->experiment_zone_);
  world->resolvers_ = std::move(proto->resolver_specs_);
  return world;
}

}  // namespace shadowprobe::core
