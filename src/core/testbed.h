// Testbed: the assembled substrate the measurement runs against.
//
// Owns the event loop, the simulated network, and every application layer
// of the substrate: 13 root servers and 2 TLD servers (real authoritative
// DNS), 20 public resolvers + the self-built control resolver (real
// recursive resolution, Google/Cloudflare/... at their Table-4 addresses,
// 114DNS with CN and US anycast instances), the Tranco-style web farm, and
// the three honeypots (US/DE/SG) feeding one shared logbook.
//
// Two construction modes (see core/world.h and DESIGN.md):
//   - Testbed::create builds everything from scratch in *authoring* mode:
//     it owns a mutable topology/layout/blocklist. The serial Campaign and
//     most tests use this.
//   - Testbed::instantiate(world) builds a *frozen* per-shard instance over
//     a shared const World: topology, network layout, signatures, blocklist
//     and zone data are aliased read-only; only the live state (event loop,
//     server instances and their caches, logbook, RNG streams) is private.
//
// The testbed is exhibitor-free: shadow::deploy_standard_exhibitors (or a
// custom deployment) adds the ground-truth shadowing behaviour afterwards,
// keeping the pipeline-under-test blind to it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/honeypot.h"
#include "core/web_server.h"
#include "dnssrv/auth_server.h"
#include "dnssrv/oblivious.h"
#include "dnssrv/resolver.h"
#include "intel/blocklist.h"
#include "intel/signatures.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace shadowprobe::core {

class World;

struct TestbedConfig {
  topo::TopologyConfig topology;
  /// Benign re-query behaviour of public resolvers (the paper's <1 min
  /// DNS-DNS cluster exists on virtually every resolver path).
  double resolver_requery_probability = 0.15;
  SimDuration resolver_requery_delay = 15 * kSecond;
  /// Active cache refresh at TTL expiry (ablation; default off — the paper
  /// observed no TTL-aligned spikes).
  bool resolver_refresh_on_expiry = false;
};

/// Frozen-mode construction record for one resolver: name, placement and
/// quirks as the authoring run fixed them. Captured by Testbed::create so
/// instantiate() can rebuild the instance without re-running the
/// egress-address allocation against the (different-looking) final plan.
struct ResolverSpec {
  std::string name;
  sim::NodeId node = sim::kInvalidNode;
  net::Ipv4Addr service;
  net::Ipv4Addr egress;
  dnssrv::ResolverQuirks quirks;
};

class Testbed {
 public:
  /// Authoring mode: builds a private, fully mutable substrate.
  static std::unique_ptr<Testbed> create(const TestbedConfig& config);
  /// Frozen mode: builds a per-shard instance whose structural reads alias
  /// the shared `world`. Live servers (resolvers with their caches,
  /// honeypots with their logbook, web farm, oblivious proxy) are fresh.
  static std::unique_ptr<Testbed> instantiate(std::shared_ptr<const World> world);

  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] sim::Network& net() noexcept { return *net_; }
  [[nodiscard]] const topo::Topology& topology() const noexcept { return *topo_view_; }
  [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }
  [[nodiscard]] HoneypotLogbook& logbook() noexcept { return logbook_; }
  [[nodiscard]] const intel::SignatureDb& signatures() const noexcept { return *signatures_; }
  [[nodiscard]] const intel::Blocklist& blocklist() const noexcept { return *blocklist_view_; }

  /// Shared substrate this instance was instantiated from; null in
  /// authoring mode.
  [[nodiscard]] const World* world() const noexcept { return world_.get(); }
  [[nodiscard]] bool frozen() const noexcept { return world_ != nullptr; }

  /// Creates (authoring) or replays (frozen) one host in AS `asn`. This is
  /// the only node-creation entry point run-phase code may use: in frozen
  /// mode the call consumes the next node of the layout's dynamic tail,
  /// verified by name, so shard construction cannot silently diverge from
  /// the plan the World was built with.
  sim::NodeId add_host_in_as(std::uint32_t asn, const std::string& name,
                             sim::DatagramHandler* handler = nullptr);

  /// Registers `addr` on the reputation blocklist (authoring) or verifies it
  /// is already listed (frozen — the World fixed the blocklist contents; a
  /// miss means the caller diverged from the World's deployment and throws).
  /// Callers must keep making the RNG draws that decide *whether* to call
  /// this, so streams stay aligned across modes.
  void note_blocklisted(net::Ipv4Addr addr);

  /// Resolver instance by target name; "114DNS-US" addresses the US anycast
  /// instance. Null for unknown names.
  [[nodiscard]] dnssrv::RecursiveResolver* resolver(const std::string& name);
  [[nodiscard]] const std::vector<std::string>& resolver_names() const noexcept {
    return resolver_names_;
  }
  [[nodiscard]] WebSiteServer* web_server(int rank);

  /// Root hint addresses (the 13 root servers).
  [[nodiscard]] const std::vector<net::Ipv4Addr>& root_hints() const noexcept {
    return roots_;
  }

  /// The oblivious DNS relay (ODoH-style) available to privacy-conscious
  /// clients; hosted on neutral cloud infrastructure.
  [[nodiscard]] net::Ipv4Addr oblivious_proxy_addr() const noexcept {
    return oblivious_proxy_ ? oblivious_proxy_->addr() : net::Ipv4Addr();
  }

  /// Derives an independent RNG stream for a named consumer.
  [[nodiscard]] Rng fork_rng(std::string_view label) const { return rng_.fork(label); }

 private:
  friend class World;

  explicit Testbed(const TestbedConfig& config);        // authoring
  explicit Testbed(std::shared_ptr<const World> world); // frozen
  void build_dns_infrastructure();
  void build_honeypots();
  void build_web_farm();
  void add_resolver(const std::string& name, sim::NodeId node, net::Ipv4Addr service,
                    std::uint32_t asn);
  void instantiate_servers();  // frozen-mode body

  TestbedConfig config_;
  Rng rng_;
  sim::EventLoop loop_;
  std::unique_ptr<sim::Network> net_;

  // Structural substrate: owned in authoring mode, aliased from world_ when
  // frozen. The *_view_ pointers are the single read path either way.
  std::shared_ptr<const World> world_;
  std::shared_ptr<topo::Topology> topology_;        // authoring only
  const topo::Topology* topo_view_ = nullptr;
  std::shared_ptr<const intel::SignatureDb> signatures_;
  std::shared_ptr<intel::Blocklist> blocklist_own_; // authoring only
  const intel::Blocklist* blocklist_view_ = nullptr;
  sim::NodeId first_dynamic_node_ = 0;  // node count right after Topology::build
  std::shared_ptr<const dnssrv::Zone> root_zone_;
  std::shared_ptr<const dnssrv::Zone> com_zone_;
  std::shared_ptr<const dnssrv::Zone> org_zone_;
  std::shared_ptr<const dnssrv::Zone> experiment_zone_;
  std::vector<ResolverSpec> resolver_specs_;  // authoring: freeze inventory
  std::vector<net::Ipv4Addr> roots_;

  // Live per-instance state: always private, never shared across shards.
  HoneypotLogbook logbook_;
  std::vector<std::unique_ptr<dnssrv::AuthoritativeServer>> auth_servers_;
  std::unique_ptr<dnssrv::ObliviousProxy> oblivious_proxy_;
  std::map<std::string, std::unique_ptr<dnssrv::RecursiveResolver>> resolvers_;
  std::vector<std::string> resolver_names_;
  std::vector<std::unique_ptr<HoneypotServer>> honeypot_servers_;
  std::map<int, std::unique_ptr<WebSiteServer>> web_servers_;
};

}  // namespace shadowprobe::core
