// Testbed: the assembled substrate the measurement runs against.
//
// Owns the event loop, the simulated network, the synthetic topology, and
// every application layer of the substrate: 13 root servers and 2 TLD
// servers (real authoritative DNS), 20 public resolvers + the self-built
// control resolver (real recursive resolution, Google/Cloudflare/... at
// their Table-4 addresses, 114DNS with CN and US anycast instances), the
// Tranco-style web farm, and the three honeypots (US/DE/SG) feeding one
// shared logbook.
//
// The testbed is exhibitor-free: shadow::deploy_standard_exhibitors (or a
// custom deployment) adds the ground-truth shadowing behaviour afterwards,
// keeping the pipeline-under-test blind to it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/honeypot.h"
#include "core/web_server.h"
#include "dnssrv/auth_server.h"
#include "dnssrv/oblivious.h"
#include "dnssrv/resolver.h"
#include "intel/blocklist.h"
#include "intel/signatures.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace shadowprobe::core {

struct TestbedConfig {
  topo::TopologyConfig topology;
  /// Benign re-query behaviour of public resolvers (the paper's <1 min
  /// DNS-DNS cluster exists on virtually every resolver path).
  double resolver_requery_probability = 0.15;
  SimDuration resolver_requery_delay = 15 * kSecond;
  /// Active cache refresh at TTL expiry (ablation; default off — the paper
  /// observed no TTL-aligned spikes).
  bool resolver_refresh_on_expiry = false;
};

class Testbed {
 public:
  static std::unique_ptr<Testbed> create(const TestbedConfig& config);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] sim::Network& net() noexcept { return *net_; }
  [[nodiscard]] topo::Topology& topology() noexcept { return *topology_; }
  [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }
  [[nodiscard]] HoneypotLogbook& logbook() noexcept { return logbook_; }
  [[nodiscard]] const intel::SignatureDb& signatures() const noexcept { return signatures_; }
  [[nodiscard]] intel::Blocklist& blocklist() noexcept { return blocklist_; }

  /// Resolver instance by target name; "114DNS-US" addresses the US anycast
  /// instance. Null for unknown names.
  [[nodiscard]] dnssrv::RecursiveResolver* resolver(const std::string& name);
  [[nodiscard]] const std::vector<std::string>& resolver_names() const noexcept {
    return resolver_names_;
  }
  [[nodiscard]] WebSiteServer* web_server(int rank);

  /// Root hint addresses (the 13 root servers).
  [[nodiscard]] const std::vector<net::Ipv4Addr>& root_hints() const noexcept {
    return roots_;
  }

  /// The oblivious DNS relay (ODoH-style) available to privacy-conscious
  /// clients; hosted on neutral cloud infrastructure.
  [[nodiscard]] net::Ipv4Addr oblivious_proxy_addr() const noexcept {
    return oblivious_proxy_ ? oblivious_proxy_->addr() : net::Ipv4Addr();
  }

  /// Derives an independent RNG stream for a named consumer.
  [[nodiscard]] Rng fork_rng(std::string_view label) const { return rng_.fork(label); }

 private:
  explicit Testbed(const TestbedConfig& config);
  void build_dns_infrastructure();
  void build_honeypots();
  void build_web_farm();
  void add_resolver(const std::string& name, sim::NodeId node, net::Ipv4Addr service,
                    std::uint32_t asn);

  TestbedConfig config_;
  Rng rng_;
  sim::EventLoop loop_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<topo::Topology> topology_;
  HoneypotLogbook logbook_;
  intel::SignatureDb signatures_;
  intel::Blocklist blocklist_;
  std::vector<net::Ipv4Addr> roots_;

  std::vector<std::unique_ptr<dnssrv::AuthoritativeServer>> auth_servers_;
  std::unique_ptr<dnssrv::ObliviousProxy> oblivious_proxy_;
  std::map<std::string, std::unique_ptr<dnssrv::RecursiveResolver>> resolvers_;
  std::vector<std::string> resolver_names_;
  std::vector<std::unique_ptr<HoneypotServer>> honeypot_servers_;
  std::map<int, std::unique_ptr<WebSiteServer>> web_servers_;
};

}  // namespace shadowprobe::core
