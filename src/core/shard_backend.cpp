#include "core/shard_backend.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/log.h"
#include "common/strutil.h"

namespace shadowprobe::core {

// -- InProcessBackend --------------------------------------------------------

InProcessBackend::InProcessBackend(const TestbedConfig& bed_config,
                                   std::shared_ptr<const World> world, int shard_count,
                                   const CampaignConfig& config,
                                   const ShardRunner::Decorator& decorate,
                                   SchedulerMode scheduler,
                                   std::vector<std::uint32_t> initial_deal)
    : config_(config),
      scheduler_(scheduler),
      initial_deal_(std::move(initial_deal)),
      steal_totals_(static_cast<std::size_t>(shard_count)) {
  // An out-of-range deal entry would leave a VP unowned under the static
  // schedule (and unclaimed under stealing); fold it back into range.
  for (std::uint32_t& shard : initial_deal_) {
    shard %= static_cast<std::uint32_t>(shard_count);
  }
  auto make_runner = [&](int i) {
    if (world != nullptr) {
      return std::make_unique<ShardRunner>(static_cast<std::uint32_t>(i),
                                           static_cast<std::uint32_t>(shard_count), world,
                                           config_, decorate);
    }
    return std::make_unique<ShardRunner>(static_cast<std::uint32_t>(i),
                                         static_cast<std::uint32_t>(shard_count), bed_config,
                                         config_, decorate);
  };
  runners_.resize(static_cast<std::size_t>(shard_count));
  if (shard_count == 1) {
    runners_[0] = make_runner(0);
    if (!initial_deal_.empty()) runners_[0]->set_deal(initial_deal_);
    return;
  }
  // Shards are independent — frozen instances only read the shared World —
  // so build them concurrently (slot-assigned, keeping the vector order and
  // everything keyed off shard index deterministic).
  std::vector<std::thread> builders;
  std::vector<std::exception_ptr> errors(runners_.size());
  builders.reserve(runners_.size());
  for (int i = 0; i < shard_count; ++i) {
    builders.emplace_back([&, i] {
      try {
        runners_[static_cast<std::size_t>(i)] = make_runner(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    });
  }
  for (std::thread& builder : builders) builder.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  if (!initial_deal_.empty()) {
    for (auto& runner : runners_) runner->set_deal(initial_deal_);
  }
}

InProcessBackend::~InProcessBackend() = default;

void InProcessBackend::for_each_shard(const std::function<void(ShardRunner&)>& fn) {
  if (runners_.size() == 1) {
    fn(*runners_.front());
    return;
  }
  std::vector<std::thread> workers;
  std::vector<std::exception_ptr> errors(runners_.size());
  workers.reserve(runners_.size());
  for (std::size_t i = 0; i < runners_.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        fn(*runners_[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::vector<std::uint32_t> InProcessBackend::full_deal(std::size_t vp_count) const {
  auto deal = round_robin_deal(vp_count, static_cast<std::uint32_t>(runners_.size()));
  for (std::size_t vp = 0; vp < initial_deal_.size() && vp < vp_count; ++vp) {
    if (initial_deal_[vp] < runners_.size()) deal[vp] = initial_deal_[vp];
  }
  return deal;
}

void InProcessBackend::drain_queue(
    VpWorkQueue& queue, const std::function<void(ShardRunner&, std::size_t)>& run_vp,
    SimTime deadline) {
  for_each_shard([&](ShardRunner& shard) {
    shard.begin_phase();
    for (int vp; (vp = queue.claim(shard.shard_index())) >= 0;) {
      run_vp(shard, static_cast<std::size_t>(vp));
    }
    // Drain leftovers (retry timers, exhibitor replays crossing the phase
    // boundary) and park every shard clock on the same deadline.
    shard.run_until(deadline);
  });
  for (std::size_t s = 0; s < runners_.size(); ++s) {
    const auto counters = queue.counters(static_cast<std::uint32_t>(s));
    steal_totals_[s].attempted += counters.attempted;
    steal_totals_[s].completed += counters.completed;
  }
}

ShardScreening InProcessBackend::run_screening(std::size_t vp_count) {
  ShardScreening out;
  out.verdicts.reserve(vp_count);
  if (scheduler_ == SchedulerMode::kSteal) {
    VpWorkQueue queue(full_deal(vp_count), static_cast<std::uint32_t>(runners_.size()),
                      {}, {}, /*allow_steal=*/true);
    const SimTime deadline = runners_.front()->testbed().loop().now() + kHour;
    drain_queue(queue,
                [](ShardRunner& shard, std::size_t vp) { shard.run_screening_vp(vp); },
                deadline);
    // Verdicts merge in global topology order, each read from the shard
    // that actually probed the VP (interception is observed executor-side).
    for (std::size_t i = 0; i < vp_count; ++i) {
      const std::uint32_t executor = queue.executors()[i];
      out.verdicts.push_back(runners_[executor]->verdict(i));
    }
  } else {
    for_each_shard([](ShardRunner& shard) { shard.run_screening(); });
    // Verdicts merge in global topology order — the order the serial
    // campaign iterates — each read from the shard that owns the VP.
    for (std::size_t i = 0; i < vp_count; ++i) {
      std::size_t owner = i % runners_.size();
      if (!runners_[owner]->owns_vp(i)) {
        for (owner = 0; !runners_[owner]->owns_vp(i); ++owner) {}
      }
      out.verdicts.push_back(runners_[owner]->verdict(i));
    }
  }
  out.clock = runners_.front()->testbed().loop().now();
  return out;
}

ShardBarrier InProcessBackend::snapshot_barrier(const ShardRunner& runner) const {
  ShardBarrier out;
  out.ledger = &runner.ledger();
  out.hits = &runner.hits();
  runner.replicated_seqs().for_each(
      [&out](std::uint32_t seq) { out.replicated.push_back(seq); });
  std::sort(out.replicated.begin(), out.replicated.end());
  runner.quarantined_vps().for_each(
      [&out](std::size_t vp_index, SimTime) { out.quarantined.push_back(vp_index); });
  std::sort(out.quarantined.begin(), out.quarantined.end());
  runner.cancelled_seqs().for_each(
      [&out](std::uint32_t seq) { out.cancelled.push_back(seq); });
  std::sort(out.cancelled.begin(), out.cancelled.end());
  return out;
}

ShardFinal InProcessBackend::snapshot_final(const ShardRunner& runner) const {
  ShardFinal out;
  out.ledger = &runner.ledger();
  out.hits = &runner.hits();
  runner.replicated_seqs().for_each(
      [&out](std::uint32_t seq) { out.replicated.push_back(seq); });
  std::sort(out.replicated.begin(), out.replicated.end());
  runner.hop_log().for_each([&out](std::uint32_t seq, net::Ipv4Addr hop) {
    out.hops.emplace_back(seq, hop);
  });
  std::sort(out.hops.begin(), out.hops.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.stats = runner.stats();
  out.net = runner.net_counters();
  if (config_.faults.enabled()) out.coverage = runner.coverage();
  out.steals_attempted = steal_totals_[runner.shard_index()].attempted;
  out.steals_completed = steal_totals_[runner.shard_index()].completed;
  return out;
}

std::vector<ShardBarrier> InProcessBackend::run_phase1(const CampaignPlan& plan,
                                                       SimTime barrier) {
  for (auto& runner : runners_) runner->adopt_plan(plan);
  if (scheduler_ == SchedulerMode::kSteal) {
    const std::size_t vp_count =
        runners_.front()->testbed().topology().vantage_points().size();
    const auto buckets = bucket_emissions_by_vp(plan, 0, plan.phase1_count(), vp_count);
    std::vector<bool> include(buckets.size());
    for (std::size_t vp = 0; vp < buckets.size(); ++vp) include[vp] = !buckets[vp].empty();
    VpWorkQueue queue(full_deal(buckets.size()),
                      static_cast<std::uint32_t>(runners_.size()),
                      bucket_weights(buckets), include, /*allow_steal=*/true);
    drain_queue(queue,
                [&](ShardRunner& shard, std::size_t vp) {
                  shard.run_plan_vp(plan, buckets[vp], barrier);
                },
                barrier);
    phase1_executors_ = queue.executors();
    // Export the fault-state carries here, at the post-grace barrier: every
    // Phase-I decoy's retry deadline has resolved by now, so the streak and
    // quarantine values are final and the Phase-II executor can adopt them.
    carries_.clear();
    if (config_.faults.enabled()) {
      for (std::size_t vp = 0; vp < phase1_executors_.size(); ++vp) {
        const std::uint32_t executor = phase1_executors_[vp];
        if (executor == kVpUnassigned) continue;
        carries_.push_back(runners_[executor]->export_carry(vp));
      }
    }
  } else {
    for (auto& runner : runners_) runner->schedule_owned(plan, 0, plan.phase1_count());
    for_each_shard([barrier](ShardRunner& shard) { shard.run_until(barrier); });
  }
  std::vector<ShardBarrier> out;
  out.reserve(runners_.size());
  for (const auto& runner : runners_) out.push_back(snapshot_barrier(*runner));
  return out;
}

std::vector<ShardFinal> InProcessBackend::run_phase2(const CampaignPlan& plan,
                                                     std::size_t schedule_from, SimTime end) {
  if (scheduler_ == SchedulerMode::kSteal) {
    const std::size_t vp_count =
        runners_.front()->testbed().topology().vantage_points().size();
    const auto buckets =
        bucket_emissions_by_vp(plan, schedule_from, plan.emissions().size(), vp_count);
    std::vector<bool> include(buckets.size());
    for (std::size_t vp = 0; vp < buckets.size(); ++vp) include[vp] = !buckets[vp].empty();
    FlatMap<std::uint32_t, const VpCarry*> carry_of;
    for (const VpCarry& carry : carries_) carry_of[carry.vp_index] = &carry;
    VpWorkQueue queue(full_deal(buckets.size()),
                      static_cast<std::uint32_t>(runners_.size()),
                      bucket_weights(buckets), include, /*allow_steal=*/true);
    drain_queue(queue,
                [&](ShardRunner& shard, std::size_t vp) {
                  if (const VpCarry* const* carry =
                          carry_of.find(static_cast<std::uint32_t>(vp))) {
                    shard.adopt_carry(**carry);
                  }
                  shard.run_plan_vp(plan, buckets[vp], end);
                },
                end);
  } else {
    for (auto& runner : runners_) {
      runner->schedule_owned(plan, schedule_from, plan.emissions().size());
    }
    for_each_shard([end](ShardRunner& shard) { shard.run_until(end); });
  }
  std::vector<ShardFinal> out;
  out.reserve(runners_.size());
  for (const auto& runner : runners_) out.push_back(snapshot_final(*runner));
  return out;
}

std::uint64_t InProcessBackend::events_processed() {
  std::uint64_t total = 0;
  for (const auto& runner : runners_) total += runner->testbed().loop().processed();
  return total;
}

// -- MultiProcessBackend -----------------------------------------------------

namespace {

std::string resolve_worker_exe(std::string explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  if (const char* env = std::getenv("SHADOWPROBE_WORKER_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    throw std::runtime_error(
        "multiprocess backend: cannot resolve the worker binary (no explicit "
        "path, no SHADOWPROBE_WORKER_BIN, /proc/self/exe unreadable)");
  }
  buf[n] = '\0';
  return buf;
}

}  // namespace

MultiProcessBackend::MultiProcessBackend(const TestbedConfig& bed_config,
                                         const CampaignConfig& config, int shard_count,
                                         int proc_count, std::string worker_exe,
                                         SchedulerMode scheduler)
    : shard_count_(shard_count),
      scheduler_(scheduler),
      worker_exe_(resolve_worker_exe(std::move(worker_exe))) {
  if (::access(worker_exe_.c_str(), X_OK) != 0) {
    throw std::runtime_error("multiprocess backend: worker binary not executable: " +
                             worker_exe_);
  }
  int procs = std::clamp(proc_count, 1, shard_count);
  workers_.reserve(static_cast<std::size_t>(procs));
  try {
    for (int p = 0; p < procs; ++p) spawn(p, procs, bed_config);
    // Init goes out immediately so workers build their Worlds while the
    // controller sets up its own context.
    for (std::size_t p = 0; p < workers_.size(); ++p) {
      wire::InitMsg init;
      init.shard_count = static_cast<std::uint32_t>(shard_count_);
      init.proc_index = static_cast<std::uint32_t>(p);
      init.proc_count = static_cast<std::uint32_t>(workers_.size());
      init.scheduler = scheduler_;
      init.bed_config = bed_config;
      init.config = config;
      workers_[p].channel->send(wire::MsgType::kInit, 0, wire::encode_init(init));
    }
  } catch (...) {
    shutdown();
    throw;
  }
}

MultiProcessBackend::~MultiProcessBackend() { shutdown(); }

void MultiProcessBackend::spawn(int proc_index, int proc_count,
                                const TestbedConfig& bed_config) {
  (void)bed_config;
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw std::runtime_error(std::string("multiprocess backend: socketpair failed: ") +
                             std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw std::runtime_error(std::string("multiprocess backend: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: the socketpair end becomes stdin+stdout; stderr stays shared so
    // worker logs interleave with the controller's.
    ::dup2(sv[1], STDIN_FILENO);
    ::dup2(sv[1], STDOUT_FILENO);
    ::close(sv[0]);
    ::close(sv[1]);
    ::execl(worker_exe_.c_str(), worker_exe_.c_str(), "--shard-worker",
            static_cast<char*>(nullptr));
    // exec only returns on failure; stdout is the wire now, so report on
    // stderr and die with the conventional exec-failure status.
    ::fprintf(stderr, "shard worker: exec %s failed: %s\n", worker_exe_.c_str(),
              std::strerror(errno));
    ::_exit(127);
  }
  ::close(sv[1]);
  Worker worker;
  worker.pid = pid;
  worker.fd = sv[0];
  worker.channel = std::make_unique<wire::FrameChannel>(sv[0], sv[0]);
  for (int s = proc_index; s < shard_count_; s += proc_count) worker.owned.push_back(s);
  workers_.push_back(std::move(worker));
}

void MultiProcessBackend::broadcast(wire::MsgType type, BytesView payload) {
  for (Worker& worker : workers_) {
    try {
      worker.channel->send(type, 0, payload);
    } catch (const std::exception& e) {
      fail_worker(worker, e.what());
    }
  }
}

void MultiProcessBackend::fail_worker(Worker& worker, const std::string& what) {
  // Reap (or kill-then-reap) the child so the error message can include its
  // exit status — and so a wedged worker cannot outlive the failure.
  int status = 0;
  std::string exit_desc = "still running";
  pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
  if (reaped == 0) {
    ::kill(worker.pid, SIGKILL);
    reaped = ::waitpid(worker.pid, &status, 0);
    exit_desc = "killed after protocol failure";
  }
  if (reaped == worker.pid) {
    if (WIFEXITED(status)) {
      exit_desc = strprintf("exit status %d", WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      exit_desc = strprintf("killed by signal %d", WTERMSIG(status));
    }
  }
  pid_t pid = worker.pid;
  worker.pid = -1;  // already reaped; shutdown() must not wait again
  // One worker failing fails the campaign, so reap the *other* children and
  // close every socketpair end before surfacing the error — the caller gets
  // a clean process table (no zombies) and no leaked descriptors, whether or
  // not the backend is destroyed afterwards.
  shutdown();
  throw std::runtime_error(strprintf("shard worker (pid %d, %s): %s",
                                     static_cast<int>(pid), exit_desc.c_str(),
                                     what.c_str()));
}

wire::Frame MultiProcessBackend::expect(Worker& worker, wire::MsgType expected) {
  auto frame = worker.channel->recv();
  if (!frame.ok()) fail_worker(worker, frame.error().message);
  if (frame.value().type != expected) {
    fail_worker(worker, strprintf("unexpected message type %d (wanted %d)",
                                  static_cast<int>(frame.value().type),
                                  static_cast<int>(expected)));
  }
  return std::move(frame).take();
}

ShardScreening MultiProcessBackend::run_screening(std::size_t vp_count) {
  broadcast(wire::MsgType::kRunScreening, {});
  ShardScreening out;
  out.verdicts.assign(vp_count, ScreeningVerdict::kUsable);
  std::vector<bool> filled(vp_count, false);
  bool have_clock = false;
  for (Worker& worker : workers_) {
    wire::Frame frame = expect(worker, wire::MsgType::kScreeningVerdicts);
    auto msg = wire::decode_verdicts(frame.payload);
    if (!msg.ok()) fail_worker(worker, msg.error().message);
    if (!have_clock) {
      out.clock = msg.value().clock;
      have_clock = true;
    } else if (out.clock != msg.value().clock) {
      fail_worker(worker, strprintf("post-screening clock skew (%lld vs %lld)",
                                    static_cast<long long>(msg.value().clock),
                                    static_cast<long long>(out.clock)));
    }
    for (const auto& [vp, verdict] : msg.value().verdicts) {
      if (vp >= vp_count) fail_worker(worker, "verdict for out-of-range VP");
      if (filled[vp]) fail_worker(worker, "duplicate verdict for a VP");
      filled[vp] = true;
      out.verdicts[vp] = verdict;
    }
  }
  for (std::size_t i = 0; i < vp_count; ++i) {
    if (!filled[i]) {
      throw std::runtime_error(
          strprintf("multiprocess screening: no worker reported a verdict for VP %zu", i));
    }
  }
  return out;
}

std::vector<std::uint32_t> MultiProcessBackend::phase_deal(const CampaignPlan& plan,
                                                           std::size_t first,
                                                           std::size_t last) const {
  if (scheduler_ != SchedulerMode::kSteal) return {};
  // Weight-balance whole VPs across the shard bins (and therefore across the
  // worker processes the bins are dealt to): stealing evens load *within* a
  // process, but only the deal can move work between processes.
  return balanced_deal(bucket_weights(bucket_emissions_by_vp(plan, first, last, 0)),
                       static_cast<std::uint32_t>(shard_count_));
}

std::vector<ShardBarrier> MultiProcessBackend::run_phase1(const CampaignPlan& plan,
                                                          SimTime barrier) {
  ByteWriter w;
  wire::encode_plan(w, plan);
  wire::put_time(w, barrier);
  wire::put_u32_list(w, phase_deal(plan, 0, plan.phase1_count()));
  broadcast(wire::MsgType::kPhase1, std::move(w).take());

  ledgers_.assign(static_cast<std::size_t>(shard_count_), DecoyLedger{});
  hits_.assign(static_cast<std::size_t>(shard_count_), {});
  std::vector<ShardBarrier> out(static_cast<std::size_t>(shard_count_));
  carries_.clear();
  for (Worker& worker : workers_) {
    for (int shard : worker.owned) {
      wire::Frame frame = expect(worker, wire::MsgType::kBarrierShard);
      if (frame.shard_id != static_cast<std::uint32_t>(shard)) {
        fail_worker(worker, strprintf("barrier results for shard %u out of order "
                                      "(expected shard %d)",
                                      frame.shard_id, shard));
      }
      auto msg = wire::decode_barrier(frame.payload);
      if (!msg.ok()) fail_worker(worker, msg.error().message);
      auto& slot = out[static_cast<std::size_t>(shard)];
      ledgers_[static_cast<std::size_t>(shard)] = std::move(msg.value().ledger);
      hits_[static_cast<std::size_t>(shard)] = std::move(msg.value().hits);
      slot.ledger = &ledgers_[static_cast<std::size_t>(shard)];
      slot.hits = &hits_[static_cast<std::size_t>(shard)];
      slot.replicated = std::move(msg.value().replicated);
      slot.quarantined.assign(msg.value().quarantined.begin(),
                              msg.value().quarantined.end());
      slot.cancelled = std::move(msg.value().cancelled);
      // Each VP was executed by exactly one shard, so concatenating the
      // per-shard carry lists yields one carry per executed VP.
      carries_.insert(carries_.end(), msg.value().carries.begin(),
                      msg.value().carries.end());
    }
  }
  return out;
}

std::vector<ShardFinal> MultiProcessBackend::run_phase2(const CampaignPlan& plan,
                                                        std::size_t schedule_from,
                                                        SimTime end) {
  std::vector<PlanEmission> tail(plan.emissions().begin() +
                                     static_cast<std::ptrdiff_t>(schedule_from),
                                 plan.emissions().end());
  ByteWriter w;
  w.u64(schedule_from);
  wire::encode_emissions(w, tail);
  wire::put_time(w, end);
  wire::put_u32_list(w, phase_deal(plan, schedule_from, plan.emissions().size()));
  wire::put_carries(w, carries_);
  broadcast(wire::MsgType::kPhase2, std::move(w).take());

  ledgers_.assign(static_cast<std::size_t>(shard_count_), DecoyLedger{});
  hits_.assign(static_cast<std::size_t>(shard_count_), {});
  std::vector<ShardFinal> out(static_cast<std::size_t>(shard_count_));
  events_processed_ = 0;
  for (Worker& worker : workers_) {
    for (int shard : worker.owned) {
      wire::Frame frame = expect(worker, wire::MsgType::kFinalShard);
      if (frame.shard_id != static_cast<std::uint32_t>(shard)) {
        fail_worker(worker, strprintf("final results for shard %u out of order "
                                      "(expected shard %d)",
                                      frame.shard_id, shard));
      }
      auto msg = wire::decode_final(frame.payload);
      if (!msg.ok()) fail_worker(worker, msg.error().message);
      auto& slot = out[static_cast<std::size_t>(shard)];
      ledgers_[static_cast<std::size_t>(shard)] = std::move(msg.value().ledger);
      hits_[static_cast<std::size_t>(shard)] = std::move(msg.value().hits);
      slot.ledger = &ledgers_[static_cast<std::size_t>(shard)];
      slot.hits = &hits_[static_cast<std::size_t>(shard)];
      slot.replicated = std::move(msg.value().replicated);
      slot.hops = std::move(msg.value().hops);
      slot.stats = msg.value().stats;
      slot.net = std::move(msg.value().net);
      slot.coverage = std::move(msg.value().coverage);
      slot.steals_attempted = msg.value().steals_attempted;
      slot.steals_completed = msg.value().steals_completed;
      events_processed_ += slot.stats.processed;
    }
  }
  return out;
}

std::uint64_t MultiProcessBackend::events_processed() { return events_processed_; }

void MultiProcessBackend::shutdown() noexcept {
  // Closing the channel is the shutdown signal: workers see EOF and exit 0.
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) {
      ::close(worker.fd);
      worker.fd = -1;
      worker.channel.reset();
    }
  }
  for (Worker& worker : workers_) {
    if (worker.pid < 0) continue;
    int status = 0;
    // Grace period for a clean exit, then force.
    for (int i = 0; i < 200; ++i) {
      pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
      if (reaped == worker.pid) {
        worker.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (worker.pid >= 0) {
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, &status, 0);
      worker.pid = -1;
    }
  }
}

}  // namespace shadowprobe::core
