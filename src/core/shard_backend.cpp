#include "core/shard_backend.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/log.h"
#include "common/strutil.h"
#include "core/shard_worker.h"

namespace shadowprobe::core {

// -- InProcessBackend --------------------------------------------------------

InProcessBackend::InProcessBackend(const TestbedConfig& bed_config,
                                   std::shared_ptr<const World> world, int shard_count,
                                   const CampaignConfig& config,
                                   const ShardRunner::Decorator& decorate,
                                   SchedulerMode scheduler,
                                   std::vector<std::uint32_t> initial_deal)
    : config_(config),
      scheduler_(scheduler),
      initial_deal_(std::move(initial_deal)),
      steal_totals_(static_cast<std::size_t>(shard_count)) {
  // An out-of-range deal entry would leave a VP unowned under the static
  // schedule (and unclaimed under stealing); fold it back into range.
  for (std::uint32_t& shard : initial_deal_) {
    shard %= static_cast<std::uint32_t>(shard_count);
  }
  auto make_runner = [&](int i) {
    if (world != nullptr) {
      return std::make_unique<ShardRunner>(static_cast<std::uint32_t>(i),
                                           static_cast<std::uint32_t>(shard_count), world,
                                           config_, decorate);
    }
    return std::make_unique<ShardRunner>(static_cast<std::uint32_t>(i),
                                         static_cast<std::uint32_t>(shard_count), bed_config,
                                         config_, decorate);
  };
  runners_.resize(static_cast<std::size_t>(shard_count));
  if (shard_count == 1) {
    runners_[0] = make_runner(0);
    if (!initial_deal_.empty()) runners_[0]->set_deal(initial_deal_);
    return;
  }
  // Shards are independent — frozen instances only read the shared World —
  // so build them concurrently (slot-assigned, keeping the vector order and
  // everything keyed off shard index deterministic).
  std::vector<std::thread> builders;
  std::vector<std::exception_ptr> errors(runners_.size());
  builders.reserve(runners_.size());
  for (int i = 0; i < shard_count; ++i) {
    builders.emplace_back([&, i] {
      try {
        runners_[static_cast<std::size_t>(i)] = make_runner(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    });
  }
  for (std::thread& builder : builders) builder.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  if (!initial_deal_.empty()) {
    for (auto& runner : runners_) runner->set_deal(initial_deal_);
  }
}

InProcessBackend::~InProcessBackend() = default;

void InProcessBackend::for_each_shard(const std::function<void(ShardRunner&)>& fn) {
  if (runners_.size() == 1) {
    fn(*runners_.front());
    return;
  }
  std::vector<std::thread> workers;
  std::vector<std::exception_ptr> errors(runners_.size());
  workers.reserve(runners_.size());
  for (std::size_t i = 0; i < runners_.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        fn(*runners_[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::vector<std::uint32_t> InProcessBackend::full_deal(std::size_t vp_count) const {
  auto deal = round_robin_deal(vp_count, static_cast<std::uint32_t>(runners_.size()));
  for (std::size_t vp = 0; vp < initial_deal_.size() && vp < vp_count; ++vp) {
    if (initial_deal_[vp] < runners_.size()) deal[vp] = initial_deal_[vp];
  }
  return deal;
}

void InProcessBackend::drain_queue(
    VpWorkQueue& queue, const std::function<void(ShardRunner&, std::size_t)>& run_vp,
    SimTime deadline) {
  for_each_shard([&](ShardRunner& shard) {
    shard.begin_phase();
    for (int vp; (vp = queue.claim(shard.shard_index())) >= 0;) {
      run_vp(shard, static_cast<std::size_t>(vp));
    }
    // Drain leftovers (retry timers, exhibitor replays crossing the phase
    // boundary) and park every shard clock on the same deadline.
    shard.run_until(deadline);
  });
  for (std::size_t s = 0; s < runners_.size(); ++s) {
    const auto counters = queue.counters(static_cast<std::uint32_t>(s));
    steal_totals_[s].attempted += counters.attempted;
    steal_totals_[s].completed += counters.completed;
  }
}

ShardScreening InProcessBackend::run_screening(std::size_t vp_count) {
  ShardScreening out;
  out.verdicts.reserve(vp_count);
  if (scheduler_ == SchedulerMode::kSteal) {
    VpWorkQueue queue(full_deal(vp_count), static_cast<std::uint32_t>(runners_.size()),
                      {}, {}, /*allow_steal=*/true);
    const SimTime deadline = runners_.front()->testbed().loop().now() + kHour;
    drain_queue(queue,
                [](ShardRunner& shard, std::size_t vp) { shard.run_screening_vp(vp); },
                deadline);
    // Verdicts merge in global topology order, each read from the shard
    // that actually probed the VP (interception is observed executor-side).
    for (std::size_t i = 0; i < vp_count; ++i) {
      const std::uint32_t executor = queue.executors()[i];
      out.verdicts.push_back(runners_[executor]->verdict(i));
    }
  } else {
    for_each_shard([](ShardRunner& shard) { shard.run_screening(); });
    // Verdicts merge in global topology order — the order the serial
    // campaign iterates — each read from the shard that owns the VP.
    for (std::size_t i = 0; i < vp_count; ++i) {
      std::size_t owner = i % runners_.size();
      if (!runners_[owner]->owns_vp(i)) {
        for (owner = 0; !runners_[owner]->owns_vp(i); ++owner) {}
      }
      out.verdicts.push_back(runners_[owner]->verdict(i));
    }
  }
  out.clock = runners_.front()->testbed().loop().now();
  return out;
}

ShardBarrier InProcessBackend::snapshot_barrier(const ShardRunner& runner) const {
  ShardBarrier out;
  out.ledger = &runner.ledger();
  out.hits = &runner.hits();
  runner.replicated_seqs().for_each(
      [&out](std::uint32_t seq) { out.replicated.push_back(seq); });
  std::sort(out.replicated.begin(), out.replicated.end());
  runner.quarantined_vps().for_each(
      [&out](std::size_t vp_index, SimTime) { out.quarantined.push_back(vp_index); });
  std::sort(out.quarantined.begin(), out.quarantined.end());
  runner.cancelled_seqs().for_each(
      [&out](std::uint32_t seq) { out.cancelled.push_back(seq); });
  std::sort(out.cancelled.begin(), out.cancelled.end());
  return out;
}

ShardFinal InProcessBackend::snapshot_final(const ShardRunner& runner) const {
  ShardFinal out;
  out.ledger = &runner.ledger();
  out.hits = &runner.hits();
  runner.replicated_seqs().for_each(
      [&out](std::uint32_t seq) { out.replicated.push_back(seq); });
  std::sort(out.replicated.begin(), out.replicated.end());
  runner.hop_log().for_each([&out](std::uint32_t seq, net::Ipv4Addr hop) {
    out.hops.emplace_back(seq, hop);
  });
  std::sort(out.hops.begin(), out.hops.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.stats = runner.stats();
  out.net = runner.net_counters();
  if (config_.faults.enabled()) out.coverage = runner.coverage();
  out.steals_attempted = steal_totals_[runner.shard_index()].attempted;
  out.steals_completed = steal_totals_[runner.shard_index()].completed;
  return out;
}

std::vector<ShardBarrier> InProcessBackend::run_phase1(const CampaignPlan& plan,
                                                       SimTime barrier) {
  for (auto& runner : runners_) runner->adopt_plan(plan);
  if (scheduler_ == SchedulerMode::kSteal) {
    const std::size_t vp_count =
        runners_.front()->testbed().topology().vantage_points().size();
    const auto buckets = bucket_emissions_by_vp(plan, 0, plan.phase1_count(), vp_count);
    std::vector<bool> include(buckets.size());
    for (std::size_t vp = 0; vp < buckets.size(); ++vp) include[vp] = !buckets[vp].empty();
    VpWorkQueue queue(full_deal(buckets.size()),
                      static_cast<std::uint32_t>(runners_.size()),
                      bucket_weights(buckets), include, /*allow_steal=*/true);
    drain_queue(queue,
                [&](ShardRunner& shard, std::size_t vp) {
                  shard.run_plan_vp(plan, buckets[vp], barrier);
                },
                barrier);
    phase1_executors_ = queue.executors();
    // Export the fault-state carries here, at the post-grace barrier: every
    // Phase-I decoy's retry deadline has resolved by now, so the streak and
    // quarantine values are final and the Phase-II executor can adopt them.
    carries_.clear();
    if (config_.faults.enabled()) {
      for (std::size_t vp = 0; vp < phase1_executors_.size(); ++vp) {
        const std::uint32_t executor = phase1_executors_[vp];
        if (executor == kVpUnassigned) continue;
        carries_.push_back(runners_[executor]->export_carry(vp));
      }
    }
  } else {
    for (auto& runner : runners_) runner->schedule_owned(plan, 0, plan.phase1_count());
    for_each_shard([barrier](ShardRunner& shard) { shard.run_until(barrier); });
  }
  std::vector<ShardBarrier> out;
  out.reserve(runners_.size());
  for (const auto& runner : runners_) out.push_back(snapshot_barrier(*runner));
  return out;
}

std::vector<ShardFinal> InProcessBackend::run_phase2(const CampaignPlan& plan,
                                                     std::size_t schedule_from, SimTime end) {
  if (scheduler_ == SchedulerMode::kSteal) {
    const std::size_t vp_count =
        runners_.front()->testbed().topology().vantage_points().size();
    const auto buckets =
        bucket_emissions_by_vp(plan, schedule_from, plan.emissions().size(), vp_count);
    std::vector<bool> include(buckets.size());
    for (std::size_t vp = 0; vp < buckets.size(); ++vp) include[vp] = !buckets[vp].empty();
    FlatMap<std::uint32_t, const VpCarry*> carry_of;
    for (const VpCarry& carry : carries_) carry_of[carry.vp_index] = &carry;
    VpWorkQueue queue(full_deal(buckets.size()),
                      static_cast<std::uint32_t>(runners_.size()),
                      bucket_weights(buckets), include, /*allow_steal=*/true);
    drain_queue(queue,
                [&](ShardRunner& shard, std::size_t vp) {
                  if (const VpCarry* const* carry =
                          carry_of.find(static_cast<std::uint32_t>(vp))) {
                    shard.adopt_carry(**carry);
                  }
                  shard.run_plan_vp(plan, buckets[vp], end);
                },
                end);
  } else {
    for (auto& runner : runners_) {
      runner->schedule_owned(plan, schedule_from, plan.emissions().size());
    }
    for_each_shard([end](ShardRunner& shard) { shard.run_until(end); });
  }
  std::vector<ShardFinal> out;
  out.reserve(runners_.size());
  for (const auto& runner : runners_) out.push_back(snapshot_final(*runner));
  return out;
}

std::uint64_t InProcessBackend::events_processed() {
  std::uint64_t total = 0;
  for (const auto& runner : runners_) total += runner->testbed().loop().processed();
  return total;
}

// -- MultiProcessBackend -----------------------------------------------------

namespace {

std::string resolve_worker_exe(std::string explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  if (const char* env = std::getenv("SHADOWPROBE_WORKER_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    throw std::runtime_error(
        "multiprocess backend: cannot resolve the worker binary (no explicit "
        "path, no SHADOWPROBE_WORKER_BIN, /proc/self/exe unreadable)");
  }
  buf[n] = '\0';
  return buf;
}

}  // namespace

MultiProcessBackend::MultiProcessBackend(const TestbedConfig& bed_config,
                                         const CampaignConfig& config, int shard_count,
                                         int proc_count, std::string worker_exe,
                                         SchedulerMode scheduler,
                                         ShardRunner::Decorator decorate,
                                         SupervisionConfig supervision)
    : shard_count_(shard_count),
      scheduler_(scheduler),
      worker_exe_(resolve_worker_exe(std::move(worker_exe))),
      bed_config_(bed_config),
      config_(config),
      decorate_(std::move(decorate)),
      sup_(supervision) {
  if (::access(worker_exe_.c_str(), X_OK) != 0) {
    throw std::runtime_error("multiprocess backend: worker binary not executable: " +
                             worker_exe_);
  }
  int procs = std::clamp(proc_count, 1, shard_count);
  workers_.reserve(static_cast<std::size_t>(procs));
  try {
    for (int p = 0; p < procs; ++p) {
      Worker worker;
      worker.proc_index = p;
      worker.respawns_left = std::max(0, sup_.worker_retries);
      for (int s = p; s < shard_count_; s += procs) worker.owned.push_back(s);
      workers_.push_back(std::move(worker));
      spawn_process(workers_.back());
    }
  } catch (...) {
    shutdown();
    throw;
  }
  // Init goes out immediately so workers build their Worlds while the
  // controller sets up its own context. A worker already gone (it crashed
  // the moment it started) is a supervision event, not a constructor
  // failure.
  for (Worker& worker : workers_) {
    try {
      send_init(worker);
    } catch (const std::exception& e) {
      lose_worker(worker, e.what());
    }
  }
}

MultiProcessBackend::~MultiProcessBackend() { shutdown(); }

void MultiProcessBackend::spawn_process(Worker& w) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw std::runtime_error(std::string("multiprocess backend: socketpair failed: ") +
                             std::strerror(errno));
  }
  // argv is assembled before fork: no allocation between fork and exec.
  const std::string gen_arg = strprintf("%d", w.spawn_gen);
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw std::runtime_error(std::string("multiprocess backend: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: the socketpair end becomes stdin+stdout; stderr stays shared so
    // worker logs interleave with the controller's.
    ::dup2(sv[1], STDIN_FILENO);
    ::dup2(sv[1], STDOUT_FILENO);
    ::close(sv[0]);
    ::close(sv[1]);
    ::execl(worker_exe_.c_str(), worker_exe_.c_str(), "--shard-worker", "--spawn-gen",
            gen_arg.c_str(), static_cast<char*>(nullptr));
    // exec only returns on failure; stdout is the wire now, so report on
    // stderr and die with the conventional exec-failure status.
    ::fprintf(stderr, "shard worker: exec %s failed: %s\n", worker_exe_.c_str(),
              std::strerror(errno));
    ::_exit(127);
  }
  ::close(sv[1]);
  w.pid = pid;
  w.fd = sv[0];
  w.channel = std::make_unique<wire::FrameChannel>(sv[0], sv[0]);
  w.degraded = false;
  w.last_heard = std::chrono::steady_clock::now();
}

void MultiProcessBackend::spawn_degraded(Worker& w) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    fatal(std::string("degraded worker socketpair failed: ") + std::strerror(errno));
  }
  w.pid = -1;
  w.fd = sv[0];
  w.channel = std::make_unique<wire::FrameChannel>(sv[0], sv[0]);
  w.degraded = true;
  w.last_heard = std::chrono::steady_clock::now();
  const int child_fd = sv[1];
  ShardWorkerOptions options;
  // Never re-arm the test fault that exhausted the budget, and reuse the
  // controller's World when it shared one.
  options.enable_test_faults = false;
  options.spawn_gen = w.spawn_gen;
  options.world = fallback_world_;
  w.thread = std::thread([child_fd, options, decorate = decorate_] {
    run_shard_worker(child_fd, child_fd, decorate, options);
    ::close(child_fd);
  });
}

void MultiProcessBackend::send_init(Worker& w) {
  wire::InitMsg init;
  init.shard_count = static_cast<std::uint32_t>(shard_count_);
  init.proc_index = static_cast<std::uint32_t>(w.proc_index);
  init.proc_count = static_cast<std::uint32_t>(workers_.size());
  init.scheduler = scheduler_;
  init.heartbeat_ms = static_cast<std::uint32_t>(std::max(0, sup_.heartbeat_ms));
  init.bed_config = bed_config_;
  init.config = config_;
  w.channel->send(wire::MsgType::kInit, 0, wire::encode_init(init));
}

std::string MultiProcessBackend::reap(Worker& w) noexcept {
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  w.channel.reset();
  if (w.thread.joinable()) {
    // Degraded worker: closing our channel end gave it EOF; it returns.
    w.thread.join();
    return "degraded thread joined";
  }
  if (w.pid < 0) return "no process";
  int status = 0;
  std::string exit_desc = "reaped";
  pid_t reaped = ::waitpid(w.pid, &status, WNOHANG);
  if (reaped == 0) {
    // Still running (stalled, or healthy-but-corrupt): force it down.
    ::kill(w.pid, SIGKILL);
    reaped = ::waitpid(w.pid, &status, 0);
    exit_desc = "killed by supervisor";
  }
  if (reaped == w.pid) {
    if (WIFEXITED(status)) {
      exit_desc = strprintf("exit status %d", WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      exit_desc = strprintf("killed by signal %d", WTERMSIG(status));
    }
  }
  w.pid = -1;
  return exit_desc;
}

void MultiProcessBackend::lose_worker(Worker& w, const std::string& why) {
  const bool was_degraded = w.degraded;
  const pid_t pid = w.pid;
  const std::string exit_desc = reap(w);
  if (was_degraded) {
    // The in-process fallback executes the same code as InProcessBackend;
    // its failure is a campaign bug, not an environment hazard. No further
    // rung on the ladder.
    fatal(strprintf("degraded worker %d failed: %s", w.proc_index, why.c_str()));
  }
  ++sup_stats_.workers_lost;
  sup_stats_.shards_retried += w.owned.size();
  SP_LOG_WARN(strprintf("supervisor: lost worker %d (pid %d, %s): %s — %zu shard(s) to "
                        "re-dispatch, %d respawn(s) left",
                        w.proc_index, static_cast<int>(pid), exit_desc.c_str(),
                        why.c_str(), w.owned.size(), w.respawns_left));
  bool respawned = false;
  while (w.respawns_left > 0 && !respawned) {
    const int attempt = std::max(0, sup_.worker_retries) - w.respawns_left;
    --w.respawns_left;
    const int backoff =
        std::min(2000, std::max(1, sup_.backoff_base_ms) << std::min(attempt, 10));
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    ++w.spawn_gen;
    try {
      spawn_process(w);
      respawned = true;
      ++sup_stats_.workers_respawned;
      SP_LOG_INFO(strprintf("supervisor: respawned worker %d (pid %d, generation %d)",
                            w.proc_index, static_cast<int>(w.pid), w.spawn_gen));
    } catch (const std::exception& e) {
      SP_LOG_WARN(strprintf("supervisor: respawn of worker %d failed: %s", w.proc_index,
                            e.what()));
    }
  }
  if (!respawned) {
    ++w.spawn_gen;
    spawn_degraded(w);
    ++sup_stats_.workers_degraded;
    SP_LOG_WARN(strprintf("supervisor: worker %d degraded to in-process execution "
                          "(respawn budget exhausted)",
                          w.proc_index));
  }
  replay(w);
}

wire::Frame MultiProcessBackend::await_frame(Worker& w, wire::MsgType type,
                                             std::uint32_t shard_id) {
  const int timeout = sup_.heartbeat_ms > 0 ? sup_.stall_timeout_ms : -1;
  for (;;) {
    auto frame = w.channel->recv(timeout);
    if (!frame.ok()) throw std::runtime_error(frame.error().message);
    w.last_heard = std::chrono::steady_clock::now();
    if (frame.value().type == wire::MsgType::kHeartbeat) {
      auto hb = wire::decode_heartbeat(frame.value().payload);
      if (!hb.ok()) throw std::runtime_error(hb.error().message);
      if (hb.value().proc_index != static_cast<std::uint32_t>(w.proc_index)) {
        throw std::runtime_error("heartbeat from wrong proc index");
      }
      continue;
    }
    if (frame.value().type != type || frame.value().shard_id != shard_id) {
      throw std::runtime_error(strprintf(
          "unexpected message (type %d shard %u, wanted type %d shard %u)",
          static_cast<int>(frame.value().type), frame.value().shard_id,
          static_cast<int>(type), shard_id));
    }
    return std::move(frame).take();
  }
}

void MultiProcessBackend::record_result(Worker& w, const wire::Frame& frame, bool record) {
  switch (frame.type) {
    case wire::MsgType::kScreeningVerdicts: {
      auto msg = wire::decode_verdicts(frame.payload);
      if (!msg.ok()) throw std::runtime_error(msg.error().message);
      if (record) {
        verdict_msgs_[static_cast<std::size_t>(w.proc_index)] = std::move(msg).take();
        verdict_filled_[static_cast<std::size_t>(w.proc_index)] = true;
      }
      return;
    }
    case wire::MsgType::kBarrierShard: {
      auto msg = wire::decode_barrier(frame.payload);
      if (!msg.ok()) throw std::runtime_error(msg.error().message);
      if (record) barrier_msgs_[frame.shard_id] = std::move(msg).take();
      return;
    }
    case wire::MsgType::kFinalShard: {
      auto msg = wire::decode_final(frame.payload);
      if (!msg.ok()) throw std::runtime_error(msg.error().message);
      if (record) final_msgs_[frame.shard_id] = std::move(msg).take();
      return;
    }
    default:
      throw std::runtime_error(strprintf("unexpected result message type %d",
                                         static_cast<int>(frame.type)));
  }
}

void MultiProcessBackend::replay(Worker& w) {
  w.script.clear();
  try {
    send_init(w);
    // The replacement re-executes every issued phase in order — shard state
    // is cumulative, so there is no shortcut to the in-flight phase. Each
    // command is sent and its results consumed *synchronously*: queueing all
    // commands at once could deadlock both ends on full socket buffers.
    // Results for phases the controller already merged are validated and
    // dropped; re-execution is byte-identical (plan-preassigned ids,
    // entity-keyed RNG), so recording the in-flight phase wholesale recovers
    // exactly the lost worker's contribution.
    if (screening_sent_) {
      w.channel->send(wire::MsgType::kRunScreening, 0, {});
      wire::Frame frame = await_frame(w, wire::MsgType::kScreeningVerdicts, 0);
      record_result(w, frame, current_ == Phase::kScreening);
    }
    if (phase1_sent_) {
      w.channel->send(wire::MsgType::kPhase1, 0, phase1_payload_);
      for (int shard : w.owned) {
        wire::Frame frame = await_frame(w, wire::MsgType::kBarrierShard,
                                        static_cast<std::uint32_t>(shard));
        record_result(w, frame, current_ == Phase::kPhase1);
      }
    }
    if (phase2_sent_) {
      w.channel->send(wire::MsgType::kPhase2, 0, phase2_payload_);
      for (int shard : w.owned) {
        wire::Frame frame = await_frame(w, wire::MsgType::kFinalShard,
                                        static_cast<std::uint32_t>(shard));
        record_result(w, frame, current_ == Phase::kPhase2);
      }
    }
  } catch (const std::exception& e) {
    // The replacement failed too; burn another retry (bounded by the
    // budget, then the degraded rung, then fatal).
    lose_worker(w, e.what());
  }
}

void MultiProcessBackend::dispatch(wire::MsgType type, BytesView payload) {
  for (Worker& worker : workers_) {
    try {
      worker.channel->send(type, 0, payload);
    } catch (const std::exception& e) {
      // EPIPE to a dead child (or any send failure): lose_worker replays the
      // whole history including this phase, so no expectations are queued.
      lose_worker(worker, e.what());
      continue;
    }
    switch (current_) {
      case Phase::kScreening:
        worker.script.push_back({wire::MsgType::kScreeningVerdicts, 0, true});
        break;
      case Phase::kPhase1:
        for (int shard : worker.owned) {
          worker.script.push_back(
              {wire::MsgType::kBarrierShard, static_cast<std::uint32_t>(shard), true});
        }
        break;
      case Phase::kPhase2:
        for (int shard : worker.owned) {
          worker.script.push_back(
              {wire::MsgType::kFinalShard, static_cast<std::uint32_t>(shard), true});
        }
        break;
      case Phase::kIdle:
        break;
    }
  }
}

void MultiProcessBackend::consume_expected(Worker& w, const wire::Frame& frame) {
  if (frame.type == wire::MsgType::kHeartbeat) {
    auto hb = wire::decode_heartbeat(frame.payload);
    if (!hb.ok()) throw std::runtime_error(hb.error().message);
    if (hb.value().proc_index != static_cast<std::uint32_t>(w.proc_index)) {
      throw std::runtime_error("heartbeat from wrong proc index");
    }
    return;
  }
  if (w.script.empty()) {
    throw std::runtime_error(strprintf("unsolicited message type %d",
                                       static_cast<int>(frame.type)));
  }
  const Expect want = w.script.front();
  if (frame.type != want.type || frame.shard_id != want.shard_id) {
    throw std::runtime_error(strprintf(
        "unexpected message (type %d shard %u, wanted type %d shard %u)",
        static_cast<int>(frame.type), frame.shard_id, static_cast<int>(want.type),
        want.shard_id));
  }
  record_result(w, frame, want.record);
  w.script.pop_front();
}

void MultiProcessBackend::collect() {
  const bool stall_detection = sup_.heartbeat_ms > 0;
  const auto stall_after = std::chrono::milliseconds(std::max(1, sup_.stall_timeout_ms));
  for (;;) {
    std::vector<struct pollfd> pfds;
    std::vector<std::size_t> slots;
    for (std::size_t p = 0; p < workers_.size(); ++p) {
      if (workers_[p].script.empty()) continue;
      pfds.push_back({workers_[p].fd, POLLIN, 0});
      slots.push_back(p);
    }
    if (pfds.empty()) return;
    int timeout = -1;
    const auto now = std::chrono::steady_clock::now();
    if (stall_detection) {
      auto nearest = stall_after;
      for (std::size_t p : slots) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
            now - workers_[p].last_heard);
        nearest = std::min(nearest, stall_after - std::min(elapsed, stall_after));
      }
      timeout = std::max<int>(10, static_cast<int>(nearest.count()));
    }
    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      fatal(std::string("supervisor poll failed: ") + std::strerror(errno));
    }
    bool lost_one = false;
    for (std::size_t i = 0; i < pfds.size() && !lost_one; ++i) {
      Worker& w = workers_[slots[i]];
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      // Readable: one bounded recv. The timeout guards the frame's *tail* —
      // a peer that stops writing mid-frame is a stall, not a hang.
      auto frame = w.channel->recv(stall_detection ? sup_.stall_timeout_ms : -1);
      if (!frame.ok()) {
        // Death (EOF), corruption (CRC/framing), or a mid-frame stall: all
        // recovered the same way. lose_worker rebuilds the slot and empties
        // its script, so restart the poll set from scratch.
        lose_worker(w, frame.error().message);
        lost_one = true;
        break;
      }
      w.last_heard = std::chrono::steady_clock::now();
      try {
        consume_expected(w, frame.value());
      } catch (const std::exception& e) {
        lose_worker(w, e.what());
        lost_one = true;
      }
    }
    if (lost_one || !stall_detection) continue;
    // Anyone silent past the stall budget — and not merely waiting behind a
    // busy controller (their fd would be readable with queued heartbeats) —
    // is wedged.
    const auto after = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      Worker& w = workers_[slots[i]];
      if (w.script.empty()) continue;
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) continue;
      if (after - w.last_heard >= stall_after) {
        lose_worker(w, strprintf("stalled (no heartbeat for %d ms)",
                                 sup_.stall_timeout_ms));
        break;  // poll set changed; rebuild
      }
    }
  }
}

void MultiProcessBackend::fatal(const std::string& what) {
  // Reap every child and close every socketpair end before surfacing the
  // error — the caller gets a clean process table (no zombies) and no
  // leaked descriptors, whether or not the backend is destroyed afterwards.
  shutdown();
  throw std::runtime_error("multiprocess backend: " + what);
}

ShardScreening MultiProcessBackend::run_screening(std::size_t vp_count) {
  current_ = Phase::kScreening;
  screening_sent_ = true;
  verdict_msgs_.assign(workers_.size(), {});
  verdict_filled_.assign(workers_.size(), false);
  dispatch(wire::MsgType::kRunScreening, {});
  collect();
  ShardScreening out;
  out.verdicts.assign(vp_count, ScreeningVerdict::kUsable);
  std::vector<bool> filled(vp_count, false);
  bool have_clock = false;
  for (std::size_t p = 0; p < workers_.size(); ++p) {
    if (!verdict_filled_[p]) {
      fatal(strprintf("no screening verdicts recorded for worker %zu", p));
    }
    const wire::VerdictsMsg& msg = verdict_msgs_[p];
    // Cross-worker inconsistencies survive any number of retries (the
    // re-execution is deterministic), so they stay fatal.
    if (!have_clock) {
      out.clock = msg.clock;
      have_clock = true;
    } else if (out.clock != msg.clock) {
      fatal(strprintf("post-screening clock skew (%lld vs %lld)",
                      static_cast<long long>(msg.clock),
                      static_cast<long long>(out.clock)));
    }
    for (const auto& [vp, verdict] : msg.verdicts) {
      if (vp >= vp_count) fatal("verdict for out-of-range VP");
      if (filled[vp]) fatal("duplicate verdict for a VP");
      filled[vp] = true;
      out.verdicts[vp] = verdict;
    }
  }
  for (std::size_t i = 0; i < vp_count; ++i) {
    if (!filled[i]) {
      fatal(strprintf("screening: no worker reported a verdict for VP %zu", i));
    }
  }
  current_ = Phase::kIdle;
  return out;
}

std::vector<std::uint32_t> MultiProcessBackend::phase_deal(const CampaignPlan& plan,
                                                           std::size_t first,
                                                           std::size_t last) const {
  if (scheduler_ != SchedulerMode::kSteal) return {};
  // Weight-balance whole VPs across the shard bins (and therefore across the
  // worker processes the bins are dealt to): stealing evens load *within* a
  // process, but only the deal can move work between processes.
  return balanced_deal(bucket_weights(bucket_emissions_by_vp(plan, first, last, 0)),
                       static_cast<std::uint32_t>(shard_count_));
}

std::vector<ShardBarrier> MultiProcessBackend::run_phase1(const CampaignPlan& plan,
                                                          SimTime barrier) {
  ByteWriter w;
  wire::encode_plan(w, plan);
  wire::put_time(w, barrier);
  wire::put_u32_list(w, phase_deal(plan, 0, plan.phase1_count()));
  // The exact payload is kept: a replacement worker must replay the same
  // plan/deal bytes or its re-execution would diverge.
  phase1_payload_ = std::move(w).take();
  current_ = Phase::kPhase1;
  phase1_sent_ = true;
  barrier_msgs_.assign(static_cast<std::size_t>(shard_count_), {});
  dispatch(wire::MsgType::kPhase1, phase1_payload_);
  collect();

  std::vector<ShardBarrier> out(static_cast<std::size_t>(shard_count_));
  carries_.clear();
  for (std::size_t shard = 0; shard < barrier_msgs_.size(); ++shard) {
    wire::BarrierMsg& msg = barrier_msgs_[shard];
    auto& slot = out[shard];
    slot.ledger = &msg.ledger;
    slot.hits = &msg.hits;
    slot.replicated = std::move(msg.replicated);
    slot.quarantined.assign(msg.quarantined.begin(), msg.quarantined.end());
    slot.cancelled = std::move(msg.cancelled);
    // Each VP was executed by exactly one shard, so concatenating the
    // per-shard carry lists (in shard order — deterministic regardless of
    // worker layout or recovery history) yields one carry per executed VP.
    carries_.insert(carries_.end(), msg.carries.begin(), msg.carries.end());
  }
  current_ = Phase::kIdle;
  return out;
}

std::vector<ShardFinal> MultiProcessBackend::run_phase2(const CampaignPlan& plan,
                                                        std::size_t schedule_from,
                                                        SimTime end) {
  std::vector<PlanEmission> tail(plan.emissions().begin() +
                                     static_cast<std::ptrdiff_t>(schedule_from),
                                 plan.emissions().end());
  ByteWriter w;
  w.u64(schedule_from);
  wire::encode_emissions(w, tail);
  wire::put_time(w, end);
  wire::put_u32_list(w, phase_deal(plan, schedule_from, plan.emissions().size()));
  wire::put_carries(w, carries_);
  phase2_payload_ = std::move(w).take();
  current_ = Phase::kPhase2;
  phase2_sent_ = true;
  final_msgs_.assign(static_cast<std::size_t>(shard_count_), {});
  dispatch(wire::MsgType::kPhase2, phase2_payload_);
  collect();

  std::vector<ShardFinal> out(static_cast<std::size_t>(shard_count_));
  events_processed_ = 0;
  for (std::size_t shard = 0; shard < final_msgs_.size(); ++shard) {
    wire::FinalMsg& msg = final_msgs_[shard];
    auto& slot = out[shard];
    slot.ledger = &msg.ledger;
    slot.hits = &msg.hits;
    slot.replicated = std::move(msg.replicated);
    slot.hops = std::move(msg.hops);
    slot.stats = msg.stats;
    slot.net = std::move(msg.net);
    slot.coverage = std::move(msg.coverage);
    slot.steals_attempted = msg.steals_attempted;
    slot.steals_completed = msg.steals_completed;
    events_processed_ += slot.stats.processed;
  }
  current_ = Phase::kIdle;
  return out;
}

std::uint64_t MultiProcessBackend::events_processed() { return events_processed_; }

void MultiProcessBackend::shutdown() noexcept {
  // Closing the channel is the shutdown signal: workers see EOF and exit 0.
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) {
      ::close(worker.fd);
      worker.fd = -1;
      worker.channel.reset();
    }
  }
  // Degraded in-process workers exit their loop on that same EOF.
  for (Worker& worker : workers_) {
    if (worker.thread.joinable()) worker.thread.join();
  }
  for (Worker& worker : workers_) {
    if (worker.pid < 0) continue;
    int status = 0;
    // Grace period for a clean exit, then force.
    for (int i = 0; i < 200; ++i) {
      pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
      if (reaped == worker.pid) {
        worker.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (worker.pid >= 0) {
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, &status, 0);
      worker.pid = -1;
    }
  }
}

}  // namespace shadowprobe::core
