#include "core/ledger.h"

#include <algorithm>

namespace shadowprobe::core {

void DecoyLedger::set_shard(std::uint32_t shard_index) {
  if (shard_index > kMaxShards - 1) shard_index = kMaxShards - 1;
  shard_tag_ = (shard_index + 1) << kShardShift;
}

std::uint32_t DecoyLedger::alloc_path_id() {
  std::uint32_t id = shard_tag_ | (next_local_path_++ & kLocalIdMask);
  while (path_index_.contains(id)) id = shard_tag_ | (next_local_path_++ & kLocalIdMask);
  return id;
}

std::uint32_t DecoyLedger::alloc_seq() {
  std::uint32_t seq = shard_tag_ | (next_local_seq_++ & kLocalIdMask);
  while (seq_index_.contains(seq)) seq = shard_tag_ | (next_local_seq_++ & kLocalIdMask);
  return seq;
}

std::uint32_t DecoyLedger::add_path(PathRecord path) {
  path.path_id = alloc_path_id();
  path_index_[path.path_id] = paths_.size();
  paths_.push_back(std::move(path));
  return paths_.back().path_id;
}

void DecoyLedger::seed_paths(const std::vector<PathRecord>& paths) {
  paths_.reserve(paths_.size() + paths.size());
  path_index_.reserve(paths_.size() + paths.size());
  for (const PathRecord& path : paths) {
    path_index_[path.path_id] = paths_.size();
    paths_.push_back(path);
    // Keep the auto-allocator clear of the seeded range.
    if ((path.path_id & ~kLocalIdMask) == shard_tag_) {
      next_local_path_ = std::max(next_local_path_, (path.path_id & kLocalIdMask) + 1);
    }
  }
}

const PathRecord& DecoyLedger::path(std::uint32_t path_id) const {
  return paths_.at(path_index_.at(path_id));
}

DecoyRecord& DecoyLedger::insert_decoy(std::uint32_t seq, std::uint32_t path_id, SimTime now,
                                       net::Ipv4Addr vp_addr, net::Ipv4Addr dst_addr,
                                       DecoyProtocol protocol, std::uint8_t ttl,
                                       bool phase2) {
  DecoyRecord record;
  record.id.seq = seq;
  record.id.time_sec = static_cast<std::uint32_t>(now / kSecond);
  record.id.vp = vp_addr;
  record.id.dst = dst_addr;
  record.id.ttl = ttl;
  record.id.protocol = protocol;
  record.domain = decoy_domain(record.id);
  record.sent = now;
  record.path_id = path_id;
  record.phase2 = phase2;
  seq_index_[seq] = decoys_.size();
  decoys_.push_back(std::move(record));
  return decoys_.back();
}

DecoyRecord& DecoyLedger::create(std::uint32_t path_id, SimTime now, net::Ipv4Addr vp_addr,
                                 net::Ipv4Addr dst_addr, DecoyProtocol protocol,
                                 std::uint8_t ttl, bool phase2) {
  return insert_decoy(alloc_seq(), path_id, now, vp_addr, dst_addr, protocol, ttl, phase2);
}

DecoyRecord& DecoyLedger::create_preassigned(std::uint32_t seq, std::uint32_t path_id,
                                             SimTime now, net::Ipv4Addr vp_addr,
                                             net::Ipv4Addr dst_addr, DecoyProtocol protocol,
                                             std::uint8_t ttl, bool phase2) {
  return insert_decoy(seq, path_id, now, vp_addr, dst_addr, protocol, ttl, phase2);
}

bool DecoyLedger::restore_decoy(const DecoyRecord& record) {
  if (seq_index_.contains(record.id.seq)) return false;
  seq_index_[record.id.seq] = decoys_.size();
  decoys_.push_back(record);
  return true;
}

DecoyRecord* DecoyLedger::by_seq(std::uint32_t seq) {
  const std::size_t* idx = seq_index_.find(seq);
  return idx == nullptr ? nullptr : &decoys_[*idx];
}

const DecoyRecord* DecoyLedger::by_seq(std::uint32_t seq) const {
  const std::size_t* idx = seq_index_.find(seq);
  return idx == nullptr ? nullptr : &decoys_[*idx];
}

void DecoyLedger::mark_response(std::uint32_t seq, SimTime when) {
  if (DecoyRecord* record = by_seq(seq)) {
    if (!record->dest_responded) {
      record->dest_responded = true;
      record->response_time = when;
    }
  }
}

DecoyLedger::MergeStats DecoyLedger::merge(const DecoyLedger& other) {
  MergeStats stats;
  // Path table first: remember per-id remaps so decoys can follow.
  FlatMap<std::uint32_t, std::uint32_t> path_remap;
  for (const PathRecord& theirs : other.paths_) {
    const std::size_t* mine = path_index_.find(theirs.path_id);
    if (mine != nullptr) {
      if (paths_[*mine].same_path(theirs)) continue;  // identical seeded path
      // Collision with a different path: find the smallest free id.
      std::uint32_t fresh = theirs.path_id;
      while (path_index_.contains(fresh)) ++fresh;
      path_remap[theirs.path_id] = fresh;
      ++stats.remapped_paths;
      PathRecord copy = theirs;
      copy.path_id = fresh;
      path_index_[fresh] = paths_.size();
      paths_.push_back(std::move(copy));
    } else {
      path_index_[theirs.path_id] = paths_.size();
      paths_.push_back(theirs);
    }
    ++stats.merged_paths;
  }
  for (const DecoyRecord& theirs : other.decoys_) {
    DecoyRecord copy = theirs;
    if (const std::uint32_t* remap = path_remap.find(copy.path_id)) {
      copy.path_id = *remap;
    }
    const std::size_t* mine = seq_index_.find(copy.id.seq);
    if (mine != nullptr) {
      if (decoys_[*mine].id == copy.id) continue;  // exact duplicate
      std::uint32_t fresh = copy.id.seq;
      while (seq_index_.contains(fresh)) ++fresh;
      // The as-emitted domain is kept: the old label already left the wire.
      copy.id.seq = fresh;
      ++stats.remapped_seqs;
    }
    seq_index_[copy.id.seq] = decoys_.size();
    decoys_.push_back(std::move(copy));
    ++stats.merged_decoys;
  }
  return stats;
}

void DecoyLedger::rebind_vps(const std::vector<topo::VantagePoint>& vps) {
  for (PathRecord& path : paths_) {
    if (path.vp_index >= 0 && static_cast<std::size_t>(path.vp_index) < vps.size()) {
      path.vp = &vps[static_cast<std::size_t>(path.vp_index)];
    }
  }
}

void DecoyLedger::finalize() {
  std::sort(paths_.begin(), paths_.end(),
            [](const PathRecord& a, const PathRecord& b) { return a.path_id < b.path_id; });
  std::sort(decoys_.begin(), decoys_.end(),
            [](const DecoyRecord& a, const DecoyRecord& b) { return a.id.seq < b.id.seq; });
  path_index_.clear();
  seq_index_.clear();
  path_index_.reserve(paths_.size());
  seq_index_.reserve(decoys_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) path_index_[paths_[i].path_id] = i;
  for (std::size_t i = 0; i < decoys_.size(); ++i) seq_index_[decoys_[i].id.seq] = i;
}

}  // namespace shadowprobe::core
