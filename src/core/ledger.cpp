#include "core/ledger.h"

namespace shadowprobe::core {

std::uint32_t DecoyLedger::add_path(PathRecord path) {
  path.path_id = static_cast<std::uint32_t>(paths_.size());
  paths_.push_back(std::move(path));
  return paths_.back().path_id;
}

DecoyRecord& DecoyLedger::create(std::uint32_t path_id, SimTime now, net::Ipv4Addr vp_addr,
                                 net::Ipv4Addr dst_addr, DecoyProtocol protocol,
                                 std::uint8_t ttl, bool phase2) {
  DecoyRecord record;
  record.id.seq = static_cast<std::uint32_t>(decoys_.size());
  record.id.time_sec = static_cast<std::uint32_t>(now / kSecond);
  record.id.vp = vp_addr;
  record.id.dst = dst_addr;
  record.id.ttl = ttl;
  record.id.protocol = protocol;
  record.domain = decoy_domain(record.id);
  record.sent = now;
  record.path_id = path_id;
  record.phase2 = phase2;
  decoys_.push_back(std::move(record));
  return decoys_.back();
}

DecoyRecord* DecoyLedger::by_seq(std::uint32_t seq) {
  if (seq >= decoys_.size()) return nullptr;
  return &decoys_[seq];
}

const DecoyRecord* DecoyLedger::by_seq(std::uint32_t seq) const {
  if (seq >= decoys_.size()) return nullptr;
  return &decoys_[seq];
}

void DecoyLedger::mark_response(std::uint32_t seq, SimTime when) {
  if (DecoyRecord* record = by_seq(seq)) {
    if (!record->dest_responded) {
      record->dest_responded = true;
      record->response_time = when;
    }
  }
}

}  // namespace shadowprobe::core
