// Correlator: joins honeypot hits with the decoy ledger and classifies
// unsolicited requests.
//
// Implements the paper's three criteria (Section 3, Phase I): an incoming
// request bearing decoy data is unsolicited if
//   (i)   its protocol differs from the decoy protocol, or
//   (ii)  it is HTTP or HTTPS (no HTTP/TLS decoy is ever aimed at the
//         honeypots), or
//   (iii) it is DNS and the unique query name already appeared in an
//         earlier DNS query — for decoys sent to recursive resolvers, that
//         earlier query is the resolver's own (solicited) resolution; for
//         decoys sent to authoritative servers no resolution is expected,
//         so every honeypot DNS arrival is unsolicited.
#pragma once

#include <set>
#include <vector>

#include "core/honeypot.h"
#include "core/ledger.h"

namespace shadowprobe::core {

struct UnsolicitedRequest {
  HoneypotHit hit;
  std::uint32_t seq = 0;       // triggering decoy
  std::uint32_t path_id = 0;
  DecoyProtocol decoy_protocol = DecoyProtocol::kDns;
  RequestProtocol request_protocol = RequestProtocol::kDns;
  SimDuration interval = 0;    // hit time minus decoy emission time
};

class Correlator {
 public:
  explicit Correlator(const DecoyLedger& ledger) : ledger_(ledger) {}

  /// Full classification pass over `hits` (time-ordered, as the logbook
  /// stores them). Hits whose identifier does not decode, does not match
  /// the ledger, or fails the unsolicited criteria are dropped.
  ///
  /// `replicated_seqs` (optional) lists decoys whose VP received more than
  /// one response — the signature of request *replication* by interception
  /// middleboxes. Appendix E excludes those from traffic shadowing
  /// ("communication ... is intercepted when clients are waiting for
  /// responses, as opposed to silent on-path observers"): their DNS-DNS
  /// repetitions are dropped here.
  [[nodiscard]] std::vector<UnsolicitedRequest> classify(
      const std::vector<HoneypotHit>& hits,
      const std::set<std::uint32_t>* replicated_seqs = nullptr) const;

  /// Path ids with at least one unsolicited request in `requests`.
  [[nodiscard]] static std::set<std::uint32_t> problematic_paths(
      const std::vector<UnsolicitedRequest>& requests);

 private:
  const DecoyLedger& ledger_;
};

}  // namespace shadowprobe::core
