// Correlator: joins honeypot hits with the decoy ledger and classifies
// unsolicited requests.
//
// Implements the paper's three criteria (Section 3, Phase I): an incoming
// request bearing decoy data is unsolicited if
//   (i)   its protocol differs from the decoy protocol, or
//   (ii)  it is HTTP or HTTPS (no HTTP/TLS decoy is ever aimed at the
//         honeypots), or
//   (iii) it is DNS and the unique query name already appeared in an
//         earlier DNS query — for decoys sent to recursive resolvers, that
//         earlier query is the resolver's own (solicited) resolution; for
//         decoys sent to authoritative servers no resolution is expected,
//         so every honeypot DNS arrival is unsolicited.
//
// Criterion (iii) is *temporal*: "earlier" means earlier in capture time,
// not earlier in the input vector. classify() therefore restores canonical
// (time, seq) order before walking the hits, so a merged multi-shard
// logbook (or any other out-of-order source) can never have a later
// duplicate classified as the solicited resolution.
//
// Classification decomposes by decoy sequence number: a hit's verdict
// depends only on the hits that share its seq (the resolved_once state is
// per seq group). classify() exploits that for parallelism — partition the
// hits by seq group, classify partitions on a worker pool, and restore
// canonical order afterwards — with output byte-identical to a serial pass.
#pragma once

#include <set>
#include <vector>

#include "common/flat_map.h"
#include "core/honeypot.h"
#include "core/ledger.h"

namespace shadowprobe::core {

struct UnsolicitedRequest {
  HoneypotHit hit;
  std::uint32_t seq = 0;       // triggering decoy
  std::uint32_t path_id = 0;
  DecoyProtocol decoy_protocol = DecoyProtocol::kDns;
  RequestProtocol request_protocol = RequestProtocol::kDns;
  SimDuration interval = 0;    // hit time minus decoy emission time
};

class Correlator {
 public:
  explicit Correlator(const DecoyLedger& ledger) : ledger_(ledger) {}

  /// Full classification pass over `hits`. The input is brought into
  /// canonical (time, seq) order first (a no-op for logbooks that are
  /// already canonical, e.g. the engine's merged hits). Hits whose
  /// identifier does not decode, does not match the ledger, or fails the
  /// unsolicited criteria are dropped. The returned requests are in
  /// canonical hit order.
  ///
  /// `replicated_seqs` (optional) lists decoys whose VP received more than
  /// one response — the signature of request *replication* by interception
  /// middleboxes. Appendix E excludes those from traffic shadowing
  /// ("communication ... is intercepted when clients are waiting for
  /// responses, as opposed to silent on-path observers"): their DNS-DNS
  /// repetitions are dropped here.
  ///
  /// `workers` > 1 classifies seq-group partitions concurrently (all hits
  /// of one seq stay in one partition, keeping criterion (iii)'s
  /// resolved_once state partition-local); the output is byte-identical
  /// for any worker count.
  [[nodiscard]] std::vector<UnsolicitedRequest> classify(
      const std::vector<HoneypotHit>& hits,
      const FlatSet<std::uint32_t>* replicated_seqs = nullptr, int workers = 1) const;

  /// Path ids with at least one unsolicited request in `requests`.
  [[nodiscard]] static std::set<std::uint32_t> problematic_paths(
      const std::vector<UnsolicitedRequest>& requests);

 private:
  /// Serial classification of hits already in canonical order. The
  /// resolved_once state lives here, so a call must see every hit of every
  /// seq group it is handed.
  void classify_ordered(const std::vector<const HoneypotHit*>& ordered,
                        const FlatSet<std::uint32_t>* replicated_seqs,
                        std::vector<UnsolicitedRequest>& out) const;

  const DecoyLedger& ledger_;
};

}  // namespace shadowprobe::core
