#include "core/honeypot.h"

#include "net/http.h"
#include "net/tls.h"

namespace shadowprobe::core {

bool hit_canonical_less(const HoneypotHit& a, const HoneypotHit& b) {
  // Allocation-free cascade. This runs inside O(n log n) merge sorts over
  // every hit of a campaign, so the old make_tuple-of-str() form (two string
  // materializations per comparison) was a measurable cost. The order is
  // exactly the old tuple order: time, presentation-form domain
  // (case-SENSITIVE, matching str() comparison), protocol, origin, honeypot
  // address, location, HTTP method, HTTP target.
  if (a.time != b.time) return a.time < b.time;
  if (int c = a.domain.compare_presentation(b.domain); c != 0) return c < 0;
  if (a.protocol != b.protocol)
    return static_cast<int>(a.protocol) < static_cast<int>(b.protocol);
  if (a.origin != b.origin) return a.origin < b.origin;
  if (a.honeypot_addr != b.honeypot_addr) return a.honeypot_addr < b.honeypot_addr;
  if (int c = a.location.compare(b.location); c != 0) return c < 0;
  if (int c = a.http_method.compare(b.http_method); c != 0) return c < 0;
  return a.http_target < b.http_target;
}

void HoneypotLogbook::add(HoneypotHit hit) {
  hits_.push_back(hit);
  for (const auto& observer : observers_) observer(hits_.back());
}

dnssrv::Zone build_experiment_zone(const std::vector<net::Ipv4Addr>& honeypot_addrs) {
  const net::DnsName& zone_name = experiment_zone();
  dnssrv::Zone zone(zone_name);
  net::SoaData soa;
  soa.mname = zone_name.child("ns1");
  soa.rname = zone_name.child("hostmaster");
  soa.serial = 2024030101;
  soa.minimum = 300;
  zone.add(net::DnsRecord::soa(zone_name, soa));
  for (std::size_t i = 0; i < honeypot_addrs.size(); ++i) {
    net::DnsName ns = zone_name.child("ns" + std::to_string(i + 1));
    zone.add(net::DnsRecord::ns(zone_name, ns));
    zone.add(net::DnsRecord::a(ns, honeypot_addrs[i]));
  }
  net::DnsName www = zone_name.child("www");
  for (net::Ipv4Addr addr : honeypot_addrs) {
    zone.add(net::DnsRecord::a(zone_name, addr, 3600));
    zone.add(net::DnsRecord::a(www, addr, 3600));
    // The paper's wildcard: every decoy domain resolves here, TTL 3600.
    zone.add(net::DnsRecord::a(www.child("*"), addr, 3600));
  }
  return zone;
}

HoneypotServer::HoneypotServer(std::string location, HoneypotLogbook& logbook, Rng rng)
    : location_(std::move(location)), logbook_(logbook), rng_(rng) {}

void HoneypotServer::bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr,
                          std::shared_ptr<const dnssrv::Zone> zone) {
  net_ = &net;
  addr_ = addr;
  auth_.add_zone(std::move(zone));
  auth_.add_query_observer([this](const dnssrv::QueryLogEntry& entry) {
    HoneypotHit hit;
    hit.time = entry.time;
    hit.protocol = RequestProtocol::kDns;
    hit.origin = entry.client;
    hit.honeypot_addr = entry.server_addr;
    hit.location = location_;
    hit.domain = entry.question.name;
    hit.decoy = decoy_from_name(entry.question.name);
    logbook_.add(std::move(hit));
  });
  tcp_ = std::make_unique<sim::TcpStack>(net, node, rng_.fork("tcp"));
  tcp_->listen(80, [this](const sim::ConnKey& key, BytesView data) {
    return serve_http(key, data);
  });
  tcp_->listen(443, [this](const sim::ConnKey& key, BytesView data) {
    return serve_tls(key, data);
  });
  net.set_handler(node, this);
}

void HoneypotServer::on_datagram(sim::Network& net, sim::NodeId self,
                                 const net::Ipv4Datagram& dgram) {
  switch (dgram.header.protocol) {
    case net::IpProto::kUdp:
      auth_.on_datagram(net, self, dgram);
      break;
    case net::IpProto::kTcp:
      tcp_->on_segment(dgram);
      break;
    case net::IpProto::kIcmp:
      break;  // nothing to do with stray ICMP
  }
}

Bytes HoneypotServer::serve_http(const sim::ConnKey& key, BytesView data) {
  auto request = net::HttpRequest::decode(data);
  if (!request.ok()) return {};
  const net::HttpRequest& req = request.value();

  HoneypotHit hit;
  hit.time = net_->now();
  hit.protocol = RequestProtocol::kHttp;
  hit.origin = key.remote_addr;
  hit.honeypot_addr = key.local_addr;
  hit.location = location_;
  if (auto name = net::DnsName::parse(req.host())) hit.domain = *name;
  hit.decoy = decoy_from_host(req.host());
  hit.http_method = req.method;
  hit.http_target = req.target;
  logbook_.add(std::move(hit));

  net::HttpResponse response;
  if (req.path() == "/" || req.path() == "/index.html") {
    // Ethics: the homepage documents the experiment and a contact address
    // for accidental visitors and origins of unsolicited requests.
    response.status = 200;
    response.reason = "OK";
    response.headers.add("Content-Type", "text/html");
    response.body = to_bytes(
        "<html><head><title>Internet measurement experiment</title></head>"
        "<body><h1>Traffic shadowing measurement</h1>"
        "<p>This host is part of an academic measurement of Internet traffic"
        " shadowing. The domains resolving here carry experiment identifiers"
        " only and no personal data.</p>"
        "<p>Contact: research@shadowprobe-exp.com</p></body></html>");
  } else {
    response.status = 404;
    response.reason = "Not Found";
    response.headers.add("Content-Type", "text/plain");
    response.body = to_bytes("not found\n");
  }
  return response.encode();
}

Bytes HoneypotServer::serve_tls(const sim::ConnKey& key, BytesView data) {
  auto hello = net::TlsClientHello::decode_record(data);
  if (!hello.ok()) return {};

  HoneypotHit hit;
  hit.time = net_->now();
  hit.protocol = RequestProtocol::kHttps;
  hit.origin = key.remote_addr;
  hit.honeypot_addr = key.local_addr;
  hit.location = location_;
  std::optional<std::string> sni = hello.value().has_ech()
                                       ? hello.value().ech_inner_sni()
                                       : hello.value().sni();
  if (sni) {
    if (auto name = net::DnsName::parse(*sni)) hit.domain = *name;
    hit.decoy = decoy_from_host(*sni);
  }
  logbook_.add(std::move(hit));

  // Log-and-greet: a minimal ServerHello keeps well-behaved probers from
  // retrying, then the peer is expected to abandon the handshake (our
  // honeypot has nothing to say after this).
  net::TlsServerHello server_hello;
  for (std::size_t i = 0; i < server_hello.random.size(); ++i) {
    server_hello.random[i] = static_cast<std::uint8_t>(rng_.bits());
  }
  server_hello.session_id = hello.value().session_id;
  return server_hello.encode_record();
}

}  // namespace shadowprobe::core
