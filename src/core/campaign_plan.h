// CampaignPlan: the deterministic emission schedule, computed up front.
//
// A plan is a pure function of (topology, campaign config, active-VP set,
// start time): the full path table plus one PlanEmission per decoy that will
// ever be sent, with path ids and sequence numbers preassigned in a fixed
// iteration order. Because the seq is preassigned — not allocated when the
// decoy fires — the decoy domain (which embeds the seq) is identical no
// matter how emissions are later distributed over shards, which is the
// anchor of the engine's shard-count-invariance guarantee.
//
// Phase II cannot be planned up front (it depends on what the honeypots
// capture), so the plan grows once, at the Phase-II barrier: extend_phase2
// appends the TTL-sweep emissions for the problematic paths, continuing the
// same seq counter.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/time.h"
#include "core/campaign_config.h"
#include "core/ledger.h"
#include "topo/topology.h"

namespace shadowprobe::core {

/// One planned decoy emission. Everything the ledger record needs is either
/// here or on the referenced path.
struct PlanEmission {
  std::uint32_t seq = 0;
  std::uint32_t path_id = 0;
  std::int32_t vp_index = -1;  // owner VP (redundant with the path, cached)
  SimTime when = 0;            // absolute emission time
  std::uint8_t ttl = 64;
  bool phase2 = false;
};

class CampaignPlan {
 public:
  /// Builds the Phase-I schedule. `active_vps` are indices into
  /// topo.vantage_points(), in screening order. `start` is the absolute time
  /// the first emission window opens (end of screening, or 0).
  /// The iteration order — DNS paths VP-major over dns_target_hosts, then
  /// web paths VP-major over web_sites with HTTP before TLS — mirrors the
  /// original Campaign::schedule_phase1 exactly.
  static CampaignPlan build_phase1(const topo::Topology& topo, const CampaignConfig& config,
                                   const std::vector<std::size_t>& active_vps,
                                   SimTime start);

  /// Appends the Phase-II TTL sweeps for `problematic` path ids (iterated in
  /// set order, i.e. ascending), spread across config.phase2_window from
  /// `start`. Returns the index of the first appended emission. A plan with
  /// no problematic paths is a no-op (and guards the pacing division).
  std::size_t extend_phase2(const std::set<std::uint32_t>& problematic,
                            const CampaignConfig& config, SimTime start);

  /// Fault-resilience step, run at the Phase-II barrier: re-plans the
  /// Phase-I emissions that quarantined VPs never sent (`cancelled_seqs`, as
  /// recorded by the shard runners at fire time) onto replacement VPs. The
  /// replacement is the next VP after the quarantined owner in `active_vps`
  /// order that is itself not quarantined (cyclic scan) — a pure function of
  /// the inputs, so every shard layout re-plans identically. Each re-planned
  /// emission reuses the replacement VP's *existing* path to the same
  /// (destination, protocol) and takes a fresh seq; emissions are paced over
  /// `window` from `start`. Returns the number of emissions appended.
  std::size_t reschedule_quarantined(const std::set<std::uint32_t>& cancelled_seqs,
                                     const std::set<std::size_t>& quarantined_vps,
                                     const std::vector<std::size_t>& active_vps,
                                     SimTime start, SimDuration window);

  /// Rebuilds a plan from previously exported state (the wire codec).
  /// `paths` must carry dense ids from 0; the seq counter resumes past the
  /// largest emission seq so later extend_phase2 calls continue the sequence
  /// exactly as the original plan would have.
  static CampaignPlan restore(std::vector<PathRecord> paths,
                              std::vector<PlanEmission> emissions,
                              std::size_t phase1_count);

  /// Appends already-planned emissions received from the controller (the
  /// Phase-II extension crossing a process boundary). Seqs arrive
  /// preassigned; the local counter advances past them.
  void append_emissions(const std::vector<PlanEmission>& tail);

  [[nodiscard]] const std::vector<PathRecord>& paths() const noexcept { return paths_; }
  [[nodiscard]] const std::vector<PlanEmission>& emissions() const noexcept {
    return emissions_;
  }
  /// Number of Phase-I emissions (prefix of emissions()).
  [[nodiscard]] std::size_t phase1_count() const noexcept { return phase1_count_; }
  [[nodiscard]] const PathRecord& path(std::uint32_t path_id) const {
    return paths_.at(path_id);  // plan path ids are dense from 0
  }

 private:
  std::uint32_t add_path(PathRecord path);
  void plan_emission(std::uint32_t path_id, SimTime when, std::uint8_t ttl, bool phase2);

  std::vector<PathRecord> paths_;
  std::vector<PlanEmission> emissions_;
  std::size_t phase1_count_ = 0;
  std::uint32_t next_seq_ = 0;
};

}  // namespace shadowprobe::core
