#include "core/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

namespace shadowprobe::core::wire {

namespace {

constexpr std::size_t kHeaderSize = 16;  // magic + version + type + shard + len
constexpr std::size_t kTrailerSize = 4;  // crc32

bool valid_type(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(MsgType::kInit) &&
         type <= static_cast<std::uint16_t>(MsgType::kHeartbeat);
}

/// write(2) with SIGPIPE masked for the calling thread: a pipe whose reader
/// died yields EPIPE — which the caller surfaces as a worker-lost event —
/// instead of the default process-killing SIGPIPE. Sockets take the
/// MSG_NOSIGNAL path and never come through here.
ssize_t sigpipe_safe_write(int fd, const void* buf, std::size_t len) {
  sigset_t pipe_only;
  sigemptyset(&pipe_only);
  sigaddset(&pipe_only, SIGPIPE);
  sigset_t pending_before;
  sigpending(&pending_before);
  const bool was_pending = sigismember(&pending_before, SIGPIPE) == 1;
  sigset_t saved;
  pthread_sigmask(SIG_BLOCK, &pipe_only, &saved);
  ssize_t n = ::write(fd, buf, len);
  int write_errno = errno;
  if (n < 0 && write_errno == EPIPE && !was_pending) {
    // Consume the SIGPIPE our write just queued so restoring the mask does
    // not deliver it; a SIGPIPE pending before the call is left alone.
    struct timespec zero = {0, 0};
    while (sigtimedwait(&pipe_only, nullptr, &zero) > 0) {}
  }
  pthread_sigmask(SIG_SETMASK, &saved, nullptr);
  errno = write_errno;
  return n;
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Bytes encode_frame(MsgType type, std::uint32_t shard_id, BytesView payload) {
  if (payload.size() > kMaxPayload) {
    throw std::length_error("wire: payload exceeds kMaxPayload");
  }
  ByteWriter w(kHeaderSize + payload.size() + kTrailerSize);
  w.u32(kMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(shard_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u32(crc32(payload));
  return std::move(w).take();
}

Result<Frame> decode_frame(BytesView buffer) {
  ByteReader r(buffer);
  std::uint32_t magic = r.u32();
  std::uint16_t version = r.u16();
  std::uint16_t type = r.u16();
  std::uint32_t shard_id = r.u32();
  std::uint32_t length = r.u32();
  if (!r.ok()) return Error("wire: truncated frame header");
  if (magic != kMagic) return Error("wire: bad magic");
  if (version != kWireVersion) return Error("wire: version mismatch");
  if (!valid_type(type)) return Error("wire: unknown message type");
  if (length > kMaxPayload) return Error("wire: implausible payload length");
  BytesView payload = r.raw(length);
  std::uint32_t checksum = r.u32();
  if (!r.ok()) return Error("wire: short payload");
  if (r.remaining() != 0) return Error("wire: trailing bytes after frame");
  if (crc32(payload) != checksum) return Error("wire: checksum mismatch");
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.shard_id = shard_id;
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

void FrameChannel::send(MsgType type, std::uint32_t shard_id, BytesView payload) {
  Bytes bytes = encode_frame(type, shard_id, payload);
  std::lock_guard<std::mutex> lock(send_mu_);
  const std::uint8_t* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = 0;
    if (out_is_socket_ != 0) {
      // MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE.
      n = ::send(out_fd_, p, left, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        out_is_socket_ = 0;
        continue;
      }
      if (n >= 0) out_is_socket_ = 1;
    } else {
      // Pipes have no MSG_NOSIGNAL; mask SIGPIPE around the write instead.
      n = sigpipe_safe_write(out_fd_, p, left);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("wire: send failed: ") + std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

namespace {

/// Blocks until `fd` is readable or `deadline` passes. Returns true when
/// readable; false only on deadline expiry. timeout_ms < 0 waits forever.
bool wait_readable(int fd, int timeout_ms,
                   std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    int wait = -1;
    if (timeout_ms >= 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left < 0) left = 0;
      wait = static_cast<int>(left);
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, wait);
    if (rc > 0) return true;  // readable, error, or hangup: let read() decide
    if (rc == 0) return false;
    if (errno != EINTR) return true;  // surface the errno via read()
  }
}

}  // namespace

Result<Frame> FrameChannel::recv(int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  Bytes buffer(kHeaderSize);
  std::size_t have = 0;
  // Header first; a clean EOF before the first byte is the normal shutdown
  // signal, an EOF inside a frame is corruption/crash.
  while (have < kHeaderSize) {
    if (!wait_readable(in_fd_, timeout_ms, deadline)) return Error(std::string(kTimeoutMessage));
    ssize_t n = ::read(in_fd_, buffer.data() + have, kHeaderSize - have);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error(std::string("wire: read failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      return have == 0 ? Error(std::string(kEofMessage))
                       : Error("wire: stream truncated inside frame header");
    }
    have += static_cast<std::size_t>(n);
  }
  ByteReader header(buffer);
  std::uint32_t magic = header.u32();
  std::uint16_t version = header.u16();
  std::uint16_t type = header.u16();
  std::uint32_t shard_id = header.u32();
  std::uint32_t length = header.u32();
  if (magic != kMagic) return Error("wire: bad magic");
  if (version != kWireVersion) return Error("wire: version mismatch");
  if (!valid_type(type)) return Error("wire: unknown message type");
  if (length > kMaxPayload) return Error("wire: implausible payload length");
  Bytes body(static_cast<std::size_t>(length) + kTrailerSize);
  have = 0;
  while (have < body.size()) {
    if (!wait_readable(in_fd_, timeout_ms, deadline)) return Error(std::string(kTimeoutMessage));
    ssize_t n = ::read(in_fd_, body.data() + have, body.size() - have);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error(std::string("wire: read failed: ") + std::strerror(errno));
    }
    if (n == 0) return Error("wire: stream truncated inside frame body");
    have += static_cast<std::size_t>(n);
  }
  BytesView payload(body.data(), length);
  ByteReader trailer(BytesView(body.data() + length, kTrailerSize));
  if (crc32(payload) != trailer.u32()) return Error("wire: checksum mismatch");
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.shard_id = shard_id;
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

// -- primitives -------------------------------------------------------------

void put_string(ByteWriter& w, std::string_view s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.raw(s);
}

std::string get_string(ByteReader& r) {
  std::uint32_t length = r.u32();
  if (length > r.remaining()) {
    r.fail();
    return {};
  }
  return r.str(length);
}

void put_time(ByteWriter& w, SimTime t) { w.u64(static_cast<std::uint64_t>(t)); }

SimTime get_time(ByteReader& r) { return static_cast<SimTime>(r.u64()); }

void put_double(ByteWriter& w, double v) { w.u64(std::bit_cast<std::uint64_t>(v)); }

double get_double(ByteReader& r) { return std::bit_cast<double>(r.u64()); }

// -- codecs -----------------------------------------------------------------

namespace {

void put_addr(ByteWriter& w, net::Ipv4Addr addr) { w.u32(addr.value()); }

net::Ipv4Addr get_addr(ByteReader& r) { return net::Ipv4Addr(r.u32()); }

void put_path(ByteWriter& w, const PathRecord& path) {
  w.u32(path.path_id);
  w.u32(static_cast<std::uint32_t>(path.vp_index));
  w.u8(static_cast<std::uint8_t>(path.dest_kind));
  put_string(w, path.dest_name);
  put_addr(w, path.dest_addr);
  put_string(w, path.dest_country);
  w.u8(static_cast<std::uint8_t>(path.protocol));
}

PathRecord get_path(ByteReader& r) {
  PathRecord path;
  path.path_id = r.u32();
  path.vp_index = static_cast<std::int32_t>(r.u32());
  std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(DestKind::kWebSite)) r.fail();
  path.dest_kind = static_cast<DestKind>(kind);
  path.dest_name = get_string(r);
  path.dest_addr = get_addr(r);
  path.dest_country = get_string(r);
  std::uint8_t protocol = r.u8();
  if (protocol > static_cast<std::uint8_t>(DecoyProtocol::kTls)) r.fail();
  path.protocol = static_cast<DecoyProtocol>(protocol);
  return path;  // path.vp stays null; callers rebind via vp_index
}

void put_decoy_id(ByteWriter& w, const DecoyId& id) {
  w.u32(id.time_sec);
  put_addr(w, id.vp);
  put_addr(w, id.dst);
  w.u8(id.ttl);
  w.u8(static_cast<std::uint8_t>(id.protocol));
  w.u32(id.seq);
}

DecoyId get_decoy_id(ByteReader& r) {
  DecoyId id;
  id.time_sec = r.u32();
  id.vp = get_addr(r);
  id.dst = get_addr(r);
  id.ttl = r.u8();
  std::uint8_t protocol = r.u8();
  if (protocol > static_cast<std::uint8_t>(DecoyProtocol::kTls)) r.fail();
  id.protocol = static_cast<DecoyProtocol>(protocol);
  id.seq = r.u32();
  return id;
}

void put_decoy(ByteWriter& w, const DecoyRecord& record) {
  put_decoy_id(w, record.id);
  put_string(w, record.domain.str());
  put_time(w, record.sent);
  w.u32(record.path_id);
  w.u8(record.phase2 ? 1 : 0);
  w.u8(record.dest_responded ? 1 : 0);
  put_time(w, record.response_time);
}

DecoyRecord get_decoy(ByteReader& r) {
  DecoyRecord record;
  record.id = get_decoy_id(r);
  // The as-emitted domain crosses the wire verbatim (never re-derived from
  // the id — a merge-remapped seq keeps its original label).
  std::string domain = get_string(r);
  if (auto parsed = net::DnsName::parse(domain)) {
    record.domain = std::move(*parsed);
  } else {
    r.fail();
  }
  record.sent = get_time(r);
  record.path_id = r.u32();
  record.phase2 = r.u8() != 0;
  record.dest_responded = r.u8() != 0;
  record.response_time = get_time(r);
  return record;
}

/// Rough lower bound on an element's encoded size, used to reject absurd
/// count fields before any allocation happens.
bool plausible_count(const ByteReader& r, std::uint32_t count, std::size_t min_bytes) {
  return static_cast<std::uint64_t>(count) * min_bytes <= r.remaining();
}

}  // namespace

void encode_ledger(ByteWriter& w, const DecoyLedger& ledger) {
  w.u32(static_cast<std::uint32_t>(ledger.paths().size()));
  for (const PathRecord& path : ledger.paths()) put_path(w, path);
  w.u32(static_cast<std::uint32_t>(ledger.decoys().size()));
  for (const DecoyRecord& record : ledger.decoys()) put_decoy(w, record);
}

Result<DecoyLedger> decode_ledger(ByteReader& r) {
  DecoyLedger ledger;
  std::uint32_t path_count = r.u32();
  if (!plausible_count(r, path_count, 19)) return Error("wire: implausible path count");
  std::vector<PathRecord> paths;
  paths.reserve(path_count);
  FlatSet<std::uint32_t> path_ids;
  for (std::uint32_t i = 0; i < path_count && r.ok(); ++i) {
    PathRecord path = get_path(r);
    if (path_ids.contains(path.path_id)) return Error("wire: duplicate path id");
    path_ids.insert(path.path_id);
    paths.push_back(std::move(path));
  }
  if (!r.ok()) return Error("wire: truncated ledger path table");
  ledger.seed_paths(paths);
  std::uint32_t decoy_count = r.u32();
  if (!plausible_count(r, decoy_count, 38)) return Error("wire: implausible decoy count");
  ledger.reserve_decoys(decoy_count);
  for (std::uint32_t i = 0; i < decoy_count && r.ok(); ++i) {
    DecoyRecord record = get_decoy(r);
    if (!r.ok()) break;
    if (!ledger.restore_decoy(record)) return Error("wire: duplicate decoy seq");
  }
  if (!r.ok()) return Error("wire: malformed ledger");
  return ledger;
}

void encode_hits(ByteWriter& w, const std::vector<HoneypotHit>& hits) {
  w.u32(static_cast<std::uint32_t>(hits.size()));
  for (const HoneypotHit& hit : hits) {
    put_time(w, hit.time);
    w.u8(static_cast<std::uint8_t>(hit.protocol));
    put_addr(w, hit.origin);
    put_addr(w, hit.honeypot_addr);
    put_string(w, hit.location);
    put_string(w, hit.domain.str());
    w.u8(hit.decoy.has_value() ? 1 : 0);
    if (hit.decoy.has_value()) put_decoy_id(w, *hit.decoy);
    put_string(w, hit.http_method);
    put_string(w, hit.http_target);
  }
}

Result<std::vector<HoneypotHit>> decode_hits(ByteReader& r) {
  std::uint32_t count = r.u32();
  if (!plausible_count(r, count, 35)) return Error("wire: implausible hit count");
  std::vector<HoneypotHit> hits;
  hits.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    HoneypotHit hit;
    hit.time = get_time(r);
    std::uint8_t protocol = r.u8();
    if (protocol > static_cast<std::uint8_t>(RequestProtocol::kHttps)) r.fail();
    hit.protocol = static_cast<RequestProtocol>(protocol);
    hit.origin = get_addr(r);
    hit.honeypot_addr = get_addr(r);
    hit.location = get_string(r);
    std::string domain = get_string(r);
    if (auto parsed = net::DnsName::parse(domain)) {
      hit.domain = std::move(*parsed);
    } else {
      r.fail();
    }
    std::uint8_t has_decoy = r.u8();
    if (has_decoy > 1) r.fail();
    if (has_decoy == 1) hit.decoy = get_decoy_id(r);
    hit.http_method = get_string(r);
    hit.http_target = get_string(r);
    hits.push_back(std::move(hit));
  }
  if (!r.ok()) return Error("wire: malformed hit log");
  return hits;
}

void encode_link_drops(ByteWriter& w, const std::vector<sim::LinkDropCounters>& links) {
  w.u32(static_cast<std::uint32_t>(links.size()));
  for (const sim::LinkDropCounters& link : links) {
    put_string(w, link.node_a);
    put_string(w, link.node_b);
    w.u64(link.link_loss);
    w.u64(link.link_down);
  }
}

std::vector<sim::LinkDropCounters> decode_link_drops(ByteReader& r) {
  std::uint32_t count = r.u32();
  if (!plausible_count(r, count, 24)) {
    r.fail();
    return {};
  }
  std::vector<sim::LinkDropCounters> links;
  links.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    sim::LinkDropCounters link;
    link.node_a = get_string(r);
    link.node_b = get_string(r);
    link.link_loss = r.u64();
    link.link_down = r.u64();
    links.push_back(std::move(link));
  }
  return links;
}

void encode_coverage(ByteWriter& w, const CoverageStats& cov) {
  w.u64(cov.phase1_planned);
  w.u64(cov.decoys_attempted);
  w.u64(cov.decoys_delivered);
  w.u64(cov.decoys_lost);
  w.u64(cov.decoys_retried);
  w.u64(cov.retry_attempts);
  w.u64(cov.tcp_retransmissions);
  w.u64(cov.decoys_cancelled);
  w.u64(cov.decoys_rescheduled);
  w.u64(cov.phase2_deferred);
  w.u64(cov.vps_quarantined);
  w.u64(cov.honeypot_downtime_drops);
  encode_link_drops(w, cov.link_drops);
}

CoverageStats decode_coverage(ByteReader& r) {
  CoverageStats cov;
  cov.phase1_planned = r.u64();
  cov.decoys_attempted = r.u64();
  cov.decoys_delivered = r.u64();
  cov.decoys_lost = r.u64();
  cov.decoys_retried = r.u64();
  cov.retry_attempts = r.u64();
  cov.tcp_retransmissions = r.u64();
  cov.decoys_cancelled = r.u64();
  cov.decoys_rescheduled = r.u64();
  cov.phase2_deferred = r.u64();
  cov.vps_quarantined = r.u64();
  cov.honeypot_downtime_drops = r.u64();
  cov.link_drops = decode_link_drops(r);
  return cov;
}

void encode_net_counters(ByteWriter& w, const sim::NetworkCounters& net) {
  w.u64(net.delivered);
  w.u64(net.forwarded);
  w.u64(net.no_route);
  w.u64(net.ttl_expired);
  w.u64(net.link_loss);
  w.u64(net.link_down);
  w.u64(net.endpoint_down);
  encode_link_drops(w, net.per_link);
}

sim::NetworkCounters decode_net_counters(ByteReader& r) {
  sim::NetworkCounters net;
  net.delivered = r.u64();
  net.forwarded = r.u64();
  net.no_route = r.u64();
  net.ttl_expired = r.u64();
  net.link_loss = r.u64();
  net.link_down = r.u64();
  net.endpoint_down = r.u64();
  net.per_link = decode_link_drops(r);
  return net;
}

void encode_loop_stats(ByteWriter& w, const sim::EventLoopStats& stats) {
  w.u64(stats.processed);
  w.u64(stats.scheduled);
  w.u64(stats.cancelled);
  w.u64(stats.pending);
  w.u64(stats.high_water);
  put_time(w, stats.now);
}

sim::EventLoopStats decode_loop_stats(ByteReader& r) {
  sim::EventLoopStats stats;
  stats.processed = r.u64();
  stats.scheduled = r.u64();
  stats.cancelled = r.u64();
  stats.pending = static_cast<std::size_t>(r.u64());
  stats.high_water = static_cast<std::size_t>(r.u64());
  stats.now = get_time(r);
  return stats;
}

void encode_shard_stats(ByteWriter& w, const ShardExecutionStats& stats) {
  w.u32(static_cast<std::uint32_t>(stats.requested_shards));
  w.u32(static_cast<std::uint32_t>(stats.effective_shards));
  w.u32(static_cast<std::uint32_t>(stats.worker_procs));
  w.u8(stats.clamped ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(stats.scheduler));
  w.u64(stats.steals_attempted);
  w.u64(stats.steals_completed);
  w.u32(static_cast<std::uint32_t>(stats.per_shard.size()));
  for (const sim::EventLoopStats& loop : stats.per_shard) encode_loop_stats(w, loop);
  w.u32(static_cast<std::uint32_t>(stats.per_shard_net.size()));
  for (const sim::NetworkCounters& net : stats.per_shard_net) encode_net_counters(w, net);
}

Result<ShardExecutionStats> decode_shard_stats(ByteReader& r) {
  ShardExecutionStats stats;
  stats.requested_shards = static_cast<int>(r.u32());
  stats.effective_shards = static_cast<int>(r.u32());
  stats.worker_procs = static_cast<int>(r.u32());
  stats.clamped = r.u8() != 0;
  std::uint8_t scheduler = r.u8();
  if (r.ok() && scheduler > static_cast<std::uint8_t>(SchedulerMode::kSteal)) {
    return Error("wire: unknown scheduler mode");
  }
  stats.scheduler = static_cast<SchedulerMode>(scheduler);
  stats.steals_attempted = r.u64();
  stats.steals_completed = r.u64();
  std::uint32_t loops = r.u32();
  if (!plausible_count(r, loops, 48)) return Error("wire: implausible shard count");
  stats.per_shard.reserve(loops);
  for (std::uint32_t i = 0; i < loops && r.ok(); ++i) {
    stats.per_shard.push_back(decode_loop_stats(r));
  }
  std::uint32_t nets = r.u32();
  if (!plausible_count(r, nets, 60)) return Error("wire: implausible net-counter count");
  stats.per_shard_net.reserve(nets);
  for (std::uint32_t i = 0; i < nets && r.ok(); ++i) {
    stats.per_shard_net.push_back(decode_net_counters(r));
  }
  if (!r.ok()) return Error("wire: malformed shard stats");
  return stats;
}

void encode_testbed_config(ByteWriter& w, const TestbedConfig& config) {
  w.u64(config.topology.seed);
  w.u32(static_cast<std::uint32_t>(config.topology.global_vps));
  w.u32(static_cast<std::uint32_t>(config.topology.cn_vps));
  w.u32(static_cast<std::uint32_t>(config.topology.web_sites));
  w.u32(static_cast<std::uint32_t>(config.topology.filler_ases_per_country));
  put_double(w, config.resolver_requery_probability);
  put_time(w, config.resolver_requery_delay);
  w.u8(config.resolver_refresh_on_expiry ? 1 : 0);
}

TestbedConfig decode_testbed_config(ByteReader& r) {
  TestbedConfig config;
  config.topology.seed = r.u64();
  config.topology.global_vps = static_cast<int>(r.u32());
  config.topology.cn_vps = static_cast<int>(r.u32());
  config.topology.web_sites = static_cast<int>(r.u32());
  config.topology.filler_ases_per_country = static_cast<int>(r.u32());
  config.resolver_requery_probability = get_double(r);
  config.resolver_requery_delay = get_time(r);
  config.resolver_refresh_on_expiry = r.u8() != 0;
  return config;
}

void encode_campaign_config(ByteWriter& w, const CampaignConfig& config) {
  put_time(w, config.phase1_window);
  w.u32(static_cast<std::uint32_t>(config.phase1_rounds));
  put_time(w, config.phase2_grace);
  put_time(w, config.phase2_window);
  put_time(w, config.total_duration);
  w.u32(static_cast<std::uint32_t>(config.max_sweep_ttl));
  w.u8(config.screening ? 1 : 0);
  w.u8(config.measure_dns ? 1 : 0);
  w.u8(config.measure_http ? 1 : 0);
  w.u8(config.measure_tls ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(config.dns_transport));
  w.u8(config.tls_decoys_use_ech ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(config.analysis_workers));
  // Fault profile, field-wise (doubles as bit patterns — str()/parse() could
  // lose precision, and the workers' draws must match the controller's
  // exactly).
  const sim::FaultProfile& faults = config.faults;
  put_double(w, faults.link_loss);
  put_time(w, faults.jitter);
  put_double(w, faults.link_flap_rate);
  put_time(w, faults.link_flap_duration);
  put_double(w, faults.vp_churn);
  put_time(w, faults.vp_outage);
  w.u32(static_cast<std::uint32_t>(faults.collector_outages.size()));
  for (const sim::CollectorOutage& outage : faults.collector_outages) {
    put_string(w, outage.location);
    put_time(w, outage.start);
    put_time(w, outage.duration);
  }
  w.u32(static_cast<std::uint32_t>(faults.max_retries));
  put_time(w, faults.retry_timeout);
  w.u32(static_cast<std::uint32_t>(faults.quarantine_threshold));
}

Result<CampaignConfig> decode_campaign_config(ByteReader& r) {
  CampaignConfig config;
  config.phase1_window = get_time(r);
  config.phase1_rounds = static_cast<int>(r.u32());
  config.phase2_grace = get_time(r);
  config.phase2_window = get_time(r);
  config.total_duration = get_time(r);
  config.max_sweep_ttl = static_cast<int>(r.u32());
  config.screening = r.u8() != 0;
  config.measure_dns = r.u8() != 0;
  config.measure_http = r.u8() != 0;
  config.measure_tls = r.u8() != 0;
  std::uint8_t transport = r.u8();
  if (transport > static_cast<std::uint8_t>(DnsDecoyTransport::kOblivious)) r.fail();
  config.dns_transport = static_cast<DnsDecoyTransport>(transport);
  config.tls_decoys_use_ech = r.u8() != 0;
  config.analysis_workers = static_cast<int>(r.u32());
  sim::FaultProfile& faults = config.faults;
  faults.link_loss = get_double(r);
  faults.jitter = get_time(r);
  faults.link_flap_rate = get_double(r);
  faults.link_flap_duration = get_time(r);
  faults.vp_churn = get_double(r);
  faults.vp_outage = get_time(r);
  std::uint32_t outages = r.u32();
  if (!plausible_count(r, outages, 20)) return Error("wire: implausible outage count");
  faults.collector_outages.reserve(outages);
  for (std::uint32_t i = 0; i < outages && r.ok(); ++i) {
    sim::CollectorOutage outage;
    outage.location = get_string(r);
    outage.start = get_time(r);
    outage.duration = get_time(r);
    faults.collector_outages.push_back(std::move(outage));
  }
  faults.max_retries = static_cast<int>(r.u32());
  faults.retry_timeout = get_time(r);
  faults.quarantine_threshold = static_cast<int>(r.u32());
  if (!r.ok()) return Error("wire: malformed campaign config");
  return config;
}

void encode_emissions(ByteWriter& w, const std::vector<PlanEmission>& emissions) {
  w.u32(static_cast<std::uint32_t>(emissions.size()));
  for (const PlanEmission& emission : emissions) {
    w.u32(emission.seq);
    w.u32(emission.path_id);
    w.u32(static_cast<std::uint32_t>(emission.vp_index));
    put_time(w, emission.when);
    w.u8(emission.ttl);
    w.u8(emission.phase2 ? 1 : 0);
  }
}

Result<std::vector<PlanEmission>> decode_emissions(ByteReader& r) {
  std::uint32_t count = r.u32();
  if (!plausible_count(r, count, 22)) return Error("wire: implausible emission count");
  std::vector<PlanEmission> emissions;
  emissions.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    PlanEmission emission;
    emission.seq = r.u32();
    emission.path_id = r.u32();
    emission.vp_index = static_cast<std::int32_t>(r.u32());
    emission.when = get_time(r);
    emission.ttl = r.u8();
    emission.phase2 = r.u8() != 0;
    emissions.push_back(emission);
  }
  if (!r.ok()) return Error("wire: malformed emission list");
  return emissions;
}

void encode_plan(ByteWriter& w, const CampaignPlan& plan) {
  w.u32(static_cast<std::uint32_t>(plan.paths().size()));
  for (const PathRecord& path : plan.paths()) put_path(w, path);
  encode_emissions(w, plan.emissions());
  w.u64(plan.phase1_count());
}

Result<CampaignPlan> decode_plan(ByteReader& r) {
  std::uint32_t path_count = r.u32();
  if (!plausible_count(r, path_count, 19)) return Error("wire: implausible path count");
  std::vector<PathRecord> paths;
  paths.reserve(path_count);
  for (std::uint32_t i = 0; i < path_count && r.ok(); ++i) {
    PathRecord path = get_path(r);
    // Plan path ids are dense from 0 (CampaignPlan::path indexes by id).
    if (path.path_id != i) return Error("wire: plan path ids not dense");
    paths.push_back(std::move(path));
  }
  if (!r.ok()) return Error("wire: truncated plan path table");
  auto emissions = decode_emissions(r);
  if (!emissions.ok()) return emissions.error();
  std::uint64_t phase1_count = r.u64();
  if (!r.ok()) return Error("wire: malformed plan");
  if (phase1_count > emissions.value().size()) {
    return Error("wire: plan phase1_count exceeds emission count");
  }
  for (const PlanEmission& emission : emissions.value()) {
    if (emission.path_id >= paths.size()) return Error("wire: emission path out of range");
  }
  return CampaignPlan::restore(std::move(paths), std::move(emissions).take(),
                               static_cast<std::size_t>(phase1_count));
}

// -- protocol messages -------------------------------------------------------

void put_u32_list(ByteWriter& w, const std::vector<std::uint32_t>& values) {
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (std::uint32_t value : values) w.u32(value);
}

bool get_u32_list(ByteReader& r, std::vector<std::uint32_t>& out) {
  std::uint32_t count = r.u32();
  if (!plausible_count(r, count, 4)) {
    r.fail();
    return false;
  }
  out.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) out.push_back(r.u32());
  return r.ok();
}

// vp_index u32 | failure_streak u32 | quarantined u8 | quarantined_at time
void put_carries(ByteWriter& w, const std::vector<VpCarry>& carries) {
  w.u32(static_cast<std::uint32_t>(carries.size()));
  for (const VpCarry& carry : carries) {
    w.u32(carry.vp_index);
    w.u32(static_cast<std::uint32_t>(carry.failure_streak));
    w.u8(carry.quarantined ? 1 : 0);
    put_time(w, carry.quarantined_at);
  }
}

bool get_carries(ByteReader& r, std::vector<VpCarry>& out) {
  std::uint32_t count = r.u32();
  if (!plausible_count(r, count, 17)) {
    r.fail();
    return false;
  }
  out.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    VpCarry carry;
    carry.vp_index = r.u32();
    carry.failure_streak = static_cast<std::int32_t>(r.u32());
    std::uint8_t quarantined = r.u8();
    if (quarantined > 1) {
      r.fail();
      return false;
    }
    carry.quarantined = quarantined != 0;
    carry.quarantined_at = get_time(r);
    out.push_back(carry);
  }
  return r.ok();
}

Bytes encode_init(const InitMsg& msg) {
  ByteWriter w;
  w.u32(msg.shard_count);
  w.u32(msg.proc_index);
  w.u32(msg.proc_count);
  w.u8(static_cast<std::uint8_t>(msg.scheduler));
  w.u32(msg.heartbeat_ms);
  encode_testbed_config(w, msg.bed_config);
  encode_campaign_config(w, msg.config);
  return std::move(w).take();
}

Result<InitMsg> decode_init(BytesView payload) {
  ByteReader r(payload);
  InitMsg msg;
  msg.shard_count = r.u32();
  msg.proc_index = r.u32();
  msg.proc_count = r.u32();
  std::uint8_t scheduler = r.u8();
  if (r.ok() && scheduler > static_cast<std::uint8_t>(SchedulerMode::kSteal)) {
    return Error("wire: unknown scheduler mode");
  }
  msg.scheduler = static_cast<SchedulerMode>(scheduler);
  msg.heartbeat_ms = r.u32();
  if (r.ok() && msg.heartbeat_ms > 3'600'000) {
    return Error("wire: implausible heartbeat interval");
  }
  msg.bed_config = decode_testbed_config(r);
  auto config = decode_campaign_config(r);
  if (!config.ok()) return config.error();
  msg.config = std::move(config).take();
  if (!r.ok() || r.remaining() != 0) return Error("wire: malformed init message");
  if (msg.shard_count == 0 || msg.proc_count == 0 || msg.proc_index >= msg.proc_count) {
    return Error("wire: inconsistent init layout");
  }
  return msg;
}

Bytes encode_heartbeat(const HeartbeatMsg& msg) {
  ByteWriter w;
  w.u32(msg.proc_index);
  w.u64(msg.seq);
  return std::move(w).take();
}

Result<HeartbeatMsg> decode_heartbeat(BytesView payload) {
  ByteReader r(payload);
  HeartbeatMsg msg;
  msg.proc_index = r.u32();
  msg.seq = r.u64();
  if (!r.ok() || r.remaining() != 0) return Error("wire: malformed heartbeat message");
  return msg;
}

Bytes encode_verdicts(const VerdictsMsg& msg) {
  ByteWriter w;
  put_time(w, msg.clock);
  w.u32(static_cast<std::uint32_t>(msg.verdicts.size()));
  for (const auto& [vp, verdict] : msg.verdicts) {
    w.u32(vp);
    w.u8(static_cast<std::uint8_t>(verdict));
  }
  return std::move(w).take();
}

Result<VerdictsMsg> decode_verdicts(BytesView payload) {
  ByteReader r(payload);
  VerdictsMsg msg;
  msg.clock = get_time(r);
  std::uint32_t count = r.u32();
  if (!plausible_count(r, count, 5)) return Error("wire: implausible verdict count");
  msg.verdicts.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    std::uint32_t vp = r.u32();
    std::uint8_t verdict = r.u8();
    if (verdict > static_cast<std::uint8_t>(ScreeningVerdict::kIntercepted)) {
      return Error("wire: unknown screening verdict");
    }
    msg.verdicts.emplace_back(vp, static_cast<ScreeningVerdict>(verdict));
  }
  if (!r.ok() || r.remaining() != 0) return Error("wire: malformed verdicts message");
  return msg;
}

Bytes encode_phase1(const Phase1Msg& msg) {
  ByteWriter w;
  encode_plan(w, msg.plan);
  put_time(w, msg.barrier);
  put_u32_list(w, msg.deal);
  return std::move(w).take();
}

Result<Phase1Msg> decode_phase1(BytesView payload) {
  ByteReader r(payload);
  auto plan = decode_plan(r);
  if (!plan.ok()) return plan.error();
  Phase1Msg msg;
  msg.plan = std::move(plan).take();
  msg.barrier = get_time(r);
  if (!get_u32_list(r, msg.deal)) return Error("wire: malformed phase1 deal");
  if (!r.ok() || r.remaining() != 0) return Error("wire: malformed phase1 message");
  return msg;
}

Bytes encode_barrier(const BarrierMsg& msg) {
  ByteWriter w;
  encode_ledger(w, msg.ledger);
  encode_hits(w, msg.hits);
  put_u32_list(w, msg.replicated);
  w.u32(static_cast<std::uint32_t>(msg.quarantined.size()));
  for (std::uint64_t vp : msg.quarantined) w.u64(vp);
  put_u32_list(w, msg.cancelled);
  put_carries(w, msg.carries);
  return std::move(w).take();
}

Result<BarrierMsg> decode_barrier(BytesView payload) {
  ByteReader r(payload);
  BarrierMsg msg;
  auto ledger = decode_ledger(r);
  if (!ledger.ok()) return ledger.error();
  msg.ledger = std::move(ledger).take();
  auto hits = decode_hits(r);
  if (!hits.ok()) return hits.error();
  msg.hits = std::move(hits).take();
  if (!get_u32_list(r, msg.replicated)) return Error("wire: malformed replicated set");
  std::uint32_t quarantined = r.u32();
  if (!plausible_count(r, quarantined, 8)) return Error("wire: implausible quarantine count");
  msg.quarantined.reserve(quarantined);
  for (std::uint32_t i = 0; i < quarantined && r.ok(); ++i) msg.quarantined.push_back(r.u64());
  if (!get_u32_list(r, msg.cancelled)) return Error("wire: malformed cancelled set");
  if (!get_carries(r, msg.carries)) return Error("wire: malformed carry list");
  if (!r.ok() || r.remaining() != 0) return Error("wire: malformed barrier message");
  return msg;
}

Bytes encode_phase2(const Phase2Msg& msg) {
  ByteWriter w;
  w.u64(msg.schedule_from);
  encode_emissions(w, msg.tail);
  put_time(w, msg.end);
  put_u32_list(w, msg.deal);
  put_carries(w, msg.carries);
  return std::move(w).take();
}

Result<Phase2Msg> decode_phase2(BytesView payload) {
  ByteReader r(payload);
  Phase2Msg msg;
  msg.schedule_from = r.u64();
  auto tail = decode_emissions(r);
  if (!tail.ok()) return tail.error();
  msg.tail = std::move(tail).take();
  msg.end = get_time(r);
  if (!get_u32_list(r, msg.deal)) return Error("wire: malformed phase2 deal");
  if (!get_carries(r, msg.carries)) return Error("wire: malformed carry list");
  if (!r.ok() || r.remaining() != 0) return Error("wire: malformed phase2 message");
  return msg;
}

Bytes encode_final(const FinalMsg& msg) {
  ByteWriter w;
  encode_ledger(w, msg.ledger);
  encode_hits(w, msg.hits);
  put_u32_list(w, msg.replicated);
  w.u32(static_cast<std::uint32_t>(msg.hops.size()));
  for (const auto& [seq, hop] : msg.hops) {
    w.u32(seq);
    w.u32(hop.value());
  }
  encode_loop_stats(w, msg.stats);
  encode_net_counters(w, msg.net);
  encode_coverage(w, msg.coverage);
  w.u64(msg.steals_attempted);
  w.u64(msg.steals_completed);
  return std::move(w).take();
}

Result<FinalMsg> decode_final(BytesView payload) {
  ByteReader r(payload);
  FinalMsg msg;
  auto ledger = decode_ledger(r);
  if (!ledger.ok()) return ledger.error();
  msg.ledger = std::move(ledger).take();
  auto hits = decode_hits(r);
  if (!hits.ok()) return hits.error();
  msg.hits = std::move(hits).take();
  if (!get_u32_list(r, msg.replicated)) return Error("wire: malformed replicated set");
  std::uint32_t hops = r.u32();
  if (!plausible_count(r, hops, 8)) return Error("wire: implausible hop count");
  msg.hops.reserve(hops);
  for (std::uint32_t i = 0; i < hops && r.ok(); ++i) {
    std::uint32_t seq = r.u32();
    msg.hops.emplace_back(seq, net::Ipv4Addr(r.u32()));
  }
  msg.stats = decode_loop_stats(r);
  msg.net = decode_net_counters(r);
  msg.coverage = decode_coverage(r);
  msg.steals_attempted = r.u64();
  msg.steals_completed = r.u64();
  if (!r.ok() || r.remaining() != 0) return Error("wire: malformed final message");
  return msg;
}

}  // namespace shadowprobe::core::wire
