#include "core/campaign.h"

#include <algorithm>

#include "common/log.h"
#include "common/strutil.h"

namespace shadowprobe::core {

namespace {
/// Pair resolver: the non-serving sibling three addresses above the service
/// address in the same /24 (the paper's example: 1.1.1.4 as to 1.1.1.1).
net::Ipv4Addr pair_resolver_of(net::Ipv4Addr service) {
  return net::Ipv4Addr((service.value() & 0xFFFFFF00) |
                       ((service.value() + 3) & 0xFF));
}
}  // namespace

Campaign::Campaign(Testbed& bed, CampaignConfig config)
    : bed_(bed), config_(config), rng_(bed.fork_rng("campaign")) {
  // Agents for every candidate VP; screened-out VPs simply never send.
  for (const auto& vp : bed_.topology().vantage_points()) {
    VpAgent::Hooks hooks;
    hooks.on_dest_response = [this](std::uint32_t seq, SimTime when) {
      ledger_.mark_response(seq, when);
      if (++response_counts_[seq] > 1) replicated_seqs_.insert(seq);
    };
    hooks.on_hop = [this](std::uint32_t seq, net::Ipv4Addr hop, SimTime) {
      hop_log_.emplace(seq, hop);
    };
    hooks.on_interception = [this](const topo::VantagePoint& vp, net::Ipv4Addr) {
      intercepted_vps_.insert(&vp);
    };
    auto agent = std::make_unique<VpAgent>(vp, rng_.fork("vp-" + vp.id), std::move(hooks));
    agent->bind(bed_.net());
    agent->set_dns_transport(config_.dns_transport, bed_.oblivious_proxy_addr());
    agent->set_tls_ech(config_.tls_decoys_use_ech);
    agent_index_[&vp] = agent.get();
    agents_.push_back(std::move(agent));
  }
  // Control server for the TTL canary, hosted next to the US honeypot.
  control_server_ = std::make_unique<ControlServer>();
  sim::NodeId node = bed_.topology().add_host_in_as(
      bed_.net(), bed_.topology().honeypots().front().asn, "control-server",
      control_server_.get());
  control_addr_ = bed_.net().address(node);
}

Campaign::~Campaign() = default;

VpAgent* Campaign::agent_for(const topo::VantagePoint* vp) { return agent_index_.at(vp); }

void Campaign::run() {
  if (config_.screening) {
    run_screening();
  } else {
    for (const auto& vp : bed_.topology().vantage_points()) active_vps_.push_back(&vp);
    screening_.candidates = screening_.usable = static_cast<int>(active_vps_.size());
  }
  schedule_phase1();
  // Phase II is planned at its start time, from whatever the honeypots have
  // captured by then.
  bed_.loop().schedule_at(config_.phase1_window + config_.phase2_grace,
                          [this] { schedule_phase2(); });
  bed_.loop().run_until(config_.total_duration);

  Correlator correlator(ledger_);
  unsolicited_ = correlator.classify(bed_.logbook().hits(), &replicated_seqs_);
  ObserverLocator locator(ledger_, hop_log_);
  findings_ = locator.locate(unsolicited_);
  SP_LOG_INFO(strprintf("campaign complete: %zu decoys, %zu honeypot hits, "
                        "%zu unsolicited, %zu located paths",
                        ledger_.decoy_count(), bed_.logbook().size(),
                        unsolicited_.size(), findings_.size()));
}

void Campaign::run_screening() {
  const auto& vps = bed_.topology().vantage_points();
  screening_.candidates = static_cast<int>(vps.size());

  // TTL canaries: two datagrams with distinct initial TTLs; an honest
  // tunnel preserves their difference end-to-end.
  constexpr std::uint8_t kCanaryLow = 40;
  constexpr std::uint8_t kCanaryHigh = 50;
  for (const auto& vp : vps) {
    if (vp.residential) continue;  // rejected at provider vetting already
    VpAgent* agent = agent_for(&vp);
    agent->send_ttl_canary(control_addr_, kCanaryLow, 1);
    agent->send_ttl_canary(control_addr_, kCanaryHigh, 2);
    // Pair-resolver probes towards every public resolver's sibling address.
    for (const auto& target : bed_.topology().dns_target_hosts()) {
      if (target.info.kind != topo::DnsTargetKind::kPublicResolver) continue;
      agent->send_pair_probe(pair_resolver_of(target.addr));
    }
  }
  // Let the probes settle (a few RTTs suffice; one simulated hour is safe).
  bed_.loop().run_until(bed_.loop().now() + kHour);

  for (const auto& vp : vps) {
    if (vp.residential) {
      ++screening_.rejected_residential;
      continue;
    }
    int low = control_server_->arrival_ttl(vp.addr, 1);
    int high = control_server_->arrival_ttl(vp.addr, 2);
    if (low < 0 || high < 0 || high - low != kCanaryHigh - kCanaryLow) {
      ++screening_.rejected_ttl_mangling;
      continue;
    }
    if (intercepted_vps_.count(&vp) > 0) {
      ++screening_.rejected_interception;
      continue;
    }
    active_vps_.push_back(&vp);
  }
  screening_.usable = static_cast<int>(active_vps_.size());
  SP_LOG_INFO(strprintf("screening: %d candidates, %d usable (-%d residential, "
                        "-%d ttl, -%d interception)",
                        screening_.candidates, screening_.usable,
                        screening_.rejected_residential, screening_.rejected_ttl_mangling,
                        screening_.rejected_interception));
}

void Campaign::schedule_phase1() {
  SimTime start = bed_.loop().now();
  int rounds = std::max(1, config_.phase1_rounds);
  auto emission_time = [&](int round, std::size_t ordinal, std::size_t total) {
    // Round-robin over VPs, evenly spread across the window: this realizes
    // the paper's strict per-target rate limit (each destination sees the
    // whole VP fleet once per window, far below 2 packets/second).
    if (total == 0) total = 1;
    return start + static_cast<SimDuration>(round) * config_.phase1_window +
           static_cast<SimDuration>(
               static_cast<double>(ordinal % total) / static_cast<double>(total) *
               static_cast<double>(config_.phase1_window));
  };

  const std::size_t total_dns =
      active_vps_.size() * bed_.topology().dns_target_hosts().size();
  const std::size_t total_web = active_vps_.size() * bed_.topology().web_sites().size();

  if (config_.measure_dns) {
    std::size_t ordinal = 0;
    for (const topo::VantagePoint* vp : active_vps_) {
      for (const auto& target : bed_.topology().dns_target_hosts()) {
        PathRecord path;
        path.vp = vp;
        switch (target.info.kind) {
          case topo::DnsTargetKind::kPublicResolver:
            path.dest_kind = DestKind::kPublicResolver;
            break;
          case topo::DnsTargetKind::kSelfBuilt:
            path.dest_kind = DestKind::kSelfBuilt;
            break;
          case topo::DnsTargetKind::kRoot:
            path.dest_kind = DestKind::kRoot;
            break;
          case topo::DnsTargetKind::kTld:
            path.dest_kind = DestKind::kTld;
            break;
        }
        path.dest_name = target.info.name;
        path.dest_addr = target.addr;
        path.dest_country = target.info.country;
        path.protocol = DecoyProtocol::kDns;
        std::uint32_t path_id = ledger_.add_path(path);
        for (int round = 0; round < rounds; ++round) {
          SimTime when = emission_time(round, ordinal, total_dns);
          bed_.loop().schedule_at(when, [this, path_id, vp, addr = target.addr, when] {
            DecoyRecord& record = ledger_.create(path_id, when, vp->addr, addr,
                                                 DecoyProtocol::kDns, 64, false);
            agent_for(vp)->send_dns_decoy(record);
          });
        }
        ++ordinal;
      }
    }
  }

  std::size_t ordinal = 0;
  for (const topo::VantagePoint* vp : active_vps_) {
    for (const auto& site : bed_.topology().web_sites()) {
      for (DecoyProtocol protocol : {DecoyProtocol::kHttp, DecoyProtocol::kTls}) {
        if (protocol == DecoyProtocol::kHttp && !config_.measure_http) continue;
        if (protocol == DecoyProtocol::kTls && !config_.measure_tls) continue;
        PathRecord path;
        path.vp = vp;
        path.dest_kind = DestKind::kWebSite;
        path.dest_name = site.domain;
        path.dest_addr = site.addr;
        path.dest_country = site.country;
        path.protocol = protocol;
        std::uint32_t path_id = ledger_.add_path(path);
        for (int round = 0; round < rounds; ++round) {
          SimTime when = emission_time(round, ordinal, total_web);
          bed_.loop().schedule_at(when,
                                  [this, path_id, vp, addr = site.addr, protocol, when] {
            DecoyRecord& record =
                ledger_.create(path_id, when, vp->addr, addr, protocol, 64, false);
            if (protocol == DecoyProtocol::kHttp) {
              agent_for(vp)->send_http_decoy(record);
            } else {
              agent_for(vp)->send_tls_decoy(record);
            }
          });
        }
      }
      ++ordinal;
    }
  }
}

void Campaign::schedule_phase2() {
  // Problematic paths as known at this point in the campaign.
  Correlator correlator(ledger_);
  auto so_far = correlator.classify(bed_.logbook().hits(), &replicated_seqs_);
  auto paths = Correlator::problematic_paths(so_far);
  SP_LOG_INFO(strprintf("phase II: sweeping %zu problematic paths", paths.size()));

  SimTime start = bed_.loop().now();
  std::size_t index = 0;
  for (std::uint32_t path_id : paths) {
    const PathRecord& path = ledger_.path(path_id);
    SimTime when = start + static_cast<SimDuration>(
                               static_cast<double>(index++) /
                               static_cast<double>(paths.size()) *
                               static_cast<double>(config_.phase2_window));
    sweep_path(path, when);
  }
}

void Campaign::sweep_path(const PathRecord& path, SimTime start) {
  // Consecutive decoys, one per initial TTL, 200 ms apart — each TTL value
  // yields a fresh identifier so the honeypot can attribute unsolicited
  // requests to the exact hop count.
  for (int ttl = 1; ttl <= config_.max_sweep_ttl; ++ttl) {
    SimTime when = start + static_cast<SimDuration>(ttl) * 200 * kMillisecond;
    std::uint32_t path_id = path.path_id;
    const topo::VantagePoint* vp = path.vp;
    net::Ipv4Addr dst = path.dest_addr;
    DecoyProtocol protocol = path.protocol;
    bed_.loop().schedule_at(when, [this, path_id, vp, dst, protocol, ttl, when] {
      DecoyRecord& record = ledger_.create(path_id, when, vp->addr, dst, protocol,
                                           static_cast<std::uint8_t>(ttl), true);
      if (protocol == DecoyProtocol::kDns) {
        agent_for(vp)->send_dns_decoy(record);
      } else {
        // No TCP handshake during tracerouting (the sweep would otherwise
        // hold destination connections open until the TTL grows enough).
        agent_for(vp)->send_raw_decoy(record);
      }
    });
  }
}

}  // namespace shadowprobe::core
