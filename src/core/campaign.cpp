#include "core/campaign.h"

#include <algorithm>

#include "common/log.h"
#include "common/strutil.h"
#include "core/screening.h"

namespace shadowprobe::core {

Campaign::Campaign(Testbed& bed, CampaignConfig config)
    : bed_(bed), config_(config), rng_(bed.fork_rng("campaign")) {
  // Agents for every candidate VP; screened-out VPs simply never send. The
  // per-VP stream is *derived* from the VP id (not forked in construction
  // order) so a shard that builds agents for a subset of VPs still gives
  // each one the identical stream.
  vps_base_ = bed_.topology().vantage_points().data();
  agents_.reserve(bed_.topology().vantage_points().size());
  for (const auto& vp : bed_.topology().vantage_points()) {
    VpAgent::Hooks hooks;
    hooks.on_dest_response = [this](std::uint32_t seq, SimTime when) {
      ledger_.mark_response(seq, when);
      if (++response_counts_[seq] > 1) replicated_seqs_.insert(seq);
    };
    hooks.on_hop = [this](std::uint32_t seq, net::Ipv4Addr hop, SimTime) {
      hop_log_.emplace(seq, hop);
    };
    hooks.on_interception = [this](const topo::VantagePoint& vp, net::Ipv4Addr) {
      intercepted_vps_.insert(&vp);
    };
    auto agent =
        std::make_unique<VpAgent>(vp, rng_.derive("vp-" + vp.id), std::move(hooks));
    agent->bind(bed_.net());
    agent->set_dns_transport(config_.dns_transport, bed_.oblivious_proxy_addr());
    agent->set_tls_ech(config_.tls_decoys_use_ech);
    agents_.push_back(std::move(agent));
  }
  // Control server for the TTL canary, hosted next to the US honeypot.
  control_server_ = std::make_unique<ControlServer>();
  sim::NodeId node = bed_.add_host_in_as(bed_.topology().honeypots().front().asn,
                                         "control-server", control_server_.get());
  control_addr_ = bed_.net().address(node);
}

Campaign::~Campaign() = default;

VpAgent* Campaign::agent_for(const topo::VantagePoint* vp) {
  // One agent per VP, built in vantage_points() order: index by pointer
  // arithmetic against the topology's VP array.
  return agents_[static_cast<std::size_t>(vp - vps_base_)].get();
}

void Campaign::run() {
  if (config_.screening) {
    run_screening();
  } else {
    for (const auto& vp : bed_.topology().vantage_points()) active_vps_.push_back(&vp);
    screening_.candidates = screening_.usable = static_cast<int>(active_vps_.size());
  }

  // Translate the active set into stable topology indices and build the
  // Phase-I plan (with all path ids and seqs preassigned).
  const auto& vps = bed_.topology().vantage_points();
  std::vector<std::size_t> active_indices;
  active_indices.reserve(active_vps_.size());
  for (const topo::VantagePoint* vp : active_vps_) {
    active_indices.push_back(static_cast<std::size_t>(vp - vps.data()));
  }
  plan_ = CampaignPlan::build_phase1(bed_.topology(), config_, active_indices,
                                     bed_.loop().now());
  ledger_.seed_paths(plan_.paths());
  schedule_emissions(0, plan_.emissions().size());

  // Phase II is planned at its start time, from whatever the honeypots have
  // captured by then.
  bed_.loop().schedule_at(config_.phase1_window + config_.phase2_grace,
                          [this] { schedule_phase2(); });
  bed_.loop().run_until(config_.total_duration);

  unsolicited_ = classify_unsolicited(ledger_, bed_.logbook().hits(), &replicated_seqs_,
                                      config_.analysis_workers);
  ObserverLocator locator(ledger_, hop_log_);
  findings_ = locator.locate(unsolicited_);
  SP_LOG_INFO(strprintf("campaign complete: %zu decoys, %zu honeypot hits, "
                        "%zu unsolicited, %zu located paths",
                        ledger_.decoy_count(), bed_.logbook().size(),
                        unsolicited_.size(), findings_.size()));
}

void Campaign::run_screening() {
  const auto& vps = bed_.topology().vantage_points();
  screening_.candidates = static_cast<int>(vps.size());

  for (const auto& vp : vps) {
    if (vp.residential) continue;  // rejected at provider vetting already
    send_screening_probes(*agent_for(&vp), control_addr_, bed_.topology());
  }
  // Let the probes settle (a few RTTs suffice; one simulated hour is safe).
  bed_.loop().run_until(bed_.loop().now() + kHour);

  for (const auto& vp : vps) {
    ScreeningVerdict verdict =
        screen_vp(vp, *control_server_, intercepted_vps_.contains(&vp));
    switch (verdict) {
      case ScreeningVerdict::kResidential:
        ++screening_.rejected_residential;
        break;
      case ScreeningVerdict::kTtlMangling:
        ++screening_.rejected_ttl_mangling;
        break;
      case ScreeningVerdict::kIntercepted:
        ++screening_.rejected_interception;
        break;
      case ScreeningVerdict::kUsable:
        active_vps_.push_back(&vp);
        break;
    }
  }
  screening_.usable = static_cast<int>(active_vps_.size());
  SP_LOG_INFO(strprintf("screening: %d candidates, %d usable (-%d residential, "
                        "-%d ttl, -%d interception)",
                        screening_.candidates, screening_.usable,
                        screening_.rejected_residential, screening_.rejected_ttl_mangling,
                        screening_.rejected_interception));
}

void Campaign::schedule_emissions(std::size_t first, std::size_t last) {
  const auto& vps = bed_.topology().vantage_points();
  // The plan fixes the emission count, so size the queue, the decoy store
  // and the hit log once instead of regrowing them mid-campaign.
  bed_.loop().reserve(bed_.loop().pending() + (last - first));
  ledger_.reserve_decoys(last - first);
  bed_.logbook().reserve(last - first);
  for (std::size_t i = first; i < last; ++i) {
    const PlanEmission& emission = plan_.emissions()[i];
    const PathRecord& path = plan_.path(emission.path_id);
    const topo::VantagePoint* vp = &vps.at(static_cast<std::size_t>(path.vp_index));
    bed_.loop().schedule_at(
        emission.when,
        [this, emission, vp, dst = path.dest_addr, protocol = path.protocol] {
          DecoyRecord& record = ledger_.create_preassigned(
              emission.seq, emission.path_id, emission.when, vp->addr, dst, protocol,
              emission.ttl, emission.phase2);
          if (protocol == DecoyProtocol::kDns) {
            agent_for(vp)->send_dns_decoy(record);
          } else if (emission.phase2) {
            // No TCP handshake during tracerouting (the sweep would otherwise
            // hold destination connections open until the TTL grows enough).
            agent_for(vp)->send_raw_decoy(record);
          } else if (protocol == DecoyProtocol::kHttp) {
            agent_for(vp)->send_http_decoy(record);
          } else {
            agent_for(vp)->send_tls_decoy(record);
          }
        });
  }
}

void Campaign::schedule_phase2() {
  // Problematic paths as known at this point in the campaign.
  auto so_far = classify_unsolicited(ledger_, bed_.logbook().hits(), &replicated_seqs_,
                                     config_.analysis_workers);
  auto paths = Correlator::problematic_paths(so_far);
  SP_LOG_INFO(strprintf("phase II: sweeping %zu problematic paths", paths.size()));
  std::size_t first = plan_.extend_phase2(paths, config_, bed_.loop().now());
  schedule_emissions(first, plan_.emissions().size());
}

CampaignResult Campaign::result() const {
  CampaignResult out;
  out.config = config_;
  out.screening = screening_;
  out.ledger = ledger_;
  out.active_vps = active_vps_;
  out.hits = bed_.logbook().hits();
  out.unsolicited = unsolicited_;
  out.findings = findings_;
  out.hop_log = hop_log_;
  out.replicated_seqs = replicated_seqs_;
  out.shard_stats.requested_shards = 1;
  out.shard_stats.effective_shards = 1;
  out.shard_stats.per_shard.push_back(bed_.loop().stats());
  out.shard_stats.per_shard_net.push_back(bed_.net().counters());
  return out;
}

}  // namespace shadowprobe::core
