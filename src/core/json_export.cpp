#include "core/json_export.h"

#include <algorithm>

#include "common/strutil.h"

namespace shadowprobe::core {

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value directly follows "key":
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::escape_into(std::string_view text) {
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += strprintf("\\u%04x", c);
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  needs_comma_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  needs_comma_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separator();
  escape_into(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separator();
  escape_into(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separator();
  out_ += strprintf("%.10g", number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separator();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separator();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  separator();
  out_ += "null";
  return *this;
}

namespace {

void write_cdf(JsonWriter& json, const Cdf& cdf) {
  json.begin_object();
  json.key("count").value(static_cast<std::int64_t>(cdf.count()));
  json.key("quantiles_seconds").begin_object();
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    json.key(strprintf("p%02d", static_cast<int>(p * 100))).value(cdf.quantile(p));
  }
  json.end_object();
  json.key("at").begin_object();
  json.key("1min").value(cdf.at(60));
  json.key("1h").value(cdf.at(3600));
  json.key("1d").value(cdf.at(86400));
  json.key("10d").value(cdf.at(10 * 86400.0));
  json.end_object();
  json.end_object();
}

}  // namespace

std::string export_campaign_json(Testbed& bed, const CampaignResult& result,
                                 const CampaignAnalysis& analysis) {
  JsonWriter json;
  json.begin_object();

  json.key("config").begin_object();
  json.key("seed").value(static_cast<std::int64_t>(bed.config().topology.seed));
  json.key("global_vps").value(bed.config().topology.global_vps);
  json.key("cn_vps").value(bed.config().topology.cn_vps);
  json.key("web_sites").value(bed.config().topology.web_sites);
  json.key("total_duration_days")
      .value(to_seconds(result.config.total_duration) / 86400.0);
  json.end_object();

  const auto& screening = result.screening;
  json.key("screening").begin_object();
  json.key("candidates").value(screening.candidates);
  json.key("usable").value(screening.usable);
  json.key("rejected_residential").value(screening.rejected_residential);
  json.key("rejected_ttl_mangling").value(screening.rejected_ttl_mangling);
  json.key("rejected_interception").value(screening.rejected_interception);
  json.end_object();

  json.key("volume").begin_object();
  json.key("decoys").value(static_cast<std::int64_t>(result.ledger.decoy_count()));
  json.key("paths").value(static_cast<std::int64_t>(result.ledger.paths().size()));
  json.key("honeypot_hits").value(static_cast<std::int64_t>(result.hits.size()));
  json.key("unsolicited_requests")
      .value(static_cast<std::int64_t>(result.unsolicited.size()));
  json.end_object();

  // Fault-profile runs (and only those) carry the coverage block, so the
  // null profile's export stays byte-identical to a fault-free build. Every
  // field here is layout-invariant across shard / worker counts.
  if (result.coverage) {
    json.key("fault_profile").value(result.config.faults.str());
    const CoverageStats& cov = *result.coverage;
    json.key("coverage").begin_object();
    json.key("phase1_planned").value(static_cast<std::int64_t>(cov.phase1_planned));
    json.key("decoys_attempted").value(static_cast<std::int64_t>(cov.decoys_attempted));
    json.key("decoys_delivered").value(static_cast<std::int64_t>(cov.decoys_delivered));
    json.key("decoys_lost").value(static_cast<std::int64_t>(cov.decoys_lost));
    json.key("decoys_retried").value(static_cast<std::int64_t>(cov.decoys_retried));
    json.key("retry_attempts").value(static_cast<std::int64_t>(cov.retry_attempts));
    json.key("tcp_retransmissions")
        .value(static_cast<std::int64_t>(cov.tcp_retransmissions));
    json.key("decoys_cancelled").value(static_cast<std::int64_t>(cov.decoys_cancelled));
    json.key("decoys_rescheduled")
        .value(static_cast<std::int64_t>(cov.decoys_rescheduled));
    json.key("phase2_deferred").value(static_cast<std::int64_t>(cov.phase2_deferred));
    json.key("vps_quarantined").value(static_cast<std::int64_t>(cov.vps_quarantined));
    json.key("honeypot_downtime_drops")
        .value(static_cast<std::int64_t>(cov.honeypot_downtime_drops));
    // Worst links first (ties by canonical name pair). Per-shard per-link
    // drop counts sum to the same totals for any shard/worker layout, so the
    // table is safe inside the byte-identity contract.
    {
      std::vector<sim::LinkDropCounters> links = cov.link_drops;
      std::sort(links.begin(), links.end(),
                [](const sim::LinkDropCounters& a, const sim::LinkDropCounters& b) {
                  if (a.total() != b.total()) return a.total() > b.total();
                  if (a.node_a != b.node_a) return a.node_a < b.node_a;
                  return a.node_b < b.node_b;
                });
      constexpr std::size_t kTopLinks = 10;
      if (links.size() > kTopLinks) links.resize(kTopLinks);
      json.key("link_drops").begin_array();
      for (const auto& link : links) {
        json.begin_object();
        json.key("node_a").value(link.node_a);
        json.key("node_b").value(link.node_b);
        json.key("link_loss").value(static_cast<std::int64_t>(link.link_loss));
        json.key("link_down").value(static_cast<std::int64_t>(link.link_down));
        json.end_object();
      }
      json.end_array();
    }
    json.end_object();
  }

  const auto& ratios = analysis.ratios;
  const auto& resolver_h = analysis.resolver_h;
  json.key("resolver_h").begin_array();
  for (const auto& name : resolver_h) json.value(name);
  json.end_array();

  json.key("path_ratios").begin_array();
  for (DecoyProtocol protocol :
       {DecoyProtocol::kDns, DecoyProtocol::kHttp, DecoyProtocol::kTls}) {
    for (const auto& dest : ratios.destinations_by_ratio(protocol)) {
      auto total = ratios.total(protocol, dest);
      auto cn = ratios.group(protocol, dest, true);
      auto global = ratios.group(protocol, dest, false);
      json.begin_object();
      json.key("protocol").value(decoy_protocol_name(protocol));
      json.key("destination").value(dest);
      json.key("paths").value(total.paths);
      json.key("problematic").value(total.problematic);
      json.key("ratio").value(total.ratio());
      json.key("cn_ratio").value(cn.ratio());
      json.key("global_ratio").value(global.ratio());
      json.end_object();
    }
  }
  json.end_array();

  const auto& locations = analysis.locations;
  json.key("observer_locations").begin_object();
  for (const auto& [protocol, shares] : locations.shares) {
    json.key(decoy_protocol_name(protocol)).begin_array();
    for (int hop = 1; hop <= 10; ++hop) json.value(shares.count(hop) ? shares.at(hop) : 0.0);
    json.end_array();
  }
  json.end_object();

  const auto& ases = analysis.ases;
  json.key("observer_ases").begin_object();
  json.key("total_observer_ips").value(ases.total_observer_ips);
  json.key("cn_share").value(ases.observer_countries.share("CN"));
  for (const auto& [protocol, rows] : ases.rows) {
    json.key(decoy_protocol_name(protocol)).begin_array();
    std::size_t printed = 0;
    for (const auto& row : rows) {
      json.begin_object();
      json.key("asn").value(static_cast<std::int64_t>(row.asn));
      json.key("name").value(row.as_name);
      json.key("country").value(row.country);
      json.key("observer_ips").value(row.observer_ips);
      json.key("share").value(row.share);
      json.end_object();
      if (++printed == 5) break;
    }
    json.end_array();
  }
  json.end_object();

  const auto& dns_cdfs = analysis.dns_cdfs;
  json.key("interval_cdf_dns").begin_object();
  for (const auto& [name, cdf] : dns_cdfs) {
    json.key(name);
    write_cdf(json, cdf);
  }
  json.end_object();

  const auto& web_cdfs = analysis.web_cdfs;
  json.key("interval_cdf_web").begin_object();
  for (const auto& [protocol, cdf] : web_cdfs) {
    json.key(decoy_protocol_name(protocol));
    write_cdf(json, cdf);
  }
  json.end_object();

  const auto& combos = analysis.combos;
  json.key("decoy_outcomes").begin_object();
  for (const auto& [dest, shares] : combos.shares) {
    json.key(dest).begin_object();
    for (const auto& [outcome, share] : shares) {
      json.key(decoy_outcome_name(outcome)).value(share);
    }
    json.end_object();
  }
  json.end_object();

  const auto& retention = analysis.retention;
  json.key("retention").begin_object();
  json.key("over3_after_1h").value(retention.over3_after_1h);
  json.key("over10_after_1h").value(retention.over10_after_1h);
  json.key("web_after_10d").value(retention.web_after_10d);
  json.key("considered_decoys").value(retention.considered_decoys);
  json.end_object();

  const auto& incentives = analysis.incentives;
  json.key("incentives").begin_object();
  json.key("http_requests").value(incentives.http_requests);
  json.key("exploits_found").value(incentives.exploits_found);
  json.key("payload_classes").begin_object();
  for (const auto& [cls, share] : incentives.payload_shares) {
    json.key(intel::payload_class_name(cls)).value(share);
  }
  json.end_object();
  json.key("blocklist_rates").begin_object();
  json.key("dns_decoy_http").value(incentives.dns_decoy_http_origin_blocklisted);
  json.key("dns_decoy_https").value(incentives.dns_decoy_https_origin_blocklisted);
  json.key("web_decoy_http").value(incentives.web_decoy_http_origin_blocklisted);
  json.key("web_decoy_https").value(incentives.web_decoy_https_origin_blocklisted);
  json.end_object();
  json.end_object();

  json.end_object();
  return json.str();
}

std::string export_campaign_json(Testbed& bed, const CampaignResult& result,
                                 int workers) {
  return export_campaign_json(bed, result, analyze_campaign(bed, result, workers));
}

std::string export_campaign_json(Testbed& bed, const Campaign& campaign) {
  return export_campaign_json(bed, campaign.result(), 1);
}

}  // namespace shadowprobe::core
