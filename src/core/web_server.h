// Destination web server behind a Tranco-style top site.
//
// HTTP and TLS decoys are sent (after a real TCP handshake) to these hosts,
// exactly as the paper sends decoys to addresses behind the Tranco top 1K.
// The server answers GETs and ClientHellos like an ordinary site; its
// observer hooks are the attachment point for *destination-side* TLS/HTTP
// shadowing (the paper finds 65% of TLS observers at the destination).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "net/dns.h"
#include "sim/network.h"
#include "sim/tcp_stack.h"

namespace shadowprobe::core {

class WebSiteServer : public sim::DatagramHandler {
 public:
  /// (time is implicit via the network clock) host header / SNI observers.
  using NameObserver = std::function<void(net::Ipv4Addr client, const net::DnsName& name)>;

  WebSiteServer(std::string domain, Rng rng);

  void bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr);

  /// Called with the Host header of every HTTP request served.
  void set_host_observer(NameObserver observer) { host_observer_ = std::move(observer); }
  /// Called with the SNI of every TLS ClientHello served.
  void set_sni_observer(NameObserver observer) { sni_observer_ = std::move(observer); }

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] const std::string& domain() const noexcept { return domain_; }
  [[nodiscard]] std::uint64_t http_requests() const noexcept { return http_requests_; }
  [[nodiscard]] std::uint64_t tls_handshakes() const noexcept { return tls_handshakes_; }

 private:
  Bytes serve_http(const sim::ConnKey& key, BytesView data);
  Bytes serve_tls(const sim::ConnKey& key, BytesView data);

  std::string domain_;
  Rng rng_;
  std::unique_ptr<sim::TcpStack> tcp_;
  NameObserver host_observer_;
  NameObserver sni_observer_;
  std::uint64_t http_requests_ = 0;
  std::uint64_t tls_handshakes_ = 0;
};

}  // namespace shadowprobe::core
