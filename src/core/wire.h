// Wire format for controller <-> shard-worker campaign traffic.
//
// The multi-process backend runs shards in separate OS processes; everything
// crossing that boundary — the campaign plan going out, shard ledgers,
// logbooks and counters coming back — travels as framed binary messages
// defined here. Design rules:
//
//   - *Endian-stable*: every multi-byte integer is big-endian via
//     ByteWriter/ByteReader (common/bytes.h), so a frame produced on any
//     host decodes identically on any other.
//   - *Framed*: magic, version, message type, shard id, payload length, and
//     a CRC32 over the payload. A truncated stream, a foreign protocol, or
//     a corrupted frame is rejected with a descriptive Error — never UB,
//     never a hang.
//   - *Versioned*: kWireVersion bumps on any layout change; a decoder
//     rejects frames from a different version outright (controller and
//     workers are the same binary, so cross-version talk means operator
//     error, not a compatibility case to paper over).
//   - *Canonical*: encoders emit container contents in a deterministic
//     order (ledgers/paths as stored, sets sorted ascending), so
//     encode -> decode -> encode is byte-identical — the property the wire
//     round-trip tests pin.
//
// Payload codecs cover every type the shard-result merge consumes:
// DecoyLedger, honeypot hit logs, CoverageStats, NetworkCounters,
// EventLoopStats, ShardExecutionStats, the campaign/testbed configs, and
// the CampaignPlan. Decoders validate enums, bounds and duplicate keys and
// surface failures as Result values (common/error.h).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "core/campaign_config.h"
#include "core/campaign_plan.h"
#include "core/campaign_result.h"
#include "core/honeypot.h"
#include "core/ledger.h"
#include "core/screening.h"
#include "core/testbed.h"
#include "core/vp_scheduler.h"

namespace shadowprobe::core::wire {

// -- framing ----------------------------------------------------------------

/// "SPWF" — shadowprobe wire frame.
inline constexpr std::uint32_t kMagic = 0x53505746;
/// v2: scheduler byte in Init, VP deals in Phase1/Phase2, fault-state
/// carries in Barrier/Phase2, steal counters in Final (the work-stealing
/// scheduler's cross-process rebalancing).
/// v3: heartbeat interval in Init and kHeartbeat liveness frames (the
/// controller's worker-supervision layer).
inline constexpr std::uint16_t kWireVersion = 3;
/// Upper bound on a sane payload (a scale-1 shard ledger is ~a few MB);
/// anything larger is treated as a corrupt length field.
inline constexpr std::uint32_t kMaxPayload = 1u << 30;

/// Message types of the controller/worker protocol. Controller -> worker
/// messages carry shard id 0 (they address the whole worker); worker ->
/// controller result frames carry the shard id the payload belongs to.
enum class MsgType : std::uint16_t {
  kInit = 1,               ///< C->W: shard/process layout + both configs
  kRunScreening = 2,       ///< C->W: run the screening phase
  kScreeningVerdicts = 3,  ///< W->C: verdicts for the worker's owned VPs
  kPhase1 = 4,             ///< C->W: full CampaignPlan + barrier time
  kBarrierShard = 5,       ///< W->C: one shard's interim results
  kPhase2 = 6,             ///< C->W: plan extension + campaign horizon
  kFinalShard = 7,         ///< W->C: one shard's final results
  kHeartbeat = 8,          ///< W->C: liveness pulse while a phase computes
};

struct Frame {
  MsgType type = MsgType::kInit;
  std::uint32_t shard_id = 0;
  Bytes payload;
};

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `data`.
[[nodiscard]] std::uint32_t crc32(BytesView data);

/// Frame layout: u32 magic | u16 version | u16 type | u32 shard_id |
/// u32 payload_len | payload | u32 crc32(payload).
[[nodiscard]] Bytes encode_frame(MsgType type, std::uint32_t shard_id, BytesView payload);
/// Decodes one frame that must span `buffer` exactly (tests / single-shot
/// use). Rejects bad magic, version or type, short payloads, trailing
/// garbage, and checksum mismatches.
[[nodiscard]] Result<Frame> decode_frame(BytesView buffer);

/// The Error message FrameChannel::recv returns on a clean end-of-stream
/// (EOF before the first header byte). A worker treats it as orderly
/// shutdown; EOF *inside* a frame reports a distinct truncation error.
inline constexpr const char* kEofMessage = "wire: end of stream";
/// The Error message FrameChannel::recv returns when a read deadline
/// expires before a complete frame arrived (header missing *or* a peer that
/// stopped writing mid-frame). The supervisor maps it to a stalled worker.
inline constexpr const char* kTimeoutMessage = "wire: read timed out";

/// Blocking frame I/O over a pair of file descriptors (the controller's
/// socketpair end, or the worker's stdin/stdout). Reads surface EOF and
/// corruption as Error values; writes throw std::runtime_error (a dead peer
/// is unrecoverable for the writer). Writes use send(MSG_NOSIGNAL) on
/// sockets — and a SIGPIPE-masked write on pipes — so a crashed peer
/// produces EPIPE, not a fatal SIGPIPE. Sends are serialized by an internal
/// mutex so a heartbeat thread can pulse while the owner emits results;
/// recv is single-consumer.
class FrameChannel {
 public:
  FrameChannel(int in_fd, int out_fd) : in_fd_(in_fd), out_fd_(out_fd) {}

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  void send(MsgType type, std::uint32_t shard_id, BytesView payload);
  /// Receives one frame. `timeout_ms` < 0 blocks indefinitely (the worker's
  /// command loop); >= 0 bounds the wait for the *whole* frame with a
  /// poll-based deadline, so a peer that goes silent mid-frame yields
  /// kTimeoutMessage instead of hanging the reader forever.
  [[nodiscard]] Result<Frame> recv(int timeout_ms = -1);

 private:
  int in_fd_;
  int out_fd_;
  int out_is_socket_ = -1;  // tri-state cache: -1 unknown, 0 no, 1 yes
  std::mutex send_mu_;
};

// -- primitive helpers (shared by the codecs and their tests) ---------------

void put_string(ByteWriter& w, std::string_view s);
[[nodiscard]] std::string get_string(ByteReader& r);
void put_time(ByteWriter& w, SimTime t);
[[nodiscard]] SimTime get_time(ByteReader& r);
void put_double(ByteWriter& w, double v);
[[nodiscard]] double get_double(ByteReader& r);
/// Length-prefixed u32 list (the deal encoding). get_* returns false (and
/// latches r's error) on an implausible count or truncation.
void put_u32_list(ByteWriter& w, const std::vector<std::uint32_t>& values);
[[nodiscard]] bool get_u32_list(ByteReader& r, std::vector<std::uint32_t>& out);
/// Length-prefixed VpCarry list (barrier/phase2 fault-state hand-off).
void put_carries(ByteWriter& w, const std::vector<VpCarry>& carries);
[[nodiscard]] bool get_carries(ByteReader& r, std::vector<VpCarry>& out);

// -- payload codecs ---------------------------------------------------------
//
// Each encode_x appends x's canonical encoding to `w`; each decode_x reads
// one x from `r`, latching r's error flag on malformed input. Compound
// decoders (decode_ledger, ...) also return Result so callers get a message
// naming what broke.

void encode_ledger(ByteWriter& w, const DecoyLedger& ledger);
[[nodiscard]] Result<DecoyLedger> decode_ledger(ByteReader& r);

void encode_hits(ByteWriter& w, const std::vector<HoneypotHit>& hits);
[[nodiscard]] Result<std::vector<HoneypotHit>> decode_hits(ByteReader& r);

void encode_link_drops(ByteWriter& w, const std::vector<sim::LinkDropCounters>& links);
[[nodiscard]] std::vector<sim::LinkDropCounters> decode_link_drops(ByteReader& r);

void encode_coverage(ByteWriter& w, const CoverageStats& cov);
[[nodiscard]] CoverageStats decode_coverage(ByteReader& r);

void encode_net_counters(ByteWriter& w, const sim::NetworkCounters& net);
[[nodiscard]] sim::NetworkCounters decode_net_counters(ByteReader& r);

void encode_loop_stats(ByteWriter& w, const sim::EventLoopStats& stats);
[[nodiscard]] sim::EventLoopStats decode_loop_stats(ByteReader& r);

void encode_shard_stats(ByteWriter& w, const ShardExecutionStats& stats);
[[nodiscard]] Result<ShardExecutionStats> decode_shard_stats(ByteReader& r);

void encode_testbed_config(ByteWriter& w, const TestbedConfig& config);
[[nodiscard]] TestbedConfig decode_testbed_config(ByteReader& r);

void encode_campaign_config(ByteWriter& w, const CampaignConfig& config);
[[nodiscard]] Result<CampaignConfig> decode_campaign_config(ByteReader& r);

void encode_plan(ByteWriter& w, const CampaignPlan& plan);
[[nodiscard]] Result<CampaignPlan> decode_plan(ByteReader& r);

void encode_emissions(ByteWriter& w, const std::vector<PlanEmission>& emissions);
[[nodiscard]] Result<std::vector<PlanEmission>> decode_emissions(ByteReader& r);

// -- protocol messages -------------------------------------------------------
//
// Whole-payload codecs for the controller/worker conversation; one struct
// per MsgType that carries data (kRunScreening is payload-free). encode_*
// returns the frame payload; decode_* consumes exactly one payload.

/// kInit: everything a worker needs to build its substrate and runners.
struct InitMsg {
  std::uint32_t shard_count = 1;
  std::uint32_t proc_index = 0;  ///< this worker's index; owns shards s where
                                 ///< s % proc_count == proc_index
  std::uint32_t proc_count = 1;
  /// Execution schedule for the worker's shard set. With kSteal the worker
  /// drains per-phase VP queues (stealing within its own shards) and honours
  /// the per-phase deals the controller ships; with kStatic it executes the
  /// fixed round-robin ownership.
  SchedulerMode scheduler = SchedulerMode::kStatic;
  /// Interval between the worker's kHeartbeat liveness frames while it
  /// computes (milliseconds of wall time; 0 disables the pulse and, with
  /// it, controller-side stall detection). Validated on decode like the
  /// scheduler byte — an implausible interval rejects the whole Init.
  std::uint32_t heartbeat_ms = 0;
  TestbedConfig bed_config;
  CampaignConfig config;
};
[[nodiscard]] Bytes encode_init(const InitMsg& msg);
[[nodiscard]] Result<InitMsg> decode_init(BytesView payload);

/// kHeartbeat: a worker's liveness pulse, sent on a side thread every
/// InitMsg::heartbeat_ms while the worker builds or computes a phase. The
/// controller only refreshes the worker's stall deadline; `seq` increments
/// per pulse so a babbling peer replaying one captured frame still trips
/// the monotonicity check.
struct HeartbeatMsg {
  std::uint32_t proc_index = 0;
  std::uint64_t seq = 0;
};
[[nodiscard]] Bytes encode_heartbeat(const HeartbeatMsg& msg);
[[nodiscard]] Result<HeartbeatMsg> decode_heartbeat(BytesView payload);

/// kScreeningVerdicts: the worker's owned VPs only, ascending by vp index,
/// plus the worker's post-screening clock (identical across workers — the
/// controller verifies).
struct VerdictsMsg {
  SimTime clock = 0;
  std::vector<std::pair<std::uint32_t, ScreeningVerdict>> verdicts;
};
[[nodiscard]] Bytes encode_verdicts(const VerdictsMsg& msg);
[[nodiscard]] Result<VerdictsMsg> decode_verdicts(BytesView payload);

/// kPhase1: the full plan plus the Phase-II barrier time. `deal` is the
/// controller's cross-process VP rebalance for the stealing scheduler:
/// vp_index -> shard, weight-balanced so every worker process starts the
/// phase with comparable load (stealing cannot cross a process boundary).
/// Empty = round-robin (always empty under the static scheduler).
struct Phase1Msg {
  CampaignPlan plan;
  SimTime barrier = 0;
  std::vector<std::uint32_t> deal;
};
[[nodiscard]] Bytes encode_phase1(const Phase1Msg& msg);
[[nodiscard]] Result<Phase1Msg> decode_phase1(BytesView payload);

/// kBarrierShard: one shard's interim results (sets sorted ascending).
struct BarrierMsg {
  DecoyLedger ledger;
  std::vector<HoneypotHit> hits;
  std::vector<std::uint32_t> replicated;
  std::vector<std::uint64_t> quarantined;
  std::vector<std::uint32_t> cancelled;
  /// Fault-state carries for the VPs this shard executed in Phase I
  /// (ascending by vp_index); the controller redistributes them with the
  /// Phase-II deal so a VP's next executor adopts its streak/quarantine
  /// state. Empty under the static scheduler or a null fault profile.
  std::vector<VpCarry> carries;
};
[[nodiscard]] Bytes encode_barrier(const BarrierMsg& msg);
[[nodiscard]] Result<BarrierMsg> decode_barrier(BytesView payload);

/// kPhase2: the plan extension — emissions()[schedule_from..) — plus the
/// campaign horizon. The worker verifies its plan size equals
/// schedule_from before appending (a mismatch means the controller and
/// worker diverged, which is fatal).
struct Phase2Msg {
  std::uint64_t schedule_from = 0;
  std::vector<PlanEmission> tail;
  SimTime end = 0;
  /// Cross-process VP rebalance for the Phase-II tail (see Phase1Msg::deal).
  std::vector<std::uint32_t> deal;
  /// Union of the Phase-I barrier carries (ascending by vp_index), broadcast
  /// so whichever shard claims a VP can adopt its Phase-I fault state.
  std::vector<VpCarry> carries;
};
[[nodiscard]] Bytes encode_phase2(const Phase2Msg& msg);
[[nodiscard]] Result<Phase2Msg> decode_phase2(BytesView payload);

/// kFinalShard: one shard's complete results.
struct FinalMsg {
  DecoyLedger ledger;
  std::vector<HoneypotHit> hits;
  std::vector<std::uint32_t> replicated;
  std::vector<std::pair<std::uint32_t, net::Ipv4Addr>> hops;  ///< by seq asc
  sim::EventLoopStats stats;
  sim::NetworkCounters net;
  CoverageStats coverage;
  std::uint64_t steals_attempted = 0;  ///< this shard's empty-deque claims
  std::uint64_t steals_completed = 0;  ///< whole VPs this shard stole
};
[[nodiscard]] Bytes encode_final(const FinalMsg& msg);
[[nodiscard]] Result<FinalMsg> decode_final(BytesView payload);

}  // namespace shadowprobe::core::wire
