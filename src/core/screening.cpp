#include "core/screening.h"

namespace shadowprobe::core {

namespace {
// TTL canaries: two datagrams with distinct initial TTLs; an honest tunnel
// preserves their difference end-to-end.
constexpr std::uint8_t kCanaryLow = 40;
constexpr std::uint8_t kCanaryHigh = 50;
}  // namespace

net::Ipv4Addr pair_resolver_of(net::Ipv4Addr service) {
  return net::Ipv4Addr((service.value() & 0xFFFFFF00) |
                       ((service.value() + 3) & 0xFF));
}

void send_screening_probes(VpAgent& agent, net::Ipv4Addr control_addr,
                           const topo::Topology& topo) {
  agent.send_ttl_canary(control_addr, kCanaryLow, 1);
  agent.send_ttl_canary(control_addr, kCanaryHigh, 2);
  // Pair-resolver probes towards every public resolver's sibling address.
  for (const auto& target : topo.dns_target_hosts()) {
    if (target.info.kind != topo::DnsTargetKind::kPublicResolver) continue;
    agent.send_pair_probe(pair_resolver_of(target.addr));
  }
}

ScreeningVerdict screen_vp(const topo::VantagePoint& vp, const ControlServer& control,
                           bool intercepted) {
  if (vp.residential) return ScreeningVerdict::kResidential;
  int low = control.arrival_ttl(vp.addr, 1);
  int high = control.arrival_ttl(vp.addr, 2);
  if (low < 0 || high < 0 || high - low != kCanaryHigh - kCanaryLow) {
    return ScreeningVerdict::kTtlMangling;
  }
  if (intercepted) return ScreeningVerdict::kIntercepted;
  return ScreeningVerdict::kUsable;
}

}  // namespace shadowprobe::core
