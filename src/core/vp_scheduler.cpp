#include "core/vp_scheduler.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace shadowprobe::core {

std::vector<std::uint32_t> round_robin_deal(std::size_t vp_count,
                                            std::uint32_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  std::vector<std::uint32_t> deal(vp_count);
  for (std::size_t vp = 0; vp < vp_count; ++vp) {
    deal[vp] = static_cast<std::uint32_t>(vp % shard_count);
  }
  return deal;
}

std::vector<std::uint32_t> balanced_deal(const std::vector<std::uint64_t>& weights,
                                         std::uint32_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  std::vector<std::uint32_t> deal(weights.size(), 0);
  // Heaviest-first greedy over the weighted VPs; ties on weight keep VP-index
  // order so the deal depends only on the weight vector, never on sort
  // internals (std::sort is not stable).
  std::vector<std::uint32_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  std::vector<std::uint64_t> load(shard_count, 0);
  // Zero-weight VPs contribute no work; deal them round-robin (by their rank
  // among zero-weight VPs) so the per-shard VP counts stay roughly even.
  std::size_t zero_rank = 0;
  for (std::uint32_t vp : order) {
    if (weights[vp] == 0) {
      deal[vp] = static_cast<std::uint32_t>(zero_rank++ % shard_count);
      continue;
    }
    std::uint32_t lightest = 0;
    for (std::uint32_t s = 1; s < shard_count; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    deal[vp] = lightest;
    load[lightest] += weights[vp];
  }
  return deal;
}

std::vector<std::vector<std::uint32_t>> bucket_emissions_by_vp(
    const CampaignPlan& plan, std::size_t first, std::size_t last,
    std::size_t vp_count) {
  std::vector<std::vector<std::uint32_t>> buckets(vp_count);
  const auto& emissions = plan.emissions();
  if (last > emissions.size()) last = emissions.size();
  for (std::size_t i = first; i < last; ++i) {
    if (emissions[i].vp_index < 0) continue;
    const auto vp = static_cast<std::size_t>(emissions[i].vp_index);
    if (vp >= buckets.size()) buckets.resize(vp + 1);
    buckets[vp].push_back(static_cast<std::uint32_t>(i));
  }
  return buckets;
}

std::vector<std::uint64_t> bucket_weights(
    const std::vector<std::vector<std::uint32_t>>& buckets) {
  std::vector<std::uint64_t> weights(buckets.size());
  for (std::size_t vp = 0; vp < buckets.size(); ++vp) {
    weights[vp] = buckets[vp].size();
  }
  return weights;
}

VpWorkQueue::VpWorkQueue(const std::vector<std::uint32_t>& deal,
                         std::uint32_t shard_count,
                         const std::vector<std::uint64_t>& weights,
                         const std::vector<bool>& include, bool allow_steal)
    : deques_(shard_count == 0 ? 1 : shard_count),
      remaining_(deques_.size(), 0),
      weights_(deal.size(), 1),
      executor_(deal.size(), kVpUnassigned),
      counters_(deques_.size()),
      allow_steal_(allow_steal) {
  for (std::size_t vp = 0; vp < deal.size(); ++vp) {
    if (vp < weights.size()) weights_[vp] = weights[vp];
    if (!include.empty() && (vp >= include.size() || !include[vp])) continue;
    const std::uint32_t shard =
        deal[vp] < deques_.size() ? deal[vp]
                                  : static_cast<std::uint32_t>(vp % deques_.size());
    deques_[shard].push_back(static_cast<std::uint32_t>(vp));
    // A zero-weight VP still costs one claim round-trip; count it as one
    // unit so victim selection sees deques with only trivial VPs left.
    remaining_[shard] += weights_[vp] > 0 ? weights_[vp] : 1;
  }
}

int VpWorkQueue::claim(std::uint32_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(shard < deques_.size());
  auto take = [&](std::uint32_t victim, bool from_front) {
    auto& dq = deques_[victim];
    std::uint32_t vp;
    if (from_front) {
      vp = dq.front();
      dq.pop_front();
    } else {
      vp = dq.back();
      dq.pop_back();
    }
    const std::uint64_t w = weights_[vp] > 0 ? weights_[vp] : 1;
    remaining_[victim] -= w < remaining_[victim] ? w : remaining_[victim];
    executor_[vp] = shard;
    return static_cast<int>(vp);
  };
  if (!deques_[shard].empty()) return take(shard, /*from_front=*/true);
  if (!allow_steal_) return -1;
  counters_[shard].attempted += 1;
  // Steal from the deque with the most remaining weight (tie: lowest shard
  // index). Taking the victim's *back* leaves its owner working the front
  // undisturbed, mirroring Shadow's host-steal discipline.
  std::uint32_t victim = deques_.size();
  for (std::uint32_t s = 0; s < deques_.size(); ++s) {
    if (s == shard || deques_[s].empty()) continue;
    if (victim == deques_.size() || remaining_[s] > remaining_[victim]) victim = s;
  }
  if (victim == deques_.size()) return -1;
  counters_[shard].completed += 1;
  return take(victim, /*from_front=*/false);
}

VpWorkQueue::StealCounters VpWorkQueue::counters(std::uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shard < counters_.size() ? counters_[shard] : StealCounters{};
}

}  // namespace shadowprobe::core
