// Behavioral analyzers: one function per table/figure of the paper's
// evaluation (Section 4/5). Each consumes only pipeline outputs — the decoy
// ledger, the classified unsolicited requests, Phase-II findings — plus the
// public intelligence interfaces (geo database, blocklist, signature DB);
// never the shadow ground truth.
//
// Every analyzer that scans the unsolicited-request vector accepts a
// `workers` count: the scan decomposes into per-partition partial
// accumulators (contiguous chunks of the vector) combined by an explicit,
// order-insensitive-or-order-preserving merge, so the produced table is
// byte-identical in exported JSON for any worker count. See analysis.cpp
// for the partial/merge shape of each table.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/campaign.h"
#include "intel/blocklist.h"
#include "intel/geoip.h"
#include "intel/signatures.h"

namespace shadowprobe::core {

// -- Table 1 ------------------------------------------------------------------

struct PlatformGroupSummary {
  std::string group;  // "Global (excl. CN)" / "China (CN mainland)" / "Total"
  int providers = 0;
  int ips = 0;
  int ases = 0;
  int regions = 0;  // countries, or CN provinces for the CN half
};

std::vector<PlatformGroupSummary> summarize_platform(
    const std::vector<const topo::VantagePoint*>& vps);

// -- Figure 3 -----------------------------------------------------------------

struct PathRatioCell {
  int paths = 0;
  int problematic = 0;

  [[nodiscard]] double ratio() const {
    return paths == 0 ? 0.0 : static_cast<double>(problematic) / paths;
  }
};

struct PathRatioTable {
  /// (protocol, destination label) -> VP-country -> cell. Destination label
  /// is the resolver name for DNS paths and the destination country for
  /// HTTP/TLS paths.
  std::map<std::pair<DecoyProtocol, std::string>, std::map<std::string, PathRatioCell>>
      cells;

  [[nodiscard]] PathRatioCell total(DecoyProtocol protocol,
                                    const std::string& dest_label) const;
  /// Aggregate over one VP-country group ("CN" / "global" = everything else).
  [[nodiscard]] PathRatioCell group(DecoyProtocol protocol, const std::string& dest_label,
                                    bool cn_platform) const;
  /// Destination labels seen for `protocol`, sorted by descending total ratio.
  [[nodiscard]] std::vector<std::string> destinations_by_ratio(DecoyProtocol protocol) const;
};

PathRatioTable path_ratios(const DecoyLedger& ledger,
                           const std::vector<UnsolicitedRequest>& unsolicited,
                           int workers = 1);

/// Resolver_h: the `count` resolvers with the highest problematic-path
/// ratio (the paper's top-5: Yandex, 114DNS, One DNS, DNS PAI, Vercara).
std::vector<std::string> top_shadowed_resolvers(const PathRatioTable& table,
                                                std::size_t count);

// -- Table 2 ------------------------------------------------------------------

struct LocationDistribution {
  /// Per protocol: normalized hop (1..10) -> share of located paths.
  std::map<DecoyProtocol, std::map<int, double>> shares;
  std::map<DecoyProtocol, int> located_paths;
};

LocationDistribution observer_locations(const std::vector<ObserverFinding>& findings);

// -- Table 3 ------------------------------------------------------------------

struct ObserverAsRow {
  std::uint32_t asn = 0;
  std::string as_name;
  std::string country;
  int observer_ips = 0;
  double share = 0.0;  // of on-wire observer IPs for this protocol
};

struct ObserverAsTable {
  std::map<DecoyProtocol, std::vector<ObserverAsRow>> rows;  // descending by count
  int total_observer_ips = 0;
  Counter<std::string> observer_countries;  // all protocols pooled
};

ObserverAsTable observer_ases(const std::vector<ObserverFinding>& findings,
                              const intel::GeoDatabase& geo);

// -- Figures 4 & 7 --------------------------------------------------------------

/// CDF of decoy->request intervals (seconds), keyed by destination resolver
/// (Figure 4) or by decoy protocol (Figure 7).
std::map<std::string, Cdf> interval_cdf_by_resolver(
    const DecoyLedger& ledger, const std::vector<UnsolicitedRequest>& unsolicited,
    const std::vector<std::string>& resolvers, int workers = 1);

std::map<DecoyProtocol, Cdf> interval_cdf_by_protocol(
    const std::vector<UnsolicitedRequest>& unsolicited, int workers = 1);

// -- Figure 5 -----------------------------------------------------------------

/// Per-decoy outcome category, ordered by "severity" (a decoy is assigned
/// its most telling outcome).
enum class DecoyOutcome {
  kNoUnsolicited = 0,
  kDnsWithinHour,
  kDnsAfterHours,
  kWebWithinDay,   // unsolicited HTTP/HTTPS within one day
  kWebAfterDays,   // unsolicited HTTP/HTTPS later than one day
};

std::string decoy_outcome_name(DecoyOutcome outcome);

struct ComboBreakdown {
  /// destination resolver -> outcome -> share of that resolver's DNS decoys.
  std::map<std::string, std::map<DecoyOutcome, double>> shares;
  std::map<std::string, int> decoys;  // Phase-I DNS decoys per destination
};

/// `vp_countries` (optional) restricts the breakdown to decoys emitted by
/// VPs in those countries — the paper reads 114DNS's Figure-5 bar over CN
/// vantage points.
ComboBreakdown protocol_combos(const DecoyLedger& ledger,
                               const std::vector<UnsolicitedRequest>& unsolicited,
                               const std::vector<std::string>& vp_countries = {},
                               int workers = 1);

// -- Figure 6 -----------------------------------------------------------------

struct OriginAsTable {
  /// destination resolver -> (ASN, AS name) -> unsolicited request count.
  std::map<std::string, Counter<std::string>> per_resolver;
  /// Blocklist hit rate over distinct origin addresses of unsolicited DNS
  /// queries (the paper: 5.2%).
  double dns_origin_blocklisted = 0.0;
  int distinct_dns_origins = 0;
};

OriginAsTable origin_ases(const DecoyLedger& ledger,
                          const std::vector<UnsolicitedRequest>& unsolicited,
                          const std::vector<std::string>& resolvers,
                          const intel::GeoDatabase& geo, const intel::Blocklist& blocklist,
                          int workers = 1);

// -- Section 5.1 statistics -----------------------------------------------------

struct RetentionStats {
  /// Among Phase-I DNS decoys, share still producing > 3 (resp. > 10)
  /// unsolicited DNS requests more than one hour after emission (§5.1
  /// measures DNS-data *reuse*; HTTP/HTTPS probes have their own metric
  /// below and do not count here).
  double over3_after_1h = 0.0;
  double over10_after_1h = 0.0;
  /// Share of DNS decoys to `long_retention_resolver` whose data re-appears
  /// in HTTP(S) requests 10 or more days later (the paper: ~40% for Yandex).
  double web_after_10d = 0.0;
  int considered_decoys = 0;
};

/// `resolvers` restricts the denominator to DNS decoys sent to those
/// destinations (the paper's Section 5.1 analyses Resolver_h); pass an
/// empty list to consider every DNS decoy.
RetentionStats retention_stats(const DecoyLedger& ledger,
                               const std::vector<UnsolicitedRequest>& unsolicited,
                               const std::vector<std::string>& resolvers,
                               const std::string& long_retention_resolver,
                               int workers = 1);

// -- Section 5 payloads & reputation --------------------------------------------

struct IncentiveStats {
  /// Payload class shares over unsolicited HTTP requests.
  std::map<intel::PayloadClass, double> payload_shares;
  int http_requests = 0;
  bool exploits_found = false;
  /// Blocklist hit rates over distinct origin addresses, per decoy protocol
  /// class and request protocol (DNS decoys: 57% HTTP / 72% HTTPS;
  /// HTTP/TLS decoys: 45% / 55%).
  double dns_decoy_http_origin_blocklisted = 0.0;
  double dns_decoy_https_origin_blocklisted = 0.0;
  double web_decoy_http_origin_blocklisted = 0.0;
  double web_decoy_https_origin_blocklisted = 0.0;
};

IncentiveStats incentive_stats(const std::vector<UnsolicitedRequest>& unsolicited,
                               const intel::SignatureDb& signatures,
                               const intel::Blocklist& blocklist, int workers = 1);

// -- Full-campaign analysis bundle ----------------------------------------------

/// Everything the report printers and the JSON export consume, computed in
/// one pass so downstream consumers never re-derive a table. The bundle is
/// what the post-barrier pipeline produces after classification.
struct CampaignAnalysis {
  PathRatioTable ratios;
  std::vector<std::string> resolver_h;  // top-5 shadowed resolvers
  LocationDistribution locations;
  ObserverAsTable ases;
  std::map<std::string, Cdf> dns_cdfs;       // Figure 4, over Resolver_h
  std::map<DecoyProtocol, Cdf> web_cdfs;     // Figure 7
  ComboBreakdown combos;                     // Figure 5
  RetentionStats retention;                  // §5.1, over Resolver_h
  IncentiveStats incentives;                 // §5 payloads & reputation
};

/// Computes every analysis table of a correlated campaign. `workers` sizes
/// the per-table scan pools; the bundle — and any JSON exported from it —
/// is byte-identical for any worker count.
CampaignAnalysis analyze_campaign(Testbed& bed, const CampaignResult& result,
                                  int workers = 1);

}  // namespace shadowprobe::core
