#include "core/locate.h"

#include <algorithm>

namespace shadowprobe::core {

int normalize_hop(int trigger_ttl, int dest_ttl) {
  if (dest_ttl <= 0) return 10;
  if (trigger_ttl >= dest_ttl) return 10;
  int normalized = static_cast<int>((static_cast<double>(trigger_ttl) * 10.0 +
                                     static_cast<double>(dest_ttl) - 1) /
                                    static_cast<double>(dest_ttl));
  return std::clamp(normalized, 1, 9);
}

std::vector<ObserverFinding> ObserverLocator::locate(
    const std::vector<UnsolicitedRequest>& unsolicited) const {
  // Smallest triggering TTL per path, over Phase-II decoys only.
  struct PathState {
    int min_trigger = 0;       // 0 = none yet
    std::uint32_t trigger_seq = 0;
    int dest_ttl = 0;
    DecoyProtocol protocol = DecoyProtocol::kDns;
    bool has_phase2 = false;
  };
  std::map<std::uint32_t, PathState> paths;

  for (const auto& decoy : ledger_.decoys()) {
    if (!decoy.phase2) continue;
    PathState& state = paths[decoy.path_id];
    state.has_phase2 = true;
    state.protocol = decoy.id.protocol;
    if (decoy.dest_responded &&
        (state.dest_ttl == 0 || decoy.id.ttl < state.dest_ttl)) {
      state.dest_ttl = decoy.id.ttl;
    }
  }
  for (const auto& request : unsolicited) {
    const DecoyRecord* record = ledger_.by_seq(request.seq);
    if (record == nullptr || !record->phase2) continue;
    PathState& state = paths[record->path_id];
    if (state.min_trigger == 0 || record->id.ttl < state.min_trigger) {
      state.min_trigger = record->id.ttl;
      state.trigger_seq = record->id.seq;
    }
  }

  std::vector<ObserverFinding> findings;
  for (const auto& [path_id, state] : paths) {
    if (!state.has_phase2 || state.min_trigger == 0 || state.dest_ttl == 0) continue;
    ObserverFinding finding;
    finding.path_id = path_id;
    finding.protocol = state.protocol;
    finding.min_trigger_ttl = state.min_trigger;
    finding.dest_ttl = state.dest_ttl;
    finding.normalized_hop = normalize_hop(state.min_trigger, state.dest_ttl);
    finding.at_destination = state.min_trigger >= state.dest_ttl;
    if (!finding.at_destination) {
      // The decoy that expired exactly at the observer hop revealed the
      // device address via ICMP (observers need not originate unsolicited
      // requests themselves, so source addresses cannot reveal them).
      if (const net::Ipv4Addr* hop = hop_log_.find(state.trigger_seq)) {
        finding.observer_addr = *hop;
      }
    }
    findings.push_back(finding);
  }
  return findings;
}

}  // namespace shadowprobe::core
