// CampaignEngine: the campaign controller over a pluggable shard backend.
//
// The engine owns the phase structure and the merges; *where* shards
// execute is a ShardBackend concern (core/shard_backend.h):
//
//   screening (backend)   -> merged verdicts fix the active-VP set
//   plan Phase I (serial) -> the CampaignPlan preassigns every path id and
//                            decoy seq, so identifiers — and the decoy
//                            domains derived from them — are independent of
//                            the shard count
//   Phase I (backend)     -> run to the Phase-II barrier
//   barrier (serial)      -> merge interim ledgers + canonically sorted
//                            hits, classify, extend the plan with TTL sweeps
//   Phase II (backend)    -> run to the campaign horizon
//   merge (serial)        -> one ledger / hit list / hop log, correlated
//                            into a CampaignResult identical in shape to a
//                            serial run's
//
// Determinism: for a fixed master seed the merged result is byte-identical
// for any shard count (including N=1) AND any backend — in-process threads
// or out-of-process workers — because ids come from the plan, behavioural
// RNG streams are keyed by entity names, every merge ends in a canonical
// sort, and the wire protocol transports shard results losslessly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign_config.h"
#include "core/campaign_plan.h"
#include "core/campaign_result.h"
#include "core/shard_backend.h"
#include "core/shard_runner.h"
#include "core/testbed.h"
#include "core/world.h"

namespace shadowprobe::core {

/// How the engine provisions per-shard substrates.
enum class SubstrateMode {
  /// Build one immutable World, instantiate N thin frozen Testbeds over it.
  /// Structural state (topology, layout, zones, blocklist, signatures) is
  /// shared read-only; peak RSS stays near-flat in the shard count.
  kSharedWorld,
  /// Build N full independent Testbed replicas (the pre-World behaviour).
  /// Kept as a fallback and as the reference substrate the shared-World
  /// byte-identity tests compare against.
  kReplicaPerShard,
};

/// Where shards execute. The default (shard_procs == 0) runs them as
/// threads in this process; shard_procs >= 1 forks that many
/// `--shard-worker` children and drives them over the wire protocol
/// (shard_procs == 1 still exercises the full protocol through one child).
struct EngineExec {
  int shard_procs = 0;
  /// Worker binary for the multi-process backend; empty resolves via
  /// $SHADOWPROBE_WORKER_BIN, then /proc/self/exe.
  std::string worker_exe;
  /// VP scheduler (core/vp_scheduler.h): kSteal (default) lets idle shards
  /// claim VPs from loaded ones; kStatic executes the fixed deal verbatim.
  /// Output is byte-identical either way — this only moves work.
  SchedulerMode scheduler = SchedulerMode::kSteal;
  /// Test-only override of the initial vp->shard deal for the in-process
  /// backend (the determinism suite skews it to force steals). Entries past
  /// the vector — or the whole vp range when empty — fall back to
  /// round-robin. Ignored by the multi-process backend, which computes its
  /// own weight-balanced deals.
  std::vector<std::uint32_t> initial_deal;
  /// Worker supervision knobs (multi-process backend only): respawn budget,
  /// heartbeat interval, stall timeout, backoff. See SupervisionConfig.
  SupervisionConfig supervision;
};

class CampaignEngine {
 public:
  using Decorator = ShardRunner::Decorator;

  /// Builds the per-shard substrates. In kSharedWorld mode (the default) one
  /// prototype Testbed is authored, frozen into a World, and N frozen
  /// instances are built over it concurrently; in kReplicaPerShard mode each
  /// shard authors a full private replica. Either way `shard_count` is
  /// clamped to [1, DecoyLedger::kMaxShards]; a clamp logs a warning and is
  /// recorded in the result's ShardExecutionStats.
  CampaignEngine(const TestbedConfig& bed_config, const CampaignConfig& config,
                 int shard_count, Decorator decorate = nullptr,
                 SubstrateMode mode = SubstrateMode::kSharedWorld);
  /// Shares a pre-built World (e.g. across several engines in one process).
  CampaignEngine(std::shared_ptr<const World> world, const CampaignConfig& config,
                 int shard_count, Decorator decorate = nullptr);
  /// Full-control constructor: exec.shard_procs >= 1 selects the
  /// multi-process backend (workers are spawned immediately and build their
  /// Worlds concurrently with this constructor's own World). The worker
  /// always applies its binary's default decorator, so `decorate` must
  /// match it for the controller's context to agree with the workers'
  /// substrates. Multi-process execution implies shared-World substrates
  /// inside each worker; `mode` only affects the in-process path.
  CampaignEngine(const TestbedConfig& bed_config, const CampaignConfig& config,
                 int shard_count, Decorator decorate, const EngineExec& exec,
                 SubstrateMode mode = SubstrateMode::kSharedWorld);
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Runs the full campaign and returns the merged, correlated result.
  CampaignResult run();

  [[nodiscard]] int shard_count() const noexcept { return backend_->shard_count(); }
  /// The context replica downstream consumers (geo database, signatures,
  /// blocklist, config — e.g. JSON export) read from: shard 0's Testbed for
  /// the in-process backend, a dedicated frozen instance for the
  /// multi-process one.
  [[nodiscard]] Testbed& primary() noexcept { return *primary_; }
  /// The shared immutable substrate; null in kReplicaPerShard mode.
  [[nodiscard]] const std::shared_ptr<const World>& world() const noexcept {
    return world_;
  }
  /// Simulator events processed across every shard's loop (perf reporting).
  /// For the multi-process backend this is known after run() completes.
  [[nodiscard]] std::uint64_t events_processed() noexcept {
    return backend_->events_processed();
  }

 private:
  /// Fresh ledger = plan paths + every shard's records, canonically ordered
  /// and rebound to the primary replica's VP storage.
  [[nodiscard]] DecoyLedger merged_ledger(
      const std::vector<const DecoyLedger*>& ledgers) const;
  [[nodiscard]] static std::vector<HoneypotHit> merged_hits(
      const std::vector<const std::vector<HoneypotHit>*>& shard_hits);

  /// Clamps the shard count, builds the backend, and wires the primary
  /// context testbed.
  void build_backend(const TestbedConfig& bed_config, int shard_count,
                     const Decorator& decorate, const EngineExec& exec,
                     SubstrateMode mode);

  CampaignConfig config_;
  CampaignPlan plan_;
  int requested_shards_ = 1;  ///< pre-clamp constructor argument
  int worker_procs_ = 0;      ///< 0 = in-process backend
  SchedulerMode scheduler_ = SchedulerMode::kSteal;
  std::shared_ptr<const World> world_;  ///< null in kReplicaPerShard mode
  std::unique_ptr<ShardBackend> backend_;
  std::unique_ptr<Testbed> context_bed_;  ///< multi-process mode only
  Testbed* primary_ = nullptr;
};

}  // namespace shadowprobe::core
