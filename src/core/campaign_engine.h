// CampaignEngine: VP-partitioned parallel campaign execution.
//
// The engine splits a campaign across N shards, each a ShardRunner with a
// full Testbed replica built from the same master seed. VPs are assigned
// round-robin by topology index; every phase runs on a pool of worker
// threads with a join barrier between phases:
//
//   screening (parallel)  -> merge verdicts, fix the active-VP set
//   plan Phase I (serial) -> the CampaignPlan preassigns every path id and
//                            decoy seq, so identifiers — and the decoy
//                            domains derived from them — are independent of
//                            the shard count
//   Phase I (parallel)    -> run to the Phase-II barrier
//   barrier (serial)      -> merge interim ledgers + canonically sorted
//                            hits, classify, extend the plan with TTL sweeps
//   Phase II (parallel)   -> run to the campaign horizon
//   merge (serial)        -> one ledger / hit list / hop log, correlated
//                            into a CampaignResult identical in shape to a
//                            serial run's
//
// Determinism: for a fixed master seed the merged result is byte-identical
// for any shard count (including N=1), because ids come from the plan,
// behavioural RNG streams are keyed by entity names, and every merge ends
// in a canonical sort.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/campaign_config.h"
#include "core/campaign_plan.h"
#include "core/campaign_result.h"
#include "core/shard_runner.h"
#include "core/testbed.h"
#include "core/world.h"

namespace shadowprobe::core {

/// How the engine provisions per-shard substrates.
enum class SubstrateMode {
  /// Build one immutable World, instantiate N thin frozen Testbeds over it.
  /// Structural state (topology, layout, zones, blocklist, signatures) is
  /// shared read-only; peak RSS stays near-flat in the shard count.
  kSharedWorld,
  /// Build N full independent Testbed replicas (the pre-World behaviour).
  /// Kept as a fallback and as the reference substrate the shared-World
  /// byte-identity tests compare against.
  kReplicaPerShard,
};

class CampaignEngine {
 public:
  using Decorator = ShardRunner::Decorator;

  /// Builds the per-shard substrates. In kSharedWorld mode (the default) one
  /// prototype Testbed is authored, frozen into a World, and N frozen
  /// instances are built over it concurrently; in kReplicaPerShard mode each
  /// shard authors a full private replica. Either way `shard_count` is
  /// clamped to [1, DecoyLedger::kMaxShards]; a clamp logs a warning and is
  /// recorded in the result's ShardExecutionStats.
  CampaignEngine(const TestbedConfig& bed_config, const CampaignConfig& config,
                 int shard_count, Decorator decorate = nullptr,
                 SubstrateMode mode = SubstrateMode::kSharedWorld);
  /// Shares a pre-built World (e.g. across several engines in one process).
  CampaignEngine(std::shared_ptr<const World> world, const CampaignConfig& config,
                 int shard_count, Decorator decorate = nullptr);
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Runs the full campaign and returns the merged, correlated result.
  CampaignResult run();

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(runners_.size());
  }
  /// Shard 0's replica — the context (geo database, signatures, blocklist,
  /// config) downstream consumers like JSON export read from.
  [[nodiscard]] Testbed& primary() noexcept { return runners_.front()->testbed(); }
  /// The shared immutable substrate; null in kReplicaPerShard mode.
  [[nodiscard]] const std::shared_ptr<const World>& world() const noexcept {
    return world_;
  }
  /// Simulator events processed across every shard's loop (perf reporting).
  [[nodiscard]] std::uint64_t events_processed() noexcept {
    std::uint64_t total = 0;
    for (const auto& runner : runners_) total += runner->testbed().loop().processed();
    return total;
  }

 private:
  /// Runs `fn` once per shard, on one worker thread per shard, and joins
  /// them all (the inter-phase barrier). Exceptions propagate to the caller.
  void for_each_shard(const std::function<void(ShardRunner&)>& fn);
  /// Fresh ledger = plan paths + every shard's records, canonically ordered
  /// and rebound to the primary replica's VP storage.
  [[nodiscard]] DecoyLedger merged_ledger() const;
  [[nodiscard]] std::vector<HoneypotHit> merged_hits() const;
  [[nodiscard]] FlatSet<std::uint32_t> merged_replicated() const;

  /// Clamps the shard count and builds the runners (world-backed when
  /// `world_` is set, full replicas otherwise).
  void build_runners(const TestbedConfig& bed_config, int shard_count,
                     const Decorator& decorate);

  CampaignConfig config_;
  CampaignPlan plan_;
  int requested_shards_ = 1;  ///< pre-clamp constructor argument
  std::shared_ptr<const World> world_;  ///< null in kReplicaPerShard mode
  std::vector<std::unique_ptr<ShardRunner>> runners_;
};

}  // namespace shadowprobe::core
