// World: the immutable, build-once half of the substrate.
//
// A campaign shard needs two kinds of state. The structural plan — topology
// graph and address plan, routing tables, GeoDatabase, signature database,
// blocklist contents, DNS zone data, the resolver/web-farm/honeypot
// inventory, and the TestbedConfig itself — is identical on every shard and
// never written after construction. Everything live — the event loop, TCP/
// UDP stacks, resolver caches, honeypot logbooks, the fault injector, RNG
// streams — is private per shard. Pre-refactor, each ShardRunner rebuilt
// both halves, so memory grew linearly with --shards.
//
// World captures the immutable half once: World::build constructs a full
// prototype Testbed (authoring mode), runs the deployment decorator so the
// exhibitor fleets' addresses and blocklist entries are part of the plan,
// appends the engine's per-shard "control-server" node, and freezes the
// result. Testbed::instantiate(world) then produces a thin per-shard
// Testbed whose mutable state is fresh but whose structural reads all alias
// the shared const World. See DESIGN.md ("World / ShardState split") for
// the aliasing rules and what must never live here.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "dnssrv/resolver.h"
#include "dnssrv/zone.h"
#include "intel/blocklist.h"
#include "intel/signatures.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace shadowprobe::core {

class World {
 public:
  /// Same contract as ShardRunner::Decorator: installs ground-truth
  /// shadowing on the prototype so its address plan (prober fleets,
  /// blocklist registrations) becomes part of the frozen layout. The
  /// returned deployment handle is discarded — only the plan survives; the
  /// live exhibitors are re-instantiated per shard.
  using Decorator = std::function<std::shared_ptr<void>(Testbed&)>;

  /// Builds the shared substrate once. `decorate` must be the same
  /// decorator later passed to the per-shard instantiation, or the replay
  /// of node creation diverges (and throws).
  static std::shared_ptr<const World> build(const TestbedConfig& config,
                                            const Decorator& decorate = nullptr);

  [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }
  [[nodiscard]] const topo::Topology& topology() const noexcept { return *topology_; }
  [[nodiscard]] const sim::NetworkLayout& layout() const noexcept { return *layout_; }
  [[nodiscard]] const intel::SignatureDb& signatures() const noexcept { return *signatures_; }
  [[nodiscard]] const intel::Blocklist& blocklist() const noexcept { return *blocklist_; }
  /// First node the prototype created *after* Topology::build — the start
  /// of the dynamic tail each shard replays (oblivious proxy, prober
  /// fleets, control server).
  [[nodiscard]] sim::NodeId first_dynamic_node() const noexcept { return first_dynamic_node_; }
  [[nodiscard]] const std::vector<net::Ipv4Addr>& root_hints() const noexcept {
    return roots_;
  }
  [[nodiscard]] const std::vector<ResolverSpec>& resolvers() const noexcept {
    return resolvers_;
  }

 private:
  friend class Testbed;
  World() = default;

  TestbedConfig config_;
  std::shared_ptr<const sim::NetworkLayout> layout_;
  std::shared_ptr<const topo::Topology> topology_;
  sim::NodeId first_dynamic_node_ = 0;
  std::shared_ptr<const intel::SignatureDb> signatures_;
  std::shared_ptr<const intel::Blocklist> blocklist_;
  std::vector<net::Ipv4Addr> roots_;
  std::shared_ptr<const dnssrv::Zone> root_zone_;
  std::shared_ptr<const dnssrv::Zone> com_zone_;
  std::shared_ptr<const dnssrv::Zone> org_zone_;
  std::shared_ptr<const dnssrv::Zone> experiment_zone_;
  std::vector<ResolverSpec> resolvers_;
};

}  // namespace shadowprobe::core
