// Active port scanning of located observers (Section 5.2: "Open ports of
// observers on the wire").
//
// The scanner performs real TCP SYN probing against the ICMP-revealed
// observer addresses: SYN-ACK = open, RST = closed, silence = filtered.
// The paper found 92% of observers expose no open port at all, and port 179
// (BGP) the most common among the rest — identifying the devices as
// inter-network routers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/network.h"
#include "sim/tcp_stack.h"

namespace shadowprobe::core {

enum class PortState { kFiltered = 0, kClosed, kOpen };

struct PortScanResult {
  net::Ipv4Addr target;
  std::map<std::uint16_t, PortState> ports;

  [[nodiscard]] bool any_open() const {
    for (const auto& [port, state] : ports) {
      if (state == PortState::kOpen) return true;
    }
    return false;
  }
};

struct PortScanSummary {
  int targets = 0;
  int with_open_ports = 0;
  std::map<std::uint16_t, int> open_port_counts;

  [[nodiscard]] double no_open_share() const {
    return targets == 0 ? 0.0
                        : 1.0 - static_cast<double>(with_open_ports) / targets;
  }
  /// Most frequently open port (0 when nothing is open anywhere).
  [[nodiscard]] std::uint16_t top_open_port() const;
};

class PortScanner : public sim::DatagramHandler {
 public:
  explicit PortScanner(Rng rng) : rng_(rng) {}

  void bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr);

  /// Default probe set (common service ports + BGP).
  static const std::vector<std::uint16_t>& default_ports();

  /// Schedules SYN probes for every (target, port); verdicts settle after
  /// `timeout` of simulated time (the caller keeps running the loop).
  void scan(const std::vector<net::Ipv4Addr>& targets,
            const std::vector<std::uint16_t>& ports, SimDuration timeout = 3 * kSecond);

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] const std::vector<PortScanResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] PortScanSummary summarize() const;

 private:
  void verdict(const sim::ConnKey& key, PortState state);

  Rng rng_;
  sim::Network* net_ = nullptr;
  net::Ipv4Addr addr_;
  std::unique_ptr<sim::TcpStack> tcp_;
  FlatMap<sim::ConnKey, std::pair<std::size_t, std::uint16_t>> probes_;  // -> (idx, port)
  std::vector<PortScanResult> results_;
};

}  // namespace shadowprobe::core
