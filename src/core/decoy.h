// Decoy identifier codec and decoy domain construction.
//
// Every decoy embeds a unique domain of the form
//
//     <identifier>-<seq>.www.<experiment zone>
//
// where the identifier is a base32 encoding of (send time, VP address,
// destination address, initial IP TTL, decoy protocol) plus a checksum —
// mirroring the paper's "identifier string (time, IP, TTL)". Because the
// initial TTL is part of the identity, every TTL variant sent during the
// Phase-II traceroute sweep yields a distinct domain, and the honeypot can
// map any unsolicited request back to the exact decoy (and hop) that
// leaked it.
#pragma once

#include <optional>
#include <string>

#include "common/time.h"
#include "core/types.h"
#include "net/dns.h"
#include "net/ipv4.h"

namespace shadowprobe::core {

struct DecoyId {
  std::uint32_t time_sec = 0;  // campaign time of emission, seconds
  net::Ipv4Addr vp;
  net::Ipv4Addr dst;
  std::uint8_t ttl = 64;
  DecoyProtocol protocol = DecoyProtocol::kDns;
  std::uint32_t seq = 0;  // ledger sequence number (the "-9982" suffix)

  bool operator==(const DecoyId&) const = default;
};

/// Encodes the identifier into a DNS-label-safe string ("g6d8...-9982").
std::string encode_decoy_label(const DecoyId& id);

/// Decodes a label; nullopt on malformed input or checksum mismatch (the
/// honeypot sees plenty of junk labels — resolver case randomization, typos
/// of scanners — and must reject them cleanly).
std::optional<DecoyId> decode_decoy_label(std::string_view label);

/// Full decoy domain: "<label>.www.<experiment zone>".
net::DnsName decoy_domain(const DecoyId& id);

/// Extracts and decodes the identifier from any name under the experiment
/// suffix; nullopt for names that are not decoy domains.
std::optional<DecoyId> decoy_from_name(const net::DnsName& name);

/// Extracts the identifier from a host string (HTTP Host header / TLS SNI).
std::optional<DecoyId> decoy_from_host(std::string_view host);

}  // namespace shadowprobe::core
