#include "core/correlator.h"

#include <algorithm>

#include "common/parallel.h"

namespace shadowprobe::core {

namespace {

/// Below this many hits a worker pool costs more than it saves; the serial
/// and parallel paths produce byte-identical output either way.
constexpr std::size_t kParallelGrain = 64;

bool hit_ptr_canonical_less(const HoneypotHit* a, const HoneypotHit* b) {
  return hit_canonical_less(*a, *b);
}

}  // namespace

void Correlator::classify_ordered(const std::vector<const HoneypotHit*>& ordered,
                                  const FlatSet<std::uint32_t>* replicated_seqs,
                                  std::vector<UnsolicitedRequest>& out) const {
  // Sequence numbers whose solicited resolution has already been seen.
  // Membership-only (never iterated), so the unordered flat set is safe.
  FlatSet<std::uint32_t> resolved_once;
  for (const HoneypotHit* hit_ptr : ordered) {
    const HoneypotHit& hit = *hit_ptr;
    if (!hit.decoy) continue;
    const DecoyRecord* record = ledger_.by_seq(hit.decoy->seq);
    if (record == nullptr || !(record->id == *hit.decoy)) continue;  // forged/mangled
    const PathRecord& path = ledger_.path(record->path_id);

    bool unsolicited = false;
    if (hit.protocol == RequestProtocol::kHttp || hit.protocol == RequestProtocol::kHttps) {
      unsolicited = true;  // criteria (i)/(ii)
    } else if (replicated_seqs != nullptr && replicated_seqs->count(record->id.seq) > 0 &&
               record->id.protocol == DecoyProtocol::kDns) {
      // Replicated decoy: extra DNS queries come from the interception
      // middlebox's alternative resolver, not from shadowing.
      continue;
    } else {
      // DNS request. Criterion (i): non-DNS decoy data in a DNS query.
      if (record->id.protocol != DecoyProtocol::kDns) {
        unsolicited = true;
      } else {
        // Criterion (iii): decoys aimed at recursive resolvers produce one
        // solicited resolution; everything after it — and everything for
        // decoys aimed at authoritative-only destinations — is unsolicited.
        bool expects_resolution = path.dest_kind == DestKind::kPublicResolver ||
                                  path.dest_kind == DestKind::kSelfBuilt;
        if (expects_resolution && !resolved_once.contains(record->id.seq)) {
          resolved_once.insert(record->id.seq);
        } else {
          unsolicited = true;
        }
      }
    }
    if (!unsolicited) continue;

    UnsolicitedRequest request;
    request.hit = hit;
    request.seq = record->id.seq;
    request.path_id = record->path_id;
    request.decoy_protocol = record->id.protocol;
    request.request_protocol = hit.protocol;
    request.interval = hit.time - record->sent;
    out.push_back(std::move(request));
  }
}

std::vector<UnsolicitedRequest> Correlator::classify(
    const std::vector<HoneypotHit>& hits,
    const FlatSet<std::uint32_t>* replicated_seqs, int workers) const {
  // Restore canonical (time, seq) order if the caller lost it. Criterion
  // (iii) marks the earliest DNS arrival per seq as the solicited
  // resolution; walking an out-of-order logbook (e.g. a multi-shard merge
  // that skipped its canonical sort) would instead crown whichever
  // duplicate happened to be iterated first.
  std::vector<const HoneypotHit*> ordered;
  ordered.reserve(hits.size());
  for (const HoneypotHit& hit : hits) ordered.push_back(&hit);
  if (!std::is_sorted(ordered.begin(), ordered.end(), hit_ptr_canonical_less)) {
    std::stable_sort(ordered.begin(), ordered.end(), hit_ptr_canonical_less);
  }

  workers = resolve_worker_count(workers);
  std::vector<UnsolicitedRequest> out;
  if (workers == 1 || hits.size() < kParallelGrain) {
    classify_ordered(ordered, replicated_seqs, out);
    return out;
  }

  // Partition by seq group: every hit of a seq lands in one partition, so
  // the per-partition resolved_once state sees the complete group. Hits
  // with no identifier are dropped by classify_ordered wherever they land.
  std::vector<std::vector<const HoneypotHit*>> partitions(
      static_cast<std::size_t>(workers));
  for (const HoneypotHit* hit : ordered) {
    std::uint32_t seq = hit->decoy ? hit->decoy->seq : 0;
    partitions[seq % static_cast<std::uint32_t>(workers)].push_back(hit);
  }

  std::vector<std::vector<UnsolicitedRequest>> partial(
      static_cast<std::size_t>(workers));
  parallel_workers(workers, [&](int w) {
    auto uw = static_cast<std::size_t>(w);
    classify_ordered(partitions[uw], replicated_seqs, partial[uw]);
  });

  // Concatenate and restore canonical order. Each partition's output is
  // already canonically ordered (a subsequence of the sorted input), and
  // hits that compare equal share a domain — hence a seq, hence a
  // partition — so the stable sort reproduces the serial sequence exactly.
  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  out.reserve(total);
  for (auto& p : partial) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const UnsolicitedRequest& a, const UnsolicitedRequest& b) {
                     return hit_canonical_less(a.hit, b.hit);
                   });
  return out;
}

std::set<std::uint32_t> Correlator::problematic_paths(
    const std::vector<UnsolicitedRequest>& requests) {
  std::set<std::uint32_t> paths;
  for (const auto& r : requests) paths.insert(r.path_id);
  return paths;
}

}  // namespace shadowprobe::core
