#include "core/correlator.h"

namespace shadowprobe::core {

std::vector<UnsolicitedRequest> Correlator::classify(
    const std::vector<HoneypotHit>& hits,
    const std::set<std::uint32_t>* replicated_seqs) const {
  std::vector<UnsolicitedRequest> out;
  // Sequence numbers whose solicited resolution has already been seen.
  std::set<std::uint32_t> resolved_once;
  for (const auto& hit : hits) {
    if (!hit.decoy) continue;
    const DecoyRecord* record = ledger_.by_seq(hit.decoy->seq);
    if (record == nullptr || !(record->id == *hit.decoy)) continue;  // forged/mangled
    const PathRecord& path = ledger_.path(record->path_id);

    bool unsolicited = false;
    if (hit.protocol == RequestProtocol::kHttp || hit.protocol == RequestProtocol::kHttps) {
      unsolicited = true;  // criteria (i)/(ii)
    } else if (replicated_seqs != nullptr && replicated_seqs->count(record->id.seq) > 0 &&
               record->id.protocol == DecoyProtocol::kDns) {
      // Replicated decoy: extra DNS queries come from the interception
      // middlebox's alternative resolver, not from shadowing.
      continue;
    } else {
      // DNS request. Criterion (i): non-DNS decoy data in a DNS query.
      if (record->id.protocol != DecoyProtocol::kDns) {
        unsolicited = true;
      } else {
        // Criterion (iii): decoys aimed at recursive resolvers produce one
        // solicited resolution; everything after it — and everything for
        // decoys aimed at authoritative-only destinations — is unsolicited.
        bool expects_resolution = path.dest_kind == DestKind::kPublicResolver ||
                                  path.dest_kind == DestKind::kSelfBuilt;
        if (expects_resolution && resolved_once.count(record->id.seq) == 0) {
          resolved_once.insert(record->id.seq);
        } else {
          unsolicited = true;
        }
      }
    }
    if (!unsolicited) continue;

    UnsolicitedRequest request;
    request.hit = hit;
    request.seq = record->id.seq;
    request.path_id = record->path_id;
    request.decoy_protocol = record->id.protocol;
    request.request_protocol = hit.protocol;
    request.interval = hit.time - record->sent;
    out.push_back(std::move(request));
  }
  return out;
}

std::set<std::uint32_t> Correlator::problematic_paths(
    const std::vector<UnsolicitedRequest>& requests) {
  std::set<std::uint32_t> paths;
  for (const auto& r : requests) paths.insert(r.path_id);
  return paths;
}

}  // namespace shadowprobe::core
