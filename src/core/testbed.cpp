#include "core/testbed.h"

#include <stdexcept>

#include "core/world.h"
#include "dnssrv/zone.h"

namespace shadowprobe::core {

Testbed::Testbed(const TestbedConfig& config)
    : config_(config),
      rng_(config.topology.seed ^ 0x73686477u),  // decorrelate from topology streams
      signatures_(std::make_shared<const intel::SignatureDb>(intel::SignatureDb::standard())),
      blocklist_own_(std::make_shared<intel::Blocklist>()) {
  blocklist_view_ = blocklist_own_.get();
  net_ = std::make_unique<sim::Network>(loop_);
  topology_ = std::make_shared<topo::Topology>(topo::Topology::build(*net_, config.topology));
  topo_view_ = topology_.get();
  first_dynamic_node_ = static_cast<sim::NodeId>(net_->node_count());
}

Testbed::Testbed(std::shared_ptr<const World> world)
    : config_(world->config()),
      rng_(config_.topology.seed ^ 0x73686477u),
      world_(std::move(world)) {
  topo_view_ = &world_->topology();
  signatures_ = world_->signatures_;
  blocklist_view_ = &world_->blocklist();
  first_dynamic_node_ = world_->first_dynamic_node();
  root_zone_ = world_->root_zone_;
  com_zone_ = world_->com_zone_;
  org_zone_ = world_->org_zone_;
  experiment_zone_ = world_->experiment_zone_;
  roots_ = world_->root_hints();
  net_ = std::make_unique<sim::Network>(loop_, world_->layout_, first_dynamic_node_);
}

Testbed::~Testbed() = default;

std::unique_ptr<Testbed> Testbed::create(const TestbedConfig& config) {
  std::unique_ptr<Testbed> bed(new Testbed(config));
  bed->build_honeypots();  // zone addresses are needed by the TLD delegation
  bed->build_dns_infrastructure();
  bed->build_web_farm();
  bed->oblivious_proxy_ = std::make_unique<dnssrv::ObliviousProxy>(
      bed->fork_rng("oblivious-proxy"));
  sim::NodeId proxy_node = bed->topology_->add_host_in_as(
      *bed->net_, 13335, "oblivious-proxy", bed->oblivious_proxy_.get());
  bed->oblivious_proxy_->bind(*bed->net_, proxy_node, bed->net_->address(proxy_node));
  return bed;
}

std::unique_ptr<Testbed> Testbed::instantiate(std::shared_ptr<const World> world) {
  if (world == nullptr) throw std::invalid_argument("Testbed::instantiate needs a World");
  std::unique_ptr<Testbed> bed(new Testbed(std::move(world)));
  bed->instantiate_servers();
  return bed;
}

void Testbed::instantiate_servers() {
  // Same construction order as create(), but every structural decision —
  // node placement, addresses, zone contents, resolver quirks — is read
  // from the World instead of being recomputed; only live servers with
  // their mutable state (caches, logbook, TCP stacks) are fresh.
  for (const auto& pot : topo_view_->honeypots()) {
    auto server = std::make_unique<HoneypotServer>(pot.location, logbook_,
                                                   fork_rng("honeypot-" + pot.location));
    server->bind(*net_, pot.node, pot.addr, experiment_zone_);
    honeypot_servers_.push_back(std::move(server));
  }
  for (const auto& target : topo_view_->dns_target_hosts()) {
    switch (target.info.kind) {
      case topo::DnsTargetKind::kRoot: {
        auto server = std::make_unique<dnssrv::AuthoritativeServer>();
        server->add_zone(root_zone_);
        net_->set_handler(target.node, server.get());
        auth_servers_.push_back(std::move(server));
        break;
      }
      case topo::DnsTargetKind::kTld: {
        auto server = std::make_unique<dnssrv::AuthoritativeServer>();
        server->add_zone(target.info.name == ".com" ? com_zone_ : org_zone_);
        net_->set_handler(target.node, server.get());
        auth_servers_.push_back(std::move(server));
        break;
      }
      case topo::DnsTargetKind::kPublicResolver:
      case topo::DnsTargetKind::kSelfBuilt:
        break;  // rebuilt below from the World's resolver inventory
    }
  }
  for (const ResolverSpec& spec : world_->resolvers()) {
    auto resolver = std::make_unique<dnssrv::RecursiveResolver>(
        spec.name, roots_, fork_rng("resolver-" + spec.name));
    resolver->set_quirks(spec.quirks);
    resolver->bind(*net_, spec.node, spec.service, spec.egress);
    resolvers_[spec.name] = std::move(resolver);
    resolver_names_.push_back(spec.name);
  }
  build_web_farm();
  oblivious_proxy_ = std::make_unique<dnssrv::ObliviousProxy>(fork_rng("oblivious-proxy"));
  sim::NodeId proxy_node = net_->replay_host("oblivious-proxy", oblivious_proxy_.get());
  oblivious_proxy_->bind(*net_, proxy_node, net_->address(proxy_node));
}

sim::NodeId Testbed::add_host_in_as(std::uint32_t asn, const std::string& name,
                                    sim::DatagramHandler* handler) {
  if (frozen()) return net_->replay_host(name, handler);
  return topology_->add_host_in_as(*net_, asn, name, handler);
}

void Testbed::note_blocklisted(net::Ipv4Addr addr) {
  if (!frozen()) {
    blocklist_own_->add(addr);
    return;
  }
  if (!blocklist_view_->contains(addr)) {
    throw std::logic_error("blocklist replay diverged: " + addr.str() +
                           " was not listed when the World was built");
  }
}

void Testbed::build_honeypots() {
  std::vector<net::Ipv4Addr> addrs;
  for (const auto& pot : topology_->honeypots()) addrs.push_back(pot.addr);
  experiment_zone_ =
      std::make_shared<const dnssrv::Zone>(build_experiment_zone(addrs));
  for (const auto& pot : topology_->honeypots()) {
    auto server = std::make_unique<HoneypotServer>(pot.location, logbook_,
                                                   fork_rng("honeypot-" + pot.location));
    server->bind(*net_, pot.node, pot.addr, experiment_zone_);
    honeypot_servers_.push_back(std::move(server));
  }
}

void Testbed::build_dns_infrastructure() {
  using net::DnsName;
  using net::DnsRecord;

  const DnsName com = DnsName::must_parse("com");
  const DnsName org = DnsName::must_parse("org");
  net::Ipv4Addr com_addr;
  net::Ipv4Addr org_addr;
  for (const auto& target : topology_->dns_target_hosts()) {
    if (target.info.name == ".com") com_addr = target.addr;
    if (target.info.name == ".org") org_addr = target.addr;
    if (target.info.kind == topo::DnsTargetKind::kRoot) roots_.push_back(target.addr);
  }

  // Root zone: delegations for the two TLDs we operate.
  auto make_root_zone = [&] {
    dnssrv::Zone root(DnsName{});
    net::SoaData soa;
    soa.mname = DnsName::must_parse("a.root-servers.net");
    soa.rname = DnsName::must_parse("nstld.verisign-grs.com");
    root.add(DnsRecord::soa(DnsName{}, soa, 86400));
    root.add(DnsRecord::ns(com, DnsName::must_parse("a.gtld-servers.net"), 172800));
    root.add(DnsRecord::a(DnsName::must_parse("a.gtld-servers.net"), com_addr, 172800));
    root.add(DnsRecord::ns(org, DnsName::must_parse("a0.org.afilias-nst.info"), 172800));
    root.add(DnsRecord::a(DnsName::must_parse("a0.org.afilias-nst.info"), org_addr, 172800));
    return root;
  };

  // .com zone: the delegation of the experiment zone to the honeypots.
  auto make_com_zone = [&] {
    dnssrv::Zone zone(com);
    net::SoaData soa;
    soa.mname = DnsName::must_parse("a.gtld-servers.net");
    soa.rname = DnsName::must_parse("nstld.com");
    zone.add(DnsRecord::soa(com, soa, 900));
    const DnsName exp = experiment_zone();
    for (std::size_t i = 0; i < topology_->honeypots().size(); ++i) {
      DnsName ns = exp.child("ns" + std::to_string(i + 1));
      zone.add(DnsRecord::ns(exp, ns, 172800));
      zone.add(DnsRecord::a(ns, topology_->honeypots()[i].addr, 172800));
    }
    return zone;
  };

  auto make_org_zone = [&] {
    dnssrv::Zone zone(org);
    net::SoaData soa;
    soa.mname = DnsName::must_parse("a0.org");
    soa.rname = DnsName::must_parse("hostmaster.org");
    zone.add(DnsRecord::soa(org, soa, 900));
    return zone;
  };

  // Built once, shared by every server instance (root servers, and across
  // shard instantiations via the World).
  root_zone_ = std::make_shared<const dnssrv::Zone>(make_root_zone());
  com_zone_ = std::make_shared<const dnssrv::Zone>(make_com_zone());
  org_zone_ = std::make_shared<const dnssrv::Zone>(make_org_zone());

  for (const auto& target : topology_->dns_target_hosts()) {
    switch (target.info.kind) {
      case topo::DnsTargetKind::kRoot: {
        auto server = std::make_unique<dnssrv::AuthoritativeServer>();
        server->add_zone(root_zone_);
        net_->set_handler(target.node, server.get());
        auth_servers_.push_back(std::move(server));
        break;
      }
      case topo::DnsTargetKind::kTld: {
        auto server = std::make_unique<dnssrv::AuthoritativeServer>();
        server->add_zone(target.info.name == ".com" ? com_zone_ : org_zone_);
        net_->set_handler(target.node, server.get());
        auth_servers_.push_back(std::move(server));
        break;
      }
      case topo::DnsTargetKind::kPublicResolver:
      case topo::DnsTargetKind::kSelfBuilt:
        add_resolver(target.info.name, target.node, target.addr, target.asn);
        break;
    }
  }

  // 114DNS anycast: the US instance is a second, independent resolver
  // process answering the same service address (case study II).
  if (const auto* target = topology_->dns_target("114DNS")) {
    for (const auto& [country, node] : target->anycast_instances) {
      if (country == "US") add_resolver("114DNS-US", node, target->addr, 21859);
    }
  }
}

void Testbed::add_resolver(const std::string& name, sim::NodeId node, net::Ipv4Addr service,
                           std::uint32_t asn) {
  auto resolver = std::make_unique<dnssrv::RecursiveResolver>(name, roots_,
                                                              fork_rng("resolver-" + name));
  dnssrv::ResolverQuirks quirks;
  quirks.requery_probability = config_.resolver_requery_probability;
  quirks.requery_delay_mean = config_.resolver_requery_delay;
  quirks.refresh_on_expiry = config_.resolver_refresh_on_expiry;
  // Implementation choices differ per operator: our own control resolver is
  // clean by construction (the paper finds zero unsolicited requests on its
  // paths), and 114DNS's US edge barely re-queries — which is what keeps
  // its problematic-path ratio CN-only (case study II).
  if (name == "self-built") {
    quirks.requery_probability = 0.0;
  } else if (name == "114DNS-US") {
    quirks.requery_probability = 0.02;
  } else {
    // Spread rates deterministically per operator instead of one uniform
    // knob: repetition behaviour in the wild varies widely.
    double jitter = static_cast<double>(fnv1a(name) % 1000) / 1000.0;  // [0,1)
    quirks.requery_probability *= 0.5 + jitter;
  }
  resolver->set_quirks(quirks);

  // Split service/egress addresses: upstream queries originate from a
  // unicast egress in the operator's prefix (required for anycast instances,
  // realistic for all).
  net::Ipv4Addr primary = net_->address(node);
  net::Ipv4Addr egress;
  if (primary == service) {
    // First free offset at or past service+9: at large scales the AS's own
    // host allocation may already have claimed the canonical offset. This
    // probe runs against the *partial* plan (later allocations haven't
    // happened yet), which is why frozen instantiation must replay the
    // result from the ResolverSpec instead of re-running it.
    egress = net::Ipv4Addr(service.value() + 9);
    while (net_->owner_of(egress) != sim::kInvalidNode) {
      egress = net::Ipv4Addr(egress.value() + 1);
    }
    net_->add_address(node, egress);
  } else {
    egress = primary;  // anycast instance: unicast identity is the egress
  }
  if (const auto* as = topology_->as_by_number(asn)) {
    net_->routes(as->access).add(net::Prefix(egress, 32), node);
  }
  resolver->bind(*net_, node, service, egress);
  resolver_specs_.push_back({name, node, service, egress, quirks});
  resolvers_[name] = std::move(resolver);
  resolver_names_.push_back(name);
}

void Testbed::build_web_farm() {
  for (const auto& site : topo_view_->web_sites()) {
    auto server = std::make_unique<WebSiteServer>(site.domain,
                                                  fork_rng("web-" + site.domain));
    server->bind(*net_, site.node, site.addr);
    web_servers_[site.rank] = std::move(server);
  }
}

dnssrv::RecursiveResolver* Testbed::resolver(const std::string& name) {
  auto it = resolvers_.find(name);
  return it == resolvers_.end() ? nullptr : it->second.get();
}

WebSiteServer* Testbed::web_server(int rank) {
  auto it = web_servers_.find(rank);
  return it == web_servers_.end() ? nullptr : it->second.get();
}

}  // namespace shadowprobe::core
