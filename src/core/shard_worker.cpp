#include "core/shard_worker.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/strutil.h"
#include "core/wire.h"
#include "core/world.h"

namespace shadowprobe::core {

namespace {

/// Worker-side state: the owned shard runners plus everything needed to
/// answer phase commands.
struct WorkerState {
  wire::InitMsg init;
  std::shared_ptr<const World> world;
  std::vector<int> owned;  // shard indices, ascending
  std::vector<std::unique_ptr<ShardRunner>> runners_;  // parallel to `owned`
  CampaignPlan plan;
  bool have_plan = false;

  ShardRunner& runner(std::size_t i) { return *runners_[i]; }
};

/// Runs `fn` once per owned runner on worker threads and joins them.
void for_each_owned(WorkerState& state, const std::function<void(ShardRunner&)>& fn) {
  if (state.runners_.size() == 1) {
    fn(*state.runners_.front());
    return;
  }
  std::vector<std::thread> workers;
  std::vector<std::exception_ptr> errors(state.runners_.size());
  workers.reserve(state.runners_.size());
  for (std::size_t i = 0; i < state.runners_.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        fn(*state.runners_[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void build_runners(WorkerState& state, const ShardRunner::Decorator& decorate) {
  const wire::InitMsg& init = state.init;
  state.world = World::build(init.bed_config, decorate);
  for (std::uint32_t s = init.proc_index; s < init.shard_count; s += init.proc_count) {
    state.owned.push_back(static_cast<int>(s));
  }
  state.runners_.resize(state.owned.size());
  std::vector<std::thread> builders;
  std::vector<std::exception_ptr> errors(state.owned.size());
  builders.reserve(state.owned.size());
  for (std::size_t i = 0; i < state.owned.size(); ++i) {
    builders.emplace_back([&, i] {
      try {
        state.runners_[i] = std::make_unique<ShardRunner>(
            static_cast<std::uint32_t>(state.owned[i]), init.shard_count, state.world,
            init.config, decorate);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& builder : builders) builder.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  SP_LOG_INFO(strprintf("shard worker %u/%u: built %zu runners over %u shards",
                        init.proc_index, init.proc_count, state.owned.size(),
                        init.shard_count));
}

void handle_screening(WorkerState& state, wire::FrameChannel& chan) {
  for_each_owned(state, [](ShardRunner& shard) { shard.run_screening(); });
  wire::VerdictsMsg msg;
  msg.clock = state.runner(0).testbed().loop().now();
  std::size_t vp_count =
      state.runner(0).testbed().topology().vantage_points().size();
  for (std::size_t i = 0; i < state.owned.size(); ++i) {
    const ShardRunner& runner = state.runner(i);
    for (std::size_t vp = 0; vp < vp_count; ++vp) {
      if (runner.owns_vp(vp)) {
        msg.verdicts.emplace_back(static_cast<std::uint32_t>(vp), runner.verdict(vp));
      }
    }
  }
  std::sort(msg.verdicts.begin(), msg.verdicts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  chan.send(wire::MsgType::kScreeningVerdicts, 0, wire::encode_verdicts(msg));
}

void send_barrier_results(WorkerState& state, wire::FrameChannel& chan) {
  for (std::size_t i = 0; i < state.owned.size(); ++i) {
    const ShardRunner& runner = state.runner(i);
    ByteWriter w;
    wire::encode_ledger(w, runner.ledger());
    wire::encode_hits(w, runner.hits());
    std::vector<std::uint32_t> replicated;
    runner.replicated_seqs().for_each(
        [&replicated](std::uint32_t seq) { replicated.push_back(seq); });
    std::sort(replicated.begin(), replicated.end());
    w.u32(static_cast<std::uint32_t>(replicated.size()));
    for (std::uint32_t seq : replicated) w.u32(seq);
    std::vector<std::uint64_t> quarantined;
    runner.quarantined_vps().for_each([&quarantined](std::size_t vp_index, SimTime) {
      quarantined.push_back(vp_index);
    });
    std::sort(quarantined.begin(), quarantined.end());
    w.u32(static_cast<std::uint32_t>(quarantined.size()));
    for (std::uint64_t vp : quarantined) w.u64(vp);
    std::vector<std::uint32_t> cancelled;
    runner.cancelled_seqs().for_each(
        [&cancelled](std::uint32_t seq) { cancelled.push_back(seq); });
    std::sort(cancelled.begin(), cancelled.end());
    w.u32(static_cast<std::uint32_t>(cancelled.size()));
    for (std::uint32_t seq : cancelled) w.u32(seq);
    chan.send(wire::MsgType::kBarrierShard, static_cast<std::uint32_t>(state.owned[i]),
              std::move(w).take());
  }
}

void handle_phase1(WorkerState& state, wire::FrameChannel& chan, BytesView payload) {
  auto msg = wire::decode_phase1(payload);
  if (!msg.ok()) throw std::runtime_error(msg.error().message);
  state.plan = std::move(msg.value().plan);
  state.have_plan = true;
  for (auto& runner : state.runners_) {
    runner->adopt_plan(state.plan);
    runner->schedule_owned(state.plan, 0, state.plan.phase1_count());
  }
  SimTime barrier = msg.value().barrier;
  for_each_owned(state, [barrier](ShardRunner& shard) { shard.run_until(barrier); });
  send_barrier_results(state, chan);
}

void send_final_results(WorkerState& state, wire::FrameChannel& chan) {
  for (std::size_t i = 0; i < state.owned.size(); ++i) {
    const ShardRunner& runner = state.runner(i);
    ByteWriter w;
    wire::encode_ledger(w, runner.ledger());
    wire::encode_hits(w, runner.hits());
    std::vector<std::uint32_t> replicated;
    runner.replicated_seqs().for_each(
        [&replicated](std::uint32_t seq) { replicated.push_back(seq); });
    std::sort(replicated.begin(), replicated.end());
    w.u32(static_cast<std::uint32_t>(replicated.size()));
    for (std::uint32_t seq : replicated) w.u32(seq);
    std::vector<std::pair<std::uint32_t, net::Ipv4Addr>> hops;
    runner.hop_log().for_each([&hops](std::uint32_t seq, net::Ipv4Addr hop) {
      hops.emplace_back(seq, hop);
    });
    std::sort(hops.begin(), hops.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u32(static_cast<std::uint32_t>(hops.size()));
    for (const auto& [seq, hop] : hops) {
      w.u32(seq);
      w.u32(hop.value());
    }
    wire::encode_loop_stats(w, runner.stats());
    wire::encode_net_counters(w, runner.net_counters());
    CoverageStats coverage;
    if (state.init.config.faults.enabled()) coverage = runner.coverage();
    wire::encode_coverage(w, coverage);
    chan.send(wire::MsgType::kFinalShard, static_cast<std::uint32_t>(state.owned[i]),
              std::move(w).take());
  }
}

void handle_phase2(WorkerState& state, wire::FrameChannel& chan, BytesView payload) {
  auto msg = wire::decode_phase2(payload);
  if (!msg.ok()) throw std::runtime_error(msg.error().message);
  if (!state.have_plan) {
    throw std::runtime_error("shard worker: phase2 before phase1");
  }
  if (state.plan.emissions().size() != msg.value().schedule_from) {
    throw std::runtime_error(
        strprintf("shard worker: plan diverged from controller (%zu local emissions, "
                  "controller expects %llu)",
                  state.plan.emissions().size(),
                  static_cast<unsigned long long>(msg.value().schedule_from)));
  }
  state.plan.append_emissions(msg.value().tail);
  std::size_t from = static_cast<std::size_t>(msg.value().schedule_from);
  for (auto& runner : state.runners_) {
    runner->schedule_owned(state.plan, from, state.plan.emissions().size());
  }
  SimTime end = msg.value().end;
  for_each_owned(state, [end](ShardRunner& shard) { shard.run_until(end); });
  send_final_results(state, chan);
}

}  // namespace

int run_shard_worker(int in_fd, int out_fd, const ShardRunner::Decorator& decorate) {
  wire::FrameChannel chan(in_fd, out_fd);
  try {
    auto first = chan.recv();
    if (!first.ok()) throw std::runtime_error(first.error().message);
    if (first.value().type != wire::MsgType::kInit) {
      throw std::runtime_error("shard worker: expected init message first");
    }
    WorkerState state;
    auto init = wire::decode_init(first.value().payload);
    if (!init.ok()) throw std::runtime_error(init.error().message);
    state.init = std::move(init).take();
    build_runners(state, decorate);

    for (;;) {
      auto frame = chan.recv();
      if (!frame.ok()) {
        if (frame.error().message == wire::kEofMessage) return 0;  // orderly shutdown
        throw std::runtime_error(frame.error().message);
      }
      switch (frame.value().type) {
        case wire::MsgType::kRunScreening:
          handle_screening(state, chan);
          break;
        case wire::MsgType::kPhase1:
          handle_phase1(state, chan, frame.value().payload);
          break;
        case wire::MsgType::kPhase2:
          handle_phase2(state, chan, frame.value().payload);
          break;
        default:
          throw std::runtime_error(
              strprintf("shard worker: unexpected message type %d",
                        static_cast<int>(frame.value().type)));
      }
    }
  } catch (const std::exception& e) {
    SP_LOG_WARN(std::string("shard worker failed: ") + e.what());
    return 1;
  }
}

}  // namespace shadowprobe::core
