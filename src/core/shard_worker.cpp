#include "core/shard_worker.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/strutil.h"
#include "core/wire.h"
#include "core/world.h"

namespace shadowprobe::core {

namespace {

// -- deterministic fault harness --------------------------------------------
//
// SHADOWPROBE_TEST_WORKER_FAULT="<phase>:<kind>:<proc>[:<gen>|:*]" injects a
// failure into exactly one worker when the named phase command arrives:
//   phase: screening | phase1 | phase2
//   kind:  kill (SIGKILL) | exit (_exit(43)) | stall (stop pulsing, pause
//          forever) | corrupt (emit a checksum-flipped frame, then exit 0)
//   proc:  the worker's proc_index
//   gen:   which respawn generation triggers (default 0, the original
//          spawn — so the replacement recovers); `*` means every
//          generation, which exhausts the retry budget and forces the
//          controller's in-process degradation path.
// Death tests drive the full phase × kind matrix through this.

enum class FaultKind { kKill, kExit, kStall, kCorrupt };

struct TestFault {
  wire::MsgType phase = wire::MsgType::kPhase2;
  FaultKind kind = FaultKind::kExit;
  int proc_index = 0;
  int spawn_gen = 0;    // ignored when all_gens
  bool all_gens = false;
};

bool parse_test_fault(const char* spec, TestFault& out) {
  std::vector<std::string> parts;
  std::string current;
  for (const char* p = spec; *p != '\0'; ++p) {
    if (*p == ':') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(*p);
    }
  }
  parts.push_back(current);
  if (parts.size() < 3 || parts.size() > 4) return false;
  if (parts[0] == "screening") {
    out.phase = wire::MsgType::kRunScreening;
  } else if (parts[0] == "phase1") {
    out.phase = wire::MsgType::kPhase1;
  } else if (parts[0] == "phase2") {
    out.phase = wire::MsgType::kPhase2;
  } else {
    return false;
  }
  if (parts[1] == "kill") {
    out.kind = FaultKind::kKill;
  } else if (parts[1] == "exit") {
    out.kind = FaultKind::kExit;
  } else if (parts[1] == "stall") {
    out.kind = FaultKind::kStall;
  } else if (parts[1] == "corrupt") {
    out.kind = FaultKind::kCorrupt;
  } else {
    return false;
  }
  out.proc_index = std::atoi(parts[2].c_str());
  out.spawn_gen = 0;
  out.all_gens = false;
  if (parts.size() == 4) {
    if (parts[3] == "*") {
      out.all_gens = true;
    } else {
      out.spawn_gen = std::atoi(parts[3].c_str());
    }
  }
  return true;
}

/// Background thread pulsing kHeartbeat every `interval_ms` for the life of
/// the worker. FrameChannel::send serializes internally, so pulses interleave
/// safely with result frames. A send failure (controller gone) just stops
/// the pulse: the main loop will see the same condition on its own fd soon.
class HeartbeatPulse {
 public:
  HeartbeatPulse(wire::FrameChannel& chan, std::uint32_t proc_index,
                 std::uint32_t interval_ms)
      : chan_(chan), proc_index_(proc_index), interval_ms_(interval_ms) {
    if (interval_ms_ > 0) thread_ = std::thread([this] { run(); });
  }

  HeartbeatPulse(const HeartbeatPulse&) = delete;
  HeartbeatPulse& operator=(const HeartbeatPulse&) = delete;

  ~HeartbeatPulse() { stop(); }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    wire::HeartbeatMsg msg;
    msg.proc_index = proc_index_;
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stopped_; })) {
        return;
      }
      lock.unlock();
      try {
        chan_.send(wire::MsgType::kHeartbeat, 0, wire::encode_heartbeat(msg));
        ++msg.seq;
      } catch (const std::exception&) {
        lock.lock();
        stopped_ = true;
        return;
      }
      lock.lock();
    }
  }

  wire::FrameChannel& chan_;
  const std::uint32_t proc_index_;
  const std::uint32_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

/// Worker-side state: the owned shard runners plus everything needed to
/// answer phase commands.
struct WorkerState {
  wire::InitMsg init;
  std::shared_ptr<const World> world;
  std::vector<int> owned;  // shard indices, ascending
  std::vector<std::unique_ptr<ShardRunner>> runners_;  // parallel to `owned`
  CampaignPlan plan;
  bool have_plan = false;
  // Stealing-scheduler state. Queue shard slots are *local* runner indices
  // (0..owned.size()-1): stealing never crosses the process boundary, so
  // each worker's queue only spans its own shard set.
  std::vector<VpWorkQueue::StealCounters> steal_totals;  // parallel to `owned`
  std::vector<std::uint32_t> phase1_executors;  // vp -> local runner index

  ShardRunner& runner(std::size_t i) { return *runners_[i]; }
  [[nodiscard]] bool stealing() const {
    return init.scheduler == SchedulerMode::kSteal;
  }
  /// Local runner index for a global shard id; -1 when another process owns
  /// it. owned[i] == proc_index + i * proc_count, so the division inverts it.
  [[nodiscard]] int local_index(std::uint32_t shard) const {
    if (shard >= init.shard_count || shard % init.proc_count != init.proc_index) {
      return -1;
    }
    return static_cast<int>(shard / init.proc_count);
  }
  /// The deal entry for `vp`, defaulting to round-robin where the deal is
  /// short (or empty, as under the static scheduler).
  [[nodiscard]] std::uint32_t dealt_shard(const std::vector<std::uint32_t>& deal,
                                          std::size_t vp) const {
    if (vp < deal.size() && deal[vp] < init.shard_count) return deal[vp];
    return static_cast<std::uint32_t>(vp % init.shard_count);
  }
};

/// Seeds a local work queue from the controller's deal: only VPs dealt to
/// this worker's shards (and passing `want`, e.g. "has emissions") are
/// enqueued, under their local runner index.
VpWorkQueue make_local_queue(const WorkerState& state,
                             const std::vector<std::uint32_t>& deal,
                             std::size_t vp_count,
                             const std::vector<std::uint64_t>& weights,
                             const std::function<bool(std::size_t)>& want) {
  std::vector<std::uint32_t> local_deal(vp_count, 0);
  std::vector<bool> include(vp_count, false);
  for (std::size_t vp = 0; vp < vp_count; ++vp) {
    const int local = state.local_index(state.dealt_shard(deal, vp));
    if (local < 0 || (want && !want(vp))) continue;
    local_deal[vp] = static_cast<std::uint32_t>(local);
    include[vp] = true;
  }
  return VpWorkQueue(local_deal, static_cast<std::uint32_t>(state.owned.size()),
                     weights, include, /*allow_steal=*/true);
}

/// Steal-mode phase driver mirroring InProcessBackend::drain_queue: each
/// owned runner drains the queue with per-VP passes, runs to `deadline`,
/// and the per-runner steal counters accumulate into the worker totals.
void drain_local_queue(WorkerState& state, VpWorkQueue& queue,
                       const std::function<void(ShardRunner&, std::size_t)>& run_vp,
                       SimTime deadline);

/// Runs `fn` once per owned runner on worker threads and joins them.
void for_each_owned(WorkerState& state, const std::function<void(ShardRunner&)>& fn) {
  if (state.runners_.size() == 1) {
    fn(*state.runners_.front());
    return;
  }
  std::vector<std::thread> workers;
  std::vector<std::exception_ptr> errors(state.runners_.size());
  workers.reserve(state.runners_.size());
  for (std::size_t i = 0; i < state.runners_.size(); ++i) {
    workers.emplace_back([&, i] {
      try {
        fn(*state.runners_[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void build_runners(WorkerState& state, const ShardRunner::Decorator& decorate,
                   const std::shared_ptr<const World>& prebuilt) {
  const wire::InitMsg& init = state.init;
  state.world = prebuilt ? prebuilt : World::build(init.bed_config, decorate);
  for (std::uint32_t s = init.proc_index; s < init.shard_count; s += init.proc_count) {
    state.owned.push_back(static_cast<int>(s));
  }
  state.runners_.resize(state.owned.size());
  std::vector<std::thread> builders;
  std::vector<std::exception_ptr> errors(state.owned.size());
  builders.reserve(state.owned.size());
  for (std::size_t i = 0; i < state.owned.size(); ++i) {
    builders.emplace_back([&, i] {
      try {
        state.runners_[i] = std::make_unique<ShardRunner>(
            static_cast<std::uint32_t>(state.owned[i]), init.shard_count, state.world,
            init.config, decorate);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& builder : builders) builder.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  state.steal_totals.assign(state.owned.size(), {});
  SP_LOG_INFO(strprintf("shard worker %u/%u: built %zu runners over %u shards (%s "
                        "scheduler)",
                        init.proc_index, init.proc_count, state.owned.size(),
                        init.shard_count, scheduler_mode_name(init.scheduler)));
}

void drain_local_queue(WorkerState& state, VpWorkQueue& queue,
                       const std::function<void(ShardRunner&, std::size_t)>& run_vp,
                       SimTime deadline) {
  for_each_owned(state, [&](ShardRunner& shard) {
    const auto local = static_cast<std::uint32_t>(
        shard.shard_index() / state.init.proc_count);
    shard.begin_phase();
    for (int vp; (vp = queue.claim(local)) >= 0;) {
      run_vp(shard, static_cast<std::size_t>(vp));
    }
    shard.run_until(deadline);
  });
  for (std::size_t i = 0; i < state.owned.size(); ++i) {
    const auto counters = queue.counters(static_cast<std::uint32_t>(i));
    state.steal_totals[i].attempted += counters.attempted;
    state.steal_totals[i].completed += counters.completed;
  }
}

void handle_screening(WorkerState& state, wire::FrameChannel& chan) {
  wire::VerdictsMsg msg;
  std::size_t vp_count =
      state.runner(0).testbed().topology().vantage_points().size();
  if (state.stealing()) {
    // No deal at screening time (the controller has no load signal yet):
    // round-robin seeds, stealing evens out whatever raggedness shows up.
    VpWorkQueue queue = make_local_queue(state, {}, vp_count, {}, nullptr);
    const SimTime deadline = state.runner(0).testbed().loop().now() + kHour;
    drain_local_queue(
        state, queue,
        [](ShardRunner& shard, std::size_t vp) { shard.run_screening_vp(vp); },
        deadline);
    for (std::size_t vp = 0; vp < vp_count; ++vp) {
      const std::uint32_t executor = queue.executors()[vp];
      if (executor == kVpUnassigned) continue;  // dealt to another process
      msg.verdicts.emplace_back(static_cast<std::uint32_t>(vp),
                                state.runner(executor).verdict(vp));
    }
  } else {
    for_each_owned(state, [](ShardRunner& shard) { shard.run_screening(); });
    for (std::size_t i = 0; i < state.owned.size(); ++i) {
      const ShardRunner& runner = state.runner(i);
      for (std::size_t vp = 0; vp < vp_count; ++vp) {
        if (runner.owns_vp(vp)) {
          msg.verdicts.emplace_back(static_cast<std::uint32_t>(vp), runner.verdict(vp));
        }
      }
    }
    std::sort(msg.verdicts.begin(), msg.verdicts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  msg.clock = state.runner(0).testbed().loop().now();
  chan.send(wire::MsgType::kScreeningVerdicts, 0, wire::encode_verdicts(msg));
}

void send_barrier_results(WorkerState& state, wire::FrameChannel& chan) {
  for (std::size_t i = 0; i < state.owned.size(); ++i) {
    const ShardRunner& runner = state.runner(i);
    ByteWriter w;
    wire::encode_ledger(w, runner.ledger());
    wire::encode_hits(w, runner.hits());
    std::vector<std::uint32_t> replicated;
    runner.replicated_seqs().for_each(
        [&replicated](std::uint32_t seq) { replicated.push_back(seq); });
    std::sort(replicated.begin(), replicated.end());
    w.u32(static_cast<std::uint32_t>(replicated.size()));
    for (std::uint32_t seq : replicated) w.u32(seq);
    std::vector<std::uint64_t> quarantined;
    runner.quarantined_vps().for_each([&quarantined](std::size_t vp_index, SimTime) {
      quarantined.push_back(vp_index);
    });
    std::sort(quarantined.begin(), quarantined.end());
    w.u32(static_cast<std::uint32_t>(quarantined.size()));
    for (std::uint64_t vp : quarantined) w.u64(vp);
    std::vector<std::uint32_t> cancelled;
    runner.cancelled_seqs().for_each(
        [&cancelled](std::uint32_t seq) { cancelled.push_back(seq); });
    std::sort(cancelled.begin(), cancelled.end());
    w.u32(static_cast<std::uint32_t>(cancelled.size()));
    for (std::uint32_t seq : cancelled) w.u32(seq);
    // Fault-state carries for the VPs this runner executed in Phase I: the
    // controller unions them and broadcasts with Phase2Msg so a VP's next
    // executor adopts its streak/quarantine. Empty (but always present)
    // under the static scheduler or with faults off.
    std::vector<VpCarry> carries;
    if (state.stealing() && state.init.config.faults.enabled()) {
      for (std::size_t vp = 0; vp < state.phase1_executors.size(); ++vp) {
        if (state.phase1_executors[vp] == static_cast<std::uint32_t>(i)) {
          carries.push_back(runner.export_carry(vp));
        }
      }
    }
    wire::put_carries(w, carries);
    chan.send(wire::MsgType::kBarrierShard, static_cast<std::uint32_t>(state.owned[i]),
              std::move(w).take());
  }
}

void handle_phase1(WorkerState& state, wire::FrameChannel& chan, BytesView payload) {
  auto msg = wire::decode_phase1(payload);
  if (!msg.ok()) throw std::runtime_error(msg.error().message);
  state.plan = std::move(msg.value().plan);
  state.have_plan = true;
  for (auto& runner : state.runners_) runner->adopt_plan(state.plan);
  SimTime barrier = msg.value().barrier;
  if (state.stealing()) {
    const std::size_t vp_count =
        state.runner(0).testbed().topology().vantage_points().size();
    const auto buckets =
        bucket_emissions_by_vp(state.plan, 0, state.plan.phase1_count(), vp_count);
    VpWorkQueue queue = make_local_queue(
        state, msg.value().deal, buckets.size(), bucket_weights(buckets),
        [&buckets](std::size_t vp) { return !buckets[vp].empty(); });
    drain_local_queue(
        state, queue,
        [&](ShardRunner& shard, std::size_t vp) {
          shard.run_plan_vp(state.plan, buckets[vp], barrier);
        },
        barrier);
    state.phase1_executors = queue.executors();
  } else {
    for (auto& runner : state.runners_) {
      runner->schedule_owned(state.plan, 0, state.plan.phase1_count());
    }
    for_each_owned(state, [barrier](ShardRunner& shard) { shard.run_until(barrier); });
  }
  send_barrier_results(state, chan);
}

void send_final_results(WorkerState& state, wire::FrameChannel& chan) {
  for (std::size_t i = 0; i < state.owned.size(); ++i) {
    const ShardRunner& runner = state.runner(i);
    ByteWriter w;
    wire::encode_ledger(w, runner.ledger());
    wire::encode_hits(w, runner.hits());
    std::vector<std::uint32_t> replicated;
    runner.replicated_seqs().for_each(
        [&replicated](std::uint32_t seq) { replicated.push_back(seq); });
    std::sort(replicated.begin(), replicated.end());
    w.u32(static_cast<std::uint32_t>(replicated.size()));
    for (std::uint32_t seq : replicated) w.u32(seq);
    std::vector<std::pair<std::uint32_t, net::Ipv4Addr>> hops;
    runner.hop_log().for_each([&hops](std::uint32_t seq, net::Ipv4Addr hop) {
      hops.emplace_back(seq, hop);
    });
    std::sort(hops.begin(), hops.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u32(static_cast<std::uint32_t>(hops.size()));
    for (const auto& [seq, hop] : hops) {
      w.u32(seq);
      w.u32(hop.value());
    }
    wire::encode_loop_stats(w, runner.stats());
    wire::encode_net_counters(w, runner.net_counters());
    CoverageStats coverage;
    if (state.init.config.faults.enabled()) coverage = runner.coverage();
    wire::encode_coverage(w, coverage);
    w.u64(state.steal_totals[i].attempted);
    w.u64(state.steal_totals[i].completed);
    chan.send(wire::MsgType::kFinalShard, static_cast<std::uint32_t>(state.owned[i]),
              std::move(w).take());
  }
}

void handle_phase2(WorkerState& state, wire::FrameChannel& chan, BytesView payload) {
  auto msg = wire::decode_phase2(payload);
  if (!msg.ok()) throw std::runtime_error(msg.error().message);
  if (!state.have_plan) {
    throw std::runtime_error("shard worker: phase2 before phase1");
  }
  if (state.plan.emissions().size() != msg.value().schedule_from) {
    throw std::runtime_error(
        strprintf("shard worker: plan diverged from controller (%zu local emissions, "
                  "controller expects %llu)",
                  state.plan.emissions().size(),
                  static_cast<unsigned long long>(msg.value().schedule_from)));
  }
  state.plan.append_emissions(msg.value().tail);
  std::size_t from = static_cast<std::size_t>(msg.value().schedule_from);
  SimTime end = msg.value().end;
  if (state.stealing()) {
    const std::size_t vp_count =
        state.runner(0).testbed().topology().vantage_points().size();
    const auto buckets = bucket_emissions_by_vp(state.plan, from,
                                                state.plan.emissions().size(), vp_count);
    std::vector<const VpCarry*> carry_of(buckets.size(), nullptr);
    for (const VpCarry& carry : msg.value().carries) {
      if (carry.vp_index < carry_of.size()) carry_of[carry.vp_index] = &carry;
    }
    VpWorkQueue queue = make_local_queue(
        state, msg.value().deal, buckets.size(), bucket_weights(buckets),
        [&buckets](std::size_t vp) { return !buckets[vp].empty(); });
    drain_local_queue(
        state, queue,
        [&](ShardRunner& shard, std::size_t vp) {
          if (const VpCarry* carry = carry_of[vp]) shard.adopt_carry(*carry);
          shard.run_plan_vp(state.plan, buckets[vp], end);
        },
        end);
  } else {
    for (auto& runner : state.runners_) {
      runner->schedule_owned(state.plan, from, state.plan.emissions().size());
    }
    for_each_owned(state, [end](ShardRunner& shard) { shard.run_until(end); });
  }
  send_final_results(state, chan);
}

/// Fires the injected fault. Never returns (every kind ends or wedges the
/// process).
[[noreturn]] void inject_fault(const TestFault& fault, HeartbeatPulse& pulse, int out_fd) {
  switch (fault.kind) {
    case FaultKind::kKill:
      ::raise(SIGKILL);
      ::_exit(137);  // unreachable; keeps [[noreturn]] honest
    case FaultKind::kExit:
      ::_exit(43);
    case FaultKind::kStall:
      // Keep the process alive but silent: stop the pulse so the controller
      // sees heartbeat silence, then park forever.
      pulse.stop();
      for (;;) ::pause();
    case FaultKind::kCorrupt: {
      // Emit a frame whose CRC byte is flipped, then exit "cleanly": the
      // controller must treat the checksum mismatch itself as worker loss.
      pulse.stop();
      Bytes bytes = wire::encode_frame(wire::MsgType::kScreeningVerdicts, 0, {});
      bytes.back() ^= 0x01;
      const std::uint8_t* p = bytes.data();
      std::size_t left = bytes.size();
      while (left > 0) {
        ssize_t n = ::write(out_fd, p, left);
        if (n <= 0) break;
        p += n;
        left -= static_cast<std::size_t>(n);
      }
      ::_exit(0);
    }
  }
  ::_exit(43);
}

}  // namespace

int run_shard_worker(int in_fd, int out_fd, const ShardRunner::Decorator& decorate,
                     const ShardWorkerOptions& options) {
  wire::FrameChannel chan(in_fd, out_fd);
  TestFault fault;
  bool have_fault = false;
  if (options.enable_test_faults) {
    if (const char* spec = std::getenv("SHADOWPROBE_TEST_WORKER_FAULT")) {
      have_fault = parse_test_fault(spec, fault);
      if (!have_fault) {
        SP_LOG_WARN(strprintf("shard worker: ignoring malformed "
                              "SHADOWPROBE_TEST_WORKER_FAULT=\"%s\"",
                              spec));
      }
    }
  }
  try {
    auto first = chan.recv();
    if (!first.ok()) throw std::runtime_error(first.error().message);
    if (first.value().type != wire::MsgType::kInit) {
      throw std::runtime_error("shard worker: expected init message first");
    }
    WorkerState state;
    auto init = wire::decode_init(first.value().payload);
    if (!init.ok()) throw std::runtime_error(init.error().message);
    state.init = std::move(init).take();
    const bool fault_armed =
        have_fault && fault.proc_index == static_cast<int>(state.init.proc_index) &&
        (fault.all_gens || fault.spawn_gen == options.spawn_gen);
    HeartbeatPulse pulse(chan, state.init.proc_index, state.init.heartbeat_ms);
    build_runners(state, decorate, options.world);

    for (;;) {
      auto frame = chan.recv();
      if (!frame.ok()) {
        if (frame.error().message == wire::kEofMessage) {
          pulse.stop();
          return 0;  // orderly shutdown
        }
        throw std::runtime_error(frame.error().message);
      }
      if (fault_armed && frame.value().type == fault.phase) {
        inject_fault(fault, pulse, out_fd);
      }
      switch (frame.value().type) {
        case wire::MsgType::kRunScreening:
          handle_screening(state, chan);
          break;
        case wire::MsgType::kPhase1:
          handle_phase1(state, chan, frame.value().payload);
          break;
        case wire::MsgType::kPhase2:
          handle_phase2(state, chan, frame.value().payload);
          break;
        default:
          throw std::runtime_error(
              strprintf("shard worker: unexpected message type %d",
                        static_cast<int>(frame.value().type)));
      }
    }
  } catch (const std::exception& e) {
    SP_LOG_WARN(std::string("shard worker failed: ") + e.what());
    return 1;
  }
}

}  // namespace shadowprobe::core
