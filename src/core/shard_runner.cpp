#include "core/shard_runner.h"

#include <algorithm>
#include <stdexcept>

namespace shadowprobe::core {

ShardRunner::ShardRunner(std::uint32_t shard_index, std::uint32_t shard_count,
                         const TestbedConfig& bed_config, const CampaignConfig& config,
                         const Decorator& decorate)
    : ShardRunner(shard_index, shard_count, Testbed::create(bed_config), config,
                  decorate) {}

ShardRunner::ShardRunner(std::uint32_t shard_index, std::uint32_t shard_count,
                         std::shared_ptr<const World> world, const CampaignConfig& config,
                         const Decorator& decorate)
    : ShardRunner(shard_index, shard_count, Testbed::instantiate(std::move(world)),
                  config, decorate) {}

ShardRunner::ShardRunner(std::uint32_t shard_index, std::uint32_t shard_count,
                         std::unique_ptr<Testbed> bed, const CampaignConfig& config,
                         const Decorator& decorate)
    : shard_index_(shard_index),
      shard_count_(shard_count == 0 ? 1 : shard_count),
      config_(config),
      bed_(std::move(bed)),
      rng_(bed_->fork_rng("campaign")) {
  // Ground truth first, exactly as a serial run would deploy it, so the
  // replica's address plan and handler wiring match the serial testbed.
  if (decorate) deployment_ = decorate(*bed_);

  ledger_.set_shard(shard_index_);

  const bool faulty = config_.faults.enabled();
  if (faulty) {
    // Every replica derives the same injector from the master seed, so a
    // packet's fate on a hop is independent of which shard routes it.
    injector_ = std::make_unique<sim::FaultInjector>(
        config_.faults, bed_->config().topology.seed, config_.total_duration);
    // Scheduled collector downtime: location codes -> honeypot node names.
    for (const sim::CollectorOutage& outage : config_.faults.collector_outages) {
      const topo::Honeypot* match = nullptr;
      for (const auto& hp : bed_->topology().honeypots()) {
        if (hp.location == outage.location) {
          match = &hp;
          break;
        }
      }
      if (match == nullptr) {
        throw std::invalid_argument("fault profile names unknown honeypot location '" +
                                    outage.location + "'");
      }
      injector_->add_node_outage(bed_->net().name(match->node),
                                 {outage.start, outage.start + outage.duration});
    }
    bed_->net().set_fault_injector(injector_.get());
  }

  // Agents for every VP — identical wiring on every replica — though only
  // owned VPs ever emit. Streams are derived from the VP id, so an agent's
  // randomness is independent of shard membership.
  const auto& vps = bed_->topology().vantage_points();
  vps_base_ = vps.data();
  agents_.reserve(vps.size());
  // VP churn windows can only start once the campaign is actually emitting.
  const SimTime churn_earliest = config_.screening ? kHour : 0;
  const SimTime churn_latest =
      churn_earliest +
      static_cast<SimDuration>(std::max(1, config_.phase1_rounds)) *
          config_.phase1_window +
      config_.phase2_grace + config_.phase2_window;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const auto& vp = vps[i];
    VpAgent::Hooks hooks;
    hooks.on_dest_response = [this, i](std::uint32_t seq, SimTime when) {
      ledger_.mark_response(seq, when);
      if (++response_counts_[seq] > 1) replicated_seqs_.insert(seq);
      failure_streaks_[i] = 0;  // the VP demonstrably still reaches the world
    };
    hooks.on_hop = [this](std::uint32_t seq, net::Ipv4Addr hop, SimTime) {
      hop_log_.emplace(seq, hop);
    };
    hooks.on_interception = [this](const topo::VantagePoint& vp, net::Ipv4Addr) {
      intercepted_vps_.insert(&vp);
    };
    if (faulty) {
      hooks.on_decoy_retry = [this](std::uint32_t, int attempt) {
        ++retry_attempts_;
        if (attempt == 1) ++decoys_retried_;
      };
      hooks.on_decoy_failed = [this, i](std::uint32_t) {
        ++decoys_lost_;
        if (++failure_streaks_[i] >= config_.faults.quarantine_threshold &&
            !vp_quarantined(i)) {
          quarantined_[i] = bed_->loop().now();
        }
      };
    }
    auto agent =
        std::make_unique<VpAgent>(vp, rng_.derive("vp-" + vp.id), std::move(hooks));
    agent->bind(bed_->net());
    agent->set_dns_transport(config_.dns_transport, bed_->oblivious_proxy_addr());
    agent->set_tls_ech(config_.tls_decoys_use_ech);
    if (faulty) {
      agent->set_retry_policy({true, config_.faults.max_retries,
                               config_.faults.retry_timeout,
                               config_.faults.decoy_deadline()});
      // Session churn: the window is derived from the VP id alone, so every
      // replica agrees on who drops and when, whichever shard owns the VP.
      auto window =
          injector_->derive_churn_outage("vp-" + vp.id, churn_earliest, churn_latest);
      if (window) {
        vp_outages_[i] = *window;
        injector_->add_node_outage(bed_->net().name(vp.node), *window);
      }
    }
    agents_.push_back(std::move(agent));
  }
  // Control server for the TTL canary, hosted next to the US honeypot.
  control_server_ = std::make_unique<ControlServer>();
  sim::NodeId node = bed_->add_host_in_as(bed_->topology().honeypots().front().asn,
                                          "control-server", control_server_.get());
  control_addr_ = bed_->net().address(node);
}

ShardRunner::~ShardRunner() = default;

void ShardRunner::run_screening() {
  const auto& vps = bed_->topology().vantage_points();
  for (std::size_t i = 0; i < vps.size(); ++i) {
    if (!owns_vp(i) || vps[i].residential) continue;
    send_screening_probes(*agent_for(&vps[i]), control_addr_, bed_->topology());
  }
  // Let the probes settle; every shard advances the same hour so replica
  // clocks stay aligned whether or not this shard owns any candidate.
  bed_->loop().run_until(bed_->loop().now() + kHour);
}

ScreeningVerdict ShardRunner::verdict(std::size_t vp_index) const {
  const auto& vp = bed_->topology().vantage_points().at(vp_index);
  return screen_vp(vp, *control_server_, intercepted_vps_.contains(&vp));
}

void ShardRunner::adopt_plan(const CampaignPlan& plan) {
  ledger_.seed_paths(plan.paths());
  ledger_.rebind_vps(bed_->topology().vantage_points());
}

void ShardRunner::schedule_owned(const CampaignPlan& plan, std::size_t first,
                                 std::size_t last) {
  // The plan fixes how many of these emissions this shard owns; size the
  // loop's queue and the decoy store once instead of regrowing mid-phase.
  std::size_t owned = 0;
  for (std::size_t i = first; i < last; ++i) {
    const PlanEmission& emission = plan.emissions()[i];
    if (emission.vp_index >= 0 && owns_vp(static_cast<std::size_t>(emission.vp_index))) {
      ++owned;
    }
  }
  bed_->loop().reserve(bed_->loop().pending() + owned);
  ledger_.reserve_decoys(owned);
  bed_->logbook().reserve(owned);
  for (std::size_t i = first; i < last; ++i) {
    const PlanEmission& emission = plan.emissions()[i];
    if (emission.vp_index < 0 ||
        !owns_vp(static_cast<std::size_t>(emission.vp_index))) {
      continue;
    }
    schedule_emission(plan, i);
  }
}

void ShardRunner::schedule_emission(const CampaignPlan& plan, std::size_t index) {
  const PlanEmission& emission = plan.emissions()[index];
  const PathRecord& path = plan.path(emission.path_id);
  const topo::VantagePoint* vp =
      &bed_->topology().vantage_points().at(static_cast<std::size_t>(path.vp_index));
  SimTime when = emission.when;
  if (injector_ && emission.phase2) {
    // A Phase-II sweep scheduled into its VP's churn window would vanish
    // wholesale; resume it after the session comes back, preserving the
    // probe's offset within the sweep.
    const sim::OutageWindow* window =
        vp_outages_.find(static_cast<std::size_t>(emission.vp_index));
    if (window != nullptr && window->contains(when)) {
      when = window->end + (when - window->start);
      ++phase2_deferred_;
    }
  }
  bed_->loop().schedule_at(
      when,
      [this, emission, when, vp, dst = path.dest_addr, protocol = path.protocol] {
        if (injector_ && vp_quarantined(static_cast<std::size_t>(emission.vp_index))) {
          // Owner quarantined before this decoy fired: record the exact
          // seq so the barrier re-plans precisely this set — no ledger
          // record is created, the replacement emission gets a fresh seq.
          ++decoys_cancelled_;
          cancelled_seqs_.insert(emission.seq);
          return;
        }
        DecoyRecord& record = ledger_.create_preassigned(
            emission.seq, emission.path_id, when, vp->addr, dst, protocol,
            emission.ttl, emission.phase2);
        if (protocol == DecoyProtocol::kDns) {
          agent_for(vp)->send_dns_decoy(record);
        } else if (emission.phase2) {
          // Handshake-less during tracerouting, same as the serial path.
          agent_for(vp)->send_raw_decoy(record);
        } else if (protocol == DecoyProtocol::kHttp) {
          agent_for(vp)->send_http_decoy(record);
        } else {
          agent_for(vp)->send_tls_decoy(record);
        }
      });
}

void ShardRunner::run_screening_vp(std::size_t vp_index) {
  const auto& vp = bed_->topology().vantage_points().at(vp_index);
  bed_->loop().rewind(phase_start_);
  if (!vp.residential) {
    send_screening_probes(*agent_for(&vp), control_addr_, bed_->topology());
  }
  bed_->loop().run_until(phase_start_ + kHour);
}

void ShardRunner::run_plan_vp(const CampaignPlan& plan,
                              const std::vector<std::uint32_t>& emissions,
                              SimTime deadline) {
  // Rewind before scheduling: at the old clock (a previous pass's deadline)
  // schedule_at would clamp this VP's emissions forward to it.
  bed_->loop().rewind(phase_start_);
  bed_->loop().reserve(bed_->loop().pending() + emissions.size());
  ledger_.reserve_decoys(emissions.size());
  bed_->logbook().reserve(emissions.size());
  for (std::uint32_t index : emissions) schedule_emission(plan, index);
  bed_->loop().run_until(deadline);
}

VpCarry ShardRunner::export_carry(std::size_t vp_index) const {
  VpCarry carry;
  carry.vp_index = static_cast<std::uint32_t>(vp_index);
  if (const int* streak = failure_streaks_.find(vp_index)) {
    carry.failure_streak = *streak;
  }
  if (const SimTime* at = quarantined_.find(vp_index)) {
    carry.quarantined = true;
    carry.quarantined_at = *at;
  } else if (const SimTime* at2 = carried_quarantined_.find(vp_index)) {
    carry.quarantined = true;
    carry.quarantined_at = *at2;
  }
  return carry;
}

void ShardRunner::adopt_carry(const VpCarry& carry) {
  const auto vp = static_cast<std::size_t>(carry.vp_index);
  failure_streaks_[vp] = carry.failure_streak;
  if (carry.quarantined && !quarantined_.contains(vp)) {
    carried_quarantined_[vp] = carry.quarantined_at;
  }
}

void ShardRunner::run_until(SimTime deadline) { bed_->loop().run_until(deadline); }

CoverageStats ShardRunner::coverage() const {
  CoverageStats cov;
  cov.decoys_lost = decoys_lost_;
  cov.decoys_retried = decoys_retried_;
  cov.retry_attempts = retry_attempts_;
  cov.decoys_cancelled = decoys_cancelled_;
  cov.phase2_deferred = phase2_deferred_;
  cov.vps_quarantined = quarantined_.size();
  // Only the owner shard's agents ever transmit, so summing every agent's
  // stack counter over all shards still counts each retransmission once.
  for (const auto& agent : agents_) cov.tcp_retransmissions += agent->tcp_retransmissions();
  // Packets that arrived at a honeypot while its collector was down. Driven
  // entirely by owned-VP decoys (exhibitors only replay traffic that was
  // actually emitted), so the per-shard values partition cleanly.
  const auto& drops = bed_->net().endpoint_drops();
  for (const auto& hp : bed_->topology().honeypots()) {
    if (const std::uint64_t* n = drops.find(hp.node)) cov.honeypot_downtime_drops += *n;
  }
  // Per-link drop breakdown. A link's drops are attributed to whichever
  // shard's traffic crossed it, so the merged (summed) counts are invariant
  // to the shard layout even though the per-shard split is not.
  cov.link_drops = bed_->net().counters().per_link;
  return cov;
}

}  // namespace shadowprobe::core
