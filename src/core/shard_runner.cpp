#include "core/shard_runner.h"

namespace shadowprobe::core {

ShardRunner::ShardRunner(std::uint32_t shard_index, std::uint32_t shard_count,
                         const TestbedConfig& bed_config, const CampaignConfig& config,
                         const Decorator& decorate)
    : shard_index_(shard_index),
      shard_count_(shard_count == 0 ? 1 : shard_count),
      config_(config),
      bed_(Testbed::create(bed_config)),
      rng_(bed_->fork_rng("campaign")) {
  // Ground truth first, exactly as a serial run would deploy it, so the
  // replica's address plan and handler wiring match the serial testbed.
  if (decorate) deployment_ = decorate(*bed_);

  ledger_.set_shard(shard_index_);

  // Agents for every VP — identical wiring on every replica — though only
  // owned VPs ever emit. Streams are derived from the VP id, so an agent's
  // randomness is independent of shard membership.
  for (const auto& vp : bed_->topology().vantage_points()) {
    VpAgent::Hooks hooks;
    hooks.on_dest_response = [this](std::uint32_t seq, SimTime when) {
      ledger_.mark_response(seq, when);
      if (++response_counts_[seq] > 1) replicated_seqs_.insert(seq);
    };
    hooks.on_hop = [this](std::uint32_t seq, net::Ipv4Addr hop, SimTime) {
      hop_log_.emplace(seq, hop);
    };
    hooks.on_interception = [this](const topo::VantagePoint& vp, net::Ipv4Addr) {
      intercepted_vps_.insert(&vp);
    };
    auto agent =
        std::make_unique<VpAgent>(vp, rng_.derive("vp-" + vp.id), std::move(hooks));
    agent->bind(bed_->net());
    agent->set_dns_transport(config_.dns_transport, bed_->oblivious_proxy_addr());
    agent->set_tls_ech(config_.tls_decoys_use_ech);
    agent_index_[&vp] = agent.get();
    agents_.push_back(std::move(agent));
  }
  // Control server for the TTL canary, hosted next to the US honeypot.
  control_server_ = std::make_unique<ControlServer>();
  sim::NodeId node = bed_->topology().add_host_in_as(
      bed_->net(), bed_->topology().honeypots().front().asn, "control-server",
      control_server_.get());
  control_addr_ = bed_->net().address(node);
}

ShardRunner::~ShardRunner() = default;

void ShardRunner::run_screening() {
  const auto& vps = bed_->topology().vantage_points();
  for (std::size_t i = 0; i < vps.size(); ++i) {
    if (!owns_vp(i) || vps[i].residential) continue;
    send_screening_probes(*agent_for(&vps[i]), control_addr_, bed_->topology());
  }
  // Let the probes settle; every shard advances the same hour so replica
  // clocks stay aligned whether or not this shard owns any candidate.
  bed_->loop().run_until(bed_->loop().now() + kHour);
}

ScreeningVerdict ShardRunner::verdict(std::size_t vp_index) const {
  const auto& vp = bed_->topology().vantage_points().at(vp_index);
  return screen_vp(vp, *control_server_, intercepted_vps_.count(&vp) > 0);
}

void ShardRunner::adopt_plan(const CampaignPlan& plan) {
  ledger_.seed_paths(plan.paths());
  ledger_.rebind_vps(bed_->topology().vantage_points());
}

void ShardRunner::schedule_owned(const CampaignPlan& plan, std::size_t first,
                                 std::size_t last) {
  const auto& vps = bed_->topology().vantage_points();
  for (std::size_t i = first; i < last; ++i) {
    const PlanEmission& emission = plan.emissions()[i];
    if (emission.vp_index < 0 ||
        !owns_vp(static_cast<std::size_t>(emission.vp_index))) {
      continue;
    }
    const PathRecord& path = plan.path(emission.path_id);
    const topo::VantagePoint* vp = &vps.at(static_cast<std::size_t>(path.vp_index));
    bed_->loop().schedule_at(
        emission.when,
        [this, emission, vp, dst = path.dest_addr, protocol = path.protocol] {
          DecoyRecord& record = ledger_.create_preassigned(
              emission.seq, emission.path_id, emission.when, vp->addr, dst, protocol,
              emission.ttl, emission.phase2);
          if (protocol == DecoyProtocol::kDns) {
            agent_for(vp)->send_dns_decoy(record);
          } else if (emission.phase2) {
            // Handshake-less during tracerouting, same as the serial path.
            agent_for(vp)->send_raw_decoy(record);
          } else if (protocol == DecoyProtocol::kHttp) {
            agent_for(vp)->send_http_decoy(record);
          } else {
            agent_for(vp)->send_tls_decoy(record);
          }
        });
  }
}

void ShardRunner::run_until(SimTime deadline) { bed_->loop().run_until(deadline); }

}  // namespace shadowprobe::core
