// VP screening primitives (Appendices C and E), shared by the serial
// Campaign and the per-shard runners: each shard screens only the VPs it
// owns, but the probe set and the verdict logic must be identical.
#pragma once

#include "core/vp_agent.h"
#include "topo/topology.h"

namespace shadowprobe::core {

/// Pair resolver: the non-serving sibling three addresses above the service
/// address in the same /24 (the paper's example: 1.1.1.4 as to 1.1.1.1).
[[nodiscard]] net::Ipv4Addr pair_resolver_of(net::Ipv4Addr service);

enum class ScreeningVerdict { kUsable, kResidential, kTtlMangling, kIntercepted };

/// Emits one VP's screening probes: two TTL canaries with distinct initial
/// TTLs towards the control server, plus a pair-resolver probe towards every
/// public resolver's sibling address. Call only for non-residential VPs.
void send_screening_probes(VpAgent& agent, net::Ipv4Addr control_addr,
                           const topo::Topology& topo);

/// Judges one VP after the probes settled. `intercepted` is whether any
/// pair-resolver probe of this VP was answered.
[[nodiscard]] ScreeningVerdict screen_vp(const topo::VantagePoint& vp,
                                         const ControlServer& control, bool intercepted);

}  // namespace shadowprobe::core
