// Campaign orchestrator: runs the full two-phase measurement.
//
//   Screening  — provider vetting (residential exclusion), TTL-canary check
//                (drops providers that rewrite TTLs), pair-resolver check
//                (drops VPs behind DNS interception) — Appendices C and E.
//   Phase I    — every usable VP sends one DNS decoy to each of the 36 DNS
//                destinations and one HTTP + one TLS decoy (after a real TCP
//                handshake) to each web destination, spread over the
//                emission window under a per-target rate limit.
//   Phase II   — for every path Phase I found problematic, a hop-by-hop TTL
//                sweep (handshake-less for HTTP/TLS) locates the observer.
//
// The campaign then lets the clock run to the configured horizon so that
// long-retention replays (days) arrive, and produces the correlated results
// every analyzer consumes.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/correlator.h"
#include "core/ledger.h"
#include "core/locate.h"
#include "core/testbed.h"
#include "core/vp_agent.h"

namespace shadowprobe::core {

struct CampaignConfig {
  /// Emission window of one Phase-I round.
  SimDuration phase1_window = 12 * kHour;
  /// Number of Phase-I rounds: the paper emits "continuously in a
  /// round-robin fashion without stop" for two months; each round sends a
  /// fresh decoy over every path.
  int phase1_rounds = 1;
  /// Delay after Phase I before problematic paths are computed and swept
  /// (gives slow exhibitors time to reveal themselves).
  SimDuration phase2_grace = 36 * kHour;
  SimDuration phase2_window = 12 * kHour;
  /// Campaign horizon: how long honeypots keep capturing (the paper ran for
  /// two months; 30 simulated days cover the 10-day retention tail).
  SimDuration total_duration = 30 * kDay;
  /// TTL sweep ceiling (the paper sweeps to 64; synthetic paths are <= 12
  /// hops, so a lower ceiling saves events without losing coverage).
  int max_sweep_ttl = 16;
  bool screening = true;
  bool measure_dns = true;
  bool measure_http = true;
  bool measure_tls = true;
  /// Mitigation study knobs (paper Section 6): encrypted / oblivious DNS
  /// transports and TLS ECH for the decoys.
  DnsDecoyTransport dns_transport = DnsDecoyTransport::kPlain;
  bool tls_decoys_use_ech = false;
};

struct ScreeningReport {
  int candidates = 0;
  int rejected_residential = 0;
  int rejected_ttl_mangling = 0;
  int rejected_interception = 0;
  int usable = 0;
};

class Campaign {
 public:
  Campaign(Testbed& bed, CampaignConfig config);
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  /// Runs screening, both phases, and the capture horizon; then performs
  /// the final correlation and localization passes.
  void run();

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DecoyLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const ScreeningReport& screening() const noexcept { return screening_; }
  [[nodiscard]] const std::vector<const topo::VantagePoint*>& active_vps() const noexcept {
    return active_vps_;
  }
  [[nodiscard]] const std::vector<UnsolicitedRequest>& unsolicited() const noexcept {
    return unsolicited_;
  }
  [[nodiscard]] const std::vector<ObserverFinding>& findings() const noexcept {
    return findings_;
  }
  /// seq -> ICMP-revealed hop address (Phase II raw data).
  [[nodiscard]] const std::map<std::uint32_t, net::Ipv4Addr>& hop_log() const noexcept {
    return hop_log_;
  }
  /// Decoys whose VP received more than one response (request replication;
  /// excluded from shadowing per Appendix E).
  [[nodiscard]] const std::set<std::uint32_t>& replicated_seqs() const noexcept {
    return replicated_seqs_;
  }

 private:
  void run_screening();
  void schedule_phase1();
  void schedule_phase2();
  void sweep_path(const PathRecord& path, SimTime start);
  VpAgent* agent_for(const topo::VantagePoint* vp);

  Testbed& bed_;
  CampaignConfig config_;
  Rng rng_;
  DecoyLedger ledger_;
  ScreeningReport screening_;
  std::vector<std::unique_ptr<VpAgent>> agents_;
  std::map<const topo::VantagePoint*, VpAgent*> agent_index_;
  std::vector<const topo::VantagePoint*> active_vps_;
  std::map<std::uint32_t, net::Ipv4Addr> hop_log_;
  std::map<std::uint32_t, int> response_counts_;
  std::set<std::uint32_t> replicated_seqs_;
  std::set<const topo::VantagePoint*> intercepted_vps_;
  std::vector<UnsolicitedRequest> unsolicited_;
  std::vector<ObserverFinding> findings_;
  std::unique_ptr<ControlServer> control_server_;
  net::Ipv4Addr control_addr_;
};

}  // namespace shadowprobe::core
