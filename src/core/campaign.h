// Campaign orchestrator: runs the full two-phase measurement serially.
//
//   Screening  — provider vetting (residential exclusion), TTL-canary check
//                (drops providers that rewrite TTLs), pair-resolver check
//                (drops VPs behind DNS interception) — Appendices C and E.
//   Phase I    — every usable VP sends one DNS decoy to each of the 36 DNS
//                destinations and one HTTP + one TLS decoy (after a real TCP
//                handshake) to each web destination, spread over the
//                emission window under a per-target rate limit.
//   Phase II   — for every path Phase I found problematic, a hop-by-hop TTL
//                sweep (handshake-less for HTTP/TLS) locates the observer.
//
// The emission schedule itself — which decoy fires when, over which path,
// with which preassigned identifier — is computed by CampaignPlan; this
// class executes it on one Testbed's event loop. CampaignEngine executes
// the same plan partitioned over shards.
//
// The campaign then lets the clock run to the configured horizon so that
// long-retention replays (days) arrive, and produces the correlated results
// every analyzer consumes.
#pragma once

#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "core/campaign_config.h"
#include "core/campaign_plan.h"
#include "core/campaign_result.h"
#include "core/correlator.h"
#include "core/ledger.h"
#include "core/locate.h"
#include "core/testbed.h"
#include "core/vp_agent.h"

namespace shadowprobe::core {

class Campaign {
 public:
  Campaign(Testbed& bed, CampaignConfig config);
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  /// Runs screening, both phases, and the capture horizon; then performs
  /// the final correlation and localization passes.
  void run();

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DecoyLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const ScreeningReport& screening() const noexcept { return screening_; }
  [[nodiscard]] const std::vector<const topo::VantagePoint*>& active_vps() const noexcept {
    return active_vps_;
  }
  [[nodiscard]] const std::vector<UnsolicitedRequest>& unsolicited() const noexcept {
    return unsolicited_;
  }
  [[nodiscard]] const std::vector<ObserverFinding>& findings() const noexcept {
    return findings_;
  }
  /// seq -> ICMP-revealed hop address (Phase II raw data).
  [[nodiscard]] const FlatMap<std::uint32_t, net::Ipv4Addr>& hop_log() const noexcept {
    return hop_log_;
  }
  /// Decoys whose VP received more than one response (request replication;
  /// excluded from shadowing per Appendix E).
  [[nodiscard]] const FlatSet<std::uint32_t>& replicated_seqs() const noexcept {
    return replicated_seqs_;
  }

  /// Snapshot of everything downstream consumers need, in the same shape
  /// the sharded engine produces. Call after run().
  [[nodiscard]] CampaignResult result() const;

 private:
  void run_screening();
  void schedule_phase2();
  /// Schedules plan emissions [first, last) onto the event loop.
  void schedule_emissions(std::size_t first, std::size_t last);
  VpAgent* agent_for(const topo::VantagePoint* vp);

  Testbed& bed_;
  CampaignConfig config_;
  Rng rng_;
  CampaignPlan plan_;
  DecoyLedger ledger_;
  ScreeningReport screening_;
  std::vector<std::unique_ptr<VpAgent>> agents_;
  const topo::VantagePoint* vps_base_ = nullptr;  // agents_[i] serves vps_base_[i]
  std::vector<const topo::VantagePoint*> active_vps_;
  FlatMap<std::uint32_t, net::Ipv4Addr> hop_log_;
  FlatMap<std::uint32_t, int> response_counts_;
  FlatSet<std::uint32_t> replicated_seqs_;
  FlatSet<const topo::VantagePoint*> intercepted_vps_;
  std::vector<UnsolicitedRequest> unsolicited_;
  std::vector<ObserverFinding> findings_;
  std::unique_ptr<ControlServer> control_server_;
  net::Ipv4Addr control_addr_;
};

}  // namespace shadowprobe::core
