#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "common/strutil.h"

namespace shadowprobe::core {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < row.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(rule, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string percent(double fraction, int decimals) {
  return strprintf("%.*f%%", decimals, fraction * 100.0);
}

// -- Campaign report printers ---------------------------------------------------

void print_fig3(const CampaignAnalysis& analysis) {
  const PathRatioTable& ratios = analysis.ratios;
  std::printf("problematic path ratios (DNS, per destination):\n");
  TextTable table({"destination", "global VPs", "CN VPs", "all"});
  int printed = 0;
  for (const auto& dest : ratios.destinations_by_ratio(DecoyProtocol::kDns)) {
    table.add_row({dest,
                   percent(ratios.group(DecoyProtocol::kDns, dest, false).ratio()),
                   percent(ratios.group(DecoyProtocol::kDns, dest, true).ratio()),
                   percent(ratios.total(DecoyProtocol::kDns, dest).ratio())});
    if (++printed == 12) break;
  }
  std::printf("%s\n", table.str().c_str());
}

void print_table2(const CampaignAnalysis& analysis) {
  std::printf("observer location (normalized hops, 10 = destination):\n");
  for (const auto& [protocol, shares] : analysis.locations.shares) {
    std::printf("  %-4s:", decoy_protocol_name(protocol).c_str());
    for (int hop = 1; hop <= 10; ++hop) {
      std::printf(" %5.1f%%", (shares.count(hop) ? shares.at(hop) : 0.0) * 100);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void print_table3(const CampaignAnalysis& analysis) {
  const ObserverAsTable& table = analysis.ases;
  std::printf("top observer ASes (%d observer IPs, %s in CN):\n",
              table.total_observer_ips,
              percent(table.observer_countries.share("CN")).c_str());
  for (const auto& [protocol, rows] : table.rows) {
    std::size_t printed = 0;
    for (const auto& row : rows) {
      std::printf("  %-4s AS%-7u %-44s %3d IPs (%s)\n",
                  decoy_protocol_name(protocol).c_str(), row.asn,
                  row.as_name.c_str(), row.observer_ips, percent(row.share).c_str());
      if (++printed == 3) break;
    }
  }
  std::printf("\n");
}

void print_retention(const CampaignAnalysis& analysis) {
  const RetentionStats& stats = analysis.retention;
  std::printf("retention (over Resolver_h decoys): >3 DNS requests after 1h: %s, "
              ">10: %s, web re-appearance after 10d: %s\n\n",
              percent(stats.over3_after_1h).c_str(),
              percent(stats.over10_after_1h).c_str(),
              percent(stats.web_after_10d).c_str());
}

void print_reports(const std::string& report, const CampaignResult& result,
                   const CampaignAnalysis& analysis) {
  std::printf("campaign: %zu decoys, %zu honeypot hits, %zu unsolicited, %d usable VPs\n\n",
              result.ledger.decoy_count(), result.hits.size(), result.unsolicited.size(),
              result.screening.usable);
  const ShardExecutionStats& shard_stats = result.shard_stats;
  if (shard_stats.clamped) {
    std::printf("  note: requested %d shards, clamped to %d\n",
                shard_stats.requested_shards, shard_stats.effective_shards);
  }
  if (shard_stats.per_shard.size() > 1) {
    for (std::size_t i = 0; i < shard_stats.per_shard.size(); ++i) {
      const auto& stats = shard_stats.per_shard[i];
      std::printf("  shard %zu: %llu events processed, peak queue %zu\n", i,
                  static_cast<unsigned long long>(stats.processed), stats.high_water);
    }
    std::printf("  shard balance: event imbalance %.3f (max/mean)\n",
                shard_stats.event_imbalance());
    std::printf("  scheduler: %s, %llu/%llu steals completed/attempted\n",
                scheduler_mode_name(shard_stats.scheduler),
                static_cast<unsigned long long>(shard_stats.steals_completed),
                static_cast<unsigned long long>(shard_stats.steals_attempted));
    std::printf("\n");
  }
  if (shard_stats.workers_lost > 0) {
    std::printf(
        "  worker recovery: %llu worker(s) lost, %llu respawned, %llu degraded "
        "in-process, %llu shard(s) re-dispatched (output unaffected)\n\n",
        static_cast<unsigned long long>(shard_stats.workers_lost),
        static_cast<unsigned long long>(shard_stats.workers_respawned),
        static_cast<unsigned long long>(shard_stats.workers_degraded),
        static_cast<unsigned long long>(shard_stats.shards_retried));
  }
  if (result.coverage) {
    const CoverageStats& cov = *result.coverage;
    std::printf("fault profile: %s\n", result.config.faults.str().c_str());
    std::printf(
        "  coverage: %llu/%llu phase-1 decoys delivered (%llu attempted, "
        "%llu lost after retries)\n",
        static_cast<unsigned long long>(cov.decoys_delivered),
        static_cast<unsigned long long>(cov.phase1_planned),
        static_cast<unsigned long long>(cov.decoys_attempted),
        static_cast<unsigned long long>(cov.decoys_lost));
    std::printf(
        "  resilience: %llu decoys retried (%llu retry sends, %llu tcp "
        "retransmissions), %llu VPs quarantined, %llu decoys cancelled, "
        "%llu re-homed, %llu sweep probes deferred\n",
        static_cast<unsigned long long>(cov.decoys_retried),
        static_cast<unsigned long long>(cov.retry_attempts),
        static_cast<unsigned long long>(cov.tcp_retransmissions),
        static_cast<unsigned long long>(cov.vps_quarantined),
        static_cast<unsigned long long>(cov.decoys_cancelled),
        static_cast<unsigned long long>(cov.decoys_rescheduled),
        static_cast<unsigned long long>(cov.phase2_deferred));
    if (cov.honeypot_downtime_drops > 0) {
      std::printf("  collector outages swallowed %llu packets\n",
                  static_cast<unsigned long long>(cov.honeypot_downtime_drops));
    }
    if (!cov.link_drops.empty()) {
      // Worst links first; ties (common at small scales) stay in canonical
      // name order so the table is deterministic.
      std::vector<sim::LinkDropCounters> links = cov.link_drops;
      std::sort(links.begin(), links.end(),
                [](const sim::LinkDropCounters& a, const sim::LinkDropCounters& b) {
                  if (a.total() != b.total()) return a.total() > b.total();
                  if (a.node_a != b.node_a) return a.node_a < b.node_a;
                  return a.node_b < b.node_b;
                });
      constexpr std::size_t kTopLinks = 10;
      std::size_t shown = std::min(links.size(), kTopLinks);
      std::printf("  top fault links (%zu of %zu with drops):\n", shown, links.size());
      for (std::size_t i = 0; i < shown; ++i) {
        const auto& link = links[i];
        std::printf("    %-14s <-> %-14s %8llu lost, %8llu down\n",
                    link.node_a.c_str(), link.node_b.c_str(),
                    static_cast<unsigned long long>(link.link_loss),
                    static_cast<unsigned long long>(link.link_down));
      }
    }
    if (shard_stats.worker_procs > 0) {
      std::printf("  executed by %d worker process(es)\n", shard_stats.worker_procs);
    }
    // Per-replica drop tallies are diagnostics, not results: replica
    // infrastructure traffic repeats on every shard, so these do not sum to
    // a layout-invariant figure (which is why they stay out of the JSON).
    for (std::size_t i = 0; i < shard_stats.per_shard_net.size(); ++i) {
      const sim::NetworkCounters& net = shard_stats.per_shard_net[i];
      std::printf(
          "  shard %zu network: %llu delivered, drops: %llu %s, %llu %s, "
          "%llu %s\n",
          i, static_cast<unsigned long long>(net.delivered),
          static_cast<unsigned long long>(net.link_loss),
          sim::drop_reason_name(sim::DropReason::kLinkLoss),
          static_cast<unsigned long long>(net.link_down),
          sim::drop_reason_name(sim::DropReason::kLinkDown),
          static_cast<unsigned long long>(net.endpoint_down),
          sim::drop_reason_name(sim::DropReason::kEndpointDown));
    }
    std::printf("\n");
  }
  if (report == "all" || report == "fig3") print_fig3(analysis);
  if (report == "all" || report == "table2") print_table2(analysis);
  if (report == "all" || report == "table3") print_table3(analysis);
  if (report == "all" || report == "retention") print_retention(analysis);
}

}  // namespace shadowprobe::core
