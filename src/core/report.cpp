#include "core/report.h"

#include <algorithm>

#include "common/strutil.h"

namespace shadowprobe::core {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < row.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(rule, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string percent(double fraction, int decimals) {
  return strprintf("%.*f%%", decimals, fraction * 100.0);
}

}  // namespace shadowprobe::core
