// Observer locator: Phase II analysis.
//
// For every problematic path swept with TTL variants, the smallest initial
// TTL whose decoy still triggered unsolicited requests is the observer's
// hop; the ICMP Time-Exceeded source for that variant exposes the observer
// device's address (Figure 2 of the paper). Hops are normalized to a 1-10
// scale with 10 = destination (Table 2's axis).
#pragma once

#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "core/correlator.h"
#include "core/ledger.h"

namespace shadowprobe::core {

struct ObserverFinding {
  std::uint32_t path_id = 0;
  DecoyProtocol protocol = DecoyProtocol::kDns;
  int min_trigger_ttl = 0;  // smallest initial TTL that still triggered
  int dest_ttl = 0;         // path length: smallest TTL reaching the destination
  int normalized_hop = 10;  // 1..10, 10 = destination
  bool at_destination = true;
  std::optional<net::Ipv4Addr> observer_addr;  // ICMP-revealed when on-wire
};

class ObserverLocator {
 public:
  ObserverLocator(const DecoyLedger& ledger,
                  const FlatMap<std::uint32_t, net::Ipv4Addr>& hop_log)
      : ledger_(ledger), hop_log_(hop_log) {}

  /// Produces one finding per problematic path that has Phase-II coverage.
  [[nodiscard]] std::vector<ObserverFinding> locate(
      const std::vector<UnsolicitedRequest>& unsolicited) const;

 private:
  const DecoyLedger& ledger_;
  const FlatMap<std::uint32_t, net::Ipv4Addr>& hop_log_;  // seq -> ICMP source
};

/// Normalizes hop `t` on a path of length `dest_ttl` to the 1-10 scale.
int normalize_hop(int trigger_ttl, int dest_ttl);

}  // namespace shadowprobe::core
