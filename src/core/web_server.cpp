#include "core/web_server.h"

#include "common/strutil.h"
#include "net/http.h"
#include "net/tls.h"

namespace shadowprobe::core {

WebSiteServer::WebSiteServer(std::string domain, Rng rng)
    : domain_(std::move(domain)), rng_(rng) {}

void WebSiteServer::bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr) {
  (void)addr;
  tcp_ = std::make_unique<sim::TcpStack>(net, node, rng_.fork("tcp"));
  tcp_->listen(80, [this](const sim::ConnKey& key, BytesView data) {
    return serve_http(key, data);
  });
  tcp_->listen(443, [this](const sim::ConnKey& key, BytesView data) {
    return serve_tls(key, data);
  });
  net.set_handler(node, this);
}

void WebSiteServer::on_datagram(sim::Network& net, sim::NodeId self,
                                const net::Ipv4Datagram& dgram) {
  (void)net;
  (void)self;
  if (dgram.header.protocol == net::IpProto::kTcp) tcp_->on_segment(dgram);
}

Bytes WebSiteServer::serve_http(const sim::ConnKey& key, BytesView data) {
  auto request = net::HttpRequest::decode(data);
  if (!request.ok()) return {};
  ++http_requests_;
  const net::HttpRequest& req = request.value();
  if (host_observer_) {
    if (auto name = net::DnsName::parse(req.host())) host_observer_(key.remote_addr, *name);
  }
  net::HttpResponse response;
  // A decoy's Host header never matches this site (the paper notes this
  // mismatch explicitly); big sites typically answer such requests with a
  // default page or a 404 — either way the transaction completes.
  if (iequals(req.host(), domain_)) {
    response.status = 200;
    response.reason = "OK";
    response.headers.add("Content-Type", "text/html");
    response.body = to_bytes("<html><body><h1>" + domain_ + "</h1></body></html>");
  } else {
    response.status = 404;
    response.reason = "Not Found";
    response.headers.add("Content-Type", "text/plain");
    response.body = to_bytes("unknown host\n");
  }
  return response.encode();
}

Bytes WebSiteServer::serve_tls(const sim::ConnKey& key, BytesView data) {
  auto hello = net::TlsClientHello::decode_record(data);
  if (!hello.ok()) return {};
  ++tls_handshakes_;
  if (sni_observer_) {
    std::optional<std::string> sni = hello.value().has_ech()
                                         ? hello.value().ech_inner_sni()
                                         : hello.value().sni();
    if (sni) {
      if (auto name = net::DnsName::parse(*sni)) sni_observer_(key.remote_addr, *name);
    }
  }
  net::TlsServerHello server_hello;
  for (auto& b : server_hello.random) b = static_cast<std::uint8_t>(rng_.bits());
  server_hello.session_id = hello.value().session_id;
  return server_hello.encode_record();
}

}  // namespace shadowprobe::core
