#include "core/analysis.h"

#include <algorithm>
#include <set>

namespace shadowprobe::core {

// -- Table 1 ------------------------------------------------------------------

std::vector<PlatformGroupSummary> summarize_platform(
    const std::vector<const topo::VantagePoint*>& vps) {
  struct Acc {
    std::set<std::string> providers;
    std::set<net::Ipv4Addr> ips;
    std::set<std::uint32_t> ases;
    std::set<std::string> regions;
  };
  Acc global, cn, total;
  for (const auto* vp : vps) {
    Acc& acc = vp->cn_platform ? cn : global;
    acc.providers.insert(vp->provider);
    acc.ips.insert(vp->addr);
    acc.ases.insert(vp->asn);
    acc.regions.insert(vp->cn_platform ? vp->province : vp->country);
    total.providers.insert(vp->provider);
    total.ips.insert(vp->addr);
    total.ases.insert(vp->asn);
    total.regions.insert(vp->country);
  }
  auto row = [](const std::string& name, const Acc& acc) {
    return PlatformGroupSummary{name, static_cast<int>(acc.providers.size()),
                                static_cast<int>(acc.ips.size()),
                                static_cast<int>(acc.ases.size()),
                                static_cast<int>(acc.regions.size())};
  };
  return {row("Global (excl. CN)", global), row("China (CN mainland)", cn),
          row("Total", total)};
}

// -- Figure 3 -----------------------------------------------------------------

namespace {

std::string dest_label_of(const PathRecord& path) {
  return path.protocol == DecoyProtocol::kDns ? path.dest_name : path.dest_country;
}

}  // namespace

PathRatioCell PathRatioTable::total(DecoyProtocol protocol,
                                    const std::string& dest_label) const {
  PathRatioCell out;
  auto it = cells.find({protocol, dest_label});
  if (it == cells.end()) return out;
  for (const auto& [country, cell] : it->second) {
    out.paths += cell.paths;
    out.problematic += cell.problematic;
  }
  return out;
}

PathRatioCell PathRatioTable::group(DecoyProtocol protocol, const std::string& dest_label,
                                    bool cn_platform) const {
  PathRatioCell out;
  auto it = cells.find({protocol, dest_label});
  if (it == cells.end()) return out;
  for (const auto& [country, cell] : it->second) {
    bool is_cn = country == "CN";
    if (is_cn != cn_platform) continue;
    out.paths += cell.paths;
    out.problematic += cell.problematic;
  }
  return out;
}

std::vector<std::string> PathRatioTable::destinations_by_ratio(DecoyProtocol protocol) const {
  std::vector<std::pair<std::string, double>> order;
  for (const auto& [key, by_country] : cells) {
    if (key.first != protocol) continue;
    order.emplace_back(key.second, total(protocol, key.second).ratio());
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> out;
  out.reserve(order.size());
  for (auto& [label, ratio] : order) out.push_back(label);
  return out;
}

PathRatioTable path_ratios(const DecoyLedger& ledger,
                           const std::vector<UnsolicitedRequest>& unsolicited) {
  PathRatioTable table;
  std::set<std::uint32_t> problematic = Correlator::problematic_paths(unsolicited);
  for (const auto& path : ledger.paths()) {
    PathRatioCell& cell =
        table.cells[{path.protocol, dest_label_of(path)}][path.vp->country];
    ++cell.paths;
    if (problematic.count(path.path_id) > 0) ++cell.problematic;
  }
  return table;
}

std::vector<std::string> top_shadowed_resolvers(const PathRatioTable& table,
                                                std::size_t count) {
  auto order = table.destinations_by_ratio(DecoyProtocol::kDns);
  if (order.size() > count) order.resize(count);
  return order;
}

// -- Table 2 ------------------------------------------------------------------

LocationDistribution observer_locations(const std::vector<ObserverFinding>& findings) {
  LocationDistribution out;
  std::map<DecoyProtocol, Counter<int>> counters;
  for (const auto& finding : findings) {
    counters[finding.protocol].add(finding.normalized_hop);
  }
  for (const auto& [protocol, counter] : counters) {
    out.located_paths[protocol] = static_cast<int>(counter.total());
    for (int hop = 1; hop <= 10; ++hop) {
      out.shares[protocol][hop] = counter.share(hop);
    }
  }
  return out;
}

// -- Table 3 ------------------------------------------------------------------

ObserverAsTable observer_ases(const std::vector<ObserverFinding>& findings,
                              const intel::GeoDatabase& geo) {
  ObserverAsTable out;
  std::map<DecoyProtocol, std::set<net::Ipv4Addr>> observers;
  std::set<net::Ipv4Addr> all;
  for (const auto& finding : findings) {
    if (!finding.observer_addr) continue;
    observers[finding.protocol].insert(*finding.observer_addr);
    all.insert(*finding.observer_addr);
  }
  out.total_observer_ips = static_cast<int>(all.size());
  for (net::Ipv4Addr addr : all) out.observer_countries.add(geo.country(addr));

  for (const auto& [protocol, addrs] : observers) {
    std::map<std::uint32_t, ObserverAsRow> by_as;
    for (net::Ipv4Addr addr : addrs) {
      auto entry = geo.lookup(addr);
      std::uint32_t asn = entry ? entry->asn : 0;
      ObserverAsRow& row = by_as[asn];
      row.asn = asn;
      if (entry) {
        row.as_name = entry->as_name;
        row.country = entry->country;
      }
      ++row.observer_ips;
    }
    std::vector<ObserverAsRow> rows;
    rows.reserve(by_as.size());
    for (auto& [asn, row] : by_as) {
      row.share = addrs.empty() ? 0.0
                                : static_cast<double>(row.observer_ips) /
                                      static_cast<double>(addrs.size());
      rows.push_back(std::move(row));
    }
    std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.observer_ips > b.observer_ips;
    });
    out.rows[protocol] = std::move(rows);
  }
  return out;
}

// -- Figures 4 & 7 --------------------------------------------------------------

std::map<std::string, Cdf> interval_cdf_by_resolver(
    const DecoyLedger& ledger, const std::vector<UnsolicitedRequest>& unsolicited,
    const std::vector<std::string>& resolvers) {
  std::set<std::string> wanted(resolvers.begin(), resolvers.end());
  std::map<std::string, Cdf> out;
  for (const auto& request : unsolicited) {
    const PathRecord& path = ledger.path(request.path_id);
    if (path.protocol != DecoyProtocol::kDns) continue;
    if (!wanted.empty() && wanted.count(path.dest_name) == 0) continue;
    out[path.dest_name].add(to_seconds(request.interval));
  }
  return out;
}

std::map<DecoyProtocol, Cdf> interval_cdf_by_protocol(
    const std::vector<UnsolicitedRequest>& unsolicited) {
  std::map<DecoyProtocol, Cdf> out;
  for (const auto& request : unsolicited) {
    if (request.decoy_protocol == DecoyProtocol::kDns) continue;
    out[request.decoy_protocol].add(to_seconds(request.interval));
  }
  return out;
}

// -- Figure 5 -----------------------------------------------------------------

std::string decoy_outcome_name(DecoyOutcome outcome) {
  switch (outcome) {
    case DecoyOutcome::kNoUnsolicited: return "none";
    case DecoyOutcome::kDnsWithinHour: return "DNS-DNS <1h";
    case DecoyOutcome::kDnsAfterHours: return "DNS-DNS >1h";
    case DecoyOutcome::kWebWithinDay: return "DNS-HTTP(S) <1d";
    case DecoyOutcome::kWebAfterDays: return "DNS-HTTP(S) >1d";
  }
  return "?";
}

ComboBreakdown protocol_combos(const DecoyLedger& ledger,
                               const std::vector<UnsolicitedRequest>& unsolicited,
                               const std::vector<std::string>& vp_countries) {
  std::set<std::string> wanted_countries(vp_countries.begin(), vp_countries.end());
  auto vp_selected = [&](const PathRecord& path) {
    return wanted_countries.empty() || wanted_countries.count(path.vp->country) > 0;
  };
  // Most-telling outcome per Phase-I DNS decoy.
  std::map<std::uint32_t, DecoyOutcome> outcome;  // by seq
  for (const auto& request : unsolicited) {
    const DecoyRecord* record = ledger.by_seq(request.seq);
    if (record == nullptr || record->phase2 ||
        record->id.protocol != DecoyProtocol::kDns) {
      continue;
    }
    DecoyOutcome candidate;
    if (request.request_protocol == RequestProtocol::kDns) {
      candidate = request.interval <= kHour ? DecoyOutcome::kDnsWithinHour
                                            : DecoyOutcome::kDnsAfterHours;
    } else {
      candidate = request.interval <= kDay ? DecoyOutcome::kWebWithinDay
                                           : DecoyOutcome::kWebAfterDays;
    }
    auto [it, inserted] = outcome.emplace(request.seq, candidate);
    if (!inserted && static_cast<int>(candidate) > static_cast<int>(it->second)) {
      it->second = candidate;
    }
  }

  ComboBreakdown out;
  std::map<std::string, Counter<int>> counters;
  for (const auto& decoy : ledger.decoys()) {
    if (decoy.phase2 || decoy.id.protocol != DecoyProtocol::kDns) continue;
    const PathRecord& path = ledger.path(decoy.path_id);
    if (!vp_selected(path)) continue;
    auto it = outcome.find(decoy.id.seq);
    DecoyOutcome o = it == outcome.end() ? DecoyOutcome::kNoUnsolicited : it->second;
    counters[path.dest_name].add(static_cast<int>(o));
    ++out.decoys[path.dest_name];
  }
  for (const auto& [dest, counter] : counters) {
    for (int o = 0; o <= static_cast<int>(DecoyOutcome::kWebAfterDays); ++o) {
      out.shares[dest][static_cast<DecoyOutcome>(o)] = counter.share(o);
    }
  }
  return out;
}

// -- Figure 6 -----------------------------------------------------------------

OriginAsTable origin_ases(const DecoyLedger& ledger,
                          const std::vector<UnsolicitedRequest>& unsolicited,
                          const std::vector<std::string>& resolvers,
                          const intel::GeoDatabase& geo, const intel::Blocklist& blocklist) {
  std::set<std::string> wanted(resolvers.begin(), resolvers.end());
  OriginAsTable out;
  std::set<net::Ipv4Addr> dns_origins;
  for (const auto& request : unsolicited) {
    const PathRecord& path = ledger.path(request.path_id);
    if (path.protocol != DecoyProtocol::kDns) continue;
    if (!wanted.empty() && wanted.count(path.dest_name) == 0) continue;
    auto entry = geo.lookup(request.hit.origin);
    std::string label = entry ? "AS" + std::to_string(entry->asn) + " " + entry->as_name
                              : "unknown";
    out.per_resolver[path.dest_name].add(label);
    if (request.request_protocol == RequestProtocol::kDns) {
      dns_origins.insert(request.hit.origin);
    }
  }
  out.distinct_dns_origins = static_cast<int>(dns_origins.size());
  out.dns_origin_blocklisted = blocklist.hit_rate(
      std::vector<net::Ipv4Addr>(dns_origins.begin(), dns_origins.end()));
  return out;
}

// -- Section 5.1 ----------------------------------------------------------------

RetentionStats retention_stats(const DecoyLedger& ledger,
                               const std::vector<UnsolicitedRequest>& unsolicited,
                               const std::vector<std::string>& resolvers,
                               const std::string& long_retention_resolver) {
  std::set<std::string> wanted(resolvers.begin(), resolvers.end());
  std::map<std::uint32_t, int> late_requests;      // seq -> count after 1h
  std::map<std::uint32_t, bool> web_after_10d;     // seq (to the named resolver)
  for (const auto& request : unsolicited) {
    const DecoyRecord* record = ledger.by_seq(request.seq);
    if (record == nullptr || record->phase2 ||
        record->id.protocol != DecoyProtocol::kDns) {
      continue;
    }
    if (request.interval > kHour) ++late_requests[request.seq];
    const PathRecord& path = ledger.path(request.path_id);
    if (path.dest_name == long_retention_resolver && request.interval >= 10 * kDay &&
        request.request_protocol != RequestProtocol::kDns) {
      web_after_10d[request.seq] = true;
    }
  }

  RetentionStats stats;
  int total = 0;
  int over3 = 0;
  int over10 = 0;
  int named_total = 0;
  int named_10d = 0;
  for (const auto& decoy : ledger.decoys()) {
    if (decoy.phase2 || decoy.id.protocol != DecoyProtocol::kDns) continue;
    const PathRecord& decoy_path = ledger.path(decoy.path_id);
    if (!wanted.empty() && wanted.count(decoy_path.dest_name) == 0) continue;
    ++total;
    auto it = late_requests.find(decoy.id.seq);
    int count = it == late_requests.end() ? 0 : it->second;
    if (count > 3) ++over3;
    if (count > 10) ++over10;
    if (decoy_path.dest_name == long_retention_resolver) {
      ++named_total;
      if (web_after_10d.count(decoy.id.seq) > 0) ++named_10d;
    }
  }
  stats.considered_decoys = total;
  if (total > 0) {
    stats.over3_after_1h = static_cast<double>(over3) / total;
    stats.over10_after_1h = static_cast<double>(over10) / total;
  }
  if (named_total > 0) {
    stats.web_after_10d = static_cast<double>(named_10d) / named_total;
  }
  return stats;
}

// -- Section 5 payloads & reputation ---------------------------------------------

IncentiveStats incentive_stats(const std::vector<UnsolicitedRequest>& unsolicited,
                               const intel::SignatureDb& signatures,
                               const intel::Blocklist& blocklist) {
  IncentiveStats stats;
  Counter<int> payloads;
  std::map<std::pair<bool, RequestProtocol>, std::set<net::Ipv4Addr>> origins;
  for (const auto& request : unsolicited) {
    bool dns_decoy = request.decoy_protocol == DecoyProtocol::kDns;
    if (request.request_protocol == RequestProtocol::kHttp) {
      intel::PayloadClass cls = signatures.classify_target(request.hit.http_target);
      payloads.add(static_cast<int>(cls));
      if (cls == intel::PayloadClass::kExploitAttempt) stats.exploits_found = true;
    }
    if (request.request_protocol != RequestProtocol::kDns) {
      origins[{dns_decoy, request.request_protocol}].insert(request.hit.origin);
    }
  }
  stats.http_requests = static_cast<int>(payloads.total());
  for (int c = 0; c <= static_cast<int>(intel::PayloadClass::kOther); ++c) {
    stats.payload_shares[static_cast<intel::PayloadClass>(c)] = payloads.share(c);
  }
  auto rate = [&](bool dns_decoy, RequestProtocol protocol) {
    auto it = origins.find({dns_decoy, protocol});
    if (it == origins.end()) return 0.0;
    return blocklist.hit_rate(
        std::vector<net::Ipv4Addr>(it->second.begin(), it->second.end()));
  };
  stats.dns_decoy_http_origin_blocklisted = rate(true, RequestProtocol::kHttp);
  stats.dns_decoy_https_origin_blocklisted = rate(true, RequestProtocol::kHttps);
  stats.web_decoy_http_origin_blocklisted = rate(false, RequestProtocol::kHttp);
  stats.web_decoy_https_origin_blocklisted = rate(false, RequestProtocol::kHttps);
  return stats;
}

}  // namespace shadowprobe::core
