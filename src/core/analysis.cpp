#include "core/analysis.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/parallel.h"

namespace shadowprobe::core {

// -- Parallel scan machinery ----------------------------------------------------
//
// Each table's scan over the unsolicited-request vector is expressed as a
// Partial accumulator: `add(request)` folds one request in, `absorb(other)`
// merges a sibling partial. scan_unsolicited() splits the vector into one
// contiguous chunk per worker, folds chunks concurrently, then merges the
// partials in ascending worker order. Determinism holds because every merge
// is either commutative (set unions, counter sums, per-seq maxima) or
// order-preserving under ascending-chunk concatenation (Cdf sample lists,
// which additionally sort on read).

namespace {

/// Below this many requests the pool costs more than it saves; serial and
/// parallel scans produce identical tables either way.
constexpr std::size_t kScanGrain = 64;

template <typename Partial, typename Factory>
Partial scan_unsolicited(const std::vector<UnsolicitedRequest>& unsolicited,
                         int workers, const Factory& make_partial) {
  workers = resolve_worker_count(workers);
  if (workers == 1 || unsolicited.size() < kScanGrain) {
    Partial acc = make_partial();
    for (const auto& request : unsolicited) acc.add(request);
    return acc;
  }
  std::vector<Partial> partials;
  partials.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) partials.push_back(make_partial());
  parallel_chunks(unsolicited.size(), workers,
                  [&](int w, std::size_t begin, std::size_t end) {
                    auto& acc = partials[static_cast<std::size_t>(w)];
                    for (std::size_t i = begin; i < end; ++i) acc.add(unsolicited[i]);
                  });
  Partial out = std::move(partials.front());
  for (std::size_t w = 1; w < partials.size(); ++w) out.absorb(std::move(partials[w]));
  return out;
}

}  // namespace

// -- Table 1 ------------------------------------------------------------------

std::vector<PlatformGroupSummary> summarize_platform(
    const std::vector<const topo::VantagePoint*>& vps) {
  struct Acc {
    std::set<std::string> providers;
    std::set<net::Ipv4Addr> ips;
    std::set<std::uint32_t> ases;
    std::set<std::string> regions;
  };
  Acc global, cn, total;
  for (const auto* vp : vps) {
    Acc& acc = vp->cn_platform ? cn : global;
    acc.providers.insert(vp->provider);
    acc.ips.insert(vp->addr);
    acc.ases.insert(vp->asn);
    acc.regions.insert(vp->cn_platform ? vp->province : vp->country);
    total.providers.insert(vp->provider);
    total.ips.insert(vp->addr);
    total.ases.insert(vp->asn);
    total.regions.insert(vp->country);
  }
  auto row = [](const std::string& name, const Acc& acc) {
    return PlatformGroupSummary{name, static_cast<int>(acc.providers.size()),
                                static_cast<int>(acc.ips.size()),
                                static_cast<int>(acc.ases.size()),
                                static_cast<int>(acc.regions.size())};
  };
  return {row("Global (excl. CN)", global), row("China (CN mainland)", cn),
          row("Total", total)};
}

// -- Figure 3 -----------------------------------------------------------------

namespace {

std::string dest_label_of(const PathRecord& path) {
  return path.protocol == DecoyProtocol::kDns ? path.dest_name : path.dest_country;
}

/// Partial: the problematic-path id set. Union merge is commutative.
struct ProblematicPathsPartial {
  std::set<std::uint32_t> paths;

  void add(const UnsolicitedRequest& request) { paths.insert(request.path_id); }
  void absorb(ProblematicPathsPartial&& other) {
    paths.merge(other.paths);
  }
};

}  // namespace

PathRatioCell PathRatioTable::total(DecoyProtocol protocol,
                                    const std::string& dest_label) const {
  PathRatioCell out;
  auto it = cells.find({protocol, dest_label});
  if (it == cells.end()) return out;
  for (const auto& [country, cell] : it->second) {
    out.paths += cell.paths;
    out.problematic += cell.problematic;
  }
  return out;
}

PathRatioCell PathRatioTable::group(DecoyProtocol protocol, const std::string& dest_label,
                                    bool cn_platform) const {
  PathRatioCell out;
  auto it = cells.find({protocol, dest_label});
  if (it == cells.end()) return out;
  for (const auto& [country, cell] : it->second) {
    bool is_cn = country == "CN";
    if (is_cn != cn_platform) continue;
    out.paths += cell.paths;
    out.problematic += cell.problematic;
  }
  return out;
}

std::vector<std::string> PathRatioTable::destinations_by_ratio(DecoyProtocol protocol) const {
  std::vector<std::pair<std::string, double>> order;
  for (const auto& [key, by_country] : cells) {
    if (key.first != protocol) continue;
    order.emplace_back(key.second, total(protocol, key.second).ratio());
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> out;
  out.reserve(order.size());
  for (auto& [label, ratio] : order) out.push_back(label);
  return out;
}

PathRatioTable path_ratios(const DecoyLedger& ledger,
                           const std::vector<UnsolicitedRequest>& unsolicited,
                           int workers) {
  auto problematic = scan_unsolicited<ProblematicPathsPartial>(
      unsolicited, workers, [] { return ProblematicPathsPartial{}; });
  PathRatioTable table;
  for (const auto& path : ledger.paths()) {
    PathRatioCell& cell =
        table.cells[{path.protocol, dest_label_of(path)}][path.vp->country];
    ++cell.paths;
    if (problematic.paths.count(path.path_id) > 0) ++cell.problematic;
  }
  return table;
}

std::vector<std::string> top_shadowed_resolvers(const PathRatioTable& table,
                                                std::size_t count) {
  auto order = table.destinations_by_ratio(DecoyProtocol::kDns);
  if (order.size() > count) order.resize(count);
  return order;
}

// -- Table 2 ------------------------------------------------------------------

LocationDistribution observer_locations(const std::vector<ObserverFinding>& findings) {
  LocationDistribution out;
  std::map<DecoyProtocol, Counter<int>> counters;
  for (const auto& finding : findings) {
    counters[finding.protocol].add(finding.normalized_hop);
  }
  for (const auto& [protocol, counter] : counters) {
    out.located_paths[protocol] = static_cast<int>(counter.total());
    for (int hop = 1; hop <= 10; ++hop) {
      out.shares[protocol][hop] = counter.share(hop);
    }
  }
  return out;
}

// -- Table 3 ------------------------------------------------------------------

ObserverAsTable observer_ases(const std::vector<ObserverFinding>& findings,
                              const intel::GeoDatabase& geo) {
  ObserverAsTable out;
  std::map<DecoyProtocol, std::set<net::Ipv4Addr>> observers;
  std::set<net::Ipv4Addr> all;
  for (const auto& finding : findings) {
    if (!finding.observer_addr) continue;
    observers[finding.protocol].insert(*finding.observer_addr);
    all.insert(*finding.observer_addr);
  }
  out.total_observer_ips = static_cast<int>(all.size());
  for (net::Ipv4Addr addr : all) out.observer_countries.add(geo.country(addr));

  for (const auto& [protocol, addrs] : observers) {
    std::map<std::uint32_t, ObserverAsRow> by_as;
    for (net::Ipv4Addr addr : addrs) {
      auto entry = geo.lookup(addr);
      std::uint32_t asn = entry ? entry->asn : 0;
      ObserverAsRow& row = by_as[asn];
      row.asn = asn;
      if (entry) {
        row.as_name = entry->as_name;
        row.country = entry->country;
      }
      ++row.observer_ips;
    }
    std::vector<ObserverAsRow> rows;
    rows.reserve(by_as.size());
    for (auto& [asn, row] : by_as) {
      row.share = addrs.empty() ? 0.0
                                : static_cast<double>(row.observer_ips) /
                                      static_cast<double>(addrs.size());
      rows.push_back(std::move(row));
    }
    std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.observer_ips > b.observer_ips;
    });
    out.rows[protocol] = std::move(rows);
  }
  return out;
}

// -- Figures 4 & 7 --------------------------------------------------------------

namespace {

/// Partial: interval samples keyed by destination resolver. Merging in
/// ascending worker order concatenates samples in global scan order; the
/// Cdf sorts them on read, so the merge order is immaterial to output.
struct ResolverCdfPartial {
  const DecoyLedger& ledger;
  const std::set<std::string>& wanted;
  std::map<std::string, Cdf> cdfs;

  void add(const UnsolicitedRequest& request) {
    const PathRecord& path = ledger.path(request.path_id);
    if (path.protocol != DecoyProtocol::kDns) return;
    if (!wanted.empty() && wanted.count(path.dest_name) == 0) return;
    cdfs[path.dest_name].add(to_seconds(request.interval));
  }
  void absorb(ResolverCdfPartial&& other) {
    for (auto& [name, cdf] : other.cdfs) cdfs[name].merge(cdf);
  }
};

/// Partial: interval samples keyed by (non-DNS) decoy protocol.
struct ProtocolCdfPartial {
  std::map<DecoyProtocol, Cdf> cdfs;

  void add(const UnsolicitedRequest& request) {
    if (request.decoy_protocol == DecoyProtocol::kDns) return;
    cdfs[request.decoy_protocol].add(to_seconds(request.interval));
  }
  void absorb(ProtocolCdfPartial&& other) {
    for (auto& [protocol, cdf] : other.cdfs) cdfs[protocol].merge(cdf);
  }
};

}  // namespace

std::map<std::string, Cdf> interval_cdf_by_resolver(
    const DecoyLedger& ledger, const std::vector<UnsolicitedRequest>& unsolicited,
    const std::vector<std::string>& resolvers, int workers) {
  std::set<std::string> wanted(resolvers.begin(), resolvers.end());
  auto partial = scan_unsolicited<ResolverCdfPartial>(
      unsolicited, workers, [&] { return ResolverCdfPartial{ledger, wanted, {}}; });
  return std::move(partial.cdfs);
}

std::map<DecoyProtocol, Cdf> interval_cdf_by_protocol(
    const std::vector<UnsolicitedRequest>& unsolicited, int workers) {
  auto partial = scan_unsolicited<ProtocolCdfPartial>(
      unsolicited, workers, [] { return ProtocolCdfPartial{}; });
  return std::move(partial.cdfs);
}

// -- Figure 5 -----------------------------------------------------------------

std::string decoy_outcome_name(DecoyOutcome outcome) {
  switch (outcome) {
    case DecoyOutcome::kNoUnsolicited: return "none";
    case DecoyOutcome::kDnsWithinHour: return "DNS-DNS <1h";
    case DecoyOutcome::kDnsAfterHours: return "DNS-DNS >1h";
    case DecoyOutcome::kWebWithinDay: return "DNS-HTTP(S) <1d";
    case DecoyOutcome::kWebAfterDays: return "DNS-HTTP(S) >1d";
  }
  return "?";
}

namespace {

/// Partial: most-telling outcome per Phase-I DNS decoy seq. Per-seq maximum
/// is commutative, so sibling partials merge in any order.
struct OutcomePartial {
  const DecoyLedger& ledger;
  std::map<std::uint32_t, DecoyOutcome> outcome;  // by seq

  void add(const UnsolicitedRequest& request) {
    const DecoyRecord* record = ledger.by_seq(request.seq);
    if (record == nullptr || record->phase2 ||
        record->id.protocol != DecoyProtocol::kDns) {
      return;
    }
    DecoyOutcome candidate;
    if (request.request_protocol == RequestProtocol::kDns) {
      candidate = request.interval <= kHour ? DecoyOutcome::kDnsWithinHour
                                            : DecoyOutcome::kDnsAfterHours;
    } else {
      candidate = request.interval <= kDay ? DecoyOutcome::kWebWithinDay
                                           : DecoyOutcome::kWebAfterDays;
    }
    upgrade(request.seq, candidate);
  }
  void absorb(OutcomePartial&& other) {
    for (const auto& [seq, o] : other.outcome) upgrade(seq, o);
  }

 private:
  void upgrade(std::uint32_t seq, DecoyOutcome candidate) {
    auto [it, inserted] = outcome.emplace(seq, candidate);
    if (!inserted && static_cast<int>(candidate) > static_cast<int>(it->second)) {
      it->second = candidate;
    }
  }
};

}  // namespace

ComboBreakdown protocol_combos(const DecoyLedger& ledger,
                               const std::vector<UnsolicitedRequest>& unsolicited,
                               const std::vector<std::string>& vp_countries,
                               int workers) {
  std::set<std::string> wanted_countries(vp_countries.begin(), vp_countries.end());
  auto vp_selected = [&](const PathRecord& path) {
    return wanted_countries.empty() || wanted_countries.count(path.vp->country) > 0;
  };
  auto outcomes = scan_unsolicited<OutcomePartial>(
      unsolicited, workers, [&] { return OutcomePartial{ledger, {}}; });

  ComboBreakdown out;
  std::map<std::string, Counter<int>> counters;
  for (const auto& decoy : ledger.decoys()) {
    if (decoy.phase2 || decoy.id.protocol != DecoyProtocol::kDns) continue;
    const PathRecord& path = ledger.path(decoy.path_id);
    if (!vp_selected(path)) continue;
    auto it = outcomes.outcome.find(decoy.id.seq);
    DecoyOutcome o =
        it == outcomes.outcome.end() ? DecoyOutcome::kNoUnsolicited : it->second;
    counters[path.dest_name].add(static_cast<int>(o));
    ++out.decoys[path.dest_name];
  }
  for (const auto& [dest, counter] : counters) {
    for (int o = 0; o <= static_cast<int>(DecoyOutcome::kWebAfterDays); ++o) {
      out.shares[dest][static_cast<DecoyOutcome>(o)] = counter.share(o);
    }
  }
  return out;
}

// -- Figure 6 -----------------------------------------------------------------

namespace {

/// Partial: origin-AS counters plus the distinct-DNS-origin set. Counter
/// sums and set unions are commutative. GeoDatabase::lookup is a pure const
/// read, safe from concurrent workers.
struct OriginAsPartial {
  const DecoyLedger& ledger;
  const std::set<std::string>& wanted;
  const intel::GeoDatabase& geo;
  std::map<std::string, Counter<std::string>> per_resolver;
  std::set<net::Ipv4Addr> dns_origins;

  void add(const UnsolicitedRequest& request) {
    const PathRecord& path = ledger.path(request.path_id);
    if (path.protocol != DecoyProtocol::kDns) return;
    if (!wanted.empty() && wanted.count(path.dest_name) == 0) return;
    auto entry = geo.lookup(request.hit.origin);
    std::string label = entry ? "AS" + std::to_string(entry->asn) + " " + entry->as_name
                              : "unknown";
    per_resolver[path.dest_name].add(label);
    if (request.request_protocol == RequestProtocol::kDns) {
      dns_origins.insert(request.hit.origin);
    }
  }
  void absorb(OriginAsPartial&& other) {
    for (auto& [name, counter] : other.per_resolver) {
      per_resolver[name].absorb(counter);
    }
    dns_origins.merge(other.dns_origins);
  }
};

}  // namespace

OriginAsTable origin_ases(const DecoyLedger& ledger,
                          const std::vector<UnsolicitedRequest>& unsolicited,
                          const std::vector<std::string>& resolvers,
                          const intel::GeoDatabase& geo, const intel::Blocklist& blocklist,
                          int workers) {
  std::set<std::string> wanted(resolvers.begin(), resolvers.end());
  auto partial = scan_unsolicited<OriginAsPartial>(unsolicited, workers, [&] {
    return OriginAsPartial{ledger, wanted, geo, {}, {}};
  });
  OriginAsTable out;
  out.per_resolver = std::move(partial.per_resolver);
  out.distinct_dns_origins = static_cast<int>(partial.dns_origins.size());
  out.dns_origin_blocklisted = blocklist.hit_rate(std::vector<net::Ipv4Addr>(
      partial.dns_origins.begin(), partial.dns_origins.end()));
  return out;
}

// -- Section 5.1 ----------------------------------------------------------------

namespace {

/// Partial: per-seq late-DNS-request counts and the 10-day web-reuse flags.
/// Count sums and flag ORs are commutative.
struct RetentionPartial {
  const DecoyLedger& ledger;
  const std::string& long_retention_resolver;
  std::map<std::uint32_t, int> late_requests;   // seq -> DNS count after 1h
  std::map<std::uint32_t, bool> web_after_10d;  // seq (to the named resolver)

  void add(const UnsolicitedRequest& request) {
    const DecoyRecord* record = ledger.by_seq(request.seq);
    if (record == nullptr || record->phase2 ||
        record->id.protocol != DecoyProtocol::kDns) {
      return;
    }
    // §5.1's "> 3 requests after one hour" measures DNS-data *reuse* at the
    // resolver: only unsolicited DNS queries count. HTTP(S) probes of the
    // decoy name feed the separate web_after_10d metric below.
    if (request.request_protocol == RequestProtocol::kDns &&
        request.interval > kHour) {
      ++late_requests[request.seq];
    }
    const PathRecord& path = ledger.path(request.path_id);
    if (path.dest_name == long_retention_resolver && request.interval >= 10 * kDay &&
        request.request_protocol != RequestProtocol::kDns) {
      web_after_10d[request.seq] = true;
    }
  }
  void absorb(RetentionPartial&& other) {
    for (const auto& [seq, count] : other.late_requests) late_requests[seq] += count;
    for (const auto& [seq, flag] : other.web_after_10d) {
      if (flag) web_after_10d[seq] = true;
    }
  }
};

}  // namespace

RetentionStats retention_stats(const DecoyLedger& ledger,
                               const std::vector<UnsolicitedRequest>& unsolicited,
                               const std::vector<std::string>& resolvers,
                               const std::string& long_retention_resolver,
                               int workers) {
  std::set<std::string> wanted(resolvers.begin(), resolvers.end());
  auto partial = scan_unsolicited<RetentionPartial>(unsolicited, workers, [&] {
    return RetentionPartial{ledger, long_retention_resolver, {}, {}};
  });

  RetentionStats stats;
  int total = 0;
  int over3 = 0;
  int over10 = 0;
  int named_total = 0;
  int named_10d = 0;
  for (const auto& decoy : ledger.decoys()) {
    if (decoy.phase2 || decoy.id.protocol != DecoyProtocol::kDns) continue;
    const PathRecord& decoy_path = ledger.path(decoy.path_id);
    if (!wanted.empty() && wanted.count(decoy_path.dest_name) == 0) continue;
    ++total;
    auto it = partial.late_requests.find(decoy.id.seq);
    int count = it == partial.late_requests.end() ? 0 : it->second;
    if (count > 3) ++over3;
    if (count > 10) ++over10;
    if (decoy_path.dest_name == long_retention_resolver) {
      ++named_total;
      if (partial.web_after_10d.count(decoy.id.seq) > 0) ++named_10d;
    }
  }
  stats.considered_decoys = total;
  if (total > 0) {
    stats.over3_after_1h = static_cast<double>(over3) / total;
    stats.over10_after_1h = static_cast<double>(over10) / total;
  }
  if (named_total > 0) {
    stats.web_after_10d = static_cast<double>(named_10d) / named_total;
  }
  return stats;
}

// -- Section 5 payloads & reputation ---------------------------------------------

namespace {

/// Partial: payload-class counter, exploit flag, and per-(decoy class,
/// request protocol) origin sets. SignatureDb::classify_target is a pure
/// const read, safe from concurrent workers.
struct IncentivePartial {
  const intel::SignatureDb& signatures;
  Counter<int> payloads;
  bool exploits_found = false;
  std::map<std::pair<bool, RequestProtocol>, std::set<net::Ipv4Addr>> origins;

  void add(const UnsolicitedRequest& request) {
    bool dns_decoy = request.decoy_protocol == DecoyProtocol::kDns;
    if (request.request_protocol == RequestProtocol::kHttp) {
      intel::PayloadClass cls = signatures.classify_target(request.hit.http_target);
      payloads.add(static_cast<int>(cls));
      if (cls == intel::PayloadClass::kExploitAttempt) exploits_found = true;
    }
    if (request.request_protocol != RequestProtocol::kDns) {
      origins[{dns_decoy, request.request_protocol}].insert(request.hit.origin);
    }
  }
  void absorb(IncentivePartial&& other) {
    payloads.absorb(other.payloads);
    exploits_found = exploits_found || other.exploits_found;
    for (auto& [key, addrs] : other.origins) origins[key].merge(addrs);
  }
};

}  // namespace

IncentiveStats incentive_stats(const std::vector<UnsolicitedRequest>& unsolicited,
                               const intel::SignatureDb& signatures,
                               const intel::Blocklist& blocklist, int workers) {
  auto partial = scan_unsolicited<IncentivePartial>(
      unsolicited, workers, [&] { return IncentivePartial{signatures}; });

  IncentiveStats stats;
  stats.exploits_found = partial.exploits_found;
  stats.http_requests = static_cast<int>(partial.payloads.total());
  for (int c = 0; c <= static_cast<int>(intel::PayloadClass::kOther); ++c) {
    stats.payload_shares[static_cast<intel::PayloadClass>(c)] =
        partial.payloads.share(c);
  }
  auto rate = [&](bool dns_decoy, RequestProtocol protocol) {
    auto it = partial.origins.find({dns_decoy, protocol});
    if (it == partial.origins.end()) return 0.0;
    return blocklist.hit_rate(
        std::vector<net::Ipv4Addr>(it->second.begin(), it->second.end()));
  };
  stats.dns_decoy_http_origin_blocklisted = rate(true, RequestProtocol::kHttp);
  stats.dns_decoy_https_origin_blocklisted = rate(true, RequestProtocol::kHttps);
  stats.web_decoy_http_origin_blocklisted = rate(false, RequestProtocol::kHttp);
  stats.web_decoy_https_origin_blocklisted = rate(false, RequestProtocol::kHttps);
  return stats;
}

// -- Full-campaign analysis bundle ----------------------------------------------

CampaignAnalysis analyze_campaign(Testbed& bed, const CampaignResult& result,
                                  int workers) {
  CampaignAnalysis analysis;
  analysis.ratios = path_ratios(result.ledger, result.unsolicited, workers);
  analysis.resolver_h = top_shadowed_resolvers(analysis.ratios, 5);
  analysis.locations = observer_locations(result.findings);
  analysis.ases = observer_ases(result.findings, bed.topology().geo());
  analysis.dns_cdfs = interval_cdf_by_resolver(result.ledger, result.unsolicited,
                                               analysis.resolver_h, workers);
  analysis.web_cdfs = interval_cdf_by_protocol(result.unsolicited, workers);
  analysis.combos = protocol_combos(result.ledger, result.unsolicited, {}, workers);
  analysis.retention = retention_stats(
      result.ledger, result.unsolicited, analysis.resolver_h,
      analysis.resolver_h.empty() ? "Yandex" : analysis.resolver_h.front(), workers);
  analysis.incentives =
      incentive_stats(result.unsolicited, bed.signatures(), bed.blocklist(), workers);
  return analysis;
}

}  // namespace shadowprobe::core
