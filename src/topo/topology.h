// Synthetic Internet topology builder.
//
// Builds, inside a sim::Network, the hierarchical structure the measurement
// runs over:
//
//   VP host -> access router -> AS border [-> province aggregation (CN)]
//           -> national gateway -> regional core(s) -> national gateway
//           -> AS border -> access router -> destination host
//
// National gateways belong to each country's backbone AS (CHINANET-BACKBONE
// for CN), so ICMP Time-Exceeded from a gateway geolocates to the backbone
// AS — which is how the paper's Table 3 attributes on-wire observers.
//
// The builder also produces the measurement platform's inventory: vantage
// points (with the screened-out TTL-resetting / residential providers the
// Appendix-E filters must reject), the Table-4 DNS destinations at their
// real addresses (114DNS with separate CN/US anycast instances), a
// Tranco-style web farm, honeypots in US/DE/SG, and a GeoDatabase over the
// whole address plan.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "intel/geoip.h"
#include "net/ipv4.h"
#include "sim/network.h"
#include "topo/data.h"

namespace shadowprobe::topo {

struct TopologyConfig {
  std::uint64_t seed = 20240301;

  /// Vantage points recruited onto each platform half (paper: 2,179 global /
  /// 2,185 CN). Scaled down by default so the full campaign runs in seconds.
  int global_vps = 96;
  int cn_vps = 96;
  /// Web destinations behind Tranco-style top sites (paper: 2,325 in 234
  /// ASes).
  int web_sites = 48;
  /// Extra unnamed hosting/ISP ASes generated per country for path variety.
  int filler_ases_per_country = 1;

  /// Multiplies the three size knobs above (honors SHADOWPROBE_SCALE).
  void apply_scale(double factor);
  /// Reads SHADOWPROBE_SCALE / SHADOWPROBE_SEED from the environment.
  static TopologyConfig from_env();
};

/// One autonomous system: prefix, routers, address allocation cursor.
struct AsRecord {
  std::uint32_t asn = 0;
  std::string name;
  std::string country;
  std::string subdivision;  // CN province for provincial ISP ASes
  intel::PrefixType type = intel::PrefixType::kUnknown;
  net::Prefix prefix;
  sim::NodeId border = sim::kInvalidNode;
  sim::NodeId access = sim::kInvalidNode;
  std::uint32_t next_host = 16;  // low offsets reserved for routers
};

struct VantagePoint {
  std::string id;        // "PureVPN-0017"
  std::string provider;
  bool cn_platform = false;
  std::string country;
  std::string province;  // CN platform only
  std::uint32_t asn = 0;
  net::Ipv4Addr addr;
  sim::NodeId node = sim::kInvalidNode;
  bool resets_ttl = false;   // provider mangles outgoing TTL (screened)
  bool residential = false;  // user-hosted provider (screened)
};

struct WebSite {
  std::string domain;  // "www.top0001-site.com"
  int rank = 0;        // Tranco-style rank, 1-based
  net::Ipv4Addr addr;
  sim::NodeId node = sim::kInvalidNode;
  std::uint32_t asn = 0;
  std::string country;
};

struct DnsTargetHost {
  DnsTargetInfo info;
  net::Ipv4Addr addr;
  /// Primary instance node; anycast services list every instance (the
  /// routing tables decide which instance a client reaches).
  sim::NodeId node = sim::kInvalidNode;
  std::vector<std::pair<std::string, sim::NodeId>> anycast_instances;  // (country, node)
  std::uint32_t asn = 0;
};

struct Honeypot {
  std::string location;  // "US" / "DE" / "SG"
  net::Ipv4Addr addr;
  sim::NodeId node = sim::kInvalidNode;
  std::uint32_t asn = 0;
};

class Topology {
 public:
  /// Builds the full topology into `net`. All hosts are created with null
  /// handlers; application layers (resolvers, honeypots, VP clients, web
  /// servers) attach afterwards via Network::set_handler.
  static Topology build(sim::Network& net, const TopologyConfig& config);

  [[nodiscard]] const TopologyConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<VantagePoint>& vantage_points() const noexcept {
    return vps_;
  }
  [[nodiscard]] const std::vector<WebSite>& web_sites() const noexcept { return sites_; }
  [[nodiscard]] const std::vector<DnsTargetHost>& dns_target_hosts() const noexcept {
    return dns_hosts_;
  }
  [[nodiscard]] const std::vector<Honeypot>& honeypots() const noexcept { return honeypots_; }
  [[nodiscard]] const intel::GeoDatabase& geo() const noexcept { return geo_; }
  [[nodiscard]] const std::vector<AsRecord>& ases() const noexcept { return ases_; }

  [[nodiscard]] const AsRecord* as_by_number(std::uint32_t asn) const;
  [[nodiscard]] const DnsTargetHost* dns_target(const std::string& name) const;
  /// National gateway router of `country`; kInvalidNode when absent.
  [[nodiscard]] sim::NodeId national_gateway(const std::string& country) const;
  /// Regional core router for region code ("NA", "EU", ...).
  [[nodiscard]] sim::NodeId regional_core(const std::string& region) const;
  /// CN province aggregation router (the extra CN hop); kInvalidNode if the
  /// province was not instantiated.
  [[nodiscard]] sim::NodeId province_aggregation(const std::string& province) const;

  /// Allocates one more host address inside AS `asn` and creates a host
  /// node wired to the AS access router (used by shadow prober fleets).
  sim::NodeId add_host_in_as(sim::Network& net, std::uint32_t asn, const std::string& name,
                             sim::DatagramHandler* handler = nullptr);
  /// Address the next add_host_in_as call in `asn` would receive.
  [[nodiscard]] net::Ipv4Addr peek_host_addr(std::uint32_t asn) const;

 private:
  friend class TopologyBuilder;

  TopologyConfig config_;
  std::vector<VantagePoint> vps_;
  std::vector<WebSite> sites_;
  std::vector<DnsTargetHost> dns_hosts_;
  std::vector<Honeypot> honeypots_;
  std::vector<AsRecord> ases_;
  std::map<std::uint32_t, std::size_t> as_index_;
  std::map<std::string, sim::NodeId> national_gateways_;
  std::map<std::string, sim::NodeId> regional_cores_;
  std::map<std::string, sim::NodeId> province_aggs_;
  intel::GeoDatabase geo_;
};

}  // namespace shadowprobe::topo
