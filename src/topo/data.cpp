#include "topo/data.h"

namespace shadowprobe::topo {

const std::vector<CountryInfo>& countries() {
  // vp_weight: where commercial datacenter VPN exits concentrate (US/EU
  // heavy). web_weight: where Tranco-top-1K server addresses concentrate.
  static const std::vector<CountryInfo> kCountries = {
      {"US", "United States", "NA", 0.18, 0.34},
      {"DE", "Germany", "EU", 0.07, 0.06},
      {"GB", "United Kingdom", "EU", 0.06, 0.04},
      {"NL", "Netherlands", "EU", 0.06, 0.05},
      {"FR", "France", "EU", 0.05, 0.03},
      {"CA", "Canada", "NA", 0.04, 0.03},
      {"SG", "Singapore", "AS", 0.04, 0.03},
      {"JP", "Japan", "AS", 0.04, 0.04},
      {"HK", "Hong Kong", "AS", 0.03, 0.02},
      {"AU", "Australia", "OC", 0.03, 0.02},
      {"SE", "Sweden", "EU", 0.03, 0.01},
      {"CH", "Switzerland", "EU", 0.02, 0.01},
      {"PL", "Poland", "EU", 0.02, 0.01},
      {"ES", "Spain", "EU", 0.02, 0.01},
      {"IT", "Italy", "EU", 0.02, 0.01},
      {"RO", "Romania", "EU", 0.02, 0.01},
      {"RU", "Russia", "EU", 0.03, 0.02},
      {"BR", "Brazil", "SA", 0.03, 0.02},
      {"IN", "India", "AS", 0.03, 0.02},
      {"KR", "South Korea", "AS", 0.02, 0.02},
      {"TW", "Taiwan", "AS", 0.02, 0.01},
      {"ZA", "South Africa", "AF", 0.02, 0.01},
      {"MX", "Mexico", "NA", 0.02, 0.01},
      {"AR", "Argentina", "SA", 0.01, 0.01},
      {"CL", "Chile", "SA", 0.01, 0.01},
      {"TR", "Turkey", "EU", 0.01, 0.01},
      {"UA", "Ukraine", "EU", 0.01, 0.01},
      {"CZ", "Czechia", "EU", 0.01, 0.01},
      {"AT", "Austria", "EU", 0.01, 0.01},
      {"NO", "Norway", "EU", 0.01, 0.01},
      {"FI", "Finland", "EU", 0.01, 0.01},
      {"DK", "Denmark", "EU", 0.01, 0.01},
      {"IE", "Ireland", "EU", 0.01, 0.02},
      {"AD", "Andorra", "EU", 0.01, 0.01},
      {"VN", "Vietnam", "AS", 0.01, 0.01},
      {"TH", "Thailand", "AS", 0.01, 0.01},
      {"MY", "Malaysia", "AS", 0.01, 0.01},
      {"ID", "Indonesia", "AS", 0.01, 0.01},
      {"NG", "Nigeria", "AF", 0.01, 0.01},
      {"EG", "Egypt", "AF", 0.01, 0.01},
      // CN carries no global-platform weight: global commercial VPNs lack
      // mainland exits, which is exactly why the paper built the CN
      // platform separately.
      {"CN", "China", "AS", 0.00, 0.05},
  };
  return kCountries;
}

const std::vector<std::string>& cn_provinces() {
  static const std::vector<std::string> kProvinces = {
      "Beijing",   "Shanghai",  "Jiangsu",  "Guangdong", "Zhejiang", "Shandong",
      "Sichuan",   "Hubei",     "Henan",    "Hebei",     "Hunan",    "Fujian",
      "Anhui",     "Liaoning",  "Shaanxi",  "Chongqing", "Jiangxi",  "Yunnan",
      "Guangxi",   "Shanxi",    "Tianjin",  "Guizhou",   "Jilin",    "Heilongjiang",
      "Xinjiang",  "Gansu",     "Hainan",   "Ningxia",   "Qinghai",  "Inner Mongolia",
  };
  return kProvinces;
}

const std::vector<VpnProviderInfo>& vpn_providers() {
  static const std::vector<VpnProviderInfo> kProviders = {
      // Global platform (paper Table 5).
      {"Anonine", "https://anonine.com/", false, false, false},
      {"AzireVPN", "https://www.azirevpn.com/", false, false, false},
      {"Cryptostorm", "https://cryptostorm.is/", false, false, false},
      {"HideMe", "https://hide.me/", false, false, false},
      {"PrivateInt", "https://www.privateinternetaccess.com/", false, false, false},
      {"PureVPN", "https://www.purevpn.com/", false, false, false},
      // China platform (paper Table 5).
      {"QiXun", "https://www.ipkuip.com/product/Buy?id=3", true, false, false},
      {"XunYou", "https://www.ipkuip.com/product/Buy?id=6", true, false, false},
      {"YOYO", "https://www.ipkuip.com/product/Buy?id=51", true, false, false},
      {"BeiKe", "https://www.ipkuip.com/product/Buy?id=44", true, false, false},
      {"SunYunD", "https://www.ipkuip.com/product/Buy?id=92", true, false, false},
      {"HuoJian", "https://www.ipkuip.com/product/Buy?id=128", true, false, false},
      {"DuoDuo", "https://www.ipkuip.com/product/Buy?id=116", true, false, false},
      {"MoGu", "https://www.juip.com/product/Buy?id=1032", true, false, false},
      {"QiangZi", "https://www.juip.com/product/Buy", true, false, false},
      {"XunLian", "https://www.juip.com/product/Buy", true, false, false},
      {"TianTian", "https://www.juip.com/product/Buy?id=71", true, false, false},
      {"JiKe", "https://www.juip.com/product/Buy", true, false, false},
      {"XiGua", "https://www.juip.com/product/Buy", true, false, false},
      // Screened-out providers: they exist so the Appendix-E filters are
      // exercised, and never contribute vantage points to experiments.
      {"TtlMangler", "https://example-rejected.test/", false, true, false},
      {"HomeNodes", "https://example-rejected.test/", false, false, true},
      {"ShenQi", "https://example-rejected.test/", true, true, false},
  };
  return kProviders;
}

const std::vector<DnsTargetInfo>& dns_targets() {
  static const std::vector<DnsTargetInfo> kTargets = {
      // 20 public resolvers (paper Table 4, primary addresses).
      {"Cloudflare", DnsTargetKind::kPublicResolver, "1.1.1.1", "US"},
      {"CNNIC", DnsTargetKind::kPublicResolver, "1.2.4.8", "CN"},
      {"DNS PAI", DnsTargetKind::kPublicResolver, "101.226.4.6", "CN"},
      {"DNSPod", DnsTargetKind::kPublicResolver, "119.29.29.29", "CN"},
      {"DNS.Watch", DnsTargetKind::kPublicResolver, "84.200.69.80", "DE"},
      {"Oracle Dyn", DnsTargetKind::kPublicResolver, "216.146.35.35", "US"},
      {"Google", DnsTargetKind::kPublicResolver, "8.8.8.8", "US"},
      {"Hurricane", DnsTargetKind::kPublicResolver, "74.82.42.42", "US"},
      {"Level3", DnsTargetKind::kPublicResolver, "209.244.0.3", "US"},
      {"VERCARA", DnsTargetKind::kPublicResolver, "156.154.70.1", "US"},
      {"One DNS", DnsTargetKind::kPublicResolver, "117.50.10.10", "CN"},
      {"OpenDNS", DnsTargetKind::kPublicResolver, "208.67.222.222", "US"},
      {"Open NIC", DnsTargetKind::kPublicResolver, "217.160.166.161", "DE"},
      {"Quad9", DnsTargetKind::kPublicResolver, "9.9.9.9", "CH"},
      {"Yandex", DnsTargetKind::kPublicResolver, "77.88.8.8", "RU"},
      {"SafeDNS", DnsTargetKind::kPublicResolver, "195.46.39.39", "RU"},
      {"Freenom", DnsTargetKind::kPublicResolver, "80.80.80.80", "NL"},
      {"Baidu", DnsTargetKind::kPublicResolver, "180.76.76.76", "CN"},
      {"114DNS", DnsTargetKind::kPublicResolver, "114.114.114.114", "CN"},
      {"Quad101", DnsTargetKind::kPublicResolver, "101.101.101.101", "TW"},
      // Self-built control resolver (address assigned by the builder).
      {"self-built", DnsTargetKind::kSelfBuilt, "", "US"},
      // 13 root servers.
      {"a.root", DnsTargetKind::kRoot, "198.41.0.4", "US"},
      {"b.root", DnsTargetKind::kRoot, "170.247.170.2", "US"},
      {"c.root", DnsTargetKind::kRoot, "192.33.4.12", "US"},
      {"d.root", DnsTargetKind::kRoot, "199.7.91.13", "US"},
      {"e.root", DnsTargetKind::kRoot, "192.203.230.10", "US"},
      {"f.root", DnsTargetKind::kRoot, "192.5.5.241", "US"},
      {"g.root", DnsTargetKind::kRoot, "192.112.36.4", "US"},
      {"h.root", DnsTargetKind::kRoot, "198.97.190.53", "US"},
      {"i.root", DnsTargetKind::kRoot, "192.36.148.17", "SE"},
      {"j.root", DnsTargetKind::kRoot, "192.58.128.30", "US"},
      {"k.root", DnsTargetKind::kRoot, "193.0.14.129", "NL"},
      {"l.root", DnsTargetKind::kRoot, "199.7.83.42", "US"},
      {"m.root", DnsTargetKind::kRoot, "202.12.27.33", "JP"},
      // 2 TLD authoritative servers.
      {".com", DnsTargetKind::kTld, "192.12.94.30", "US"},
      {".org", DnsTargetKind::kTld, "199.19.57.1", "US"},
  };
  return kTargets;
}

const std::vector<AsSeedInfo>& seed_ases() {
  static const std::vector<AsSeedInfo> kSeeds = {
      // Observer ASes named by paper Table 3.
      {4134, "CHINANET-BACKBONE", "CN", intel::PrefixType::kIsp},
      {58563, "CHINANET Hubei province network", "CN", intel::PrefixType::kIsp},
      {137697, "CHINATELECOM JiangSu", "CN", intel::PrefixType::kIsp},
      {4812, "China Telecom (Group)", "CN", intel::PrefixType::kIsp},
      {23650, "CHINANET jiangsu backbone", "CN", intel::PrefixType::kIsp},
      {4808, "China Unicom Beijing Province Network", "CN", intel::PrefixType::kIsp},
      {140292, "CHINATELECOM Jiangsu", "CN", intel::PrefixType::kIsp},
      {203020, "HostRoyale Technologies Pvt Ltd", "GB", intel::PrefixType::kHosting},
      {21859, "Zenlayer Inc", "US", intel::PrefixType::kHosting},
      // Observer ASes named by Section 5.2.
      {40444, "Constant Contact", "US", intel::PrefixType::kHosting},
      {29988, "Rogers Communications", "CA", intel::PrefixType::kIsp},
      // Resolver / platform operators appearing among request origins.
      {15169, "Google LLC", "US", intel::PrefixType::kHosting},
      {13335, "Cloudflare Inc", "US", intel::PrefixType::kHosting},
      {36692, "Cisco OpenDNS", "US", intel::PrefixType::kHosting},
      {19281, "Quad9", "CH", intel::PrefixType::kHosting},
      {13238, "Yandex LLC", "RU", intel::PrefixType::kHosting},
      {23724, "CHINANET IDC Beijing", "CN", intel::PrefixType::kHosting},
      {45090, "Tencent Cloud (DNSPod)", "CN", intel::PrefixType::kHosting},
      {38365, "Baidu Netcom", "CN", intel::PrefixType::kHosting},
      {4837, "China Unicom Backbone", "CN", intel::PrefixType::kIsp},
      {9808, "China Mobile", "CN", intel::PrefixType::kIsp},
      // Large transit/eyeball networks for filler paths.
      {3356, "Level 3 Parent LLC", "US", intel::PrefixType::kIsp},
      {1299, "Arelion (Telia)", "SE", intel::PrefixType::kIsp},
      {174, "Cogent Communications", "US", intel::PrefixType::kIsp},
      {3257, "GTT Communications", "DE", intel::PrefixType::kIsp},
      {6939, "Hurricane Electric", "US", intel::PrefixType::kIsp},
      {9009, "M247 Europe", "RO", intel::PrefixType::kHosting},
      {16509, "Amazon.com", "US", intel::PrefixType::kHosting},
      {8075, "Microsoft Corporation", "US", intel::PrefixType::kHosting},
      {24940, "Hetzner Online", "DE", intel::PrefixType::kHosting},
      {16276, "OVH SAS", "FR", intel::PrefixType::kHosting},
      {14061, "DigitalOcean LLC", "US", intel::PrefixType::kHosting},
      {20473, "Vultr Holdings", "US", intel::PrefixType::kHosting},
      {51167, "Contabo GmbH", "DE", intel::PrefixType::kHosting},
      {12876, "Scaleway", "FR", intel::PrefixType::kHosting},
      {63949, "Akamai (Linode)", "US", intel::PrefixType::kHosting},
  };
  return kSeeds;
}

}  // namespace shadowprobe::topo
