#include "topo/topology.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "common/strutil.h"

namespace shadowprobe::topo {

void TopologyConfig::apply_scale(double factor) {
  if (factor <= 0) return;
  auto scale = [factor](int v) { return std::max(1, static_cast<int>(v * factor)); };
  global_vps = scale(global_vps);
  cn_vps = scale(cn_vps);
  web_sites = scale(web_sites);
}

TopologyConfig TopologyConfig::from_env() {
  TopologyConfig config;
  if (const char* scale = std::getenv("SHADOWPROBE_SCALE")) {
    config.apply_scale(std::atof(scale));
  }
  if (const char* seed = std::getenv("SHADOWPROBE_SEED")) {
    config.seed = static_cast<std::uint64_t>(std::atoll(seed));
  }
  return config;
}

namespace {

/// Latency tiers of the hierarchy (one-way, per link).
constexpr SimDuration kHostLink = 1 * kMillisecond;
constexpr SimDuration kIntraAs = 2 * kMillisecond;
constexpr SimDuration kAsToGateway = 3 * kMillisecond;
constexpr SimDuration kGatewayToCore = 10 * kMillisecond;
constexpr SimDuration kCoreToCore = 40 * kMillisecond;

/// Region -> transit AS hosting that region's core router.
const std::vector<std::pair<std::string, std::uint32_t>>& region_transit() {
  static const std::vector<std::pair<std::string, std::uint32_t>> kMap = {
      {"NA", 3356}, {"EU", 1299}, {"AS", 6939}, {"SA", 174}, {"AF", 3257}, {"OC", 20473},
  };
  return kMap;
}

/// Resolver operator name -> real-world ASN (targets without an entry get a
/// generated operator AS).
std::uint32_t operator_asn(const std::string& target_name) {
  static const std::map<std::string, std::uint32_t> kOperators = {
      {"Google", 15169},  {"Cloudflare", 13335}, {"OpenDNS", 36692},
      {"Quad9", 19281},   {"Yandex", 13238},     {"DNSPod", 45090},
      {"Baidu", 38365},   {"Hurricane", 6939},   {"Level3", 3356},
  };
  auto it = kOperators.find(target_name);
  return it == kOperators.end() ? 0 : it->second;
}

/// Province assignments for seed CN ASes (provincial ISP networks).
std::string seed_as_province(std::uint32_t asn) {
  switch (asn) {
    case 58563: return "Hubei";
    case 137697: return "Jiangsu";
    case 23650: return "Jiangsu";
    case 140292: return "Jiangsu";
    case 4808: return "Beijing";
    case 4812: return "Shanghai";
    case 45090: return "Guangdong";
    case 38365: return "Beijing";
    case 23724: return "Beijing";
    default: return "";
  }
}

}  // namespace

class TopologyBuilder {
 public:
  TopologyBuilder(sim::Network& net, const TopologyConfig& config)
      : net_(net), topo_(), rng_(config.seed) {
    topo_.config_ = config;
    // AsRecord references are held across create_as calls inside the build
    // steps; reserving up front keeps them stable.
    topo_.ases_.reserve(4096);
  }

  Topology build() {
    reserve_target_space();
    create_seed_ases();
    create_country_infrastructure();
    create_cn_provinces();
    create_regional_cores();
    wire_gateways_and_cores();
    wire_all_ases();
    infrastructure_ready_ = true;
    create_dns_targets();
    create_web_farm();
    create_honeypots();
    recruit_vantage_points();
    return std::move(topo_);
  }

 private:
  // -- address plan ---------------------------------------------------------

  void reserve_target_space() {
    for (const auto& t : dns_targets()) {
      if (t.address.empty()) continue;
      auto addr = net::Ipv4Addr::must_parse(t.address);
      net::Prefix service(addr, 16);
      reserved_.insert(service.base());
      // Known operators must own the /16 their public service address lives
      // in, so that origin analysis attributes e.g. 8.8.8.8 to AS15169.
      std::uint32_t asn = operator_asn(t.name);
      if (asn != 0 && operator_prefix_.count(asn) == 0) operator_prefix_[asn] = service;
    }
  }

  net::Prefix allocate_slash16() {
    for (;;) {
      net::Ipv4Addr base(next16_);
      next16_ += 0x10000;
      if (next16_ >= net::Ipv4Addr(73, 0, 0, 0).value())
        throw std::runtime_error("address plan exhausted");
      if (reserved_.count(base) == 0) return net::Prefix(base, 16);
    }
  }

  std::uint32_t auto_asn() { return next_auto_asn_++; }

  // -- AS construction ------------------------------------------------------

  AsRecord& create_as(std::uint32_t asn, std::string name, std::string country,
                      intel::PrefixType type, std::optional<net::Prefix> prefix = {},
                      std::string subdivision = "") {
    if (topo_.as_index_.count(asn) > 0) return topo_.ases_[topo_.as_index_.at(asn)];
    AsRecord as;
    as.asn = asn;
    as.name = std::move(name);
    as.country = std::move(country);
    as.subdivision = std::move(subdivision);
    as.type = type;
    as.prefix = prefix ? *prefix : allocate_slash16();
    reserved_.insert(as.prefix.base());
    as.border = net_.add_router("border-AS" + std::to_string(asn), as.prefix.at(1));
    as.access = net_.add_router("access-AS" + std::to_string(asn), as.prefix.at(2));
    net_.set_link_latency(as.border, as.access, kIntraAs);
    net_.routes(as.access).set_default(as.border);
    net_.routes(as.border).add(as.prefix, as.access);
    topo_.geo_.add(as.prefix, intel::GeoEntry{as.country, as.subdivision, as.asn, as.name,
                                              as.type});
    topo_.as_index_[asn] = topo_.ases_.size();
    topo_.ases_.push_back(as);
    AsRecord& stored = topo_.ases_.back();
    if (infrastructure_ready_) wire_as(stored);
    return stored;
  }

  AsRecord& as_ref(std::uint32_t asn) { return topo_.ases_[topo_.as_index_.at(asn)]; }

  void create_seed_ases() {
    for (const auto& seed : seed_ases()) {
      std::optional<net::Prefix> prefix;
      auto it = operator_prefix_.find(seed.asn);
      if (it != operator_prefix_.end()) prefix = it->second;
      create_as(seed.asn, seed.name, seed.country, seed.type, prefix,
                seed_as_province(seed.asn));
    }
  }

  /// Picks (or creates) an AS in `country` of the wanted type (first match,
  /// deterministic — backbone selection relies on seed ordering).
  AsRecord& as_in_country(const std::string& country, intel::PrefixType type) {
    for (auto& as : topo_.ases_) {
      if (as.country == country && as.type == type && as.subdivision.empty()) return as;
    }
    std::string label = type == intel::PrefixType::kHosting ? "Hosting" : "Telecom";
    return create_as(auto_asn(), country + " " + label + " Network", country, type);
  }

  /// Uniformly random AS of the wanted type in `country` (creates one when
  /// the country has none) — spreads hosts across ASes for path variety.
  AsRecord& pick_as_in_country(Rng& rng, const std::string& country, intel::PrefixType type) {
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < topo_.ases_.size(); ++i) {
      const AsRecord& as = topo_.ases_[i];
      if (as.country == country && as.type == type && as.subdivision.empty())
        candidates.push_back(i);
    }
    if (candidates.empty()) return as_in_country(country, type);
    return topo_.ases_[rng.pick(candidates)];
  }

  // -- country / region infrastructure --------------------------------------

  void create_country_infrastructure() {
    for (const auto& country : countries()) {
      // Backbone AS: prefer an existing ISP seed in the country; CN always
      // resolves to AS4134 because it is the first CN ISP seed.
      AsRecord& backbone = as_in_country(country.code, intel::PrefixType::kIsp);
      backbone_asn_[country.code] = backbone.asn;
      // National gateway lives in the backbone AS's address space.
      net::Ipv4Addr gw_addr = backbone.prefix.at(backbone.next_host++);
      sim::NodeId gw = net_.add_router("natgw-" + country.code, gw_addr);
      topo_.national_gateways_[country.code] = gw;
      // Filler hosting ASes give datacenter VPNs somewhere to live.
      for (int i = 0; i < topo_.config_.filler_ases_per_country; ++i) {
        as_in_country(country.code, intel::PrefixType::kHosting);
      }
    }
  }

  void create_cn_provinces() {
    AsRecord& backbone = as_ref(backbone_asn_.at("CN"));
    sim::NodeId cn_gw = topo_.national_gateways_.at("CN");
    for (const auto& province : cn_provinces()) {
      // Provincial ISP AS (seeded for the provinces the paper names).
      AsRecord* prov_as = nullptr;
      for (auto& as : topo_.ases_) {
        if (as.country == "CN" && as.subdivision == province &&
            as.type == intel::PrefixType::kIsp) {
          prov_as = &as;
          break;
        }
      }
      if (prov_as == nullptr) {
        prov_as = &create_as(auto_asn(), "CHINANET " + province + " province network", "CN",
                             intel::PrefixType::kIsp, std::nullopt, province);
      }
      // Province aggregation router: a CHINANET-BACKBONE hop between the
      // provincial network and the national gateway (the extra depth of CN
      // paths, and the attachment point of many on-wire observers).
      net::Ipv4Addr agg_addr = backbone.prefix.at(backbone.next_host++);
      sim::NodeId agg = net_.add_router("cnagg-" + province, agg_addr);
      topo_.province_aggs_[province] = agg;
      net_.routes(agg).set_default(cn_gw);
      net_.set_link_latency(agg, cn_gw, kAsToGateway);
      // The aggregator's own address must be reachable (Section 5.2 probes
      // observer devices for open ports): host-route it from the gateway.
      net_.routes(cn_gw).add(net::Prefix(agg_addr, 32), agg);
    }
  }

  void create_regional_cores() {
    for (const auto& [region, asn] : region_transit()) {
      AsRecord& transit = as_ref(asn);
      net::Ipv4Addr addr = transit.prefix.at(transit.next_host++);
      sim::NodeId core = net_.add_router("core-" + region, addr);
      topo_.regional_cores_[region] = core;
    }
    // Full mesh between cores.
    for (const auto& [ra, ca] : topo_.regional_cores_) {
      for (const auto& [rb, cb] : topo_.regional_cores_) {
        if (ra < rb) net_.set_link_latency(ca, cb, kCoreToCore);
      }
    }
  }

  [[nodiscard]] std::string region_of(const std::string& country) const {
    for (const auto& c : countries()) {
      if (c.code == country) return c.region;
    }
    return "NA";
  }

  void wire_gateways_and_cores() {
    for (const auto& [country, gw] : topo_.national_gateways_) {
      sim::NodeId core = topo_.regional_cores_.at(region_of(country));
      net_.routes(gw).set_default(core);
      net_.set_link_latency(gw, core, kGatewayToCore);
    }
  }

  /// Wires one AS into the hierarchy: border <-> gateway (through the CN
  /// province aggregator where applicable) and core routes for its prefix.
  void wire_as(AsRecord& as) {
    std::string country =
        topo_.national_gateways_.count(as.country) > 0 ? as.country : "US";
    sim::NodeId gw = topo_.national_gateways_.at(country);
    sim::NodeId attach = gw;
    if (as.country == "CN" && !as.subdivision.empty()) {
      auto agg = topo_.province_aggs_.find(as.subdivision);
      if (agg != topo_.province_aggs_.end()) {
        attach = agg->second;
        net_.routes(gw).add(as.prefix, attach);
      }
    }
    net_.routes(as.border).set_default(attach);
    net_.routes(attach).add(as.prefix, as.border);
    net_.set_link_latency(as.border, attach, attach == gw ? kAsToGateway : kIntraAs);
    // Each core routes the prefix either down to the owning country's
    // gateway (same region) or across to the owning region's core.
    std::string region = region_of(country);
    sim::NodeId home_core = topo_.regional_cores_.at(region);
    for (const auto& [r, core] : topo_.regional_cores_) {
      net_.routes(core).add(as.prefix, r == region ? gw : home_core);
    }
  }

  void wire_all_ases() {
    for (auto& as : topo_.ases_) wire_as(as);
  }

  // -- hosts ----------------------------------------------------------------

  sim::NodeId attach_host(AsRecord& as, const std::string& name, net::Ipv4Addr addr) {
    sim::NodeId host = net_.add_host(name, addr, nullptr);
    net_.routes(host).set_default(as.access);
    net_.routes(as.access).add(net::Prefix(addr, 32), host);
    net_.set_link_latency(host, as.access, kHostLink);
    return host;
  }

  sim::NodeId attach_host_auto(AsRecord& as, const std::string& name) {
    return attach_host(as, name, as.prefix.at(as.next_host++));
  }

  void create_dns_targets() {
    for (const auto& info : dns_targets()) {
      DnsTargetHost host;
      host.info = info;
      if (info.address.empty()) {
        // Self-built control resolver: ordinary host in a US hosting AS.
        AsRecord& as = as_in_country("US", intel::PrefixType::kHosting);
        host.addr = as.prefix.at(as.next_host++);
        host.node = attach_host(as, "dns-" + info.name, host.addr);
        host.asn = as.asn;
        topo_.dns_hosts_.push_back(std::move(host));
        continue;
      }
      host.addr = net::Ipv4Addr::must_parse(info.address);
      net::Prefix service_prefix(host.addr, 16);
      std::uint32_t asn = operator_asn(info.name);
      AsRecord* as = nullptr;
      // Some targets share a /16 (e.g. d.root and l.root in 199.7.0.0/16);
      // the second one joins the AS that already owns the covering prefix.
      for (auto& existing : topo_.ases_) {
        if (existing.prefix.contains(host.addr)) {
          as = &existing;
          break;
        }
      }
      if (as != nullptr) {
        // fall through with the covering AS
      } else if (asn != 0 && topo_.as_index_.count(asn) > 0) {
        // Known operator: move the AS onto the service prefix if it was
        // seeded with a generated one and has no hosts yet.
        as = &as_ref(asn);
        if (!as->prefix.contains(host.addr)) {
          as = &create_as(auto_asn(), as->name + " (anycast edge)", info.country,
                          intel::PrefixType::kHosting, service_prefix);
        }
      } else {
        as = &create_as(asn != 0 ? asn : auto_asn(), info.name + " operations", info.country,
                        intel::PrefixType::kHosting, service_prefix);
      }
      host.asn = as->asn;
      host.node = attach_host(*as, "dns-" + info.name, host.addr);
      host.anycast_instances.emplace_back(info.country, host.node);
      topo_.dns_hosts_.push_back(std::move(host));
    }
    create_114dns_us_instance();
  }

  /// 114DNS case study II: the service is anycast with distinct CN and US
  /// instances. The US instance answers queries routed through non-AS
  /// regional cores; the CN instance serves CN (and AS-region) clients.
  void create_114dns_us_instance() {
    auto* target = const_cast<DnsTargetHost*>(topo_.dns_target("114DNS"));
    if (target == nullptr) return;
    AsRecord& us_as = as_ref(21859);  // Zenlayer hosts the US edge
    sim::NodeId instance = attach_host_auto(us_as, "dns-114DNS-us");
    net_.add_anycast_address(instance, target->addr);
    target->anycast_instances.emplace_back("US", instance);
    // Route the service /16 to the US instance from every regional core.
    // CN clients still reach the CN instance because the CN national
    // gateway holds a direct route to the operator AS (their queries never
    // climb to a core) — exactly the paper's "CN instances serve CN
    // clients" split.
    net::Prefix service(target->addr, 16);
    sim::NodeId us_gw = topo_.national_gateways_.at("US");
    for (const auto& [region, core] : topo_.regional_cores_) {
      net_.routes(core).add(service, region == "NA" ? us_gw
                                                    : topo_.regional_cores_.at("NA"));
    }
    net_.routes(us_gw).add(service, us_as.border);
    net_.routes(us_as.border).add(service, us_as.access);
    net_.routes(us_as.access).add(net::Prefix(target->addr, 32), instance);
  }

  void add_web_site(int rank, AsRecord& as) {
    WebSite site;
    site.rank = rank;
    site.domain = strprintf("www.top%04d-site.com", rank);
    site.addr = as.prefix.at(as.next_host++);
    site.node = attach_host(as, site.domain, site.addr);
    site.asn = as.asn;
    site.country = as.country;
    topo_.sites_.push_back(std::move(site));
  }

  void create_web_farm() {
    Rng rng = rng_.fork("web-farm");
    int rank = 1;
    // Guarantee coverage of the destination networks the paper's findings
    // hinge on: observer ASes hosting top sites (Constant Contact, Rogers,
    // Chinanet) and the small destination countries of Figure 3 (AD).
    for (std::uint32_t asn : {40444U, 29988U, 4134U}) add_web_site(rank++, as_ref(asn));
    add_web_site(rank++, as_in_country("AD", intel::PrefixType::kHosting));
    std::vector<double> weights;
    for (const auto& c : countries()) weights.push_back(c.web_weight);
    for (; rank <= topo_.config_.web_sites; ++rank) {
      const CountryInfo& country = countries()[rng.weighted(weights)];
      // Top sites live in both clouds (hosting) and large eyeball ISPs.
      intel::PrefixType type = rng.chance(0.8) ? intel::PrefixType::kHosting
                                               : intel::PrefixType::kIsp;
      AsRecord& as = pick_as_in_country(rng, country.code, type);
      add_web_site(rank, as);
    }
  }

  void create_honeypots() {
    for (const char* location : {"US", "DE", "SG"}) {
      AsRecord& as = as_in_country(location, intel::PrefixType::kHosting);
      Honeypot pot;
      pot.location = location;
      pot.addr = as.prefix.at(as.next_host++);
      pot.node = attach_host(as, std::string("honeypot-") + location, pot.addr);
      pot.asn = as.asn;
      topo_.honeypots_.push_back(std::move(pot));
    }
  }

  void recruit_vantage_points() {
    Rng rng = rng_.fork("vps");
    std::vector<const VpnProviderInfo*> global_providers;
    std::vector<const VpnProviderInfo*> cn_providers;
    for (const auto& p : vpn_providers()) {
      (p.cn_platform ? cn_providers : global_providers).push_back(&p);
    }
    std::vector<double> weights;
    for (const auto& c : countries()) weights.push_back(c.vp_weight);

    for (int i = 0; i < topo_.config_.global_vps; ++i) {
      const VpnProviderInfo* provider = global_providers[i % global_providers.size()];
      // Screened-out providers contribute only a thin slice of candidate
      // nodes (they are rejected later, in platform screening).
      if ((provider->resets_ttl || provider->residential) && !rng.chance(0.25)) {
        provider = global_providers[rng.below(6)];  // the 6 accepted ones lead the list
      }
      const CountryInfo& country = countries()[rng.weighted(weights)];
      AsRecord& as = pick_as_in_country(rng, country.code, intel::PrefixType::kHosting);
      VantagePoint vp;
      vp.id = strprintf("%s-%04d", provider->name.c_str(), i);
      vp.provider = provider->name;
      vp.cn_platform = false;
      vp.country = country.code;
      vp.asn = as.asn;
      vp.addr = as.prefix.at(as.next_host++);
      vp.node = attach_host(as, "vp-" + vp.id, vp.addr);
      vp.resets_ttl = provider->resets_ttl;
      vp.residential = provider->residential;
      topo_.vps_.push_back(std::move(vp));
    }

    const auto& provinces = cn_provinces();
    for (int i = 0; i < topo_.config_.cn_vps; ++i) {
      const VpnProviderInfo* provider = cn_providers[i % cn_providers.size()];
      if (provider->resets_ttl && !rng.chance(0.25)) {
        provider = cn_providers[rng.below(13)];
      }
      // First pass covers every province once (providers advertise broad
      // footprints); the remainder skews to populous provinces, Zipf-style.
      std::size_t pick;
      if (static_cast<std::size_t>(i) < provinces.size()) {
        pick = static_cast<std::size_t>(i);
      } else {
        pick = std::min<std::size_t>(static_cast<std::size_t>(rng.pareto(1.0, 1.2)) - 1,
                                     provinces.size() - 1);
      }
      const std::string& province = provinces[pick];
      AsRecord* as = nullptr;
      for (auto& candidate : topo_.ases_) {
        if (candidate.country == "CN" && candidate.subdivision == province &&
            candidate.type == intel::PrefixType::kIsp) {
          as = &candidate;
          break;
        }
      }
      VantagePoint vp;
      vp.id = strprintf("%s-%04d", provider->name.c_str(), i);
      vp.provider = provider->name;
      vp.cn_platform = true;
      vp.country = "CN";
      vp.province = province;
      vp.asn = as->asn;
      vp.addr = as->prefix.at(as->next_host++);
      vp.node = attach_host(*as, "vp-" + vp.id, vp.addr);
      vp.resets_ttl = provider->resets_ttl;
      vp.residential = provider->residential;
      topo_.vps_.push_back(std::move(vp));
    }
  }

  sim::Network& net_;
  Topology topo_;
  Rng rng_;
  std::set<net::Ipv4Addr> reserved_;
  std::uint32_t next16_ = net::Ipv4Addr(20, 0, 0, 0).value();
  std::uint32_t next_auto_asn_ = 64512;
  std::map<std::string, std::uint32_t> backbone_asn_;
  std::map<std::uint32_t, net::Prefix> operator_prefix_;
  bool infrastructure_ready_ = false;
};

Topology Topology::build(sim::Network& net, const TopologyConfig& config) {
  TopologyBuilder builder(net, config);
  return builder.build();
}

const AsRecord* Topology::as_by_number(std::uint32_t asn) const {
  auto it = as_index_.find(asn);
  return it == as_index_.end() ? nullptr : &ases_[it->second];
}

const DnsTargetHost* Topology::dns_target(const std::string& name) const {
  for (const auto& t : dns_hosts_) {
    if (t.info.name == name) return &t;
  }
  return nullptr;
}

sim::NodeId Topology::national_gateway(const std::string& country) const {
  auto it = national_gateways_.find(country);
  return it == national_gateways_.end() ? sim::kInvalidNode : it->second;
}

sim::NodeId Topology::regional_core(const std::string& region) const {
  auto it = regional_cores_.find(region);
  return it == regional_cores_.end() ? sim::kInvalidNode : it->second;
}

sim::NodeId Topology::province_aggregation(const std::string& province) const {
  auto it = province_aggs_.find(province);
  return it == province_aggs_.end() ? sim::kInvalidNode : it->second;
}

sim::NodeId Topology::add_host_in_as(sim::Network& net, std::uint32_t asn,
                                     const std::string& name, sim::DatagramHandler* handler) {
  auto it = as_index_.find(asn);
  if (it == as_index_.end()) throw std::invalid_argument("unknown AS " + std::to_string(asn));
  AsRecord& as = ases_[it->second];
  // Services claim extra addresses inside the AS prefix after the topology
  // was built (resolver egress = service+9, anycast instances); skip any
  // offset the network already knows about instead of colliding with it.
  net::Ipv4Addr addr = as.prefix.at(as.next_host++);
  while (net.owner_of(addr) != sim::kInvalidNode) addr = as.prefix.at(as.next_host++);
  sim::NodeId host = net.add_host(name, addr, handler);
  net.routes(host).set_default(as.access);
  net.routes(as.access).add(net::Prefix(addr, 32), host);
  net.set_link_latency(host, as.access, 1 * kMillisecond);
  return host;
}

net::Ipv4Addr Topology::peek_host_addr(std::uint32_t asn) const {
  auto it = as_index_.find(asn);
  if (it == as_index_.end()) throw std::invalid_argument("unknown AS " + std::to_string(asn));
  const AsRecord& as = ases_[it->second];
  return as.prefix.at(as.next_host);
}

}  // namespace shadowprobe::topo
