// UDP header codec (RFC 768).
//
// The simulator carries DNS decoys and honeypot responses over UDP. The
// checksum is computed over the standard pseudo-header so that captures are
// byte-faithful to what a real stack would emit.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"
#include "net/ipv4.h"

namespace shadowprobe::net {

struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Bytes payload;

  static constexpr std::size_t kHeaderSize = 8;

  /// Encodes header+payload; src/dst addresses are needed for the checksum
  /// pseudo-header.
  [[nodiscard]] Bytes encode(Ipv4Addr src, Ipv4Addr dst) const;

  static Result<UdpDatagram> decode(BytesView segment, Ipv4Addr src, Ipv4Addr dst);
};

}  // namespace shadowprobe::net
