#include "net/tcp.h"

namespace shadowprobe::net {

std::uint8_t TcpFlags::encode() const noexcept {
  std::uint8_t bits = 0;
  if (fin) bits |= 0x01;
  if (syn) bits |= 0x02;
  if (rst) bits |= 0x04;
  if (psh) bits |= 0x08;
  if (ack) bits |= 0x10;
  return bits;
}

TcpFlags TcpFlags::decode(std::uint8_t bits) noexcept {
  TcpFlags f;
  f.fin = bits & 0x01;
  f.syn = bits & 0x02;
  f.rst = bits & 0x04;
  f.psh = bits & 0x08;
  f.ack = bits & 0x10;
  return f;
}

std::string TcpFlags::str() const {
  std::string s;
  if (syn) s += "S";
  if (ack) s += "A";
  if (psh) s += "P";
  if (fin) s += "F";
  if (rst) s += "R";
  return s.empty() ? "-" : s;
}

namespace {

std::uint16_t tcp_checksum(Ipv4Addr src, Ipv4Addr dst, BytesView tcp_bytes) {
  ByteWriter pseudo(12 + tcp_bytes.size());
  pseudo.u32(src.value());
  pseudo.u32(dst.value());
  pseudo.u8(0);
  pseudo.u8(static_cast<std::uint8_t>(IpProto::kTcp));
  pseudo.u16(static_cast<std::uint16_t>(tcp_bytes.size()));
  pseudo.raw(tcp_bytes);
  return internet_checksum(pseudo.bytes());
}

}  // namespace

Bytes TcpSegment::encode(Ipv4Addr src, Ipv4Addr dst) const {
  ByteWriter w(kHeaderSize + payload.size());
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(5 << 4);  // data offset 5 words, no options
  w.u8(flags.encode());
  w.u16(window);
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  w.raw(payload);
  std::uint16_t csum = tcp_checksum(src, dst, w.bytes());
  Bytes out = std::move(w).take();
  out[16] = static_cast<std::uint8_t>(csum >> 8);
  out[17] = static_cast<std::uint8_t>(csum);
  return out;
}

Result<TcpSegment> TcpSegment::decode(BytesView segment, Ipv4Addr src, Ipv4Addr dst) {
  ByteReader r(segment);
  TcpSegment s;
  s.src_port = r.u16();
  s.dst_port = r.u16();
  s.seq = r.u32();
  s.ack = r.u32();
  std::uint8_t offset_words = r.u8() >> 4;
  s.flags = TcpFlags::decode(r.u8());
  s.window = r.u16();
  r.u16();  // checksum (verified over the raw bytes below)
  r.u16();  // urgent pointer
  if (!r.ok()) return Error("truncated TCP header");
  std::size_t header_len = static_cast<std::size_t>(offset_words) * 4;
  if (header_len < kHeaderSize || header_len > segment.size())
    return Error("TCP data offset inconsistent");
  if (tcp_checksum(src, dst, segment) != 0) return Error("TCP checksum mismatch");
  BytesView body = segment.subspan(header_len);
  s.payload.assign(body.begin(), body.end());
  return s;
}

}  // namespace shadowprobe::net
