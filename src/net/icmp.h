// ICMP codec (RFC 792) — Time Exceeded and Echo.
//
// ICMP Time-Exceeded messages are how Phase II reveals observer addresses:
// when a decoy's TTL expires at hop t, the router at hop t returns this
// message (quoting the expired datagram's IP header + 8 payload bytes), and
// its source address identifies the device at that hop.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"
#include "net/ipv4.h"

namespace shadowprobe::net {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

struct IcmpMessage {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  /// Echo: identifier/sequence packed big-endian. Time Exceeded: unused (0).
  std::uint32_t rest = 0;
  /// Echo: user data. Time Exceeded / Unreachable: the quoted original IP
  /// header plus at least the first 8 bytes of its payload.
  Bytes body;

  [[nodiscard]] Bytes encode() const;
  static Result<IcmpMessage> decode(BytesView message);

  /// Builds the RFC-792 Time Exceeded (TTL expired in transit) quoting the
  /// offending datagram.
  static IcmpMessage time_exceeded(BytesView original_datagram);

  /// Extracts the quoted original IPv4 header from a Time Exceeded /
  /// Destination Unreachable body.
  [[nodiscard]] Result<Ipv4Datagram> quoted_datagram() const;
};

}  // namespace shadowprobe::net
