// DNS message codec (RFC 1035), complete enough to run real resolvers:
// header flags, questions, resource records with typed RDATA (A, NS, CNAME,
// SOA, PTR, TXT), name compression on encode and pointer chasing (with loop
// guards) on decode.
//
// DNS decoys are the paper's most productive lure: the QNAME carries the
// decoy identifier in clear text and is the field on-path observers record.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "net/ipv4.h"

namespace shadowprobe::net {

/// A domain name as a sequence of labels (no trailing root label stored).
/// Comparison and matching are case-insensitive per RFC 1035 §2.3.3.
class DnsName {
 public:
  DnsName() = default;
  explicit DnsName(std::vector<std::string> labels);

  /// Parses presentation format ("www.example.com", trailing dot allowed).
  /// Enforces label (≤63) and name (≤253) length limits and non-empty
  /// labels; nullopt otherwise. The empty string parses to the root name.
  static std::optional<DnsName> parse(std::string_view text);
  static DnsName must_parse(std::string_view text);

  [[nodiscard]] const std::vector<std::string>& labels() const noexcept { return labels_; }
  [[nodiscard]] bool is_root() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const noexcept { return labels_.size(); }
  [[nodiscard]] std::string str() const;

  /// True when this name equals `zone` or is under it ("a.b.c" under "b.c").
  [[nodiscard]] bool is_subdomain_of(const DnsName& zone) const;
  /// Name with the first `n` labels removed.
  [[nodiscard]] DnsName parent(std::size_t n = 1) const;
  /// New name with `label` prepended.
  [[nodiscard]] DnsName child(std::string_view label) const;

  bool operator==(const DnsName& other) const;
  bool operator<(const DnsName& other) const;  // canonical (case-folded) order

 private:
  std::vector<std::string> labels_;
};

enum class DnsType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,  // EDNS0 pseudo-record (RFC 6891)
  kAny = 255,
};

std::string dns_type_name(DnsType t);

enum class DnsRcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct DnsQuestion {
  DnsName name;
  DnsType type = DnsType::kA;
  // Class is always IN for this library; encoded/decoded but not stored.

  bool operator==(const DnsQuestion&) const = default;
};

struct SoaData {
  DnsName mname;
  DnsName rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 3600;
  std::uint32_t retry = 600;
  std::uint32_t expire = 86400;
  std::uint32_t minimum = 300;

  bool operator==(const SoaData&) const = default;
};

/// Typed RDATA. Unknown types carry raw bytes.
using DnsRdata = std::variant<Ipv4Addr,                 // A
                              DnsName,                  // NS / CNAME / PTR
                              SoaData,                  // SOA
                              std::vector<std::string>, // TXT
                              Bytes>;                   // anything else

struct DnsRecord {
  DnsName name;
  DnsType type = DnsType::kA;
  std::uint32_t ttl = 3600;
  DnsRdata rdata = Bytes{};
  /// Wire CLASS. IN (1) for ordinary records; the OPT pseudo-record abuses
  /// it for the UDP payload size, which is why it is kept around.
  std::uint16_t opt_class = 1;

  static DnsRecord a(DnsName name, Ipv4Addr addr, std::uint32_t ttl = 3600);
  static DnsRecord ns(DnsName name, DnsName target, std::uint32_t ttl = 3600);
  static DnsRecord cname(DnsName name, DnsName target, std::uint32_t ttl = 3600);
  static DnsRecord txt(DnsName name, std::vector<std::string> strings,
                       std::uint32_t ttl = 3600);
  static DnsRecord soa(DnsName name, SoaData data, std::uint32_t ttl = 3600);
};

/// EDNS0 (RFC 6891): the OPT pseudo-record's fixed fields, surfaced as a
/// message-level attribute rather than a record (matching how software
/// treats it). Encoding appends the OPT RR to the additional section;
/// decoding strips it back out into this struct.
struct EdnsInfo {
  std::uint16_t udp_payload_size = 1232;  // the DNS-flag-day recommendation
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  bool dnssec_ok = false;

  bool operator==(const EdnsInfo&) const = default;
};

struct DnsHeader {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  std::uint8_t opcode = 0;
  bool aa = false;
  bool tc = false;
  bool rd = true;
  bool ra = false;
  DnsRcode rcode = DnsRcode::kNoError;
};

struct DnsMessage {
  DnsHeader header;
  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;
  std::vector<DnsRecord> authorities;
  std::vector<DnsRecord> additionals;
  /// EDNS0 OPT pseudo-record, when present.
  std::optional<EdnsInfo> edns;

  [[nodiscard]] Bytes encode() const;
  static Result<DnsMessage> decode(BytesView wire);

  /// Convenience factory: a standard recursive query for (name, type).
  static DnsMessage query(std::uint16_t id, DnsName name, DnsType type);
  /// Convenience factory: a response skeleton echoing a query's id/question.
  static DnsMessage response_to(const DnsMessage& query, DnsRcode rcode);
};

}  // namespace shadowprobe::net
