// DNS message codec (RFC 1035), complete enough to run real resolvers:
// header flags, questions, resource records with typed RDATA (A, NS, CNAME,
// SOA, PTR, TXT), name compression on encode and pointer chasing (with loop
// guards) on decode.
//
// DNS decoys are the paper's most productive lure: the QNAME carries the
// decoy identifier in clear text and is the field on-path observers record.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "net/ipv4.h"

namespace shadowprobe::net {

namespace detail {

/// Global case-preserving DNS label intern table. Each distinct label
/// spelling is stored exactly once; a label id is a dense index into the
/// table. Every entry also records the id of its case-folded form, making
/// case-insensitive equality an integer compare and canonical ordering a
/// no-allocation string_view compare.
///
/// Thread-safety: interning takes a mutex (shard replicas run on worker
/// threads and share the table); entry lookup by id is lock-free (chunked
/// pointer index, entries are immutable once published).
///
/// DETERMINISM: label ids depend on interning order, which depends on
/// thread interleaving. Ids therefore must NEVER feed an output ordering or
/// be exported — all ordering goes through the folded text (operator<) and
/// all output through str()/label(). See DESIGN.md.
class LabelTable {
 public:
  struct Entry {
    std::string_view text;    ///< original spelling, arena-backed, immortal
    std::uint32_t fold_id;    ///< id of the lowercase form (self when already folded)
  };

  static LabelTable& instance();

  /// Returns the id for `label`, interning it (and its folded form) on
  /// first sight.
  std::uint32_t intern(std::string_view label);
  /// Lock-free entry lookup; `id` must come from intern().
  [[nodiscard]] const Entry& entry(std::uint32_t id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  LabelTable() = default;
  struct Impl;
  Impl* impl();  // lazily-built, never destroyed (ids outlive everything)
};

}  // namespace detail

/// A domain name as a sequence of labels (no trailing root label stored),
/// held as interned label ids: up to kInline labels live inline with zero
/// heap allocation. Comparison and matching are case-insensitive per
/// RFC 1035 §2.3.3 and never allocate.
class DnsName {
 public:
  DnsName() = default;
  explicit DnsName(const std::vector<std::string>& labels);

  DnsName(const DnsName& other) { assign(other.ids(), other.count_); }
  DnsName(DnsName&& other) noexcept { steal(other); }
  DnsName& operator=(const DnsName& other) {
    if (this != &other) {
      release();
      assign(other.ids(), other.count_);
    }
    return *this;
  }
  DnsName& operator=(DnsName&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  ~DnsName() { release(); }

  /// Parses presentation format ("www.example.com", trailing dot allowed).
  /// Enforces label (≤63) and name (≤253) length limits and non-empty
  /// labels; nullopt otherwise. The empty string parses to the root name.
  static std::optional<DnsName> parse(std::string_view text);
  static DnsName must_parse(std::string_view text);

  [[nodiscard]] bool is_root() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t label_count() const noexcept { return count_; }
  /// Original spelling of label `i` (0 = leftmost); views into the immortal
  /// intern table, valid forever.
  [[nodiscard]] std::string_view label(std::size_t i) const noexcept;
  [[nodiscard]] std::string str() const;

  /// True when this name equals `zone` or is under it ("a.b.c" under "b.c").
  [[nodiscard]] bool is_subdomain_of(const DnsName& zone) const;
  /// Name with the first `n` labels removed.
  [[nodiscard]] DnsName parent(std::size_t n = 1) const;
  /// New name with `label` prepended.
  [[nodiscard]] DnsName child(std::string_view label) const;

  bool operator==(const DnsName& other) const;
  bool operator<(const DnsName& other) const;  // canonical (case-folded) order

  /// Three-way compare of the original-case presentation strings (exactly
  /// a.str() <=> b.str(), without materializing either). Case-SENSITIVE —
  /// this is the tie-breaker hit_canonical_less uses, not DNS matching.
  [[nodiscard]] int compare_presentation(const DnsName& other) const;

 private:
  friend struct DnsNameBuilder;
  static constexpr std::size_t kInline = 8;

  [[nodiscard]] const std::uint32_t* ids() const noexcept {
    return count_ <= kInline ? inline_ : heap_;
  }
  void assign(const std::uint32_t* ids, std::uint16_t n);
  void append(std::uint32_t id);
  void release() noexcept {
    if (count_ > kInline) delete[] heap_;
    count_ = 0;
    heap_ = nullptr;
  }
  void steal(DnsName& other) noexcept {
    count_ = other.count_;
    cap_ = other.cap_;
    if (count_ > kInline) {
      heap_ = other.heap_;
    } else {
      std::memcpy(inline_, other.inline_, sizeof(std::uint32_t) * count_);
    }
    other.count_ = 0;
    other.heap_ = nullptr;
  }

  union {
    std::uint32_t inline_[kInline];
    std::uint32_t* heap_;  // active when count_ > kInline
  };
  std::uint16_t count_ = 0;
  std::uint16_t cap_ = 0;  // heap capacity (labels), meaningful when heap-backed
};

enum class DnsType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,  // EDNS0 pseudo-record (RFC 6891)
  kAny = 255,
};

std::string dns_type_name(DnsType t);

enum class DnsRcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct DnsQuestion {
  DnsName name;
  DnsType type = DnsType::kA;
  // Class is always IN for this library; encoded/decoded but not stored.

  bool operator==(const DnsQuestion&) const = default;
};

struct SoaData {
  DnsName mname;
  DnsName rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 3600;
  std::uint32_t retry = 600;
  std::uint32_t expire = 86400;
  std::uint32_t minimum = 300;

  bool operator==(const SoaData&) const = default;
};

/// Typed RDATA. Unknown types carry raw bytes.
using DnsRdata = std::variant<Ipv4Addr,                 // A
                              DnsName,                  // NS / CNAME / PTR
                              SoaData,                  // SOA
                              std::vector<std::string>, // TXT
                              Bytes>;                   // anything else

struct DnsRecord {
  DnsName name;
  DnsType type = DnsType::kA;
  std::uint32_t ttl = 3600;
  DnsRdata rdata = Bytes{};
  /// Wire CLASS. IN (1) for ordinary records; the OPT pseudo-record abuses
  /// it for the UDP payload size, which is why it is kept around.
  std::uint16_t opt_class = 1;

  static DnsRecord a(DnsName name, Ipv4Addr addr, std::uint32_t ttl = 3600);
  static DnsRecord ns(DnsName name, DnsName target, std::uint32_t ttl = 3600);
  static DnsRecord cname(DnsName name, DnsName target, std::uint32_t ttl = 3600);
  static DnsRecord txt(DnsName name, std::vector<std::string> strings,
                       std::uint32_t ttl = 3600);
  static DnsRecord soa(DnsName name, SoaData data, std::uint32_t ttl = 3600);
};

/// EDNS0 (RFC 6891): the OPT pseudo-record's fixed fields, surfaced as a
/// message-level attribute rather than a record (matching how software
/// treats it). Encoding appends the OPT RR to the additional section;
/// decoding strips it back out into this struct.
struct EdnsInfo {
  std::uint16_t udp_payload_size = 1232;  // the DNS-flag-day recommendation
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  bool dnssec_ok = false;

  bool operator==(const EdnsInfo&) const = default;
};

struct DnsHeader {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  std::uint8_t opcode = 0;
  bool aa = false;
  bool tc = false;
  bool rd = true;
  bool ra = false;
  DnsRcode rcode = DnsRcode::kNoError;
};

struct DnsMessage {
  DnsHeader header;
  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;
  std::vector<DnsRecord> authorities;
  std::vector<DnsRecord> additionals;
  /// EDNS0 OPT pseudo-record, when present.
  std::optional<EdnsInfo> edns;

  [[nodiscard]] Bytes encode() const;
  static Result<DnsMessage> decode(BytesView wire);

  /// Convenience factory: a standard recursive query for (name, type).
  static DnsMessage query(std::uint16_t id, DnsName name, DnsType type);
  /// Convenience factory: a response skeleton echoing a query's id/question.
  static DnsMessage response_to(const DnsMessage& query, DnsRcode rcode);
};

}  // namespace shadowprobe::net
