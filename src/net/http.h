// HTTP/1.1 message codec (RFC 9112 subset: request line, status line,
// headers, Content-Length bodies).
//
// HTTP decoys are GET requests whose Host header carries the experiment
// domain; honeypot servers parse arriving requests with the same codec and
// the payload analyzers (path enumeration / exploit signatures) consume the
// parsed request target.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace shadowprobe::net {

/// Ordered header list with case-insensitive lookup (order is preserved
/// because header ordering is itself a fingerprinting signal).
class HttpHeaders {
 public:
  void add(std::string name, std::string value);
  /// First value for `name` (case-insensitive); nullopt when absent.
  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;
  void set(std::string_view name, std::string value);
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& all() const noexcept {
    return headers_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return headers_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> headers_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HttpHeaders headers;
  Bytes body;

  /// The Host header (without port), empty when absent.
  [[nodiscard]] std::string host() const;
  /// The request path without the query string.
  [[nodiscard]] std::string path() const;

  [[nodiscard]] Bytes encode() const;
  static Result<HttpRequest> decode(BytesView wire);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HttpHeaders headers;
  Bytes body;

  [[nodiscard]] Bytes encode() const;
  static Result<HttpResponse> decode(BytesView wire);
};

}  // namespace shadowprobe::net
