#include "net/udp.h"

namespace shadowprobe::net {

namespace {

std::uint16_t udp_checksum(Ipv4Addr src, Ipv4Addr dst, BytesView udp_bytes) {
  ByteWriter pseudo(12 + udp_bytes.size());
  pseudo.u32(src.value());
  pseudo.u32(dst.value());
  pseudo.u8(0);
  pseudo.u8(static_cast<std::uint8_t>(IpProto::kUdp));
  pseudo.u16(static_cast<std::uint16_t>(udp_bytes.size()));
  pseudo.raw(udp_bytes);
  std::uint16_t sum = internet_checksum(pseudo.bytes());
  // An all-zero checksum is transmitted as 0xFFFF (zero means "no checksum").
  return sum == 0 ? 0xFFFF : sum;
}

}  // namespace

Bytes UdpDatagram::encode(Ipv4Addr src, Ipv4Addr dst) const {
  ByteWriter w(kHeaderSize + payload.size());
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kHeaderSize + payload.size()));
  w.u16(0);
  w.raw(payload);
  std::uint16_t csum = udp_checksum(src, dst, w.bytes());
  Bytes out = std::move(w).take();
  out[6] = static_cast<std::uint8_t>(csum >> 8);
  out[7] = static_cast<std::uint8_t>(csum);
  return out;
}

Result<UdpDatagram> UdpDatagram::decode(BytesView segment, Ipv4Addr src, Ipv4Addr dst) {
  ByteReader r(segment);
  UdpDatagram d;
  d.src_port = r.u16();
  d.dst_port = r.u16();
  std::uint16_t length = r.u16();
  std::uint16_t csum = r.u16();
  if (!r.ok()) return Error("truncated UDP header");
  if (length < kHeaderSize || length > segment.size())
    return Error("UDP length field inconsistent");
  if (csum != 0) {
    // Verify with the pseudo-header: the sum over pseudo-header plus the
    // whole segment (checksum field included) must fold to zero.
    ByteWriter pseudo(12 + length);
    pseudo.u32(src.value());
    pseudo.u32(dst.value());
    pseudo.u8(0);
    pseudo.u8(static_cast<std::uint8_t>(IpProto::kUdp));
    pseudo.u16(length);
    pseudo.raw(segment.subspan(0, length));
    if (internet_checksum(pseudo.bytes()) != 0) return Error("UDP checksum mismatch");
  }
  BytesView body = segment.subspan(kHeaderSize, length - kHeaderSize);
  d.payload.assign(body.begin(), body.end());
  return d;
}

}  // namespace shadowprobe::net
