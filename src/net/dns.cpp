#include "net/dns.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "common/arena.h"
#include "common/strutil.h"

namespace shadowprobe::net {

namespace {
constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 253;
constexpr std::uint16_t kClassIn = 1;
}  // namespace

// ---------------------------------------------------------------------------
// Label intern table
// ---------------------------------------------------------------------------

namespace detail {

struct LabelTable::Impl {
  static constexpr std::size_t kChunkShift = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 13;  // 32M labels

  // Readers index chunks lock-free; a chunk pointer is published (release)
  // before any id inside it escapes intern(), so acquire loads see complete
  // entries.
  std::atomic<Entry*> chunks[kMaxChunks] = {};
  std::atomic<std::uint32_t> count{0};

  std::mutex mu;
  // Keys view the arena-stored text, so the index adds no string copies.
  std::unordered_map<std::string_view, std::uint32_t> index;
  BumpArena arena{256 * 1024};

  std::uint32_t intern_locked(std::string_view label) {
    if (auto it = index.find(label); it != index.end()) return it->second;
    // Intern the folded form first so the new entry can reference it. Most
    // labels are already lowercase and fold to themselves.
    std::string folded = to_lower(label);
    bool self_folded = folded == label;
    std::uint32_t fold_id = self_folded ? 0 : intern_locked(folded);
    std::uint32_t id = count.load(std::memory_order_relaxed);
    std::size_t chunk = id >> kChunkShift;
    if (chunk >= kMaxChunks) throw std::length_error("DNS label intern table full");
    Entry* arr = chunks[chunk].load(std::memory_order_relaxed);
    if (arr == nullptr) {
      arr = new Entry[kChunkSize];
      chunks[chunk].store(arr, std::memory_order_release);
    }
    std::string_view stored = arena.store(label);
    arr[id & (kChunkSize - 1)] = Entry{stored, self_folded ? id : fold_id};
    index.emplace(stored, id);
    count.store(id + 1, std::memory_order_release);
    return id;
  }
};

LabelTable& LabelTable::instance() {
  static LabelTable table;
  return table;
}

LabelTable::Impl* LabelTable::impl() {
  // Leaked on purpose: interned ids live inside DnsNames with arbitrary
  // lifetime (including static destructors), so the table must never die.
  static Impl* impl = new Impl;
  return impl;
}

std::uint32_t LabelTable::intern(std::string_view label) {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  return im->intern_locked(label);
}

const LabelTable::Entry& LabelTable::entry(std::uint32_t id) const noexcept {
  Impl* im = const_cast<LabelTable*>(this)->impl();
  return im->chunks[id >> Impl::kChunkShift].load(std::memory_order_acquire)
      [id & (Impl::kChunkSize - 1)];
}

std::size_t LabelTable::size() const noexcept {
  return const_cast<LabelTable*>(this)->impl()->count.load(std::memory_order_acquire);
}

}  // namespace detail

namespace {

inline const detail::LabelTable::Entry& label_entry(std::uint32_t id) noexcept {
  return detail::LabelTable::instance().entry(id);
}

inline std::uint32_t fold_of(std::uint32_t id) noexcept { return label_entry(id).fold_id; }

}  // namespace

/// dns.cpp-internal access to DnsName's id storage (decode/compression).
struct DnsNameBuilder {
  static void append_interned(DnsName& name, std::string_view label) {
    name.append(detail::LabelTable::instance().intern(label));
  }
  static std::uint32_t fold_id(const DnsName& name, std::size_t i) noexcept {
    return fold_of(name.ids()[i]);
  }
};

// ---------------------------------------------------------------------------
// DnsName
// ---------------------------------------------------------------------------

DnsName::DnsName(const std::vector<std::string>& labels) {
  for (const auto& label : labels) {
    append(detail::LabelTable::instance().intern(label));
  }
}

void DnsName::assign(const std::uint32_t* ids, std::uint16_t n) {
  count_ = n;
  if (n > kInline) {
    cap_ = n;
    heap_ = new std::uint32_t[n];
    std::memcpy(heap_, ids, sizeof(std::uint32_t) * n);
  } else if (n > 0) {
    std::memcpy(inline_, ids, sizeof(std::uint32_t) * n);
  }
}

void DnsName::append(std::uint32_t id) {
  if (count_ < kInline) {
    inline_[count_++] = id;
    return;
  }
  if (count_ == kInline) {  // spill inline ids to the heap
    auto* heap = new std::uint32_t[kInline * 2];
    std::memcpy(heap, inline_, sizeof(inline_));
    heap_ = heap;
    cap_ = kInline * 2;
  } else if (count_ == cap_) {
    auto* heap = new std::uint32_t[cap_ * 2];
    std::memcpy(heap, heap_, sizeof(std::uint32_t) * count_);
    delete[] heap_;
    heap_ = heap;
    cap_ = static_cast<std::uint16_t>(cap_ * 2);
  }
  heap_[count_++] = id;
}

std::string_view DnsName::label(std::size_t i) const noexcept {
  return label_entry(ids()[i]).text;
}

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return DnsName{};
  if (text.size() > kMaxName) return std::nullopt;
  DnsName name;
  std::size_t pos = 0;
  for (;;) {
    std::size_t dot = text.find('.', pos);
    std::string_view label =
        dot == std::string_view::npos ? text.substr(pos) : text.substr(pos, dot - pos);
    if (label.empty() || label.size() > kMaxLabel) return std::nullopt;
    name.append(detail::LabelTable::instance().intern(label));
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  return name;
}

DnsName DnsName::must_parse(std::string_view text) {
  auto name = parse(text);
  if (!name) throw std::invalid_argument("bad DNS name: " + std::string(text));
  return *name;
}

std::string DnsName::str() const {
  if (is_root()) return ".";
  std::string out;
  std::size_t total = static_cast<std::size_t>(count_) - 1;
  for (std::size_t i = 0; i < count_; ++i) total += label(i).size();
  out.reserve(total);
  for (std::size_t i = 0; i < count_; ++i) {
    if (i != 0) out.push_back('.');
    out.append(label(i));
  }
  return out;
}

bool DnsName::is_subdomain_of(const DnsName& zone) const {
  if (zone.count_ > count_) return false;
  std::size_t offset = count_ - zone.count_;
  const std::uint32_t* mine = ids();
  const std::uint32_t* theirs = zone.ids();
  for (std::size_t i = 0; i < zone.count_; ++i) {
    if (fold_of(mine[offset + i]) != fold_of(theirs[i])) return false;
  }
  return true;
}

DnsName DnsName::parent(std::size_t n) const {
  DnsName out;
  if (n >= count_) return out;
  out.assign(ids() + n, static_cast<std::uint16_t>(count_ - n));
  return out;
}

DnsName DnsName::child(std::string_view label) const {
  DnsName out;
  out.append(detail::LabelTable::instance().intern(label));
  for (std::size_t i = 0; i < count_; ++i) out.append(ids()[i]);
  return out;
}

bool DnsName::operator==(const DnsName& other) const {
  if (count_ != other.count_) return false;
  const std::uint32_t* a = ids();
  const std::uint32_t* b = other.ids();
  for (std::size_t i = 0; i < count_; ++i) {
    // Same id → same label; otherwise equal iff the folded forms coincide.
    if (a[i] != b[i] && fold_of(a[i]) != fold_of(b[i])) return false;
  }
  return true;
}

bool DnsName::operator<(const DnsName& other) const {
  std::size_t n = std::min(count_, other.count_);
  const std::uint32_t* a = ids();
  const std::uint32_t* b = other.ids();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t fa = fold_of(a[i]);
    std::uint32_t fb = fold_of(b[i]);
    if (fa == fb) continue;
    return label_entry(fa).text < label_entry(fb).text;
  }
  return count_ < other.count_;
}

int DnsName::compare_presentation(const DnsName& other) const {
  if (is_root() || other.is_root()) {
    // str() renders the root name as "." — rare enough to just materialize.
    return str().compare(other.str());
  }
  std::size_t n = std::min(count_, other.count_);
  for (std::size_t i = 0; i < n; ++i) {
    std::string_view la = label(i);
    std::string_view lb = other.label(i);
    std::size_t m = std::min(la.size(), lb.size());
    if (int k = std::memcmp(la.data(), lb.data(), m); k != 0) return k;
    if (la.size() != lb.size()) {
      // One label is a strict prefix of the other: in the joined string the
      // shorter name continues with '.' (more labels) or ends (last label).
      // Labels never contain '.', so the comparison below cannot tie.
      bool a_shorter = la.size() < lb.size();
      const DnsName& shorter = a_shorter ? *this : other;
      std::string_view longer_label = a_shorter ? lb : la;
      int next_shorter = (i + 1 < shorter.count_) ? '.' : -1;
      int c = next_shorter - static_cast<unsigned char>(longer_label[m]);
      return a_shorter ? c : -c;
    }
  }
  if (count_ == other.count_) return 0;
  return count_ < other.count_ ? -1 : 1;
}

std::string dns_type_name(DnsType t) {
  switch (t) {
    case DnsType::kA: return "A";
    case DnsType::kNs: return "NS";
    case DnsType::kCname: return "CNAME";
    case DnsType::kSoa: return "SOA";
    case DnsType::kPtr: return "PTR";
    case DnsType::kTxt: return "TXT";
    case DnsType::kAaaa: return "AAAA";
    case DnsType::kOpt: return "OPT";
    case DnsType::kAny: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<int>(t));
}

DnsRecord DnsRecord::a(DnsName name, Ipv4Addr addr, std::uint32_t ttl) {
  return {std::move(name), DnsType::kA, ttl, addr};
}
DnsRecord DnsRecord::ns(DnsName name, DnsName target, std::uint32_t ttl) {
  return {std::move(name), DnsType::kNs, ttl, std::move(target)};
}
DnsRecord DnsRecord::cname(DnsName name, DnsName target, std::uint32_t ttl) {
  return {std::move(name), DnsType::kCname, ttl, std::move(target)};
}
DnsRecord DnsRecord::txt(DnsName name, std::vector<std::string> strings, std::uint32_t ttl) {
  return {std::move(name), DnsType::kTxt, ttl, std::move(strings)};
}
DnsRecord DnsRecord::soa(DnsName name, SoaData data, std::uint32_t ttl) {
  return {std::move(name), DnsType::kSoa, ttl, std::move(data)};
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

namespace {

/// Writes a name with RFC 1035 §4.1.4 compression: the longest suffix of the
/// name already emitted is replaced with a pointer. Suffixes are matched by
/// folded label ids (case-insensitive, like the wire format demands) against
/// a flat pool — no string keys, no per-name allocation once warm.
class NameCompressor {
 public:
  void write(ByteWriter& w, const DnsName& name) {
    const std::size_t n = name.label_count();
    for (std::size_t i = 0; i < n; ++i) {
      if (const Suffix* hit = find_suffix(name, i)) {
        w.u16(static_cast<std::uint16_t>(0xC000 | hit->offset));
        return;
      }
      // Pointers can only address the first 16 KiB - 2 bits worth of offset.
      if (w.size() <= 0x3FFF) record_suffix(name, i, w.size());
      std::string_view label = name.label(i);
      w.u8(static_cast<std::uint8_t>(label.size()));
      w.raw(label);
    }
    w.u8(0);  // root label
  }

 private:
  struct Suffix {
    std::uint32_t start;   // index into pool_
    std::uint16_t len;     // labels in the suffix
    std::uint16_t offset;  // wire offset the suffix was written at
  };

  const Suffix* find_suffix(const DnsName& name, std::size_t from) const {
    std::uint16_t want = static_cast<std::uint16_t>(name.label_count() - from);
    for (const Suffix& s : suffixes_) {
      if (s.len != want) continue;
      bool match = true;
      for (std::size_t i = 0; i < want; ++i) {
        if (pool_[s.start + i] != DnsNameBuilder::fold_id(name, from + i)) {
          match = false;
          break;
        }
      }
      if (match) return &s;
    }
    return nullptr;
  }

  void record_suffix(const DnsName& name, std::size_t from, std::size_t offset) {
    Suffix s{static_cast<std::uint32_t>(pool_.size()),
             static_cast<std::uint16_t>(name.label_count() - from),
             static_cast<std::uint16_t>(offset)};
    for (std::size_t i = from; i < name.label_count(); ++i) {
      pool_.push_back(DnsNameBuilder::fold_id(name, i));
    }
    suffixes_.push_back(s);
  }

  std::vector<std::uint32_t> pool_;  // concatenated folded-id suffixes
  std::vector<Suffix> suffixes_;
};

void write_rdata(ByteWriter& w, NameCompressor& names, const DnsRecord& rr) {
  std::size_t len_at = w.size();
  w.u16(0);  // RDLENGTH placeholder
  std::size_t start = w.size();
  std::visit(
      [&](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, Ipv4Addr>) {
          w.u32(value.value());
        } else if constexpr (std::is_same_v<T, DnsName>) {
          names.write(w, value);
        } else if constexpr (std::is_same_v<T, SoaData>) {
          names.write(w, value.mname);
          names.write(w, value.rname);
          w.u32(value.serial);
          w.u32(value.refresh);
          w.u32(value.retry);
          w.u32(value.expire);
          w.u32(value.minimum);
        } else if constexpr (std::is_same_v<T, std::vector<std::string>>) {
          for (const auto& s : value) {
            w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(s.size(), 255)));
            w.raw(std::string_view(s).substr(0, 255));
          }
        } else {
          w.raw(BytesView(value));
        }
      },
      rr.rdata);
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - start));
}

void write_record(ByteWriter& w, NameCompressor& names, const DnsRecord& rr) {
  names.write(w, rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(kClassIn);
  w.u32(rr.ttl);
  write_rdata(w, names, rr);
}

}  // namespace

Bytes DnsMessage::encode() const {
  ByteWriter w(128);
  w.u16(header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((header.opcode & 0x0F) << 11);
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(header.rcode) & 0x0F;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size() + (edns ? 1 : 0)));
  NameCompressor names;
  for (const auto& q : questions) {
    names.write(w, q.name);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(kClassIn);
  }
  for (const auto& rr : answers) write_record(w, names, rr);
  for (const auto& rr : authorities) write_record(w, names, rr);
  for (const auto& rr : additionals) write_record(w, names, rr);
  if (edns) {
    // OPT pseudo-record: root owner, CLASS carries the UDP payload size,
    // TTL packs extended-rcode / version / DO flag.
    w.u8(0);  // root name
    w.u16(static_cast<std::uint16_t>(DnsType::kOpt));
    w.u16(edns->udp_payload_size);
    std::uint32_t flags = static_cast<std::uint32_t>(edns->extended_rcode) << 24 |
                          static_cast<std::uint32_t>(edns->version) << 16 |
                          (edns->dnssec_ok ? 0x8000u : 0u);
    w.u32(flags);
    w.u16(0);  // no options
  }
  return std::move(w).take();
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

namespace {

/// Reads a possibly-compressed name. Guards: pointers must go strictly
/// backwards and total label bytes are bounded, so malicious pointer loops
/// terminate.
bool read_name(ByteReader& r, BytesView whole, DnsName& out) {
  out = DnsName{};
  std::size_t total = 0;
  std::size_t jumps = 0;
  std::optional<std::size_t> resume;  // position after the first pointer
  std::size_t min_pointer_target = whole.size();
  for (;;) {
    std::uint8_t len = r.u8();
    if (!r.ok()) return false;
    if ((len & 0xC0) == 0xC0) {
      std::uint8_t low = r.u8();
      if (!r.ok()) return false;
      std::size_t target = (static_cast<std::size_t>(len & 0x3F) << 8) | low;
      if (target >= min_pointer_target) return false;  // must move backwards
      min_pointer_target = target;
      if (++jumps > 64) return false;
      if (!resume) resume = r.pos();
      r.seek(target);
      continue;
    }
    if (len & 0xC0) return false;  // 01/10 prefixes are reserved
    if (len == 0) break;
    BytesView raw = r.raw(len);
    if (!r.ok()) return false;
    total += raw.size() + 1;
    if (total > kMaxName + 1) return false;
    DnsNameBuilder::append_interned(
        out, std::string_view(reinterpret_cast<const char*>(raw.data()), raw.size()));
  }
  if (resume) r.seek(*resume);
  return true;
}

bool read_record(ByteReader& r, BytesView whole, DnsRecord& rr) {
  if (!read_name(r, whole, rr.name)) return false;
  std::uint16_t type = r.u16();
  std::uint16_t klass = r.u16();
  rr.ttl = r.u32();
  std::uint16_t rdlength = r.u16();
  if (!r.ok()) return false;
  rr.type = static_cast<DnsType>(type);
  // OPT repurposes CLASS for the advertised UDP payload size; everything
  // else must be IN.
  if (rr.type != DnsType::kOpt && klass != kClassIn) return false;
  rr.opt_class = klass;
  std::size_t end = r.pos() + rdlength;
  if (end > whole.size()) return false;
  switch (rr.type) {
    case DnsType::kA: {
      if (rdlength != 4) return false;
      rr.rdata = Ipv4Addr(r.u32());
      break;
    }
    case DnsType::kNs:
    case DnsType::kCname:
    case DnsType::kPtr: {
      DnsName target;
      if (!read_name(r, whole, target)) return false;
      rr.rdata = std::move(target);
      break;
    }
    case DnsType::kSoa: {
      SoaData soa;
      if (!read_name(r, whole, soa.mname)) return false;
      if (!read_name(r, whole, soa.rname)) return false;
      soa.serial = r.u32();
      soa.refresh = r.u32();
      soa.retry = r.u32();
      soa.expire = r.u32();
      soa.minimum = r.u32();
      rr.rdata = std::move(soa);
      break;
    }
    case DnsType::kTxt: {
      std::vector<std::string> strings;
      while (r.pos() < end) {
        std::uint8_t len = r.u8();
        if (!r.ok() || r.pos() + len > end) return false;
        strings.push_back(r.str(len));
      }
      rr.rdata = std::move(strings);
      break;
    }
    default: {
      BytesView raw = r.raw(rdlength);
      rr.rdata = Bytes(raw.begin(), raw.end());
      break;
    }
  }
  if (!r.ok() || r.pos() != end) return false;
  return true;
}

}  // namespace

Result<DnsMessage> DnsMessage::decode(BytesView wire) {
  ByteReader r(wire);
  DnsMessage m;
  m.header.id = r.u16();
  std::uint16_t flags = r.u16();
  m.header.qr = flags & 0x8000;
  m.header.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0F);
  m.header.aa = flags & 0x0400;
  m.header.tc = flags & 0x0200;
  m.header.rd = flags & 0x0100;
  m.header.ra = flags & 0x0080;
  m.header.rcode = static_cast<DnsRcode>(flags & 0x0F);
  std::uint16_t qdcount = r.u16();
  std::uint16_t ancount = r.u16();
  std::uint16_t nscount = r.u16();
  std::uint16_t arcount = r.u16();
  if (!r.ok()) return Error("truncated DNS header");
  for (std::uint16_t i = 0; i < qdcount; ++i) {
    DnsQuestion q;
    if (!read_name(r, wire, q.name)) return Error("bad DNS question name");
    std::uint16_t type = r.u16();
    std::uint16_t klass = r.u16();
    if (!r.ok() || klass != kClassIn) return Error("bad DNS question");
    q.type = static_cast<DnsType>(type);
    m.questions.push_back(std::move(q));
  }
  auto read_section = [&](std::uint16_t count, std::vector<DnsRecord>& section,
                          const char* what) -> std::optional<Error> {
    for (std::uint16_t i = 0; i < count; ++i) {
      DnsRecord rr;
      if (!read_record(r, wire, rr)) return Error(std::string("bad DNS record in ") + what);
      section.push_back(std::move(rr));
    }
    return std::nullopt;
  };
  if (auto e = read_section(ancount, m.answers, "answer")) return *e;
  if (auto e = read_section(nscount, m.authorities, "authority")) return *e;
  if (auto e = read_section(arcount, m.additionals, "additional")) return *e;
  // Strip the EDNS OPT pseudo-record out of the additional section.
  auto it = m.additionals.begin();
  while (it != m.additionals.end()) {
    if (it->type != DnsType::kOpt) {
      ++it;
      continue;
    }
    if (m.edns) return Error("multiple OPT records");
    EdnsInfo edns;
    edns.udp_payload_size = it->opt_class;
    edns.extended_rcode = static_cast<std::uint8_t>(it->ttl >> 24);
    edns.version = static_cast<std::uint8_t>(it->ttl >> 16);
    edns.dnssec_ok = (it->ttl & 0x8000u) != 0;
    m.edns = edns;
    it = m.additionals.erase(it);
  }
  return m;
}

DnsMessage DnsMessage::query(std::uint16_t id, DnsName name, DnsType type) {
  DnsMessage m;
  m.header.id = id;
  m.header.qr = false;
  m.header.rd = true;
  m.questions.push_back({std::move(name), type});
  return m;
}

DnsMessage DnsMessage::response_to(const DnsMessage& query, DnsRcode rcode) {
  DnsMessage m;
  m.header = query.header;
  m.header.qr = true;
  m.header.ra = true;
  m.header.rcode = rcode;
  m.questions = query.questions;
  return m;
}

}  // namespace shadowprobe::net
