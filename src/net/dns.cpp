#include "net/dns.h"

#include <algorithm>
#include <map>

#include "common/strutil.h"

namespace shadowprobe::net {

namespace {
constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 253;
constexpr std::uint16_t kClassIn = 1;

std::string fold(std::string_view s) { return to_lower(s); }
}  // namespace

DnsName::DnsName(std::vector<std::string> labels) : labels_(std::move(labels)) {}

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return DnsName{};
  if (text.size() > kMaxName) return std::nullopt;
  std::vector<std::string> labels;
  for (auto& label : split(text, '.')) {
    if (label.empty() || label.size() > kMaxLabel) return std::nullopt;
    labels.push_back(std::move(label));
  }
  return DnsName(std::move(labels));
}

DnsName DnsName::must_parse(std::string_view text) {
  auto name = parse(text);
  if (!name) throw std::invalid_argument("bad DNS name: " + std::string(text));
  return *name;
}

std::string DnsName::str() const {
  if (labels_.empty()) return ".";
  return join(labels_, ".");
}

bool DnsName::is_subdomain_of(const DnsName& zone) const {
  if (zone.labels_.size() > labels_.size()) return false;
  auto offset = labels_.size() - zone.labels_.size();
  for (std::size_t i = 0; i < zone.labels_.size(); ++i) {
    if (!iequals(labels_[offset + i], zone.labels_[i])) return false;
  }
  return true;
}

DnsName DnsName::parent(std::size_t n) const {
  if (n >= labels_.size()) return DnsName{};
  return DnsName(std::vector<std::string>(labels_.begin() + static_cast<std::ptrdiff_t>(n),
                                          labels_.end()));
}

DnsName DnsName::child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return DnsName(std::move(labels));
}

bool DnsName::operator==(const DnsName& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!iequals(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

bool DnsName::operator<(const DnsName& other) const {
  std::size_t n = std::min(labels_.size(), other.labels_.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::string a = fold(labels_[i]);
    std::string b = fold(other.labels_[i]);
    if (a != b) return a < b;
  }
  return labels_.size() < other.labels_.size();
}

std::string dns_type_name(DnsType t) {
  switch (t) {
    case DnsType::kA: return "A";
    case DnsType::kNs: return "NS";
    case DnsType::kCname: return "CNAME";
    case DnsType::kSoa: return "SOA";
    case DnsType::kPtr: return "PTR";
    case DnsType::kTxt: return "TXT";
    case DnsType::kAaaa: return "AAAA";
    case DnsType::kOpt: return "OPT";
    case DnsType::kAny: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<int>(t));
}

DnsRecord DnsRecord::a(DnsName name, Ipv4Addr addr, std::uint32_t ttl) {
  return {std::move(name), DnsType::kA, ttl, addr};
}
DnsRecord DnsRecord::ns(DnsName name, DnsName target, std::uint32_t ttl) {
  return {std::move(name), DnsType::kNs, ttl, std::move(target)};
}
DnsRecord DnsRecord::cname(DnsName name, DnsName target, std::uint32_t ttl) {
  return {std::move(name), DnsType::kCname, ttl, std::move(target)};
}
DnsRecord DnsRecord::txt(DnsName name, std::vector<std::string> strings, std::uint32_t ttl) {
  return {std::move(name), DnsType::kTxt, ttl, std::move(strings)};
}
DnsRecord DnsRecord::soa(DnsName name, SoaData data, std::uint32_t ttl) {
  return {std::move(name), DnsType::kSoa, ttl, std::move(data)};
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

namespace {

/// Writes a name with RFC 1035 §4.1.4 compression: the longest suffix of the
/// name already emitted is replaced with a pointer.
class NameCompressor {
 public:
  void write(ByteWriter& w, const DnsName& name) {
    const auto& labels = name.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::string suffix = suffix_key(labels, i);
      auto it = offsets_.find(suffix);
      if (it != offsets_.end()) {
        w.u16(static_cast<std::uint16_t>(0xC000 | it->second));
        return;
      }
      // Pointers can only address the first 16 KiB - 2 bits worth of offset.
      if (w.size() <= 0x3FFF) offsets_.emplace(std::move(suffix), w.size());
      w.u8(static_cast<std::uint8_t>(labels[i].size()));
      w.raw(labels[i]);
    }
    w.u8(0);  // root label
  }

 private:
  static std::string suffix_key(const std::vector<std::string>& labels, std::size_t from) {
    std::string key;
    for (std::size_t i = from; i < labels.size(); ++i) {
      key += fold(labels[i]);
      key += '.';
    }
    return key;
  }

  std::map<std::string, std::size_t> offsets_;
};

void write_rdata(ByteWriter& w, NameCompressor& names, const DnsRecord& rr) {
  std::size_t len_at = w.size();
  w.u16(0);  // RDLENGTH placeholder
  std::size_t start = w.size();
  std::visit(
      [&](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, Ipv4Addr>) {
          w.u32(value.value());
        } else if constexpr (std::is_same_v<T, DnsName>) {
          names.write(w, value);
        } else if constexpr (std::is_same_v<T, SoaData>) {
          names.write(w, value.mname);
          names.write(w, value.rname);
          w.u32(value.serial);
          w.u32(value.refresh);
          w.u32(value.retry);
          w.u32(value.expire);
          w.u32(value.minimum);
        } else if constexpr (std::is_same_v<T, std::vector<std::string>>) {
          for (const auto& s : value) {
            w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(s.size(), 255)));
            w.raw(std::string_view(s).substr(0, 255));
          }
        } else {
          w.raw(BytesView(value));
        }
      },
      rr.rdata);
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - start));
}

void write_record(ByteWriter& w, NameCompressor& names, const DnsRecord& rr) {
  names.write(w, rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(kClassIn);
  w.u32(rr.ttl);
  write_rdata(w, names, rr);
}

}  // namespace

Bytes DnsMessage::encode() const {
  ByteWriter w(128);
  w.u16(header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((header.opcode & 0x0F) << 11);
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(header.rcode) & 0x0F;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size() + (edns ? 1 : 0)));
  NameCompressor names;
  for (const auto& q : questions) {
    names.write(w, q.name);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(kClassIn);
  }
  for (const auto& rr : answers) write_record(w, names, rr);
  for (const auto& rr : authorities) write_record(w, names, rr);
  for (const auto& rr : additionals) write_record(w, names, rr);
  if (edns) {
    // OPT pseudo-record: root owner, CLASS carries the UDP payload size,
    // TTL packs extended-rcode / version / DO flag.
    w.u8(0);  // root name
    w.u16(static_cast<std::uint16_t>(DnsType::kOpt));
    w.u16(edns->udp_payload_size);
    std::uint32_t flags = static_cast<std::uint32_t>(edns->extended_rcode) << 24 |
                          static_cast<std::uint32_t>(edns->version) << 16 |
                          (edns->dnssec_ok ? 0x8000u : 0u);
    w.u32(flags);
    w.u16(0);  // no options
  }
  return std::move(w).take();
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

namespace {

/// Reads a possibly-compressed name. Guards: pointers must go strictly
/// backwards and total label bytes are bounded, so malicious pointer loops
/// terminate.
bool read_name(ByteReader& r, BytesView whole, DnsName& out) {
  std::vector<std::string> labels;
  std::size_t total = 0;
  std::size_t jumps = 0;
  std::optional<std::size_t> resume;  // position after the first pointer
  std::size_t min_pointer_target = whole.size();
  for (;;) {
    std::uint8_t len = r.u8();
    if (!r.ok()) return false;
    if ((len & 0xC0) == 0xC0) {
      std::uint8_t low = r.u8();
      if (!r.ok()) return false;
      std::size_t target = (static_cast<std::size_t>(len & 0x3F) << 8) | low;
      if (target >= min_pointer_target) return false;  // must move backwards
      min_pointer_target = target;
      if (++jumps > 64) return false;
      if (!resume) resume = r.pos();
      r.seek(target);
      continue;
    }
    if (len & 0xC0) return false;  // 01/10 prefixes are reserved
    if (len == 0) break;
    std::string label = r.str(len);
    if (!r.ok()) return false;
    total += label.size() + 1;
    if (total > kMaxName + 1) return false;
    labels.push_back(std::move(label));
  }
  if (resume) r.seek(*resume);
  (void)whole;
  out = DnsName(std::move(labels));
  return true;
}

bool read_record(ByteReader& r, BytesView whole, DnsRecord& rr) {
  if (!read_name(r, whole, rr.name)) return false;
  std::uint16_t type = r.u16();
  std::uint16_t klass = r.u16();
  rr.ttl = r.u32();
  std::uint16_t rdlength = r.u16();
  if (!r.ok()) return false;
  rr.type = static_cast<DnsType>(type);
  // OPT repurposes CLASS for the advertised UDP payload size; everything
  // else must be IN.
  if (rr.type != DnsType::kOpt && klass != kClassIn) return false;
  rr.opt_class = klass;
  std::size_t end = r.pos() + rdlength;
  if (end > whole.size()) return false;
  switch (rr.type) {
    case DnsType::kA: {
      if (rdlength != 4) return false;
      rr.rdata = Ipv4Addr(r.u32());
      break;
    }
    case DnsType::kNs:
    case DnsType::kCname:
    case DnsType::kPtr: {
      DnsName target;
      if (!read_name(r, whole, target)) return false;
      rr.rdata = std::move(target);
      break;
    }
    case DnsType::kSoa: {
      SoaData soa;
      if (!read_name(r, whole, soa.mname)) return false;
      if (!read_name(r, whole, soa.rname)) return false;
      soa.serial = r.u32();
      soa.refresh = r.u32();
      soa.retry = r.u32();
      soa.expire = r.u32();
      soa.minimum = r.u32();
      rr.rdata = std::move(soa);
      break;
    }
    case DnsType::kTxt: {
      std::vector<std::string> strings;
      while (r.pos() < end) {
        std::uint8_t len = r.u8();
        if (!r.ok() || r.pos() + len > end) return false;
        strings.push_back(r.str(len));
      }
      rr.rdata = std::move(strings);
      break;
    }
    default: {
      BytesView raw = r.raw(rdlength);
      rr.rdata = Bytes(raw.begin(), raw.end());
      break;
    }
  }
  if (!r.ok() || r.pos() != end) return false;
  return true;
}

}  // namespace

Result<DnsMessage> DnsMessage::decode(BytesView wire) {
  ByteReader r(wire);
  DnsMessage m;
  m.header.id = r.u16();
  std::uint16_t flags = r.u16();
  m.header.qr = flags & 0x8000;
  m.header.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0F);
  m.header.aa = flags & 0x0400;
  m.header.tc = flags & 0x0200;
  m.header.rd = flags & 0x0100;
  m.header.ra = flags & 0x0080;
  m.header.rcode = static_cast<DnsRcode>(flags & 0x0F);
  std::uint16_t qdcount = r.u16();
  std::uint16_t ancount = r.u16();
  std::uint16_t nscount = r.u16();
  std::uint16_t arcount = r.u16();
  if (!r.ok()) return Error("truncated DNS header");
  for (std::uint16_t i = 0; i < qdcount; ++i) {
    DnsQuestion q;
    if (!read_name(r, wire, q.name)) return Error("bad DNS question name");
    std::uint16_t type = r.u16();
    std::uint16_t klass = r.u16();
    if (!r.ok() || klass != kClassIn) return Error("bad DNS question");
    q.type = static_cast<DnsType>(type);
    m.questions.push_back(std::move(q));
  }
  auto read_section = [&](std::uint16_t count, std::vector<DnsRecord>& section,
                          const char* what) -> std::optional<Error> {
    for (std::uint16_t i = 0; i < count; ++i) {
      DnsRecord rr;
      if (!read_record(r, wire, rr)) return Error(std::string("bad DNS record in ") + what);
      section.push_back(std::move(rr));
    }
    return std::nullopt;
  };
  if (auto e = read_section(ancount, m.answers, "answer")) return *e;
  if (auto e = read_section(nscount, m.authorities, "authority")) return *e;
  if (auto e = read_section(arcount, m.additionals, "additional")) return *e;
  // Strip the EDNS OPT pseudo-record out of the additional section.
  auto it = m.additionals.begin();
  while (it != m.additionals.end()) {
    if (it->type != DnsType::kOpt) {
      ++it;
      continue;
    }
    if (m.edns) return Error("multiple OPT records");
    EdnsInfo edns;
    edns.udp_payload_size = it->opt_class;
    edns.extended_rcode = static_cast<std::uint8_t>(it->ttl >> 24);
    edns.version = static_cast<std::uint8_t>(it->ttl >> 16);
    edns.dnssec_ok = (it->ttl & 0x8000u) != 0;
    m.edns = edns;
    it = m.additionals.erase(it);
  }
  return m;
}

DnsMessage DnsMessage::query(std::uint16_t id, DnsName name, DnsType type) {
  DnsMessage m;
  m.header.id = id;
  m.header.qr = false;
  m.header.rd = true;
  m.questions.push_back({std::move(name), type});
  return m;
}

DnsMessage DnsMessage::response_to(const DnsMessage& query, DnsRcode rcode) {
  DnsMessage m;
  m.header = query.header;
  m.header.qr = true;
  m.header.ra = true;
  m.header.rcode = rcode;
  m.questions = query.questions;
  return m;
}

}  // namespace shadowprobe::net
