#include "net/icmp.h"

#include <algorithm>

namespace shadowprobe::net {

Bytes IcmpMessage::encode() const {
  ByteWriter w(8 + body.size());
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  w.u16(0);  // checksum placeholder
  w.u32(rest);
  w.raw(body);
  std::uint16_t csum = internet_checksum(w.bytes());
  Bytes out = std::move(w).take();
  out[2] = static_cast<std::uint8_t>(csum >> 8);
  out[3] = static_cast<std::uint8_t>(csum);
  return out;
}

Result<IcmpMessage> IcmpMessage::decode(BytesView message) {
  if (message.size() < 8) return Error("truncated ICMP message");
  if (internet_checksum(message) != 0) return Error("ICMP checksum mismatch");
  ByteReader r(message);
  IcmpMessage m;
  std::uint8_t type = r.u8();
  switch (type) {
    case 0: m.type = IcmpType::kEchoReply; break;
    case 3: m.type = IcmpType::kDestUnreachable; break;
    case 8: m.type = IcmpType::kEchoRequest; break;
    case 11: m.type = IcmpType::kTimeExceeded; break;
    default: return Error("unsupported ICMP type " + std::to_string(type));
  }
  m.code = r.u8();
  r.u16();  // checksum
  m.rest = r.u32();
  BytesView body = r.raw(r.remaining());
  m.body.assign(body.begin(), body.end());
  return m;
}

IcmpMessage IcmpMessage::time_exceeded(BytesView original_datagram) {
  IcmpMessage m;
  m.type = IcmpType::kTimeExceeded;
  m.code = 0;  // TTL expired in transit
  // RFC 792: quote the IP header plus the first 64 bits of payload. Quoting
  // more is permitted (RFC 1812) but the minimum is what traceroute needs:
  // enough to recover the transport ports / query ID.
  std::size_t quote = std::min<std::size_t>(original_datagram.size(),
                                            Ipv4Header::kSize + 8);
  m.body.assign(original_datagram.begin(),
                original_datagram.begin() + static_cast<std::ptrdiff_t>(quote));
  return m;
}

Result<Ipv4Datagram> IcmpMessage::quoted_datagram() const {
  if (type != IcmpType::kTimeExceeded && type != IcmpType::kDestUnreachable)
    return Error("ICMP message does not quote a datagram");
  // The quote is usually truncated, so decode() (which validates total
  // length against buffer size) cannot be reused directly; parse the header
  // fields only and attach whatever payload bytes were quoted.
  if (body.size() < Ipv4Header::kSize) return Error("quoted datagram too short");
  ByteReader r{BytesView(body)};
  std::uint8_t vihl = r.u8();
  if ((vihl >> 4) != 4 || (vihl & 0x0F) != 5) return Error("quoted header not plain IPv4");
  Ipv4Datagram d;
  d.header.tos = r.u8();
  r.u16();  // total length of the original (may exceed the quote)
  d.header.identification = r.u16();
  r.u16();  // flags/fragment
  d.header.ttl = r.u8();
  std::uint8_t proto = r.u8();
  r.u16();  // checksum
  d.header.src = Ipv4Addr(r.u32());
  d.header.dst = Ipv4Addr(r.u32());
  switch (proto) {
    case 1: d.header.protocol = IpProto::kIcmp; break;
    case 6: d.header.protocol = IpProto::kTcp; break;
    case 17: d.header.protocol = IpProto::kUdp; break;
    default: return Error("quoted datagram has unsupported protocol");
  }
  BytesView rest = r.raw(r.remaining());
  d.payload.assign(rest.begin(), rest.end());
  return d;
}

}  // namespace shadowprobe::net
