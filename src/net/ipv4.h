// IPv4 addressing and header codec (RFC 791).
//
// The TTL field of this header is the core instrument of the reproduction:
// Phase II of the methodology locates on-path observers by sweeping the
// initial TTL of decoy packets and watching where ICMP Time-Exceeded errors
// and unsolicited requests start to appear.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"

namespace shadowprobe::net {

/// IPv4 address as a strong type (host-order internally; network order on
/// the wire).
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
               static_cast<std::uint32_t>(c) << 8 | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string str() const;

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);
  /// Parses dotted-quad and throws std::invalid_argument on failure —
  /// for compile-time-known literals in catalogs.
  static Ipv4Addr must_parse(std::string_view text);

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// CIDR prefix, e.g. 114.114.114.0/24.
class Prefix {
 public:
  constexpr Prefix() = default;
  /// Canonicalizes: host bits of `base` are cleared.
  Prefix(Ipv4Addr base, int length);

  [[nodiscard]] Ipv4Addr base() const noexcept { return base_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  [[nodiscard]] std::uint32_t mask() const noexcept;
  [[nodiscard]] bool contains(Ipv4Addr addr) const noexcept;
  /// Address at `offset` within the prefix (offset 0 == base).
  [[nodiscard]] Ipv4Addr at(std::uint32_t offset) const;
  /// Number of addresses covered (2^(32-length)), capped at 2^32-1 for /0.
  [[nodiscard]] std::uint64_t size() const noexcept;
  [[nodiscard]] std::string str() const;

  static std::optional<Prefix> parse(std::string_view text);

  auto operator<=>(const Prefix&) const = default;

 private:
  Ipv4Addr base_{};
  int length_ = 32;
};

/// IP protocol numbers used by the stack.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// IPv4 header (no options — IHL always 5, as every packet the measurement
/// emits is option-free; decode rejects IHL != 5 plainly rather than half-
/// supporting options).
struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  Ipv4Addr src;
  Ipv4Addr dst;

  static constexpr std::size_t kSize = 20;

  /// Serializes header + payload into one datagram; total-length and
  /// checksum fields are computed here.
  [[nodiscard]] Bytes encode(BytesView payload) const;
};

/// Parsed datagram: header plus a copy of the payload bytes.
struct Ipv4Datagram {
  Ipv4Header header;
  Bytes payload;
};

/// Decodes a full datagram, validating version, IHL, length and checksum.
Result<Ipv4Datagram> decode_ipv4(BytesView datagram);

/// RFC 1071 Internet checksum over a byte range.
std::uint16_t internet_checksum(BytesView data);

}  // namespace shadowprobe::net
