#include "net/ipv4.h"

#include "common/strutil.h"

namespace shadowprobe::net {

std::string Ipv4Addr::str() const {
  return strprintf("%u.%u.%u.%u", value_ >> 24, (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF,
                   value_ & 0xFF);
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& p : parts) {
    long long octet = parse_uint(p);
    if (octet < 0 || octet > 255) return std::nullopt;
    value = value << 8 | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Addr(value);
}

Ipv4Addr Ipv4Addr::must_parse(std::string_view text) {
  auto addr = parse(text);
  if (!addr) throw std::invalid_argument("bad IPv4 literal: " + std::string(text));
  return *addr;
}

Prefix::Prefix(Ipv4Addr base, int length) : length_(length) {
  if (length < 0 || length > 32) throw std::invalid_argument("bad prefix length");
  base_ = Ipv4Addr(base.value() & mask());
}

std::uint32_t Prefix::mask() const noexcept {
  if (length_ == 0) return 0;
  return ~0U << (32 - length_);
}

bool Prefix::contains(Ipv4Addr addr) const noexcept {
  return (addr.value() & mask()) == base_.value();
}

Ipv4Addr Prefix::at(std::uint32_t offset) const {
  if (offset >= size()) throw std::out_of_range("Prefix::at offset outside prefix");
  return Ipv4Addr(base_.value() + offset);
}

std::uint64_t Prefix::size() const noexcept {
  return 1ULL << (32 - length_);
}

std::string Prefix::str() const {
  return base_.str() + "/" + std::to_string(length_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto base = Ipv4Addr::parse(text.substr(0, slash));
  long long len = parse_uint(text.substr(slash + 1));
  if (!base || len < 0 || len > 32) return std::nullopt;
  return Prefix(*base, static_cast<int>(len));
}

std::uint16_t internet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes Ipv4Header::encode(BytesView payload) const {
  ByteWriter w(kSize + payload.size());
  w.u8(0x45);  // version 4, IHL 5
  w.u8(tos);
  w.u16(static_cast<std::uint16_t>(kSize + payload.size()));
  w.u16(identification);
  w.u16(0x4000);  // DF set, fragment offset 0
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  std::uint16_t csum = internet_checksum(BytesView(w.bytes()).subspan(0, kSize));
  w.patch_u16(10, csum);
  w.raw(payload);
  return std::move(w).take();
}

Result<Ipv4Datagram> decode_ipv4(BytesView datagram) {
  ByteReader r(datagram);
  std::uint8_t vihl = r.u8();
  if ((vihl >> 4) != 4) return Error("not an IPv4 datagram");
  if ((vihl & 0x0F) != 5) return Error("IPv4 options unsupported (IHL != 5)");
  Ipv4Datagram d;
  d.header.tos = r.u8();
  std::uint16_t total_length = r.u16();
  d.header.identification = r.u16();
  r.u16();  // flags/fragment: the simulator never fragments
  d.header.ttl = r.u8();
  std::uint8_t proto = r.u8();
  r.u16();  // checksum (verified below over the raw header bytes)
  d.header.src = Ipv4Addr(r.u32());
  d.header.dst = Ipv4Addr(r.u32());
  if (!r.ok()) return Error("truncated IPv4 header");
  if (total_length < Ipv4Header::kSize || total_length > datagram.size())
    return Error("IPv4 total length inconsistent with datagram size");
  switch (proto) {
    case 1: d.header.protocol = IpProto::kIcmp; break;
    case 6: d.header.protocol = IpProto::kTcp; break;
    case 17: d.header.protocol = IpProto::kUdp; break;
    default: return Error("unsupported IP protocol " + std::to_string(proto));
  }
  if (internet_checksum(datagram.subspan(0, Ipv4Header::kSize)) != 0)
    return Error("IPv4 header checksum mismatch");
  BytesView payload = datagram.subspan(Ipv4Header::kSize, total_length - Ipv4Header::kSize);
  d.payload.assign(payload.begin(), payload.end());
  return d;
}

}  // namespace shadowprobe::net
