#include "net/http.h"

#include "common/strutil.h"

namespace shadowprobe::net {

void HttpHeaders::add(std::string name, std::string value) {
  headers_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> HttpHeaders::get(std::string_view name) const {
  for (const auto& [n, v] : headers_) {
    if (iequals(n, name)) return std::string_view(v);
  }
  return std::nullopt;
}

void HttpHeaders::set(std::string_view name, std::string value) {
  for (auto& [n, v] : headers_) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  add(std::string(name), std::move(value));
}

namespace {

void write_headers(ByteWriter& w, const HttpHeaders& headers, std::size_t body_size,
                   bool force_content_length) {
  bool have_length = headers.get("Content-Length").has_value();
  for (const auto& [name, value] : headers.all()) {
    w.raw(name);
    w.raw(": ");
    w.raw(value);
    w.raw("\r\n");
  }
  if (!have_length && (body_size > 0 || force_content_length)) {
    w.raw("Content-Length: " + std::to_string(body_size) + "\r\n");
  }
  w.raw("\r\n");
}

struct HeadLines {
  std::string start_line;
  HttpHeaders headers;
  std::size_t body_offset = 0;
};

Result<HeadLines> parse_head(BytesView wire) {
  std::string_view text(reinterpret_cast<const char*>(wire.data()), wire.size());
  std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return Error("HTTP head not terminated");
  HeadLines out;
  out.body_offset = head_end + 4;
  std::string_view head = text.substr(0, head_end);
  std::size_t line_end = head.find("\r\n");
  out.start_line = std::string(head.substr(0, line_end));
  std::string_view rest = line_end == std::string_view::npos ? std::string_view{}
                                                             : head.substr(line_end + 2);
  while (!rest.empty()) {
    std::size_t eol = rest.find("\r\n");
    std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return Error("HTTP header line missing colon");
    out.headers.add(std::string(trim(line.substr(0, colon))),
                    std::string(trim(line.substr(colon + 1))));
  }
  return out;
}

Result<Bytes> parse_body(BytesView wire, const HeadLines& head) {
  std::size_t declared = 0;
  if (auto cl = head.headers.get("Content-Length")) {
    long long n = parse_uint(trim(*cl));
    if (n < 0) return Error("bad Content-Length");
    declared = static_cast<std::size_t>(n);
  }
  if (head.body_offset + declared > wire.size()) return Error("HTTP body truncated");
  BytesView body = wire.subspan(head.body_offset, declared);
  return Bytes(body.begin(), body.end());
}

}  // namespace

std::string HttpRequest::host() const {
  auto h = headers.get("Host");
  if (!h) return {};
  std::string_view v = trim(*h);
  std::size_t colon = v.find(':');
  if (colon != std::string_view::npos) v = v.substr(0, colon);
  return std::string(v);
}

std::string HttpRequest::path() const {
  std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

Bytes HttpRequest::encode() const {
  ByteWriter w(128 + body.size());
  w.raw(method);
  w.raw(" ");
  w.raw(target);
  w.raw(" ");
  w.raw(version);
  w.raw("\r\n");
  write_headers(w, headers, body.size(), /*force_content_length=*/false);
  w.raw(BytesView(body));
  return std::move(w).take();
}

Result<HttpRequest> HttpRequest::decode(BytesView wire) {
  auto head = parse_head(wire);
  if (!head.ok()) return head.error();
  auto parts = split(head.value().start_line, ' ');
  if (parts.size() != 3) return Error("bad HTTP request line");
  HttpRequest req;
  req.method = parts[0];
  req.target = parts[1];
  req.version = parts[2];
  if (!starts_with(req.version, "HTTP/")) return Error("bad HTTP version");
  auto body = parse_body(wire, head.value());
  if (!body.ok()) return body.error();
  req.headers = std::move(head.value().headers);
  req.body = std::move(body).take();
  return req;
}

Bytes HttpResponse::encode() const {
  ByteWriter w(128 + body.size());
  w.raw(version);
  w.raw(" ");
  w.raw(std::to_string(status));
  w.raw(" ");
  w.raw(reason);
  w.raw("\r\n");
  write_headers(w, headers, body.size(), /*force_content_length=*/true);
  w.raw(BytesView(body));
  return std::move(w).take();
}

Result<HttpResponse> HttpResponse::decode(BytesView wire) {
  auto head = parse_head(wire);
  if (!head.ok()) return head.error();
  const std::string& line = head.value().start_line;
  auto first_space = line.find(' ');
  if (first_space == std::string::npos) return Error("bad HTTP status line");
  auto second_space = line.find(' ', first_space + 1);
  HttpResponse resp;
  resp.version = line.substr(0, first_space);
  if (!starts_with(resp.version, "HTTP/")) return Error("bad HTTP version");
  std::string code = second_space == std::string::npos
                         ? line.substr(first_space + 1)
                         : line.substr(first_space + 1, second_space - first_space - 1);
  long long status = parse_uint(code);
  if (status < 100 || status > 599) return Error("bad HTTP status code");
  resp.status = static_cast<int>(status);
  resp.reason = second_space == std::string::npos ? "" : line.substr(second_space + 1);
  auto body = parse_body(wire, head.value());
  if (!body.ok()) return body.error();
  resp.headers = std::move(head.value().headers);
  resp.body = std::move(body).take();
  return resp;
}

}  // namespace shadowprobe::net
