// TCP segment codec (RFC 9293 header format, options-free).
//
// The simulator implements just enough of TCP for the measurement: a
// three-way handshake, in-order data, and FIN teardown (src/sim/tcp_stack).
// The paper's HTTP/TLS decoys are sent after a successful handshake in
// Phase I, and *without* a handshake in Phase II (to avoid keeping server
// connections idle during TTL sweeps) — both paths use this codec.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "net/ipv4.h"

namespace shadowprobe::net {

/// TCP flag bits (subset the stack uses).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  [[nodiscard]] std::uint8_t encode() const noexcept;
  static TcpFlags decode(std::uint8_t bits) noexcept;
  [[nodiscard]] std::string str() const;

  bool operator==(const TcpFlags&) const = default;
};

struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 65535;
  Bytes payload;

  static constexpr std::size_t kHeaderSize = 20;

  [[nodiscard]] Bytes encode(Ipv4Addr src, Ipv4Addr dst) const;
  static Result<TcpSegment> decode(BytesView segment, Ipv4Addr src, Ipv4Addr dst);
};

}  // namespace shadowprobe::net
