#include "net/tls.h"

namespace shadowprobe::net {

namespace {

void write_extensions(ByteWriter& w, const std::vector<TlsExtension>& extensions) {
  std::size_t len_at = w.size();
  w.u16(0);
  std::size_t start = w.size();
  for (const auto& ext : extensions) {
    w.u16(ext.type);
    w.u16(static_cast<std::uint16_t>(ext.body.size()));
    w.raw(BytesView(ext.body));
  }
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - start));
}

bool read_extensions(ByteReader& r, std::vector<TlsExtension>& out) {
  if (r.remaining() == 0) return true;  // extensions block is optional
  std::uint16_t total = r.u16();
  if (!r.ok() || total > r.remaining()) return false;
  std::size_t end = r.pos() + total;
  while (r.pos() < end) {
    TlsExtension ext;
    ext.type = r.u16();
    std::uint16_t len = r.u16();
    if (!r.ok() || r.pos() + len > end) return false;
    BytesView body = r.raw(len);
    ext.body.assign(body.begin(), body.end());
    out.push_back(std::move(ext));
  }
  return r.pos() == end;
}

/// Wraps a handshake body in handshake + record framing.
Bytes wrap_record(TlsHandshakeType hs_type, BytesView body) {
  ByteWriter w(body.size() + 9);
  w.u8(static_cast<std::uint8_t>(TlsContentType::kHandshake));
  w.u16(0x0301);  // record legacy_version: TLS 1.0 for maximal middlebox tolerance
  w.u16(static_cast<std::uint16_t>(body.size() + 4));
  w.u8(static_cast<std::uint8_t>(hs_type));
  // 24-bit handshake length.
  w.u8(static_cast<std::uint8_t>(body.size() >> 16));
  w.u16(static_cast<std::uint16_t>(body.size() & 0xFFFF));
  w.raw(body);
  return std::move(w).take();
}

/// Unwraps record + handshake framing; checks the expected handshake type.
Result<Bytes> unwrap_record(BytesView record, TlsHandshakeType expected) {
  ByteReader r(record);
  std::uint8_t content_type = r.u8();
  if (content_type != static_cast<std::uint8_t>(TlsContentType::kHandshake))
    return Error("not a TLS handshake record");
  std::uint16_t record_version = r.u16();
  if ((record_version >> 8) != 3) return Error("unsupported TLS record version");
  std::uint16_t record_len = r.u16();
  if (!r.ok() || record_len != r.remaining()) return Error("TLS record length mismatch");
  std::uint8_t hs_type = r.u8();
  if (hs_type != static_cast<std::uint8_t>(expected))
    return Error("unexpected TLS handshake type " + std::to_string(hs_type));
  std::uint32_t hs_len = static_cast<std::uint32_t>(r.u8()) << 16 | r.u16();
  if (!r.ok() || hs_len != r.remaining()) return Error("TLS handshake length mismatch");
  BytesView body = r.raw(hs_len);
  return Bytes(body.begin(), body.end());
}

}  // namespace

std::optional<std::string> TlsClientHello::sni() const {
  for (const auto& ext : extensions) {
    if (ext.type != kExtServerName) continue;
    ByteReader r{BytesView(ext.body)};
    std::uint16_t list_len = r.u16();
    if (!r.ok() || list_len != r.remaining()) return std::nullopt;
    while (r.remaining() > 0) {
      std::uint8_t name_type = r.u8();
      std::uint16_t name_len = r.u16();
      if (!r.ok()) return std::nullopt;
      std::string name = r.str(name_len);
      if (!r.ok()) return std::nullopt;
      if (name_type == 0) return name;  // host_name
    }
    return std::nullopt;
  }
  return std::nullopt;
}

void TlsClientHello::set_sni(std::string_view host_name) {
  ByteWriter w(host_name.size() + 5);
  w.u16(static_cast<std::uint16_t>(host_name.size() + 3));  // server_name_list length
  w.u8(0);                                                  // host_name
  w.u16(static_cast<std::uint16_t>(host_name.size()));
  w.raw(host_name);
  // Replace an existing SNI extension in place; append otherwise.
  for (auto& ext : extensions) {
    if (ext.type == kExtServerName) {
      ext.body = std::move(w).take();
      return;
    }
  }
  extensions.push_back({kExtServerName, std::move(w).take()});
}

std::vector<std::string> TlsClientHello::alpn() const {
  std::vector<std::string> out;
  for (const auto& ext : extensions) {
    if (ext.type != kExtAlpn) continue;
    ByteReader r{BytesView(ext.body)};
    std::uint16_t list_len = r.u16();
    if (!r.ok() || list_len != r.remaining()) return {};
    while (r.remaining() > 0) {
      std::uint8_t len = r.u8();
      std::string proto = r.str(len);
      if (!r.ok()) return {};
      out.push_back(std::move(proto));
    }
  }
  return out;
}

void TlsClientHello::set_alpn(const std::vector<std::string>& protocols) {
  ByteWriter w(32);
  std::size_t len_at = w.size();
  w.u16(0);
  std::size_t start = w.size();
  for (const auto& p : protocols) {
    w.u8(static_cast<std::uint8_t>(p.size()));
    w.raw(p);
  }
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - start));
  extensions.push_back({kExtAlpn, std::move(w).take()});
}

void TlsClientHello::set_supported_versions(const std::vector<std::uint16_t>& versions) {
  ByteWriter w(versions.size() * 2 + 1);
  w.u8(static_cast<std::uint8_t>(versions.size() * 2));
  for (std::uint16_t v : versions) w.u16(v);
  extensions.push_back({kExtSupportedVersions, std::move(w).take()});
}

std::vector<std::uint16_t> TlsClientHello::supported_versions() const {
  for (const auto& ext : extensions) {
    if (ext.type != kExtSupportedVersions) continue;
    ByteReader r{BytesView(ext.body)};
    std::uint8_t len = r.u8();
    if (!r.ok() || len != r.remaining() || len % 2 != 0) return {};
    std::vector<std::uint16_t> out;
    for (int i = 0; i < len / 2; ++i) out.push_back(r.u16());
    return r.ok() ? out : std::vector<std::uint16_t>{};
  }
  return {};
}

Bytes TlsClientHello::encode_record() const {
  ByteWriter w(256);
  w.u16(legacy_version);
  w.raw(BytesView(random.data(), random.size()));
  w.u8(static_cast<std::uint8_t>(session_id.size()));
  w.raw(BytesView(session_id));
  w.u16(static_cast<std::uint16_t>(cipher_suites.size() * 2));
  for (std::uint16_t suite : cipher_suites) w.u16(suite);
  w.u8(1);  // compression methods length
  w.u8(0);  // null compression
  write_extensions(w, extensions);
  return wrap_record(TlsHandshakeType::kClientHello, w.bytes());
}

Result<TlsClientHello> TlsClientHello::decode_record(BytesView record) {
  auto body = unwrap_record(record, TlsHandshakeType::kClientHello);
  if (!body.ok()) return body.error();
  ByteReader r{BytesView(body.value())};
  TlsClientHello hello;
  hello.legacy_version = r.u16();
  BytesView random = r.raw(32);
  if (!r.ok()) return Error("truncated ClientHello");
  std::copy(random.begin(), random.end(), hello.random.begin());
  std::uint8_t session_len = r.u8();
  BytesView session = r.raw(session_len);
  hello.session_id.assign(session.begin(), session.end());
  std::uint16_t suites_len = r.u16();
  if (!r.ok() || suites_len % 2 != 0 || suites_len > r.remaining())
    return Error("bad ClientHello cipher suite list");
  for (int i = 0; i < suites_len / 2; ++i) hello.cipher_suites.push_back(r.u16());
  std::uint8_t compression_len = r.u8();
  r.skip(compression_len);
  if (!r.ok()) return Error("truncated ClientHello compression methods");
  if (!read_extensions(r, hello.extensions)) return Error("bad ClientHello extensions");
  return hello;
}

Bytes TlsServerHello::encode_record() const {
  ByteWriter w(128);
  w.u16(legacy_version);
  w.raw(BytesView(random.data(), random.size()));
  w.u8(static_cast<std::uint8_t>(session_id.size()));
  w.raw(BytesView(session_id));
  w.u16(cipher_suite);
  w.u8(0);  // null compression
  write_extensions(w, extensions);
  return wrap_record(TlsHandshakeType::kServerHello, w.bytes());
}

Result<TlsServerHello> TlsServerHello::decode_record(BytesView record) {
  auto body = unwrap_record(record, TlsHandshakeType::kServerHello);
  if (!body.ok()) return body.error();
  ByteReader r{BytesView(body.value())};
  TlsServerHello hello;
  hello.legacy_version = r.u16();
  BytesView random = r.raw(32);
  if (!r.ok()) return Error("truncated ServerHello");
  std::copy(random.begin(), random.end(), hello.random.begin());
  std::uint8_t session_len = r.u8();
  BytesView session = r.raw(session_len);
  hello.session_id.assign(session.begin(), session.end());
  hello.cipher_suite = r.u16();
  r.u8();  // compression
  if (!r.ok()) return Error("truncated ServerHello");
  if (!read_extensions(r, hello.extensions)) return Error("bad ServerHello extensions");
  return hello;
}

namespace {
/// Whitening keystream for opaque bodies: not cryptography, just enough to
/// keep passive parsers from reading the bytes (as real ciphertext would).
void whiten(Bytes& data) {
  std::uint8_t state = 0x5A;
  for (auto& b : data) {
    b ^= state;
    state = static_cast<std::uint8_t>(state * 73 + 41);
  }
}
}  // namespace

void TlsClientHello::set_ech(std::string_view inner_name,
                             std::string_view outer_public_name) {
  set_sni(outer_public_name);
  ByteWriter w(inner_name.size() + 8);
  w.u16(0x0001);  // HPKE cipher-suite placeholder
  w.u16(static_cast<std::uint16_t>(inner_name.size()));
  w.raw(inner_name);
  Bytes body = std::move(w).take();
  whiten(body);
  for (auto& ext : extensions) {
    if (ext.type == kExtEncryptedClientHello) {
      ext.body = std::move(body);
      return;
    }
  }
  extensions.push_back({kExtEncryptedClientHello, std::move(body)});
}

bool TlsClientHello::has_ech() const {
  for (const auto& ext : extensions) {
    if (ext.type == kExtEncryptedClientHello) return true;
  }
  return false;
}

std::optional<std::string> TlsClientHello::ech_inner_sni() const {
  for (const auto& ext : extensions) {
    if (ext.type != kExtEncryptedClientHello) continue;
    Bytes body = ext.body;
    whiten(body);  // XOR whitening is its own inverse per position
    ByteReader r{BytesView(body)};
    r.u16();  // cipher-suite placeholder
    std::uint16_t len = r.u16();
    std::string name = r.str(len);
    if (!r.ok() || r.remaining() != 0) return std::nullopt;
    return name;
  }
  return std::nullopt;
}

Bytes tls_opaque_record(BytesView payload) {
  Bytes body(payload.begin(), payload.end());
  whiten(body);
  ByteWriter w(body.size() + 5);
  w.u8(static_cast<std::uint8_t>(TlsContentType::kApplicationData));
  w.u16(0x0303);
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.raw(BytesView(body));
  return std::move(w).take();
}

Result<Bytes> tls_opaque_unwrap(BytesView record) {
  ByteReader r(record);
  std::uint8_t content_type = r.u8();
  if (content_type != static_cast<std::uint8_t>(TlsContentType::kApplicationData))
    return Error("not an application-data record");
  r.u16();  // version
  std::uint16_t len = r.u16();
  if (!r.ok() || len != r.remaining()) return Error("opaque record length mismatch");
  BytesView body = r.raw(len);
  Bytes out(body.begin(), body.end());
  whiten(out);
  return out;
}

Bytes tls_alert_record(std::uint8_t level, std::uint8_t description) {
  ByteWriter w(7);
  w.u8(static_cast<std::uint8_t>(TlsContentType::kAlert));
  w.u16(0x0303);
  w.u16(2);
  w.u8(level);
  w.u8(description);
  return std::move(w).take();
}

}  // namespace shadowprobe::net
