// TLS record and ClientHello codec (RFC 8446 wire format subset).
//
// TLS decoys carry the experiment domain in the clear-text Server Name
// Indication extension of the ClientHello — the one field of a TLS session
// an on-path observer can read without breaking the handshake. The codec
// produces byte-faithful records: record layer, handshake framing, cipher
// suites, and the SNI / ALPN / supported_versions extensions.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace shadowprobe::net {

enum class TlsContentType : std::uint8_t {
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

enum class TlsHandshakeType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
};

/// A raw TLS extension (type + opaque body).
struct TlsExtension {
  std::uint16_t type = 0;
  Bytes body;
};

constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint16_t kExtAlpn = 16;
constexpr std::uint16_t kExtSupportedVersions = 43;
constexpr std::uint16_t kExtEncryptedClientHello = 0xfe0d;

struct TlsClientHello {
  std::uint16_t legacy_version = 0x0303;  // TLS 1.2 on the wire, per RFC 8446
  std::array<std::uint8_t, 32> random{};
  Bytes session_id;
  std::vector<std::uint16_t> cipher_suites;
  std::vector<TlsExtension> extensions;

  /// Convenience accessors over the extension list.
  [[nodiscard]] std::optional<std::string> sni() const;
  void set_sni(std::string_view host_name);
  [[nodiscard]] std::vector<std::string> alpn() const;
  void set_alpn(const std::vector<std::string>& protocols);
  void set_supported_versions(const std::vector<std::uint16_t>& versions);
  [[nodiscard]] std::vector<std::uint16_t> supported_versions() const;

  /// Encrypted Client Hello (draft-ietf-tls-esni): moves the true server
  /// name into an encrypted extension body and leaves only the provider's
  /// public outer name in the clear SNI. On-path observers see
  /// `outer_public_name`; only the terminating party can recover
  /// `inner_name`. (This library carries the inner name obfuscated rather
  /// than HPKE-encrypted — the observable surface is identical: parsers
  /// without the "key" cannot read it; see ech_inner_sni.)
  void set_ech(std::string_view inner_name, std::string_view outer_public_name);
  [[nodiscard]] bool has_ech() const;
  /// Recovers the inner name — models decryption by the key-holding
  /// terminating server. Nullopt when no ECH extension is present.
  [[nodiscard]] std::optional<std::string> ech_inner_sni() const;

  /// Encodes the full record: TLS record header + handshake header + body.
  [[nodiscard]] Bytes encode_record() const;
  /// Decodes a full record; rejects anything that is not a ClientHello.
  static Result<TlsClientHello> decode_record(BytesView record);
};

struct TlsServerHello {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  Bytes session_id;
  std::uint16_t cipher_suite = 0x1301;  // TLS_AES_128_GCM_SHA256
  std::vector<TlsExtension> extensions;

  [[nodiscard]] Bytes encode_record() const;
  static Result<TlsServerHello> decode_record(BytesView record);
};

/// A fatal TLS alert record (used by honeypots to close handshakes politely
/// after logging the ClientHello).
Bytes tls_alert_record(std::uint8_t level, std::uint8_t description);

/// Wraps a payload as an opaque application-data record (content type 23).
/// The body is whitened so passive parsers cannot read it — the simulator's
/// stand-in for an established encrypted session (DoT/DoH transports).
Bytes tls_opaque_record(BytesView payload);
/// Unwraps a record produced by tls_opaque_record (the "key-holding" side).
Result<Bytes> tls_opaque_unwrap(BytesView record);

}  // namespace shadowprobe::net
