// HTTP payload signature database (the simulator's exploit-db stand-in).
//
// Section 5 of the paper classifies unsolicited HTTP payloads: ~95% path
// enumeration against the honey website, zero exploit payloads. This module
// provides the classifier the analyzers use: a wordlist of enumeration
// targets plus a signature list of exploit markers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/http.h"

namespace shadowprobe::intel {

enum class PayloadClass {
  kBenignFetch,       // "/", "/index.html", "/favicon.ico", "/robots.txt"
  kPathEnumeration,   // directory/wordlist probing
  kExploitAttempt,    // matches an exploit signature
  kOther,
};

std::string payload_class_name(PayloadClass c);

class SignatureDb {
 public:
  /// Builds the default database: a directory-bruteforce wordlist matching
  /// the reconnaissance tooling the paper observed, plus exploit signatures
  /// distilled from common exploit-db entries (path traversal, SQLi, log4j
  /// JNDI, PHP/cgi RCE markers, webshell drops).
  static SignatureDb standard();

  void add_enumeration_path(std::string path);
  void add_exploit_signature(std::string marker);

  [[nodiscard]] PayloadClass classify(const net::HttpRequest& request) const;
  /// Classifies a raw request-target + body pair without a parsed request.
  [[nodiscard]] PayloadClass classify_target(std::string_view target,
                                             std::string_view body = {}) const;

  /// The enumeration wordlist (exposed so probers can draw from the same
  /// list the classifier recognizes — the paper's scanners and its
  /// classifier agreed the same way).
  [[nodiscard]] const std::vector<std::string>& enumeration_paths() const noexcept {
    return enum_paths_;
  }

 private:
  std::vector<std::string> enum_paths_;
  std::vector<std::string> exploit_markers_;
};

}  // namespace shadowprobe::intel
