#include "intel/signatures.h"

#include "common/strutil.h"

namespace shadowprobe::intel {

std::string payload_class_name(PayloadClass c) {
  switch (c) {
    case PayloadClass::kBenignFetch: return "benign-fetch";
    case PayloadClass::kPathEnumeration: return "path-enumeration";
    case PayloadClass::kExploitAttempt: return "exploit-attempt";
    case PayloadClass::kOther: return "other";
  }
  return "other";
}

SignatureDb SignatureDb::standard() {
  SignatureDb db;
  // Directory-bruteforce wordlist (dirb/gobuster-style) — what "95% of
  // requests performing path enumeration" looks like on a honeypot.
  for (const char* p :
       {"/admin",          "/admin/login",   "/login",        "/wp-login.php",
        "/wp-admin",       "/backup",        "/backup.zip",   "/db.sql",
        "/.git/config",    "/.env",          "/.svn/entries", "/config.php",
        "/phpinfo.php",    "/server-status", "/cgi-bin/",     "/console",
        "/manager/html",   "/actuator",      "/api/",         "/api/v1/",
        "/static/",        "/uploads/",      "/test",         "/tmp",
        "/old",            "/dev",           "/staging",      "/.well-known/security.txt",
        "/sitemap.xml",    "/.DS_Store",     "/web.config",   "/phpmyadmin/",
        "/mysql/",         "/dump.sql",      "/id_rsa",       "/.ssh/id_rsa"}) {
    db.add_enumeration_path(p);
  }
  // Exploit markers (exploit-db distillate). The measurement found *no*
  // requests matching these — the signatures exist so that "no exploits"
  // is a verified claim, not an unexercised branch.
  for (const char* m :
       {"../../",           "..%2f",          "/etc/passwd",   "cmd.exe",
        "powershell",       "union select",   "' or 1=1",      "<script>",
        "${jndi:",          "eval(",          "base64_decode", "wget http",
        "curl http",        "/bin/sh",        "chmod 777",     "allow_url_include",
        "php://input",      "win.ini",        "xp_cmdshell",   "{{7*7}}"}) {
    db.add_exploit_signature(m);
  }
  return db;
}

void SignatureDb::add_enumeration_path(std::string path) {
  enum_paths_.push_back(std::move(path));
}

void SignatureDb::add_exploit_signature(std::string marker) {
  exploit_markers_.push_back(to_lower(marker));
}

PayloadClass SignatureDb::classify(const net::HttpRequest& request) const {
  return classify_target(request.target, to_string(BytesView(request.body)));
}

PayloadClass SignatureDb::classify_target(std::string_view target,
                                          std::string_view body) const {
  std::string t = to_lower(target);
  std::string b = to_lower(body);
  for (const auto& marker : exploit_markers_) {
    if (t.find(marker) != std::string::npos || b.find(marker) != std::string::npos)
      return PayloadClass::kExploitAttempt;
  }
  if (t == "/" || t == "/index.html" || t == "/favicon.ico" || t == "/robots.txt")
    return PayloadClass::kBenignFetch;
  for (const auto& path : enum_paths_) {
    if (starts_with(t, to_lower(path))) return PayloadClass::kPathEnumeration;
  }
  return PayloadClass::kOther;
}

}  // namespace shadowprobe::intel
