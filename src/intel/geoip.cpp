#include "intel/geoip.h"

namespace shadowprobe::intel {

std::string prefix_type_name(PrefixType t) {
  switch (t) {
    case PrefixType::kIsp: return "isp";
    case PrefixType::kHosting: return "hosting";
    case PrefixType::kEducation: return "education";
    case PrefixType::kGovernment: return "government";
    case PrefixType::kUnknown: return "unknown";
  }
  return "unknown";
}

void GeoDatabase::add(net::Prefix prefix, GeoEntry entry) {
  auto& bucket = by_length_[prefix.length()];
  auto [it, inserted] = bucket.insert_or_assign(prefix.base(), std::move(entry));
  (void)it;
  if (inserted) ++count_;
}

std::optional<GeoEntry> GeoDatabase::lookup(net::Ipv4Addr addr) const {
  for (const auto& [length, bucket] : by_length_) {
    net::Prefix probe(addr, length);
    auto it = bucket.find(probe.base());
    if (it != bucket.end()) return it->second;
  }
  return std::nullopt;
}

std::string GeoDatabase::country(net::Ipv4Addr addr) const {
  auto e = lookup(addr);
  return e ? e->country : "??";
}

std::uint32_t GeoDatabase::asn(net::Ipv4Addr addr) const {
  auto e = lookup(addr);
  return e ? e->asn : 0;
}

std::string GeoDatabase::as_name(net::Ipv4Addr addr) const {
  auto e = lookup(addr);
  return e ? e->as_name : "UNKNOWN";
}

}  // namespace shadowprobe::intel
