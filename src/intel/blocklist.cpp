#include "intel/blocklist.h"

namespace shadowprobe::intel {

bool Blocklist::contains(net::Ipv4Addr addr) const {
  if (addrs_.count(addr) > 0) return true;
  for (const auto& p : prefixes_) {
    if (p.contains(addr)) return true;
  }
  return false;
}

double Blocklist::hit_rate(const std::vector<net::Ipv4Addr>& addrs) const {
  if (addrs.empty()) return 0.0;
  std::size_t hits = 0;
  for (auto a : addrs) {
    if (contains(a)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(addrs.size());
}

}  // namespace shadowprobe::intel
