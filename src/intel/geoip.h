// Prefix-indexed geolocation / AS database (the simulator's stand-in for
// ip-api.com and IPinfo).
//
// The paper geolocates VP source addresses and observer addresses by IP
// database lookup rather than trusting provider-advertised locations; the
// analyzers here do exactly the same against this database, which the
// topology builder populates from the ground-truth address plan.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace shadowprobe::intel {

/// IPinfo-style usage label of a prefix.
enum class PrefixType { kIsp, kHosting, kEducation, kGovernment, kUnknown };

std::string prefix_type_name(PrefixType t);

struct GeoEntry {
  std::string country;      // ISO 3166 alpha-2, e.g. "CN"
  std::string subdivision;  // province/state when known, e.g. "Jiangsu"
  std::uint32_t asn = 0;    // autonomous system number
  std::string as_name;      // e.g. "CHINANET-BACKBONE"
  PrefixType type = PrefixType::kUnknown;
};

class GeoDatabase {
 public:
  /// Registers a prefix; later registrations may refine (longer prefixes
  /// win on lookup, ties go to the most recent registration).
  void add(net::Prefix prefix, GeoEntry entry);

  /// Longest-prefix-match lookup; nullopt for unregistered space.
  [[nodiscard]] std::optional<GeoEntry> lookup(net::Ipv4Addr addr) const;

  /// Convenience accessors with fallbacks for unregistered space.
  [[nodiscard]] std::string country(net::Ipv4Addr addr) const;
  [[nodiscard]] std::uint32_t asn(net::Ipv4Addr addr) const;
  [[nodiscard]] std::string as_name(net::Ipv4Addr addr) const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  // Keyed by prefix length (descending scan) then base address.
  std::map<int, std::map<net::Ipv4Addr, GeoEntry>, std::greater<>> by_length_;
  std::size_t count_ = 0;
};

}  // namespace shadowprobe::intel
