// Public-resolver use metrics (the simulator's APNIC-Labs stand-in).
//
// The paper selected its 20 destination resolvers "after consulting their
// use metrics" and explains the dominance of Google among unsolicited-query
// origins by Google Public DNS being the most-used service. This table
// carries those popularity shares so that both decisions can be made the
// same way in the reproduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shadowprobe::intel {

struct ResolverUsage {
  std::string name;
  double world_share = 0.0;  // fraction of world population using it
};

/// Popularity table, descending by share (approximate shapes from the
/// public APNIC per-resolver world metrics: Google far ahead, then
/// Cloudflare, OpenDNS, Quad9, and regional services).
const std::vector<ResolverUsage>& resolver_use_metrics();

/// Share for `name`; 0 for unlisted resolvers.
double resolver_share(const std::string& name);

}  // namespace shadowprobe::intel
