#include "intel/use_metrics.h"

namespace shadowprobe::intel {

const std::vector<ResolverUsage>& resolver_use_metrics() {
  static const std::vector<ResolverUsage> kMetrics = {
      {"Google", 0.300},     {"Cloudflare", 0.070}, {"OpenDNS", 0.020},
      {"Quad9", 0.010},      {"DNSPod", 0.050},     {"114DNS", 0.060},
      {"Baidu", 0.015},      {"CNNIC", 0.010},      {"Yandex", 0.012},
      {"Level3", 0.008},     {"VERCARA", 0.006},    {"One DNS", 0.006},
      {"DNS PAI", 0.005},    {"DNS.Watch", 0.002},  {"Oracle Dyn", 0.002},
      {"Hurricane", 0.002},  {"Open NIC", 0.001},   {"SafeDNS", 0.001},
      {"Freenom", 0.001},    {"Quad101", 0.001},
  };
  return kMetrics;
}

double resolver_share(const std::string& name) {
  for (const auto& m : resolver_use_metrics()) {
    if (m.name == name) return m.world_share;
  }
  return 0.0;
}

}  // namespace shadowprobe::intel
