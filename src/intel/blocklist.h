// IP reputation blocklist (the simulator's Spamhaus stand-in).
//
// The behavioral analysis joins origin addresses of unsolicited requests
// against this list (the paper reports 5.2% of unsolicited-DNS origins and
// 45-72% of unsolicited-HTTP(S) origins blocklisted). The shadow layer
// populates it from the synthetic reputation it assigns to prober fleets;
// analyzers only ever query membership, exactly like the paper's scripts
// queried Spamhaus.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace shadowprobe::intel {

class Blocklist {
 public:
  void add(net::Ipv4Addr addr) { addrs_.insert(addr); }
  void add(net::Prefix prefix) { prefixes_.push_back(prefix); }

  [[nodiscard]] bool contains(net::Ipv4Addr addr) const;

  /// Fraction of `addrs` that are listed (the analyzers' common join).
  [[nodiscard]] double hit_rate(const std::vector<net::Ipv4Addr>& addrs) const;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return addrs_.size() + prefixes_.size();
  }

 private:
  std::set<net::Ipv4Addr> addrs_;
  std::vector<net::Prefix> prefixes_;
};

}  // namespace shadowprobe::intel
