#include "shadow/observers.h"

#include "net/http.h"
#include "net/tcp.h"
#include "net/tls.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::shadow {

void WireTap::on_packet(sim::Network& net, sim::NodeId node,
                        const net::Ipv4Datagram& dgram) {
  (void)node;
  if (dgram.header.protocol == net::IpProto::kUdp && filter_.dns) {
    auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                        dgram.header.dst);
    if (!udp.ok() || udp.value().dst_port != 53) return;
    auto dns = net::DnsMessage::decode(BytesView(udp.value().payload));
    if (!dns.ok() || dns.value().header.qr || dns.value().questions.empty()) return;
    ++parsed_;
    exhibitor_.observe(net.now(), dns.value().questions.front().name, dgram.header.src,
                       dgram.header.dst, core::DecoyProtocol::kDns);
    return;
  }
  if (dgram.header.protocol != net::IpProto::kTcp) return;
  auto tcp = net::TcpSegment::decode(BytesView(dgram.payload), dgram.header.src,
                                     dgram.header.dst);
  if (!tcp.ok() || tcp.value().payload.empty()) return;
  const net::TcpSegment& seg = tcp.value();
  if (seg.dst_port == 80 && filter_.http) {
    auto request = net::HttpRequest::decode(BytesView(seg.payload));
    if (!request.ok()) return;
    auto host = net::DnsName::parse(request.value().host());
    if (!host) return;
    ++parsed_;
    exhibitor_.observe(net.now(), *host, dgram.header.src, dgram.header.dst,
                       core::DecoyProtocol::kHttp);
    return;
  }
  if (seg.dst_port == 443 && filter_.tls) {
    auto hello = net::TlsClientHello::decode_record(BytesView(seg.payload));
    if (!hello.ok()) return;
    // ECH hides the true name from on-path devices: they see only the
    // provider's outer public name. A terminating-party tap recovers it.
    std::optional<std::string> sni;
    if (hello.value().has_ech()) {
      sni = terminating_ ? hello.value().ech_inner_sni() : hello.value().sni();
    } else {
      sni = hello.value().sni();
    }
    if (!sni) return;
    auto host = net::DnsName::parse(*sni);
    if (!host) return;
    ++parsed_;
    exhibitor_.observe(net.now(), *host, dgram.header.src, dgram.header.dst,
                       core::DecoyProtocol::kTls);
  }
}

void RouterServices::bind(sim::Network& net, sim::NodeId router) {
  tcp_ = std::make_unique<sim::TcpStack>(net, router, rng_.fork("tcp"));
  for (std::uint16_t port : open_ports_) {
    tcp_->listen(port, [](const sim::ConnKey&, BytesView) { return Bytes{}; });
  }
  net.set_handler(router, this);
}

void RouterServices::on_datagram(sim::Network& net, sim::NodeId self,
                                 const net::Ipv4Datagram& dgram) {
  (void)net;
  (void)self;
  if (dgram.header.protocol == net::IpProto::kTcp) tcp_->on_segment(dgram);
}

void DnsInterceptor::on_packet(sim::Network& net, sim::NodeId node,
                               const net::Ipv4Datagram& dgram) {
  if (dgram.header.protocol != net::IpProto::kUdp) return;
  auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                      dgram.header.dst);
  if (!udp.ok() || udp.value().dst_port != 53) return;
  auto dns = net::DnsMessage::decode(BytesView(udp.value().payload));
  if (!dns.ok() || dns.value().header.qr || dns.value().questions.empty()) return;
  ++intercepted_;
  // Replicating interception: the original query continues towards its
  // destination (taps are passive); the middlebox injects its own answer
  // with the source address spoofed as the intended destination.
  net::DnsMessage response = net::DnsMessage::response_to(dns.value(),
                                                          net::DnsRcode::kNoError);
  const net::DnsQuestion& question = dns.value().questions.front();
  if (question.type == net::DnsType::kA || question.type == net::DnsType::kAny) {
    response.answers.push_back(net::DnsRecord::a(question.name, answer_, 60));
  }
  Bytes wire = response.encode();
  sim::send_udp(net, node, dgram.header.dst, dgram.header.src, 53, udp.value().src_port,
                BytesView(wire), /*ttl=*/64,
                static_cast<std::uint16_t>(rng_.bits()));
}

}  // namespace shadowprobe::shadow
