// Prober hosts: the machines that *emit* unsolicited requests.
//
// An exhibitor's retention store is processed by a fleet of probers spread
// over one or more origin ASes (the paper finds origins in ISP networks,
// cloud platforms, and behind popular public resolvers — and a sizable
// share of origin addresses on IP blocklists). A prober executes three job
// kinds against an observed domain, all with real packets:
//
//   - DNS:   re-query the name via a configured public resolver (Google by
//            preference, per Figure 6),
//   - HTTP:  resolve the name, then GET a handful of paths — mostly
//            directory enumeration (Section 5's "95% path enumeration"),
//   - HTTPS: resolve, then open a TLS handshake with the name in SNI.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/flat_map.h"
#include "common/rng.h"
#include "intel/signatures.h"
#include "net/dns.h"
#include "sim/network.h"
#include "sim/tcp_stack.h"

namespace shadowprobe::shadow {

class ProberHost : public sim::DatagramHandler {
 public:
  ProberHost(std::string name, Rng rng, const intel::SignatureDb& signatures);

  void bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr);

  /// Root-server hint addresses enabling *direct* (iterative) lookups: the
  /// prober then sometimes walks root -> TLD -> authoritative itself, so
  /// the honeypot sees the prober's own address as the query origin (the
  /// paper's Figure 6 origin-AS diversity and its blocklisted DNS origins
  /// both come from such stub probers).
  void set_root_hints(std::vector<net::Ipv4Addr> roots) { roots_ = std::move(roots); }
  /// Share of DNS probes performed iteratively (0 = always via resolver).
  void set_direct_probability(double p) noexcept { direct_probability_ = p; }

  /// Queries `resolver` for the domain (an unsolicited DNS request arrives
  /// at the honeypot authoritative server from the resolver's egress).
  void probe_dns(const net::DnsName& domain, net::Ipv4Addr resolver);

  /// Resolves the domain via `resolver`, then issues `path_count` GET
  /// requests against the first resolved address with Host = domain.
  void probe_http(const net::DnsName& domain, net::Ipv4Addr resolver, int path_count);

  /// Resolves the domain, then opens a TLS handshake with SNI = domain.
  void probe_https(const net::DnsName& domain, net::Ipv4Addr resolver);

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] net::Ipv4Addr addr() const noexcept { return addr_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t probes_sent() const noexcept { return probes_sent_; }

 private:
  enum class Purpose { kDnsOnly, kHttp, kHttps };

  struct PendingLookup {
    net::DnsName domain;
    Purpose purpose = Purpose::kDnsOnly;
    int path_count = 0;
    bool iterative = false;
    int referrals = 0;
  };

  struct HttpJob {
    net::DnsName domain;
    std::vector<std::string> paths;  // remaining GETs on this connection
    bool tls = false;
  };

  void resolve(const net::DnsName& domain, net::Ipv4Addr resolver, Purpose purpose,
               int path_count);
  void send_query(std::uint16_t qid, const net::DnsName& domain, net::Ipv4Addr server,
                  bool recursive);
  void on_resolved(const PendingLookup& lookup, net::Ipv4Addr address);
  void start_http(const net::DnsName& domain, net::Ipv4Addr address, int path_count);
  void start_https(const net::DnsName& domain, net::Ipv4Addr address);
  void send_next_get(const sim::ConnKey& key);
  std::vector<std::string> sample_paths(const net::DnsName& domain, int count);

  std::string name_;
  Rng rng_;
  Rng qid_rng_;  // DNS query ids: non-behavioural, stays a sequential stream
  /// Per-domain probe counters keying the behavioural streams: a probe's
  /// randomness depends on (domain, occurrence), never on what else this
  /// prober is doing — the invariant sharded campaigns rely on.
  std::map<std::string, std::uint32_t> domain_uses_;
  std::map<std::string, std::uint32_t> path_uses_;
  const intel::SignatureDb& signatures_;
  sim::Network* net_ = nullptr;
  sim::NodeId node_ = sim::kInvalidNode;
  net::Ipv4Addr addr_;
  std::unique_ptr<sim::TcpStack> tcp_;
  FlatMap<std::uint16_t, PendingLookup> lookups_;  // by DNS query id
  std::vector<net::Ipv4Addr> roots_;
  double direct_probability_ = 0.0;
  FlatMap<sim::ConnKey, HttpJob> jobs_;
  std::uint16_t dns_sport_ = 33000;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace shadowprobe::shadow
