// Ground-truth exhibitor deployment, calibrated to the paper's findings.
//
// deploy_standard_exhibitors() installs onto a Testbed every shadowing
// behaviour the paper reports, so the measurement pipeline can rediscover
// the landscape blind:
//
//   Destination-side DNS shadowers (the paper's Resolver_h):
//     Yandex (>99% of decoys shadowed, data retained for days, 51% leading
//     to HTTP/HTTPS probes), 114DNS (CN anycast instances only — case study
//     II), One DNS, DNS PAI, Vercara.
//
//   On-wire DPI observers (Tables 2/3, Section 5.2):
//     HTTP/TLS taps on CHINANET-BACKBONE aggregation routers and provincial
//     AS borders (Jiangsu, Hubei, Shanghai, Beijing), a US observer at
//     AS40444 (Constant Contact, DNS-only replays from its own AS), a CA
//     observer at AS29988 (Rogers, DNS-only), and an AD destination-side
//     observer.
//
//   Destination-side TLS shadowers on a slice of web-farm sites (the 65%
//   "TLS observed at destination" mass of Table 2).
//
//   Noise sources the Appendix-E filters must handle: replicating DNS
//   interception middleboxes in two CN provinces and one TR network.
//
// The deployment also assigns synthetic reputation: a configurable share of
// prober addresses is registered in the testbed blocklist (the paper finds
// 45-72% of HTTP(S) origins and 5.2% of DNS origins listed).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "shadow/exhibitor.h"
#include "shadow/observers.h"

namespace shadowprobe::shadow {

struct ShadowConfig {
  bool resolver_shadowing = true;   // Resolver_h destination-side exhibitors
  bool wire_http_observers = true;  // CN/US/CA on-wire DPI
  bool wire_tls_observers = true;
  bool tls_destination_shadowers = true;
  bool dns_interception_noise = true;
  /// Probers per exhibitor fleet.
  int fleet_size = 6;
  /// Share of prober addresses registered on the blocklist, per traffic
  /// class (calibrated to Section 5 hit rates).
  double dns_prober_blocklisted = 0.05;
  double web_prober_blocklisted = 0.72;
};

/// One installed exhibitor with everything it owns.
struct DeployedExhibitor {
  std::string label;                  // "resolver:Yandex", "wire:AS4134", ...
  std::unique_ptr<Exhibitor> exhibitor;
  std::vector<std::unique_ptr<ProberHost>> probers;
  std::vector<std::unique_ptr<WireTap>> taps;
  std::vector<sim::NodeId> tap_nodes;  // routers the taps are attached to
};

/// The full ground truth, kept for validating the pipeline's findings.
struct ShadowDeployment {
  std::vector<DeployedExhibitor> exhibitors;
  std::vector<std::unique_ptr<DnsInterceptor>> interceptors;
  std::vector<sim::NodeId> interceptor_nodes;
  /// Management services of the minority of observer routers with open
  /// ports (Section 5.2's port-scan ground truth).
  std::vector<std::unique_ptr<RouterServices>> router_services;
  std::set<net::Ipv4Addr> routers_with_open_ports;

  /// Router addresses carrying on-wire observers, per decoy protocol — what
  /// Table 2/3 should rediscover.
  std::set<net::Ipv4Addr> wire_observer_addrs_dns;
  std::set<net::Ipv4Addr> wire_observer_addrs_http;
  std::set<net::Ipv4Addr> wire_observer_addrs_tls;

  /// Union of the per-protocol observer sets.
  [[nodiscard]] std::set<net::Ipv4Addr> all_wire_observer_addrs() const;
  /// Resolver names with destination-side shadowing (Resolver_h).
  std::set<std::string> shadowing_resolvers;

  [[nodiscard]] const DeployedExhibitor* find(const std::string& label) const;
};

ShadowDeployment deploy_standard_exhibitors(core::Testbed& bed, const ShadowConfig& config);

}  // namespace shadowprobe::shadow
