#include "shadow/prober.h"

#include "common/log.h"
#include "net/http.h"
#include "net/tls.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::shadow {

ProberHost::ProberHost(std::string name, Rng rng, const intel::SignatureDb& signatures)
    : name_(std::move(name)), rng_(rng), qid_rng_(rng_.fork("qid")),
      signatures_(signatures) {}

void ProberHost::bind(sim::Network& net, sim::NodeId node, net::Ipv4Addr addr) {
  net_ = &net;
  node_ = node;
  addr_ = addr;
  tcp_ = std::make_unique<sim::TcpStack>(net, node, rng_.fork("tcp"));
  tcp_->set_on_established([this](const sim::ConnKey& key) {
    const HttpJob* job = jobs_.find(key);
    if (job == nullptr) return;
    if (job->tls) {
      net::TlsClientHello hello;
      for (auto& b : hello.random) b = static_cast<std::uint8_t>(rng_.bits());
      hello.cipher_suites = {0x1301, 0x1302, 0x1303, 0xC02F};
      hello.set_sni(job->domain.str());
      hello.set_supported_versions({0x0304, 0x0303});
      hello.set_alpn({"h2", "http/1.1"});
      Bytes record = hello.encode_record();
      tcp_->send_data(key, BytesView(record));
      ++probes_sent_;
    } else {
      send_next_get(key);
    }
  });
  tcp_->set_on_data([this](const sim::ConnKey& key, BytesView data) {
    (void)data;
    const HttpJob* job = jobs_.find(key);
    if (job == nullptr) return;
    if (job->tls || job->paths.empty()) {
      // ServerHello received, or final HTTP response: done probing.
      jobs_.erase(key);
      tcp_->close(key);
      return;
    }
    send_next_get(key);
  });
  tcp_->set_on_reset([this](const sim::ConnKey& key, bool) { jobs_.erase(key); });
  net.set_handler(node, this);
}

void ProberHost::probe_dns(const net::DnsName& domain, net::Ipv4Addr resolver) {
  resolve(domain, resolver, Purpose::kDnsOnly, 0);
}

void ProberHost::probe_http(const net::DnsName& domain, net::Ipv4Addr resolver,
                            int path_count) {
  resolve(domain, resolver, Purpose::kHttp, path_count);
}

void ProberHost::probe_https(const net::DnsName& domain, net::Ipv4Addr resolver) {
  resolve(domain, resolver, Purpose::kHttps, 0);
}

void ProberHost::send_query(std::uint16_t qid, const net::DnsName& domain,
                            net::Ipv4Addr server, bool recursive) {
  net::DnsMessage query = net::DnsMessage::query(qid, domain, net::DnsType::kA);
  query.header.rd = recursive;
  Bytes wire = query.encode();
  sim::send_udp(*net_, node_, addr_, server, dns_sport_, 53, BytesView(wire));
  ++probes_sent_;
}

void ProberHost::resolve(const net::DnsName& domain, net::Ipv4Addr resolver,
                         Purpose purpose, int path_count) {
  std::uint16_t qid;
  do {
    qid = static_cast<std::uint16_t>(qid_rng_.bits());
  } while (lookups_.contains(qid));
  PendingLookup lookup{domain, purpose, path_count, /*iterative=*/false, 0};
  net::Ipv4Addr server = resolver;
  // Behaviour keyed by (domain, occurrence): whether this probe walks the
  // tree itself is a property of the probe, not of the prober's history.
  Rng job_rng = rng_.derive("job:" + domain.str() + "#" +
                            std::to_string(domain_uses_[domain.str()]++));
  // Only pure DNS probes go iterative; HTTP(S) jobs need an answer and use
  // the configured public resolver.
  if (purpose == Purpose::kDnsOnly && !roots_.empty() &&
      job_rng.chance(direct_probability_)) {
    lookup.iterative = true;
    server = roots_[static_cast<std::size_t>(job_rng.below(roots_.size()))];
  }
  bool recursive = !lookup.iterative;
  lookups_[qid] = std::move(lookup);
  send_query(qid, domain, server, recursive);
  // Reap abandoned lookups (unreachable server, SERVFAIL never sent).
  net_->loop().schedule(30 * kSecond, [this, qid] { lookups_.erase(qid); });
}

void ProberHost::on_datagram(sim::Network& net, sim::NodeId self,
                             const net::Ipv4Datagram& dgram) {
  (void)net;
  (void)self;
  if (dgram.header.protocol == net::IpProto::kTcp) {
    tcp_->on_segment(dgram);
    return;
  }
  if (dgram.header.protocol != net::IpProto::kUdp) return;
  auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                      dgram.header.dst);
  if (!udp.ok() || udp.value().src_port != 53) return;
  auto response = net::DnsMessage::decode(BytesView(udp.value().payload));
  if (!response.ok() || !response.value().header.qr) return;
  std::uint16_t qid = response.value().header.id;
  PendingLookup* pending = lookups_.find(qid);
  if (pending == nullptr) return;
  // Iterative walks follow glued referrals until an answer arrives.
  if (pending->iterative && response.value().answers.empty()) {
    for (const auto& glue : response.value().additionals) {
      if (glue.type != net::DnsType::kA) continue;
      if (const auto* a = std::get_if<net::Ipv4Addr>(&glue.rdata)) {
        if (++pending->referrals > 8) break;
        send_query(qid, pending->domain, *a, /*recursive=*/false);
        return;
      }
    }
  }
  PendingLookup lookup = std::move(*pending);
  lookups_.erase(qid);
  if (lookup.purpose == Purpose::kDnsOnly) return;  // the query itself was the probe
  for (const auto& rr : response.value().answers) {
    if (rr.type != net::DnsType::kA) continue;
    if (const auto* a = std::get_if<net::Ipv4Addr>(&rr.rdata)) {
      on_resolved(lookup, *a);
      return;
    }
  }
}

void ProberHost::on_resolved(const PendingLookup& lookup, net::Ipv4Addr address) {
  if (lookup.purpose == Purpose::kHttp) {
    start_http(lookup.domain, address, lookup.path_count);
  } else if (lookup.purpose == Purpose::kHttps) {
    start_https(lookup.domain, address);
  }
}

std::vector<std::string> ProberHost::sample_paths(const net::DnsName& domain, int count) {
  // Mostly directory enumeration, a benign homepage fetch leading — the mix
  // the paper's payload analysis reports (>=90-95% enumeration, the rest
  // benign, zero exploit payloads). Keyed by the probed domain so the path
  // choice is independent of this prober's other jobs.
  Rng path_rng = rng_.derive("paths:" + domain.str() + "#" +
                             std::to_string(path_uses_[domain.str()]++));
  std::vector<std::string> paths;
  if (count <= 0) count = 1;
  paths.reserve(static_cast<std::size_t>(count));
  if (path_rng.chance(0.4)) paths.push_back("/");
  const auto& wordlist = signatures_.enumeration_paths();
  while (paths.size() < static_cast<std::size_t>(count)) {
    paths.push_back(path_rng.pick(wordlist));
  }
  return paths;
}

void ProberHost::start_http(const net::DnsName& domain, net::Ipv4Addr address,
                            int path_count) {
  sim::ConnKey key = tcp_->connect(addr_, address, 80);
  jobs_[key] = HttpJob{domain, sample_paths(domain, path_count), /*tls=*/false};
}

void ProberHost::start_https(const net::DnsName& domain, net::Ipv4Addr address) {
  sim::ConnKey key = tcp_->connect(addr_, address, 443);
  jobs_[key] = HttpJob{domain, {}, /*tls=*/true};
}

void ProberHost::send_next_get(const sim::ConnKey& key) {
  HttpJob* found = jobs_.find(key);
  if (found == nullptr) return;
  HttpJob& job = *found;
  if (job.paths.empty()) {
    jobs_.erase(key);
    tcp_->close(key);
    return;
  }
  std::string path = job.paths.front();
  job.paths.erase(job.paths.begin());
  net::HttpRequest request;
  request.method = "GET";
  request.target = path;
  request.headers.add("Host", job.domain.str());
  request.headers.add("User-Agent", "Mozilla/5.0 (compatible; probe)");
  request.headers.add("Accept", "*/*");
  Bytes wire = request.encode();
  tcp_->send_data(key, BytesView(wire));
  ++probes_sent_;
}

}  // namespace shadowprobe::shadow
