// Retention store: what a traffic-shadowing exhibitor keeps.
//
// An observer (at a resolver or on the wire) records domain names it sees in
// passing traffic. The store retains each observation with its capture time
// and context; replay policies later draw on it to produce unsolicited
// requests — possibly days later and more than once, which is precisely the
// behaviour the paper measures (data "retained or even presumably stored
// longer than expected").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/types.h"
#include "net/dns.h"
#include "net/ipv4.h"

namespace shadowprobe::shadow {

struct Observation {
  SimTime captured = 0;
  net::DnsName domain;
  net::Ipv4Addr client;              // who sent the packet that leaked it
  net::Ipv4Addr server;              // where the packet was going
  core::DecoyProtocol seen_in = core::DecoyProtocol::kDns;  // carrying protocol
  std::uint64_t replays = 0;         // how often it has been leveraged so far
};

class RetentionStore {
 public:
  /// Records an observation and returns its index.
  std::size_t record(Observation obs) {
    items_.push_back(std::move(obs));
    return items_.size() - 1;
  }

  [[nodiscard]] Observation& at(std::size_t index) { return items_.at(index); }
  [[nodiscard]] const Observation& at(std::size_t index) const { return items_.at(index); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::uint64_t total_replays() const noexcept { return total_replays_; }

  void count_replay(std::size_t index) {
    ++items_.at(index).replays;
    ++total_replays_;
  }

 private:
  std::vector<Observation> items_;
  std::uint64_t total_replays_ = 0;
};

}  // namespace shadowprobe::shadow
