// Exhibitor engine: turns observations into unsolicited requests.
//
// An Exhibitor is the ground-truth model of one traffic-shadowing party.
// Observations flow in (from a resolver hook or an on-wire tap), pass an
// observation filter, enter the retention store, and are then replayed in
// one or more "waves" — each wave an independent chance of a burst of
// unsolicited requests after a heavy-tailed delay, split across request
// protocols. The wave vocabulary expresses every behaviour the paper
// measures: sub-minute re-queries, same-day probing, multi-day retention,
// multi-use of a single observation, and protocol conversion (DNS decoy ->
// HTTP probe).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "shadow/prober.h"
#include "shadow/retention.h"
#include "sim/event_loop.h"

namespace shadowprobe::shadow {

struct ReplayWave {
  /// Chance this wave fires for a retained observation.
  double probability = 1.0;
  /// Log-normal delay from observation to each request of the wave.
  SimDuration delay_median = kHour;
  double delay_sigma = 1.0;
  /// Lower clamp on the delay (security pipelines batch their scans; the
  /// paper sees no HTTP(S) probe earlier than one hour after the decoy).
  SimDuration delay_floor = 0;
  /// Requests per firing (uniform in [min, max]).
  int requests_min = 1;
  int requests_max = 1;
  /// Request-protocol mix.
  double dns_weight = 1.0;
  double http_weight = 0.0;
  double https_weight = 0.0;
  /// GETs per HTTP probe connection (path enumeration depth).
  int http_paths = 4;
};

struct ExhibitorConfig {
  std::string name;
  /// Fraction of passing observations actually retained.
  double observe_probability = 1.0;
  /// Which carrying protocols this exhibitor can see (a DPI box may parse
  /// HTTP but not TLS, a resolver sees only DNS).
  bool sees_dns = true;
  bool sees_http = true;
  bool sees_tls = true;
  std::vector<ReplayWave> waves;
  /// Resolver the prober fleet uses for lookups (the paper finds Google
  /// Public DNS dominant among unsolicited-query origins).
  net::Ipv4Addr probe_resolver;
};

class Exhibitor {
 public:
  Exhibitor(ExhibitorConfig config, Rng rng, sim::EventLoop& loop)
      : config_(std::move(config)), rng_(rng), loop_(loop) {}

  Exhibitor(const Exhibitor&) = delete;
  Exhibitor& operator=(const Exhibitor&) = delete;

  /// The fleet emitting this exhibitor's unsolicited requests. Not owned.
  /// `web_role` probers send the HTTP/HTTPS probes (the heavily blocklisted
  /// scanning proxies of Section 5); the rest perform the DNS lookups (whose
  /// origins the paper finds mostly clean, 5.2% listed). With a single-role
  /// fleet, every prober does everything.
  void add_prober(ProberHost* prober, bool web_role = true) {
    (web_role ? web_probers_ : dns_probers_).push_back(prober);
    probers_.push_back(prober);
  }

  /// Feeds one observation (called by resolver hooks / wire taps).
  void observe(SimTime now, const net::DnsName& domain, net::Ipv4Addr client,
               net::Ipv4Addr server, core::DecoyProtocol seen_in);

  [[nodiscard]] const ExhibitorConfig& config() const noexcept { return config_; }
  [[nodiscard]] const RetentionStore& store() const noexcept { return store_; }
  [[nodiscard]] std::uint64_t observations() const noexcept { return store_.size(); }

 private:
  void schedule_wave(std::size_t item, const ReplayWave& wave, Rng wave_rng);
  void fire_request(std::size_t item, const ReplayWave& wave, Rng& rng);

  ExhibitorConfig config_;
  Rng rng_;
  sim::EventLoop& loop_;
  RetentionStore store_;
  std::vector<ProberHost*> probers_;
  std::vector<ProberHost*> web_probers_;
  std::vector<ProberHost*> dns_probers_;
  /// Exhibitors key on *newly observed* domains (per the paper's operator
  /// feedback); repeats — including echoes of our own probes crossing the
  /// same networks — are not re-armed.
  std::set<net::DnsName> seen_;
};

}  // namespace shadowprobe::shadow
