#include "shadow/profiles.h"

#include "common/strutil.h"

namespace shadowprobe::shadow {

namespace {

const net::Ipv4Addr kGoogleDns(8, 8, 8, 8);

/// Builds a prober fleet spread over `origin_ases`, registering a share of
/// the addresses on the testbed blocklist (synthetic Spamhaus reputation).
std::vector<std::unique_ptr<ProberHost>> make_fleet(core::Testbed& bed,
                                                    const std::string& label,
                                                    const std::vector<std::uint32_t>& ases,
                                                    int size, double blocklisted_fraction,
                                                    Rng& rng) {
  std::vector<std::unique_ptr<ProberHost>> fleet;
  for (int i = 0; i < size; ++i) {
    std::uint32_t asn = ases[static_cast<std::size_t>(i) % ases.size()];
    std::string name = strprintf("prober-%s-%d", label.c_str(), i);
    auto prober = std::make_unique<ProberHost>(name, rng.fork(name), bed.signatures());
    sim::NodeId node = bed.add_host_in_as(asn, name, prober.get());
    prober->bind(bed.net(), node, bed.net().address(node));
    // The chance() draw must happen in frozen replicas too — skipping it
    // would shift every later draw of this fleet's stream off the
    // authoring run (note_blocklisted itself no-ops when frozen).
    if (rng.chance(blocklisted_fraction)) bed.note_blocklisted(prober->addr());
    fleet.push_back(std::move(prober));
  }
  return fleet;
}

struct ExhibitorSpec {
  ExhibitorConfig config;
  std::vector<std::uint32_t> fleet_ases;
  double blocklisted_fraction = 0.0;
  /// Share of the fleet's DNS probes done as direct iterative lookups
  /// (origin = the prober itself instead of Google's egress).
  double direct_dns_probability = 0.35;
};

DeployedExhibitor instantiate(core::Testbed& bed, const std::string& label,
                              ExhibitorSpec spec, const ShadowConfig& shadow_config,
                              Rng& rng) {
  (void)rng;
  // Every stream below derives from (master seed, label): deployments are
  // reproducible and independent of instantiation order.
  Rng own(bed.config().topology.seed ^ fnv1a("exhibitor-" + label));
  DeployedExhibitor deployed;
  deployed.label = label;
  spec.config.probe_resolver = kGoogleDns;
  deployed.exhibitor = std::make_unique<Exhibitor>(std::move(spec.config),
                                                   own.fork("ex"), bed.loop());
  // Two sub-fleets: web probers (scanning proxies, heavily blocklisted)
  // and lookup probers (mostly clean — the paper's 5.2% DNS-origin rate).
  int web_size = std::max(1, shadow_config.fleet_size / 2);
  int dns_size = std::max(1, shadow_config.fleet_size - web_size);
  auto web_fleet = make_fleet(bed, label + "-web", spec.fleet_ases, web_size,
                              spec.blocklisted_fraction, own);
  auto dns_fleet = make_fleet(bed, label + "-dns", spec.fleet_ases, dns_size,
                              shadow_config.dns_prober_blocklisted, own);
  for (auto& prober : web_fleet) {
    prober->set_root_hints(bed.root_hints());
    prober->set_direct_probability(spec.direct_dns_probability);
    deployed.exhibitor->add_prober(prober.get(), /*web_role=*/true);
    deployed.probers.push_back(std::move(prober));
  }
  for (auto& prober : dns_fleet) {
    prober->set_root_hints(bed.root_hints());
    prober->set_direct_probability(spec.direct_dns_probability);
    deployed.exhibitor->add_prober(prober.get(), /*web_role=*/false);
    deployed.probers.push_back(std::move(prober));
  }
  return deployed;
}

// -- destination-side DNS shadowers (Resolver_h) ------------------------------

ExhibitorSpec yandex_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "Yandex";
  spec.config.observe_probability = 0.995;
  spec.config.sees_http = spec.config.sees_tls = false;
  // Re-lookups spread from minutes to days.
  spec.config.waves.push_back({.probability = 0.95,
                               .delay_median = 6 * kHour,
                               .delay_sigma = 2.2,
                               .requests_min = 2,
                               .requests_max = 4,
                               .dns_weight = 1.0});
  // Same/next-day HTTP(S) probing of ~half the observed names.
  spec.config.waves.push_back({.probability = 0.25,
                               .delay_median = 36 * kHour,
                               .delay_sigma = 1.2,
                               .delay_floor = kHour,
                               .requests_min = 1,
                               .requests_max = 2,
                               .dns_weight = 0.0,
                               .http_weight = 0.6,
                               .https_weight = 0.4,
                               .http_paths = 3});
  // Long-retention wave: ~40% of names re-probed around the 10-day mark.
  spec.config.waves.push_back({.probability = 0.48,
                               .delay_median = 14 * kDay,
                               .delay_sigma = 0.4,
                               .delay_floor = kHour,
                               .requests_min = 1,
                               .requests_max = 1,
                               .dns_weight = 0.0,
                               .http_weight = 0.5,
                               .https_weight = 0.5,
                               .http_paths = 3});
  spec.fleet_ases = {13238, 9009, 14061};
  spec.blocklisted_fraction = sc.web_prober_blocklisted;
  return spec;
}

ExhibitorSpec dns114_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "114DNS-CN";
  spec.config.observe_probability = 0.97;
  spec.config.sees_http = spec.config.sees_tls = false;
  spec.config.waves.push_back({.probability = 0.90,
                               .delay_median = 30 * kMinute,
                               .delay_sigma = 1.6,
                               .requests_min = 3,
                               .requests_max = 6,
                               .dns_weight = 1.0});
  spec.config.waves.push_back({.probability = 0.50,
                               .delay_median = 20 * kHour,
                               .delay_sigma = 1.1,
                               .delay_floor = kHour,
                               .requests_min = 1,
                               .requests_max = 3,
                               .dns_weight = 0.0,
                               .http_weight = 0.55,
                               .https_weight = 0.45,
                               .http_paths = 4});
  // Passive-DNS-fed security analysis: origins across 4 CN ASes (ISPs and
  // cloud), per Figure 6.
  spec.fleet_ases = {4134, 4837, 9808, 23724};
  spec.blocklisted_fraction = sc.web_prober_blocklisted;
  return spec;
}

ExhibitorSpec onedns_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "One DNS";
  spec.config.observe_probability = 0.80;
  spec.config.sees_http = spec.config.sees_tls = false;
  spec.config.waves.push_back({.probability = 0.90,
                               .delay_median = 18 * kHour,
                               .delay_sigma = 1.4,
                               .requests_min = 2,
                               .requests_max = 5,
                               .dns_weight = 1.0});
  spec.config.waves.push_back({.probability = 0.20,
                               .delay_median = 2 * kDay,
                               .delay_sigma = 0.8,
                               .delay_floor = kHour,
                               .requests_min = 1,
                               .requests_max = 2,
                               .dns_weight = 0.0,
                               .http_weight = 0.7,
                               .https_weight = 0.3,
                               .http_paths = 4});
  spec.fleet_ases = {23724, 45090};
  spec.blocklisted_fraction = sc.web_prober_blocklisted * 0.6;
  return spec;
}

ExhibitorSpec dnspai_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "DNS PAI";
  spec.config.observe_probability = 0.60;
  spec.config.sees_http = spec.config.sees_tls = false;
  spec.config.waves.push_back({.probability = 0.85,
                               .delay_median = 20 * kHour,
                               .delay_sigma = 1.2,
                               .requests_min = 2,
                               .requests_max = 4,
                               .dns_weight = 1.0});
  spec.fleet_ases = {4134, 45090};
  spec.blocklisted_fraction = sc.dns_prober_blocklisted;
  return spec;
}

ExhibitorSpec vercara_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "VERCARA";
  spec.config.observe_probability = 0.50;
  spec.config.sees_http = spec.config.sees_tls = false;
  spec.config.waves.push_back({.probability = 0.90,
                               .delay_median = 2 * kHour,
                               .delay_sigma = 1.0,
                               .requests_min = 2,
                               .requests_max = 4,
                               .dns_weight = 1.0});
  spec.fleet_ases = {16509, 3356};
  spec.blocklisted_fraction = sc.dns_prober_blocklisted;
  return spec;
}

// -- on-wire observers --------------------------------------------------------

ExhibitorSpec cn_http_wire_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "CN-DPI-HTTP";
  spec.config.observe_probability = 0.07;
  spec.config.sees_dns = false;
  spec.config.sees_tls = false;
  // Short retention on routing devices (Figure 7): mostly minutes to hours.
  spec.config.waves.push_back({.probability = 0.90,
                               .delay_median = 15 * kMinute,
                               .delay_sigma = 1.6,
                               .requests_min = 1,
                               .requests_max = 3,
                               .dns_weight = 0.17,
                               .http_weight = 0.66,
                               .https_weight = 0.17,
                               .http_paths = 6});
  spec.fleet_ases = {4134, 140292};  // 85% of origins in local ISPs
  spec.blocklisted_fraction = sc.web_prober_blocklisted * 0.8;
  return spec;
}

ExhibitorSpec cn_tls_wire_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "CN-DPI-TLS";
  spec.config.observe_probability = 0.035;
  spec.config.sees_dns = false;
  spec.config.sees_http = false;
  spec.config.waves.push_back({.probability = 0.85,
                               .delay_median = 40 * kMinute,
                               .delay_sigma = 1.4,
                               .requests_min = 1,
                               .requests_max = 2,
                               .dns_weight = 0.3,
                               .http_weight = 0.2,
                               .https_weight = 0.5,
                               .http_paths = 4});
  spec.fleet_ases = {4134, 4812};
  spec.blocklisted_fraction = sc.web_prober_blocklisted;
  return spec;
}

ExhibitorSpec provincial_wire_spec(const std::string& name, std::uint32_t asn,
                                   const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = name;
  spec.config.observe_probability = 0.06;
  spec.config.sees_dns = false;
  spec.config.sees_tls = false;
  spec.config.waves.push_back({.probability = 0.85,
                               .delay_median = 30 * kMinute,
                               .delay_sigma = 1.3,
                               .requests_min = 1,
                               .requests_max = 2,
                               .dns_weight = 0.4,
                               .http_weight = 0.5,
                               .https_weight = 0.1,
                               .http_paths = 5});
  spec.fleet_ases = {asn};
  spec.blocklisted_fraction = sc.web_prober_blocklisted * 0.6;
  return spec;
}

/// AS40444 / AS29988: every observed HTTP decoy produces unsolicited DNS
/// queries from the observer's own network (Section 5.2).
ExhibitorSpec dns_only_wire_spec(const std::string& name, std::uint32_t asn,
                                 const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = name;
  spec.config.observe_probability = 0.85;
  spec.config.sees_dns = false;
  spec.config.sees_tls = false;
  spec.config.waves.push_back({.probability = 1.0,
                               .delay_median = 5 * kMinute,
                               .delay_sigma = 0.8,
                               .requests_min = 1,
                               .requests_max = 2,
                               .dns_weight = 1.0});
  spec.fleet_ases = {asn};
  spec.blocklisted_fraction = sc.dns_prober_blocklisted;
  return spec;
}

/// The thin tail of on-wire *DNS* observers (Table 3's DNS section:
/// HostRoyale, China Unicom Beijing, Zenlayer — 0.3% of DNS shadowing).
ExhibitorSpec dns_wire_misc_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "wire-dns-misc";
  spec.config.observe_probability = 0.008;
  spec.config.sees_http = spec.config.sees_tls = false;
  spec.config.waves.push_back({.probability = 0.9,
                               .delay_median = 10 * kMinute,
                               .delay_sigma = 1.0,
                               .requests_min = 1,
                               .requests_max = 2,
                               .dns_weight = 1.0});
  spec.fleet_ases = {203020, 4808, 21859};
  spec.blocklisted_fraction = sc.dns_prober_blocklisted;
  return spec;
}

ExhibitorSpec ad_wire_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "AD-observer";
  spec.config.observe_probability = 0.50;
  spec.config.sees_dns = false;
  spec.config.waves.push_back({.probability = 0.85,
                               .delay_median = 1 * kHour,
                               .delay_sigma = 1.2,
                               .requests_min = 1,
                               .requests_max = 2,
                               .dns_weight = 0.3,
                               .http_weight = 0.5,
                               .https_weight = 0.2,
                               .http_paths = 4});
  spec.fleet_ases = {9009};
  spec.blocklisted_fraction = sc.web_prober_blocklisted * 0.5;
  return spec;
}

ExhibitorSpec tls_destination_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "tls-destination-operators";
  spec.config.observe_probability = 0.55;
  spec.config.sees_dns = false;
  spec.config.sees_http = false;
  // Destination servers keep data longer than routers (Figure 7).
  spec.config.waves.push_back({.probability = 0.9,
                               .delay_median = 8 * kHour,
                               .delay_sigma = 1.5,
                               .requests_min = 1,
                               .requests_max = 3,
                               .dns_weight = 0.4,
                               .http_weight = 0.1,
                               .https_weight = 0.5,
                               .http_paths = 4});
  spec.fleet_ases = {16509, 8075};
  spec.blocklisted_fraction = sc.web_prober_blocklisted * 0.7;
  return spec;
}

ExhibitorSpec http_destination_spec(const ShadowConfig& sc) {
  ExhibitorSpec spec;
  spec.config.name = "http-destination-operators";
  spec.config.observe_probability = 0.35;
  spec.config.sees_dns = false;
  spec.config.sees_tls = false;
  spec.config.waves.push_back({.probability = 0.9,
                               .delay_median = 6 * kHour,
                               .delay_sigma = 1.2,
                               .requests_min = 1,
                               .requests_max = 2,
                               .dns_weight = 0.5,
                               .http_weight = 0.5,
                               .https_weight = 0.0,
                               .http_paths = 3});
  spec.fleet_ases = {16509};
  spec.blocklisted_fraction = sc.web_prober_blocklisted * 0.5;
  return spec;
}

void attach_resolver_hook(core::Testbed& bed, const std::string& resolver_name,
                          Exhibitor& exhibitor) {
  dnssrv::RecursiveResolver* resolver = bed.resolver(resolver_name);
  if (resolver == nullptr) return;
  resolver->add_client_query_observer([&exhibitor](const dnssrv::QueryLogEntry& entry) {
    exhibitor.observe(entry.time, entry.question.name, entry.client, entry.server_addr,
                      core::DecoyProtocol::kDns);
  });
}

void attach_tap(core::Testbed& bed, DeployedExhibitor& deployed, sim::NodeId router,
                WireTap::Filter filter, ShadowDeployment& out) {
  auto tap = std::make_unique<WireTap>(*deployed.exhibitor, filter);
  bed.net().add_tap(router, tap.get());
  deployed.taps.push_back(std::move(tap));
  deployed.tap_nodes.push_back(router);
  net::Ipv4Addr addr = bed.net().address(router);
  if (filter.dns) out.wire_observer_addrs_dns.insert(addr);
  if (filter.http) out.wire_observer_addrs_http.insert(addr);
  if (filter.tls) out.wire_observer_addrs_tls.insert(addr);
}

}  // namespace

std::set<net::Ipv4Addr> ShadowDeployment::all_wire_observer_addrs() const {
  std::set<net::Ipv4Addr> all = wire_observer_addrs_dns;
  all.insert(wire_observer_addrs_http.begin(), wire_observer_addrs_http.end());
  all.insert(wire_observer_addrs_tls.begin(), wire_observer_addrs_tls.end());
  return all;
}

const DeployedExhibitor* ShadowDeployment::find(const std::string& label) const {
  for (const auto& e : exhibitors) {
    if (e.label == label) return &e;
  }
  return nullptr;
}

ShadowDeployment deploy_standard_exhibitors(core::Testbed& bed, const ShadowConfig& config) {
  ShadowDeployment out;
  // Label-stable stream: derived from the master seed only, so toggling one
  // exhibitor class never perturbs another's randomness (ablation runs stay
  // comparable).
  Rng rng(bed.config().topology.seed ^ fnv1a("shadow-deployment"));
  const topo::Topology& topo = bed.topology();

  if (config.resolver_shadowing) {
    struct ResolverPlan {
      const char* resolver;  // testbed resolver instance to hook
      const char* truth;     // Resolver_h member name
      ExhibitorSpec spec;
    };
    std::vector<ResolverPlan> plans;
    plans.push_back({"Yandex", "Yandex", yandex_spec(config)});
    plans.push_back({"114DNS", "114DNS", dns114_spec(config)});  // CN instance only
    plans.push_back({"One DNS", "One DNS", onedns_spec(config)});
    plans.push_back({"DNS PAI", "DNS PAI", dnspai_spec(config)});
    plans.push_back({"VERCARA", "VERCARA", vercara_spec(config)});
    for (auto& plan : plans) {
      DeployedExhibitor deployed =
          instantiate(bed, std::string("resolver:") + plan.truth, std::move(plan.spec),
                      config, rng);
      attach_resolver_hook(bed, plan.resolver, *deployed.exhibitor);
      out.shadowing_resolvers.insert(plan.truth);
      out.exhibitors.push_back(std::move(deployed));
    }
  }

  if (config.wire_http_observers) {
    // CHINANET backbone: taps on every province aggregation router plus the
    // national gateway — the heaviest observer of Table 3.
    DeployedExhibitor cn = instantiate(bed, "wire:AS4134", cn_http_wire_spec(config),
                                       config, rng);
    WireTap::Filter http_only{.dns = false, .http = true, .tls = false};
    for (const auto& province : topo::cn_provinces()) {
      sim::NodeId agg = topo.province_aggregation(province);
      if (agg != sim::kInvalidNode) attach_tap(bed, cn, agg, http_only, out);
    }
    attach_tap(bed, cn, topo.national_gateway("CN"), http_only, out);
    out.exhibitors.push_back(std::move(cn));

    // Provincial ISP observers (Table 3's Hubei / Jiangsu rows).
    struct Provincial {
      const char* name;
      std::uint32_t asn;
    };
    for (const auto& p : std::vector<Provincial>{{"wire:AS58563", 58563},
                                                 {"wire:AS137697", 137697},
                                                 {"wire:AS23650", 23650},
                                                 {"wire:AS4812", 4812}}) {
      const topo::AsRecord* as = topo.as_by_number(p.asn);
      if (as == nullptr) continue;
      DeployedExhibitor deployed =
          instantiate(bed, p.name, provincial_wire_spec(p.name, p.asn, config), config, rng);
      attach_tap(bed, deployed, as->border, http_only, out);
      out.exhibitors.push_back(std::move(deployed));
    }

    // The long tail of provincial DPI deployments: every other CN province
    // gets a low-intensity HTTP observer at its provincial ISP border — the
    // bulk of the paper's 448 CN observer addresses.
    {
      ExhibitorSpec tail_spec = provincial_wire_spec("CN-provincial-tail", 4134, config);
      tail_spec.config.observe_probability = 0.04;
      DeployedExhibitor tail =
          instantiate(bed, "wire:CN-provincial-tail", std::move(tail_spec), config, rng);
      std::set<std::uint32_t> named = {58563, 137697, 23650, 4812};
      for (const auto& as : topo.ases()) {
        if (as.country != "CN" || as.subdivision.empty() ||
            as.type != intel::PrefixType::kIsp || named.count(as.asn) > 0) {
          continue;
        }
        attach_tap(bed, tail, as.border, http_only, out);
      }
      out.exhibitors.push_back(std::move(tail));
    }

    // US / CA observers answering exclusively with DNS from their own ASes.
    for (const auto& p : std::vector<Provincial>{{"wire:AS40444", 40444},
                                                 {"wire:AS29988", 29988}}) {
      const topo::AsRecord* as = topo.as_by_number(p.asn);
      if (as == nullptr) continue;
      DeployedExhibitor deployed =
          instantiate(bed, p.name, dns_only_wire_spec(p.name, p.asn, config), config, rng);
      attach_tap(bed, deployed, as->border, http_only, out);
      out.exhibitors.push_back(std::move(deployed));
    }

    // AD: the small-country destination of Figure 3.
    DeployedExhibitor ad = instantiate(bed, "wire:AD", ad_wire_spec(config), config, rng);
    attach_tap(bed, ad, topo.national_gateway("AD"),
               {.dns = false, .http = true, .tls = true}, out);
    out.exhibitors.push_back(std::move(ad));

    // The thin on-wire DNS observer tail (Table 3, DNS rows).
    DeployedExhibitor misc = instantiate(bed, "wire:dns-misc", dns_wire_misc_spec(config),
                                         config, rng);
    WireTap::Filter dns_only{.dns = true, .http = false, .tls = false};
    for (std::uint32_t asn : {203020U, 4808U, 21859U}) {
      const topo::AsRecord* as = topo.as_by_number(asn);
      if (as != nullptr) attach_tap(bed, misc, as->border, dns_only, out);
    }
    out.exhibitors.push_back(std::move(misc));
  }

  if (config.wire_tls_observers) {
    DeployedExhibitor tls = instantiate(bed, "wire:AS4134-tls", cn_tls_wire_spec(config),
                                        config, rng);
    WireTap::Filter tls_only{.dns = false, .http = false, .tls = true};
    attach_tap(bed, tls, topo.national_gateway("CN"), tls_only, out);
    for (const char* province :
         {"Jiangsu", "Shanghai", "Beijing", "Guangdong", "Zhejiang"}) {
      sim::NodeId agg = topo.province_aggregation(province);
      if (agg != sim::kInvalidNode) attach_tap(bed, tls, agg, tls_only, out);
    }
    out.exhibitors.push_back(std::move(tls));
  }

  if (config.tls_destination_shadowers) {
    // Destination-side observation is a sniffer in front of the server (the
    // paper locates 65% of TLS observers at the destination even though the
    // Phase-II sweep performs no handshakes — only a packet-level tap can
    // see those ClientHellos). The taps sit on the destination host node
    // itself, so located findings land at normalized hop 10 with no ICMP
    // address — exactly the destination signature.
    DeployedExhibitor tls_dest = instantiate(bed, "dest:tls-operators",
                                             tls_destination_spec(config), config, rng);
    DeployedExhibitor http_dest = instantiate(bed, "dest:http-operators",
                                              http_destination_spec(config), config, rng);
    WireTap::Filter tls_only{.dns = false, .http = false, .tls = true};
    WireTap::Filter http_only{.dns = false, .http = true, .tls = false};
    Rng site_rng(bed.config().topology.seed ^ fnv1a("site-picks"));
    int tls_sites = 0;
    auto tap_site_tls = [&](sim::NodeId node) {
      auto tap = std::make_unique<WireTap>(*tls_dest.exhibitor, tls_only,
                                           /*terminating=*/true);
      bed.net().add_tap(node, tap.get());
      tls_dest.taps.push_back(std::move(tap));
      tls_dest.tap_nodes.push_back(node);
      ++tls_sites;
    };
    for (const auto& site : topo.web_sites()) {
      // Site operators retaining SNI data concentrate in the destination
      // countries Figure 3 highlights (CN, AD, US, CA); a thin tail exists
      // everywhere. A small slice of operators mine Host headers too.
      // (Deliberately not registered as *wire* observers: these are
      // destination-side ground truth.)
      bool hotspot = site.country == "CN" || site.country == "AD" ||
                     site.country == "US" || site.country == "CA";
      if (site_rng.chance(hotspot ? 0.30 : 0.05)) tap_site_tls(site.node);
      if (site_rng.chance(0.02)) {
        auto tap = std::make_unique<WireTap>(*http_dest.exhibitor, http_only);
        bed.net().add_tap(site.node, tap.get());
        http_dest.taps.push_back(std::move(tap));
        http_dest.tap_nodes.push_back(site.node);
      }
    }
    // The paper's Table-2 TLS column guarantees destination observers
    // exist; tiny scaled-down farms keep at least one.
    if (tls_sites == 0 && !topo.web_sites().empty()) {
      tap_site_tls(topo.web_sites().front().node);
    }
    out.exhibitors.push_back(std::move(tls_dest));
    out.exhibitors.push_back(std::move(http_dest));
  }

  // Management services on a minority of observer routers: ~8% expose a
  // BGP port (plus the odd SSH), the rest stay dark — what the Section 5.2
  // port scan should find.
  {
    Rng svc_rng(bed.config().topology.seed ^ fnv1a("router-services"));
    std::set<sim::NodeId> tapped;
    for (const auto& deployed : out.exhibitors) {
      for (sim::NodeId node : deployed.tap_nodes) tapped.insert(node);
    }
    for (sim::NodeId router : tapped) {
      // Only actual routers: destination-side taps sit on hosts that already
      // run their own services.
      if (bed.net().kind(router) != sim::NodeKind::kRouter) continue;
      if (!svc_rng.chance(0.08)) continue;
      std::vector<std::uint16_t> ports = {179};
      if (svc_rng.chance(0.25)) ports.push_back(22);
      auto services = std::make_unique<RouterServices>(
          svc_rng.fork("svc-" + std::to_string(router)), ports);
      services->bind(bed.net(), router);
      out.routers_with_open_ports.insert(bed.net().address(router));
      out.router_services.push_back(std::move(services));
    }
  }

  if (config.dns_interception_noise) {
    // Replicating interception middleboxes: two CN provinces and one TR
    // network (Appendix E's noise the pair-resolver screen must catch).
    Rng icpt_rng(bed.config().topology.seed ^ fnv1a("interceptors"));
    std::vector<sim::NodeId> routers;
    for (const auto& as : topo.ases()) {
      if (as.country == "CN" && (as.subdivision == "Guangdong" || as.subdivision == "Sichuan") &&
          as.type == intel::PrefixType::kIsp) {
        routers.push_back(as.border);
      }
      if (as.country == "TR" && as.type == intel::PrefixType::kIsp) {
        routers.push_back(as.border);
      }
    }
    for (sim::NodeId router : routers) {
      net::Ipv4Addr spoof_target(net::Ipv4Addr(198, 18, 0, 1));  // benchmarking range
      auto interceptor = std::make_unique<DnsInterceptor>(
          spoof_target, icpt_rng.fork("icpt-" + std::to_string(router)));
      bed.net().add_tap(router, interceptor.get());
      out.interceptors.push_back(std::move(interceptor));
      out.interceptor_nodes.push_back(router);
    }
  }

  return out;
}

}  // namespace shadowprobe::shadow
