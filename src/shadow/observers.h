// Observer attachments: how exhibitors get to see traffic.
//
// WireTap is a passive DPI device on a router: it parses passing datagrams
// for the three clear-text name fields (DNS QNAME, HTTP Host, TLS SNI) and
// feeds an Exhibitor. A tap sees a decoy only if the decoy's TTL sufficed
// to reach its hop — which is exactly the property Phase II's TTL sweep
// exploits to locate it.
//
// DnsInterceptor models the Appendix-E noise source: a replicating DNS
// interception middlebox that answers queries crossing its router with a
// response spoofed from the *destination* address. It answers queries to
// non-serving "pair resolver" addresses too, which is how the paper's
// pair-resolver screen detects and removes affected vantage points.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/dns.h"
#include "shadow/exhibitor.h"
#include "sim/network.h"
#include "sim/tcp_stack.h"

namespace shadowprobe::shadow {

class WireTap : public sim::PacketTap {
 public:
  struct Filter {
    bool dns = true;
    bool http = true;
    bool tls = true;
  };

  /// `terminating` marks a tap at the session's terminating party (e.g. a
  /// destination-side sniffer with access to the server's keys): it can
  /// recover ECH inner names, which pure on-path devices cannot.
  WireTap(Exhibitor& exhibitor, Filter filter, bool terminating = false)
      : exhibitor_(exhibitor), filter_(filter), terminating_(terminating) {}

  void on_packet(sim::Network& net, sim::NodeId node,
                 const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] std::uint64_t parsed() const noexcept { return parsed_; }

 private:
  Exhibitor& exhibitor_;
  Filter filter_;
  bool terminating_ = false;
  std::uint64_t parsed_ = 0;
};

/// Management plane of an observer router that exposes services: a small
/// TCP stack answering its open ports (most commonly BGP/179) and RST-ing
/// the rest. Routers without RouterServices stay silent — the "filtered"
/// majority (92%) of the paper's observer port scan.
class RouterServices : public sim::DatagramHandler {
 public:
  RouterServices(Rng rng, std::vector<std::uint16_t> open_ports)
      : rng_(rng), open_ports_(std::move(open_ports)) {}

  void bind(sim::Network& net, sim::NodeId router);

  void on_datagram(sim::Network& net, sim::NodeId self,
                   const net::Ipv4Datagram& dgram) override;

 private:
  Rng rng_;
  std::vector<std::uint16_t> open_ports_;
  std::unique_ptr<sim::TcpStack> tcp_;
};

class DnsInterceptor : public sim::PacketTap {
 public:
  /// `spoofed_answer` is the A record the middlebox injects for every
  /// intercepted query (interceptors typically front a local cache or
  /// filtering resolver).
  DnsInterceptor(net::Ipv4Addr spoofed_answer, Rng rng)
      : answer_(spoofed_answer), rng_(rng) {}

  void on_packet(sim::Network& net, sim::NodeId node,
                 const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] std::uint64_t intercepted() const noexcept { return intercepted_; }

 private:
  net::Ipv4Addr answer_;
  Rng rng_;
  std::uint64_t intercepted_ = 0;
};

}  // namespace shadowprobe::shadow
