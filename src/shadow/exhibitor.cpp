#include "shadow/exhibitor.h"

#include <algorithm>
#include <string>

namespace shadowprobe::shadow {

void Exhibitor::observe(SimTime now, const net::DnsName& domain, net::Ipv4Addr client,
                        net::Ipv4Addr server, core::DecoyProtocol seen_in) {
  switch (seen_in) {
    case core::DecoyProtocol::kDns:
      if (!config_.sees_dns) return;
      break;
    case core::DecoyProtocol::kHttp:
      if (!config_.sees_http) return;
      break;
    case core::DecoyProtocol::kTls:
      if (!config_.sees_tls) return;
      break;
  }
  // An exhibitor recognizes (and does not re-harvest) its own probing
  // traffic passing back through the networks it watches.
  for (const ProberHost* prober : probers_) {
    if (prober->addr() == client) return;
  }
  if (seen_.count(domain) > 0) return;
  // Monitoring is selected per (client, server) pair, deterministically: a
  // DPI device either watches a flow pair or it does not. The decision is
  // *derived* from the pair — not drawn from a shared stream — so it never
  // depends on what else this exhibitor has seen. This is also what makes
  // the Phase-II TTL sweep crisp: every variant of a monitored path is
  // observed once it reaches the device's hop, so the smallest triggering
  // TTL is exactly the device's hop.
  Rng pair_rng = rng_.derive("mon:" + client.str() + ">" + server.str());
  if (!pair_rng.chance(config_.observe_probability)) return;
  seen_.insert(domain);

  Observation obs;
  obs.captured = now;
  obs.domain = domain;
  obs.client = client;
  obs.server = server;
  obs.seen_in = seen_in;
  std::size_t item = store_.record(std::move(obs));
  // Replay randomness is keyed by the observed domain: one behavioural
  // stream per observation, one sub-stream per wave.
  Rng obs_rng = rng_.derive("obs:" + domain.str());
  for (std::size_t wi = 0; wi < config_.waves.size(); ++wi) {
    const ReplayWave& wave = config_.waves[wi];
    Rng wave_rng = obs_rng.derive("wave-" + std::to_string(wi));
    if (wave_rng.chance(wave.probability)) schedule_wave(item, wave, wave_rng);
  }
}

void Exhibitor::schedule_wave(std::size_t item, const ReplayWave& wave, Rng wave_rng) {
  int requests = static_cast<int>(wave_rng.range(wave.requests_min, wave.requests_max));
  for (int i = 0; i < requests; ++i) {
    double seconds = wave_rng.lognormal(to_seconds(wave.delay_median), wave.delay_sigma);
    seconds = std::max(seconds, to_seconds(wave.delay_floor));
    // Capture wave parameters by value: profiles outlive the deployment but
    // the lambda must not reference caller stack frames. Each request gets
    // its own derived stream so firing order cannot skew later draws.
    ReplayWave w = wave;
    Rng request_rng = wave_rng.derive("req-" + std::to_string(i));
    loop_.schedule(from_seconds(seconds), [this, item, w, request_rng]() mutable {
      fire_request(item, w, request_rng);
    });
  }
}

void Exhibitor::fire_request(std::size_t item, const ReplayWave& wave, Rng& rng) {
  if (probers_.empty()) return;
  const Observation& obs = store_.at(item);
  std::size_t pick = rng.weighted({wave.dns_weight, wave.http_weight, wave.https_weight});
  const std::vector<ProberHost*>& pool =
      pick == 0 ? (dns_probers_.empty() ? probers_ : dns_probers_)
                : (web_probers_.empty() ? probers_ : web_probers_);
  ProberHost* prober = pool[static_cast<std::size_t>(rng.below(pool.size()))];
  switch (pick) {
    case 0:
      prober->probe_dns(obs.domain, config_.probe_resolver);
      break;
    case 1:
      prober->probe_http(obs.domain, config_.probe_resolver, wave.http_paths);
      break;
    default:
      prober->probe_https(obs.domain, config_.probe_resolver);
      break;
  }
  store_.count_replay(item);
}

}  // namespace shadowprobe::shadow
