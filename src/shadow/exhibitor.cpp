#include "shadow/exhibitor.h"

#include <algorithm>

namespace shadowprobe::shadow {

void Exhibitor::observe(SimTime now, const net::DnsName& domain, net::Ipv4Addr client,
                        net::Ipv4Addr server, core::DecoyProtocol seen_in) {
  switch (seen_in) {
    case core::DecoyProtocol::kDns:
      if (!config_.sees_dns) return;
      break;
    case core::DecoyProtocol::kHttp:
      if (!config_.sees_http) return;
      break;
    case core::DecoyProtocol::kTls:
      if (!config_.sees_tls) return;
      break;
  }
  // An exhibitor recognizes (and does not re-harvest) its own probing
  // traffic passing back through the networks it watches.
  for (const ProberHost* prober : probers_) {
    if (prober->addr() == client) return;
  }
  if (seen_.count(domain) > 0) return;
  auto [pair_it, fresh] = monitored_.try_emplace({client, server}, false);
  if (fresh) pair_it->second = rng_.chance(config_.observe_probability);
  if (!pair_it->second) return;
  seen_.insert(domain);

  Observation obs;
  obs.captured = now;
  obs.domain = domain;
  obs.client = client;
  obs.server = server;
  obs.seen_in = seen_in;
  std::size_t item = store_.record(std::move(obs));
  for (const auto& wave : config_.waves) {
    if (rng_.chance(wave.probability)) schedule_wave(item, wave);
  }
}

void Exhibitor::schedule_wave(std::size_t item, const ReplayWave& wave) {
  int requests = static_cast<int>(rng_.range(wave.requests_min, wave.requests_max));
  for (int i = 0; i < requests; ++i) {
    double seconds = rng_.lognormal(to_seconds(wave.delay_median), wave.delay_sigma);
    seconds = std::max(seconds, to_seconds(wave.delay_floor));
    // Capture wave parameters by value: profiles outlive the deployment but
    // the lambda must not reference caller stack frames.
    ReplayWave w = wave;
    loop_.schedule(from_seconds(seconds), [this, item, w] { fire_request(item, w); });
  }
}

void Exhibitor::fire_request(std::size_t item, const ReplayWave& wave) {
  if (probers_.empty()) return;
  const Observation& obs = store_.at(item);
  std::size_t pick = rng_.weighted({wave.dns_weight, wave.http_weight, wave.https_weight});
  const std::vector<ProberHost*>& pool =
      pick == 0 ? (dns_probers_.empty() ? probers_ : dns_probers_)
                : (web_probers_.empty() ? probers_ : web_probers_);
  ProberHost* prober = pool[static_cast<std::size_t>(rng_.below(pool.size()))];
  switch (pick) {
    case 0:
      prober->probe_dns(obs.domain, config_.probe_resolver);
      break;
    case 1:
      prober->probe_http(obs.domain, config_.probe_resolver, wave.http_paths);
      break;
    default:
      prober->probe_https(obs.domain, config_.probe_resolver);
      break;
  }
  store_.count_replay(item);
}

}  // namespace shadowprobe::shadow
