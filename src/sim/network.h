// Simulated IPv4 network: nodes (hosts and routers), links with latency,
// longest-prefix-match forwarding, per-hop TTL decrement with ICMP
// Time-Exceeded generation, and packet taps.
//
// This is the substrate substituting for the live Internet (see DESIGN.md):
// Phase II of the methodology depends only on TTL expiry semantics and ICMP
// error quoting, both implemented here to RFC behaviour. Packet taps are the
// attachment point for on-wire traffic observers (src/shadow) — a tap sees a
// datagram exactly when the device at that hop physically receives it, i.e.
// only when the sender's initial TTL was large enough to reach the hop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/flat_map.h"
#include "common/stats.h"
#include "common/time.h"
#include "net/icmp.h"
#include "net/ipv4.h"
#include "sim/event_loop.h"
#include "sim/routing.h"

namespace shadowprobe::sim {

class FaultInjector;
class Network;

/// Application layer of a node: receives datagrams addressed to it.
class DatagramHandler {
 public:
  virtual ~DatagramHandler() = default;
  virtual void on_datagram(Network& net, NodeId self, const net::Ipv4Datagram& dgram) = 0;
};

/// Passive on-path observer: sees every datagram that *arrives at* the
/// tapped node (whether it is then delivered, forwarded, or dropped for TTL).
class PacketTap {
 public:
  virtual ~PacketTap() = default;
  virtual void on_packet(Network& net, NodeId node, const net::Ipv4Datagram& dgram) = 0;
};

enum class NodeKind { kHost, kRouter };

enum class DropReason {
  kNoRoute,       // no route onward from the current hop
  kTtlExpired,    // TTL reached zero in transit
  kLinkLoss,      // injected Bernoulli per-link packet loss
  kLinkDown,      // injected scheduled link flap window
  kEndpointDown,  // origin or destination node inside an outage window
};

/// Stable lowercase name for reports and JSON ("no_route", "link_loss", ...).
[[nodiscard]] const char* drop_reason_name(DropReason reason) noexcept;

/// Snapshot of a network's traffic counters, mergeable across shard
/// replicas for the campaign-level coverage report.
struct NetworkCounters {
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t no_route = 0;
  std::uint64_t ttl_expired = 0;
  std::uint64_t link_loss = 0;
  std::uint64_t link_down = 0;
  std::uint64_t endpoint_down = 0;

  void absorb(const NetworkCounters& other) noexcept {
    delivered += other.delivered;
    forwarded += other.forwarded;
    no_route += other.no_route;
    ttl_expired += other.ttl_expired;
    link_loss += other.link_loss;
    link_down += other.link_down;
    endpoint_down += other.endpoint_down;
  }
};

class Network {
 public:
  explicit Network(EventLoop& loop) : loop_(loop) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // -- topology construction ------------------------------------------------

  NodeId add_router(std::string name, net::Ipv4Addr addr);
  NodeId add_host(std::string name, net::Ipv4Addr addr, DatagramHandler* handler);
  /// Additional local address (multi-homed honeypots).
  void add_address(NodeId node, net::Ipv4Addr addr);
  /// Anycast: registers `addr` as local to `node` without claiming global
  /// ownership, so several instances may serve the same address; routing
  /// tables decide which instance a given client reaches (exactly how
  /// 114DNS's CN and US instances differ in the paper's case study II).
  void add_anycast_address(NodeId node, net::Ipv4Addr addr);
  /// Routers normally have no application layer; attaching one lets a
  /// router answer probes (used by the observer port-scan study).
  void set_handler(NodeId node, DatagramHandler* handler);

  RoutingTable& routes(NodeId node);
  /// Symmetric per-link propagation delay; unset links use default_latency.
  void set_link_latency(NodeId a, NodeId b, SimDuration latency);
  void set_default_latency(SimDuration latency) noexcept { default_latency_ = latency; }

  void add_tap(NodeId node, PacketTap* tap);
  void remove_tap(NodeId node, PacketTap* tap);

  /// Attaches a fault injector (nullptr detaches). With no injector attached
  /// — or with the null profile — every code path is byte-identical to a
  /// fault-free network. The injector is not owned and must outlive its use.
  void set_fault_injector(FaultInjector* injector) noexcept { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept { return injector_; }

  // -- traffic --------------------------------------------------------------

  /// Emits a datagram from `from`'s network stack. The origin's routing
  /// table picks the first hop; the origin does not decrement its own TTL.
  void send(NodeId from, net::Ipv4Header header, BytesView payload);

  // -- introspection --------------------------------------------------------

  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] SimTime now() const noexcept { return loop_.now(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& name(NodeId node) const;
  [[nodiscard]] NodeKind kind(NodeId node) const;
  [[nodiscard]] net::Ipv4Addr address(NodeId node) const;
  /// Node owning `addr` as a local address; kInvalidNode when unowned.
  [[nodiscard]] NodeId owner_of(net::Ipv4Addr addr) const;

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] const Counter<int>& drops() const noexcept { return drops_; }
  /// Mergeable snapshot of delivered/forwarded/drop counters.
  [[nodiscard]] NetworkCounters counters() const noexcept;
  /// Packets dropped because a node was inside an outage window, keyed by
  /// NodeId (two distinct nodes that happen to share a name keep separate
  /// counters; translate via name() only at report/JSON time). Used to
  /// attribute honeypot-downtime hits.
  [[nodiscard]] const FlatMap<NodeId, std::uint64_t>& endpoint_drops() const noexcept {
    return endpoint_drops_;
  }

 private:
  struct Node {
    std::string name;
    NodeKind kind = NodeKind::kHost;
    net::Ipv4Addr primary;
    std::vector<net::Ipv4Addr> addresses;
    DatagramHandler* handler = nullptr;
    RoutingTable routes;
    std::vector<PacketTap*> taps;
  };

  NodeId add_node(std::string name, NodeKind kind, net::Ipv4Addr addr,
                  DatagramHandler* handler);
  void arrive(NodeId node, net::Ipv4Header header, Bytes payload);
  void forward(NodeId node, net::Ipv4Header header, Bytes payload, bool decrement_ttl);
  void emit_time_exceeded(NodeId router, const net::Ipv4Header& header, BytesView payload);
  [[nodiscard]] SimDuration latency(NodeId a, NodeId b) const;
  [[nodiscard]] bool is_local(const Node& n, net::Ipv4Addr addr) const;

  EventLoop& loop_;
  std::vector<Node> nodes_;
  // Per-packet lookup tables: open-addressing flat maps (no per-node
  // allocation, no pointer chasing); neither is ever iterated for output.
  FlatMap<net::Ipv4Addr, NodeId> addr_owner_;
  FlatMap<std::pair<NodeId, NodeId>, SimDuration> link_latency_;
  SimDuration default_latency_ = 5 * kMillisecond;
  FaultInjector* injector_ = nullptr;

  std::uint64_t delivered_ = 0;
  std::uint64_t forwarded_ = 0;
  Counter<int> drops_;  // keyed by static_cast<int>(DropReason)
  FlatMap<NodeId, std::uint64_t> endpoint_drops_;  // by downed node id
};

}  // namespace shadowprobe::sim
