// Simulated IPv4 network: nodes (hosts and routers), links with latency,
// longest-prefix-match forwarding, per-hop TTL decrement with ICMP
// Time-Exceeded generation, and packet taps.
//
// This is the substrate substituting for the live Internet (see DESIGN.md):
// Phase II of the methodology depends only on TTL expiry semantics and ICMP
// error quoting, both implemented here to RFC behaviour. Packet taps are the
// attachment point for on-wire traffic observers (src/shadow) — a tap sees a
// datagram exactly when the device at that hop physically receives it, i.e.
// only when the sender's initial TTL was large enough to reach the hop.
//
// The structural plan (names, addresses, routing tables, link latencies) is
// split out into NetworkLayout so that many Network instances — one per
// campaign shard — can run traffic over one immutable, shared layout:
//
//   - An *authoring* Network owns a private mutable layout and accepts the
//     topology-construction calls (add_router, add_host, routes(), ...).
//   - freeze_layout() seals that layout into a shared const snapshot.
//   - A *frozen* Network is constructed over such a snapshot; structural
//     mutators throw, and the node-creation calls the construction code
//     would make are instead replayed as order-verified lookups
//     (replay_host) against the dynamic tail of the layout.
//
// Per-instance state — attached handlers, taps, traffic counters, the fault
// injector — stays in the Network, so frozen instances never contend.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/flat_map.h"
#include "common/stats.h"
#include "common/time.h"
#include "net/icmp.h"
#include "net/ipv4.h"
#include "sim/event_loop.h"
#include "sim/routing.h"

namespace shadowprobe::sim {

class FaultInjector;
class Network;

/// Application layer of a node: receives datagrams addressed to it.
class DatagramHandler {
 public:
  virtual ~DatagramHandler() = default;
  virtual void on_datagram(Network& net, NodeId self, const net::Ipv4Datagram& dgram) = 0;
};

/// Passive on-path observer: sees every datagram that *arrives at* the
/// tapped node (whether it is then delivered, forwarded, or dropped for TTL).
class PacketTap {
 public:
  virtual ~PacketTap() = default;
  virtual void on_packet(Network& net, NodeId node, const net::Ipv4Datagram& dgram) = 0;
};

enum class NodeKind { kHost, kRouter };

enum class DropReason {
  kNoRoute,       // no route onward from the current hop
  kTtlExpired,    // TTL reached zero in transit
  kLinkLoss,      // injected Bernoulli per-link packet loss
  kLinkDown,      // injected scheduled link flap window
  kEndpointDown,  // origin or destination node inside an outage window
};

/// Stable lowercase name for reports and JSON ("no_route", "link_loss", ...).
[[nodiscard]] const char* drop_reason_name(DropReason reason) noexcept;

/// Injected drops attributed to one (undirected) link, identified by the
/// lexicographically ordered endpoint names so the key is replica- and
/// direction-independent. The per-link breakdown backs the top-offenders
/// table in the coverage report.
struct LinkDropCounters {
  std::string node_a;  // lexicographically <= node_b
  std::string node_b;
  std::uint64_t link_loss = 0;
  std::uint64_t link_down = 0;

  [[nodiscard]] std::uint64_t total() const noexcept { return link_loss + link_down; }
};

/// Merges `from` into `into` by link key, keeping the canonical order
/// (ascending by node_a, then node_b). Both inputs must already be in that
/// order — which counters() guarantees — so the merge is deterministic for
/// any shard layout.
void merge_link_drops(std::vector<LinkDropCounters>& into,
                      const std::vector<LinkDropCounters>& from);

/// Snapshot of a network's traffic counters, mergeable across shard
/// replicas for the campaign-level coverage report.
struct NetworkCounters {
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t no_route = 0;
  std::uint64_t ttl_expired = 0;
  std::uint64_t link_loss = 0;
  std::uint64_t link_down = 0;
  std::uint64_t endpoint_down = 0;
  /// Injected drops by link, canonically ordered (node_a, node_b) ascending.
  /// Sums to link_loss/link_down.
  std::vector<LinkDropCounters> per_link;

  void absorb(const NetworkCounters& other) {
    delivered += other.delivered;
    forwarded += other.forwarded;
    no_route += other.no_route;
    ttl_expired += other.ttl_expired;
    link_loss += other.link_loss;
    link_down += other.link_down;
    endpoint_down += other.endpoint_down;
    merge_link_drops(per_link, other.per_link);
  }
};

/// The immutable structural plan of a network: per-node identity, addresses
/// and routing tables, plus the global address-ownership and link-latency
/// tables. Built through an authoring Network, sealed by freeze_layout(),
/// and then safely shared (const) by any number of frozen Networks across
/// threads — nothing here is written during a run.
class NetworkLayout {
 public:
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& name(NodeId node) const { return nodes_.at(node).name; }
  [[nodiscard]] NodeKind kind(NodeId node) const { return nodes_.at(node).kind; }
  [[nodiscard]] net::Ipv4Addr address(NodeId node) const { return nodes_.at(node).primary; }
  [[nodiscard]] NodeId owner_of(net::Ipv4Addr addr) const {
    const NodeId* owner = addr_owner_.find(addr);
    return owner == nullptr ? kInvalidNode : *owner;
  }

 private:
  friend class Network;

  struct Node {
    std::string name;
    NodeKind kind = NodeKind::kHost;
    net::Ipv4Addr primary;
    std::vector<net::Ipv4Addr> addresses;
    RoutingTable routes;
  };

  // Per-packet lookup tables: open-addressing flat maps (no per-node
  // allocation, no pointer chasing); neither is ever iterated for output.
  std::vector<Node> nodes_;
  FlatMap<net::Ipv4Addr, NodeId> addr_owner_;
  FlatMap<std::pair<NodeId, NodeId>, SimDuration> link_latency_;
  SimDuration default_latency_ = 5 * kMillisecond;
};

class Network {
 public:
  /// Authoring network: owns a private mutable layout.
  explicit Network(EventLoop& loop);
  /// Frozen network over a shared layout. Node-creation calls made after
  /// `replay_from` during authoring are replayed via replay_host(), which
  /// verifies names in order; structural mutators throw.
  Network(EventLoop& loop, std::shared_ptr<const NetworkLayout> layout, NodeId replay_from);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // -- topology construction (authoring mode; throws when frozen) -----------

  NodeId add_router(std::string name, net::Ipv4Addr addr);
  NodeId add_host(std::string name, net::Ipv4Addr addr, DatagramHandler* handler);
  /// Additional local address (multi-homed honeypots).
  void add_address(NodeId node, net::Ipv4Addr addr);
  /// Anycast: registers `addr` as local to `node` without claiming global
  /// ownership, so several instances may serve the same address; routing
  /// tables decide which instance a given client reaches (exactly how
  /// 114DNS's CN and US instances differ in the paper's case study II).
  void add_anycast_address(NodeId node, net::Ipv4Addr addr);

  RoutingTable& routes(NodeId node);
  /// Symmetric per-link propagation delay; unset links use default_latency.
  void set_link_latency(NodeId a, NodeId b, SimDuration latency);
  void set_default_latency(SimDuration latency);

  /// Seals the authoring layout: returns it as a shared const snapshot and
  /// switches this instance to frozen mode. Further structural calls throw.
  std::shared_ptr<const NetworkLayout> freeze_layout();
  [[nodiscard]] bool frozen() const noexcept { return owned_ == nullptr; }
  [[nodiscard]] const std::shared_ptr<const NetworkLayout>& layout() const noexcept {
    return layout_;
  }

  // -- per-instance attachment (allowed in both modes) -----------------------

  /// Routers normally have no application layer; attaching one lets a
  /// router answer probes (used by the observer port-scan study).
  void set_handler(NodeId node, DatagramHandler* handler);
  /// Frozen-mode counterpart of add_host: consumes the next dynamic layout
  /// node, verifying the construction order by name (a mismatch means the
  /// caller's node-creation sequence diverged from the authoring run — a
  /// determinism bug, so it throws rather than mis-wires).
  NodeId replay_host(const std::string& name, DatagramHandler* handler);

  void add_tap(NodeId node, PacketTap* tap);
  void remove_tap(NodeId node, PacketTap* tap);

  /// Attaches a fault injector (nullptr detaches). With no injector attached
  /// — or with the null profile — every code path is byte-identical to a
  /// fault-free network. The injector is not owned and must outlive its use.
  void set_fault_injector(FaultInjector* injector) noexcept { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept { return injector_; }

  // -- traffic --------------------------------------------------------------

  /// Emits a datagram from `from`'s network stack. The origin's routing
  /// table picks the first hop; the origin does not decrement its own TTL.
  void send(NodeId from, net::Ipv4Header header, BytesView payload);

  // -- introspection --------------------------------------------------------

  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] SimTime now() const noexcept { return loop_.now(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return layout_->node_count(); }
  [[nodiscard]] const std::string& name(NodeId node) const { return layout_->name(node); }
  [[nodiscard]] NodeKind kind(NodeId node) const { return layout_->kind(node); }
  [[nodiscard]] net::Ipv4Addr address(NodeId node) const { return layout_->address(node); }
  /// Node owning `addr` as a local address; kInvalidNode when unowned.
  [[nodiscard]] NodeId owner_of(net::Ipv4Addr addr) const { return layout_->owner_of(addr); }

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] const Counter<int>& drops() const noexcept { return drops_; }
  /// Mergeable snapshot of delivered/forwarded/drop counters.
  [[nodiscard]] NetworkCounters counters() const;
  /// Packets dropped because a node was inside an outage window, keyed by
  /// NodeId (two distinct nodes that happen to share a name keep separate
  /// counters; translate via name() only at report/JSON time). Used to
  /// attribute honeypot-downtime hits.
  [[nodiscard]] const FlatMap<NodeId, std::uint64_t>& endpoint_drops() const noexcept {
    return endpoint_drops_;
  }

 private:
  /// Per-instance attachment state of a node; parallel to the layout's node
  /// array. This — not the layout — is what a shard mutates at runtime.
  struct Attach {
    DatagramHandler* handler = nullptr;
    std::vector<PacketTap*> taps;
  };

  NodeId add_node(std::string name, NodeKind kind, net::Ipv4Addr addr,
                  DatagramHandler* handler);
  /// The mutable layout; throws std::logic_error when frozen.
  NetworkLayout& mutable_layout();
  void arrive(NodeId node, net::Ipv4Header header, Bytes payload);
  void forward(NodeId node, net::Ipv4Header header, Bytes payload, bool decrement_ttl);
  void emit_time_exceeded(NodeId router, const net::Ipv4Header& header, BytesView payload);
  [[nodiscard]] SimDuration latency(NodeId a, NodeId b) const;
  [[nodiscard]] bool is_local(NodeId node, net::Ipv4Addr addr) const;

  EventLoop& loop_;
  std::shared_ptr<NetworkLayout> owned_;          // authoring; null once frozen
  std::shared_ptr<const NetworkLayout> layout_;   // always valid (== owned_ while authoring)
  std::vector<Attach> attach_;
  NodeId replay_cursor_ = kInvalidNode;           // next dynamic node (frozen ctor only)
  FaultInjector* injector_ = nullptr;

  /// Loss/down tallies for one link, keyed by the unordered node-id pair.
  struct LinkDrops {
    std::uint64_t loss = 0;
    std::uint64_t down = 0;
  };

  std::uint64_t delivered_ = 0;
  std::uint64_t forwarded_ = 0;
  Counter<int> drops_;  // keyed by static_cast<int>(DropReason)
  FlatMap<NodeId, std::uint64_t> endpoint_drops_;  // by downed node id
  FlatMap<std::pair<NodeId, NodeId>, LinkDrops> link_drops_;  // by {min,max} node id
};

}  // namespace shadowprobe::sim
