#include "sim/routing.h"

#include <algorithm>

namespace shadowprobe::sim {

void RoutingTable::add(net::Prefix prefix, NodeId next_hop) {
  auto pos = std::find_if(entries_.begin(), entries_.end(),
                          [&](const Entry& e) { return e.prefix == prefix; });
  if (pos != entries_.end()) {
    pos->next_hop = next_hop;
    return;
  }
  entries_.push_back({prefix, next_hop});
  std::stable_sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.prefix.length() > b.prefix.length();
  });
}

std::optional<NodeId> RoutingTable::lookup(net::Ipv4Addr dst) const {
  for (const auto& e : entries_) {
    if (e.prefix.contains(dst)) return e.next_hop;
  }
  return std::nullopt;
}

}  // namespace shadowprobe::sim
