#include "sim/tcp_stack.h"

#include "common/log.h"

namespace shadowprobe::sim {

TcpStack::TcpStack(Network& net, NodeId self, Rng rng)
    : net_(net), self_(self), rng_(rng) {}

void TcpStack::listen(std::uint16_t port, ServerDataFn on_data) {
  listeners_[port] = std::move(on_data);
}

std::uint16_t TcpStack::alloc_port() {
  // Ephemeral range sweep; wraps after 16K connections, which outlives any
  // single VP's concurrently-open connections by orders of magnitude.
  std::uint16_t p = next_ephemeral_++;
  if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
  return p;
}

ConnKey TcpStack::connect(net::Ipv4Addr local_addr, net::Ipv4Addr remote_addr,
                          std::uint16_t remote_port, std::uint8_t ttl) {
  ConnKey key{local_addr, alloc_port(), remote_addr, remote_port};
  Conn conn;
  conn.state = TcpState::kSynSent;
  conn.snd_nxt = static_cast<std::uint32_t>(rng_.bits());
  conn.ttl = ttl;
  conn.una_seq = conn.snd_nxt;
  emit(key, conn, {.syn = true}, conn.snd_nxt, 0, {});
  conn.snd_nxt += 1;  // SYN consumes one sequence number
  Conn& slot = conns_[key] = conn;
  if (rtx_.enabled) arm_retransmit(key, slot);
  return key;
}

void TcpStack::send_data(const ConnKey& key, BytesView data) {
  Conn* found = conns_.find(key);
  if (found == nullptr || found->state != TcpState::kEstablished) {
    SP_LOG_WARN("TcpStack::send_data on non-established connection");
    return;
  }
  Conn& conn = *found;
  emit(key, conn, {.ack = true, .psh = true}, conn.snd_nxt, conn.rcv_nxt, data);
  if (rtx_.enabled) {
    disarm_retransmit(conn);
    conn.una_seq = conn.snd_nxt;
    conn.una_payload.assign(data.begin(), data.end());
    conn.retries = 0;
    arm_retransmit(key, conn);
  }
  conn.snd_nxt += static_cast<std::uint32_t>(data.size());
}

void TcpStack::close(const ConnKey& key) {
  Conn* conn = conns_.find(key);
  if (conn == nullptr) return;
  disarm_retransmit(*conn);
  if (conn->state == TcpState::kEstablished || conn->state == TcpState::kSynReceived) {
    emit(key, *conn, {.ack = true, .fin = true}, conn->snd_nxt, conn->rcv_nxt, {});
    conn->snd_nxt += 1;  // FIN consumes one sequence number
    conn->state = TcpState::kFinWait;
  } else {
    conns_.erase(key);
  }
}

void TcpStack::arm_retransmit(const ConnKey& key, Conn& conn) {
  SimDuration timeout = rtx_.rto * (SimDuration{1} << conn.retries);
  conn.rtx_armed = true;
  conn.rtx_timer = net_.loop().schedule_cancellable(
      timeout, [this, key] { on_retransmit_timer(key); });
}

void TcpStack::disarm_retransmit(Conn& conn) {
  if (!conn.rtx_armed) return;
  net_.loop().cancel(conn.rtx_timer);
  conn.rtx_armed = false;
}

void TcpStack::on_retransmit_timer(const ConnKey& key) {
  Conn* found = conns_.find(key);
  if (found == nullptr) return;
  Conn& conn = *found;
  conn.rtx_armed = false;
  bool handshake = conn.state == TcpState::kSynSent;
  bool has_data = !conn.una_payload.empty();
  if (!handshake && !has_data) return;  // everything in flight was acknowledged
  if (conn.retries >= rtx_.max_retries) {
    conns_.erase(key);
    if (on_failed_) on_failed_(key, handshake);
    return;
  }
  ++conn.retries;
  ++retransmissions_;
  if (handshake) {
    emit(key, conn, {.syn = true}, conn.snd_nxt - 1, 0, {});
  } else {
    emit(key, conn, {.ack = true, .psh = true}, conn.una_seq, conn.rcv_nxt,
         BytesView(conn.una_payload));
  }
  arm_retransmit(key, conn);
}

std::optional<TcpState> TcpStack::state(const ConnKey& key) const {
  const Conn* conn = conns_.find(key);
  if (conn == nullptr) return std::nullopt;
  return conn->state;
}

void TcpStack::emit(const ConnKey& key, const Conn& conn, net::TcpFlags flags,
                    std::uint32_t seq, std::uint32_t ack, BytesView payload) {
  net::TcpSegment seg;
  seg.src_port = key.local_port;
  seg.dst_port = key.remote_port;
  seg.seq = seq;
  seg.ack = ack;
  seg.flags = flags;
  seg.payload.assign(payload.begin(), payload.end());
  net::Ipv4Header header;
  header.src = key.local_addr;
  header.dst = key.remote_addr;
  header.ttl = conn.ttl;
  header.protocol = net::IpProto::kTcp;
  header.identification = static_cast<std::uint16_t>(rng_.bits());
  net_.send(self_, header, seg.encode(key.local_addr, key.remote_addr));
}

void TcpStack::send_rst(const net::Ipv4Datagram& dgram, const net::TcpSegment& seg) {
  if (!respond_rst_ || seg.flags.rst) return;
  net::TcpSegment rst;
  rst.src_port = seg.dst_port;
  rst.dst_port = seg.src_port;
  rst.flags = {.ack = true, .rst = true};
  rst.seq = seg.ack;
  rst.ack = seg.seq + (seg.flags.syn ? 1 : 0) + static_cast<std::uint32_t>(seg.payload.size());
  net::Ipv4Header header;
  header.src = dgram.header.dst;
  header.dst = dgram.header.src;
  header.ttl = 64;
  header.protocol = net::IpProto::kTcp;
  net_.send(self_, header, rst.encode(header.src, header.dst));
}

void TcpStack::on_segment(const net::Ipv4Datagram& dgram) {
  auto decoded = net::TcpSegment::decode(BytesView(dgram.payload), dgram.header.src,
                                         dgram.header.dst);
  if (!decoded.ok()) {
    SP_LOG_DEBUG("dropping undecodable TCP segment: " + decoded.error().message);
    return;
  }
  const net::TcpSegment& seg = decoded.value();
  ConnKey key{dgram.header.dst, seg.dst_port, dgram.header.src, seg.src_port};
  Conn* found = conns_.find(key);

  if (found == nullptr) {
    // New inbound SYN to a listening port opens a connection; anything else
    // to an unknown tuple draws RST (or silence for filtering devices).
    if (seg.flags.syn && !seg.flags.ack && listeners_.contains(key.local_port)) {
      Conn conn;
      conn.server = true;
      conn.state = TcpState::kSynReceived;
      conn.rcv_nxt = seg.seq + 1;
      conn.snd_nxt = static_cast<std::uint32_t>(rng_.bits());
      emit(key, conn, {.syn = true, .ack = true}, conn.snd_nxt, conn.rcv_nxt, {});
      conn.snd_nxt += 1;
      conns_[key] = conn;
      return;
    }
    send_rst(dgram, seg);
    return;
  }

  Conn& conn = *found;
  if (seg.flags.rst) {
    bool handshake = conn.state == TcpState::kSynSent;
    disarm_retransmit(conn);
    conns_.erase(key);
    if (on_reset_) on_reset_(key, handshake);
    return;
  }

  switch (conn.state) {
    case TcpState::kSynSent: {
      if (seg.flags.syn && seg.flags.ack && seg.ack == conn.snd_nxt) {
        disarm_retransmit(conn);
        conn.rcv_nxt = seg.seq + 1;
        conn.state = TcpState::kEstablished;
        emit(key, conn, {.ack = true}, conn.snd_nxt, conn.rcv_nxt, {});
        if (on_established_) on_established_(key);
      }
      return;
    }
    case TcpState::kSynReceived: {
      if (seg.flags.syn && !seg.flags.ack) {
        // The peer retransmitted its SYN, so our SYN-ACK was lost in
        // transit: re-emit it (seq was already consumed).
        emit(key, conn, {.syn = true, .ack = true}, conn.snd_nxt - 1, conn.rcv_nxt, {});
        return;
      }
      if (seg.flags.ack && seg.ack == conn.snd_nxt) {
        conn.state = TcpState::kEstablished;
        // The handshake ACK may already carry data (common for probes that
        // coalesce); fall through to data handling.
        break;
      }
      return;
    }
    case TcpState::kEstablished:
    case TcpState::kFinWait:
      break;
    case TcpState::kClosed:
      return;
  }

  // Any ACK covering everything sent releases the retransmission timer.
  if (conn.rtx_armed && seg.flags.ack && seg.ack == conn.snd_nxt) {
    disarm_retransmit(conn);
    conn.una_payload.clear();
    conn.retries = 0;
  }

  // In-order data only: the network never reorders within a path, so an
  // unexpected sequence number means a stale duplicate — acknowledge and
  // drop.
  if (!seg.payload.empty()) {
    if (seg.seq == conn.rcv_nxt) {
      conn.rcv_nxt += static_cast<std::uint32_t>(seg.payload.size());
      emit(key, conn, {.ack = true}, conn.snd_nxt, conn.rcv_nxt, {});
      if (conn.server) {
        if (ServerDataFn* listener = listeners_.find(key.local_port)) {
          Bytes response = (*listener)(key, BytesView(seg.payload));
          // The callback may have mutated conns_ (closed this connection or
          // opened another, moving slots): re-probe before answering.
          const Conn* after = conns_.find(key);
          if (!response.empty() && after != nullptr &&
              after->state == TcpState::kEstablished) {
            send_data(key, BytesView(response));
          }
        }
      } else if (on_client_data_) {
        on_client_data_(key, BytesView(seg.payload));
      }
    } else {
      emit(key, conn, {.ack = true}, conn.snd_nxt, conn.rcv_nxt, {});
    }
  }

  Conn* still_open = conns_.find(key);
  if (still_open == nullptr) return;  // callback may have closed it
  Conn& conn2 = *still_open;
  if (seg.flags.fin) {
    conn2.rcv_nxt = seg.seq + static_cast<std::uint32_t>(seg.payload.size()) + 1;
    disarm_retransmit(conn2);
    if (conn2.state == TcpState::kFinWait) {
      // Simultaneous/reply FIN: acknowledge and the connection is done.
      emit(key, conn2, {.ack = true}, conn2.snd_nxt, conn2.rcv_nxt, {});
      conns_.erase(key);
    } else {
      // Passive close: ACK+FIN in one segment (no lingering half-close use).
      emit(key, conn2, {.ack = true, .fin = true}, conn2.snd_nxt, conn2.rcv_nxt, {});
      conn2.snd_nxt += 1;
      conn2.state = TcpState::kFinWait;
    }
    return;
  }
  if (conn2.state == TcpState::kFinWait && seg.flags.ack && seg.ack == conn2.snd_nxt &&
      seg.payload.empty() && !seg.flags.fin) {
    disarm_retransmit(conn2);
    conns_.erase(key);
  }
}

}  // namespace shadowprobe::sim
