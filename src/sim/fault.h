// Deterministic fault injection for the simulated network.
//
// The live platform the paper runs on is anything but loss-free: commercial
// VPN VPs churn, links drop packets, and honeypot collectors go down for
// maintenance. This layer injects those failure modes into the simulation
// while preserving the engine's shard-count-invariance contract: every fault
// decision is a pure function of (master seed, fault profile, stable entity
// key), never of draw order or shard layout. A packet's fate on a hop is
// keyed by the link's node names, the packet's header fields, a payload hash,
// and the simulated send time — so the same packet crossing the same hop at
// the same simulated instant is lost (or jittered) identically whether one
// shard or sixteen execute the campaign, and a *retransmission* (which fires
// at a later instant) gets an independent draw.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/ipv4.h"

namespace shadowprobe::sim {

/// Half-open window [start, end) of simulated time during which something
/// (a link, a VP session, a honeypot collector) is down.
struct OutageWindow {
  SimTime start = 0;
  SimTime end = 0;

  [[nodiscard]] bool contains(SimTime t) const noexcept { return t >= start && t < end; }
  [[nodiscard]] SimDuration duration() const noexcept { return end - start; }
};

/// A scheduled honeypot/collector outage, parsed from the fault-profile
/// spec as `hp-outage=LOCATION@START+DURATION` (e.g. `hp-outage=US@30h+12h`).
struct CollectorOutage {
  std::string location;  // honeypot location code ("US" / "DE" / "SG")
  SimTime start = 0;
  SimDuration duration = 0;
};

/// Knobs of the fault model plus the resilience parameters the faults
/// demand. The default-constructed profile is the *null profile*: no faults,
/// no retry machinery armed, behaviour byte-identical to a fault-free build.
struct FaultProfile {
  /// Per-link-traversal Bernoulli loss probability, in [0, 1).
  double link_loss = 0.0;
  /// Maximum uniform extra propagation latency per hop (0 = no jitter).
  SimDuration jitter = 0;
  /// Probability that any given link experiences one scheduled flap
  /// (complete outage window) during the campaign, in [0, 1).
  double link_flap_rate = 0.0;
  SimDuration link_flap_duration = 10 * kMinute;
  /// Probability that a VP suffers one session drop mid-campaign, in [0, 1).
  double vp_churn = 0.0;
  SimDuration vp_outage = 1 * kHour;
  /// Scheduled collector downtime windows.
  std::vector<CollectorOutage> collector_outages;

  // -- resilience parameters (consumed by VpAgent / TcpStack / ShardRunner) --
  /// Retries per UDP decoy (exponential backoff) and TCP SYN/data
  /// retransmissions per connection.
  int max_retries = 3;
  /// Initial retry timeout; doubles per attempt.
  SimDuration retry_timeout = 5 * kSecond;
  /// Consecutive Phase-I decoy failures after which a VP is quarantined and
  /// its remaining decoys are deterministically rescheduled.
  int quarantine_threshold = 8;

  /// True when any fault knob is active. The null profile leaves every code
  /// path byte-identical to a build without the fault layer.
  [[nodiscard]] bool enabled() const noexcept {
    return link_loss > 0.0 || jitter > 0 || link_flap_rate > 0.0 || vp_churn > 0.0 ||
           !collector_outages.empty();
  }

  /// Total per-decoy time budget implied by the retry schedule (the overall
  /// decoy timeout used for TCP decoys, where the per-attempt retries live
  /// in the transport): sum of the exponential backoff series plus slack.
  [[nodiscard]] SimDuration decoy_deadline() const noexcept;

  /// Parses a comma-separated `key=value` spec, e.g.
  ///   "loss=0.05,jitter=20ms,vp-churn=0.15@2h,hp-outage=US@30h+12h"
  /// Keys: loss, jitter, flap (`rate[@duration]`), vp-churn (`p[@outage]`),
  /// hp-outage (`loc@start+duration`, repeatable), retries, rto, quarantine.
  /// The spec may start with a preset name: `none` or `lossy`. Malformed
  /// values return a descriptive Error (never a silent clamp).
  static Result<FaultProfile> parse(std::string_view spec);

  /// Canonical spec string (stable key order) — what the JSON export embeds
  /// so a result file names the profile it was produced under.
  [[nodiscard]] std::string str() const;
};

/// Counters of the injector's own decisions (drops are also counted by the
/// Network's DropReason counter; these add the injector's view).
struct FaultInjectorStats {
  std::uint64_t loss_drops = 0;
  std::uint64_t flap_drops = 0;
  std::uint64_t endpoint_drops = 0;
  std::uint64_t jittered_packets = 0;
};

/// Stateless-by-construction fault oracle: all decisions derive from the
/// profile and an origin seed. The only mutable state is memoization of
/// per-link flap windows and the registered named-node outage table, both of
/// which are themselves deterministic.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, std::uint64_t seed, SimDuration horizon);

  [[nodiscard]] const FaultProfile& profile() const noexcept { return profile_; }

  // -- scheduled outages ----------------------------------------------------

  /// Registers an outage window for a named node (honeypot collector
  /// downtime, VP session drop). Multiple windows per node are allowed.
  void add_node_outage(const std::string& node_name, OutageWindow window);
  [[nodiscard]] bool node_down(const std::string& node_name, SimTime now) const;
  [[nodiscard]] const std::vector<OutageWindow>* node_outages(
      const std::string& node_name) const;

  /// Derives the (optional) churn outage window for an entity such as a VP:
  /// with probability profile().vp_churn the entity gets one outage of
  /// profile().vp_outage starting uniformly in [earliest, latest]. Pure
  /// function of (seed, entity_id) — identical on every shard replica.
  [[nodiscard]] std::optional<OutageWindow> derive_churn_outage(
      const std::string& entity_id, SimTime earliest, SimTime latest) const;

  // -- per-packet decisions -------------------------------------------------

  /// True when the (a, b) link is inside its scheduled flap window at `now`.
  /// The flap schedule is derived lazily per link (keyed by the unordered
  /// node-name pair) and memoized.
  [[nodiscard]] bool link_down(const std::string& a, const std::string& b, SimTime now);

  /// Bernoulli loss draw for one traversal of (a, b) by this packet at this
  /// instant. Counted in stats() when it hits.
  [[nodiscard]] bool lose_packet(const std::string& a, const std::string& b,
                                 const net::Ipv4Header& header, BytesView payload,
                                 SimTime now);

  /// Uniform extra latency in [0, profile().jitter] for this traversal.
  [[nodiscard]] SimDuration jitter_for(const std::string& a, const std::string& b,
                                       const net::Ipv4Header& header, BytesView payload,
                                       SimTime now);

  void count_endpoint_drop() noexcept { ++stats_.endpoint_drops; }
  [[nodiscard]] const FaultInjectorStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] Rng packet_stream(const char* kind, const std::string& a,
                                  const std::string& b, const net::Ipv4Header& header,
                                  BytesView payload, SimTime now) const;
  [[nodiscard]] const std::optional<OutageWindow>& flap_window(const std::string& a,
                                                              const std::string& b);

  FaultProfile profile_;
  Rng rng_;
  SimDuration horizon_;
  std::map<std::string, std::vector<OutageWindow>> node_outages_;
  std::map<std::string, std::optional<OutageWindow>> flap_cache_;  // key "a|b" sorted
  FaultInjectorStats stats_;
};

}  // namespace shadowprobe::sim
