// Discrete-event loop driving the simulated clock.
//
// The whole measurement campaign is a single-threaded event program: every
// packet hop, resolver timer, and exhibitor replay is an event. Determinism
// holds because ties are broken by insertion order (a strictly increasing
// sequence number), never by heap internals.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/small_fn.h"
#include "common/time.h"

namespace shadowprobe::sim {

/// Snapshot of a loop's lifetime counters. Shard runners report one of these
/// per shard so the engine can expose per-shard load/progress statistics.
struct EventLoopStats {
  std::uint64_t processed = 0;   ///< events executed so far
  std::uint64_t scheduled = 0;   ///< events ever enqueued
  std::uint64_t cancelled = 0;   ///< cancellable timers cancelled before firing
  std::size_t pending = 0;       ///< events currently queued
  std::size_t high_water = 0;    ///< max simultaneous queue depth seen
  SimTime now = 0;               ///< current simulated clock
};

/// Handle to a cancellable timer (see EventLoop::schedule_cancellable).
using TimerId = std::uint64_t;

class EventLoop {
 public:
  // Small-buffer callable: per-hop delivery closures (~56 bytes of captures)
  // live inline in the queue entry instead of behind a std::function malloc.
  using Action = SmallFn<void(), 64>;

  /// Schedules `action` to run at now() + delay (delay < 0 clamps to now()).
  void schedule(SimDuration delay, Action action);
  /// Schedules at an absolute time (clamped to now()).
  void schedule_at(SimTime when, Action action);
  /// Like schedule(), but returns a handle that cancel() accepts. Retry and
  /// retransmission timers use this so an acknowledged request can disarm
  /// its pending retry without the loop ever firing it.
  [[nodiscard]] TimerId schedule_cancellable(SimDuration delay, Action action);
  /// Disarms a timer from schedule_cancellable(); the queued entry is
  /// discarded when reached. Returns false when the timer already fired,
  /// was already cancelled, or never existed.
  bool cancel(TimerId id);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }
  [[nodiscard]] EventLoopStats stats() const noexcept;

  /// Pre-sizes the queue for an expected simultaneous depth (plan-known
  /// sizes avoid regrowth moves of in-flight entries).
  void reserve(std::size_t expected_pending) { heap_.reserve(expected_pending); }

  /// Runs events until the queue drains.
  void run();
  /// Runs events with time <= deadline; the clock ends at deadline.
  void run_until(SimTime deadline);
  /// Runs a single event; returns false when the queue is empty.
  bool step();

  /// Moves the clock *backwards* to `t` (no-op when t >= now()). Only legal
  /// between run_until() calls: run_until(d) has already executed every event
  /// at or before d, so all pending entries lie strictly beyond d and the
  /// heap needs no repair. The work-stealing scheduler rewinds to the shared
  /// phase start before replaying a claimed VP's event cone, so each per-VP
  /// pass runs at its true simulated times. Rewind BEFORE scheduling: with
  /// the clock still at the old deadline, schedule_at() would clamp the new
  /// VP's earlier emissions forward.
  void rewind(SimTime t) noexcept {
    if (t < now_) now_ = t;
  }

 private:
  /// Drops cancelled entries sitting at the heap front so front().when is
  /// always the time of the next *live* event (run_until relies on this).
  void purge_cancelled_front();

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Action action;

    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Min-heap over a plain vector (std::push_heap/std::pop_heap with
  // std::greater<> so heap_.front() is the earliest entry). A raw vector lets
  // step() move entries out without the const_cast that std::priority_queue's
  // const top() would force.
  std::vector<Entry> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t high_water_ = 0;
  // Seqs of live cancellable timers; membership means cancel() may disarm.
  FlatSet<std::uint64_t> cancellable_;
  // Cancelled-but-still-queued seqs, discarded (not executed) when popped.
  FlatSet<std::uint64_t> tombstones_;
};

}  // namespace shadowprobe::sim
