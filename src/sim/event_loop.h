// Discrete-event loop driving the simulated clock.
//
// The whole measurement campaign is a single-threaded event program: every
// packet hop, resolver timer, and exhibitor replay is an event. Determinism
// holds because ties are broken by insertion order (a strictly increasing
// sequence number), never by heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"

namespace shadowprobe::sim {

/// Snapshot of a loop's lifetime counters. Shard runners report one of these
/// per shard so the engine can expose per-shard load/progress statistics.
struct EventLoopStats {
  std::uint64_t processed = 0;   ///< events executed so far
  std::uint64_t scheduled = 0;   ///< events ever enqueued
  std::size_t pending = 0;       ///< events currently queued
  std::size_t high_water = 0;    ///< max simultaneous queue depth seen
  SimTime now = 0;               ///< current simulated clock
};

class EventLoop {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` to run at now() + delay (delay < 0 clamps to now()).
  void schedule(SimDuration delay, Action action);
  /// Schedules at an absolute time (clamped to now()).
  void schedule_at(SimTime when, Action action);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }
  [[nodiscard]] EventLoopStats stats() const noexcept;

  /// Runs events until the queue drains.
  void run();
  /// Runs events with time <= deadline; the clock ends at deadline.
  void run_until(SimTime deadline);
  /// Runs a single event; returns false when the queue is empty.
  bool step();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Action action;

    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Min-heap over a plain vector (std::push_heap/std::pop_heap with
  // std::greater<> so heap_.front() is the earliest entry). A raw vector lets
  // step() move entries out without the const_cast that std::priority_queue's
  // const top() would force.
  std::vector<Entry> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace shadowprobe::sim
