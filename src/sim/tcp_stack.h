// Minimal event-driven TCP implementation over the simulated network.
//
// Implements exactly what the measurement needs: three-way handshake,
// in-order data with correct sequence arithmetic, FIN teardown, and RST for
// closed ports. Links have no MTU, so one write is one segment; every
// segment is a byte-faithful RFC 9293 header.
//
// The network is loss-free by default, and so is this stack: with the
// default (disabled) RetransmitPolicy no timer is ever armed and behaviour
// is identical to the historical loss-free stack. When the fault-injection
// layer (sim/fault.h) makes links lossy, callers arm set_retransmit() and
// the stack retransmits unacknowledged SYNs and data with exponential
// backoff, reporting connections that exhaust their retries via
// set_on_failed().
//
// Usage: a host's DatagramHandler owns a TcpStack and feeds it every TCP
// datagram via on_segment(); the stack replies through Network::send().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/bytes.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "net/ipv4.h"
#include "net/tcp.h"
#include "sim/network.h"

namespace shadowprobe::sim {

/// Connection 4-tuple from the owning stack's perspective.
struct ConnKey {
  net::Ipv4Addr local_addr;
  std::uint16_t local_port = 0;
  net::Ipv4Addr remote_addr;
  std::uint16_t remote_port = 0;

  auto operator<=>(const ConnKey&) const = default;

  /// Stable 64-bit digest for FlatMap keying (both ports fit beside one
  /// address; the second address is folded in with a rotation).
  [[nodiscard]] std::uint64_t flat_hash() const noexcept {
    std::uint64_t lo = (static_cast<std::uint64_t>(local_addr.value()) << 32) |
                       (static_cast<std::uint64_t>(local_port) << 16) | remote_port;
    std::uint64_t hi = static_cast<std::uint64_t>(remote_addr.value());
    return lo ^ (hi << 13 | hi >> 51);
  }
};

enum class TcpState { kSynSent, kSynReceived, kEstablished, kFinWait, kClosed };

/// Retransmission knobs. Disabled by default: no timers are armed and the
/// stack behaves exactly like the historical loss-free implementation.
struct RetransmitPolicy {
  bool enabled = false;
  SimDuration rto = 3 * kSecond;  ///< initial timeout; doubles per retry
  int max_retries = 3;            ///< retransmissions before giving up
};

class TcpStack {
 public:
  /// Server-side data callback: receives application bytes; whatever it
  /// returns (possibly empty) is written back on the connection.
  using ServerDataFn = std::function<Bytes(const ConnKey& key, BytesView data)>;
  /// Client-side events.
  using EstablishedFn = std::function<void(const ConnKey& key)>;
  using ClientDataFn = std::function<void(const ConnKey& key, BytesView data)>;
  /// Connection refused (RST in SYN_SENT) or reset while open.
  using ResetFn = std::function<void(const ConnKey& key, bool during_handshake)>;
  /// Connection abandoned after exhausting its retransmission budget.
  using FailedFn = std::function<void(const ConnKey& key, bool during_handshake)>;

  TcpStack(Network& net, NodeId self, Rng rng);

  /// Opens `port` for inbound connections.
  void listen(std::uint16_t port, ServerDataFn on_data);
  [[nodiscard]] bool listening(std::uint16_t port) const { return listeners_.count(port) > 0; }

  /// Initiates a handshake from `local_addr` (must be a local address of the
  /// node). Returns the connection key; events fire as segments arrive.
  /// `ttl` is the initial IP TTL used for every segment of this connection —
  /// the hop-by-hop tracerouting hook.
  ConnKey connect(net::Ipv4Addr local_addr, net::Ipv4Addr remote_addr,
                  std::uint16_t remote_port, std::uint8_t ttl = 64);

  /// Sends application data on an established connection.
  void send_data(const ConnKey& key, BytesView data);
  /// Starts FIN teardown.
  void close(const ConnKey& key);

  /// Feeds one inbound TCP datagram (caller has verified protocol == kTcp).
  void on_segment(const net::Ipv4Datagram& dgram);

  void set_on_established(EstablishedFn fn) { on_established_ = std::move(fn); }
  void set_on_data(ClientDataFn fn) { on_client_data_ = std::move(fn); }
  void set_on_reset(ResetFn fn) { on_reset_ = std::move(fn); }
  void set_on_failed(FailedFn fn) { on_failed_ = std::move(fn); }

  void set_retransmit(RetransmitPolicy policy) noexcept { rtx_ = policy; }
  [[nodiscard]] const RetransmitPolicy& retransmit_policy() const noexcept { return rtx_; }
  /// Segments re-emitted by retransmission timers over the stack's lifetime.
  [[nodiscard]] std::uint64_t retransmissions() const noexcept { return retransmissions_; }

  /// When true (default), RST answers segments to closed ports. Disabling
  /// this models silently-filtering devices (most observer routers in the
  /// paper's port-scan study do not respond at all).
  void set_respond_rst(bool respond) noexcept { respond_rst_ = respond; }

  [[nodiscard]] std::optional<TcpState> state(const ConnKey& key) const;
  [[nodiscard]] std::size_t open_connections() const noexcept { return conns_.size(); }

 private:
  struct Conn {
    TcpState state = TcpState::kClosed;
    std::uint32_t snd_nxt = 0;  // next sequence number to send
    std::uint32_t rcv_nxt = 0;  // next sequence number expected
    std::uint8_t ttl = 64;
    bool server = false;
    // Retransmission state (only touched when rtx_.enabled).
    int retries = 0;
    bool rtx_armed = false;
    TimerId rtx_timer = 0;
    std::uint32_t una_seq = 0;  // seq of the oldest unacknowledged payload
    Bytes una_payload;          // unacked data; empty while only SYN is in flight
  };

  void emit(const ConnKey& key, const Conn& conn, net::TcpFlags flags, std::uint32_t seq,
            std::uint32_t ack, BytesView payload);
  void send_rst(const net::Ipv4Datagram& dgram, const net::TcpSegment& seg);
  std::uint16_t alloc_port();
  void arm_retransmit(const ConnKey& key, Conn& conn);
  void disarm_retransmit(Conn& conn);
  void on_retransmit_timer(const ConnKey& key);

  Network& net_;
  NodeId self_;
  Rng rng_;
  // Pure per-segment lookup tables, never iterated (open_connections() only
  // reports the size): flat maps keep the per-packet path allocation-free.
  FlatMap<std::uint16_t, ServerDataFn> listeners_;
  FlatMap<ConnKey, Conn> conns_;
  std::uint16_t next_ephemeral_ = 49152;
  bool respond_rst_ = true;
  RetransmitPolicy rtx_;
  std::uint64_t retransmissions_ = 0;

  EstablishedFn on_established_;
  ClientDataFn on_client_data_;
  ResetFn on_reset_;
  FailedFn on_failed_;
};

}  // namespace shadowprobe::sim
