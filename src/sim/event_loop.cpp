#include "sim/event_loop.h"

#include <algorithm>
#include <utility>

namespace shadowprobe::sim {

void EventLoop::schedule(SimDuration delay, Action action) {
  if (delay < 0) delay = 0;
  schedule_at(now_ + delay, std::move(action));
}

void EventLoop::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;
  heap_.push_back(Entry{when, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  high_water_ = std::max(high_water_, heap_.size());
}

EventLoopStats EventLoop::stats() const noexcept {
  return EventLoopStats{processed_, next_seq_, heap_.size(), high_water_, now_};
}

bool EventLoop::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  now_ = entry.when;
  ++processed_;
  entry.action();
  return true;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  while (!heap_.empty() && heap_.front().when <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

}  // namespace shadowprobe::sim
