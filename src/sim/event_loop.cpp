#include "sim/event_loop.h"

#include <utility>

namespace shadowprobe::sim {

void EventLoop::schedule(SimDuration delay, Action action) {
  if (delay < 0) delay = 0;
  schedule_at(now_ + delay, std::move(action));
}

void EventLoop::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;
  queue_.push(Entry{when, next_seq_++, std::move(action)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move via const_cast is safe because the
  // entry is popped immediately after.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.when;
  ++processed_;
  entry.action();
  return true;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

}  // namespace shadowprobe::sim
