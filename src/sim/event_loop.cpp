#include "sim/event_loop.h"

#include <algorithm>
#include <utility>

namespace shadowprobe::sim {

void EventLoop::schedule(SimDuration delay, Action action) {
  if (delay < 0) delay = 0;
  schedule_at(now_ + delay, std::move(action));
}

void EventLoop::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;
  heap_.push_back(Entry{when, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  high_water_ = std::max(high_water_, heap_.size());
}

TimerId EventLoop::schedule_cancellable(SimDuration delay, Action action) {
  TimerId id = next_seq_;  // schedule() consumes exactly this seq
  cancellable_.insert(id);
  schedule(delay, std::move(action));
  return id;
}

bool EventLoop::cancel(TimerId id) {
  if (cancellable_.erase(id) == 0) return false;
  tombstones_.insert(id);
  ++cancelled_;
  return true;
}

// NOTE: FlatSet iteration order never matters here — cancellable_ and
// tombstones_ are only ever probed/erased by key.

EventLoopStats EventLoop::stats() const noexcept {
  return EventLoopStats{processed_, next_seq_, cancelled_, heap_.size(), high_water_,
                        now_};
}

void EventLoop::purge_cancelled_front() {
  if (tombstones_.empty()) return;
  while (!heap_.empty() && tombstones_.count(heap_.front().seq) != 0) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    tombstones_.erase(heap_.back().seq);
    heap_.pop_back();
  }
}

bool EventLoop::step() {
  purge_cancelled_front();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  // Almost all events are plain (non-cancellable); skip the probe entirely
  // while no cancellable timer is outstanding.
  if (!cancellable_.empty()) cancellable_.erase(entry.seq);
  now_ = entry.when;
  ++processed_;
  entry.action();
  return true;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  purge_cancelled_front();
  while (!heap_.empty() && heap_.front().when <= deadline) {
    step();
    purge_cancelled_front();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace shadowprobe::sim
