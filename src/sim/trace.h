// Packet trace recorder: a PacketTap that captures per-packet summaries at
// one or more nodes — the simulator's tcpdump.
//
// Used by examples and debugging sessions to inspect exactly what crosses a
// hop (the measurement pipeline itself never needs it: honeypot logs and
// ICMP are its only sensors, as in the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "net/ipv4.h"
#include "sim/network.h"

namespace shadowprobe::sim {

struct TraceEntry {
  SimTime time = 0;
  NodeId node = kInvalidNode;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  net::IpProto protocol = net::IpProto::kUdp;
  std::uint8_t ttl = 0;
  std::uint16_t src_port = 0;  // 0 for ICMP
  std::uint16_t dst_port = 0;
  std::size_t payload_bytes = 0;
  std::string info;  // one-line protocol summary ("DNS query x.example A", ...)
};

class TraceRecorder : public PacketTap {
 public:
  /// `capacity` bounds memory; older entries are dropped once exceeded
  /// (dropped() reports how many).
  explicit TraceRecorder(std::size_t capacity = 65536) : capacity_(capacity) {}

  void on_packet(Network& net, NodeId node, const net::Ipv4Datagram& dgram) override;

  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  [[nodiscard]] std::uint64_t captured() const noexcept { return captured_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Packet counts per transport ("UDP"/"TCP"/"ICMP").
  [[nodiscard]] const Counter<std::string>& protocol_counts() const noexcept {
    return protocols_;
  }

  /// tcpdump-style text rendering of the captured entries.
  [[nodiscard]] std::string dump(std::size_t max_lines = 100) const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEntry> entries_;
  std::uint64_t captured_ = 0;
  std::uint64_t dropped_ = 0;
  Counter<std::string> protocols_;
};

/// Builds the one-line summary for a datagram (exposed for tests).
std::string summarize_packet(const net::Ipv4Datagram& dgram);

}  // namespace shadowprobe::sim
