#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "sim/fault.h"

namespace shadowprobe::sim {

const char* drop_reason_name(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNoRoute:
      return "no_route";
    case DropReason::kTtlExpired:
      return "ttl_expired";
    case DropReason::kLinkLoss:
      return "link_loss";
    case DropReason::kLinkDown:
      return "link_down";
    case DropReason::kEndpointDown:
      return "endpoint_down";
  }
  return "unknown";
}

NodeId Network::add_node(std::string name, NodeKind kind, net::Ipv4Addr addr,
                         DatagramHandler* handler) {
  if (const NodeId* owner = addr_owner_.find(addr); owner != nullptr) {
    throw std::invalid_argument("address already assigned: " + addr.str() + " (owned by " +
                                nodes_.at(*owner).name + ", wanted by " + name + ")");
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.name = std::move(name);
  node.kind = kind;
  node.primary = addr;
  node.addresses.push_back(addr);
  node.handler = handler;
  nodes_.push_back(std::move(node));
  addr_owner_[addr] = id;
  return id;
}

NodeId Network::add_router(std::string name, net::Ipv4Addr addr) {
  return add_node(std::move(name), NodeKind::kRouter, addr, nullptr);
}

NodeId Network::add_host(std::string name, net::Ipv4Addr addr, DatagramHandler* handler) {
  return add_node(std::move(name), NodeKind::kHost, addr, handler);
}

void Network::add_address(NodeId node, net::Ipv4Addr addr) {
  if (addr_owner_.contains(addr))
    throw std::invalid_argument("address already assigned: " + addr.str());
  nodes_.at(node).addresses.push_back(addr);
  addr_owner_[addr] = node;
}

void Network::add_anycast_address(NodeId node, net::Ipv4Addr addr) {
  nodes_.at(node).addresses.push_back(addr);
  addr_owner_.emplace(addr, node);  // first instance wins owner_of(); others unlisted
}

void Network::set_handler(NodeId node, DatagramHandler* handler) {
  nodes_.at(node).handler = handler;
}

RoutingTable& Network::routes(NodeId node) { return nodes_.at(node).routes; }

void Network::set_link_latency(NodeId a, NodeId b, SimDuration latency) {
  link_latency_[{std::min(a, b), std::max(a, b)}] = latency;
}

void Network::add_tap(NodeId node, PacketTap* tap) { nodes_.at(node).taps.push_back(tap); }

void Network::remove_tap(NodeId node, PacketTap* tap) {
  auto& taps = nodes_.at(node).taps;
  taps.erase(std::remove(taps.begin(), taps.end(), tap), taps.end());
}

const std::string& Network::name(NodeId node) const { return nodes_.at(node).name; }
NodeKind Network::kind(NodeId node) const { return nodes_.at(node).kind; }
net::Ipv4Addr Network::address(NodeId node) const { return nodes_.at(node).primary; }

NodeId Network::owner_of(net::Ipv4Addr addr) const {
  const NodeId* owner = addr_owner_.find(addr);
  return owner == nullptr ? kInvalidNode : *owner;
}

SimDuration Network::latency(NodeId a, NodeId b) const {
  const SimDuration* lat = link_latency_.find({std::min(a, b), std::max(a, b)});
  return lat == nullptr ? default_latency_ : *lat;
}

bool Network::is_local(const Node& n, net::Ipv4Addr addr) const {
  return std::find(n.addresses.begin(), n.addresses.end(), addr) != n.addresses.end();
}

NetworkCounters Network::counters() const noexcept {
  NetworkCounters c;
  c.delivered = delivered_;
  c.forwarded = forwarded_;
  c.no_route = drops_.get(static_cast<int>(DropReason::kNoRoute));
  c.ttl_expired = drops_.get(static_cast<int>(DropReason::kTtlExpired));
  c.link_loss = drops_.get(static_cast<int>(DropReason::kLinkLoss));
  c.link_down = drops_.get(static_cast<int>(DropReason::kLinkDown));
  c.endpoint_down = drops_.get(static_cast<int>(DropReason::kEndpointDown));
  return c;
}

void Network::send(NodeId from, net::Ipv4Header header, BytesView payload) {
  const Node& origin = nodes_.at(from);
  // An origin inside an outage window (dropped VP session, collector
  // maintenance) cannot emit: its packets die in the local stack.
  if (injector_ != nullptr && injector_->node_down(origin.name, now())) {
    drops_.add(static_cast<int>(DropReason::kEndpointDown));
    ++endpoint_drops_[from];
    injector_->count_endpoint_drop();
    return;
  }
  // Loopback delivery without touching the wire.
  if (is_local(origin, header.dst)) {
    Bytes body(payload.begin(), payload.end());
    loop_.schedule(0, [this, from, header, body = std::move(body)]() mutable {
      arrive(from, header, std::move(body));
    });
    return;
  }
  forward(from, header, Bytes(payload.begin(), payload.end()), /*decrement_ttl=*/false);
}

void Network::forward(NodeId node, net::Ipv4Header header, Bytes payload,
                      bool decrement_ttl) {
  const Node& n = nodes_.at(node);
  // TTL is checked before the routing decision, as real routers do: an
  // expiring packet draws Time-Exceeded even when there is no route onward.
  if (decrement_ttl) {
    if (header.ttl <= 1) {
      drops_.add(static_cast<int>(DropReason::kTtlExpired));
      emit_time_exceeded(node, header, BytesView(payload));
      return;
    }
  }
  auto next = n.routes.lookup(header.dst);
  if (!next) {
    drops_.add(static_cast<int>(DropReason::kNoRoute));
    SP_LOG_DEBUG("no route from " + n.name + " to " + header.dst.str());
    return;
  }
  NodeId next_hop = *next;
  if (injector_ != nullptr) {
    const std::string& hop_name = nodes_.at(next_hop).name;
    if (injector_->link_down(n.name, hop_name, now())) {
      drops_.add(static_cast<int>(DropReason::kLinkDown));
      return;
    }
    if (injector_->lose_packet(n.name, hop_name, header, BytesView(payload), now())) {
      drops_.add(static_cast<int>(DropReason::kLinkLoss));
      return;
    }
  }
  if (decrement_ttl) {
    --header.ttl;
    ++forwarded_;
  }
  SimDuration delay = latency(node, next_hop);
  if (injector_ != nullptr) {
    delay += injector_->jitter_for(n.name, nodes_.at(next_hop).name, header,
                                   BytesView(payload), now());
  }
  loop_.schedule(delay, [this, next_hop, header, payload = std::move(payload)]() mutable {
    arrive(next_hop, header, std::move(payload));
  });
}

void Network::arrive(NodeId node, net::Ipv4Header header, Bytes payload) {
  Node& n = nodes_.at(node);
  net::Ipv4Datagram dgram{header, std::move(payload)};
  // Taps fire on physical arrival, before any delivery/forwarding decision —
  // an on-wire observer sees even packets that expire at this hop.
  for (PacketTap* tap : n.taps) tap->on_packet(*this, node, dgram);
  if (is_local(n, header.dst)) {
    // A destination inside an outage window swallows its traffic: the taps
    // above still fire (on-wire observers are not affected by the endpoint
    // being down), but delivery fails silently.
    if (injector_ != nullptr && injector_->node_down(n.name, now())) {
      drops_.add(static_cast<int>(DropReason::kEndpointDown));
      ++endpoint_drops_[node];
      injector_->count_endpoint_drop();
      return;
    }
    ++delivered_;
    if (n.handler != nullptr) n.handler->on_datagram(*this, node, dgram);
    return;
  }
  forward(node, dgram.header, std::move(dgram.payload), /*decrement_ttl=*/true);
}

void Network::emit_time_exceeded(NodeId router, const net::Ipv4Header& header,
                                 BytesView payload) {
  // Hosts silently drop expired packets; only routers answer with ICMP
  // (RFC 1812 §4.3.2.4 also forbids ICMP about ICMP errors).
  const Node& n = nodes_.at(router);
  if (n.kind != NodeKind::kRouter) return;
  if (header.protocol == net::IpProto::kIcmp) return;
  Bytes original = header.encode(payload);
  net::IcmpMessage icmp = net::IcmpMessage::time_exceeded(original);
  net::Ipv4Header reply;
  reply.src = n.primary;
  reply.dst = header.src;
  reply.ttl = 64;
  reply.protocol = net::IpProto::kIcmp;
  Bytes body = icmp.encode();
  forward(router, reply, std::move(body), /*decrement_ttl=*/false);
}

}  // namespace shadowprobe::sim
