#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "sim/fault.h"

namespace shadowprobe::sim {

const char* drop_reason_name(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNoRoute:
      return "no_route";
    case DropReason::kTtlExpired:
      return "ttl_expired";
    case DropReason::kLinkLoss:
      return "link_loss";
    case DropReason::kLinkDown:
      return "link_down";
    case DropReason::kEndpointDown:
      return "endpoint_down";
  }
  return "unknown";
}

void merge_link_drops(std::vector<LinkDropCounters>& into,
                      const std::vector<LinkDropCounters>& from) {
  if (from.empty()) return;
  std::vector<LinkDropCounters> merged;
  merged.reserve(into.size() + from.size());
  auto key_less = [](const LinkDropCounters& a, const LinkDropCounters& b) {
    if (a.node_a != b.node_a) return a.node_a < b.node_a;
    return a.node_b < b.node_b;
  };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < into.size() || j < from.size()) {
    if (j >= from.size() || (i < into.size() && key_less(into[i], from[j]))) {
      merged.push_back(std::move(into[i++]));
    } else if (i >= into.size() || key_less(from[j], into[i])) {
      merged.push_back(from[j++]);
    } else {
      into[i].link_loss += from[j].link_loss;
      into[i].link_down += from[j].link_down;
      merged.push_back(std::move(into[i]));
      ++i;
      ++j;
    }
  }
  into = std::move(merged);
}

Network::Network(EventLoop& loop)
    : loop_(loop), owned_(std::make_shared<NetworkLayout>()), layout_(owned_) {}

Network::Network(EventLoop& loop, std::shared_ptr<const NetworkLayout> layout,
                 NodeId replay_from)
    : loop_(loop), layout_(std::move(layout)), replay_cursor_(replay_from) {
  if (layout_ == nullptr) throw std::invalid_argument("frozen Network needs a layout");
  if (replay_cursor_ > layout_->node_count()) {
    throw std::invalid_argument("replay_from past the end of the layout");
  }
  attach_.resize(layout_->node_count());
}

Network::~Network() = default;

NetworkLayout& Network::mutable_layout() {
  if (owned_ == nullptr) {
    throw std::logic_error("network layout is frozen; structural mutation is not allowed");
  }
  return *owned_;
}

std::shared_ptr<const NetworkLayout> Network::freeze_layout() {
  mutable_layout();  // throws if already frozen
  std::shared_ptr<const NetworkLayout> sealed = std::move(owned_);
  owned_ = nullptr;
  layout_ = sealed;
  return sealed;
}

NodeId Network::add_node(std::string name, NodeKind kind, net::Ipv4Addr addr,
                         DatagramHandler* handler) {
  NetworkLayout& plan = mutable_layout();
  if (const NodeId* owner = plan.addr_owner_.find(addr); owner != nullptr) {
    throw std::invalid_argument("address already assigned: " + addr.str() + " (owned by " +
                                plan.nodes_.at(*owner).name + ", wanted by " + name + ")");
  }
  NodeId id = static_cast<NodeId>(plan.nodes_.size());
  NetworkLayout::Node node;
  node.name = std::move(name);
  node.kind = kind;
  node.primary = addr;
  node.addresses.push_back(addr);
  plan.nodes_.push_back(std::move(node));
  plan.addr_owner_[addr] = id;
  attach_.emplace_back();
  attach_.back().handler = handler;
  return id;
}

NodeId Network::add_router(std::string name, net::Ipv4Addr addr) {
  return add_node(std::move(name), NodeKind::kRouter, addr, nullptr);
}

NodeId Network::add_host(std::string name, net::Ipv4Addr addr, DatagramHandler* handler) {
  return add_node(std::move(name), NodeKind::kHost, addr, handler);
}

NodeId Network::replay_host(const std::string& name, DatagramHandler* handler) {
  if (!frozen()) {
    throw std::logic_error("replay_host on an authoring network (use add_host)");
  }
  if (replay_cursor_ == kInvalidNode || replay_cursor_ >= layout_->node_count()) {
    throw std::logic_error("replay_host past the layout's dynamic tail (wanted '" + name +
                           "')");
  }
  const std::string& expected = layout_->name(replay_cursor_);
  if (expected != name) {
    throw std::logic_error("node replay diverged from the authoring order: layout has '" +
                           expected + "', caller created '" + name + "'");
  }
  NodeId id = replay_cursor_++;
  attach_.at(id).handler = handler;
  return id;
}

void Network::add_address(NodeId node, net::Ipv4Addr addr) {
  NetworkLayout& plan = mutable_layout();
  if (plan.addr_owner_.contains(addr))
    throw std::invalid_argument("address already assigned: " + addr.str());
  plan.nodes_.at(node).addresses.push_back(addr);
  plan.addr_owner_[addr] = node;
}

void Network::add_anycast_address(NodeId node, net::Ipv4Addr addr) {
  NetworkLayout& plan = mutable_layout();
  plan.nodes_.at(node).addresses.push_back(addr);
  plan.addr_owner_.emplace(addr, node);  // first instance wins owner_of(); others unlisted
}

void Network::set_handler(NodeId node, DatagramHandler* handler) {
  attach_.at(node).handler = handler;
}

RoutingTable& Network::routes(NodeId node) { return mutable_layout().nodes_.at(node).routes; }

void Network::set_link_latency(NodeId a, NodeId b, SimDuration latency) {
  mutable_layout().link_latency_[{std::min(a, b), std::max(a, b)}] = latency;
}

void Network::set_default_latency(SimDuration latency) {
  mutable_layout().default_latency_ = latency;
}

void Network::add_tap(NodeId node, PacketTap* tap) { attach_.at(node).taps.push_back(tap); }

void Network::remove_tap(NodeId node, PacketTap* tap) {
  auto& taps = attach_.at(node).taps;
  taps.erase(std::remove(taps.begin(), taps.end(), tap), taps.end());
}

SimDuration Network::latency(NodeId a, NodeId b) const {
  const SimDuration* lat = layout_->link_latency_.find({std::min(a, b), std::max(a, b)});
  return lat == nullptr ? layout_->default_latency_ : *lat;
}

bool Network::is_local(NodeId node, net::Ipv4Addr addr) const {
  const auto& addresses = layout_->nodes_.at(node).addresses;
  return std::find(addresses.begin(), addresses.end(), addr) != addresses.end();
}

NetworkCounters Network::counters() const {
  NetworkCounters c;
  c.delivered = delivered_;
  c.forwarded = forwarded_;
  c.no_route = drops_.get(static_cast<int>(DropReason::kNoRoute));
  c.ttl_expired = drops_.get(static_cast<int>(DropReason::kTtlExpired));
  c.link_loss = drops_.get(static_cast<int>(DropReason::kLinkLoss));
  c.link_down = drops_.get(static_cast<int>(DropReason::kLinkDown));
  c.endpoint_down = drops_.get(static_cast<int>(DropReason::kEndpointDown));
  c.per_link.reserve(link_drops_.size());
  link_drops_.for_each([&](const std::pair<NodeId, NodeId>& key, const LinkDrops& drops) {
    LinkDropCounters link;
    // Node ids are replica-local; names are the stable identity, ordered
    // lexicographically so the key is direction-independent.
    const std::string& first = layout_->name(key.first);
    const std::string& second = layout_->name(key.second);
    link.node_a = std::min(first, second);
    link.node_b = std::max(first, second);
    link.link_loss = drops.loss;
    link.link_down = drops.down;
    c.per_link.push_back(std::move(link));
  });
  std::sort(c.per_link.begin(), c.per_link.end(),
            [](const LinkDropCounters& a, const LinkDropCounters& b) {
              if (a.node_a != b.node_a) return a.node_a < b.node_a;
              return a.node_b < b.node_b;
            });
  return c;
}

void Network::send(NodeId from, net::Ipv4Header header, BytesView payload) {
  // An origin inside an outage window (dropped VP session, collector
  // maintenance) cannot emit: its packets die in the local stack.
  if (injector_ != nullptr && injector_->node_down(layout_->name(from), now())) {
    drops_.add(static_cast<int>(DropReason::kEndpointDown));
    ++endpoint_drops_[from];
    injector_->count_endpoint_drop();
    return;
  }
  // Loopback delivery without touching the wire.
  if (is_local(from, header.dst)) {
    Bytes body(payload.begin(), payload.end());
    loop_.schedule(0, [this, from, header, body = std::move(body)]() mutable {
      arrive(from, header, std::move(body));
    });
    return;
  }
  forward(from, header, Bytes(payload.begin(), payload.end()), /*decrement_ttl=*/false);
}

void Network::forward(NodeId node, net::Ipv4Header header, Bytes payload,
                      bool decrement_ttl) {
  const NetworkLayout::Node& n = layout_->nodes_.at(node);
  // TTL is checked before the routing decision, as real routers do: an
  // expiring packet draws Time-Exceeded even when there is no route onward.
  if (decrement_ttl) {
    if (header.ttl <= 1) {
      drops_.add(static_cast<int>(DropReason::kTtlExpired));
      emit_time_exceeded(node, header, BytesView(payload));
      return;
    }
  }
  auto next = n.routes.lookup(header.dst);
  if (!next) {
    drops_.add(static_cast<int>(DropReason::kNoRoute));
    SP_LOG_DEBUG("no route from " + n.name + " to " + header.dst.str());
    return;
  }
  NodeId next_hop = *next;
  if (injector_ != nullptr) {
    const std::string& hop_name = layout_->name(next_hop);
    if (injector_->link_down(n.name, hop_name, now())) {
      drops_.add(static_cast<int>(DropReason::kLinkDown));
      ++link_drops_[{std::min(node, next_hop), std::max(node, next_hop)}].down;
      return;
    }
    if (injector_->lose_packet(n.name, hop_name, header, BytesView(payload), now())) {
      drops_.add(static_cast<int>(DropReason::kLinkLoss));
      ++link_drops_[{std::min(node, next_hop), std::max(node, next_hop)}].loss;
      return;
    }
  }
  if (decrement_ttl) {
    --header.ttl;
    ++forwarded_;
  }
  SimDuration delay = latency(node, next_hop);
  if (injector_ != nullptr) {
    delay += injector_->jitter_for(n.name, layout_->name(next_hop), header,
                                   BytesView(payload), now());
  }
  loop_.schedule(delay, [this, next_hop, header, payload = std::move(payload)]() mutable {
    arrive(next_hop, header, std::move(payload));
  });
}

void Network::arrive(NodeId node, net::Ipv4Header header, Bytes payload) {
  net::Ipv4Datagram dgram{header, std::move(payload)};
  // Taps fire on physical arrival, before any delivery/forwarding decision —
  // an on-wire observer sees even packets that expire at this hop.
  for (PacketTap* tap : attach_.at(node).taps) tap->on_packet(*this, node, dgram);
  if (is_local(node, header.dst)) {
    // A destination inside an outage window swallows its traffic: the taps
    // above still fire (on-wire observers are not affected by the endpoint
    // being down), but delivery fails silently.
    if (injector_ != nullptr && injector_->node_down(layout_->name(node), now())) {
      drops_.add(static_cast<int>(DropReason::kEndpointDown));
      ++endpoint_drops_[node];
      injector_->count_endpoint_drop();
      return;
    }
    ++delivered_;
    DatagramHandler* handler = attach_.at(node).handler;
    if (handler != nullptr) handler->on_datagram(*this, node, dgram);
    return;
  }
  forward(node, dgram.header, std::move(dgram.payload), /*decrement_ttl=*/true);
}

void Network::emit_time_exceeded(NodeId router, const net::Ipv4Header& header,
                                 BytesView payload) {
  // Hosts silently drop expired packets; only routers answer with ICMP
  // (RFC 1812 §4.3.2.4 also forbids ICMP about ICMP errors).
  if (layout_->kind(router) != NodeKind::kRouter) return;
  if (header.protocol == net::IpProto::kIcmp) return;
  Bytes original = header.encode(payload);
  net::IcmpMessage icmp = net::IcmpMessage::time_exceeded(original);
  net::Ipv4Header reply;
  reply.src = layout_->address(router);
  reply.dst = header.src;
  reply.ttl = 64;
  reply.protocol = net::IpProto::kIcmp;
  Bytes body = icmp.encode();
  forward(router, reply, std::move(body), /*decrement_ttl=*/false);
}

}  // namespace shadowprobe::sim
