// Convenience for emitting a UDP datagram from a node.
#pragma once

#include "net/ipv4.h"
#include "net/udp.h"
#include "sim/network.h"

namespace shadowprobe::sim {

inline void send_udp(Network& net, NodeId from, net::Ipv4Addr src, net::Ipv4Addr dst,
                     std::uint16_t src_port, std::uint16_t dst_port, BytesView payload,
                     std::uint8_t ttl = 64, std::uint16_t ip_id = 0) {
  net::UdpDatagram udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.payload.assign(payload.begin(), payload.end());
  net::Ipv4Header header;
  header.src = src;
  header.dst = dst;
  header.ttl = ttl;
  header.identification = ip_id;
  header.protocol = net::IpProto::kUdp;
  net.send(from, header, udp.encode(src, dst));
}

}  // namespace shadowprobe::sim
