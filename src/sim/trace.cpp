#include "sim/trace.h"

#include "common/strutil.h"
#include "net/dns.h"
#include "net/http.h"
#include "net/icmp.h"
#include "net/tcp.h"
#include "net/tls.h"
#include "net/udp.h"

namespace shadowprobe::sim {

namespace {

const char* proto_name(net::IpProto protocol) {
  switch (protocol) {
    case net::IpProto::kIcmp: return "ICMP";
    case net::IpProto::kTcp: return "TCP";
    case net::IpProto::kUdp: return "UDP";
  }
  return "?";
}

std::string summarize_app_payload(std::uint16_t dst_port, BytesView payload) {
  if (payload.empty()) return "";
  if (dst_port == 53) {
    auto dns = net::DnsMessage::decode(payload);
    if (dns.ok() && !dns.value().questions.empty()) {
      return strprintf("DNS %s %s %s", dns.value().header.qr ? "response" : "query",
                       dns.value().questions.front().name.str().c_str(),
                       net::dns_type_name(dns.value().questions.front().type).c_str());
    }
  }
  if (dst_port == 80) {
    auto request = net::HttpRequest::decode(payload);
    if (request.ok()) {
      return strprintf("HTTP %s %s host=%s", request.value().method.c_str(),
                       request.value().target.c_str(), request.value().host().c_str());
    }
  }
  if (dst_port == 443) {
    auto hello = net::TlsClientHello::decode_record(payload);
    if (hello.ok()) {
      std::string sni = hello.value().sni().value_or("-");
      return strprintf("TLS ClientHello sni=%s%s", sni.c_str(),
                       hello.value().has_ech() ? " +ech" : "");
    }
  }
  return "";
}

}  // namespace

std::string summarize_packet(const net::Ipv4Datagram& dgram) {
  switch (dgram.header.protocol) {
    case net::IpProto::kIcmp: {
      auto icmp = net::IcmpMessage::decode(BytesView(dgram.payload));
      if (!icmp.ok()) return "ICMP (undecodable)";
      switch (icmp.value().type) {
        case net::IcmpType::kTimeExceeded: return "ICMP time-exceeded";
        case net::IcmpType::kDestUnreachable: return "ICMP unreachable";
        case net::IcmpType::kEchoRequest: return "ICMP echo request";
        case net::IcmpType::kEchoReply: return "ICMP echo reply";
      }
      return "ICMP";
    }
    case net::IpProto::kUdp: {
      auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                          dgram.header.dst);
      if (!udp.ok()) return "UDP (undecodable)";
      std::string app = summarize_app_payload(udp.value().dst_port,
                                              BytesView(udp.value().payload));
      return app.empty() ? strprintf("UDP %u bytes", static_cast<unsigned>(
                                                         udp.value().payload.size()))
                         : app;
    }
    case net::IpProto::kTcp: {
      auto tcp = net::TcpSegment::decode(BytesView(dgram.payload), dgram.header.src,
                                         dgram.header.dst);
      if (!tcp.ok()) return "TCP (undecodable)";
      std::string app = summarize_app_payload(tcp.value().dst_port,
                                              BytesView(tcp.value().payload));
      if (!app.empty()) return app;
      return strprintf("TCP [%s] seq=%u %u bytes", tcp.value().flags.str().c_str(),
                       tcp.value().seq,
                       static_cast<unsigned>(tcp.value().payload.size()));
    }
  }
  return "?";
}

void TraceRecorder::on_packet(Network& net, NodeId node, const net::Ipv4Datagram& dgram) {
  ++captured_;
  protocols_.add(proto_name(dgram.header.protocol));
  if (entries_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  TraceEntry entry;
  entry.time = net.now();
  entry.node = node;
  entry.src = dgram.header.src;
  entry.dst = dgram.header.dst;
  entry.protocol = dgram.header.protocol;
  entry.ttl = dgram.header.ttl;
  entry.payload_bytes = dgram.payload.size();
  if (dgram.header.protocol == net::IpProto::kUdp) {
    auto udp = net::UdpDatagram::decode(BytesView(dgram.payload), dgram.header.src,
                                        dgram.header.dst);
    if (udp.ok()) {
      entry.src_port = udp.value().src_port;
      entry.dst_port = udp.value().dst_port;
    }
  } else if (dgram.header.protocol == net::IpProto::kTcp) {
    auto tcp = net::TcpSegment::decode(BytesView(dgram.payload), dgram.header.src,
                                       dgram.header.dst);
    if (tcp.ok()) {
      entry.src_port = tcp.value().src_port;
      entry.dst_port = tcp.value().dst_port;
    }
  }
  entry.info = summarize_packet(dgram);
  entries_.push_back(std::move(entry));
}

std::string TraceRecorder::dump(std::size_t max_lines) const {
  std::string out;
  std::size_t lines = std::min(max_lines, entries_.size());
  for (std::size_t i = 0; i < lines; ++i) {
    const TraceEntry& entry = entries_[i];
    out += strprintf("%-12s %s:%u > %s:%u ttl=%u  %s\n",
                     format_duration(entry.time).c_str(), entry.src.str().c_str(),
                     entry.src_port, entry.dst.str().c_str(), entry.dst_port, entry.ttl,
                     entry.info.c_str());
  }
  if (entries_.size() > lines) {
    out += strprintf("... %zu more entries\n", entries_.size() - lines);
  }
  return out;
}

void TraceRecorder::clear() {
  entries_.clear();
  captured_ = 0;
  dropped_ = 0;
  protocols_ = {};
}

}  // namespace shadowprobe::sim
