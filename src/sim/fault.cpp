#include "sim/fault.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace shadowprobe::sim {
namespace {

// All injector streams hang off seed ^ kFaultSalt so the fault layer never
// shares a stream with behavioral components keyed off the same master seed.
constexpr std::uint64_t kFaultSalt = 0x6661756c74ull;  // "fault"

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

Result<double> parse_number(std::string_view text, std::string_view what) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Error("fault profile: malformed " + std::string(what) + " value '" +
                 std::string(text) + "'");
  }
  return value;
}

Result<double> parse_probability(std::string_view text, std::string_view what) {
  Result<double> value = parse_number(text, what);
  if (!value.ok()) return value;
  // Negated range test so NaN (which from_chars accepts) is rejected too.
  if (!(value.value() >= 0.0 && value.value() < 1.0)) {
    return Error("fault profile: " + std::string(what) + " must be in [0, 1), got '" +
                 std::string(text) + "'");
  }
  return value;
}

Result<SimDuration> parse_duration(std::string_view text, std::string_view what) {
  std::string_view digits = text;
  SimDuration unit = 0;
  auto ends_with = [&](std::string_view suffix) {
    if (digits.size() <= suffix.size() || !digits.ends_with(suffix)) return false;
    digits.remove_suffix(suffix.size());
    return true;
  };
  // Two-letter suffixes first so "5ms" is not read as minutes of "5m"+"s".
  if (ends_with("us")) {
    unit = kMicrosecond;
  } else if (ends_with("ms")) {
    unit = kMillisecond;
  } else if (ends_with("s")) {
    unit = kSecond;
  } else if (ends_with("m")) {
    unit = kMinute;
  } else if (ends_with("h")) {
    unit = kHour;
  } else if (ends_with("d")) {
    unit = kDay;
  } else {
    return Error("fault profile: " + std::string(what) + " needs a unit suffix " +
                 "(us/ms/s/m/h/d), got '" + std::string(text) + "'");
  }
  Result<double> value = parse_number(digits, what);
  if (!value.ok()) return Error(value.error().message);
  // Negated test: NaN/inf must not survive into the int64 duration cast.
  if (!(value.value() >= 0.0)) {
    return Error("fault profile: " + std::string(what) + " must be non-negative, got '" +
                 std::string(text) + "'");
  }
  double scaled = value.value() * static_cast<double>(unit);
  if (scaled > 9.0e18) {
    return Error("fault profile: " + std::string(what) + " is too large: '" +
                 std::string(text) + "'");
  }
  return static_cast<SimDuration>(scaled);
}

Result<int> parse_count(std::string_view text, std::string_view what, int min_value) {
  int value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Error("fault profile: malformed " + std::string(what) + " value '" +
                 std::string(text) + "'");
  }
  if (value < min_value) {
    return Error("fault profile: " + std::string(what) + " must be >= " +
                 std::to_string(min_value) + ", got " + std::to_string(value));
  }
  return value;
}

std::string format_probability(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p);
  return buf;
}

// Compact canonical duration: the largest unit that divides evenly.
std::string canonical_duration(SimDuration d) {
  struct Unit {
    SimDuration scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {{kDay, "d"}, {kHour, "h"},        {kMinute, "m"},
                                    {kSecond, "s"}, {kMillisecond, "ms"}, {kMicrosecond, "us"}};
  for (const Unit& unit : kUnits) {
    if (d % unit.scale == 0) return std::to_string(d / unit.scale) + unit.suffix;
  }
  return std::to_string(d) + "us";
}

FaultProfile lossy_preset() {
  FaultProfile profile;
  profile.link_loss = 0.05;
  profile.jitter = 20 * kMillisecond;
  profile.link_flap_rate = 0.02;
  profile.link_flap_duration = 10 * kMinute;
  profile.vp_churn = 0.10;
  profile.vp_outage = 1 * kHour;
  return profile;
}

}  // namespace

SimDuration FaultProfile::decoy_deadline() const noexcept {
  // Exponential backoff: rto + 2*rto + ... + 2^max_retries * rto, plus one
  // second of slack for the final attempt's round trip.
  SimDuration budget = 0;
  SimDuration step = retry_timeout;
  for (int i = 0; i <= max_retries; ++i) {
    budget += step;
    step *= 2;
  }
  return budget + 1 * kSecond;
}

Result<FaultProfile> FaultProfile::parse(std::string_view spec) {
  FaultProfile profile;
  spec = trim(spec);
  if (spec.empty()) return profile;

  bool first = true;
  while (!spec.empty()) {
    std::size_t comma = spec.find(',');
    std::string_view item = trim(spec.substr(0, comma));
    spec = comma == std::string_view::npos ? std::string_view{} : spec.substr(comma + 1);
    if (item.empty()) continue;

    // A leading bare word selects a preset; later items override its knobs.
    if (first && item.find('=') == std::string_view::npos) {
      if (item == "none") {
        profile = FaultProfile{};
      } else if (item == "lossy") {
        profile = lossy_preset();
      } else {
        return Error("fault profile: unknown preset '" + std::string(item) +
                     "' (known: none, lossy)");
      }
      first = false;
      continue;
    }
    first = false;

    std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return Error("fault profile: expected key=value, got '" + std::string(item) + "'");
    }
    std::string_view key = trim(item.substr(0, eq));
    std::string_view value = trim(item.substr(eq + 1));
    if (value.empty()) {
      return Error("fault profile: empty value for '" + std::string(key) + "'");
    }

    if (key == "loss") {
      Result<double> p = parse_probability(value, "loss");
      if (!p.ok()) return p.error();
      profile.link_loss = p.value();
    } else if (key == "jitter") {
      Result<SimDuration> d = parse_duration(value, "jitter");
      if (!d.ok()) return d.error();
      profile.jitter = d.value();
    } else if (key == "flap") {
      // rate[@duration]
      std::size_t at = value.find('@');
      Result<double> p = parse_probability(value.substr(0, at), "flap rate");
      if (!p.ok()) return p.error();
      profile.link_flap_rate = p.value();
      if (at != std::string_view::npos) {
        Result<SimDuration> d = parse_duration(value.substr(at + 1), "flap duration");
        if (!d.ok()) return d.error();
        profile.link_flap_duration = d.value();
      }
    } else if (key == "vp-churn") {
      // p[@outage]
      std::size_t at = value.find('@');
      Result<double> p = parse_probability(value.substr(0, at), "vp-churn rate");
      if (!p.ok()) return p.error();
      profile.vp_churn = p.value();
      if (at != std::string_view::npos) {
        Result<SimDuration> d = parse_duration(value.substr(at + 1), "vp-churn outage");
        if (!d.ok()) return d.error();
        profile.vp_outage = d.value();
      }
    } else if (key == "hp-outage") {
      // loc@start+duration
      std::size_t at = value.find('@');
      std::size_t plus = at == std::string_view::npos ? std::string_view::npos
                                                      : value.find('+', at + 1);
      if (at == std::string_view::npos || plus == std::string_view::npos || at == 0) {
        return Error("fault profile: hp-outage wants LOC@START+DURATION, got '" +
                     std::string(value) + "'");
      }
      CollectorOutage outage;
      outage.location = std::string(trim(value.substr(0, at)));
      Result<SimDuration> start =
          parse_duration(value.substr(at + 1, plus - at - 1), "hp-outage start");
      if (!start.ok()) return start.error();
      Result<SimDuration> duration =
          parse_duration(value.substr(plus + 1), "hp-outage duration");
      if (!duration.ok()) return duration.error();
      outage.start = start.value();
      outage.duration = duration.value();
      profile.collector_outages.push_back(std::move(outage));
    } else if (key == "retries") {
      Result<int> n = parse_count(value, "retries", 0);
      if (!n.ok()) return n.error();
      profile.max_retries = n.value();
    } else if (key == "rto") {
      Result<SimDuration> d = parse_duration(value, "rto");
      if (!d.ok()) return d.error();
      if (d.value() <= 0) {
        return Error("fault profile: rto must be positive, got '" + std::string(value) +
                     "'");
      }
      profile.retry_timeout = d.value();
    } else if (key == "quarantine") {
      Result<int> n = parse_count(value, "quarantine", 1);
      if (!n.ok()) return n.error();
      profile.quarantine_threshold = n.value();
    } else {
      return Error("fault profile: unknown key '" + std::string(key) + "'");
    }
  }
  return profile;
}

std::string FaultProfile::str() const {
  std::string out;
  auto add = [&](const std::string& item) {
    if (!out.empty()) out += ',';
    out += item;
  };
  if (link_loss > 0.0) add("loss=" + format_probability(link_loss));
  if (jitter > 0) add("jitter=" + canonical_duration(jitter));
  if (link_flap_rate > 0.0) {
    add("flap=" + format_probability(link_flap_rate) + "@" +
        canonical_duration(link_flap_duration));
  }
  if (vp_churn > 0.0) {
    add("vp-churn=" + format_probability(vp_churn) + "@" + canonical_duration(vp_outage));
  }
  for (const CollectorOutage& outage : collector_outages) {
    add("hp-outage=" + outage.location + "@" + canonical_duration(outage.start) + "+" +
        canonical_duration(outage.duration));
  }
  add("retries=" + std::to_string(max_retries));
  add("rto=" + canonical_duration(retry_timeout));
  add("quarantine=" + std::to_string(quarantine_threshold));
  return out;
}

FaultInjector::FaultInjector(FaultProfile profile, std::uint64_t seed,
                             SimDuration horizon)
    : profile_(std::move(profile)), rng_(seed ^ kFaultSalt), horizon_(horizon) {}

void FaultInjector::add_node_outage(const std::string& node_name, OutageWindow window) {
  node_outages_[node_name].push_back(window);
}

bool FaultInjector::node_down(const std::string& node_name, SimTime now) const {
  auto it = node_outages_.find(node_name);
  if (it == node_outages_.end()) return false;
  for (const OutageWindow& window : it->second) {
    if (window.contains(now)) return true;
  }
  return false;
}

const std::vector<OutageWindow>* FaultInjector::node_outages(
    const std::string& node_name) const {
  auto it = node_outages_.find(node_name);
  return it == node_outages_.end() ? nullptr : &it->second;
}

std::optional<OutageWindow> FaultInjector::derive_churn_outage(
    const std::string& entity_id, SimTime earliest, SimTime latest) const {
  if (profile_.vp_churn <= 0.0 || latest < earliest) return std::nullopt;
  Rng stream = rng_.derive("churn|" + entity_id);
  if (!stream.chance(profile_.vp_churn)) return std::nullopt;
  SimTime start = earliest + static_cast<SimTime>(stream.below(
                                 static_cast<std::uint64_t>(latest - earliest) + 1));
  return OutageWindow{start, start + profile_.vp_outage};
}

const std::optional<OutageWindow>& FaultInjector::flap_window(const std::string& a,
                                                             const std::string& b) {
  const std::string& lo = std::min(a, b);
  const std::string& hi = std::max(a, b);
  std::string key = lo + "|" + hi;
  auto it = flap_cache_.find(key);
  if (it != flap_cache_.end()) return it->second;

  std::optional<OutageWindow> window;
  if (profile_.link_flap_rate > 0.0 && horizon_ > profile_.link_flap_duration) {
    Rng stream = rng_.derive("flap|" + key);
    if (stream.chance(profile_.link_flap_rate)) {
      SimTime start = static_cast<SimTime>(stream.below(
          static_cast<std::uint64_t>(horizon_ - profile_.link_flap_duration)));
      window = OutageWindow{start, start + profile_.link_flap_duration};
    }
  }
  return flap_cache_.emplace(std::move(key), window).first->second;
}

bool FaultInjector::link_down(const std::string& a, const std::string& b, SimTime now) {
  const std::optional<OutageWindow>& window = flap_window(a, b);
  if (window && window->contains(now)) {
    ++stats_.flap_drops;
    return true;
  }
  return false;
}

Rng FaultInjector::packet_stream(const char* kind, const std::string& a,
                                 const std::string& b, const net::Ipv4Header& header,
                                 BytesView payload, SimTime now) const {
  // Key by what identifies this traversal attempt — including the simulated
  // instant, so a retransmission of the same segment over the same hop gets
  // an independent draw. Every component must be LAYOUT-invariant: the IP id
  // and the payload bytes are excluded on purpose, because shared-infra
  // stacks (a honeypot's TCP stack, a resolver's qid counter) draw those
  // from sequential cosmetic streams whose consumption order depends on
  // which VPs share the replica. The payload *length* is invariant and
  // still separates e.g. a bare ACK from a data segment sent at the same
  // instant; same-size packets of one flow at one instant share their fate
  // (deterministic burst loss).
  std::string key = std::string(kind) + "|" + std::min(a, b) + "|" + std::max(a, b) +
                    "|" + std::to_string(header.src.value()) + "|" +
                    std::to_string(header.dst.value()) + "|" +
                    std::to_string(static_cast<int>(header.protocol)) + "|" +
                    std::to_string(header.ttl) + "|" +
                    std::to_string(payload.size()) + "|" + std::to_string(now);
  return rng_.derive(key);
}

bool FaultInjector::lose_packet(const std::string& a, const std::string& b,
                                const net::Ipv4Header& header, BytesView payload,
                                SimTime now) {
  if (profile_.link_loss <= 0.0) return false;
  Rng stream = packet_stream("loss", a, b, header, payload, now);
  if (!stream.chance(profile_.link_loss)) return false;
  ++stats_.loss_drops;
  return true;
}

SimDuration FaultInjector::jitter_for(const std::string& a, const std::string& b,
                                      const net::Ipv4Header& header, BytesView payload,
                                      SimTime now) {
  if (profile_.jitter <= 0) return 0;
  Rng stream = packet_stream("jitter", a, b, header, payload, now);
  SimDuration extra = static_cast<SimDuration>(
      stream.below(static_cast<std::uint64_t>(profile_.jitter) + 1));
  if (extra > 0) ++stats_.jittered_packets;
  return extra;
}

}  // namespace shadowprobe::sim
