// Longest-prefix-match forwarding table.
//
// Every simulated node (host or router) owns one. Hosts typically carry a
// single default route to their gateway; routers carry the prefixes the
// topology builder installs along generated paths.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace shadowprobe::sim {

/// Opaque node handle inside a Network.
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~0U;

class RoutingTable {
 public:
  /// Installs (or replaces) a route; longer prefixes win on lookup.
  void add(net::Prefix prefix, NodeId next_hop);
  void set_default(NodeId next_hop) { add(net::Prefix(net::Ipv4Addr(0), 0), next_hop); }

  /// Longest-prefix-match; nullopt when no route (not even default) covers.
  [[nodiscard]] std::optional<NodeId> lookup(net::Ipv4Addr dst) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    net::Prefix prefix;
    NodeId next_hop;
  };
  // Sorted by descending prefix length so lookup returns the first match.
  std::vector<Entry> entries_;
};

}  // namespace shadowprobe::sim
