// Small string helpers shared across modules (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace shadowprobe {

/// Splits on a single character; empty fields are kept ("a..b" -> a,"",b).
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII-only lowercase copy.
std::string to_lower(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality (HTTP header names, DNS names).
bool iequals(std::string_view a, std::string_view b);

/// Parses a non-negative decimal integer; returns -1 on any non-digit or
/// overflow past int64.
long long parse_uint(std::string_view s);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace shadowprobe
