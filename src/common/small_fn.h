// Small-buffer-optimized move-only callable.
//
// std::function's inline buffer (16 bytes on libstdc++) cannot hold the
// simulator's per-hop delivery closures (~56 bytes: node id + IPv4 header +
// payload vector), so every scheduled event paid a malloc/free pair — the
// single largest allocation source in a campaign (one per packet hop,
// ~8.4M per simulated day at default scale). SmallFn inlines up to
// `InlineSize` bytes of captures directly in the event-queue entry and only
// heap-allocates for oversized callables.
//
// Move-only on purpose: event actions are scheduled once and invoked once;
// nothing ever copies them, and dropping copyability admits move-only
// captures std::function would reject.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace shadowprobe {

template <typename Sig, std::size_t InlineSize = 64>
class SmallFn;

template <typename R, typename... Args, std::size_t InlineSize>
class SmallFn<R(Args...), InlineSize> {
 public:
  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineSize && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      vt_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      vt_ = &boxed_vtable<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  R operator()(Args... args) {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-constructs *dst from *src, then destroys *src (relocation): the
    // single hook heap sift-up/down needs, fused so one indirect call covers
    // both halves of a move.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](void* buf, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(buf)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        if constexpr (std::is_trivially_copyable_v<Fn>) {
          std::memcpy(dst, src, sizeof(Fn));
        } else {
          Fn* from = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        }
      },
      [](void* buf) noexcept { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable boxed_vtable{
      [](void* buf, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(buf)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept { std::memcpy(dst, src, sizeof(Fn*)); },
      [](void* buf) noexcept { delete *std::launder(reinterpret_cast<Fn**>(buf)); },
  };

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[InlineSize];
};

}  // namespace shadowprobe
