#include "common/rng.h"

#include <cmath>

namespace shadowprobe {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng Rng::fork(std::string_view label) const noexcept {
  // Mixing a fresh draw with the label hash gives child streams that are
  // stable under renaming-free refactors yet decoupled from sibling forks.
  std::uint64_t seed = gen_.next() ^ fnv1a(label);
  return Rng(seed);
}

Rng Rng::derive(std::string_view label) const noexcept {
  // Pure function of (origin seed, label): no stream state is read or
  // advanced, so the result is invariant to call order and to draws made on
  // this generator. The golden-ratio multiply separates derive-space from
  // fork-space (which XORs the raw label hash with a stream draw).
  std::uint64_t h = fnv1a(label) * 0x9E3779B97F4A7C15ULL;
  SplitMix64 sm(origin_ ^ h);
  return Rng(sm.next());
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (n == 0) return 0;
  std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = gen_.next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() noexcept {
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::lognormal(double median, double sigma) noexcept {
  // Box–Muller for the normal deviate.
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return median * std::exp(sigma * z);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  if (u <= 0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return 0;
  double x = uniform() * total;
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace shadowprobe
