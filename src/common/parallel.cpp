#include "common/parallel.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace shadowprobe {

int resolve_worker_count(int requested) noexcept {
  if (requested < 1) return 1;
  if (requested > kMaxParallelWorkers) return kMaxParallelWorkers;
  return requested;
}

void parallel_workers(int workers, const std::function<void(int)>& fn) {
  workers = resolve_worker_count(workers);
  if (workers == 1) {
    fn(0);
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        fn(w);
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
      }
    });
  }
  try {
    fn(0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (std::thread& worker : pool) worker.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void parallel_chunks(std::size_t count, int workers,
                     const std::function<void(int, std::size_t, std::size_t)>& fn) {
  workers = resolve_worker_count(workers);
  std::size_t per = count / static_cast<std::size_t>(workers);
  std::size_t extra = count % static_cast<std::size_t>(workers);
  // Chunk w covers [w*per + min(w, extra), ...): the first `extra` chunks
  // take one extra element, so bounds are computable per worker.
  parallel_workers(workers, [&](int w) {
    auto uw = static_cast<std::size_t>(w);
    std::size_t begin = uw * per + std::min(uw, extra);
    std::size_t end = begin + per + (uw < extra ? 1 : 0);
    fn(w, begin, end);
  });
}

}  // namespace shadowprobe
