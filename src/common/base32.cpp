#include "common/base32.h"

#include <array>

namespace shadowprobe {

namespace {
constexpr std::string_view kAlphabet = "abcdefghijklmnopqrstuvwxyz234567";

std::array<std::int8_t, 256> make_reverse() {
  std::array<std::int8_t, 256> rev{};
  rev.fill(-1);
  for (std::size_t i = 0; i < kAlphabet.size(); ++i) {
    rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
    rev[static_cast<unsigned char>(kAlphabet[i] - 'a' + 'A')] = static_cast<std::int8_t>(i);
  }
  return rev;
}
}  // namespace

std::string base32_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t acc = 0;
  int bits = 0;
  for (std::uint8_t b : data) {
    acc = (acc << 8) | b;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kAlphabet[(acc >> bits) & 0x1F]);
    }
  }
  if (bits > 0) out.push_back(kAlphabet[(acc << (5 - bits)) & 0x1F]);
  return out;
}

std::optional<Bytes> base32_decode(std::string_view text) {
  static const std::array<std::int8_t, 256> rev = make_reverse();
  // Valid unpadded lengths mod 8 are {0,2,4,5,7}: they correspond to whole
  // byte counts mod 5 of {0,1,2,3,4}.
  switch (text.size() % 8) {
    case 1:
    case 3:
    case 6:
      return std::nullopt;
    default:
      break;
  }
  Bytes out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    std::int8_t v = rev[static_cast<unsigned char>(c)];
    if (v < 0) return std::nullopt;
    acc = (acc << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  // Leftover bits must be zero padding.
  if (bits > 0 && (acc & ((1U << bits) - 1)) != 0) return std::nullopt;
  return out;
}

}  // namespace shadowprobe
