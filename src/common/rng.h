// Deterministic random number generation.
//
// Reproducibility is a hard requirement of the simulator: one master seed
// must reproduce an entire two-month measurement campaign bit-for-bit. Each
// component therefore derives an *independent* stream from the master seed
// plus a stable string label, so adding RNG consumers to one module never
// perturbs another module's stream.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shadowprobe {

/// SplitMix64 — used to expand seeds; also a fine standalone mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;
  std::uint64_t next() noexcept;

 private:
  std::uint64_t s_[4];
};

/// FNV-1a 64-bit hash of a string; used to fold stream labels into seeds and
/// for deterministic hash-based membership (e.g. blocklist sampling).
std::uint64_t fnv1a(std::string_view s) noexcept;

/// High-level deterministic generator with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed), origin_(seed) {}

  /// Derives a child generator for subsystem `label`. Child streams are
  /// independent of the parent's future output.
  ///
  /// NOTE: fork() *advances* the parent stream, so the child seed depends on
  /// how many draws/forks preceded it. Use fork() only at construction time,
  /// where call order is fixed. For runtime derivation keyed by entity
  /// identity (query names, client/server pairs, decoy domains) use derive().
  [[nodiscard]] Rng fork(std::string_view label) const noexcept;

  /// Derives a child generator purely from this generator's *origin seed* and
  /// `label`. Unlike fork(), derive() neither consumes nor depends on stream
  /// position: derive("x") returns the same stream no matter how many draws,
  /// forks, or other derives happened before. This is the primitive behind
  /// shard-count-invariant determinism — every behavioral draw keyed by a
  /// stable entity name produces identical values regardless of which shard
  /// (or how many shards) executes it.
  [[nodiscard]] Rng derive(std::string_view label) const noexcept;

  /// The seed this generator was constructed from (stable under draws).
  [[nodiscard]] std::uint64_t origin_seed() const noexcept { return origin_; }

  std::uint64_t bits() noexcept { return gen_.next(); }
  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;
  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Bernoulli trial.
  bool chance(double p) noexcept;
  /// Exponential with the given mean (> 0).
  double exponential(double mean) noexcept;
  /// Log-normal parameterized by the *median* and sigma of log-space —
  /// convenient for heavy-tailed retention/replay delays.
  double lognormal(double median, double sigma) noexcept;
  /// Pareto (power-law) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Picks an index weighted by `weights` (all >= 0, at least one > 0).
  std::size_t weighted(const std::vector<double>& weights) noexcept;

  /// Picks a uniformly random element of a non-empty container.
  template <typename Container>
  const auto& pick(const Container& c) noexcept {
    return c[static_cast<std::size_t>(below(c.size()))];
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  friend class RngSeedAccess;

  mutable Xoshiro256 gen_;
  std::uint64_t origin_;
};

}  // namespace shadowprobe
