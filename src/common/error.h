// Minimal expected-like result type used by parsers and codecs.
//
// Wire-format decoding routinely fails on hostile or truncated input, so the
// decode API surfaces errors as values instead of exceptions (the encoders,
// whose failures are programming errors, throw).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace shadowprobe {

/// Error payload carried by Result<T>. A short machine-friendly code plus a
/// human-readable message.
struct Error {
  std::string message;

  explicit Error(std::string msg) : message(std::move(msg)) {}
};

/// A value-or-error sum type. Intentionally tiny: it supports exactly the
/// operations the codecs need (construction, testing, value access).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : data_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Access the value; throws std::logic_error when called on an error, so a
  /// forgotten check fails loudly instead of reading garbage.
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::logic_error("Result::take() on error: " + error().message);
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on value");
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace shadowprobe
