#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace shadowprobe {

namespace {
// Atomic: shard workers (and parallel replica construction) log concurrently.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace shadowprobe
