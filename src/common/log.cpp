#include "common/log.h"

#include <cstdio>

namespace shadowprobe {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace shadowprobe
