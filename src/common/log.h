// Minimal leveled logger.
//
// The simulator is single-threaded by design (determinism), so the logger is
// deliberately simple: a global level, writes to stderr, no locking needed
// beyond what stdio provides.
#pragma once

#include <string>

namespace shadowprobe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& msg);

#define SP_LOG_DEBUG(msg)                                             \
  do {                                                                \
    if (::shadowprobe::log_level() <= ::shadowprobe::LogLevel::kDebug) \
      ::shadowprobe::log_message(::shadowprobe::LogLevel::kDebug, (msg)); \
  } while (0)
#define SP_LOG_INFO(msg)                                              \
  do {                                                                \
    if (::shadowprobe::log_level() <= ::shadowprobe::LogLevel::kInfo)  \
      ::shadowprobe::log_message(::shadowprobe::LogLevel::kInfo, (msg)); \
  } while (0)
#define SP_LOG_WARN(msg)                                              \
  do {                                                                \
    if (::shadowprobe::log_level() <= ::shadowprobe::LogLevel::kWarn)  \
      ::shadowprobe::log_message(::shadowprobe::LogLevel::kWarn, (msg)); \
  } while (0)

}  // namespace shadowprobe
