// Bounds-checked binary readers/writers used by every wire-format codec.
//
// All multi-byte integers are network byte order (big-endian), matching the
// protocols implemented in src/net. Readers never throw on truncated input;
// they set a sticky error flag that callers must check via ok()/error().
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace shadowprobe {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Converts a string payload to raw bytes (byte-for-byte).
Bytes to_bytes(std::string_view s);
/// Converts raw bytes back to a std::string (byte-for-byte).
std::string to_string(BytesView b);
/// Hex dump, lowercase, no separators ("dead beef" -> "deadbeef").
std::string hex(BytesView b);

/// Sequential big-endian writer that appends to an internal buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void raw(std::string_view s);

  /// Overwrites 2 bytes at an absolute offset (for back-patched length
  /// fields, e.g. TLS record/handshake lengths, IPv4 checksum).
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential big-endian reader over a non-owning view.
///
/// On underflow the reader latches an error and every subsequent read returns
/// zero / empty, so decoders can parse straight-line and check once at the
/// end (the pattern every codec in src/net uses).
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads exactly n bytes; returns an empty view (and latches the error) on
  /// underflow.
  BytesView raw(std::size_t n);
  std::string str(std::size_t n);

  void skip(std::size_t n);
  /// Absolute reposition (used by DNS name-compression pointer chasing).
  void seek(std::size_t offset);

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return pos_ <= data_.size() ? data_.size() - pos_ : 0;
  }
  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  /// Latches a caller-detected semantic error (bad magic, invalid enum ...).
  void fail() noexcept { failed_ = true; }

 private:
  [[nodiscard]] bool ensure(std::size_t n) noexcept;

  BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace shadowprobe
