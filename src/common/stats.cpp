#include "common/stats.h"

#include "common/strutil.h"

namespace shadowprobe {

void Cdf::sort() const {
  if (dirty_) {
    std::sort(samples_.begin(), samples_.end());
    dirty_ = false;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  sort();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Cdf::quantile(double p) const {
  if (samples_.empty()) return 0.0;
  sort();
  p = std::clamp(p, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(samples_.size()));
  if (idx >= samples_.size()) idx = samples_.size() - 1;
  return samples_[idx];
}

double Cdf::min() const {
  if (samples_.empty()) return 0.0;
  sort();
  return samples_.front();
}

double Cdf::max() const {
  if (samples_.empty()) return 0.0;
  sort();
  return samples_.back();
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::series(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  sort();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Probe at quantile positions so the series tracks the data's own scale
    // (log-spanning delays would waste probes on a linear x grid).
    std::size_t idx = i * (samples_.size() - 1) / (points > 1 ? points - 1 : 1);
    double x = samples_[idx];
    out.emplace_back(x, at(x));
  }
  return out;
}

void BucketHistogram::add(double sample) {
  std::size_t bucket = 0;
  while (bucket < edges_.size() && sample >= edges_[bucket]) ++bucket;
  ++counts_[bucket];
  ++total_;
}

std::string BucketHistogram::label(std::size_t bucket) const {
  if (edges_.empty()) return "all";
  if (bucket == 0) return strprintf("< %.6g", edges_.front());
  if (bucket >= edges_.size()) return strprintf(">= %.6g", edges_.back());
  return strprintf("[%.6g, %.6g)", edges_[bucket - 1], edges_[bucket]);
}

}  // namespace shadowprobe
