// DNS-safe base32 codec (RFC 4648 alphabet, lowercase, unpadded).
//
// Decoy identifier strings must survive being embedded in DNS labels, so the
// alphabet is restricted to [a-z2-7]; lowercase because DNS names are
// case-insensitive (0x20 randomization would otherwise corrupt identifiers).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace shadowprobe {

/// Encodes bytes as unpadded lowercase base32.
std::string base32_encode(BytesView data);

/// Decodes unpadded lowercase base32 (uppercase accepted — DNS resolvers may
/// legally change case in flight). Returns nullopt on any invalid character
/// or impossible length.
std::optional<Bytes> base32_decode(std::string_view text);

}  // namespace shadowprobe
