// Pooled allocation primitives for the simulator's per-packet hot paths.
//
// Three tools, all single-threaded by design (each shard replica owns its
// own instances; nothing here is shared across shard worker threads):
//
//   BumpArena   chunked bump allocator with O(1) alloc and bulk reset —
//               backs stable string storage (the DNS label intern table).
//   BufferPool  recycles Bytes (std::vector<uint8_t>) capacity so each
//               simulated packet copy reuses a previously-grown buffer
//               instead of growing a fresh one (sim::Network payload copies,
//               sim::TcpStack segment encodes).
//   FixedPool   freelist of fixed-size blocks for out-of-line callable
//               storage (common/small_fn.h spill blocks).
//
// Determinism: pools only recycle *capacity*, never contents, and no pool
// decision ever feeds an RNG draw or an output ordering — a pooled run is
// behaviourally identical to a heap-allocating run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace shadowprobe {

/// Chunked bump allocator. Allocations are never individually freed;
/// reset() recycles every chunk at once (keeping the capacity).
class BumpArena {
 public:
  explicit BumpArena(std::size_t chunk_bytes = 64 * 1024) : chunk_bytes_(chunk_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Aligned raw storage; alignment must be a power of two.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    std::size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (chunk_ >= chunks_.size() || offset + size > chunks_[chunk_].size) {
      next_chunk(size + align);
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = offset + size;
    ++allocations_;
    return chunks_[chunk_].data.get() + offset;
  }

  /// Copies `s` into the arena; the returned view lives until reset().
  std::string_view store(std::string_view s) {
    if (s.empty()) return {};
    char* p = static_cast<char*>(allocate(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Recycles all chunks without releasing their memory.
  void reset() noexcept {
    chunk_ = 0;
    cursor_ = 0;
    allocations_ = 0;
  }

  [[nodiscard]] std::size_t allocated_chunks() const noexcept { return chunks_.size(); }
  [[nodiscard]] std::uint64_t allocations() const noexcept { return allocations_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void next_chunk(std::size_t at_least) {
    if (chunk_ + 1 < chunks_.size() && chunks_[chunk_ + 1].size >= at_least) {
      ++chunk_;  // reset()-recycled chunk
      cursor_ = 0;
      return;
    }
    std::size_t size = std::max(chunk_bytes_, at_least);
    Chunk chunk{std::make_unique<std::byte[]>(size), size};
    if (chunks_.empty() || chunk_ + 1 >= chunks_.size()) {
      chunks_.push_back(std::move(chunk));
      chunk_ = chunks_.size() - 1;
    } else {
      chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(chunk_) + 1,
                     std::move(chunk));
      ++chunk_;
    }
    cursor_ = 0;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // index of the chunk currently bumped into
  std::size_t cursor_ = 0;  // bump offset inside chunks_[chunk_]
  std::uint64_t allocations_ = 0;
};

/// Recycles Bytes capacity: acquire() hands back a cleared buffer with the
/// largest capacity seen so far, release() returns it. Per-packet payload
/// copies amortize to zero heap traffic once the pool is warm.
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_pooled = 256) : max_pooled_(max_pooled) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  [[nodiscard]] Bytes acquire() {
    if (free_.empty()) return Bytes{};
    Bytes buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    ++reuses_;
    return buf;
  }

  /// Convenience: acquire + copy in one step.
  [[nodiscard]] Bytes acquire_copy(BytesView data) {
    Bytes buf = acquire();
    buf.assign(data.begin(), data.end());
    return buf;
  }

  /// Returns a buffer's capacity to the pool (contents are discarded).
  void release(Bytes&& buf) noexcept {
    if (buf.capacity() == 0 || free_.size() >= max_pooled_) return;
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] std::size_t pooled() const noexcept { return free_.size(); }
  [[nodiscard]] std::uint64_t reuses() const noexcept { return reuses_; }

 private:
  std::vector<Bytes> free_;
  std::size_t max_pooled_;
  std::uint64_t reuses_ = 0;
};

/// Freelist of fixed-size blocks carved from BumpArena chunks. O(1)
/// allocate/deallocate; all blocks die with the pool.
template <std::size_t BlockSize, std::size_t Align = alignof(std::max_align_t)>
class FixedPool {
 public:
  [[nodiscard]] void* allocate() {
    if (head_ != nullptr) {
      void* block = head_;
      head_ = head_->next;
      ++live_;
      return block;
    }
    ++live_;
    return arena_.allocate(BlockSize, Align);
  }

  void deallocate(void* block) noexcept {
    auto* node = static_cast<FreeNode*>(block);
    node->next = head_;
    head_ = node;
    --live_;
  }

  [[nodiscard]] std::size_t live() const noexcept { return live_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(BlockSize >= sizeof(FreeNode));

  BumpArena arena_;
  FreeNode* head_ = nullptr;
  std::size_t live_ = 0;
};

}  // namespace shadowprobe
