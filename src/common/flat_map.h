// Open-addressing hash containers for the simulator's hot lookup paths.
//
// FlatMap/FlatSet replace std::map where the campaign does per-packet or
// per-decoy lookups (ledger seq/path indexes, in-flight decoy tables, TCP
// connection tables, link-latency lookups): one contiguous slot array,
// power-of-two capacity, linear probing, no per-node allocation and no
// pointer chasing.
//
// Determinism rules (see DESIGN.md "Allocation & interning strategy"):
//   - All hashing goes through FlatHash specializations built on fixed
//     integer mixers — never std::hash — so slot order is identical across
//     platforms and runs.
//   - Slot order is a function of the insert/erase sequence only. It is NOT
//     insertion order and NOT key order; callers that feed iteration into
//     any output must sort first (sorted_items() does both steps).
//
// Erase uses backward-shift deletion (no tombstones), so lookup cost never
// degrades with churn and table state is again a pure function of the
// live-key set plus capacity history.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace shadowprobe {

/// splitmix64 finisher: the bit mixer behind every flat-container hash.
constexpr std::uint64_t mix_u64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Default hash: integral and enum keys, plus anything convertible via a
/// member `value()` (net::Ipv4Addr) or a `flat_hash()` free/member hook.
template <typename K, typename Enable = void>
struct FlatHash {
  std::uint64_t operator()(const K& key) const noexcept {
    if constexpr (std::is_enum_v<K>) {
      return mix_u64(static_cast<std::uint64_t>(key));
    } else if constexpr (std::is_integral_v<K>) {
      return mix_u64(static_cast<std::uint64_t>(key));
    } else if constexpr (std::is_pointer_v<K>) {
      return mix_u64(reinterpret_cast<std::uintptr_t>(key));
    } else if constexpr (requires(const K& k) { k.flat_hash(); }) {
      // Composite keys expose a pre-mixed 64-bit digest (e.g. sim::ConnKey).
      return mix_u64(key.flat_hash());
    } else {
      // Types exposing a stable integral identity (e.g. net::Ipv4Addr).
      return mix_u64(static_cast<std::uint64_t>(key.value()));
    }
  }
};

template <typename A, typename B>
struct FlatHash<std::pair<A, B>> {
  std::uint64_t operator()(const std::pair<A, B>& p) const noexcept {
    std::uint64_t h = FlatHash<A>{}(p.first);
    return mix_u64(h ^ (FlatHash<B>{}(p.second) + 0x9e3779b97f4a7c15ULL + (h << 6)));
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>,
          typename Eq = std::equal_to<K>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    slots_.clear();
    used_.clear();
    size_ = 0;
  }

  /// Pre-sizes the table for `n` live keys without rehash-on-grow.
  void reserve(std::size_t n) {
    std::size_t want = required_buckets(n);
    if (want > slots_.size()) rehash(want);
  }

  V& operator[](const K& key) {
    std::size_t idx = find_or_insert(key);
    return slots_[idx].second;
  }

  template <typename... Args>
  std::pair<V*, bool> emplace(const K& key, Args&&... args) {
    std::size_t before = size_;
    std::size_t idx = find_or_insert(key, std::forward<Args>(args)...);
    return {&slots_[idx].second, size_ != before};
  }

  void insert_or_assign(const K& key, V value) {
    std::size_t before = size_;
    std::size_t idx = find_or_insert(key, std::move(value));
    if (size_ == before) slots_[idx].second = std::move(value);
  }

  [[nodiscard]] V* find(const K& key) noexcept {
    std::size_t idx = find_index(key);
    return idx == npos ? nullptr : &slots_[idx].second;
  }
  [[nodiscard]] const V* find(const K& key) const noexcept {
    std::size_t idx = find_index(key);
    return idx == npos ? nullptr : &slots_[idx].second;
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find_index(key) != npos;
  }
  [[nodiscard]] std::size_t count(const K& key) const noexcept {
    return contains(key) ? 1 : 0;
  }

  [[nodiscard]] V& at(const K& key) {
    V* v = find(key);
    if (v == nullptr) throw std::out_of_range("FlatMap::at: no such key");
    return *v;
  }
  [[nodiscard]] const V& at(const K& key) const {
    const V* v = find(key);
    if (v == nullptr) throw std::out_of_range("FlatMap::at: no such key");
    return *v;
  }

  /// Removes `key`; returns the number of erased entries (0 or 1).
  /// Backward-shift deletion keeps probe chains tombstone-free.
  std::size_t erase(const K& key) {
    std::size_t idx = find_index(key);
    if (idx == npos) return 0;
    std::size_t mask = slots_.size() - 1;
    std::size_t hole = idx;
    std::size_t probe = (hole + 1) & mask;
    while (used_[probe]) {
      std::size_t home = bucket_of(slots_[probe].first);
      // The entry at `probe` may shift into the hole only if its home
      // bucket is outside the (home..hole] arc — i.e. the hole does not cut
      // its probe chain.
      std::size_t dist_home_hole = (hole - home) & mask;
      std::size_t dist_home_probe = (probe - home) & mask;
      if (dist_home_hole <= dist_home_probe) {
        slots_[hole] = std::move(slots_[probe]);
        hole = probe;
      }
      probe = (probe + 1) & mask;
    }
    slots_[hole] = value_type{};
    used_[hole] = 0;
    --size_;
    return 1;
  }

  /// Applies `fn(key, value)` over live slots in table order (deterministic,
  /// but NOT key order — sort before feeding any output).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

  /// Live (key, value) pairs sorted ascending by key — the canonical view
  /// for anything ordering-sensitive (JSON, reports, merges).
  [[nodiscard]] std::vector<value_type> sorted_items() const {
    std::vector<value_type> items;
    items.reserve(size_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) items.push_back(slots_[i]);
    }
    std::sort(items.begin(), items.end(),
              [](const value_type& a, const value_type& b) { return a.first < b.first; });
    return items;
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinBuckets = 8;

  static std::size_t required_buckets(std::size_t live) {
    std::size_t want = kMinBuckets;
    // Max load factor 3/4.
    while (want * 3 < live * 4) want <<= 1;
    return want;
  }

  [[nodiscard]] std::size_t bucket_of(const K& key) const noexcept {
    return static_cast<std::size_t>(Hash{}(key)) & (slots_.size() - 1);
  }

  [[nodiscard]] std::size_t find_index(const K& key) const noexcept {
    if (slots_.empty()) return npos;
    std::size_t mask = slots_.size() - 1;
    std::size_t idx = bucket_of(key);
    while (used_[idx]) {
      if (Eq{}(slots_[idx].first, key)) return idx;
      idx = (idx + 1) & mask;
    }
    return npos;
  }

  template <typename... Args>
  std::size_t find_or_insert(const K& key, Args&&... args) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      rehash(std::max(kMinBuckets, slots_.size() * 2));
    }
    std::size_t mask = slots_.size() - 1;
    std::size_t idx = bucket_of(key);
    while (used_[idx]) {
      if (Eq{}(slots_[idx].first, key)) return idx;
      idx = (idx + 1) & mask;
    }
    slots_[idx] = value_type{key, V{std::forward<Args>(args)...}};
    used_[idx] = 1;
    ++size_;
    return idx;
  }

  void rehash(std::size_t buckets) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(buckets, value_type{});
    used_.assign(buckets, 0);
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i]) {
        find_or_insert(old_slots[i].first, std::move(old_slots[i].second));
      }
    }
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> used_;  // parallel occupancy flags
  std::size_t size_ = 0;
};

/// FlatMap-backed set: same probing, same determinism rules.
template <typename K, typename Hash = FlatHash<K>, typename Eq = std::equal_to<K>>
class FlatSet {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  /// Returns true when `key` was newly inserted.
  bool insert(const K& key) { return map_.emplace(key).second; }
  std::size_t erase(const K& key) { return map_.erase(key); }
  [[nodiscard]] bool contains(const K& key) const noexcept { return map_.contains(key); }
  [[nodiscard]] std::size_t count(const K& key) const noexcept { return map_.count(key); }

  /// Visits every key in table order (NOT sorted — never let this order
  /// reach output; fold into an ordered container or use sorted_keys()).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](const K& key, const Empty&) { fn(key); });
  }

  /// Keys sorted ascending (the canonical, ordering-safe view).
  [[nodiscard]] std::vector<K> sorted_keys() const {
    std::vector<K> keys;
    keys.reserve(map_.size());
    map_.for_each([&keys](const K& key, const Empty&) { keys.push_back(key); });
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  struct Empty {};
  FlatMap<K, Empty, Hash, Eq> map_;
};

}  // namespace shadowprobe
