#include "common/bytes.h"

#include <stdexcept>

namespace shadowprobe {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

std::string hex(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xF]);
  }
  return out;
}

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw std::out_of_range("ByteWriter::patch_u16 past end");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

bool ByteReader::ensure(std::size_t n) noexcept {
  if (failed_ || pos_ + n > data_.size()) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!ensure(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!ensure(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!ensure(4)) return 0;
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return hi << 32 | lo;
}

BytesView ByteReader::raw(std::size_t n) {
  if (!ensure(n)) return {};
  BytesView v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

std::string ByteReader::str(std::size_t n) {
  BytesView v = raw(n);
  return std::string(v.begin(), v.end());
}

void ByteReader::skip(std::size_t n) {
  if (ensure(n)) pos_ += n;
}

void ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    failed_ = true;
    return;
  }
  pos_ = offset;
}

}  // namespace shadowprobe
