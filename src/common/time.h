// Simulated-time primitives.
//
// All timestamps in the simulator are SimTime — microseconds since the start
// of the measurement campaign. The event loop advances this clock; nothing
// in the library reads wall-clock time, which is what makes a two-month
// campaign (and 10-day retention delays) replayable in seconds.
#pragma once

#include <cstdint>
#include <string>

namespace shadowprobe {

/// Duration in simulated microseconds.
using SimDuration = std::int64_t;

/// Absolute simulated time (microseconds since campaign start).
using SimTime = std::int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr SimDuration from_seconds(double s) noexcept {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

/// Human-readable rendering ("2d 3h", "51s", "420ms") for reports.
inline std::string format_duration(SimDuration d) {
  if (d < 0) return "-" + format_duration(-d);
  if (d >= kDay) {
    auto days = d / kDay;
    auto hours = (d % kDay) / kHour;
    return std::to_string(days) + "d " + std::to_string(hours) + "h";
  }
  if (d >= kHour) {
    auto hours = d / kHour;
    auto mins = (d % kHour) / kMinute;
    return std::to_string(hours) + "h " + std::to_string(mins) + "m";
  }
  if (d >= kMinute) {
    auto mins = d / kMinute;
    auto secs = (d % kMinute) / kSecond;
    return std::to_string(mins) + "m " + std::to_string(secs) + "s";
  }
  if (d >= kSecond) return std::to_string(d / kSecond) + "s";
  if (d >= kMillisecond) return std::to_string(d / kMillisecond) + "ms";
  return std::to_string(d) + "us";
}

}  // namespace shadowprobe
