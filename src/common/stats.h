// Statistics containers used by the behavioral analyzers (Figures 4-7 and
// the section-level statistics): empirical CDFs, bucketed histograms, and a
// generic counter with share/top-k reporting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace shadowprobe {

/// Empirical cumulative distribution over double samples.
class Cdf {
 public:
  void add(double sample) { samples_.push_back(sample); dirty_ = true; }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x, in [0,1]. Returns 0 for an empty CDF.
  [[nodiscard]] double at(double x) const;
  /// p-quantile for p in [0,1] (nearest-rank). Returns 0 for an empty CDF.
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Evenly probed series of (x, F(x)) points for plotting-style output.
  [[nodiscard]] std::vector<std::pair<double, double>> series(std::size_t points) const;

  /// Appends another CDF's samples (in their insertion order) — the merge
  /// step when per-partition CDF partials are combined. All read accessors
  /// sort first, so the merged CDF is sample-order-independent anyway.
  void merge(const Cdf& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    dirty_ = true;
  }

 private:
  void sort() const;
  mutable std::vector<double> samples_;
  mutable bool dirty_ = false;
};

/// Counter over arbitrary ordered keys with ratio and top-k views.
template <typename K>
class Counter {
 public:
  void add(const K& key, std::uint64_t n = 1) {
    counts_[key] += n;
    total_ += n;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t get(const K& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] double share(const K& key) const {
    return total_ == 0 ? 0.0 : static_cast<double>(get(key)) / static_cast<double>(total_);
  }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

  /// Keys sorted by descending count (ties broken by key order, so output is
  /// deterministic).
  [[nodiscard]] std::vector<std::pair<K, std::uint64_t>> top(std::size_t k) const {
    std::vector<std::pair<K, std::uint64_t>> v(counts_.begin(), counts_.end());
    std::stable_sort(v.begin(), v.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    if (v.size() > k) v.resize(k);
    return v;
  }

  [[nodiscard]] const std::map<K, std::uint64_t>& raw() const noexcept { return counts_; }

  /// Adds every count of `other` — the merge step for per-partition counter
  /// partials. Counts commute, so merge order does not affect any view.
  void absorb(const Counter& other) {
    for (const auto& [key, count] : other.counts_) add(key, count);
  }

 private:
  std::map<K, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Fixed-edge bucketed histogram; bucket i covers [edge[i-1], edge[i]), the
/// first bucket covers (-inf, edge[0]) and the last [edge.back(), +inf).
class BucketHistogram {
 public:
  explicit BucketHistogram(std::vector<double> edges) : edges_(std::move(edges)),
                                                        counts_(edges_.size() + 1, 0) {}

  void add(double sample);
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double share(std::size_t bucket) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(counts_.at(bucket)) / static_cast<double>(total_);
  }
  [[nodiscard]] std::string label(std::size_t bucket) const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace shadowprobe
