// Shared worker-pool helpers for the post-barrier pipeline (parallel
// classification and analysis-table scans).
//
// The execution model is deliberately simple: a caller-specified worker
// count, one std::thread per extra worker, contiguous chunk assignment, and
// exception propagation to the caller — the same join-barrier shape the
// CampaignEngine uses between campaign phases. Determinism never depends on
// the worker count: every parallel consumer merges its per-worker partials
// in worker order (or through a canonical sort), so worker boundaries are
// invisible in the output.
#pragma once

#include <cstddef>
#include <functional>

namespace shadowprobe {

/// Hard ceiling on worker threads for post-barrier work. Requests beyond it
/// clamp (with a warning at the call sites that surface configuration).
inline constexpr int kMaxParallelWorkers = 64;

/// Normalizes a requested worker count: values < 1 mean "serial" and map to
/// 1; values above kMaxParallelWorkers clamp down.
[[nodiscard]] int resolve_worker_count(int requested) noexcept;

/// Runs fn(worker) for every worker in [0, workers). Worker 0 runs on the
/// calling thread; the rest each get their own std::thread. Joins all
/// workers before returning; the first exception thrown by any worker is
/// rethrown on the caller.
void parallel_workers(int workers, const std::function<void(int)>& fn);

/// Splits [0, count) into one contiguous chunk per worker (sizes differing
/// by at most one) and runs fn(worker, begin, end) on the pool. Workers
/// whose chunk is empty still see fn(worker, x, x).
void parallel_chunks(std::size_t count, int workers,
                     const std::function<void(int, std::size_t, std::size_t)>& fn);

}  // namespace shadowprobe
