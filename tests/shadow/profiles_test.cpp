// Standard-deployment invariants: what deploy_standard_exhibitors installs
// and how the ShadowConfig toggles prune it.
#include "shadow/profiles.h"

#include <gtest/gtest.h>

namespace shadowprobe::shadow {
namespace {

std::unique_ptr<core::Testbed> make_bed() {
  core::TestbedConfig config;
  config.topology.seed = 21;
  config.topology.global_vps = 6;
  config.topology.cn_vps = 6;
  config.topology.web_sites = 8;
  return core::Testbed::create(config);
}

TEST(Profiles, StandardDeploymentCoversThePaperLandscape) {
  auto bed = make_bed();
  ShadowConfig config;
  auto deployment = deploy_standard_exhibitors(*bed, config);

  // Resolver_h ground truth.
  EXPECT_EQ(deployment.shadowing_resolvers,
            (std::set<std::string>{"Yandex", "114DNS", "One DNS", "DNS PAI", "VERCARA"}));
  for (const char* label :
       {"resolver:Yandex", "resolver:114DNS", "wire:AS4134", "wire:AS40444",
        "wire:AS29988", "wire:AD", "dest:tls-operators"}) {
    EXPECT_NE(deployment.find(label), nullptr) << label;
  }
  EXPECT_EQ(deployment.find("nonexistent"), nullptr);

  // On-wire observer ground truth is non-empty for all three protocols.
  EXPECT_FALSE(deployment.wire_observer_addrs_dns.empty());
  EXPECT_FALSE(deployment.wire_observer_addrs_http.empty());
  EXPECT_FALSE(deployment.wire_observer_addrs_tls.empty());
  EXPECT_GE(deployment.all_wire_observer_addrs().size(),
            deployment.wire_observer_addrs_http.size());

  // Interception middleboxes for the Appendix-E screen.
  EXPECT_GE(deployment.interceptors.size(), 2u);

  // Every exhibitor has a prober fleet.
  for (const auto& exhibitor : deployment.exhibitors) {
    EXPECT_FALSE(exhibitor.probers.empty()) << exhibitor.label;
  }
}

TEST(Profiles, TogglesPruneExhibitorClasses) {
  auto bed = make_bed();
  ShadowConfig config;
  config.resolver_shadowing = false;
  config.wire_http_observers = false;
  config.wire_tls_observers = false;
  config.tls_destination_shadowers = false;
  config.dns_interception_noise = false;
  auto deployment = deploy_standard_exhibitors(*bed, config);
  EXPECT_TRUE(deployment.exhibitors.empty());
  EXPECT_TRUE(deployment.interceptors.empty());
  EXPECT_TRUE(deployment.shadowing_resolvers.empty());
  EXPECT_TRUE(deployment.all_wire_observer_addrs().empty());
}

TEST(Profiles, BlocklistGetsPopulatedFromFleetReputation) {
  auto bed = make_bed();
  EXPECT_EQ(bed->blocklist().entry_count(), 0u);
  ShadowConfig config;
  config.web_prober_blocklisted = 1.0;
  config.dns_prober_blocklisted = 1.0;
  auto deployment = deploy_standard_exhibitors(*bed, config);
  // Most prober addresses are now listed (some specs scale the configured
  // rate down to model cleaner fleets).
  int listed = 0;
  int total = 0;
  for (const auto& exhibitor : deployment.exhibitors) {
    for (const auto& prober : exhibitor.probers) {
      ++total;
      if (bed->blocklist().contains(prober->addr())) ++listed;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(listed) / total, 0.6);
  EXPECT_EQ(bed->blocklist().entry_count(), static_cast<std::size_t>(listed));
}

TEST(Profiles, RouterServicesOnlyOnRouters) {
  auto bed = make_bed();
  ShadowConfig config;
  auto deployment = deploy_standard_exhibitors(*bed, config);
  for (net::Ipv4Addr addr : deployment.routers_with_open_ports) {
    sim::NodeId node = bed->net().owner_of(addr);
    ASSERT_NE(node, sim::kInvalidNode);
    EXPECT_EQ(bed->net().kind(node), sim::NodeKind::kRouter);
  }
}

TEST(Profiles, DeploymentIsDeterministicPerSeed) {
  auto bed1 = make_bed();
  auto bed2 = make_bed();
  ShadowConfig config;
  auto a = deploy_standard_exhibitors(*bed1, config);
  auto b = deploy_standard_exhibitors(*bed2, config);
  EXPECT_EQ(a.exhibitors.size(), b.exhibitors.size());
  EXPECT_EQ(a.all_wire_observer_addrs(), b.all_wire_observer_addrs());
  EXPECT_EQ(a.routers_with_open_ports, b.routers_with_open_ports);
}

}  // namespace
}  // namespace shadowprobe::shadow
