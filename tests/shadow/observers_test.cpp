// WireTap parsing, DnsInterceptor spoofing, and RouterServices behaviour on
// a miniature network.
#include "shadow/observers.h"

#include <gtest/gtest.h>

#include "net/http.h"
#include "net/tls.h"
#include "net/udp.h"
#include "sim/udp_util.h"

namespace shadowprobe::shadow {
namespace {

using net::DnsName;
using net::Ipv4Addr;
using net::Prefix;

class ObserverNet : public ::testing::Test {
 protected:
  ObserverNet() : net(loop), exhibitor(make_config(), Rng(3), loop) {
    client = net.add_host("client", Ipv4Addr(10, 0, 0, 1), nullptr);
    router = net.add_router("router", Ipv4Addr(10, 0, 0, 254));
    server = net.add_host("server", Ipv4Addr(10, 0, 1, 1), nullptr);
    net.routes(client).set_default(router);
    net.routes(server).set_default(router);
    net.routes(router).add(Prefix(Ipv4Addr(10, 0, 1, 1), 32), server);
    net.routes(router).add(Prefix(Ipv4Addr(10, 0, 0, 1), 32), client);
  }

  static ExhibitorConfig make_config() {
    ExhibitorConfig config;
    config.name = "tap-test";
    config.observe_probability = 1.0;
    config.probe_resolver = Ipv4Addr(8, 8, 8, 8);
    return config;
  }

  void send_tcp_payload(std::uint16_t dst_port, Bytes payload) {
    net::TcpSegment seg;
    seg.src_port = 5000;
    seg.dst_port = dst_port;
    seg.flags = {.ack = true, .psh = true};
    seg.payload = std::move(payload);
    net::Ipv4Header header;
    header.src = Ipv4Addr(10, 0, 0, 1);
    header.dst = Ipv4Addr(10, 0, 1, 1);
    header.protocol = net::IpProto::kTcp;
    net.send(client, header, seg.encode(header.src, header.dst));
  }

  sim::EventLoop loop;
  sim::Network net;
  Exhibitor exhibitor;
  sim::NodeId client, router, server;
};

TEST_F(ObserverNet, TapExtractsDnsQnames) {
  WireTap tap(exhibitor, {.dns = true, .http = false, .tls = false});
  net.add_tap(router, &tap);
  net::DnsMessage query = net::DnsMessage::query(1, DnsName::must_parse("q.example.test"),
                                                 net::DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(net, client, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 4000, 53,
                BytesView(wire));
  loop.run();
  ASSERT_EQ(exhibitor.observations(), 1u);
  EXPECT_EQ(exhibitor.store().at(0).domain, DnsName::must_parse("q.example.test"));
  EXPECT_EQ(exhibitor.store().at(0).seen_in, core::DecoyProtocol::kDns);
  EXPECT_EQ(tap.parsed(), 1u);
}

TEST_F(ObserverNet, TapIgnoresDnsResponses) {
  WireTap tap(exhibitor, {.dns = true, .http = false, .tls = false});
  net.add_tap(router, &tap);
  net::DnsMessage query = net::DnsMessage::query(1, DnsName::must_parse("resp.test"),
                                                 net::DnsType::kA);
  net::DnsMessage response = net::DnsMessage::response_to(query, net::DnsRcode::kNoError);
  Bytes wire = response.encode();
  sim::send_udp(net, client, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 53, 4000,
                BytesView(wire));
  loop.run();
  EXPECT_EQ(exhibitor.observations(), 0u);
}

TEST_F(ObserverNet, TapExtractsHttpHost) {
  WireTap tap(exhibitor, {.dns = false, .http = true, .tls = false});
  net.add_tap(router, &tap);
  net::HttpRequest request;
  request.target = "/index.html";
  request.headers.add("Host", "decoy.www.shadowprobe-exp.com");
  send_tcp_payload(80, request.encode());
  loop.run();
  ASSERT_EQ(exhibitor.observations(), 1u);
  EXPECT_EQ(exhibitor.store().at(0).seen_in, core::DecoyProtocol::kHttp);
}

TEST_F(ObserverNet, TapExtractsTlsSni) {
  WireTap tap(exhibitor, {.dns = false, .http = false, .tls = true});
  net.add_tap(router, &tap);
  net::TlsClientHello hello;
  hello.cipher_suites = {0x1301};
  hello.set_sni("sni.www.shadowprobe-exp.com");
  send_tcp_payload(443, hello.encode_record());
  loop.run();
  ASSERT_EQ(exhibitor.observations(), 1u);
  EXPECT_EQ(exhibitor.store().at(0).seen_in, core::DecoyProtocol::kTls);
  EXPECT_EQ(exhibitor.store().at(0).domain.str(), "sni.www.shadowprobe-exp.com");
}

TEST_F(ObserverNet, FilterLimitsWhatIsParsed) {
  WireTap tap(exhibitor, {.dns = false, .http = false, .tls = true});
  net.add_tap(router, &tap);
  net::HttpRequest request;
  request.headers.add("Host", "ignored.test");
  send_tcp_payload(80, request.encode());
  loop.run();
  EXPECT_EQ(exhibitor.observations(), 0u);
  EXPECT_EQ(tap.parsed(), 0u);
}

TEST_F(ObserverNet, TapToleratesGarbagePayloads) {
  WireTap tap(exhibitor, {.dns = true, .http = true, .tls = true});
  net.add_tap(router, &tap);
  send_tcp_payload(80, to_bytes("NOT HTTP AT ALL"));
  send_tcp_payload(443, to_bytes("\x16\x03garbage"));
  sim::send_udp(net, client, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 4000, 53,
                BytesView(to_bytes("junk")));
  loop.run();
  EXPECT_EQ(exhibitor.observations(), 0u);
}

TEST_F(ObserverNet, InterceptorAnswersQueriesWithSpoofedSource) {
  // Record what the client receives.
  struct Sink : sim::DatagramHandler {
    void on_datagram(sim::Network&, sim::NodeId, const net::Ipv4Datagram& dgram) override {
      received.push_back(dgram);
    }
    std::vector<net::Ipv4Datagram> received;
  } sink;
  net.set_handler(client, &sink);

  DnsInterceptor interceptor(Ipv4Addr(198, 18, 0, 1), Rng(5));
  net.add_tap(router, &interceptor);

  // Query an address that offers no DNS service (the "pair resolver"):
  // 10.0.1.2 routes nowhere, so the only possible answer is the spoof.
  net::DnsMessage query = net::DnsMessage::query(42, DnsName::must_parse("pair.test"),
                                                 net::DnsType::kA);
  Bytes wire = query.encode();
  sim::send_udp(net, client, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 2), 4001, 53,
                BytesView(wire));
  loop.run();
  ASSERT_EQ(sink.received.size(), 1u);
  // The spoof claims to come from the intended destination.
  EXPECT_EQ(sink.received[0].header.src, Ipv4Addr(10, 0, 1, 2));
  auto udp = net::UdpDatagram::decode(BytesView(sink.received[0].payload),
                                      sink.received[0].header.src,
                                      sink.received[0].header.dst);
  ASSERT_TRUE(udp.ok());
  auto dns = net::DnsMessage::decode(BytesView(udp.value().payload));
  ASSERT_TRUE(dns.ok());
  EXPECT_EQ(dns.value().header.id, 42);
  ASSERT_EQ(dns.value().answers.size(), 1u);
  EXPECT_EQ(std::get<Ipv4Addr>(dns.value().answers[0].rdata), Ipv4Addr(198, 18, 0, 1));
  EXPECT_EQ(interceptor.intercepted(), 1u);
}

TEST_F(ObserverNet, InterceptorIgnoresNonDnsTraffic) {
  DnsInterceptor interceptor(Ipv4Addr(198, 18, 0, 1), Rng(5));
  net.add_tap(router, &interceptor);
  send_tcp_payload(80, to_bytes("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  sim::send_udp(net, client, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 1, 1), 4000, 9999,
                BytesView(to_bytes("not dns port")));
  loop.run();
  EXPECT_EQ(interceptor.intercepted(), 0u);
}

}  // namespace
}  // namespace shadowprobe::shadow
