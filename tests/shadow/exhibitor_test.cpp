#include "shadow/exhibitor.h"

#include <gtest/gtest.h>

#include "intel/signatures.h"
#include "sim/event_loop.h"

namespace shadowprobe::shadow {
namespace {

using net::DnsName;
using net::Ipv4Addr;

ExhibitorConfig base_config() {
  ExhibitorConfig config;
  config.name = "test";
  config.observe_probability = 1.0;
  config.probe_resolver = Ipv4Addr(8, 8, 8, 8);
  return config;
}

TEST(Exhibitor, RetainsObservationsAndDeduplicatesDomains) {
  sim::EventLoop loop;
  Exhibitor exhibitor(base_config(), Rng(7), loop);
  DnsName domain = DnsName::must_parse("x.www.shadowprobe-exp.com");
  exhibitor.observe(0, domain, Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, 1),
                    core::DecoyProtocol::kDns);
  exhibitor.observe(10, domain, Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, 1),
                    core::DecoyProtocol::kDns);
  EXPECT_EQ(exhibitor.observations(), 1u);
  exhibitor.observe(20, DnsName::must_parse("y.www.shadowprobe-exp.com"),
                    Ipv4Addr(1, 0, 0, 1), Ipv4Addr(2, 0, 0, 1), core::DecoyProtocol::kDns);
  EXPECT_EQ(exhibitor.observations(), 2u);
}

TEST(Exhibitor, ProtocolVisibilityFilters) {
  sim::EventLoop loop;
  ExhibitorConfig config = base_config();
  config.sees_dns = false;
  config.sees_tls = false;
  Exhibitor exhibitor(config, Rng(7), loop);
  exhibitor.observe(0, DnsName::must_parse("a.test"), Ipv4Addr(1, 0, 0, 1),
                    Ipv4Addr(2, 0, 0, 1), core::DecoyProtocol::kDns);
  exhibitor.observe(0, DnsName::must_parse("b.test"), Ipv4Addr(1, 0, 0, 1),
                    Ipv4Addr(2, 0, 0, 1), core::DecoyProtocol::kTls);
  EXPECT_EQ(exhibitor.observations(), 0u);
  exhibitor.observe(0, DnsName::must_parse("c.test"), Ipv4Addr(1, 0, 0, 1),
                    Ipv4Addr(2, 0, 0, 1), core::DecoyProtocol::kHttp);
  EXPECT_EQ(exhibitor.observations(), 1u);
}

TEST(Exhibitor, PairSelectivityIsDeterministicPerPair) {
  // With observe_probability 0.5 some pairs are monitored and some are not,
  // but a pair's decision never flips between observations.
  sim::EventLoop loop;
  ExhibitorConfig config = base_config();
  config.observe_probability = 0.5;
  Exhibitor exhibitor(config, Rng(99), loop);
  int monitored_pairs = 0;
  for (int pair = 0; pair < 40; ++pair) {
    Ipv4Addr client(10, 0, 0, static_cast<std::uint8_t>(pair + 1));
    Ipv4Addr server(20, 0, 0, 1);
    std::size_t before = exhibitor.observations();
    // Two distinct domains on the same pair: either both observed or none.
    exhibitor.observe(0, DnsName::must_parse("a" + std::to_string(pair) + ".test"),
                      client, server, core::DecoyProtocol::kDns);
    exhibitor.observe(0, DnsName::must_parse("b" + std::to_string(pair) + ".test"),
                      client, server, core::DecoyProtocol::kDns);
    std::size_t gained = exhibitor.observations() - before;
    EXPECT_TRUE(gained == 0 || gained == 2) << gained;
    if (gained == 2) ++monitored_pairs;
  }
  EXPECT_GT(monitored_pairs, 8);
  EXPECT_LT(monitored_pairs, 32);
}

TEST(Exhibitor, ZeroProbabilityObservesNothing) {
  sim::EventLoop loop;
  ExhibitorConfig config = base_config();
  config.observe_probability = 0.0;
  Exhibitor exhibitor(config, Rng(7), loop);
  for (int i = 0; i < 20; ++i) {
    exhibitor.observe(0, DnsName::must_parse("d" + std::to_string(i) + ".test"),
                      Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
                      Ipv4Addr(2, 0, 0, 1), core::DecoyProtocol::kDns);
  }
  EXPECT_EQ(exhibitor.observations(), 0u);
}

TEST(Exhibitor, WavesScheduleFutureWork) {
  sim::EventLoop loop;
  ExhibitorConfig config = base_config();
  config.waves.push_back({.probability = 1.0,
                          .delay_median = kHour,
                          .delay_sigma = 0.1,
                          .requests_min = 2,
                          .requests_max = 2,
                          .dns_weight = 1.0});
  Exhibitor exhibitor(config, Rng(7), loop);
  exhibitor.observe(0, DnsName::must_parse("w.test"), Ipv4Addr(1, 0, 0, 1),
                    Ipv4Addr(2, 0, 0, 1), core::DecoyProtocol::kDns);
  // Two replay events pending (no probers attached: they fire as no-ops).
  EXPECT_EQ(loop.pending(), 2u);
  loop.run();
  // Without probers nothing is counted as replayed.
  EXPECT_EQ(exhibitor.store().total_replays(), 0u);
}

TEST(Exhibitor, DelayFloorClampsEarlyReplays) {
  sim::EventLoop loop;
  ExhibitorConfig config = base_config();
  config.waves.push_back({.probability = 1.0,
                          .delay_median = kMinute,  // would often fire < 1h
                          .delay_sigma = 0.5,
                          .delay_floor = kHour,
                          .requests_min = 1,
                          .requests_max = 1,
                          .dns_weight = 1.0});
  Exhibitor exhibitor(config, Rng(7), loop);
  for (int i = 0; i < 10; ++i) {
    exhibitor.observe(0, DnsName::must_parse("f" + std::to_string(i) + ".test"),
                      Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
                      Ipv4Addr(2, 0, 0, 1), core::DecoyProtocol::kDns);
  }
  loop.run_until(kHour - 1);
  EXPECT_EQ(loop.processed(), 0u);  // everything clamped to >= 1h
}

TEST(RetentionStore, CountsReplaysPerItem) {
  RetentionStore store;
  Observation obs;
  obs.domain = DnsName::must_parse("r.test");
  std::size_t index = store.record(obs);
  EXPECT_EQ(store.size(), 1u);
  store.count_replay(index);
  store.count_replay(index);
  EXPECT_EQ(store.at(index).replays, 2u);
  EXPECT_EQ(store.total_replays(), 2u);
}

}  // namespace
}  // namespace shadowprobe::shadow
