// ProberHost behaviour against a real testbed: DNS probes via resolver and
// via direct iterative resolution, HTTP path enumeration, HTTPS SNI probes.
#include "shadow/prober.h"

#include <gtest/gtest.h>

#include "core/testbed.h"

namespace shadowprobe::shadow {
namespace {

class ProberTest : public ::testing::Test {
 protected:
  ProberTest() {
    core::TestbedConfig config;
    config.topology.seed = 11;
    config.topology.global_vps = 2;
    config.topology.cn_vps = 2;
    config.topology.web_sites = 4;
    bed = core::Testbed::create(config);
    prober = std::make_unique<ProberHost>("p", bed->fork_rng("p"), bed->signatures());
    sim::NodeId node = bed->add_host_in_as(16509, "p", prober.get());
    prober->bind(bed->net(), node, bed->net().address(node));
  }

  core::DecoyId decoy_id() {
    core::DecoyId id;
    id.vp = net::Ipv4Addr(30, 0, 0, 1);
    id.dst = net::Ipv4Addr(8, 8, 8, 8);
    id.seq = 77;
    return id;
  }

  std::size_t hits_of(core::RequestProtocol protocol) {
    std::size_t n = 0;
    for (const auto& hit : bed->logbook().hits()) {
      if (hit.protocol == protocol) ++n;
    }
    return n;
  }

  std::unique_ptr<core::Testbed> bed;
  std::unique_ptr<ProberHost> prober;
};

TEST_F(ProberTest, DnsProbeViaResolverReachesHoneypotFromResolverEgress) {
  net::DnsName domain = core::decoy_domain(decoy_id());
  prober->probe_dns(domain, net::Ipv4Addr(8, 8, 8, 8));
  bed->loop().run_until(kMinute);
  ASSERT_EQ(bed->logbook().size(), 1u);
  const auto& hit = bed->logbook().hits()[0];
  EXPECT_EQ(hit.protocol, core::RequestProtocol::kDns);
  // Origin is Google's egress, not the prober.
  EXPECT_EQ(bed->topology().geo().asn(hit.origin), 15169u);
  ASSERT_TRUE(hit.decoy.has_value());
  EXPECT_EQ(hit.decoy->seq, 77u);
}

TEST_F(ProberTest, DirectDnsProbeOriginatesFromProberItself) {
  prober->set_root_hints(bed->root_hints());
  prober->set_direct_probability(1.0);
  net::DnsName domain = core::decoy_domain(decoy_id());
  prober->probe_dns(domain, net::Ipv4Addr(8, 8, 8, 8));
  bed->loop().run_until(kMinute);
  ASSERT_EQ(bed->logbook().size(), 1u);
  EXPECT_EQ(bed->logbook().hits()[0].origin, prober->addr());
}

TEST_F(ProberTest, HttpProbeEnumeratesPaths) {
  net::DnsName domain = core::decoy_domain(decoy_id());
  prober->probe_http(domain, net::Ipv4Addr(8, 8, 8, 8), 4);
  bed->loop().run_until(kMinute);
  // Resolution + 4 GETs: the honeypot logs 4 HTTP hits bearing the decoy.
  EXPECT_EQ(hits_of(core::RequestProtocol::kHttp), 4u);
  for (const auto& hit : bed->logbook().hits()) {
    if (hit.protocol != core::RequestProtocol::kHttp) continue;
    EXPECT_TRUE(hit.decoy.has_value());
    EXPECT_FALSE(hit.http_target.empty());
  }
}

TEST_F(ProberTest, HttpsProbeDeliversSni) {
  net::DnsName domain = core::decoy_domain(decoy_id());
  prober->probe_https(domain, net::Ipv4Addr(8, 8, 8, 8));
  bed->loop().run_until(kMinute);
  EXPECT_EQ(hits_of(core::RequestProtocol::kHttps), 1u);
}

TEST_F(ProberTest, UnresolvableDomainProducesNoWebProbe) {
  auto domain = net::DnsName::must_parse("does-not-exist.nowhere.org");
  prober->probe_http(domain, net::Ipv4Addr(8, 8, 8, 8), 3);
  bed->loop().run_until(kMinute);
  EXPECT_EQ(hits_of(core::RequestProtocol::kHttp), 0u);
}

TEST_F(ProberTest, ProbesCounted) {
  net::DnsName domain = core::decoy_domain(decoy_id());
  prober->probe_dns(domain, net::Ipv4Addr(8, 8, 8, 8));
  prober->probe_https(domain, net::Ipv4Addr(8, 8, 8, 8));
  bed->loop().run_until(kMinute);
  EXPECT_GE(prober->probes_sent(), 3u);  // 2 lookups + 1 ClientHello
}

}  // namespace
}  // namespace shadowprobe::shadow
