// Property-style randomized sweeps over the wire-format codecs:
//   - encode/decode round-trips preserve every field;
//   - any single bit flip in a checksummed region is detected.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/dns.h"
#include "net/icmp.h"
#include "net/ipv4.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace shadowprobe::net {
namespace {

DnsName random_name(Rng& rng) {
  int labels = static_cast<int>(rng.range(1, 4));
  std::string text;
  for (int i = 0; i < labels; ++i) {
    if (i) text += '.';
    int len = static_cast<int>(rng.range(1, 12));
    for (int c = 0; c < len; ++c) {
      text += static_cast<char>('a' + rng.below(26));
    }
  }
  return DnsName::must_parse(text);
}

class DnsRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(DnsRoundTripProperty, RandomMessagesSurviveTheWire) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  for (int round = 0; round < 20; ++round) {
    DnsMessage message;
    message.header.id = static_cast<std::uint16_t>(rng.bits());
    message.header.qr = rng.chance(0.5);
    message.header.rd = rng.chance(0.5);
    message.header.aa = rng.chance(0.3);
    message.header.rcode = rng.chance(0.2) ? DnsRcode::kNxDomain : DnsRcode::kNoError;
    int questions = static_cast<int>(rng.range(0, 2));
    for (int q = 0; q < questions; ++q) {
      message.questions.push_back({random_name(rng),
                                   rng.chance(0.5) ? DnsType::kA : DnsType::kTxt});
    }
    int answers = static_cast<int>(rng.range(0, 4));
    for (int a = 0; a < answers; ++a) {
      switch (rng.below(4)) {
        case 0:
          message.answers.push_back(DnsRecord::a(
              random_name(rng), Ipv4Addr(static_cast<std::uint32_t>(rng.bits())),
              static_cast<std::uint32_t>(rng.below(100000))));
          break;
        case 1:
          message.answers.push_back(DnsRecord::ns(random_name(rng), random_name(rng)));
          break;
        case 2:
          message.answers.push_back(DnsRecord::cname(random_name(rng), random_name(rng)));
          break;
        default:
          message.answers.push_back(
              DnsRecord::txt(random_name(rng), {"t" + std::to_string(rng.below(100))}));
          break;
      }
    }
    Bytes wire = message.encode();
    auto decoded = DnsMessage::decode(BytesView(wire));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    const DnsMessage& out = decoded.value();
    EXPECT_EQ(out.header.id, message.header.id);
    EXPECT_EQ(out.header.qr, message.header.qr);
    EXPECT_EQ(out.header.rd, message.header.rd);
    EXPECT_EQ(out.header.aa, message.header.aa);
    EXPECT_EQ(out.header.rcode, message.header.rcode);
    ASSERT_EQ(out.questions.size(), message.questions.size());
    for (std::size_t i = 0; i < out.questions.size(); ++i) {
      EXPECT_EQ(out.questions[i].name, message.questions[i].name);
      EXPECT_EQ(out.questions[i].type, message.questions[i].type);
    }
    ASSERT_EQ(out.answers.size(), message.answers.size());
    for (std::size_t i = 0; i < out.answers.size(); ++i) {
      EXPECT_EQ(out.answers[i].name, message.answers[i].name);
      EXPECT_EQ(out.answers[i].type, message.answers[i].type);
      EXPECT_EQ(out.answers[i].ttl, message.answers[i].ttl);
      EXPECT_TRUE(out.answers[i].rdata == message.answers[i].rdata);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsRoundTripProperty, ::testing::Range(0, 8));

class BitFlipProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitFlipProperty, SingleBitFlipsNeverDecodeCleanInChecksummedHeaders) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  Ipv4Addr src(10, 0, 0, 1);
  Ipv4Addr dst(10, 0, 0, 2);

  // IPv4 header: flip any bit of the 20 header bytes.
  Ipv4Header header;
  header.src = src;
  header.dst = dst;
  header.identification = static_cast<std::uint16_t>(rng.bits());
  Bytes payload(8, 0xEE);
  Bytes ip_wire = header.encode(BytesView(payload));
  for (int trial = 0; trial < 24; ++trial) {
    std::size_t bit = rng.below(Ipv4Header::kSize * 8);
    Bytes corrupt = ip_wire;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    auto decoded = decode_ipv4(BytesView(corrupt));
    if (decoded.ok()) {
      // A flip in the checksum-covered region must never decode as the
      // original header (total-length flips may still fail differently).
      EXPECT_FALSE(decoded.value().header.src == header.src &&
                   decoded.value().header.dst == header.dst &&
                   decoded.value().header.identification == header.identification &&
                   decoded.value().header.ttl == header.ttl)
          << "undetected corruption at bit " << bit;
    }
  }

  // UDP with checksum: flips anywhere in the datagram are detected.
  UdpDatagram udp;
  udp.src_port = static_cast<std::uint16_t>(rng.bits());
  udp.dst_port = 53;
  udp.payload = to_bytes("payload-bytes-here");
  Bytes udp_wire = udp.encode(src, dst);
  for (int trial = 0; trial < 24; ++trial) {
    std::size_t bit = rng.below(udp_wire.size() * 8);
    Bytes corrupt = udp_wire;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    auto decoded = UdpDatagram::decode(BytesView(corrupt), src, dst);
    // Flipping a bit may hit the "checksum disabled" encoding (field becomes
    // 0) — everything else must fail.
    if (decoded.ok()) {
      bool checksum_zeroed = corrupt[6] == 0 && corrupt[7] == 0;
      EXPECT_TRUE(checksum_zeroed) << "undetected corruption at bit " << bit;
    }
  }

  // TCP: same, no disabled-checksum escape hatch.
  TcpSegment segment;
  segment.src_port = 1234;
  segment.dst_port = 80;
  segment.seq = static_cast<std::uint32_t>(rng.bits());
  segment.payload = to_bytes("GET / HTTP/1.1\r\n\r\n");
  Bytes tcp_wire = segment.encode(src, dst);
  for (int trial = 0; trial < 24; ++trial) {
    std::size_t bit = rng.below(tcp_wire.size() * 8);
    Bytes corrupt = tcp_wire;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(TcpSegment::decode(BytesView(corrupt), src, dst).ok())
        << "undetected corruption at bit " << bit;
  }

  // ICMP: same.
  IcmpMessage echo;
  echo.type = IcmpType::kEchoRequest;
  echo.body = to_bytes("abcdefgh");
  Bytes icmp_wire = echo.encode();
  for (int trial = 0; trial < 24; ++trial) {
    std::size_t bit = rng.below(icmp_wire.size() * 8);
    Bytes corrupt = icmp_wire;
    corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(IcmpMessage::decode(BytesView(corrupt)).ok())
        << "undetected corruption at bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitFlipProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace shadowprobe::net
