#include "net/dns.h"

#include <gtest/gtest.h>

namespace shadowprobe::net {
namespace {

// -- names ---------------------------------------------------------------------

TEST(DnsName, ParseBasics) {
  auto name = DnsName::parse("www.example.com");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->label(0), "www");
  EXPECT_EQ(name->str(), "www.example.com");
}

TEST(DnsName, TrailingDotAndRoot) {
  EXPECT_EQ(DnsName::must_parse("example.com.").str(), "example.com");
  auto root = DnsName::parse("");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->str(), ".");
}

TEST(DnsName, RejectsLimitViolations) {
  EXPECT_FALSE(DnsName::parse("a..b").has_value());
  EXPECT_FALSE(DnsName::parse(std::string(64, 'x') + ".com").has_value());
  // 253-char limit: four 63-char labels joined exceed it.
  std::string big = std::string(63, 'a') + "." + std::string(63, 'b') + "." +
                    std::string(63, 'c') + "." + std::string(63, 'd');
  EXPECT_FALSE(DnsName::parse(big).has_value());
  EXPECT_THROW(DnsName::must_parse("a..b"), std::invalid_argument);
}

TEST(DnsName, ComparisonIsCaseInsensitive) {
  EXPECT_EQ(DnsName::must_parse("WWW.Example.COM"), DnsName::must_parse("www.example.com"));
  EXPECT_FALSE(DnsName::must_parse("a.com") == DnsName::must_parse("b.com"));
}

TEST(DnsName, SubdomainChecks) {
  DnsName zone = DnsName::must_parse("example.com");
  EXPECT_TRUE(DnsName::must_parse("a.b.example.com").is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(zone));
  EXPECT_FALSE(DnsName::must_parse("example.org").is_subdomain_of(zone));
  EXPECT_FALSE(DnsName::must_parse("notexample.com").is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(DnsName{}));  // everything under root
}

TEST(DnsName, ParentAndChild) {
  DnsName name = DnsName::must_parse("a.b.c");
  EXPECT_EQ(name.parent().str(), "b.c");
  EXPECT_EQ(name.parent(2).str(), "c");
  EXPECT_TRUE(name.parent(3).is_root());
  EXPECT_TRUE(name.parent(9).is_root());
  EXPECT_EQ(name.child("x").str(), "x.a.b.c");
}

TEST(DnsName, OrderingFoldsCase) {
  DnsName a = DnsName::must_parse("Alpha.com");
  DnsName b = DnsName::must_parse("beta.com");
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < DnsName::must_parse("alpha.COM"));
  EXPECT_FALSE(DnsName::must_parse("alpha.COM") < a);
}

// -- messages ------------------------------------------------------------------

TEST(DnsMessage, QueryRoundTrip) {
  DnsMessage query = DnsMessage::query(0x1234, DnsName::must_parse("x.example.com"),
                                       DnsType::kA);
  Bytes wire = query.encode();
  auto decoded = DnsMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().header.id, 0x1234);
  EXPECT_FALSE(decoded.value().header.qr);
  EXPECT_TRUE(decoded.value().header.rd);
  ASSERT_EQ(decoded.value().questions.size(), 1u);
  EXPECT_EQ(decoded.value().questions[0].name.str(), "x.example.com");
  EXPECT_EQ(decoded.value().questions[0].type, DnsType::kA);
}

TEST(DnsMessage, ResponseWithAllRdataTypesRoundTrips) {
  DnsMessage query = DnsMessage::query(7, DnsName::must_parse("example.com"), DnsType::kAny);
  DnsMessage response = DnsMessage::response_to(query, DnsRcode::kNoError);
  DnsName owner = DnsName::must_parse("example.com");
  response.answers.push_back(DnsRecord::a(owner, Ipv4Addr(1, 2, 3, 4), 60));
  response.answers.push_back(DnsRecord::ns(owner, DnsName::must_parse("ns1.example.com")));
  response.answers.push_back(
      DnsRecord::cname(owner.child("alias"), DnsName::must_parse("target.example.com")));
  response.answers.push_back(DnsRecord::txt(owner, {"hello", "world"}));
  SoaData soa;
  soa.mname = DnsName::must_parse("ns1.example.com");
  soa.rname = DnsName::must_parse("admin.example.com");
  soa.serial = 99;
  response.authorities.push_back(DnsRecord::soa(owner, soa));
  response.additionals.push_back(
      DnsRecord::a(DnsName::must_parse("ns1.example.com"), Ipv4Addr(9, 9, 9, 9)));

  Bytes wire = response.encode();
  auto decoded = DnsMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  const DnsMessage& m = decoded.value();
  EXPECT_TRUE(m.header.qr);
  ASSERT_EQ(m.answers.size(), 4u);
  EXPECT_EQ(std::get<Ipv4Addr>(m.answers[0].rdata), Ipv4Addr(1, 2, 3, 4));
  EXPECT_EQ(m.answers[0].ttl, 60u);
  EXPECT_EQ(std::get<DnsName>(m.answers[1].rdata).str(), "ns1.example.com");
  EXPECT_EQ(std::get<DnsName>(m.answers[2].rdata).str(), "target.example.com");
  EXPECT_EQ(std::get<std::vector<std::string>>(m.answers[3].rdata),
            (std::vector<std::string>{"hello", "world"}));
  ASSERT_EQ(m.authorities.size(), 1u);
  EXPECT_EQ(std::get<SoaData>(m.authorities[0].rdata).serial, 99u);
  ASSERT_EQ(m.additionals.size(), 1u);
}

TEST(DnsMessage, CompressionShrinksRepeatedSuffixes) {
  DnsMessage response;
  DnsName owner = DnsName::must_parse("aaaa.very-long-zone-name.example.com");
  for (int i = 0; i < 10; ++i) {
    response.answers.push_back(DnsRecord::a(owner, Ipv4Addr(1, 1, 1, static_cast<std::uint8_t>(i))));
  }
  Bytes wire = response.encode();
  // Without compression each A record repeats the 36-byte name; with
  // compression subsequent owners are a 2-byte pointer.
  EXPECT_LT(wire.size(), 12 + 38 + 10 * (2 + 10 + 4));
  auto decoded = DnsMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  for (const auto& rr : decoded.value().answers) EXPECT_EQ(rr.name, owner);
}

TEST(DnsMessage, DecodeRejectsPointerLoops) {
  // Hand-craft a message whose QNAME is a self-pointing pointer.
  ByteWriter w;
  w.u16(1);   // id
  w.u16(0);   // flags
  w.u16(1);   // qdcount
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u16(0xC00C);  // pointer to itself (offset 12)
  w.u16(1);       // qtype
  w.u16(1);       // qclass
  auto decoded = DnsMessage::decode(BytesView(w.bytes()));
  EXPECT_FALSE(decoded.ok());
}

TEST(DnsMessage, DecodeRejectsForwardPointers) {
  ByteWriter w;
  w.u16(1);
  w.u16(0);
  w.u16(1);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u16(0xC020);  // points forward past itself
  w.u16(1);
  w.u16(1);
  EXPECT_FALSE(DnsMessage::decode(BytesView(w.bytes())).ok());
}

TEST(DnsMessage, DecodeRejectsTruncation) {
  DnsMessage query = DnsMessage::query(5, DnsName::must_parse("host.example.com"),
                                       DnsType::kA);
  Bytes wire = query.encode();
  for (std::size_t cut : std::vector<std::size_t>{4, 11, 13, wire.size() - 1}) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(DnsMessage::decode(BytesView(truncated)).ok()) << "cut=" << cut;
  }
}

TEST(DnsMessage, DecodeRejectsBadRdlength) {
  DnsMessage response;
  response.answers.push_back(DnsRecord::a(DnsName::must_parse("a.com"), Ipv4Addr(1, 2, 3, 4)));
  Bytes wire = response.encode();
  // Locate the RDLENGTH (last 6 bytes are rdlength(2) + rdata(4)).
  wire[wire.size() - 6] = 0x00;
  wire[wire.size() - 5] = 0x03;  // A record with rdlength 3 is invalid
  EXPECT_FALSE(DnsMessage::decode(BytesView(wire)).ok());
}

TEST(DnsMessage, HeaderFlagsRoundTrip) {
  DnsMessage m;
  m.header.id = 0xFFFF;
  m.header.qr = true;
  m.header.opcode = 2;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = false;
  m.header.ra = true;
  m.header.rcode = DnsRcode::kNxDomain;
  Bytes wire = m.encode();
  auto decoded = DnsMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header.id, 0xFFFF);
  EXPECT_TRUE(decoded.value().header.qr);
  EXPECT_EQ(decoded.value().header.opcode, 2);
  EXPECT_TRUE(decoded.value().header.aa);
  EXPECT_TRUE(decoded.value().header.tc);
  EXPECT_FALSE(decoded.value().header.rd);
  EXPECT_TRUE(decoded.value().header.ra);
  EXPECT_EQ(decoded.value().header.rcode, DnsRcode::kNxDomain);
}

TEST(DnsMessage, UnknownRdataCarriedAsRawBytes) {
  DnsMessage m;
  DnsRecord rr;
  rr.name = DnsName::must_parse("x.com");
  rr.type = static_cast<DnsType>(99);
  rr.rdata = to_bytes("opaque");
  m.answers.push_back(rr);
  Bytes wire = m.encode();
  auto decoded = DnsMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<Bytes>(decoded.value().answers[0].rdata), to_bytes("opaque"));
}

TEST(DnsTypeName, CoversCommonTypes) {
  EXPECT_EQ(dns_type_name(DnsType::kA), "A");
  EXPECT_EQ(dns_type_name(DnsType::kSoa), "SOA");
  EXPECT_EQ(dns_type_name(static_cast<DnsType>(77)), "TYPE77");
}

}  // namespace
}  // namespace shadowprobe::net

namespace shadowprobe::net {
namespace {

TEST(DnsEdns, OptRecordRoundTrips) {
  DnsMessage query = DnsMessage::query(9, DnsName::must_parse("e.example.com"),
                                       DnsType::kA);
  EdnsInfo edns;
  edns.udp_payload_size = 4096;
  edns.dnssec_ok = true;
  query.edns = edns;
  Bytes wire = query.encode();
  auto decoded = DnsMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ASSERT_TRUE(decoded.value().edns.has_value());
  EXPECT_EQ(decoded.value().edns->udp_payload_size, 4096);
  EXPECT_TRUE(decoded.value().edns->dnssec_ok);
  EXPECT_EQ(decoded.value().edns->version, 0);
  // The OPT pseudo-record does not surface as an additional record.
  EXPECT_TRUE(decoded.value().additionals.empty());
}

TEST(DnsEdns, AbsentWhenNotSet) {
  DnsMessage query = DnsMessage::query(9, DnsName::must_parse("plain.example.com"),
                                       DnsType::kA);
  Bytes wire = query.encode();
  auto decoded = DnsMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().edns.has_value());
}

TEST(DnsEdns, CoexistsWithRealAdditionals) {
  DnsMessage message;
  message.additionals.push_back(
      DnsRecord::a(DnsName::must_parse("glue.example.com"), Ipv4Addr(1, 2, 3, 4)));
  message.edns = EdnsInfo{};
  Bytes wire = message.encode();
  auto decoded = DnsMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.value().edns.has_value());
  ASSERT_EQ(decoded.value().additionals.size(), 1u);
  EXPECT_EQ(decoded.value().additionals[0].type, DnsType::kA);
}

TEST(DnsEdns, DuplicateOptRejected) {
  DnsMessage message;
  message.edns = EdnsInfo{};
  Bytes wire = message.encode();
  // Append a second OPT by raw surgery: bump ARCOUNT and duplicate the
  // trailing 11-byte OPT record.
  Bytes doubled = wire;
  doubled.insert(doubled.end(), wire.end() - 11, wire.end());
  doubled[11] = static_cast<std::uint8_t>(doubled[11] + 1);
  EXPECT_FALSE(DnsMessage::decode(BytesView(doubled)).ok());
}

}  // namespace
}  // namespace shadowprobe::net
