#include "net/http.h"

#include <gtest/gtest.h>

namespace shadowprobe::net {
namespace {

TEST(HttpHeaders, CaseInsensitiveLookupPreservesOrder) {
  HttpHeaders headers;
  headers.add("Host", "example.com");
  headers.add("Accept", "*/*");
  headers.add("X-Dup", "one");
  headers.add("X-Dup", "two");
  EXPECT_EQ(headers.get("host").value(), "example.com");
  EXPECT_EQ(headers.get("HOST").value(), "example.com");
  EXPECT_EQ(headers.get("X-DUP").value(), "one");  // first wins
  EXPECT_FALSE(headers.get("missing").has_value());
  EXPECT_EQ(headers.all()[0].first, "Host");
  EXPECT_EQ(headers.size(), 4u);
}

TEST(HttpHeaders, SetReplacesOrAppends) {
  HttpHeaders headers;
  headers.set("Host", "a");
  headers.set("host", "b");
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.get("Host").value(), "b");
}

TEST(HttpRequest, EncodeDecodeRoundTrip) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/path?query=1";
  request.headers.add("Host", "decoy.www.example.com");
  request.headers.add("User-Agent", "test/1.0");
  Bytes wire = request.encode();
  std::string text = to_string(BytesView(wire));
  EXPECT_EQ(text.substr(0, 30), "GET /path?query=1 HTTP/1.1\r\nHo");

  auto decoded = HttpRequest::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().method, "GET");
  EXPECT_EQ(decoded.value().target, "/path?query=1");
  EXPECT_EQ(decoded.value().host(), "decoy.www.example.com");
  EXPECT_EQ(decoded.value().path(), "/path");
}

TEST(HttpRequest, BodyWithContentLength) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/submit";
  request.headers.add("Host", "h");
  request.body = to_bytes("key=value");
  Bytes wire = request.encode();
  auto decoded = HttpRequest::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().body, to_bytes("key=value"));
}

TEST(HttpRequest, HostStripsPort) {
  HttpRequest request;
  request.headers.add("Host", "example.com:8080");
  EXPECT_EQ(request.host(), "example.com");
}

TEST(HttpRequest, MissingHostIsEmpty) {
  HttpRequest request;
  EXPECT_EQ(request.host(), "");
}

TEST(HttpRequest, DecodeRejectsMalformed) {
  auto expect_bad = [](std::string_view text) {
    Bytes wire = to_bytes(text);
    EXPECT_FALSE(HttpRequest::decode(BytesView(wire)).ok()) << text;
  };
  expect_bad("GET /\r\n\r\n");                       // missing version
  expect_bad("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n");
  expect_bad("GET / HTTP/1.1\r\nHost: h\r\n");       // unterminated head
  expect_bad("GET / FTP/1.0\r\n\r\n");               // wrong protocol token
  expect_bad("GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
  expect_bad("GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
}

TEST(HttpResponse, EncodeDecodeRoundTrip) {
  HttpResponse response;
  response.status = 404;
  response.reason = "Not Found";
  response.headers.add("Content-Type", "text/plain");
  response.body = to_bytes("nope");
  Bytes wire = response.encode();
  std::string text = to_string(BytesView(wire));
  EXPECT_EQ(text.substr(0, 24), "HTTP/1.1 404 Not Found\r\n");
  EXPECT_NE(text.find("Content-Length: 4\r\n"), std::string::npos);

  auto decoded = HttpResponse::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().status, 404);
  EXPECT_EQ(decoded.value().reason, "Not Found");
  EXPECT_EQ(decoded.value().body, to_bytes("nope"));
}

TEST(HttpResponse, EmptyBodyGetsExplicitZeroLength) {
  HttpResponse response;
  Bytes wire = response.encode();
  std::string text = to_string(BytesView(wire));
  EXPECT_NE(text.find("Content-Length: 0\r\n"), std::string::npos);
}

TEST(HttpResponse, DecodeRejectsBadStatus) {
  Bytes wire = to_bytes("HTTP/1.1 99 Weird\r\n\r\n");
  EXPECT_FALSE(HttpResponse::decode(BytesView(wire)).ok());
  wire = to_bytes("HTTP/1.1 abc OK\r\n\r\n");
  EXPECT_FALSE(HttpResponse::decode(BytesView(wire)).ok());
  wire = to_bytes("banana\r\n\r\n");
  EXPECT_FALSE(HttpResponse::decode(BytesView(wire)).ok());
}

TEST(HttpResponse, ReasonlessStatusLineAccepted) {
  Bytes wire = to_bytes("HTTP/1.1 204\r\n\r\n");
  auto decoded = HttpResponse::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, 204);
  EXPECT_EQ(decoded.value().reason, "");
}

}  // namespace
}  // namespace shadowprobe::net
