#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace shadowprobe::net {
namespace {

TEST(Ipv4Addr, ParseAndFormat) {
  auto addr = Ipv4Addr::parse("8.8.8.8");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0x08080808u);
  EXPECT_EQ(addr->str(), "8.8.8.8");
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4).str(), "1.2.3.4");
  EXPECT_EQ(Ipv4Addr(255, 255, 255, 255).str(), "255.255.255.255");
  EXPECT_EQ(Ipv4Addr().str(), "0.0.0.0");
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.-1").has_value());
  EXPECT_THROW(Ipv4Addr::must_parse("bogus"), std::invalid_argument);
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), *Ipv4Addr::parse("1.2.3.4"));
}

TEST(Prefix, CanonicalizesHostBits) {
  Prefix p(Ipv4Addr(10, 1, 2, 3), 16);
  EXPECT_EQ(p.base().str(), "10.1.0.0");
  EXPECT_EQ(p.str(), "10.1.0.0/16");
}

TEST(Prefix, ContainsAndSize) {
  Prefix p(Ipv4Addr(192, 168, 1, 0), 24);
  EXPECT_TRUE(p.contains(Ipv4Addr(192, 168, 1, 200)));
  EXPECT_FALSE(p.contains(Ipv4Addr(192, 168, 2, 1)));
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.at(5).str(), "192.168.1.5");
  EXPECT_THROW(p.at(256), std::out_of_range);
}

TEST(Prefix, ZeroLengthCoversEverything) {
  Prefix any(Ipv4Addr(9, 9, 9, 9), 0);
  EXPECT_TRUE(any.contains(Ipv4Addr(0, 0, 0, 0)));
  EXPECT_TRUE(any.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(any.base().value(), 0u);
}

TEST(Prefix, ParseAndInvalid) {
  auto p = Prefix::parse("114.114.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 16);
  EXPECT_FALSE(Prefix::parse("1.2.3.4").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.4/33").has_value());
  EXPECT_FALSE(Prefix::parse("bogus/8").has_value());
  EXPECT_THROW(Prefix(Ipv4Addr(), 33), std::invalid_argument);
}

TEST(InternetChecksum, Rfc1071Example) {
  // Classic example: words 0x0001, 0xf203, 0xf4f5, 0xf6f7 -> sum 0xddf2,
  // checksum ~0xddf2 = 0x220d.
  Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(BytesView(data)), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  Bytes data = {0x01};
  EXPECT_EQ(internet_checksum(BytesView(data)), static_cast<std::uint16_t>(~0x0100));
}

TEST(Ipv4Header, EncodeDecodeRoundTrip) {
  Ipv4Header header;
  header.tos = 0x10;
  header.identification = 0xBEEF;
  header.ttl = 7;
  header.protocol = IpProto::kTcp;
  header.src = Ipv4Addr(1, 2, 3, 4);
  header.dst = Ipv4Addr(5, 6, 7, 8);
  Bytes payload = to_bytes("hello world");
  Bytes wire = header.encode(BytesView(payload));
  ASSERT_EQ(wire.size(), Ipv4Header::kSize + payload.size());

  auto decoded = decode_ipv4(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().header.tos, 0x10);
  EXPECT_EQ(decoded.value().header.identification, 0xBEEF);
  EXPECT_EQ(decoded.value().header.ttl, 7);
  EXPECT_EQ(decoded.value().header.protocol, IpProto::kTcp);
  EXPECT_EQ(decoded.value().header.src, header.src);
  EXPECT_EQ(decoded.value().header.dst, header.dst);
  EXPECT_EQ(decoded.value().payload, payload);
}

TEST(Ipv4Header, EncodedChecksumVerifies) {
  Ipv4Header header;
  header.src = Ipv4Addr(10, 0, 0, 1);
  header.dst = Ipv4Addr(10, 0, 0, 2);
  Bytes wire = header.encode({});
  EXPECT_EQ(internet_checksum(BytesView(wire).subspan(0, Ipv4Header::kSize)), 0);
}

TEST(Ipv4Header, DecodeRejectsCorruptChecksum) {
  Ipv4Header header;
  header.src = Ipv4Addr(1, 1, 1, 1);
  header.dst = Ipv4Addr(2, 2, 2, 2);
  Bytes wire = header.encode({});
  wire[8] ^= 0xFF;  // flip TTL without fixing checksum
  EXPECT_FALSE(decode_ipv4(BytesView(wire)).ok());
}

TEST(Ipv4Header, DecodeRejectsTruncationAndGarbage) {
  Bytes empty;
  EXPECT_FALSE(decode_ipv4(BytesView(empty)).ok());
  Bytes short_buf(10, 0x45);
  EXPECT_FALSE(decode_ipv4(BytesView(short_buf)).ok());
  Ipv4Header header;
  header.src = Ipv4Addr(1, 1, 1, 1);
  header.dst = Ipv4Addr(2, 2, 2, 2);
  Bytes wire = header.encode(BytesView(to_bytes("abc")));
  wire.resize(Ipv4Header::kSize + 1);  // total length now exceeds buffer
  EXPECT_FALSE(decode_ipv4(BytesView(wire)).ok());
  // Non-v4 version nibble.
  Bytes v6ish = wire;
  v6ish[0] = 0x65;
  EXPECT_FALSE(decode_ipv4(BytesView(v6ish)).ok());
}

}  // namespace
}  // namespace shadowprobe::net
