#include "net/icmp.h"

#include <gtest/gtest.h>

#include "net/udp.h"

namespace shadowprobe::net {
namespace {

TEST(Icmp, EchoRoundTrip) {
  IcmpMessage echo;
  echo.type = IcmpType::kEchoRequest;
  echo.rest = 0x00010002;  // id 1, seq 2
  echo.body = to_bytes("ping payload");
  Bytes wire = echo.encode();

  auto decoded = IcmpMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().type, IcmpType::kEchoRequest);
  EXPECT_EQ(decoded.value().rest, 0x00010002u);
  EXPECT_EQ(decoded.value().body, echo.body);
}

TEST(Icmp, ChecksumValidatedOnDecode) {
  IcmpMessage echo;
  echo.body = to_bytes("x");
  Bytes wire = echo.encode();
  wire.back() ^= 1;
  EXPECT_FALSE(IcmpMessage::decode(BytesView(wire)).ok());
}

TEST(Icmp, RejectsTruncatedAndUnknownTypes) {
  Bytes tiny = {11, 0, 0, 0};
  EXPECT_FALSE(IcmpMessage::decode(BytesView(tiny)).ok());

  IcmpMessage weird;
  weird.type = static_cast<IcmpType>(99);
  Bytes wire = weird.encode();
  EXPECT_FALSE(IcmpMessage::decode(BytesView(wire)).ok());
}

TEST(Icmp, TimeExceededQuotesHeaderPlus8Bytes) {
  // Build an original datagram: IPv4 + UDP with a distinctive id/ports.
  Ipv4Header header;
  header.identification = 0x4242;
  header.ttl = 1;
  header.src = Ipv4Addr(10, 0, 0, 1);
  header.dst = Ipv4Addr(10, 0, 0, 2);
  UdpDatagram udp;
  udp.src_port = 33333;
  udp.dst_port = 53;
  udp.payload = to_bytes("this part should be truncated away entirely");
  Bytes original = header.encode(BytesView(udp.encode(header.src, header.dst)));

  IcmpMessage te = IcmpMessage::time_exceeded(BytesView(original));
  EXPECT_EQ(te.type, IcmpType::kTimeExceeded);
  EXPECT_EQ(te.body.size(), Ipv4Header::kSize + 8);

  Bytes wire = te.encode();
  auto decoded = IcmpMessage::decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  auto quoted = decoded.value().quoted_datagram();
  ASSERT_TRUE(quoted.ok()) << quoted.error().message;
  EXPECT_EQ(quoted.value().header.identification, 0x4242);
  EXPECT_EQ(quoted.value().header.src, header.src);
  EXPECT_EQ(quoted.value().header.dst, header.dst);
  // The 8 quoted payload bytes are the UDP header: ports recoverable.
  ASSERT_GE(quoted.value().payload.size(), 4u);
  EXPECT_EQ(quoted.value().payload[0], 33333 >> 8);
  EXPECT_EQ(quoted.value().payload[1], 33333 & 0xFF);
}

TEST(Icmp, QuotedDatagramRejectsNonErrorTypes) {
  IcmpMessage echo;
  echo.type = IcmpType::kEchoRequest;
  echo.body = to_bytes("data");
  EXPECT_FALSE(echo.quoted_datagram().ok());
}

TEST(Icmp, QuotedDatagramRejectsShortQuote) {
  IcmpMessage te;
  te.type = IcmpType::kTimeExceeded;
  te.body = Bytes(10, 0x45);
  EXPECT_FALSE(te.quoted_datagram().ok());
}

TEST(Icmp, TimeExceededOfShortDatagramQuotesWhatExists) {
  Bytes tiny(Ipv4Header::kSize + 3, 0);
  IcmpMessage te = IcmpMessage::time_exceeded(BytesView(tiny));
  EXPECT_EQ(te.body.size(), tiny.size());
}

}  // namespace
}  // namespace shadowprobe::net
