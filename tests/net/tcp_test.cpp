#include "net/tcp.h"

#include <gtest/gtest.h>

namespace shadowprobe::net {
namespace {

const Ipv4Addr kSrc(172, 16, 0, 1);
const Ipv4Addr kDst(172, 16, 0, 2);

TEST(TcpFlags, EncodeDecodeAllCombinations) {
  for (int bits = 0; bits < 32; ++bits) {
    TcpFlags f;
    f.fin = bits & 1;
    f.syn = bits & 2;
    f.rst = bits & 4;
    f.psh = bits & 8;
    f.ack = bits & 16;
    EXPECT_EQ(TcpFlags::decode(f.encode()), f);
  }
}

TEST(TcpFlags, StringRendering) {
  EXPECT_EQ((TcpFlags{.syn = true}).str(), "S");
  EXPECT_EQ((TcpFlags{.syn = true, .ack = true}).str(), "SA");
  EXPECT_EQ(TcpFlags{}.str(), "-");
}

TEST(TcpSegment, EncodeDecodeRoundTrip) {
  TcpSegment segment;
  segment.src_port = 49152;
  segment.dst_port = 443;
  segment.seq = 0xAABBCCDD;
  segment.ack = 0x11223344;
  segment.flags = {.ack = true, .psh = true};
  segment.window = 4096;
  segment.payload = to_bytes("TLS bytes here");
  Bytes wire = segment.encode(kSrc, kDst);

  auto decoded = TcpSegment::decode(BytesView(wire), kSrc, kDst);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().src_port, 49152);
  EXPECT_EQ(decoded.value().dst_port, 443);
  EXPECT_EQ(decoded.value().seq, 0xAABBCCDDu);
  EXPECT_EQ(decoded.value().ack, 0x11223344u);
  EXPECT_EQ(decoded.value().flags, segment.flags);
  EXPECT_EQ(decoded.value().window, 4096);
  EXPECT_EQ(decoded.value().payload, segment.payload);
}

TEST(TcpSegment, ChecksumBindsAddresses) {
  TcpSegment segment;
  segment.payload = to_bytes("x");
  Bytes wire = segment.encode(kSrc, kDst);
  EXPECT_FALSE(TcpSegment::decode(BytesView(wire), Ipv4Addr(1, 1, 1, 1), kDst).ok());
  EXPECT_TRUE(TcpSegment::decode(BytesView(wire), kSrc, kDst).ok());
}

TEST(TcpSegment, RejectsCorruption) {
  TcpSegment segment;
  segment.payload = to_bytes("data");
  Bytes wire = segment.encode(kSrc, kDst);
  wire.back() ^= 1;
  EXPECT_FALSE(TcpSegment::decode(BytesView(wire), kSrc, kDst).ok());
}

TEST(TcpSegment, RejectsTruncatedHeader) {
  Bytes tiny(10, 0);
  EXPECT_FALSE(TcpSegment::decode(BytesView(tiny), kSrc, kDst).ok());
}

TEST(TcpSegment, RejectsBadDataOffset) {
  TcpSegment segment;
  Bytes wire = segment.encode(kSrc, kDst);
  wire[12] = 0x30;  // data offset 3 words < minimum 5
  EXPECT_FALSE(TcpSegment::decode(BytesView(wire), kSrc, kDst).ok());
}

TEST(TcpSegment, EmptyPayloadSegments) {
  TcpSegment syn;
  syn.flags = {.syn = true};
  Bytes wire = syn.encode(kSrc, kDst);
  EXPECT_EQ(wire.size(), TcpSegment::kHeaderSize);
  auto decoded = TcpSegment::decode(BytesView(wire), kSrc, kDst);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().flags.syn);
  EXPECT_TRUE(decoded.value().payload.empty());
}

}  // namespace
}  // namespace shadowprobe::net
