#include "net/tls.h"

#include <gtest/gtest.h>

namespace shadowprobe::net {
namespace {

TlsClientHello make_hello(const std::string& sni) {
  TlsClientHello hello;
  for (std::size_t i = 0; i < hello.random.size(); ++i) {
    hello.random[i] = static_cast<std::uint8_t>(i);
  }
  hello.session_id = {0xAA, 0xBB};
  hello.cipher_suites = {0x1301, 0x1302, 0xC02F};
  hello.set_sni(sni);
  hello.set_supported_versions({0x0304, 0x0303});
  hello.set_alpn({"h2", "http/1.1"});
  return hello;
}

TEST(TlsClientHello, EncodeDecodeRoundTrip) {
  TlsClientHello hello = make_hello("decoy.www.example.com");
  Bytes wire = hello.encode_record();
  // Record layer sanity: handshake content type, TLS record version 3.x.
  ASSERT_GT(wire.size(), 5u);
  EXPECT_EQ(wire[0], 22);
  EXPECT_EQ(wire[1], 3);

  auto decoded = TlsClientHello::decode_record(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().legacy_version, 0x0303);
  EXPECT_EQ(decoded.value().random, hello.random);
  EXPECT_EQ(decoded.value().session_id, hello.session_id);
  EXPECT_EQ(decoded.value().cipher_suites, hello.cipher_suites);
  ASSERT_TRUE(decoded.value().sni().has_value());
  EXPECT_EQ(decoded.value().sni().value(), "decoy.www.example.com");
  EXPECT_EQ(decoded.value().alpn(), (std::vector<std::string>{"h2", "http/1.1"}));
  EXPECT_EQ(decoded.value().supported_versions(),
            (std::vector<std::uint16_t>{0x0304, 0x0303}));
}

TEST(TlsClientHello, SetSniReplacesInPlace) {
  TlsClientHello hello = make_hello("first.example.com");
  hello.set_sni("second.example.com");
  std::size_t sni_count = 0;
  for (const auto& ext : hello.extensions) {
    if (ext.type == kExtServerName) ++sni_count;
  }
  EXPECT_EQ(sni_count, 1u);
  EXPECT_EQ(hello.sni().value(), "second.example.com");
}

TEST(TlsClientHello, NoSniMeansNullopt) {
  TlsClientHello hello;
  hello.cipher_suites = {0x1301};
  EXPECT_FALSE(hello.sni().has_value());
  Bytes wire = hello.encode_record();
  auto decoded = TlsClientHello::decode_record(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().sni().has_value());
}

TEST(TlsClientHello, DecodeRejectsWrongContentType) {
  TlsClientHello hello = make_hello("x.com");
  Bytes wire = hello.encode_record();
  wire[0] = 23;  // application data
  EXPECT_FALSE(TlsClientHello::decode_record(BytesView(wire)).ok());
}

TEST(TlsClientHello, DecodeRejectsLengthMismatches) {
  TlsClientHello hello = make_hello("x.com");
  Bytes wire = hello.encode_record();
  Bytes truncated(wire.begin(), wire.end() - 3);
  EXPECT_FALSE(TlsClientHello::decode_record(BytesView(truncated)).ok());
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(TlsClientHello::decode_record(BytesView(padded)).ok());
}

TEST(TlsClientHello, DecodeRejectsServerHelloRecord) {
  TlsServerHello server;
  Bytes wire = server.encode_record();
  EXPECT_FALSE(TlsClientHello::decode_record(BytesView(wire)).ok());
}

TEST(TlsClientHello, OddCipherSuiteLengthRejected) {
  TlsClientHello hello = make_hello("x.com");
  Bytes wire = hello.encode_record();
  // cipher_suites length lives right after version(2)+random(32)+sid_len(1)
  // +sid(2) inside the handshake body, which starts at offset 9.
  std::size_t suites_len_at = 9 + 2 + 32 + 1 + hello.session_id.size();
  wire[suites_len_at + 1] ^= 0x01;  // make the u16 length odd
  EXPECT_FALSE(TlsClientHello::decode_record(BytesView(wire)).ok());
}

TEST(TlsServerHello, RoundTrip) {
  TlsServerHello server;
  server.random[0] = 0x42;
  server.session_id = {1, 2, 3};
  server.cipher_suite = 0x1302;
  Bytes wire = server.encode_record();
  auto decoded = TlsServerHello::decode_record(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().random[0], 0x42);
  EXPECT_EQ(decoded.value().session_id, (Bytes{1, 2, 3}));
  EXPECT_EQ(decoded.value().cipher_suite, 0x1302);
}

TEST(TlsAlert, RecordShape) {
  Bytes alert = tls_alert_record(2, 40);  // fatal handshake_failure
  ASSERT_EQ(alert.size(), 7u);
  EXPECT_EQ(alert[0], 21);  // alert content type
  EXPECT_EQ(alert[5], 2);
  EXPECT_EQ(alert[6], 40);
}

TEST(TlsClientHello, SniSurvivesLongNames) {
  std::string long_name(200, 'a');
  long_name += ".example.com";
  TlsClientHello hello = make_hello(long_name);
  Bytes wire = hello.encode_record();
  auto decoded = TlsClientHello::decode_record(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sni().value(), long_name);
}

}  // namespace
}  // namespace shadowprobe::net

namespace shadowprobe::net {
namespace {

TEST(TlsEch, HidesInnerNameFromPlainParsers) {
  TlsClientHello hello;
  hello.cipher_suites = {0x1301};
  hello.set_ech("secret.www.shadowprobe-exp.com", "public.ech-shield.example");
  Bytes wire = hello.encode_record();
  auto decoded = TlsClientHello::decode_record(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().has_ech());
  // Clear-text SNI is the outer public name only.
  EXPECT_EQ(decoded.value().sni().value(), "public.ech-shield.example");
  // The raw wire bytes never contain the inner name.
  std::string raw = to_string(BytesView(wire));
  EXPECT_EQ(raw.find("secret.www"), std::string::npos);
  // The terminating party recovers it.
  EXPECT_EQ(decoded.value().ech_inner_sni().value(), "secret.www.shadowprobe-exp.com");
}

TEST(TlsEch, AbsentOnPlainHello) {
  TlsClientHello hello;
  hello.set_sni("plain.example.com");
  EXPECT_FALSE(hello.has_ech());
  EXPECT_FALSE(hello.ech_inner_sni().has_value());
}

TEST(TlsEch, SetTwiceReplacesInPlace) {
  TlsClientHello hello;
  hello.set_ech("first.example", "outer.example");
  hello.set_ech("second.example", "outer.example");
  int count = 0;
  for (const auto& ext : hello.extensions) {
    if (ext.type == kExtEncryptedClientHello) ++count;
  }
  EXPECT_EQ(count, 1);
  EXPECT_EQ(hello.ech_inner_sni().value(), "second.example");
}

TEST(TlsOpaque, RoundTripsAndWhitens) {
  Bytes payload = to_bytes("a plain DNS message would be here");
  Bytes record = tls_opaque_record(BytesView(payload));
  EXPECT_EQ(record[0], 23);  // application data
  // Whitened: the payload is not readable in the record bytes.
  std::string raw = to_string(BytesView(record));
  EXPECT_EQ(raw.find("plain DNS"), std::string::npos);
  auto unwrapped = tls_opaque_unwrap(BytesView(record));
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(unwrapped.value(), payload);
}

TEST(TlsOpaque, RejectsWrongContentTypeAndBadLength) {
  Bytes payload = to_bytes("x");
  Bytes record = tls_opaque_record(BytesView(payload));
  Bytes wrong_type = record;
  wrong_type[0] = 22;
  EXPECT_FALSE(tls_opaque_unwrap(BytesView(wrong_type)).ok());
  Bytes truncated(record.begin(), record.end() - 1);
  EXPECT_FALSE(tls_opaque_unwrap(BytesView(truncated)).ok());
}

TEST(TlsOpaque, EmptyPayload) {
  Bytes record = tls_opaque_record({});
  auto unwrapped = tls_opaque_unwrap(BytesView(record));
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_TRUE(unwrapped.value().empty());
}

}  // namespace
}  // namespace shadowprobe::net
